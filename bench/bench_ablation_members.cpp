// Ablation: ensemble-size configuration choice.
//
// Sec. 5: "selecting proper configurations such as 1000 ensemble members"
// came from sensitivity tests trading accuracy against compute.  The scaled
// sweep runs the identical OSSE at several ensemble sizes and reports
// analysis quality and cost; the projected Fugaku LETKF time at each size
// shows the real trade the authors were making.
#include <chrono>
#include <cstdio>

#include "common.hpp"
#include "hpc/perf_model.hpp"
#include "verify/scores.hpp"

using namespace bda;

int main() {
  bench::print_header("Ablation — ensemble size sweep",
                      "Sec. 5 configuration choice (1000 members)");

  const auto cal = hpc::calibrate_host();
  const hpc::BdaCostModel cost(cal, hpc::FugakuSpec{});
  const std::size_t cells = 256ull * 256ull * 60ull;

  std::printf("  members | qr RMSE   | analysis wall | projected Fugaku "
              "LETKF (k members, 8008 nodes)\n");
  for (const int members : {4, 8, 16, 24}) {
    auto cfg = bench::osse_config(members);
    auto sys = bench::make_storm_system(cfg);
    sys->cycle();
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = sys->cycle();
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const auto mean = sys->ensemble().mean();
    const double rmse = verify::rmse3(mean.rhoq[scale::QR],
                                      sys->nature().state().rhoq[scale::QR]);
    // Project the corresponding full-scale ensemble (members scaled by the
    // same factor the paper's 1000 stands to our largest sweep point).
    const std::size_t k_full = std::size_t(members) * 1000 / 24;
    const double t_full = cost.t_letkf(cells / 2, k_full, 600, 8008);
    std::printf("  %7d | %.3e | %10.2f s  | k=%4zu: %6.1f s%s\n", members,
                rmse, dt, k_full, t_full,
                members == 24 ? "   <- paper-equivalent (k=1000)" : "");
    (void)res;
  }
  std::printf("\nexpected shape: error falls with members (sampling noise "
              "~1/sqrt(k)); cost grows superlinearly (p k^2 + k^3) — the "
              "paper's 1000 members saturate the 15-s budget on 8008 "
              "nodes.\n");
  return 0;
}
