// Fig 7: heavy-rain threat score vs forecast lead time, BDA vs persistence.
//
// The paper averages threat scores (reflectivity >= 30 dBZ) over 120
// forecasts launched every 30 s within one hour.  The scaled version runs
// several consecutive cases: each case assimilates one more 30-s cycle,
// launches a forecast from the analysis ensemble mean, and scores it at
// each lead against the evolving nature run.  Persistence — the verifying
// observation frozen at the initial time — is the baseline; it starts at
// 1.0 by construction and must fall below the BDA forecast at later leads
// (the paper's key skill result).
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "scale/model.hpp"
#include "verify/persistence.hpp"
#include "verify/scores.hpp"

using namespace bda;

int main() {
  bench::print_header("Fig 7 — threat score vs lead, BDA vs persistence",
                      "Fig 7 (120 cases; scaled to 6 cases here)");

  const int n_cases = 6;
  const double lead_max = 600.0, lead_step = 120.0;
  const real thresh = 30.0f;
  const std::size_t n_leads = std::size_t(lead_max / lead_step) + 1;

  auto cfg = bench::osse_config(12);
  auto sys = bench::make_storm_system(cfg);
  // Cycle in a bit before scoring starts.
  for (int c = 0; c < 2; ++c) sys->cycle();

  std::vector<double> ts_bda(n_leads, 0), ts_per(n_leads, 0);

  for (int cs = 0; cs < n_cases; ++cs) {
    sys->cycle();  // fresh analysis, nature advanced to T_obs

    // Truth trajectory from the analysis time (an independent model copy).
    scale::Model truth(sys->grid(), scale::convective_sounding(), cfg.model);
    truth.state() = sys->nature().state();

    // BDA forecast from the analysis ensemble mean.
    scale::Model fcst(sys->grid(), scale::convective_sounding(), cfg.model);
    fcst.state() = sys->ensemble().mean();

    // Persistence: the observation at the initial time, frozen.
    verify::PersistenceForecast persist(
        sys->reflectivity_map(truth.state()));

    for (std::size_t l = 0; l < n_leads; ++l) {
      if (l > 0) {
        truth.advance(real(lead_step));
        fcst.advance(real(lead_step));
      }
      const RField2D obs = sys->reflectivity_map(truth.state());
      const RField2D f = sys->reflectivity_map(fcst.state());
      ts_bda[l] +=
          verify::contingency(f, obs, thresh).threat_score() / n_cases;
      ts_per[l] += verify::contingency(persist.at(l * lead_step), obs, thresh)
                       .threat_score() /
                   n_cases;
    }
    std::printf("  case %d scored (init t = %.0f s)\n", cs + 1, sys->time());
  }

  std::printf("\nthreat score (>= %.0f dBZ), average of %d cases:\n",
              double(thresh),
              n_cases);
  std::printf("  lead [min] |   BDA   | persistence\n");
  for (std::size_t l = 0; l < n_leads; ++l)
    std::printf("  %9.1f | %7.3f | %7.3f%s\n", l * lead_step / 60.0,
                ts_bda[l], ts_per[l],
                (l > 0 && ts_bda[l] > ts_per[l]) ? "   <- BDA wins" : "");

  std::printf("\npaper shape checks:\n");
  std::printf("  persistence perfect at lead 0:        %s (%.3f)\n",
              ts_per[0] > 0.999 ? "yes" : "NO", ts_per[0]);
  // With only a few cases the per-lead persistence curve is noisy; the
  // paper's monotone decline appears here as early-vs-late averages.
  double early = 0, late = 0;
  const std::size_t half = n_leads / 2;
  for (std::size_t l = 1; l <= half; ++l) early += ts_per[l];
  for (std::size_t l = half + 1; l < n_leads; ++l) late += ts_per[l];
  early /= double(half);
  late /= double(n_leads - half - 1);
  std::printf("  persistence decays with lead:         %s (%.3f early -> "
              "%.3f late)\n",
              late < early ? "yes" : "NO", early, late);
  std::printf("  BDA above persistence at later leads: %s (%.3f vs %.3f at "
              "%.0f min)\n",
              ts_bda[n_leads - 1] > ts_per[n_leads - 1] ? "yes" : "NO",
              ts_bda[n_leads - 1], ts_per[n_leads - 1], lead_max / 60.0);
  return 0;
}
