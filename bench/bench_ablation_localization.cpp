// Ablation: localization-scale sensitivity.
//
// Sec. 5/6 and Taylor et al. (2023) [35]: the 2-km localization of Table 2
// came out of sensitivity tests.  One spun-up storm OSSE provides a fixed
// background ensemble and a fixed observation set; the analysis is repeated
// across localization radii on restored copies of the background, reporting
// analysis error against the nature run and wall time (more radius = more
// local obs = more compute).
#include <chrono>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "pawr/obsgen.hpp"
#include "verify/scores.hpp"

using namespace bda;

int main() {
  bench::print_header("Ablation — localization scale sensitivity",
                      "Sec. 5 configuration choice; ref [35]");

  auto cfg = bench::osse_config(12);
  auto sys = bench::make_storm_system(cfg);
  sys->cycle();  // one assimilation so the ensemble is storm-aware

  // Advance to a fresh observation time and capture background + obs.
  sys->nature().advance(real(cfg.cycle_s));
  sys->ensemble().advance(real(cfg.cycle_s));
  const auto scan = sys->observe_nature();
  const auto obs = pawr::regrid_scan(scan, sys->grid(), cfg.radar.radar_x,
                                     cfg.radar.radar_y, cfg.radar.radar_z,
                                     cfg.obsgen);
  letkf::ObsOperator op(sys->grid(), cfg.radar.radar_x, cfg.radar.radar_y,
                        cfg.radar.radar_z, cfg.radar.micro);

  std::vector<scale::State> background;
  for (int m = 0; m < sys->ensemble().size(); ++m)
    background.push_back(sys->ensemble().member(m));

  auto qr_rmse = [&] {
    const auto mean = sys->ensemble().mean();
    return verify::rmse3(mean.rhoq[scale::QR],
                         sys->nature().state().rhoq[scale::QR]);
  };
  const double rmse_b = qr_rmse();
  std::printf("background qr RMSE: %.4e  (obs: %zu)\n\n", rmse_b,
              obs.size());
  std::printf("  hloc=vloc | qr RMSE   | vs bkg | local obs | grid pts | "
              "wall\n");

  for (const real loc : {500.0f, 1000.0f, 2000.0f, 4000.0f, 8000.0f}) {
    for (int m = 0; m < sys->ensemble().size(); ++m)
      sys->ensemble().member(m) = background[std::size_t(m)];
    auto lk = cfg.letkf;
    lk.hloc = loc;
    lk.vloc = loc;
    letkf::Letkf letkf(sys->grid(), lk);
    const auto t0 = std::chrono::steady_clock::now();
    const auto stats = letkf.analyze(sys->ensemble(), obs, op);
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double rmse_a = qr_rmse();
    std::printf("  %6.1f km | %.3e | %5.1f%% | %9.1f | %8zu | %5.2fs%s\n",
                double(loc) / 1000.0, rmse_a, 100.0 * (rmse_a / rmse_b - 1.0),
                stats.mean_local_obs, stats.n_grid_updated, dt,
                loc == 2000.0f ? "   <- Table 2 value" : "");
  }
  std::printf("\nexpected shape (ref [35]): error minimized at an "
              "intermediate radius; cost grows monotonically with radius.\n");
  return 0;
}
