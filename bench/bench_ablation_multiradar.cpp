// Ablation: single vs dual phased-array radar coverage.
//
// Sec. 8: "We have new MP-PAWRs installed in Osaka and Kobe, and the dual
// coverage is available. Our recent simulation study ... suggested that
// multiple PAWR coverage be beneficial for disastrous heavy rain
// prediction [42]."  This bench runs that OSSE at our scale: the same storm
// observed by one site vs two sites (the second fills the first's blocked
// sector and adds a second Doppler look angle — the dual-Doppler effect
// that constrains the horizontal wind).
#include <cstdio>

#include "common.hpp"
#include "verify/scores.hpp"

using namespace bda;

namespace {

struct Result {
  std::size_t n_obs;
  double qr_rmse;
  double wind_rmse;
};

Result run(bool dual) {
  auto cfg = bench::osse_config(12);
  if (dual) {
    pawr::RadarSimConfig second = cfg.radar;
    second.radar_x = 2500.0f;
    second.radar_y = 8500.0f;
    second.block_az_from = second.block_az_to = 0.0f;
    cfg.extra_radars.push_back(second);
  }
  auto sys = bench::make_storm_system(cfg);
  Result res{};
  for (int c = 0; c < 3; ++c) res.n_obs = sys->cycle().n_obs;
  const auto mean = sys->ensemble().mean();
  const auto& nat = sys->nature().state();
  res.qr_rmse = verify::rmse3(mean.rhoq[scale::QR], nat.rhoq[scale::QR]);
  res.wind_rmse = verify::rmse3(mean.momx, nat.momx);
  return res;
}

}  // namespace

int main() {
  bench::print_header("Ablation — single vs dual MP-PAWR coverage",
                      "Sec. 8 outlook; Maejima et al. 2022 [42]");
  const Result one = run(false);
  const Result two = run(true);
  std::printf("           |   obs   | qr RMSE    | wind RMSE\n");
  std::printf("  1 radar  | %6zu  | %.4e | %.4e\n", one.n_obs, one.qr_rmse,
              one.wind_rmse);
  std::printf("  2 radars | %6zu  | %.4e | %.4e\n", two.n_obs, two.qr_rmse,
              two.wind_rmse);
  std::printf("\nobs coverage gain: %.1fx;  qr error change: %+.1f%%;  "
              "wind error change: %+.1f%%\n",
              double(two.n_obs) / double(one.n_obs),
              100.0 * (two.qr_rmse / one.qr_rmse - 1.0),
              100.0 * (two.wind_rmse / one.wind_rmse - 1.0));
  std::printf("expected shape (ref [42]): added coverage + second Doppler "
              "look angle reduce analysis error.\n");
  return 0;
}
