// Microbench of the LETKF weight kernel: per-gridpoint baseline vs the
// batched column solver (KeDV-style batching + exact weight reuse).
//
// The paper's cycle spends its analysis time in per-gridpoint k x k
// eigensolves; KeDV (Kudo & Imamura 2019) batches them for cache locality,
// and adjacent levels of a column frequently share the exact local-obs
// signature, letting one weight matrix serve several levels.  This bench
// measures both effects at the ISSUE's reference point — k = 64 members,
// 60-level columns, ~96 local obs — on two workloads:
//   * "reuse":    adjacent level pairs share a bit-identical signature
//                 (the single-elevation / quantized-vloc scenario), so the
//                 cache hits 50% of levels;
//   * "distinct": every level unique — the batching-only floor.
// Every batched weight matrix is checked bitwise against the per-level
// letkf_weights reference before any timing is reported.
//
// Output: human-readable table + BENCH_letkf_kernel.json (path overridable
// as argv[1]) with timers and kernel counters, CI-archived next to
// BENCH_pipeline_tts.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "letkf/column_solver.hpp"
#include "letkf/letkf_core.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace {

using bda::Rng;
using bda::letkf::ColumnWeightSolver;
using bda::letkf::LetkfWorkspace;
using bda::letkf::letkf_weights;

constexpr std::size_t kMembers = 64;   // k
constexpr std::size_t kLevels = 60;    // levels per column
constexpr std::size_t kLocalObs = 96;  // p
constexpr std::size_t kColumns = 8;
constexpr int kReps = 3;
constexpr float kAlpha = 0.7f;
constexpr float kRho = 1.0f;

struct Level {
  std::vector<std::size_t> ids;
  std::vector<float> y, d, rinv;
};

struct Column {
  std::vector<Level> levels;
};

Level make_level(Rng& rng, std::size_t id0) {
  Level lv;
  lv.ids.resize(kLocalObs);
  lv.y.resize(kLocalObs * kMembers);
  lv.d.resize(kLocalObs);
  lv.rinv.resize(kLocalObs);
  for (std::size_t n = 0; n < kLocalObs; ++n) {
    lv.ids[n] = id0 + n;
    lv.d[n] = float(rng.normal());
    lv.rinv[n] = 0.25f + float(std::abs(rng.normal()));
    for (std::size_t m = 0; m < kMembers; ++m)
      lv.y[n * kMembers + m] = float(rng.normal());
  }
  return lv;
}

/// `share` pairs adjacent levels into one signature (50% exact reuse);
/// otherwise all levels are distinct.
std::vector<Column> make_workload(bool share, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Column> cols(kColumns);
  for (auto& col : cols) {
    col.levels.reserve(kLevels);
    for (std::size_t l = 0; l < kLevels; ++l) {
      if (share && (l % 2 == 1))
        col.levels.push_back(col.levels.back());
      else
        col.levels.push_back(make_level(rng, l * kLocalObs));
    }
  }
  return cols;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-gridpoint baseline: one full letkf_weights per level, no reuse, the
/// serial (pre-batching) analysis behavior.  Like the real driver, the
/// weight matrix is produced into a reused buffer and consumed in place;
/// `sink` non-null switches to per-level output capture (verification).
double run_baseline(const std::vector<Column>& cols, float* sink) {
  LetkfWorkspace<float> ws(kMembers);
  std::vector<float> w(kMembers * kMembers);
  const double t0 = now_s();
  std::size_t out = 0;
  for (const auto& col : cols)
    for (const auto& lv : col.levels) {
      float* dst = sink ? sink + out * kMembers * kMembers : w.data();
      if (!letkf_weights(kMembers, kLocalObs, lv.y.data(), lv.d.data(),
                         lv.rinv.data(), kAlpha, kRho, ws, dst))
        std::abort();  // SPD inputs: non-convergence here is a bench bug
      ++out;
    }
  return now_s() - t0;
}

/// Batched path: the column solver dedupes signatures and runs each
/// column's unique solves through one solve_batch call.  Weights are
/// consumed in place (as Letkf::analyze does); `sink` non-null copies each
/// level's matrix out for the bitwise verification pass.
double run_batched(const std::vector<Column>& cols, float* sink,
                   ColumnWeightSolver<float>& solver) {
  const double t0 = now_s();
  std::size_t out = 0;
  std::vector<std::size_t> slots(kLevels);
  for (const auto& col : cols) {
    solver.begin_column();
    for (std::size_t l = 0; l < kLevels; ++l) {
      const auto& lv = col.levels[l];
      slots[l] = solver.add_level(kLocalObs, lv.ids.data(), lv.rinv.data(),
                                  lv.y.data(), lv.d.data());
    }
    solver.solve();
    for (std::size_t l = 0; l < kLevels; ++l) {
      if (!solver.converged(slots[l])) std::abort();
      const float* src = solver.weights(slots[l]);
      if (sink)
        std::copy(src, src + kMembers * kMembers,
                  sink + out * kMembers * kMembers);
      ++out;
    }
  }
  return now_s() - t0;
}

std::size_t count_mismatch(const std::vector<float>& a,
                           const std::vector<float>& b) {
  std::size_t bad = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) ++bad;
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_letkf_kernel.json";

  std::printf("\n=====================================================\n");
  std::printf("LETKF weight kernel: batched + weight reuse vs baseline\n");
  std::printf("  k = %zu members, %zu-level columns, p = %zu local obs,\n",
              kMembers, kLevels, kLocalObs);
  std::printf("  %zu columns x %d reps; KeDV-style batch (Kudo 2019)\n",
              kColumns, kReps);
  std::printf("=====================================================\n");

  bda::util::Metrics metrics;
  const std::size_t n_w = kColumns * kLevels * kMembers * kMembers;
  std::vector<float> w_base(n_w), w_batch(n_w);

  struct WorkloadResult {
    const char* name;
    double base_s, batch_s, hit_rate;
  };
  std::vector<WorkloadResult> results;

  for (const bool share : {true, false}) {
    const char* name = share ? "reuse" : "distinct";
    const auto cols = make_workload(share, share ? 20210729u : 20210730u);
    ColumnWeightSolver<float> solver(kMembers, kLevels, kAlpha, kRho);

    // Warmup both paths (page in the workload), then correctness gate.
    run_baseline(cols, w_base.data());
    run_batched(cols, w_batch.data(), solver);
    const std::size_t bad = count_mismatch(w_base, w_batch);
    if (bad != 0) {
      std::printf("FAIL [%s]: %zu weight elements differ from the serial "
                  "reference (bitwise contract broken)\n",
                  name, bad);
      return 1;
    }

    double base_s = 0, batch_s = 0;
    for (int r = 0; r < kReps; ++r) {
      const double tb = run_baseline(cols, nullptr);
      const double tk = run_batched(cols, nullptr, solver);
      base_s += tb;
      batch_s += tk;
      metrics.observe(std::string("letkf_kernel.baseline_s.") + name, tb);
      metrics.observe(std::string("letkf_kernel.batched_s.") + name, tk);
    }
    const double levels_seen = double(solver.cache_hits() +
                                      solver.cache_misses());
    const double hit_rate =
        levels_seen > 0 ? double(solver.cache_hits()) / levels_seen : 0.0;
    metrics.count(std::string("letkf_kernel.cache_hit.") + name,
                  solver.cache_hits());
    metrics.count(std::string("letkf_kernel.cache_miss.") + name,
                  solver.cache_misses());
    metrics.count(std::string("letkf_kernel.batches.") + name,
                  solver.batches());
    metrics.observe(std::string("letkf_kernel.speedup.") + name,
                    base_s / batch_s);
    results.push_back({name, base_s, batch_s, hit_rate});
  }

  std::printf("\n%-10s %12s %12s %9s %9s\n", "workload", "baseline[s]",
              "batched[s]", "speedup", "hit-rate");
  bool pass = true;
  for (const auto& r : results) {
    const double speedup = r.base_s / r.batch_s;
    std::printf("%-10s %12.4f %12.4f %8.2fx %8.0f%%\n", r.name, r.base_s,
                r.batch_s, speedup, 100.0 * r.hit_rate);
    if (std::string(r.name) == "reuse" && speedup < 1.5) pass = false;
  }
  std::printf("\nbitwise check: batched weights == serial reference "
              "(all %zu matrices)\n", 2 * kColumns * kLevels);
  std::printf("acceptance (reuse >= 1.50x): %s\n", pass ? "PASS" : "FAIL");

  std::ofstream json(json_path);
  json << metrics.to_json() << "\n";
  std::printf("metrics -> %s\n", json_path.c_str());
  return pass ? 0 : 1;
}
