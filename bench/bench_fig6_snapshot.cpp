// Fig 6: forecast vs observation snapshot.
//
// The paper's Fig 6 compares a 30-minute forecast (initialized at the
// fractional time 19:27:30 UTC — possible only for a 30-s-refresh system)
// with the verifying MP-PAWR observation at 2-km height.  Here: the scaled
// OSSE cycles assimilation, launches the product forecast from the analysis
// ensemble mean, advances the nature run to the valid time, and prints both
// reflectivity maps (ASCII, paper's dBZ classes) with agreement scores.
// The no-data hatching of Fig 6b appears as the radar coverage mask.
#include <cstdio>

#include "common.hpp"
#include "pawr/obsgen.hpp"
#include "util/ascii_render.hpp"
#include "verify/scores.hpp"

using namespace bda;

int main() {
  bench::print_header("Fig 6 — 30-min forecast vs radar observation",
                      "Fig 6a/6b (July 29, 2021 case, scaled OSSE analog)");

  auto cfg = bench::osse_config(12);
  auto sys = bench::make_storm_system(cfg);

  // Assimilation cycles up to the (fractional) initial time.
  for (int c = 0; c < 4; ++c) sys->cycle();
  std::printf("initial time after %d cycles: t = %.1f s (a :30 fractional "
              "time — only the 30-s system can start here)\n",
              4, sys->time());

  // Product forecast <2> from the analysis ensemble mean; scaled lead.
  const double lead_s = 600.0;
  const auto init = sys->ensemble().mean();
  auto maps = workflow::run_forecast_maps(sys->grid(),
                                          scale::convective_sounding(),
                                          cfg.model, init, lead_s, lead_s);
  const RField2D& fcst = maps.back();

  // Nature advances to the valid time; the radar observes it.
  sys->nature().advance(real(lead_s));
  const auto scan = sys->observe_nature();
  const auto cov = pawr::scan_coverage(scan);
  const RField2D obs = sys->reflectivity_map(sys->nature().state());

  // Coverage mask: columns with no valid radar sample = Fig 6b hatching.
  Field2D<std::uint8_t> mask(obs.nx(), obs.ny(), 0);
  {
    const auto obsv = pawr::regrid_scan(scan, sys->grid(), cfg.radar.radar_x,
                                        cfg.radar.radar_y, cfg.radar.radar_z,
                                        cfg.obsgen);
    for (const auto& o : obsv) {
      const idx i = static_cast<idx>(o.x / sys->grid().dx());
      const idx j = static_cast<idx>(o.y / sys->grid().dx());
      mask(i, j) = 1;
    }
  }

  std::printf("\n(a) %02.0f-min forecast, reflectivity at 2-km height "
              "[' '<10 '.'10 ':'20 'o'30 'O'40 '@'50 dBZ]:\n",
              lead_s / 60.0);
  std::printf("%s", render_dbz(fcst).c_str());
  std::printf("\n(b) nature-run 'MP-PAWR' observation at the valid time:\n");
  std::printf("%s", render_dbz(obs).c_str());
  std::printf("\nscan coverage: %zu valid, %zu out-of-range, %zu blocked, "
              "%zu clutter (the hatched no-data classes of Fig 6b)\n",
              cov.valid, cov.out_of_domain, cov.blocked, cov.clutter);

  for (real thresh : {20.0f, 30.0f, 40.0f}) {
    const auto c = verify::contingency(fcst, obs, thresh, &mask);
    std::printf("threshold %2.0f dBZ: threat=%.3f pod=%.3f far=%.3f "
                "bias=%.2f (hits=%zu miss=%zu fa=%zu)\n",
                double(thresh), c.threat_score(), c.pod(), c.far(), c.bias(), c.hits,
                c.misses, c.false_alarms);
  }
  std::printf("rmse (covered area excluded from paper comparison): %.2f dBZ\n",
              verify::rmse(fcst, obs));
  return 0;
}
