// Fig 2 / Fig 4: the end-to-end workflow and the definition of
// time-to-solution.
//
// Runs one complete cycle of the scaled system with the scan actually
// serialized and moved through JIT-DT, prints the component timeline in the
// Fig 4 layout, and next to it the paper-scale projection of every
// component from the calibrated Fugaku cost model.
#include <chrono>
#include <cstdio>

#include "common.hpp"
#include "hpc/perf_model.hpp"
#include "pawr/datafile.hpp"

using namespace bda;

int main() {
  bench::print_header("Fig 2 / Fig 4 — workflow and time-to-solution",
                      "Figs 2, 4; Sec. 7 component means");

  // ---- scaled functional run (real bytes, real analysis) ----
  auto cfg = bench::osse_config(12);
  cfg.transfer_scans = true;
  auto sys = bench::make_storm_system(cfg);

  const auto t0 = std::chrono::steady_clock::now();
  const auto res = sys->cycle();
  const double t_cycle =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("scaled cycle (functional, %d members):\n", cfg.n_members);
  std::printf("  T_obs (scan complete)        t = 0.00 s\n");
  std::printf("  JIT-DT transfer              %.2f s (virtual channel), "
              "%zu bytes, crc %s\n",
              res.transfer.elapsed_s, res.transfer.bytes,
              res.transfer.crc_ok ? "ok" : "FAIL");
  std::printf("  regridded observations       %zu\n", res.n_obs);
  std::printf("  <1-1> LETKF analysis         %zu grid points updated\n",
              res.analysis.n_grid_updated);
  std::printf("  <1-2> + <2> wall clock       %.2f s total cycle\n", t_cycle);

  // ---- paper-scale projection ----
  const auto cal = hpc::calibrate_host();
  const hpc::FugakuSpec spec;
  const hpc::BdaCostModel cost(cal, spec);
  const std::size_t cells = 256ull * 256ull * 60ull;

  jitdt::JitDtLink link;  // SINET channel model
  const double t_file = 20.0;
  const double t_jit = link.estimate_time(100u << 20);
  const double t_letkf = cost.t_letkf(cells / 2, 1000, 600, 8008);
  const double t_12 = cost.t_forecast(cells, 1000, 75, 8008);
  const double t_2 = cost.t_forecast(cells, 11, 4500, 880);
  const double t_prod = hpc::BdaCostModel::t_file(400e6, 2e9, 0.5);

  std::printf("\npaper-scale projection (host-calibrated cost model):\n");
  std::printf("  calibration: model %.2e cells/s, letkf %.1f pts/s "
              "(k=%zu,p=%zu)\n",
              cal.model_cells_per_s, cal.letkf_points_per_s, cal.letkf_k0,
              cal.letkf_p0);
  std::printf("  scaling: node_speedup=%.0f model_complexity=%.0f "
              "eff=%.2f/%.2f nodes=%d+%d\n",
              spec.node_speedup, spec.model_complexity,
              spec.parallel_eff_model, spec.parallel_eff_letkf,
              spec.nodes_analysis, spec.nodes_forecast);
  std::printf("\n  component                     projected   paper\n");
  std::printf("  MP-PAWR file creation         %6.1f s    (within TTS)\n",
              t_file);
  std::printf("  JIT-DT 100 MB transfer        %6.1f s    ~3 s\n", t_jit);
  std::printf("  <1-1> LETKF (1000 members)    %6.1f s    <1> total ~15 s\n",
              t_letkf);
  std::printf("  <1-2> 30-s x 1000 forecasts   %6.1f s    (off TTS path, "
              "< 30 s)\n",
              t_12);
  std::printf("  <2> 30-min x 11 forecast      %6.1f s    ~2 min\n", t_2);
  std::printf("  product file write            %6.1f s    (T_fcst stamp)\n",
              t_prod);
  const double tts = t_file + t_jit + t_letkf + t_2 + t_prod;
  std::printf("  -------------------------------------------\n");
  std::printf("  time-to-solution              %6.1f s    <3 min for ~97%%\n",
              tts);
  std::printf("  fits 3-minute budget: %s\n", tts < 180.0 ? "yes" : "NO");
  return 0;
}
