// Ablation: standard vs KeDV-style batched eigensolver.
//
// Sec. 5: the LETKF "contains eigenvalue decomposition of the size of the
// ensemble at each grid point, involving total 256x256x60 calls of an
// eigenvalue solver of the matrix size of 1000. We applied KeDV ... in
// place of the standard LAPACK solver."  Here the standard path allocates
// workspace per call (as a per-gridpoint LAPACK call would); the batched
// path reuses preallocated workspace across the batch.  A one-shot
// measurement at the paper's k = 1000 is printed after the sweep.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "letkf/eigen.hpp"
#include "util/rng.hpp"

namespace {

using namespace bda;

std::vector<float> spd_matrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t p = 2 * n;
  std::vector<float> y(p * n), a(n * n, 0.0f);
  for (auto& v : y) v = float(rng.normal());
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      float s = (i == j) ? float(n - 1) : 0.0f;
      for (std::size_t m = 0; m < p; ++m) s += y[m * n + i] * y[m * n + j];
      a[i * n + j] = s;
      a[j * n + i] = s;
    }
  return a;
}

void BM_StandardSolver(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  const auto a0 = spd_matrix(n, 11);
  std::vector<float> a(n * n), w(n);
  for (auto _ : state) {
    a = a0;
    letkf::sym_eigen<float>(n, a.data(), w.data());  // allocs per call
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_StandardSolver)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_BatchedSolver(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  const auto a0 = spd_matrix(n, 11);
  std::vector<float> a(n * n), w(n);
  letkf::BatchedSymEigen<float> solver(n);  // workspace reused
  for (auto _ : state) {
    a = a0;
    solver.solve(a.data(), w.data());
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_BatchedSolver)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // One decomposition at the operational ensemble size.
  const std::size_t n = 1000;
  auto a = spd_matrix(n, 7);
  std::vector<float> w(n);
  letkf::BatchedSymEigen<float> solver(n);
  const auto t0 = std::chrono::steady_clock::now();
  solver.solve(a.data(), w.data());
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double total = dt * 256.0 * 256.0 * 60.0;
  std::printf("\nk = 1000 decomposition (paper size): %.2f s on one core.\n",
              dt);
  std::printf("256x256x60 grid points x that = %.1f core-years per cycle — "
              "why the paper needed 8008 nodes AND a fast batched solver "
              "(and why localization caps the obs volume).\n",
              total / (86400.0 * 365.0));
  return 0;
}
