// Ablation: file I/O vs parallel in-memory transport (SCALE <-> LETKF).
//
// Sec. 5: "the data transfer between SCALE and the LETKF was accelerated by
// replacing the original file I/O with parallel I/O using the MPI data
// transfer with RAM copy and node-to-node network communications without
// using files."  Both transports move an identical per-member prognostic
// payload; google-benchmark reports the gap.  The projected paper-scale
// payload per cycle (1000 members x full state) is printed on exit.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "hpc/transport.hpp"
#include "scale/grid.hpp"
#include "scale/reference.hpp"
#include "scale/state.hpp"

namespace {

using namespace bda;

std::vector<FieldRecord> member_payload() {
  // One member's prognostic fields at a scaled grid.
  scale::Grid g(32, 32, 24, 500.0f, 12000.0f);
  const auto ref = scale::ReferenceState::build(g, scale::convective_sounding());
  scale::State s(g);
  s.init_from_reference(g, ref);
  std::vector<FieldRecord> recs;
  auto pack = [&](const char* name, const RField3D& f, idx nlev) {
    Field3D<float> out(f.nx(), f.ny(), nlev, 0);
    for (idx i = 0; i < f.nx(); ++i)
      for (idx j = 0; j < f.ny(); ++j)
        for (idx k = 0; k < nlev; ++k) out(i, j, k) = f(i, j, k);
    recs.push_back({name, std::move(out)});
  };
  pack("dens", s.dens, g.nz());
  pack("momx", s.momx, g.nz());
  pack("momy", s.momy, g.nz());
  pack("momz", s.momz, g.nz() + 1);
  pack("rhot", s.rhot, g.nz());
  for (int t = 0; t < scale::kNumTracers; ++t)
    pack(scale::tracer_name(t), s.rhoq[t], g.nz());
  return recs;
}

const std::vector<FieldRecord>& payload() {
  static const auto p = member_payload();
  return p;
}

void BM_FileTransport(benchmark::State& state) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "bda_bench_ft").string();
  hpc::FileTransport tp(dir);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto st = tp.put(0, payload());
    auto back = tp.take(0, nullptr);
    benchmark::DoNotOptimize(back.data());
    bytes += st.bytes;
  }
  state.SetBytesProcessed(int64_t(bytes));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_FileTransport)->Unit(benchmark::kMillisecond);

void BM_MemoryTransport(benchmark::State& state) {
  hpc::MemoryTransport tp;
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto st = tp.put(0, payload());
    auto back = tp.take(0, nullptr);
    benchmark::DoNotOptimize(back.data());
    bytes += st.bytes;
  }
  state.SetBytesProcessed(int64_t(bytes));
}
BENCHMARK(BM_MemoryTransport)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  // Paper-scale payload the transport must sustain every 30 s.
  const double member_mb =
      double(256ull * 256 * 60 * (5 + 6)) * 4.0 / 1.0e6;
  std::printf("\npaper-scale payload: %.0f MB/member x 1000 members = %.1f "
              "GB per 30-s cycle each way — why the file path had to go.\n",
              member_mb, member_mb);
  return 0;
}
