// Ablation: single vs double precision.
//
// Sec. 5: "We converted variables of both SCALE and LETKF Fortran codes
// from double precision to single precision for 2x acceleration."  The
// same kernels here are templated on the scalar type; google-benchmark
// measures both instantiations of the LETKF weight solve, the symmetric
// eigensolver, the vertical tridiagonal solve and the ensemble-space GEMM.
#include <benchmark/benchmark.h>

#include <vector>

#include "letkf/letkf_core.hpp"
#include "scale/kernels.hpp"
#include "util/rng.hpp"

namespace {

using bda::Rng;

template <typename T>
void BM_LetkfWeights(benchmark::State& state) {
  const std::size_t k = std::size_t(state.range(0));
  const std::size_t p = 2 * k;
  Rng rng(1);
  std::vector<T> Y(p * k), d(p), rinv(p, T(1)), W(k * k);
  for (auto& v : Y) v = T(rng.normal());
  for (auto& v : d) v = T(rng.normal());
  bda::letkf::LetkfWorkspace<T> ws(k);
  for (auto _ : state) {
    bda::letkf::letkf_weights<T>(k, p, Y.data(), d.data(), rinv.data(),
                                 T(0.95), T(1), ws, W.data());
    benchmark::DoNotOptimize(W.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_LetkfWeights, float)->Arg(32)->Arg(64)->Arg(128);
BENCHMARK_TEMPLATE(BM_LetkfWeights, double)->Arg(32)->Arg(64)->Arg(128);

template <typename T>
void BM_SymEigen(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  Rng rng(2);
  std::vector<T> a0(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const T x = T(rng.normal());
      a0[i * n + j] = x;
      a0[j * n + i] = x;
    }
  std::vector<T> a(n * n), w(n);
  for (auto _ : state) {
    a = a0;
    bda::letkf::sym_eigen<T>(n, a.data(), w.data());
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK_TEMPLATE(BM_SymEigen, float)->Arg(64)->Arg(128);
BENCHMARK_TEMPLATE(BM_SymEigen, double)->Arg(64)->Arg(128);

template <typename T>
void BM_Tridiagonal(benchmark::State& state) {
  // One HEVI column solve (nz = 60, Table 3) per iteration batch of 1024
  // columns — the shape of the vertical-implicit step.
  const std::size_t n = 60;
  Rng rng(3);
  std::vector<T> a(n), b(n), c0(n), d0(n), c(n), d(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = T(rng.uniform(-0.4, 0.4));
    c0[i] = T(rng.uniform(-0.4, 0.4));
    b[i] = T(2.5);
    d0[i] = T(rng.normal());
  }
  for (auto _ : state) {
    for (int col = 0; col < 1024; ++col) {
      c = c0;
      d = d0;
      bda::scale::solve_tridiagonal<T>(a, b, c, d);
      benchmark::DoNotOptimize(d.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK_TEMPLATE(BM_Tridiagonal, float);
BENCHMARK_TEMPLATE(BM_Tridiagonal, double);

template <typename T>
void BM_EnsembleGemm(benchmark::State& state) {
  // W application: (k x k) x (k x k) product as in the weight composition.
  const std::size_t k = std::size_t(state.range(0));
  Rng rng(4);
  std::vector<T> a(k * k), b(k * k), c(k * k);
  for (auto& v : a) v = T(rng.normal());
  for (auto& v : b) v = T(rng.normal());
  for (auto _ : state) {
    bda::scale::gemm<T>(k, k, k, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK_TEMPLATE(BM_EnsembleGemm, float)->Arg(128);
BENCHMARK_TEMPLATE(BM_EnsembleGemm, double)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
