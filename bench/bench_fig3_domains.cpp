// Fig 3: nested domains and data dependencies.
//
// Reproduces the configuration diagram as numbers: the outer 1.5-km domain
// (driven by the synthetic stand-in for the 3-hourly JMA mesoscale feed)
// provides lateral boundaries for the inner 500-m domain through one-way
// nesting.  A scaled outer->inner chain is actually run, and the cadence of
// every data dependency is printed.
#include <chrono>
#include <cstdio>

#include "common.hpp"
#include "scale/boundary.hpp"
#include "scale/model.hpp"

using namespace bda;
using namespace bda::scale;

int main() {
  bench::print_header("Fig 3 — domains and data dependencies",
                      "Fig 3a/3b configuration and nesting chain");

  {
    const Grid outer = Grid::paper_outer();
    const Grid inner = Grid::paper_inner();
    std::printf("paper configuration:\n");
    std::printf("  outer: %lldx%lldx%lld at %.1f km (%.0f km square), 2002 "
                "nodes, 3-h refresh, <=9-h forecasts\n",
                (long long)outer.nx(), (long long)outer.ny(),
                (long long)outer.nz(), double(outer.dx()) / 1000.0,
                double(outer.extent_x()) / 1000.0);
    std::printf("  inner: %lldx%lldx%lld at %.1f km (%.0f km square), 8888 "
                "nodes, 30-s cycle\n",
                (long long)inner.nx(), (long long)inner.ny(),
                (long long)inner.nz(), double(inner.dx()) / 1000.0,
                double(inner.extent_x()) / 1000.0);
    std::printf("  dependencies: JMA 5-km (3-h) -> outer 1000-member (3-h) "
                "-> inner boundary (30-s cycle) -> LETKF <1-1> -> <1-2>/<2>\n");
  }

  // ---- scaled nesting chain, actually run ----
  const Grid outer(24, 24, 12, 1500.0f, 10000.0f);
  const Grid inner(24, 24, 12, 500.0f, 10000.0f);

  ModelConfig ocfg;
  ocfg.dt = 1.5f;  // coarser grid allows the longer step
  ocfg.enable_rad = false;
  Model outer_model(outer, convective_sounding(), ocfg);
  const auto outer_ref = ReferenceState::build(outer, convective_sounding());
  SyntheticMesoscaleDriver jma(outer, outer_ref, 6.0f, 2.0f);
  outer_model.set_boundary(&jma, 4, 30.0f);
  add_thermal_bubble(outer_model.state(), outer, 18000, 18000, 1200, 4000,
                     1200, 2.5f);

  auto t0 = std::chrono::steady_clock::now();
  outer_model.advance(120.0f);
  const double t_outer =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Downscale outer -> inner initial/boundary state.
  ModelConfig icfg;
  icfg.dt = 0.5f;
  icfg.enable_rad = false;
  Model inner_model(inner, convective_sounding(), icfg);
  State bc(inner);
  t0 = std::chrono::steady_clock::now();
  nest_interpolate(outer_model.state(), outer, bc, inner);
  const double t_nest =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  inner_model.state() = bc;

  // Inner domain runs a 30-s segment with Davies relaxation toward the
  // outer state (one cycle's worth of boundary forcing).
  const auto inner_ref = ReferenceState::build(inner, convective_sounding());
  SteadyDriver hold(inner, inner_ref, 0.0f, 0.0f);
  t0 = std::chrono::steady_clock::now();
  inner_model.advance(30.0f);
  apply_davies(inner_model.state(), bc, 4, 0.5f, 10.0f);
  const double t_inner =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("\nscaled chain (measured):\n");
  std::printf("  outer model, 120 s segment:   %.2f s wall (finite=%s)\n",
              t_outer, outer_model.state().has_nonfinite() ? "NO" : "yes");
  std::printf("  nesting interpolation:        %.4f s (outer -> inner, all "
              "prognostics)\n",
              t_nest);
  std::printf("  inner model, one 30-s cycle:  %.2f s wall (finite=%s)\n",
              t_inner, inner_model.state().has_nonfinite() ? "NO" : "yes");
  std::printf("\ncadence: outer refreshes every 3 h = %d inner cycles; the "
              "inner boundary interpolation runs once per cycle.\n",
              int(10800 / 30));
  return 0;
}
