// Shared helpers for the reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper (see
// DESIGN.md's per-experiment index).  Functional results come from scaled
// OSSE runs of the real code; paper-scale timings come from the calibrated
// Fugaku cost model, and every bench that uses the projection prints the
// scaling assumptions next to the numbers.
#pragma once

#include <cstdio>
#include <string>

#include "workflow/cycle.hpp"

namespace bda::bench {

/// Scaled OSSE configuration used by the figure benches: small enough to
/// run in seconds, structured exactly like the operational system.
inline workflow::BdaSystemConfig osse_config(int members = 8) {
  workflow::BdaSystemConfig cfg;
  cfg.cycle_s = 30.0;
  cfg.n_members = members;
  cfg.model.dt = 0.6f;
  cfg.model.physics_every = 10;
  cfg.model.enable_rad = false;

  cfg.scan.range_max = 10000.0f;
  cfg.scan.gate_length = 500.0f;
  cfg.scan.n_azimuth = 48;
  cfg.scan.n_elevation = 16;

  cfg.radar.radar_x = 6000.0f;
  cfg.radar.radar_y = 6000.0f;
  cfg.radar.radar_z = 50.0f;
  cfg.radar.block_az_from = 200.0f;
  cfg.radar.block_az_to = 215.0f;

  cfg.obsgen.clear_air = true;
  cfg.obsgen.clear_air_thin = 4;

  cfg.letkf.hloc = 2000.0f;  // Table 2 value
  cfg.letkf.vloc = 2000.0f;
  cfg.letkf.rtpp_alpha = 0.7f;
  cfg.letkf.z_min = 0.0f;
  cfg.letkf.z_max = 11000.0f;
  cfg.letkf.max_obs_per_grid = 100;

  cfg.perturb.theta_amp = 0.4f;
  cfg.perturb.qv_frac = 0.04f;
  cfg.perturb.wind_amp = 0.6f;
  cfg.perturb.zmax = 6000.0f;
  return cfg;
}

inline scale::Grid osse_grid() {
  return scale::Grid::stretched(20, 20, 10, 500.0f, 10000.0f, 250.0f, 1.12f);
}

/// Spin up a twin experiment with a mature convective storm: nature rains,
/// ensemble members carry displaced/weakened versions of the storm.
inline std::unique_ptr<workflow::BdaSystem> make_storm_system(
    const workflow::BdaSystemConfig& cfg) {
  auto sys = std::make_unique<workflow::BdaSystem>(
      osse_grid(), scale::convective_sounding(), cfg);
  sys->perturb_ensemble();
  sys->trigger_storm(6000.0f, 6000.0f, 4.0f, /*in_ensemble=*/true, 1500.0f);
  sys->spinup(360.0);
  return sys;
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::printf("\n=====================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("  paper reference: %s\n", paper.c_str());
  std::printf("=====================================================\n");
}

}  // namespace bda::bench
