// Request storm against the serving tier (the paper's Sec. 1 load: every
// 30-second refresh fanned out to millions of smartphone users).
//
// Drives serve::Publisher -> ProductCache -> TileServer end to end:
// a publisher thread streams cycles on a fixed cadence while client
// threads replay a Zipf-hot tile workload (a few tiles — downtown Tokyo —
// take most of the traffic), with a thundering-herd burst fired the
// instant a client observes a new cycle, plus a trickle of pinned-cycle
// readers that deliberately reach outside the retention window.
//
// The run GATES (nonzero exit) on the serving SLOs:
//   1. p99 request latency under the bar (default 2 ms, argv[3]);
//   2. zero hits served staler than one retention window, and zero
//      latest-cycle hits with nonzero staleness.
// The full metrics dump lands in BENCH_serve_storm.json (argv[1]) for the
// CI artifact trail; argv[2] overrides the request count.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "serve/publisher.hpp"
#include "serve/tile_server.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace bda;

// Product geometry: 64x64 columns, 16 levels -> 8x8 tiles per product,
// 128 tile keys total.
constexpr idx kNx = 64, kNy = 64, kNz = 16;

serve::ProductFrame make_frame(std::uint64_t cycle) {
  serve::ProductFrame f;
  f.volume = Field3D<float>(kNx, kNy, kNz, 0);
  f.volume.fill(-20.0f);
  // A rain band sweeping across the domain: most tiles are unchanged
  // between consecutive cycles (deltas compress), a moving strip is not.
  const idx band = idx(cycle) % kNx;
  for (idx di = 0; di < 4; ++di) {
    const idx i = (band + di) % kNx;
    for (idx j = 8; j < kNy - 8; ++j)
      for (idx k = 0; k < kNz / 2; ++k)
        f.volume(i, j, k) = 35.0f + float((i + j + k) % 20);
  }
  f.map_view = Field3D<float>(kNx, kNy, 1, 0);
  for (idx i = 0; i < kNx; ++i)
    for (idx j = 0; j < kNy; ++j) {
      float m = f.volume(i, j, 0);
      for (idx k = 1; k < kNz; ++k) m = std::max(m, f.volume(i, j, k));
      f.map_view(i, j, 0) = m;
    }
  return f;
}

struct ClientStats {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t herd_bursts = 0;
  std::uint64_t stale_window_violations = 0;  // hit staler than retention
  std::uint64_t latest_staleness_violations = 0;  // latest request, stale
  std::uint64_t decode_failures = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_serve_storm.json";
  const std::uint64_t total_requests =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2'000'000ull;
  const double p99_slo_s = argc > 3 ? std::strtod(argv[3], nullptr) : 2e-3;

  bench::print_header(
      "Serving-tier request storm (Zipf-hot tiles, thundering herd)",
      "Sec. 1 (30-s refresh to millions of smartphone users)");

  constexpr std::size_t kRetention = 4;
  constexpr std::uint64_t kCycles = 150;
  constexpr auto kCyclePeriod = std::chrono::milliseconds(2);
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned n_clients = std::min(8u, hw > 2 ? hw - 1 : 2u);

  util::Metrics metrics;
  serve::ProductCache cache(kRetention);
  serve::Publisher publisher(&cache, {}, &metrics);
  serve::TileServer server(&cache, &metrics, /*sample_every=*/64);

  // Zipf CDF over all 128 tile keys (s = 1.1): rank 1 is the hot downtown
  // tile.  Deterministic key order (kind, tx, ty).
  std::vector<serve::TileKey> keys;
  for (int kind = 0; kind < 2; ++kind)
    for (idx tx = 0; tx < kNx / 8; ++tx)
      for (idx ty = 0; ty < kNy / 8; ++ty)
        keys.push_back({kind == 0 ? serve::ProductKind::kMapView
                                  : serve::ProductKind::kVolume3D,
                        tx, ty});
  std::vector<double> cdf(keys.size());
  {
    double sum = 0.0;
    for (std::size_t r = 0; r < keys.size(); ++r) {
      sum += 1.0 / std::pow(double(r + 1), 1.1);
      cdf[r] = sum;
    }
    for (double& c : cdf) c /= sum;
  }

  // Publisher thread: one cycle every kCyclePeriod, like the 30-s cadence.
  // Each cycle is drained before the next is submitted — the operational
  // system ships every refresh, it never skips one — which keeps cache
  // cycle numbering dense so the staleness gate below is exact.
  std::atomic<bool> publishing{true};
  std::atomic<std::uint64_t> drain_failures{0};
  std::thread cycle_driver([&] {
    for (std::uint64_t c = 0; c < kCycles; ++c) {
      publisher.submit(c, [c] { return make_frame(c); });
      if (!publisher.drain())
        drain_failures.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(kCyclePeriod);
    }
    publishing.store(false, std::memory_order_release);
  });

  // Client threads: Zipf-hot requests, herd bursts on cycle change, and a
  // ~5% trickle of pinned-cycle readers (some deliberately too old).
  Rng root(20260809);
  std::vector<Rng> rngs;
  for (unsigned t = 0; t < n_clients; ++t) rngs.push_back(root.split());
  const std::uint64_t quota = total_requests / n_clients;
  std::vector<ClientStats> stats(n_clients);
  std::vector<std::thread> clients;

  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned t = 0; t < n_clients; ++t)
    clients.emplace_back([&, t] {
      Rng rng = rngs[t];
      ClientStats& st = stats[t];
      std::uint64_t last_seen = 0;
      auto pick_key = [&] {
        const double u = rng.uniform();
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
        return keys[std::size_t(it - cdf.begin())];
      };
      auto issue = [&](std::uint64_t cycle) {
        const auto resp = server.get({pick_key(), cycle});
        ++st.requests;
        if (resp.hit()) {
          ++st.hits;
          if (resp.staleness_cycles() >= kRetention)
            ++st.stale_window_violations;
          if (cycle == serve::kLatestCycle && resp.staleness_cycles() != 0)
            ++st.latest_staleness_violations;
          // Spot-verify payload integrity on a sample of keyframe hits.
          if (st.hits % 1024 == 0 && resp.tile->is_keyframe()) {
            try {
              serve::decode_tile(*resp.tile, nullptr, serve::kNoBaseCycle);
            } catch (const std::exception&) {
              ++st.decode_failures;
            }
          }
        }
        return resp;
      };
      // Keep hammering until the quota is met AND publication finished, so
      // the storm covers every cycle boundary.
      while (st.requests < quota ||
             publishing.load(std::memory_order_acquire)) {
        if (rng.uniform() < 0.05) {
          // Pinned-cycle reader: lag 1..2*retention behind the head — the
          // deeper half must come back kStaleCycle, never silently old.
          const auto head = server.get({pick_key(), serve::kLatestCycle});
          ++st.requests;
          if (head.hit()) ++st.hits;
          const std::uint64_t lag = 1 + rng.uniform_int(2 * kRetention);
          if (head.latest_cycle >= lag)
            issue(head.latest_cycle - lag);
          continue;
        }
        const auto resp = issue(serve::kLatestCycle);
        if (resp.latest_cycle != last_seen) {
          // Thundering herd: a fresh cycle just published — burst like
          // every phone refreshing at once.
          last_seen = resp.latest_cycle;
          ++st.herd_bursts;
          for (int b = 0; b < 32; ++b) issue(serve::kLatestCycle);
        }
      }
    });

  for (auto& c : clients) c.join();
  cycle_driver.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  server.flush_metrics();

  ClientStats sum;
  for (const auto& st : stats) {
    sum.requests += st.requests;
    sum.hits += st.hits;
    sum.herd_bursts += st.herd_bursts;
    sum.stale_window_violations += st.stale_window_violations;
    sum.latest_staleness_violations += st.latest_staleness_violations;
    sum.decode_failures += st.decode_failures;
  }

  const auto lat = metrics.timer_stats("serve.request");
  const double keyframe_mb =
      metrics.total("serve.keyframe_bytes") / (1024.0 * 1024.0);
  const double delta_mb =
      metrics.total("serve.delta_bytes") / (1024.0 * 1024.0);

  std::printf("  clients x quota        : %u x %llu\n", n_clients,
              static_cast<unsigned long long>(quota));
  std::printf("  requests served        : %llu (%.2f Mreq/s over %.2f s)\n",
              static_cast<unsigned long long>(sum.requests),
              sum.requests / wall / 1e6, wall);
  std::printf("  hit rate               : %.2f%%  (herd bursts: %llu)\n",
              100.0 * double(sum.hits) / double(sum.requests),
              static_cast<unsigned long long>(sum.herd_bursts));
  std::printf("  latency p50 / p99 / max: %.1f / %.1f / %.1f us (sampled "
              "every 64th)\n",
              lat.p50_s * 1e6, lat.p99_s * 1e6, lat.max_s * 1e6);
  std::printf("  cycles published       : %llu / %llu (superseded %llu, "
              "restarts %d)\n",
              static_cast<unsigned long long>(publisher.published()),
              static_cast<unsigned long long>(kCycles),
              static_cast<unsigned long long>(publisher.superseded()),
              publisher.restarts());
  std::printf("  bytes shipped          : %.2f MiB keyframes + %.2f MiB "
              "deltas (delta share %.1f%%)\n",
              keyframe_mb, delta_mb,
              100.0 * delta_mb / std::max(keyframe_mb + delta_mb, 1e-9));

  bool ok = true;
  if (lat.p99_s > p99_slo_s) {
    std::printf("  GATE FAIL: p99 latency %.1f us > SLO %.1f us\n",
                lat.p99_s * 1e6, p99_slo_s * 1e6);
    ok = false;
  }
  if (sum.stale_window_violations != 0 ||
      sum.latest_staleness_violations != 0) {
    std::printf("  GATE FAIL: staleness violations (window %llu, latest "
                "%llu)\n",
                static_cast<unsigned long long>(sum.stale_window_violations),
                static_cast<unsigned long long>(
                    sum.latest_staleness_violations));
    ok = false;
  }
  if (sum.decode_failures != 0) {
    std::printf("  GATE FAIL: %llu sampled tiles failed to decode\n",
                static_cast<unsigned long long>(sum.decode_failures));
    ok = false;
  }
  if (publisher.published() != kCycles ||
      drain_failures.load(std::memory_order_relaxed) != 0) {
    std::printf("  GATE FAIL: only %llu/%llu cycles published (%llu drain "
                "timeouts)\n",
                static_cast<unsigned long long>(publisher.published()),
                static_cast<unsigned long long>(kCycles),
                static_cast<unsigned long long>(
                    drain_failures.load(std::memory_order_relaxed)));
    ok = false;
  }
  if (ok)
    std::printf("  gates: p99 %.1f us <= %.1f us, 0 staleness violations, "
                "0 decode failures -> PASS\n",
                lat.p99_s * 1e6, p99_slo_s * 1e6);

  metrics.count("serve.storm.requests", sum.requests);
  metrics.count("serve.storm.herd_bursts", sum.herd_bursts);
  metrics.count("serve.storm.staleness_violations",
                sum.stale_window_violations +
                    sum.latest_staleness_violations);
  std::ofstream json(json_path);
  json << metrics.to_json() << "\n";
  std::printf("  metrics JSON -> %s\n", json_path.c_str());
  return ok ? 0 : 1;
}
