// Table 1: operational regional NWP systems vs the BDA system.
//
// Reprints the paper's comparison table and computes the quantitative claim
// behind Sec. 5: "the BDA system offers two orders of magnitude increase in
// problem size".  Problem size here is the assimilation throughput demand,
//   (analysis grid points) x (ensemble members) / (refresh interval),
// which is what the 30-second cycle multiplies.  A scaled LETKF cycle is
// then run at each system's configuration *class* (ensemble size, refresh)
// to show the throughput ratio is realized by the actual code path.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "hpc/perf_model.hpp"

namespace {

struct SystemRow {
  const char* name;
  const char* center;
  const char* method;
  double grid_km;
  double npoints;     // forecast grid points
  double refresh_s;   // initialization frequency
  int members;        // DA ensemble size
  const char* radar_use;
};

// Paper Table 1 (grid point products computed from the listed dimensions).
const std::vector<SystemRow> kSystems = {
    {"LFM", "JMA, Japan", "Hybrid 3DVar", 2.0, 1581.0 * 1301 * 76, 3600, 1,
     "RH + radial wind"},
    {"HRRR v4", "NCEP, US", "Hybrid 3D EnVar", 3.0, 1799.0 * 1059 * 51, 3600,
     36, "latent heating"},
    {"HRDPS", "ECCC, Canada", "4DEnVar", 2.5, 2576.0 * 1456 * 62, 21600, 1,
     "latent heat nudging"},
    {"UKV", "Met Office, UK", "4DVar", 1.5, 622.0 * 810 * 70, 3600, 1,
     "latent heat nudging"},
    {"AROME", "Meteo-France", "3DVar", 1.25, 2801.0 * 1791 * 90, 3600, 1,
     "pseudo-RH from radar"},
    {"ICON-D2", "DWD, Germany", "LETKF", 2.2, 542040.0 * 65, 3600, 40,
     "latent heat nudging"},
    {"BDA2021", "RIKEN, Japan", "LETKF", 0.5, 256.0 * 256 * 60, 30, 1000,
     "reflectivity + Doppler (direct)"},
};

}  // namespace

int main() {
  using namespace bda;
  bench::print_header("Table 1 — operational NWP systems vs BDA2021",
                      "Table 1 + Sec. 5 problem-size claim");

  std::printf(
      "%-9s %-14s %-16s %7s %12s %9s %8s  %s\n", "system", "center",
      "method", "dx[km]", "gridpoints", "refresh", "members", "radar use");
  double best_other = 0;
  double bda_demand = 0;
  for (const auto& s : kSystems) {
    const double demand = s.npoints * double(s.members) / s.refresh_s;
    if (std::string(s.name) == "BDA2021")
      bda_demand = demand;
    else
      best_other = std::max(best_other, demand);
    std::printf("%-9s %-14s %-16s %7.2f %12.3g %7.0fs %8d  %s\n", s.name,
                s.center, s.method, s.grid_km, s.npoints, s.refresh_s,
                s.members, s.radar_use);
  }
  std::printf(
      "\nassimilation throughput demand = gridpoints x members / refresh\n");
  std::printf("BDA2021: %.3g point-members/s, best operational: %.3g\n",
              bda_demand, best_other);
  std::printf("ratio: %.0fx  (paper claim: two orders of magnitude)\n",
              bda_demand / best_other);

  // --- realized: run one analysis cycle at two configuration classes and
  // --- compare the measured per-cycle DA work.
  std::printf("\nrealized on the scaled OSSE (same code path):\n");
  struct Case {
    const char* label;
    int members;
    double refresh_s;
  };
  for (const Case& c : {Case{"1-h-refresh, 40 members (ICON-D2 class)", 8,
                             3600.0},
                        Case{"30-s-refresh, 1000 members (BDA class)", 24,
                             30.0}}) {
    auto cfg = bda::bench::osse_config(c.members);
    auto sys = bda::bench::make_storm_system(cfg);
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = sys->cycle();
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double per_hour = dt * 3600.0 / c.refresh_s;
    std::printf(
        "  %-45s members=%2d  cycle=%6.2fs  DA-work/hour=%7.1fs  obs=%zu\n",
        c.label, c.members, dt, per_hour, res.n_obs);
  }
  std::printf("(scaled members; the full 1000-member demand is projected by "
              "the Fugaku cost model in bench_fig5_operations)\n");
  return 0;
}
