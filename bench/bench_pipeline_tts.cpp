// Time-to-solution of the pipelined 30-s workflow (Fig 4/5 counterpart).
//
// Runs the functional OSSE cycle through workflow::PipelinedDriver — product
// forecasts on rotating worker groups, JIT-DT/regrid overlapping the
// ensemble advance — and reports the wall-clock TTS distribution from "scan
// complete" to "maps written", the quantity Fig 4 defines and Fig 5 tracks
// for 75,248 forecasts (~97% under 3 minutes).
//
// Wall scale: 1/50 of operations.  The 30-s cadence becomes 0.60 s and the
// ~120-s product-forecast runtime becomes 2.40 s of injected wall sleep on
// top of the real (small-grid) forecast compute, so the paper's 3-minute
// TTS bar maps to 3.6 s here.  The full metrics dump lands in
// BENCH_pipeline_tts.json (path overridable via argv[1]) for the CI
// artifact trail.
#include <cstdio>
#include <fstream>
#include <string>

#include "common.hpp"
#include "util/metrics.hpp"
#include "workflow/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace bda;
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_pipeline_tts.json";

  bench::print_header(
      "Pipelined cycle time-to-solution (p50/p97/p99)",
      "Fig 4 (TTS definition), Fig 5 (97% < 3 min over 75,248 forecasts)");

  auto cfg = bench::osse_config(4);
  cfg.cycle_s = 15.0;  // lighter model load per cycle: TTS, not skill
  auto sys = bench::make_storm_system(cfg);

  util::Metrics metrics;
  sys->set_metrics(&metrics);

  constexpr double kWallScale = 1.0 / 50.0;  // operations sec -> bench sec
  workflow::PipelineConfig pcfg;
  pcfg.n_groups = 4;
  pcfg.product_every = 1;
  pcfg.forecast_lead_s = 30.0;  // scaled product horizon (model seconds)
  pcfg.forecast_out_every_s = 15.0;
  pcfg.cycle_sleep_s = 30.0 * kWallScale;
  pcfg.forecast_sleep_s = 120.0 * kWallScale;

  constexpr std::size_t kCycles = 30;
  workflow::PipelinedDriver driver(*sys, pcfg, &metrics);
  driver.run(kCycles);
  driver.drain();

  const auto tts = metrics.timer_stats("pipeline.tts");
  const double bar_s = 180.0 * kWallScale;  // the 3-minute line, scaled
  std::size_t under_bar = 0;
  for (const auto& p : driver.products())
    if (p.tts_s < bar_s) ++under_bar;

  std::printf("  cycles                 : %zu\n", kCycles);
  std::printf("  forecasts launched     : %zu\n", driver.launched());
  std::printf("  forecasts dropped      : %zu\n", driver.dropped());
  std::printf("  TTS p50 / p97 / p99    : %.3f / %.3f / %.3f s\n",
              tts.p50_s, tts.p97_s, tts.p99_s);
  std::printf("  TTS mean / max         : %.3f / %.3f s\n", tts.mean_s,
              tts.max_s);
  std::printf("  under scaled 3-min bar : %zu / %zu (%.1f%%; paper: ~97%%)\n",
              under_bar, driver.products().size(),
              driver.products().empty()
                  ? 0.0
                  : 100.0 * double(under_bar) /
                        double(driver.products().size()));
  std::printf("  scale: 1/50 wall (30-s cadence -> %.2f s, 120-s forecast "
              "-> %.2f s, 3-min bar -> %.2f s)\n",
              pcfg.cycle_sleep_s, pcfg.forecast_sleep_s, bar_s);

  const auto stages = {"cycle.nature",   "cycle.observe", "cycle.jitdt",
                       "cycle.regrid",   "cycle.ensemble", "cycle.letkf",
                       "pipeline.cycle", "pipeline.forecast"};
  std::printf("  per-stage mean wall times:\n");
  for (const char* s : stages) {
    const auto st = metrics.timer_stats(s);
    if (st.count == 0) continue;
    std::printf("    %-18s %8.4f s  (n=%zu)\n", s, st.mean_s, st.count);
  }

  std::ofstream json(json_path);
  json << metrics.to_json() << "\n";
  std::printf("  metrics JSON -> %s\n", json_path.c_str());
  return 0;
}
