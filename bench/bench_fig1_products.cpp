// Fig 1: the final production products.
//
// The deployment served (a) a map view of rain intensity on the RIKEN web
// page and (b) 3-D views in MTI's smartphone application.  This bench runs
// the product-emission path end to end: forecast state -> map-view +
// 3-D-volume product files (whose mtime is T_fcst, the end of the
// time-to-solution clock) -> re-read and render.
#include <cstdio>
#include <filesystem>

#include "common.hpp"
#include "util/ascii_render.hpp"
#include "util/binary_io.hpp"
#include "workflow/products.hpp"

using namespace bda;

int main() {
  bench::print_header("Fig 1 — final production products",
                      "Fig 1a (map view) / Fig 1b (3-D view)");

  auto cfg = bench::osse_config(12);
  auto sys = bench::make_storm_system(cfg);
  for (int c = 0; c < 2; ++c) sys->cycle();
  sys->nature().advance(240.0f);

  const std::string out_dir =
      (std::filesystem::temp_directory_path() / "bda_products").string();
  std::filesystem::remove_all(out_dir);

  const auto t0 = std::chrono::steady_clock::now();
  const auto paths = workflow::write_products(out_dir, sys->grid(),
                                              sys->nature().state(),
                                              sys->time());
  const double t_write =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto sz_map = std::filesystem::file_size(paths.map_view);
  const auto sz_vol = std::filesystem::file_size(paths.volume_3d);
  std::printf("products written in %.3f s (file mtime = T_fcst, the "
              "time-to-solution endpoint):\n",
              t_write);
  std::printf("  map view:  %s (%zu bytes)\n", paths.map_view.c_str(),
              std::size_t(sz_map));
  std::printf("  3-D view:  %s (%zu bytes)\n", paths.volume_3d.c_str(),
              std::size_t(sz_vol));

  // Round-trip: the webpage/app reads the files back.
  const auto map = read_bdf(paths.map_view);
  std::printf("\nFig 1a analog — map view of rain intensity:\n");
  RField2D view(map[0].data.nx(), map[0].data.ny(), 0);
  for (idx i = 0; i < view.nx(); ++i)
    for (idx j = 0; j < view.ny(); ++j) view(i, j) = map[0].data(i, j, 0);
  std::printf("%s", render_dbz(view).c_str());

  const auto vol = read_bdf(paths.volume_3d);
  std::printf("Fig 1b analog — 3-D volume: %lld x %lld x %lld voxels "
              "(smartphone app payload)\n",
              (long long)vol[0].data.nx(), (long long)vol[0].data.ny(),
              (long long)vol[0].data.nz());
  std::filesystem::remove_all(out_dir);
  return 0;
}
