// Ablation: clear-air (null) reflectivity observations.
//
// The BDA system assimilates reflectivity directly (Table 1), which means
// no-rain volumes carry information too: they suppress spurious ensemble
// rain.  This bench repeats one analysis on an identical background with
// clear-air observations on (thinned, the production path) and off, and
// reports the spurious-rain area of the analysis mean — the quantity null
// obs exist to control.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "pawr/obsgen.hpp"
#include "verify/scores.hpp"

using namespace bda;

int main() {
  bench::print_header("Ablation — clear-air reflectivity observations",
                      "Table 1 'direct reflectivity assimilation' property");

  auto cfg = bench::osse_config(12);
  auto sys = bench::make_storm_system(cfg);
  sys->cycle();
  sys->nature().advance(real(cfg.cycle_s));
  sys->ensemble().advance(real(cfg.cycle_s));
  const auto scan = sys->observe_nature();
  letkf::ObsOperator op(sys->grid(), cfg.radar.radar_x, cfg.radar.radar_y,
                        cfg.radar.radar_z, cfg.radar.micro);
  std::vector<scale::State> background;
  for (int m = 0; m < sys->ensemble().size(); ++m)
    background.push_back(sys->ensemble().member(m));

  // The failure mode clear-air obs fix: the ensemble believes in rain the
  // radar does not see.  Inject a spurious rain cell (with member-to-member
  // spread, so the LETKF *can* remove it) far from the true storm.
  auto inject_spurious = [&] {
    for (int m = 0; m < sys->ensemble().size(); ++m) {
      auto& s = sys->ensemble().member(m);
      for (idx k = 1; k <= 4; ++k)
        s.rhoq[scale::QR](4, 4, k) =
            s.dens(4, 4, k) * real(2e-3 + 4e-4 * m);
      s.fill_halos_periodic();
    }
  };
  auto spurious_qr = [&] {
    const auto mean = sys->ensemble().mean();
    double q = 0;
    for (idx k = 1; k <= 4; ++k) q += double(mean.q(scale::QR, 4, 4, k));
    return q;
  };

  std::printf("  clear-air | obs count | spurious qr after analysis\n");
  double with_clear = 0, without_clear = 0;
  for (const bool clear_air : {false, true}) {
    for (int m = 0; m < sys->ensemble().size(); ++m)
      sys->ensemble().member(m) = background[std::size_t(m)];
    inject_spurious();
    const double before = spurious_qr();
    auto oc = cfg.obsgen;
    oc.clear_air = clear_air;
    oc.clear_air_thin = 2;  // production thinning density
    const auto obs =
        pawr::regrid_scan(scan, sys->grid(), cfg.radar.radar_x,
                          cfg.radar.radar_y, cfg.radar.radar_z, oc);
    letkf::Letkf letkf(sys->grid(), cfg.letkf);
    letkf.analyze(sys->ensemble(), obs, op);
    const double after = spurious_qr();
    std::printf("  %9s | %9zu | %.3e -> %.3e (%+.0f%%)\n",
                clear_air ? "on" : "off", obs.size(), before, after,
                100.0 * (after / before - 1.0));
    (clear_air ? with_clear : without_clear) = after;
  }
  std::printf("\nspurious rain remaining with clear-air obs: %.0f%% of the "
              "no-null-obs analysis\n",
              100.0 * with_clear / without_clear);
  std::printf("\nexpected shape: null obs add volume but remove spurious "
              "analysis rain (they are what keeps a 1000-member ensemble "
              "from inventing echoes).\n");
  return 0;
}
