// Shard-scaling bench: the sharded cycle at 1, 2, 4 and 8 simulated ranks.
//
// The paper's part <1> runs member-sharded <1-2> advances and
// domain-sharded <1-1> LETKF connected by the in-memory member<->domain
// redistribution ("MPI data transfer with RAM copy", the headline I/O
// change).  This bench drives the same structure through hpc::ShardedEngine
// and reports, per rank count:
//   - the determinism check (every layout bitwise vs the serial cycle —
//     scaling numbers from a wrong answer are worthless),
//   - advance/analysis TTS as max-over-ranks thread CPU time (the
//     node-exclusive projection; on an oversubscribed host wall clock only
//     measures the scheduler),
//   - shuffle traffic and mailbox high-water mark,
//   - the BdaCostModel projection of the measured shard cycle onto the
//     paper's 11,580-node partition (does the shuffle stay cheap at scale?).
// The metrics dump lands in BENCH_shard_scaling.json (path overridable via
// argv[1]) for the CI artifact trail, keyed "ranks1", "ranks2", ...
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common.hpp"
#include "hpc/perf_model.hpp"
#include "util/metrics.hpp"

namespace {

using namespace bda;

// 20x20 bench grid divides by every layout below.
const std::pair<int, int> kLayouts[] = {{1, 1}, {2, 1}, {2, 2}, {4, 2}};

bool states_equal(const scale::State& a, const scale::State& b) {
  auto eq = [](std::span<const real> x, std::span<const real> y) {
    return x.size() == y.size() &&
           std::memcmp(x.data(), y.data(), x.size() * sizeof(real)) == 0;
  };
  bool ok = eq(a.dens.raw(), b.dens.raw()) && eq(a.momx.raw(), b.momx.raw()) &&
            eq(a.momy.raw(), b.momy.raw()) && eq(a.momz.raw(), b.momz.raw()) &&
            eq(a.rhot.raw(), b.rhot.raw());
  for (int t = 0; t < scale::kNumTracers; ++t)
    ok = ok && eq(a.rhoq[t].raw(), b.rhoq[t].raw());
  return ok;
}

struct RunResult {
  int ranks = 0;
  bool bitwise = true;
  double advance_tts_s = 0;   ///< mean over cycles of max-over-ranks CPU
  double analysis_tts_s = 0;
  double shuffle_bytes_per_cycle = 0;
  std::size_t peak_mailbox = 0;
  std::string metrics_json;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_shard_scaling.json";
  constexpr std::size_t kCycles = 3;

  bench::print_header(
      "Sharded cycle scaling (threads-as-ranks, in-memory shuffle)",
      "sec. on part <1> layouts; RAM-copy SCALE<->LETKF I/O");

  auto cfg = bench::osse_config(8);
  cfg.cycle_s = 15.0;

  // Serial reference trajectory: the answer every layout must reproduce.
  auto serial = bench::make_storm_system(cfg);
  for (std::size_t c = 0; c < kCycles; ++c) serial->cycle();

  std::vector<RunResult> results;
  for (const auto& [px, py] : kLayouts) {
    auto sys = bench::make_storm_system(cfg);
    sys->enable_sharding(px, py);
    util::Metrics metrics;
    sys->set_metrics(&metrics);
    for (std::size_t c = 0; c < kCycles; ++c) sys->cycle();

    RunResult r;
    r.ranks = px * py;
    for (int m = 0; m < sys->ensemble().size(); ++m)
      r.bitwise = r.bitwise && states_equal(sys->ensemble().member(m),
                                            serial->ensemble().member(m));
    const auto adv = metrics.timer_stats("shard.advance_max");
    const auto ana = metrics.timer_stats("shard.analysis_max");
    r.advance_tts_s = adv.mean_s;
    r.analysis_tts_s = ana.mean_s;
    r.shuffle_bytes_per_cycle =
        double(metrics.counter("shard.shuffle_bytes")) / double(kCycles);
    r.peak_mailbox = sys->sharded_engine()->peak_mailbox_depth();
    r.metrics_json = metrics.to_json();
    results.push_back(std::move(r));
  }

  std::printf("  %zu cycles per layout, %d members, %dx%d grid\n", kCycles,
              cfg.n_members, int(bench::osse_grid().nx()),
              int(bench::osse_grid().ny()));
  std::printf("  TTS = max-over-ranks thread CPU time per cycle "
              "(node-exclusive projection)\n");
  std::printf("  ranks  bitwise  advance-TTS  analysis-TTS  shuffle/cycle  "
              "peak-mailbox\n");
  bool all_bitwise = true;
  bool advance_scales = true;
  for (const auto& r : results) {
    std::printf("  %5d  %7s  %9.3f s  %10.3f s  %11.0f B  %12zu\n", r.ranks,
                r.bitwise ? "yes" : "NO", r.advance_tts_s, r.analysis_tts_s,
                r.shuffle_bytes_per_cycle, r.peak_mailbox);
    all_bitwise = all_bitwise && r.bitwise;
  }
  // The member blocks shrink 1 -> 4 ranks (8, 4, 2 members per rank), so the
  // per-rank advance cost must fall with them.
  advance_scales = results[2].advance_tts_s < results[0].advance_tts_s;
  std::printf("  determinism: %s; advance TTS decreasing 1 -> 4 ranks: %s\n",
              all_bitwise ? "every layout bitwise-identical to serial"
                          : "VIOLATED",
              advance_scales ? "yes" : "NO");

  // Project the largest measured layout onto the paper's partition.  The
  // host cycle is a miniature (small grid, few members), so the measured
  // per-shard cost is first scaled to the paper's problem size — per-cell
  // per-member work is what the measurement actually calibrates.
  const auto& big = results.back();
  const auto g = bench::osse_grid();
  const double host_cells = double(g.nx() * g.ny() * g.nz());
  const double paper_cells = 256.0 * 256.0 * 60.0;  // Table 3 inner domain
  const double paper_members = 1000.0;
  const double work_scale =
      (paper_cells / host_cells) * (paper_members / double(cfg.n_members));
  hpc::BdaCostModel model(hpc::reference_calibration(), hpc::FugakuSpec{});
  hpc::ShardMeasure meas;
  meas.ranks = big.ranks;
  meas.advance_cpu_s = big.advance_tts_s * work_scale;
  meas.analysis_cpu_s = big.analysis_tts_s * work_scale;
  meas.shuffle_bytes = big.shuffle_bytes_per_cycle * work_scale;
  const auto& spec = model.spec();
  const int nodes = spec.nodes_analysis + spec.nodes_forecast;
  const auto proj = model.project_shards(meas, nodes);
  std::printf("  projection to %d nodes at paper problem size "
              "(x%.0f work: %.2e cells, %.0f members;\n"
              "   node_speedup %.0f, complexity %.0f):\n",
              proj.nodes, work_scale, paper_cells, paper_members,
              spec.node_speedup, spec.model_complexity);
  std::printf("    advance %.3f s + analysis %.3f s + shuffle %.4f s = "
              "%.3f s per cycle\n",
              proj.t_advance_s, proj.t_analysis_s, proj.t_shuffle_s,
              proj.t_total_s);
  std::printf("    (the in-memory redistribution is noise next to compute — "
              "the paper's point)\n");

  std::ofstream json(json_path);
  json << "{\n";
  for (std::size_t i = 0; i < results.size(); ++i)
    json << "  \"ranks" << results[i].ranks
         << "\": " << results[i].metrics_json
         << (i + 1 < results.size() ? ",\n" : "\n");
  json << "}\n";
  std::printf("  metrics JSON -> %s\n", json_path.c_str());
  return all_bitwise && advance_scales ? 0 : 1;
}
