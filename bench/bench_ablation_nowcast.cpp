// Ablation: BDA forecast vs advection nowcast vs persistence.
//
// Honda et al. 2022 [34] ("Advantage of 30-s-Updating Numerical Weather
// Prediction ... over Operational Nowcast") is the paper's companion
// comparison: nowcasts extrapolate observed echoes with motion vectors and
// beat frozen persistence, but cannot capture growth/decay — NWP can.
// Scaled version: score the BDA product forecast, the block-matching
// advection nowcast built from the last two scans, and frozen persistence
// against the evolving truth.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "scale/model.hpp"
#include "verify/nowcast.hpp"
#include "verify/persistence.hpp"
#include "verify/scores.hpp"

using namespace bda;

int main() {
  bench::print_header("Ablation — BDA vs advection nowcast vs persistence",
                      "Sec. 6 baseline practice; Honda et al. 2022 [34]");

  auto cfg = bench::osse_config(12);
  auto sys = bench::make_storm_system(cfg);
  for (int c = 0; c < 2; ++c) sys->cycle();

  // Two consecutive observed maps give the nowcast its motion vector.
  const RField2D obs_prev = sys->reflectivity_map(sys->nature().state());
  sys->cycle();
  const RField2D obs_now = sys->reflectivity_map(sys->nature().state());
  const auto motion =
      verify::estimate_motion(obs_prev, obs_now, {}, cfg.cycle_s);
  std::printf("estimated echo motion: %.2f, %.2f cells/min (valid=%s)\n",
              double(motion.u) * 60.0, double(motion.v) * 60.0,
              motion.valid ? "yes" : "no");

  // Truth and BDA forecast trajectories from the analysis time.
  scale::Model truth(sys->grid(), scale::convective_sounding(), cfg.model);
  truth.state() = sys->nature().state();
  scale::Model fcst(sys->grid(), scale::convective_sounding(), cfg.model);
  fcst.state() = sys->ensemble().mean();
  verify::PersistenceForecast persist(obs_now);

  const double lead_step = 120.0;
  const int n_leads = 5;
  std::printf("\n  lead [min] |   BDA   | nowcast | persistence\n");
  for (int l = 1; l <= n_leads; ++l) {
    truth.advance(real(lead_step));
    fcst.advance(real(lead_step));
    const double lead = l * lead_step;
    const RField2D obs = sys->reflectivity_map(truth.state());
    const RField2D bda = sys->reflectivity_map(fcst.state());
    const RField2D now = verify::advect_nowcast(obs_now, motion, lead);
    const double ts_bda = verify::contingency(bda, obs, 30.0f).threat_score();
    const double ts_now = verify::contingency(now, obs, 30.0f).threat_score();
    const double ts_per =
        verify::contingency(persist.at(lead), obs, 30.0f).threat_score();
    std::printf("  %9.1f | %7.3f | %7.3f | %7.3f\n", lead / 60.0, ts_bda,
                ts_now, ts_per);
  }
  std::printf("\nexpected shape ([34]): nowcast >= persistence; BDA >= both "
              "at longer leads where storm evolution (growth/decay/new "
              "cells) dominates pure translation.\n");
  return 0;
}
