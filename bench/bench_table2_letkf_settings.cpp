// Table 2: the experimental settings of the LETKF.
//
// One spun-up storm OSSE provides a fixed background ensemble and a fixed
// observation set; the analysis is then repeated with the paper's exact
// Table 2 configuration and with each knob perturbed, on restored copies of
// the background — the "comprehensive sensitivity tests" of Sec. 5 in
// miniature, with every run sharing identical inputs.
#include <chrono>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "pawr/obsgen.hpp"
#include "verify/scores.hpp"

using namespace bda;

namespace {

struct Bed {
  std::unique_ptr<workflow::BdaSystem> sys;
  std::vector<scale::State> background;
  letkf::ObsVector obs;
  std::unique_ptr<letkf::ObsOperator> op;

  void restore() {
    for (int m = 0; m < sys->ensemble().size(); ++m)
      sys->ensemble().member(m) = background[std::size_t(m)];
  }
  double qr_rmse() const {
    const auto mean = sys->ensemble().mean();
    return verify::rmse3(mean.rhoq[scale::QR],
                         sys->nature().state().rhoq[scale::QR]);
  }
  double theta_spread() const {
    const int k = sys->ensemble().size();
    double mean = 0;
    for (int m = 0; m < k; ++m)
      mean += double(sys->ensemble().member(m).theta(10, 10, 3));
    mean /= k;
    double var = 0;
    for (int m = 0; m < k; ++m) {
      const double d = double(sys->ensemble().member(m).theta(10, 10, 3)) - mean;
      var += d * d;
    }
    return var / (k - 1);
  }
};

Bed make_bed() {
  Bed bed;
  auto cfg = bench::osse_config(12);
  bed.sys = bench::make_storm_system(cfg);
  bed.sys->cycle();  // one assimilation so the ensemble is storm-aware
  bed.sys->nature().advance(real(cfg.cycle_s));
  bed.sys->ensemble().advance(real(cfg.cycle_s));
  const auto scan = bed.sys->observe_nature();
  bed.obs = pawr::regrid_scan(scan, bed.sys->grid(), cfg.radar.radar_x,
                              cfg.radar.radar_y, cfg.radar.radar_z,
                              cfg.obsgen);
  bed.op = std::make_unique<letkf::ObsOperator>(
      bed.sys->grid(), cfg.radar.radar_x, cfg.radar.radar_y,
      cfg.radar.radar_z, cfg.radar.micro);
  for (int m = 0; m < bed.sys->ensemble().size(); ++m)
    bed.background.push_back(bed.sys->ensemble().member(m));
  return bed;
}

letkf::LetkfConfig paper_config() {
  letkf::LetkfConfig lk;        // Table 2 values:
  lk.hloc = 2000.0f;            //   localization horizontal 2 km
  lk.vloc = 2000.0f;            //   localization vertical 2 km
  lk.max_obs_per_grid = 1000;   //   max observation number per grid
  lk.rtpp_alpha = 0.95f;        //   RTPP factor 0.95
  lk.gross_refl = 10.0f;        //   gross error check, reflectivity [dBZ]
  lk.gross_dopp = 15.0f;        //   gross error check, Doppler [m/s]
  lk.z_min = 500.0f;            //   height range for analysis 0.5-11 km
  lk.z_max = 11000.0f;
  return lk;
}

void run_case(Bed& bed, const char* label, const letkf::LetkfConfig& lk) {
  bed.restore();
  const double spread_b = bed.theta_spread();
  letkf::Letkf letkf(bed.sys->grid(), lk);
  const auto t0 = std::chrono::steady_clock::now();
  const auto stats = letkf.analyze(bed.sys->ensemble(), bed.obs, *bed.op);
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf(
      "%-44s obs_in=%5zu qc=%3zu grid=%5zu locobs=%6.1f |inno|=%5.2f "
      "qr_rmse=%.3e spread=%4.2f t=%5.2fs\n",
      label, stats.n_obs_in, stats.n_obs_qc, stats.n_grid_updated,
      stats.mean_local_obs, stats.mean_abs_innovation, bed.qr_rmse(),
      bed.theta_spread() / std::max(spread_b, 1e-12), dt);
}

}  // namespace

int main() {
  bench::print_header("Table 2 — LETKF experimental settings",
                      "Table 2; sensitivity per Sec. 5 / ref [35]");
  std::printf(
      "paper: 1000 members | regridded obs 500 m | err 5 dBZ / 3 m/s |\n"
      "       max 1000 obs/grid | gross check 10 dBZ / 15 m/s |\n"
      "       localization 2 km / 2 km | RTPP 0.95 | analysis 0.5-11 km\n\n");

  Bed bed = make_bed();
  std::printf("background qr RMSE: %.3e, observations: %zu\n\n",
              bed.qr_rmse(), bed.obs.size());

  run_case(bed, "paper Table 2 settings (scaled ensemble)", paper_config());
  {
    auto lk = paper_config();
    lk.rtpp_alpha = 0.0f;
    run_case(bed, "RTPP off (alpha = 0): spread collapses", lk);
  }
  {
    auto lk = paper_config();
    lk.hloc = lk.vloc = 500.0f;
    run_case(bed, "localization 0.5 km: influence starved", lk);
  }
  {
    auto lk = paper_config();
    lk.hloc = lk.vloc = 8000.0f;
    run_case(bed, "localization 8 km: spurious correlations", lk);
  }
  {
    auto lk = paper_config();
    lk.max_obs_per_grid = 10;
    run_case(bed, "obs cap 10: information discarded", lk);
  }
  {
    auto lk = paper_config();
    lk.gross_refl = 1.0f;
    lk.gross_dopp = 1.0f;
    run_case(bed, "gross check 1 dBZ / 1 m/s: QC over-rejects", lk);
  }
  {
    auto lk = paper_config();
    lk.z_min = 0.0f;
    lk.z_max = 99999.0f;
    run_case(bed, "no height range restriction", lk);
  }
  return 0;
}
