// Table 3: the experimental settings of SCALE for the inner domain.
//
// Exercises the model at the paper's configuration: dt = 0.4 s on a 500-m
// grid with surface-refined vertical levels, hybrid (HEVI) integration, and
// the full physics suite.  Shows (a) why the vertical implicit solver is
// required — the vertical acoustic CFL exceeds 1 at dt = 0.4 s — and (b)
// the per-step cost of each physics component.
#include <chrono>
#include <cstdio>

#include "common.hpp"
#include "scale/model.hpp"

using namespace bda;
using namespace bda::scale;

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

int main() {
  bench::print_header("Table 3 — SCALE inner-domain settings",
                      "Table 3 (dt = 0.4 s, HEVI, SM6 physics suite)");

  // Paper column geometry at reduced horizontal extent (cost).
  Grid grid = Grid::stretched(24, 24, 60, 500.0f, 16400.0f, 80.0f, 1.032f);
  std::printf("grid: %lld x %lld x %lld, dx = %.0f m, top = %.0f m\n",
              (long long)grid.nx(), (long long)grid.ny(),
              (long long)grid.nz(), double(grid.dx()), double(grid.ztop()));
  std::printf("lowest layer dz = %.1f m, highest dz = %.1f m\n",
              double(grid.dz(0)),
              double(grid.dz(grid.nz() - 1)));

  const real dt = 0.4f;  // Table 3
  const real cs = 347.0f;
  std::printf("\nacoustic CFL at dt = %.1f s:\n", double(dt));
  std::printf("  horizontal: cs*dt/dx = %.2f (< 1: explicit OK)\n",
              double(cs * dt / grid.dx()));
  std::printf("  vertical:   cs*dt/dz_min = %.2f (> 1: explicit UNSTABLE;\n"
              "              the implicit vertical solver is what allows the "
              "Table 3 step)\n",
              double(cs * dt / grid.dz(0)));

  // Full-physics stability + cost at the paper step.
  ModelConfig cfg;
  cfg.dt = dt;
  cfg.physics_every = 5;
  Model model(grid, convective_sounding(), cfg);
  add_thermal_bubble(model.state(), grid, 6000, 6000, 1200, 2500, 1000,
                     3.0f);
  // Warm up and confirm stability over 60 s of model time.
  auto t0 = std::chrono::steady_clock::now();
  model.advance(60.0f);
  const double t_60s = seconds_since(t0);
  std::printf("\n60 s of model time (150 steps, full physics): %.2f s wall, "
              "finite = %s\n",
              t_60s, model.state().has_nonfinite() ? "NO" : "yes");

  // Per-component cost.
  std::printf("\nper-step cost breakdown (same state):\n");
  {
    const auto ref = ReferenceState::build(grid, convective_sounding());
    Dynamics dyn(grid, ref, cfg.dyn);
    State s = model.state();
    t0 = std::chrono::steady_clock::now();
    for (int n = 0; n < 10; ++n) dyn.step(s, dt);
    std::printf("  dynamics (RK3 + HEVI):   %7.2f ms/step\n",
                seconds_since(t0) * 100.0);
    Microphysics mp(grid, cfg.micro);
    t0 = std::chrono::steady_clock::now();
    for (int n = 0; n < 10; ++n) mp.step(s, dt);
    std::printf("  microphysics (SM6):      %7.2f ms/step\n",
                seconds_since(t0) * 100.0);
    Turbulence turb(grid, cfg.turb);
    t0 = std::chrono::steady_clock::now();
    for (int n = 0; n < 10; ++n) turb.step(s, dt);
    std::printf("  turbulence (Smagorinsky):%7.2f ms/step\n",
                seconds_since(t0) * 100.0);
    BoundaryLayer pbl(grid, cfg.pbl);
    t0 = std::chrono::steady_clock::now();
    for (int n = 0; n < 10; ++n) pbl.step(s, dt);
    std::printf("  boundary layer (TKE):    %7.2f ms/step\n",
                seconds_since(t0) * 100.0);
    Surface sfc(grid, cfg.sfc);
    t0 = std::chrono::steady_clock::now();
    for (int n = 0; n < 10; ++n) sfc.step(s, dt, &pbl);
    std::printf("  surface (Beljaars bulk): %7.2f ms/step\n",
                seconds_since(t0) * 100.0);
    Radiation rad(grid, cfg.rad);
    t0 = std::chrono::steady_clock::now();
    for (int n = 0; n < 10; ++n) rad.step(s, dt);
    std::printf("  radiation (gray):        %7.2f ms/step\n",
                seconds_since(t0) * 100.0);
  }

  // RK stage count ablation: RK3 vs forward Euler at the same step.
  std::printf("\ntime integration (Table 3: 'hybrid explicit/implicit'):\n");
  for (int stages : {1, 3}) {
    ModelConfig c2;
    c2.dt = dt;
    c2.dyn.rk_stages = stages;
    c2.enable_turb = c2.enable_pbl = c2.enable_sfc = c2.enable_rad = false;
    Model m2(grid, convective_sounding(), c2);
    add_thermal_bubble(m2.state(), grid, 6000, 6000, 1200, 2500, 1000, 3.0f);
    t0 = std::chrono::steady_clock::now();
    m2.advance(30.0f);
    std::printf("  RK%d: 30 s model time in %.2f s wall, finite = %s\n",
                stages, seconds_since(t0),
                m2.state().has_nonfinite() ? "NO" : "yes");
  }
  return 0;
}
