// Fig 8: 3-D bird's-eye view of forecast rain cores.
//
// The paper renders simulated reflectivity shells every 10 dBZ (10-50 dBZ)
// and highlights "precise 3-D structures of each rain core".  The scaled
// analog: a mature forecast storm's 3-D reflectivity is decomposed into
// iso-dBZ shell areas per height, connected-component rain cores, and a
// column-max bird's-eye map.
#include <cstdio>

#include "common.hpp"
#include "scale/microphysics.hpp"
#include "util/ascii_render.hpp"
#include "workflow/products.hpp"

using namespace bda;

int main() {
  bench::print_header("Fig 8 — 3-D structure of forecast rain",
                      "Fig 8 (July 30, 2021 case, scaled OSSE analog)");

  auto cfg = bench::osse_config(12);
  auto sys = bench::make_storm_system(cfg);
  for (int c = 0; c < 3; ++c) sys->cycle();
  // Let the forecast storm mature a little past the analysis.
  sys->nature().advance(300.0f);

  const auto& g = sys->grid();
  RField3D dbz(g.nx(), g.ny(), g.nz(), 0);
  scale::reflectivity_field(sys->nature().state(), dbz);

  std::printf("bird's-eye view (column-max reflectivity):\n%s",
              render_dbz(column_max(dbz, 0, g.nz())).c_str());

  const std::vector<real> shells = {10, 20, 30, 40, 50};
  const auto prof = workflow::dbz_shell_profile(dbz, shells);
  std::printf("\niso-dBZ shell area [cells] per height (Fig 8 shells):\n");
  std::printf("  z [km] | >=10 | >=20 | >=30 | >=40 | >=50 dBZ\n");
  for (idx k = 0; k < g.nz(); ++k) {
    bool any = false;
    for (std::size_t t = 0; t < shells.size(); ++t)
      if (prof[t][std::size_t(k)]) any = true;
    if (!any) continue;
    std::printf("  %6.2f |", double(g.zc(k)) / 1000.0);
    for (std::size_t t = 0; t < shells.size(); ++t)
      std::printf(" %4zu |", prof[t][std::size_t(k)]);
    std::printf("\n");
  }

  for (real thresh : {30.0f, 40.0f}) {
    const auto cores = workflow::rain_cores(dbz, thresh);
    std::printf("\nrain cores (>= %.0f dBZ, 6-connected): %zu cores;",
                double(thresh), cores.size());
    std::printf(" voxel counts:");
    for (std::size_t c = 0; c < std::min<std::size_t>(cores.size(), 8); ++c)
      std::printf(" %zu", cores[c]);
    std::printf("\n");
  }

  // Echo-top height (highest 10-dBZ level) — the 3-D quantity forecasters
  // read from the Fig 8 view.
  real echo_top = 0;
  for (idx i = 0; i < g.nx(); ++i)
    for (idx j = 0; j < g.ny(); ++j)
      for (idx k = g.nz() - 1; k >= 0; --k)
        if (dbz(i, j, k) >= 10.0f) {
          echo_top = std::max(echo_top, g.zc(k));
          break;
        }
  std::printf("\necho-top height (10 dBZ): %.1f km\n", double(echo_top) / 1000.0);
  return 0;
}
