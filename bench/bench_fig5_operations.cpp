// Fig 5: the month-long operational record.
//
// Simulates the two deployment windows (Olympics: July 20 - Aug 8;
// Paralympics: Aug 25 - Sep 5, 2021) cycle by cycle with the calibrated
// cost model, rain-area climatology and failure injection, and prints:
//   (a/b) per-period time series summaries with outage (gray) periods,
//   (c)   the time-to-solution histogram with the fraction under 3 minutes,
// next to the paper's reported numbers (75,248 forecasts; ~97% < 3 min;
// JIT-DT ~3 s; <1> ~15 s; <2> ~2 min).
#include <cstdio>

#include "common.hpp"
#include "util/stats.hpp"
#include "workflow/operations.hpp"

using namespace bda;
using namespace bda::workflow;

namespace {

void run_period(const char* name, std::size_t days,
                const OperationSimulator& sim, Rng& rng,
                std::vector<CycleRecord>& all) {
  const std::size_t cycles = days * 86400 / 30;
  const auto recs = sim.run(cycles, rng);
  const auto sum = OperationSimulator::summarize(recs);

  std::printf("\n%s (%zu days, %zu cycles):\n", name, days, cycles);
  std::printf("  forecasts produced: %zu (%.1f%% of cycles)\n",
              sum.forecasts_produced,
              100.0 * double(sum.forecasts_produced) / double(cycles));
  std::printf("  TTS: mean %.1f s, median %.1f s, p97 %.1f s, max %.1f s\n",
              sum.mean_tts, sum.p50_tts, sum.p97_tts, sum.max_tts);
  std::printf("  under 3 min: %.1f%%\n", 100.0 * sum.frac_under_3min);

  // Daily digest: mean TTS + rain area + outage cycles (the gray shading).
  std::printf("  day | mean TTS | rain>=1mm/h | rain>=20mm/h | outage\n");
  for (std::size_t d = 0; d < days; ++d) {
    RunningStats tts, r1, r20;
    std::size_t gray = 0;
    for (std::size_t c = d * 2880; c < (d + 1) * 2880 && c < recs.size();
         ++c) {
      const auto& r = recs[c];
      r1.add(r.rain_area_1mm);
      r20.add(r.rain_area_20mm);
      if (r.produced)
        tts.add(r.tts);
      else
        ++gray;
    }
    std::printf("  %3zu | %6.1f s | %8.0f km2 | %9.0f km2 | %4zu cycles%s\n",
                d + 1, tts.mean(), r1.mean(), r20.mean(), gray,
                gray > 0 ? "  ###" : "");
  }
  all.insert(all.end(), recs.begin(), recs.end());
}

}  // namespace

int main() {
  bench::print_header("Fig 5 — month-long time-to-solution record",
                      "Fig 5a/5b/5c; Sec. 7 performance results");

  // The fixed reference calibration keeps this bench's output exactly
  // reproducible; bench_fig2_workflow shows the live host-measured variant.
  const auto cal = hpc::reference_calibration();
  OperationConfig cfg;
  OperationSimulator sim(cfg, cal);
  std::printf("cost model: reference %.2e cells/s, %.1f LETKF pts/s; "
              "node_speedup=%.0f, complexity=%.0f\n",
              cal.model_cells_per_s, cal.letkf_points_per_s,
              cfg.fugaku.node_speedup, cfg.fugaku.model_complexity);

  Rng rng(20210720);
  std::vector<CycleRecord> all;
  run_period("Olympics period (Jul 20 - Aug 8)", 20, sim, rng, all);
  run_period("Paralympics period (Aug 25 - Sep 5)", 12, sim, rng, all);

  const auto sum = OperationSimulator::summarize(all);
  std::printf("\n==== combined record vs paper ====\n");
  std::printf("  forecasts produced:  %zu      (paper: 75,248)\n",
              sum.forecasts_produced);
  std::printf("  net production time: %.1f days (paper: 26 d 3 h 4 m)\n",
              sum.produced_seconds / 86400.0);
  std::printf("  under 3 minutes:     %.1f%%    (paper: ~97%%)\n",
              100.0 * sum.frac_under_3min);
  std::printf("  mean JIT-DT:         %.1f s   (paper: ~3 s)\n",
              sum.mean_jitdt);
  std::printf("  mean LETKF <1-1>:    %.1f s   (paper: <1> total ~15 s)\n",
              sum.mean_letkf);
  std::printf("  mean forecast <2>:   %.1f s   (paper: ~2 min)\n",
              sum.mean_fcst);

  // Fig 5c: the histogram.
  std::printf("\nFig 5c — histogram of time-to-solution (minutes):\n");
  Histogram hist(0.0, 6.0, 24);
  for (const auto& r : all)
    if (r.produced) hist.add(r.tts / 60.0);
  std::printf("%s", hist.render(60).c_str());

  // Rain-area dependence (Sec. 7: "the more the rain area, the more the
  // computation").
  RunningStats low, high;
  for (const auto& r : all) {
    if (!r.produced) continue;
    (r.rain_area_1mm < 300.0 ? low : high).add(r.t_letkf);
  }
  std::printf("\nLETKF time by rain regime: <300 km2: %.2f s;  >=300 km2: "
              "%.2f s (+%.0f%%)\n",
              low.mean(), high.mean(),
              100.0 * (high.mean() / low.mean() - 1.0));
  return 0;
}
