# Empty compiler generated dependencies file for operational_campaign.
# This may be replaced when dependencies are built.
