file(REMOVE_RECURSE
  "CMakeFiles/operational_campaign.dir/operational_campaign.cpp.o"
  "CMakeFiles/operational_campaign.dir/operational_campaign.cpp.o.d"
  "operational_campaign"
  "operational_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operational_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
