file(REMOVE_RECURSE
  "CMakeFiles/inspect_files.dir/inspect_files.cpp.o"
  "CMakeFiles/inspect_files.dir/inspect_files.cpp.o.d"
  "inspect_files"
  "inspect_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
