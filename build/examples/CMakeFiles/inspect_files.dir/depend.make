# Empty dependencies file for inspect_files.
# This may be replaced when dependencies are built.
