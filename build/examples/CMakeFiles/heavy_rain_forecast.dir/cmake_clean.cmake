file(REMOVE_RECURSE
  "CMakeFiles/heavy_rain_forecast.dir/heavy_rain_forecast.cpp.o"
  "CMakeFiles/heavy_rain_forecast.dir/heavy_rain_forecast.cpp.o.d"
  "heavy_rain_forecast"
  "heavy_rain_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heavy_rain_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
