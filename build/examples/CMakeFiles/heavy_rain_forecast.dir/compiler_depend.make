# Empty compiler generated dependencies file for heavy_rain_forecast.
# This may be replaced when dependencies are built.
