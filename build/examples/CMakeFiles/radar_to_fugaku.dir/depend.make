# Empty dependencies file for radar_to_fugaku.
# This may be replaced when dependencies are built.
