file(REMOVE_RECURSE
  "CMakeFiles/radar_to_fugaku.dir/radar_to_fugaku.cpp.o"
  "CMakeFiles/radar_to_fugaku.dir/radar_to_fugaku.cpp.o.d"
  "radar_to_fugaku"
  "radar_to_fugaku.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radar_to_fugaku.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
