file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nowcast.dir/bench_ablation_nowcast.cpp.o"
  "CMakeFiles/bench_ablation_nowcast.dir/bench_ablation_nowcast.cpp.o.d"
  "bench_ablation_nowcast"
  "bench_ablation_nowcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nowcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
