# Empty dependencies file for bench_ablation_nowcast.
# This may be replaced when dependencies are built.
