file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multiradar.dir/bench_ablation_multiradar.cpp.o"
  "CMakeFiles/bench_ablation_multiradar.dir/bench_ablation_multiradar.cpp.o.d"
  "bench_ablation_multiradar"
  "bench_ablation_multiradar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multiradar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
