# Empty compiler generated dependencies file for bench_ablation_multiradar.
# This may be replaced when dependencies are built.
