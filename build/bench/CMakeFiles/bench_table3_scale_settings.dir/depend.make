# Empty dependencies file for bench_table3_scale_settings.
# This may be replaced when dependencies are built.
