file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_clearair.dir/bench_ablation_clearair.cpp.o"
  "CMakeFiles/bench_ablation_clearair.dir/bench_ablation_clearair.cpp.o.d"
  "bench_ablation_clearair"
  "bench_ablation_clearair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_clearair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
