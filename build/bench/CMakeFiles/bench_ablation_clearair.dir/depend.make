# Empty dependencies file for bench_ablation_clearair.
# This may be replaced when dependencies are built.
