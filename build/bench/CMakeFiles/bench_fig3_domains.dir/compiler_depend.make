# Empty compiler generated dependencies file for bench_fig3_domains.
# This may be replaced when dependencies are built.
