file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_operations.dir/bench_fig5_operations.cpp.o"
  "CMakeFiles/bench_fig5_operations.dir/bench_fig5_operations.cpp.o.d"
  "bench_fig5_operations"
  "bench_fig5_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
