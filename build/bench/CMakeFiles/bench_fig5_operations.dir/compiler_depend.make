# Empty compiler generated dependencies file for bench_fig5_operations.
# This may be replaced when dependencies are built.
