# Empty compiler generated dependencies file for bench_table2_letkf_settings.
# This may be replaced when dependencies are built.
