# Empty dependencies file for bench_fig1_products.
# This may be replaced when dependencies are built.
