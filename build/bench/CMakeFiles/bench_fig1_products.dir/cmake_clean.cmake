file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_products.dir/bench_fig1_products.cpp.o"
  "CMakeFiles/bench_fig1_products.dir/bench_fig1_products.cpp.o.d"
  "bench_fig1_products"
  "bench_fig1_products.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_products.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
