file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_snapshot.dir/bench_fig6_snapshot.cpp.o"
  "CMakeFiles/bench_fig6_snapshot.dir/bench_fig6_snapshot.cpp.o.d"
  "bench_fig6_snapshot"
  "bench_fig6_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
