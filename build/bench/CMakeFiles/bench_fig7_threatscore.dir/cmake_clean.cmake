file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_threatscore.dir/bench_fig7_threatscore.cpp.o"
  "CMakeFiles/bench_fig7_threatscore.dir/bench_fig7_threatscore.cpp.o.d"
  "bench_fig7_threatscore"
  "bench_fig7_threatscore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_threatscore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
