# Empty dependencies file for bench_fig7_threatscore.
# This may be replaced when dependencies are built.
