file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_3dstructure.dir/bench_fig8_3dstructure.cpp.o"
  "CMakeFiles/bench_fig8_3dstructure.dir/bench_fig8_3dstructure.cpp.o.d"
  "bench_fig8_3dstructure"
  "bench_fig8_3dstructure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_3dstructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
