# Empty compiler generated dependencies file for bench_fig8_3dstructure.
# This may be replaced when dependencies are built.
