
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pawr/datafile.cpp" "src/pawr/CMakeFiles/bda_pawr.dir/datafile.cpp.o" "gcc" "src/pawr/CMakeFiles/bda_pawr.dir/datafile.cpp.o.d"
  "/root/repo/src/pawr/forward.cpp" "src/pawr/CMakeFiles/bda_pawr.dir/forward.cpp.o" "gcc" "src/pawr/CMakeFiles/bda_pawr.dir/forward.cpp.o.d"
  "/root/repo/src/pawr/obsgen.cpp" "src/pawr/CMakeFiles/bda_pawr.dir/obsgen.cpp.o" "gcc" "src/pawr/CMakeFiles/bda_pawr.dir/obsgen.cpp.o.d"
  "/root/repo/src/pawr/scan.cpp" "src/pawr/CMakeFiles/bda_pawr.dir/scan.cpp.o" "gcc" "src/pawr/CMakeFiles/bda_pawr.dir/scan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scale/CMakeFiles/bda_scale.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
