# Empty compiler generated dependencies file for bda_pawr.
# This may be replaced when dependencies are built.
