file(REMOVE_RECURSE
  "CMakeFiles/bda_pawr.dir/datafile.cpp.o"
  "CMakeFiles/bda_pawr.dir/datafile.cpp.o.d"
  "CMakeFiles/bda_pawr.dir/forward.cpp.o"
  "CMakeFiles/bda_pawr.dir/forward.cpp.o.d"
  "CMakeFiles/bda_pawr.dir/obsgen.cpp.o"
  "CMakeFiles/bda_pawr.dir/obsgen.cpp.o.d"
  "CMakeFiles/bda_pawr.dir/scan.cpp.o"
  "CMakeFiles/bda_pawr.dir/scan.cpp.o.d"
  "libbda_pawr.a"
  "libbda_pawr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bda_pawr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
