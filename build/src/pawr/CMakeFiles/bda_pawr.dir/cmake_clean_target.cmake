file(REMOVE_RECURSE
  "libbda_pawr.a"
)
