file(REMOVE_RECURSE
  "CMakeFiles/bda_jitdt.dir/transfer.cpp.o"
  "CMakeFiles/bda_jitdt.dir/transfer.cpp.o.d"
  "CMakeFiles/bda_jitdt.dir/watcher.cpp.o"
  "CMakeFiles/bda_jitdt.dir/watcher.cpp.o.d"
  "libbda_jitdt.a"
  "libbda_jitdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bda_jitdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
