file(REMOVE_RECURSE
  "libbda_jitdt.a"
)
