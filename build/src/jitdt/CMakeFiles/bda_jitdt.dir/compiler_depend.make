# Empty compiler generated dependencies file for bda_jitdt.
# This may be replaced when dependencies are built.
