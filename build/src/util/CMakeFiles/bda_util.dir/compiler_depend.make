# Empty compiler generated dependencies file for bda_util.
# This may be replaced when dependencies are built.
