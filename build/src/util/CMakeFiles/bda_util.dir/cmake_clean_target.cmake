file(REMOVE_RECURSE
  "libbda_util.a"
)
