file(REMOVE_RECURSE
  "CMakeFiles/bda_util.dir/ascii_render.cpp.o"
  "CMakeFiles/bda_util.dir/ascii_render.cpp.o.d"
  "CMakeFiles/bda_util.dir/binary_io.cpp.o"
  "CMakeFiles/bda_util.dir/binary_io.cpp.o.d"
  "CMakeFiles/bda_util.dir/codec.cpp.o"
  "CMakeFiles/bda_util.dir/codec.cpp.o.d"
  "CMakeFiles/bda_util.dir/config.cpp.o"
  "CMakeFiles/bda_util.dir/config.cpp.o.d"
  "CMakeFiles/bda_util.dir/logging.cpp.o"
  "CMakeFiles/bda_util.dir/logging.cpp.o.d"
  "CMakeFiles/bda_util.dir/rng.cpp.o"
  "CMakeFiles/bda_util.dir/rng.cpp.o.d"
  "CMakeFiles/bda_util.dir/stats.cpp.o"
  "CMakeFiles/bda_util.dir/stats.cpp.o.d"
  "libbda_util.a"
  "libbda_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bda_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
