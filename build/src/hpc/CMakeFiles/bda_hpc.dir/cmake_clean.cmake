file(REMOVE_RECURSE
  "CMakeFiles/bda_hpc.dir/comm.cpp.o"
  "CMakeFiles/bda_hpc.dir/comm.cpp.o.d"
  "CMakeFiles/bda_hpc.dir/domain_decomp.cpp.o"
  "CMakeFiles/bda_hpc.dir/domain_decomp.cpp.o.d"
  "CMakeFiles/bda_hpc.dir/perf_model.cpp.o"
  "CMakeFiles/bda_hpc.dir/perf_model.cpp.o.d"
  "CMakeFiles/bda_hpc.dir/scheduler.cpp.o"
  "CMakeFiles/bda_hpc.dir/scheduler.cpp.o.d"
  "CMakeFiles/bda_hpc.dir/transport.cpp.o"
  "CMakeFiles/bda_hpc.dir/transport.cpp.o.d"
  "libbda_hpc.a"
  "libbda_hpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bda_hpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
