file(REMOVE_RECURSE
  "libbda_hpc.a"
)
