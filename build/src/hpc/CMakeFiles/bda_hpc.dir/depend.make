# Empty dependencies file for bda_hpc.
# This may be replaced when dependencies are built.
