
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpc/comm.cpp" "src/hpc/CMakeFiles/bda_hpc.dir/comm.cpp.o" "gcc" "src/hpc/CMakeFiles/bda_hpc.dir/comm.cpp.o.d"
  "/root/repo/src/hpc/domain_decomp.cpp" "src/hpc/CMakeFiles/bda_hpc.dir/domain_decomp.cpp.o" "gcc" "src/hpc/CMakeFiles/bda_hpc.dir/domain_decomp.cpp.o.d"
  "/root/repo/src/hpc/perf_model.cpp" "src/hpc/CMakeFiles/bda_hpc.dir/perf_model.cpp.o" "gcc" "src/hpc/CMakeFiles/bda_hpc.dir/perf_model.cpp.o.d"
  "/root/repo/src/hpc/scheduler.cpp" "src/hpc/CMakeFiles/bda_hpc.dir/scheduler.cpp.o" "gcc" "src/hpc/CMakeFiles/bda_hpc.dir/scheduler.cpp.o.d"
  "/root/repo/src/hpc/transport.cpp" "src/hpc/CMakeFiles/bda_hpc.dir/transport.cpp.o" "gcc" "src/hpc/CMakeFiles/bda_hpc.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scale/CMakeFiles/bda_scale.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
