# Empty compiler generated dependencies file for bda_workflow.
# This may be replaced when dependencies are built.
