file(REMOVE_RECURSE
  "CMakeFiles/bda_workflow.dir/checkpoint.cpp.o"
  "CMakeFiles/bda_workflow.dir/checkpoint.cpp.o.d"
  "CMakeFiles/bda_workflow.dir/cycle.cpp.o"
  "CMakeFiles/bda_workflow.dir/cycle.cpp.o.d"
  "CMakeFiles/bda_workflow.dir/operations.cpp.o"
  "CMakeFiles/bda_workflow.dir/operations.cpp.o.d"
  "CMakeFiles/bda_workflow.dir/products.cpp.o"
  "CMakeFiles/bda_workflow.dir/products.cpp.o.d"
  "libbda_workflow.a"
  "libbda_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bda_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
