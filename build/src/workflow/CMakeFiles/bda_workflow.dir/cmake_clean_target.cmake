file(REMOVE_RECURSE
  "libbda_workflow.a"
)
