file(REMOVE_RECURSE
  "CMakeFiles/bda_scale.dir/boundary.cpp.o"
  "CMakeFiles/bda_scale.dir/boundary.cpp.o.d"
  "CMakeFiles/bda_scale.dir/boundary_layer.cpp.o"
  "CMakeFiles/bda_scale.dir/boundary_layer.cpp.o.d"
  "CMakeFiles/bda_scale.dir/diagnostics.cpp.o"
  "CMakeFiles/bda_scale.dir/diagnostics.cpp.o.d"
  "CMakeFiles/bda_scale.dir/dynamics.cpp.o"
  "CMakeFiles/bda_scale.dir/dynamics.cpp.o.d"
  "CMakeFiles/bda_scale.dir/ensemble.cpp.o"
  "CMakeFiles/bda_scale.dir/ensemble.cpp.o.d"
  "CMakeFiles/bda_scale.dir/grid.cpp.o"
  "CMakeFiles/bda_scale.dir/grid.cpp.o.d"
  "CMakeFiles/bda_scale.dir/microphysics.cpp.o"
  "CMakeFiles/bda_scale.dir/microphysics.cpp.o.d"
  "CMakeFiles/bda_scale.dir/model.cpp.o"
  "CMakeFiles/bda_scale.dir/model.cpp.o.d"
  "CMakeFiles/bda_scale.dir/radiation.cpp.o"
  "CMakeFiles/bda_scale.dir/radiation.cpp.o.d"
  "CMakeFiles/bda_scale.dir/reference.cpp.o"
  "CMakeFiles/bda_scale.dir/reference.cpp.o.d"
  "CMakeFiles/bda_scale.dir/state.cpp.o"
  "CMakeFiles/bda_scale.dir/state.cpp.o.d"
  "CMakeFiles/bda_scale.dir/surface.cpp.o"
  "CMakeFiles/bda_scale.dir/surface.cpp.o.d"
  "CMakeFiles/bda_scale.dir/turbulence.cpp.o"
  "CMakeFiles/bda_scale.dir/turbulence.cpp.o.d"
  "libbda_scale.a"
  "libbda_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bda_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
