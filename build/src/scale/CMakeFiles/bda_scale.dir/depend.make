# Empty dependencies file for bda_scale.
# This may be replaced when dependencies are built.
