
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scale/boundary.cpp" "src/scale/CMakeFiles/bda_scale.dir/boundary.cpp.o" "gcc" "src/scale/CMakeFiles/bda_scale.dir/boundary.cpp.o.d"
  "/root/repo/src/scale/boundary_layer.cpp" "src/scale/CMakeFiles/bda_scale.dir/boundary_layer.cpp.o" "gcc" "src/scale/CMakeFiles/bda_scale.dir/boundary_layer.cpp.o.d"
  "/root/repo/src/scale/diagnostics.cpp" "src/scale/CMakeFiles/bda_scale.dir/diagnostics.cpp.o" "gcc" "src/scale/CMakeFiles/bda_scale.dir/diagnostics.cpp.o.d"
  "/root/repo/src/scale/dynamics.cpp" "src/scale/CMakeFiles/bda_scale.dir/dynamics.cpp.o" "gcc" "src/scale/CMakeFiles/bda_scale.dir/dynamics.cpp.o.d"
  "/root/repo/src/scale/ensemble.cpp" "src/scale/CMakeFiles/bda_scale.dir/ensemble.cpp.o" "gcc" "src/scale/CMakeFiles/bda_scale.dir/ensemble.cpp.o.d"
  "/root/repo/src/scale/grid.cpp" "src/scale/CMakeFiles/bda_scale.dir/grid.cpp.o" "gcc" "src/scale/CMakeFiles/bda_scale.dir/grid.cpp.o.d"
  "/root/repo/src/scale/microphysics.cpp" "src/scale/CMakeFiles/bda_scale.dir/microphysics.cpp.o" "gcc" "src/scale/CMakeFiles/bda_scale.dir/microphysics.cpp.o.d"
  "/root/repo/src/scale/model.cpp" "src/scale/CMakeFiles/bda_scale.dir/model.cpp.o" "gcc" "src/scale/CMakeFiles/bda_scale.dir/model.cpp.o.d"
  "/root/repo/src/scale/radiation.cpp" "src/scale/CMakeFiles/bda_scale.dir/radiation.cpp.o" "gcc" "src/scale/CMakeFiles/bda_scale.dir/radiation.cpp.o.d"
  "/root/repo/src/scale/reference.cpp" "src/scale/CMakeFiles/bda_scale.dir/reference.cpp.o" "gcc" "src/scale/CMakeFiles/bda_scale.dir/reference.cpp.o.d"
  "/root/repo/src/scale/state.cpp" "src/scale/CMakeFiles/bda_scale.dir/state.cpp.o" "gcc" "src/scale/CMakeFiles/bda_scale.dir/state.cpp.o.d"
  "/root/repo/src/scale/surface.cpp" "src/scale/CMakeFiles/bda_scale.dir/surface.cpp.o" "gcc" "src/scale/CMakeFiles/bda_scale.dir/surface.cpp.o.d"
  "/root/repo/src/scale/turbulence.cpp" "src/scale/CMakeFiles/bda_scale.dir/turbulence.cpp.o" "gcc" "src/scale/CMakeFiles/bda_scale.dir/turbulence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
