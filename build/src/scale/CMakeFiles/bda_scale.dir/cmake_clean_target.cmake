file(REMOVE_RECURSE
  "libbda_scale.a"
)
