file(REMOVE_RECURSE
  "CMakeFiles/bda_verify.dir/ensemble_stats.cpp.o"
  "CMakeFiles/bda_verify.dir/ensemble_stats.cpp.o.d"
  "CMakeFiles/bda_verify.dir/nowcast.cpp.o"
  "CMakeFiles/bda_verify.dir/nowcast.cpp.o.d"
  "CMakeFiles/bda_verify.dir/persistence.cpp.o"
  "CMakeFiles/bda_verify.dir/persistence.cpp.o.d"
  "CMakeFiles/bda_verify.dir/scores.cpp.o"
  "CMakeFiles/bda_verify.dir/scores.cpp.o.d"
  "libbda_verify.a"
  "libbda_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bda_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
