file(REMOVE_RECURSE
  "libbda_verify.a"
)
