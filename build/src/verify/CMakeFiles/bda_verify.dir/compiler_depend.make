# Empty compiler generated dependencies file for bda_verify.
# This may be replaced when dependencies are built.
