
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/ensemble_stats.cpp" "src/verify/CMakeFiles/bda_verify.dir/ensemble_stats.cpp.o" "gcc" "src/verify/CMakeFiles/bda_verify.dir/ensemble_stats.cpp.o.d"
  "/root/repo/src/verify/nowcast.cpp" "src/verify/CMakeFiles/bda_verify.dir/nowcast.cpp.o" "gcc" "src/verify/CMakeFiles/bda_verify.dir/nowcast.cpp.o.d"
  "/root/repo/src/verify/persistence.cpp" "src/verify/CMakeFiles/bda_verify.dir/persistence.cpp.o" "gcc" "src/verify/CMakeFiles/bda_verify.dir/persistence.cpp.o.d"
  "/root/repo/src/verify/scores.cpp" "src/verify/CMakeFiles/bda_verify.dir/scores.cpp.o" "gcc" "src/verify/CMakeFiles/bda_verify.dir/scores.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
