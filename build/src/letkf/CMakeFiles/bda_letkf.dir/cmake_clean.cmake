file(REMOVE_RECURSE
  "CMakeFiles/bda_letkf.dir/adaptive_inflation.cpp.o"
  "CMakeFiles/bda_letkf.dir/adaptive_inflation.cpp.o.d"
  "CMakeFiles/bda_letkf.dir/letkf.cpp.o"
  "CMakeFiles/bda_letkf.dir/letkf.cpp.o.d"
  "CMakeFiles/bda_letkf.dir/localization.cpp.o"
  "CMakeFiles/bda_letkf.dir/localization.cpp.o.d"
  "CMakeFiles/bda_letkf.dir/obsop.cpp.o"
  "CMakeFiles/bda_letkf.dir/obsop.cpp.o.d"
  "libbda_letkf.a"
  "libbda_letkf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bda_letkf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
