# Empty compiler generated dependencies file for bda_letkf.
# This may be replaced when dependencies are built.
