file(REMOVE_RECURSE
  "libbda_letkf.a"
)
