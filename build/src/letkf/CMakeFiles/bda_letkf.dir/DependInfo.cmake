
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/letkf/adaptive_inflation.cpp" "src/letkf/CMakeFiles/bda_letkf.dir/adaptive_inflation.cpp.o" "gcc" "src/letkf/CMakeFiles/bda_letkf.dir/adaptive_inflation.cpp.o.d"
  "/root/repo/src/letkf/letkf.cpp" "src/letkf/CMakeFiles/bda_letkf.dir/letkf.cpp.o" "gcc" "src/letkf/CMakeFiles/bda_letkf.dir/letkf.cpp.o.d"
  "/root/repo/src/letkf/localization.cpp" "src/letkf/CMakeFiles/bda_letkf.dir/localization.cpp.o" "gcc" "src/letkf/CMakeFiles/bda_letkf.dir/localization.cpp.o.d"
  "/root/repo/src/letkf/obsop.cpp" "src/letkf/CMakeFiles/bda_letkf.dir/obsop.cpp.o" "gcc" "src/letkf/CMakeFiles/bda_letkf.dir/obsop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scale/CMakeFiles/bda_scale.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
