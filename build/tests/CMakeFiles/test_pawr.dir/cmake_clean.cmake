file(REMOVE_RECURSE
  "CMakeFiles/test_pawr.dir/pawr/test_datafile.cpp.o"
  "CMakeFiles/test_pawr.dir/pawr/test_datafile.cpp.o.d"
  "CMakeFiles/test_pawr.dir/pawr/test_forward.cpp.o"
  "CMakeFiles/test_pawr.dir/pawr/test_forward.cpp.o.d"
  "CMakeFiles/test_pawr.dir/pawr/test_obsgen.cpp.o"
  "CMakeFiles/test_pawr.dir/pawr/test_obsgen.cpp.o.d"
  "CMakeFiles/test_pawr.dir/pawr/test_scan.cpp.o"
  "CMakeFiles/test_pawr.dir/pawr/test_scan.cpp.o.d"
  "test_pawr"
  "test_pawr.pdb"
  "test_pawr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pawr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
