# Empty dependencies file for test_pawr.
# This may be replaced when dependencies are built.
