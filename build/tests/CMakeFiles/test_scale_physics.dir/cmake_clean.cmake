file(REMOVE_RECURSE
  "CMakeFiles/test_scale_physics.dir/scale/test_boundary.cpp.o"
  "CMakeFiles/test_scale_physics.dir/scale/test_boundary.cpp.o.d"
  "CMakeFiles/test_scale_physics.dir/scale/test_ensemble.cpp.o"
  "CMakeFiles/test_scale_physics.dir/scale/test_ensemble.cpp.o.d"
  "CMakeFiles/test_scale_physics.dir/scale/test_microphysics.cpp.o"
  "CMakeFiles/test_scale_physics.dir/scale/test_microphysics.cpp.o.d"
  "CMakeFiles/test_scale_physics.dir/scale/test_physics.cpp.o"
  "CMakeFiles/test_scale_physics.dir/scale/test_physics.cpp.o.d"
  "test_scale_physics"
  "test_scale_physics.pdb"
  "test_scale_physics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scale_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
