# Empty dependencies file for test_scale_physics.
# This may be replaced when dependencies are built.
