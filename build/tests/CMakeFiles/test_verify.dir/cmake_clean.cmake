file(REMOVE_RECURSE
  "CMakeFiles/test_verify.dir/verify/test_ensemble_stats.cpp.o"
  "CMakeFiles/test_verify.dir/verify/test_ensemble_stats.cpp.o.d"
  "CMakeFiles/test_verify.dir/verify/test_fss.cpp.o"
  "CMakeFiles/test_verify.dir/verify/test_fss.cpp.o.d"
  "CMakeFiles/test_verify.dir/verify/test_nowcast.cpp.o"
  "CMakeFiles/test_verify.dir/verify/test_nowcast.cpp.o.d"
  "CMakeFiles/test_verify.dir/verify/test_persistence.cpp.o"
  "CMakeFiles/test_verify.dir/verify/test_persistence.cpp.o.d"
  "CMakeFiles/test_verify.dir/verify/test_scores.cpp.o"
  "CMakeFiles/test_verify.dir/verify/test_scores.cpp.o.d"
  "test_verify"
  "test_verify.pdb"
  "test_verify[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
