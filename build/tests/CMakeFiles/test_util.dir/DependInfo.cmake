
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_ascii_render.cpp" "tests/CMakeFiles/test_util.dir/util/test_ascii_render.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_ascii_render.cpp.o.d"
  "/root/repo/tests/util/test_binary_io.cpp" "tests/CMakeFiles/test_util.dir/util/test_binary_io.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_binary_io.cpp.o.d"
  "/root/repo/tests/util/test_codec.cpp" "tests/CMakeFiles/test_util.dir/util/test_codec.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_codec.cpp.o.d"
  "/root/repo/tests/util/test_config.cpp" "tests/CMakeFiles/test_util.dir/util/test_config.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_config.cpp.o.d"
  "/root/repo/tests/util/test_field.cpp" "tests/CMakeFiles/test_util.dir/util/test_field.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_field.cpp.o.d"
  "/root/repo/tests/util/test_logging.cpp" "tests/CMakeFiles/test_util.dir/util/test_logging.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_logging.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/CMakeFiles/test_util.dir/util/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workflow/CMakeFiles/bda_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/letkf/CMakeFiles/bda_letkf.dir/DependInfo.cmake"
  "/root/repo/build/src/pawr/CMakeFiles/bda_pawr.dir/DependInfo.cmake"
  "/root/repo/build/src/jitdt/CMakeFiles/bda_jitdt.dir/DependInfo.cmake"
  "/root/repo/build/src/hpc/CMakeFiles/bda_hpc.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/bda_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/scale/CMakeFiles/bda_scale.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
