# Empty dependencies file for test_scale_dynamics.
# This may be replaced when dependencies are built.
