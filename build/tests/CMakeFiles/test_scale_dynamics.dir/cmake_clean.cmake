file(REMOVE_RECURSE
  "CMakeFiles/test_scale_dynamics.dir/scale/test_dynamics.cpp.o"
  "CMakeFiles/test_scale_dynamics.dir/scale/test_dynamics.cpp.o.d"
  "CMakeFiles/test_scale_dynamics.dir/scale/test_dynamics_sweep.cpp.o"
  "CMakeFiles/test_scale_dynamics.dir/scale/test_dynamics_sweep.cpp.o.d"
  "test_scale_dynamics"
  "test_scale_dynamics.pdb"
  "test_scale_dynamics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scale_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
