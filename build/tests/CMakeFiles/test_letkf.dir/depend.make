# Empty dependencies file for test_letkf.
# This may be replaced when dependencies are built.
