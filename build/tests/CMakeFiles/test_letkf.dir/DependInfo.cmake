
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/letkf/test_adaptive_inflation.cpp" "tests/CMakeFiles/test_letkf.dir/letkf/test_adaptive_inflation.cpp.o" "gcc" "tests/CMakeFiles/test_letkf.dir/letkf/test_adaptive_inflation.cpp.o.d"
  "/root/repo/tests/letkf/test_eigen.cpp" "tests/CMakeFiles/test_letkf.dir/letkf/test_eigen.cpp.o" "gcc" "tests/CMakeFiles/test_letkf.dir/letkf/test_eigen.cpp.o.d"
  "/root/repo/tests/letkf/test_letkf.cpp" "tests/CMakeFiles/test_letkf.dir/letkf/test_letkf.cpp.o" "gcc" "tests/CMakeFiles/test_letkf.dir/letkf/test_letkf.cpp.o.d"
  "/root/repo/tests/letkf/test_letkf_core.cpp" "tests/CMakeFiles/test_letkf.dir/letkf/test_letkf_core.cpp.o" "gcc" "tests/CMakeFiles/test_letkf.dir/letkf/test_letkf_core.cpp.o.d"
  "/root/repo/tests/letkf/test_letkf_properties.cpp" "tests/CMakeFiles/test_letkf.dir/letkf/test_letkf_properties.cpp.o" "gcc" "tests/CMakeFiles/test_letkf.dir/letkf/test_letkf_properties.cpp.o.d"
  "/root/repo/tests/letkf/test_localization.cpp" "tests/CMakeFiles/test_letkf.dir/letkf/test_localization.cpp.o" "gcc" "tests/CMakeFiles/test_letkf.dir/letkf/test_localization.cpp.o.d"
  "/root/repo/tests/letkf/test_obsop.cpp" "tests/CMakeFiles/test_letkf.dir/letkf/test_obsop.cpp.o" "gcc" "tests/CMakeFiles/test_letkf.dir/letkf/test_obsop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workflow/CMakeFiles/bda_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/letkf/CMakeFiles/bda_letkf.dir/DependInfo.cmake"
  "/root/repo/build/src/pawr/CMakeFiles/bda_pawr.dir/DependInfo.cmake"
  "/root/repo/build/src/jitdt/CMakeFiles/bda_jitdt.dir/DependInfo.cmake"
  "/root/repo/build/src/hpc/CMakeFiles/bda_hpc.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/bda_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/scale/CMakeFiles/bda_scale.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
