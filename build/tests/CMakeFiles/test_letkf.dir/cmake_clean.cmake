file(REMOVE_RECURSE
  "CMakeFiles/test_letkf.dir/letkf/test_adaptive_inflation.cpp.o"
  "CMakeFiles/test_letkf.dir/letkf/test_adaptive_inflation.cpp.o.d"
  "CMakeFiles/test_letkf.dir/letkf/test_eigen.cpp.o"
  "CMakeFiles/test_letkf.dir/letkf/test_eigen.cpp.o.d"
  "CMakeFiles/test_letkf.dir/letkf/test_letkf.cpp.o"
  "CMakeFiles/test_letkf.dir/letkf/test_letkf.cpp.o.d"
  "CMakeFiles/test_letkf.dir/letkf/test_letkf_core.cpp.o"
  "CMakeFiles/test_letkf.dir/letkf/test_letkf_core.cpp.o.d"
  "CMakeFiles/test_letkf.dir/letkf/test_letkf_properties.cpp.o"
  "CMakeFiles/test_letkf.dir/letkf/test_letkf_properties.cpp.o.d"
  "CMakeFiles/test_letkf.dir/letkf/test_localization.cpp.o"
  "CMakeFiles/test_letkf.dir/letkf/test_localization.cpp.o.d"
  "CMakeFiles/test_letkf.dir/letkf/test_obsop.cpp.o"
  "CMakeFiles/test_letkf.dir/letkf/test_obsop.cpp.o.d"
  "test_letkf"
  "test_letkf.pdb"
  "test_letkf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_letkf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
