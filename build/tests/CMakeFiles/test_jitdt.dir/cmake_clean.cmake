file(REMOVE_RECURSE
  "CMakeFiles/test_jitdt.dir/jitdt/test_transfer.cpp.o"
  "CMakeFiles/test_jitdt.dir/jitdt/test_transfer.cpp.o.d"
  "CMakeFiles/test_jitdt.dir/jitdt/test_watcher.cpp.o"
  "CMakeFiles/test_jitdt.dir/jitdt/test_watcher.cpp.o.d"
  "test_jitdt"
  "test_jitdt.pdb"
  "test_jitdt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jitdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
