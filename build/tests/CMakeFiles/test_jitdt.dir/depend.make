# Empty dependencies file for test_jitdt.
# This may be replaced when dependencies are built.
