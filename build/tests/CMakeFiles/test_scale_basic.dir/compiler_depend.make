# Empty compiler generated dependencies file for test_scale_basic.
# This may be replaced when dependencies are built.
