file(REMOVE_RECURSE
  "CMakeFiles/test_scale_basic.dir/scale/test_diagnostics.cpp.o"
  "CMakeFiles/test_scale_basic.dir/scale/test_diagnostics.cpp.o.d"
  "CMakeFiles/test_scale_basic.dir/scale/test_grid.cpp.o"
  "CMakeFiles/test_scale_basic.dir/scale/test_grid.cpp.o.d"
  "CMakeFiles/test_scale_basic.dir/scale/test_kernels.cpp.o"
  "CMakeFiles/test_scale_basic.dir/scale/test_kernels.cpp.o.d"
  "CMakeFiles/test_scale_basic.dir/scale/test_reference.cpp.o"
  "CMakeFiles/test_scale_basic.dir/scale/test_reference.cpp.o.d"
  "CMakeFiles/test_scale_basic.dir/scale/test_state.cpp.o"
  "CMakeFiles/test_scale_basic.dir/scale/test_state.cpp.o.d"
  "test_scale_basic"
  "test_scale_basic.pdb"
  "test_scale_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scale_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
