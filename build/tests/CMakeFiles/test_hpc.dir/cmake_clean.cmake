file(REMOVE_RECURSE
  "CMakeFiles/test_hpc.dir/hpc/test_comm.cpp.o"
  "CMakeFiles/test_hpc.dir/hpc/test_comm.cpp.o.d"
  "CMakeFiles/test_hpc.dir/hpc/test_domain_decomp.cpp.o"
  "CMakeFiles/test_hpc.dir/hpc/test_domain_decomp.cpp.o.d"
  "CMakeFiles/test_hpc.dir/hpc/test_perf_model.cpp.o"
  "CMakeFiles/test_hpc.dir/hpc/test_perf_model.cpp.o.d"
  "CMakeFiles/test_hpc.dir/hpc/test_scheduler.cpp.o"
  "CMakeFiles/test_hpc.dir/hpc/test_scheduler.cpp.o.d"
  "CMakeFiles/test_hpc.dir/hpc/test_transport.cpp.o"
  "CMakeFiles/test_hpc.dir/hpc/test_transport.cpp.o.d"
  "test_hpc"
  "test_hpc.pdb"
  "test_hpc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
