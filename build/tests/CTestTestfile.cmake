# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_scale_basic[1]_include.cmake")
include("/root/repo/build/tests/test_scale_dynamics[1]_include.cmake")
include("/root/repo/build/tests/test_scale_physics[1]_include.cmake")
include("/root/repo/build/tests/test_letkf[1]_include.cmake")
include("/root/repo/build/tests/test_pawr[1]_include.cmake")
include("/root/repo/build/tests/test_hpc[1]_include.cmake")
include("/root/repo/build/tests/test_jitdt[1]_include.cmake")
include("/root/repo/build/tests/test_verify[1]_include.cmake")
include("/root/repo/build/tests/test_workflow[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
