#!/usr/bin/env bash
# Lint gate for the BDA tree: clang-tidy (when available) + the repo-specific
# style checker.  CI runs this on every push; run it locally before sending a
# change touching the concurrent cycle path.
#
# Usage:
#   tools/lint.sh                 # style checker + clang-tidy over the tree
#   tools/lint.sh file1.cpp ...   # restrict clang-tidy to the given files
#   BDA_LINT_BUILD_DIR=build tools/lint.sh   # where compile_commands.json is
#
# clang-tidy needs a compilation database; configure any preset first
# (cmake --preset release) — CMAKE_EXPORT_COMPILE_COMMANDS is always on.
# On a toolchain without clang-tidy the tidy stage is skipped with a notice
# (the style checker and the -Werror build still gate), so the script stays
# usable in minimal containers.
set -euo pipefail

cd "$(dirname "$0")/.."

status=0

echo "== check_bda_style =="
python3 tools/check_bda_style.py || status=1

echo "== clang-tidy =="
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not found on PATH — skipping (style checker still ran)."
else
  build_dir="${BDA_LINT_BUILD_DIR:-build}"
  if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
    echo "no ${build_dir}/compile_commands.json — configure first:" >&2
    echo "  cmake --preset release" >&2
    status=1
  else
    if [[ $# -gt 0 ]]; then
      files=("$@")
    else
      mapfile -t files < <(git ls-files 'src/**/*.cpp' 'src/**/*.hpp')
    fi
    if ! clang-tidy -p "${build_dir}" --quiet "${files[@]}"; then
      status=1
    fi
  fi
fi

if [[ ${status} -ne 0 ]]; then
  echo "lint: FAILED" >&2
else
  echo "lint: OK"
fi
exit ${status}
