#!/usr/bin/env bash
# Lint gate for the BDA tree: the repo-specific style checker, the
# determinism-contract analyzer, and clang-tidy (when available).  CI runs
# this on every push; run it locally before sending a change touching the
# concurrent cycle path.
#
# Usage:
#   tools/lint.sh                 # all stages over the whole tree
#   tools/lint.sh file1.cpp ...   # restrict clang-tidy to the given files
#   BDA_LINT_BUILD_DIR=build tools/lint.sh   # where compile_commands.json is
#   BDA_ANALYZE_JSON=out.json tools/lint.sh  # also write the findings report
#
# clang-tidy needs a compilation database; configure any preset first
# (cmake --preset release) — CMAKE_EXPORT_COMPILE_COMMANDS is always on.
# A missing or stale database is a hard failure, not a silent skip: a tidy
# pass against yesterday's flags proves nothing about today's tree.  Only a
# toolchain without clang-tidy itself skips the tidy stage with a notice
# (the two Python gates and the -Werror build still gate), so the script
# stays usable in minimal containers.
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir="${BDA_LINT_BUILD_DIR:-build}"
status=0

echo "== check_bda_style =="
python3 tools/check_bda_style.py || status=1

echo "== bda_analyze =="
# The lexical frontend needs no compiler toolchain; BDA_ANALYZE_JSON lets CI
# upload the findings report as an artifact next to the bench JSON.
if [[ -n "${BDA_ANALYZE_JSON:-}" ]]; then
  python3 tools/bda_analyze --root . --json "${BDA_ANALYZE_JSON}" || status=1
else
  python3 tools/bda_analyze --root . || status=1
fi

echo "== clang-tidy =="
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not found on PATH — skipping (the Python gates still ran)."
elif [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "lint: no ${build_dir}/compile_commands.json — configure first:" >&2
  echo "  cmake --preset release" >&2
  status=1
elif ! python3 tools/bda_analyze --check-compiledb --build-dir "${build_dir}"
then
  echo "lint: ${build_dir}/compile_commands.json is stale — reconfigure:" >&2
  echo "  cmake --preset release" >&2
  status=1
else
  if [[ $# -gt 0 ]]; then
    files=("$@")
  else
    # src/ gets the strict root profile; tests/ and bench/ get the relaxed
    # per-directory .clang-tidy files (clang-tidy uses the nearest one).
    mapfile -t files < <(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' \
                                      'tests/**/*.cpp' 'bench/**/*.cpp')
  fi
  if ! clang-tidy -p "${build_dir}" --quiet "${files[@]}"; then
    status=1
  fi
fi

if [[ ${status} -ne 0 ]]; then
  echo "lint: FAILED" >&2
else
  echo "lint: OK"
fi
exit ${status}
