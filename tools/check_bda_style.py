#!/usr/bin/env python3
"""Repo-specific lint for the BDA tree (run via tools/lint.sh).

Three invariants that neither the compiler nor clang-tidy fully enforce:

1. float-literal hygiene (``double-literal``): in the single-precision hot
   paths (src/scale, src/letkf, src/pawr), floating literals must be
   ``f``-suffixed or explicitly wrapped (``real(...)``, ``T(...)``,
   ``double(...)``).  A bare ``0.5`` silently promotes the whole expression
   to double and costs the paper's 2x single-precision speedup.

2. punning confinement (``reinterpret-cast``): ``reinterpret_cast`` may only
   appear in src/util/binary_io.cpp — every other serializer goes through
   the bda::io helpers, which memcpy on trivially-copyable types.

3. lock discipline (``guarded-by``): a member declared
   ``BDA_GUARDED_BY(mu)`` in a header may only be referenced from function
   bodies that also name ``mu`` (take the lock, wait on it, or are annotated
   ``BDA_REQUIRES(mu)``).  This is the portable cross-check for clang's
   -Wthread-safety on toolchains without clang.

Suppress a finding with ``// bda-style: allow(<check-name>): <reason>`` on
the same line.  The reason is mandatory (same contract as ``double-ok``,
and the same grammar ``tools/bda_analyze`` uses): an ``allow()`` with no
reason does not suppress, and is itself reported as ``bad-allow``.
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

CXX_GLOBS = ("src", "tests", "bench", "examples")
# Where bda::real (float) arithmetic is the contract: the model kernels, the
# LETKF solve, and the per-gate radar forward operator.
HOT_PATH_DIRS = ("src/scale", "src/letkf", "src/pawr/forward")
PUNNING_ALLOWED = {"src/util/binary_io.cpp"}

# A file that is deliberately double-precision end to end (e.g. once-per-
# cycle innovation statistics) may declare it once near the top instead of
# annotating every line.  Must carry a reason on the same line.
DOUBLE_OK_RE = re.compile(r"//\s*bda-style:\s*double-ok\b.*\S")

# The reason after the close paren is mandatory (`.*\S`, parity with
# DOUBLE_OK_RE); a bare allow() is reported by check_bad_allows below.
ALLOW_RE = re.compile(
    r"//\s*bda-style:\s*allow\((?P<name>[\w-]+)\)(?P<reason>.*)")

# An unsuffixed floating literal: 1.5, .5, 1., 1e-4, 1.5e3 — but not 1.5f,
# not part of an identifier or version string, not hex (0x1.8p3).
FLOAT_LIT_RE = re.compile(
    r"(?<![\w.])"
    r"(?P<lit>(?:\d+\.\d*|\.\d+|\d+\.|\d+(?=[eE]))(?:[eE][+-]?\d+)?)"
    r"(?![fFlL\w.])"
)
# Wrapper calls whose whole argument list is explicitly typed at the use
# site, making interior double literals fine: real(5.0 / 3.0), T(9.80665),
# double(x) casts, std::fmod-in-real(...), etc.
WRAP_CALL_RE = re.compile(r"\b(?:real|T|double|float|idx|size_t)\s*\(")


def mask_wrapped_spans(code: str) -> str:
    """Blank out the parenthesized argument spans of typed wrapper calls."""
    out = list(code)
    for m in WRAP_CALL_RE.finditer(code):
        depth = 0
        for i in range(m.end() - 1, len(code)):
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    for j in range(m.end(), i):
                        out[j] = " "
                    break
    return "".join(out)

# BDA_CV_OF ties a condition_variable to its mutex (documentation-only
# macro; see util/annotations.hpp).  For the cross-check it behaves like
# BDA_GUARDED_BY: any function touching the cv must name the mutex.
GUARDED_RE = re.compile(
    r"(\w+)\s*(?:\n\s*)?BDA_(?:GUARDED_BY|CV_OF)\(\s*(\w+)\s*\)")
REQUIRES_RE = re.compile(r"BDA_REQUIRES\(\s*([\w, ]+)\)")


def strip_comments_and_strings(line: str) -> str:
    """Blank out string/char literals and // comments (keeps length)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            out.append(" " * (n - i))
            break
        if c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append("  ")
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(" ")
                    i += 1
                    break
                out.append(" ")
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def iter_cxx_files():
    for top in CXX_GLOBS:
        base = REPO / top
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in (".cpp", ".hpp", ".h", ".cc", ".in"):
                yield p


def _allow_reason_ok(reason: str) -> bool:
    return bool(re.search(r"\S", reason.lstrip(":").lstrip("—-")))


def check_bad_allows(path: Path, text: str, f: Findings):
    """Every allow() must carry a reason — the suppression *is* the place
    where the justification lives (same policy as double-ok, same grammar
    as tools/bda_analyze)."""
    for lineno, raw in enumerate(text.splitlines(), 1):
        m = ALLOW_RE.search(raw)
        if m and not _allow_reason_ok(m.group("reason")):
            # Report directly: Findings.add would let the bad allow()
            # suppress its own finding.
            rel = path.relative_to(REPO)
            f.items.append(
                f"{rel}:{lineno}: [bad-allow] allow({m.group('name')}) "
                f"without a reason — write "
                f"'// bda-style: allow({m.group('name')}): <why>'")


class Findings:
    def __init__(self):
        self.items: list[str] = []

    def add(self, path: Path, lineno: int, check: str, msg: str,
            line: str = ""):
        rel = path.relative_to(REPO)
        if line:
            m = ALLOW_RE.search(line)
            # Only a reasoned allow() suppresses; a bare one is reported
            # separately by check_bad_allows and the finding stands.
            if m and m.group("name") == check and \
                    _allow_reason_ok(m.group("reason")):
                return
        self.items.append(f"{rel}:{lineno}: [{check}] {msg}")


def check_double_literals(path: Path, text: str, f: Findings):
    rel = str(path.relative_to(REPO))
    if not any(rel.startswith(d) for d in HOT_PATH_DIRS):
        return
    head = "\n".join(text.splitlines()[:25])
    if DOUBLE_OK_RE.search(head):
        return
    in_block_comment = False
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw
        if in_block_comment:
            if "*/" in line:
                line = line.split("*/", 1)[1]
                in_block_comment = False
            else:
                continue
        if "/*" in line and "*/" not in line.split("/*", 1)[1]:
            line = line.split("/*", 1)[0]
            in_block_comment = True
        code = strip_comments_and_strings(line)
        # Deliberate double math (accumulators, config fields, casts) is
        # signalled by the word `double` on the line; `constexpr` tables and
        # `static_assert`s are compile-time and promote nothing at runtime.
        if re.search(r"\bdouble\b|\bconstexpr\b|\bstatic_assert\b", code):
            continue
        code = mask_wrapped_spans(code)
        for m in FLOAT_LIT_RE.finditer(code):
            f.add(path, lineno, "double-literal",
                  f"unsuffixed double literal '{m.group('lit')}' in a "
                  "bda::real hot path — suffix with 'f' or wrap in real(...)",
                  raw)


def check_reinterpret_cast(path: Path, text: str, f: Findings):
    rel = str(path.relative_to(REPO))
    if rel in PUNNING_ALLOWED:
        return
    for lineno, raw in enumerate(text.splitlines(), 1):
        code = strip_comments_and_strings(raw)
        if "reinterpret_cast" in code:
            f.add(path, lineno, "reinterpret-cast",
                  "reinterpret_cast outside util/binary_io — use the "
                  "bda::io put/take/append_raw helpers", raw)


def function_bodies(text: str):
    """Yield (start_lineno, header_text, body_text) for top-level-ish
    function definitions, by brace matching.  Good enough for this tree's
    clang-format-style layout; not a C++ parser."""
    depth = 0
    body_start = None
    header = []
    lines = text.splitlines()
    for i, line in enumerate(lines):
        code = strip_comments_and_strings(line)
        opens, closes = code.count("{"), code.count("}")
        if depth == 0 and opens:
            body_start = i
            hdr = "\n".join(lines[max(0, i - 3): i + 1])
            header = hdr
        depth += opens - closes
        if depth == 0 and body_start is not None and closes:
            yield body_start + 1, header, "\n".join(lines[body_start: i + 1])
            body_start = None
    # Unbalanced braces: ignore (macros, raw strings) — other checks and the
    # compiler catch real problems.


def check_guarded_by(f: Findings):
    """Cross-check BDA_GUARDED_BY(mu) members against their uses."""
    guarded: dict[Path, dict[str, str]] = {}
    for p in iter_cxx_files():
        text = p.read_text(errors="replace")
        pairs = GUARDED_RE.findall(text)
        if pairs:
            guarded[p] = dict(pairs)

    for hpp, members in guarded.items():
        # The declaring header plus its sibling .cpp are the access scope.
        sources = [hpp]
        sibling = hpp.with_suffix(".cpp")
        if sibling.exists():
            sources.append(sibling)
        for src in sources:
            text = src.read_text(errors="replace")
            for start, header, body in function_bodies(text):
                clean = strip_comments_and_strings_block(body)
                for member, mu in members.items():
                    if not re.search(rf"\b{re.escape(member)}\b", clean):
                        continue
                    # Declaration site in the header is not a use.
                    if re.search(
                            rf"\b{re.escape(member)}\b\s*(?:\n\s*)?"
                            r"BDA_(?:GUARDED_BY|CV_OF)", clean):
                        continue
                    ok = (
                        re.search(rf"\b{re.escape(mu)}\b", clean)
                        or any(mu in r for r in REQUIRES_RE.findall(header))
                        or "BDA_NO_THREAD_SAFETY_ANALYSIS" in header
                    )
                    if not ok:
                        f.add(src, start, "guarded-by",
                              f"'{member}' is BDA_GUARDED_BY({mu}) but this "
                              f"function body never names '{mu}' (lock it or "
                              f"annotate BDA_REQUIRES({mu}))")

    # Every std::mutex member in a header should guard something — catches
    # annotation rot when a new mutex is added without annotations.
    for p in iter_cxx_files():
        if p.suffix != ".hpp":
            continue
        text = p.read_text(errors="replace")
        for lineno, raw in enumerate(text.splitlines(), 1):
            code = strip_comments_and_strings(raw)
            if re.search(r"\bstd::mutex\s+\w+\s*;", code) and \
                    "BDA_GUARDED_BY" not in text:
                f.add(p, lineno, "guarded-by",
                      "class declares a std::mutex member but no "
                      "BDA_GUARDED_BY annotations — annotate what it guards",
                      raw)


def strip_comments_and_strings_block(block: str) -> str:
    out = []
    in_block = False
    for line in block.splitlines():
        if in_block:
            if "*/" in line:
                line = line.split("*/", 1)[1]
                in_block = False
            else:
                continue
        if "/*" in line and "*/" not in line.split("/*", 1)[1]:
            line = line.split("/*", 1)[0]
            in_block = True
        out.append(strip_comments_and_strings(line))
    return "\n".join(out)


def main() -> int:
    f = Findings()
    for p in iter_cxx_files():
        text = p.read_text(errors="replace")
        check_double_literals(p, text, f)
        check_reinterpret_cast(p, text, f)
        check_bad_allows(p, text, f)
    check_guarded_by(f)
    if f.items:
        for item in f.items:
            print(item)
        print(f"check_bda_style: {len(f.items)} finding(s)", file=sys.stderr)
        return 1
    print("check_bda_style: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
