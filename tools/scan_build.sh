#!/usr/bin/env bash
# Clang Static Analyzer pass over the tree, for the CI static-analysis job.
#
# scan-build wraps the compiler, so this configures and builds a scratch
# tree under build-scan/ with the analyzer interposed; findings land as an
# HTML/plist report in the directory given by SCAN_BUILD_OUTPUT (default
# build-scan/report) and any finding fails the script.
#
# On a toolchain without scan-build (the minimal dev container ships only
# gcc) the pass is skipped WITH A NOTICE and exit 0: the analyzer is a CI
# gate, not a local prerequisite — tools/lint.sh carries the local gates.
# Set BDA_REQUIRE_SCAN_BUILD=1 (CI does) to turn the skip into a failure,
# so CI can never silently lose the analyzer to a broken image.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v scan-build >/dev/null 2>&1; then
  if [[ "${BDA_REQUIRE_SCAN_BUILD:-0}" == "1" ]]; then
    echo "scan_build: scan-build not found but BDA_REQUIRE_SCAN_BUILD=1" >&2
    exit 1
  fi
  echo "scan_build: scan-build not found on PATH — skipping (CI runs it)."
  exit 0
fi

out="${SCAN_BUILD_OUTPUT:-build-scan/report}"
mkdir -p "${out}"

# --status-bugs: non-zero exit when the analyzer reports anything, which is
# what lets CI gate on it.  The checkers mirror the repo's failure classes:
# core plus the security/unix memory checkers that catch the manual-buffer
# code in the transport layer.
scan-build --status-bugs -o "${out}" \
    -enable-checker core \
    -enable-checker unix.Malloc \
    -enable-checker cplusplus \
    -enable-checker deadcode.DeadStores \
    cmake -B build-scan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo

scan-build --status-bugs -o "${out}" \
    -enable-checker core \
    -enable-checker unix.Malloc \
    -enable-checker cplusplus \
    -enable-checker deadcode.DeadStores \
    cmake --build build-scan -j "$(nproc)"

echo "scan_build: clean (report in ${out})"
