#!/usr/bin/env python3
"""Driver for the determinism-contract analyzer.

Usage:
  python3 tools/bda_analyze                      # whole src/ tree
  python3 tools/bda_analyze file.cpp ...         # specific files
  python3 tools/bda_analyze --json out.json      # machine-readable report
  python3 tools/bda_analyze --frontend lexical   # force a frontend
  python3 tools/bda_analyze --check-compiledb    # probe DB freshness only

Exit status: 0 clean, 1 findings, 2 usage/configuration error.

The five checks and the contract each one encodes are cataloged in
docs/ANALYSIS.md; suppressions use the repo-wide grammar
`// bda-style: allow(<check>): <reason>` (reason mandatory).
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import compiledb  # noqa: E402
import facts as facts_mod  # noqa: E402
import frontend_libclang  # noqa: E402
from checks import ALL_CHECKS  # noqa: E402
from report import Report, Suppressions  # noqa: E402

REPO = Path(__file__).resolve().parent.parent.parent


@dataclass
class TreeFacts:
    """Cross-file facts shared by every check invocation."""
    status_functions: dict[str, str] = field(default_factory=dict)


def discover_sources(repo: Path) -> list[Path]:
    out = []
    for base in (repo / "src",):
        for p in sorted(base.rglob("*")):
            if p.suffix in (".cpp", ".hpp", ".h", ".cc"):
                out.append(p)
    return out


def build_tree_facts(repo: Path, sources: list[Path]) -> TreeFacts:
    headers = {str(p.relative_to(repo)).replace(os.sep, "/"):
               p.read_text(errors="replace")
               for p in sources if p.suffix in (".hpp", ".h")}
    return TreeFacts(status_functions=facts_mod.status_function_index(headers))


def analyze(repo: Path, files: list[Path], frontend: str,
            db: compiledb.CompileDb, checks: dict) -> Report:
    tree_sources = discover_sources(repo)
    tree = build_tree_facts(repo, tree_sources)
    report = Report()

    use_libclang = (frontend == "libclang" or
                    (frontend == "auto" and frontend_libclang.available()))
    report.frontend = "libclang" if use_libclang else "lexical"

    for path in files:
        try:
            rel = str(path.resolve().relative_to(repo)).replace(os.sep, "/")
        except ValueError:
            rel = str(path)
        ff = None
        if use_libclang:
            ff = frontend_libclang.extract(path, rel, db.args_for(path))
        if ff is None:
            ff = facts_mod.extract(path, rel)
        supp = Suppressions(ff.raw)
        for fn in checks.values():
            fn(ff, tree, report, supp)
        report.findings.extend(supp.bad_allow_findings(rel))
        report.files_analyzed += 1
    return report


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="bda_analyze")
    ap.add_argument("files", nargs="*", help="restrict to these files")
    ap.add_argument("--root", default=str(REPO), help="repo root")
    ap.add_argument("--json", metavar="PATH",
                    help="also write the findings report as JSON")
    ap.add_argument("--frontend", choices=("auto", "lexical", "libclang"),
                    default="auto")
    ap.add_argument("--build-dir", default=os.environ.get(
        "BDA_LINT_BUILD_DIR", "build"))
    ap.add_argument("--check-compiledb", action="store_true",
                    help="probe compile_commands.json freshness and exit "
                         "(0 fresh, 2 missing/stale); no analysis runs")
    ap.add_argument("--check",  action="append", dest="only",
                    metavar="NAME", help="run only the named check(s)")
    args = ap.parse_args(argv)

    repo = Path(args.root).resolve()
    db = compiledb.CompileDb(repo / args.build_dir / "compile_commands.json")

    if args.check_compiledb:
        reason = compiledb.staleness(repo, db.path)
        if reason:
            print(f"bda_analyze: stale compilation database: {reason}",
                  file=sys.stderr)
            return 2
        print(f"bda_analyze: {args.build_dir}/compile_commands.json is fresh")
        return 0

    if args.frontend == "libclang" and not frontend_libclang.available():
        print("bda_analyze: --frontend libclang requested but clang.cindex "
              "is unavailable (install python3-clang + libclang)",
              file=sys.stderr)
        return 2

    checks = ALL_CHECKS
    if args.only:
        unknown = [c for c in args.only if c not in ALL_CHECKS]
        if unknown:
            print(f"bda_analyze: unknown check(s): {', '.join(unknown)} "
                  f"(known: {', '.join(ALL_CHECKS)})", file=sys.stderr)
            return 2
        checks = {k: v for k, v in ALL_CHECKS.items() if k in args.only}

    if args.files:
        files = [Path(f).resolve() for f in args.files]
        missing = [str(f) for f in files if not f.is_file()]
        if missing:
            print(f"bda_analyze: no such file: {', '.join(missing)}",
                  file=sys.stderr)
            return 2
    else:
        files = discover_sources(repo)

    report = analyze(repo, files, args.frontend, db, checks)
    print(report.render_text())
    if args.json:
        Path(args.json).write_text(report.to_json())
    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main())
