"""Findings, suppressions and report rendering for bda_analyze.

Suppression grammar (shared with tools/check_bda_style.py):

    // bda-style: allow(<check-name>): <non-empty reason>

The reason is mandatory — an allow() without one does not suppress, and is
itself reported (`bad-allow`), so every silenced finding carries its
justification in the diff.  The marker may sit on the finding's line or on
a comment-only line immediately above it (for pragmas and long lines).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass

ALLOW_RE = re.compile(
    r"//\s*bda-style:\s*allow\((?P<name>[\w-]+)\)(?P<reason>.*)")


@dataclass
class Finding:
    rel: str
    line: int
    check: str
    message: str

    def render(self) -> str:
        return f"{self.rel}:{self.line}: [{self.check}] {self.message}"


class Suppressions:
    """Per-file index of allow() markers, with use tracking."""

    def __init__(self, raw_text: str):
        self.by_line: dict[int, list[dict]] = {}
        for lineno, line in enumerate(raw_text.splitlines(), 1):
            m = ALLOW_RE.search(line)
            if not m:
                continue
            entry = {
                "line": lineno,
                "check": m.group("name"),
                "reason_ok": bool(re.search(r"\S", m.group("reason")
                                            .lstrip(":").lstrip("—-"))),
                "comment_only": line.strip().startswith("//"),
                "used": False,
            }
            self.by_line.setdefault(lineno, []).append(entry)

    def match(self, line: int, check: str) -> dict | None:
        """Marker covering `check` at `line`: same line, or a comment-only
        marker on the line above."""
        for cand_line, comment_only_required in ((line, False), (line - 1, True)):
            for entry in self.by_line.get(cand_line, []):
                if entry["check"] != check:
                    continue
                if comment_only_required and not entry["comment_only"]:
                    continue
                return entry
        return None

    def bad_allow_findings(self, rel: str) -> list[Finding]:
        out = []
        for entries in self.by_line.values():
            for e in entries:
                if not e["reason_ok"]:
                    out.append(Finding(
                        rel, e["line"], "bad-allow",
                        f"allow({e['check']}) without a reason — write "
                        f"'// bda-style: allow({e['check']}): <why>'"))
        return out


class Report:
    def __init__(self):
        self.findings: list[Finding] = []
        self.suppressed: list[Finding] = []
        self.files_analyzed = 0
        self.frontend = "lexical"

    def add(self, finding: Finding, supp: Suppressions | None):
        entry = supp.match(finding.line, finding.check) if supp else None
        if entry is not None and entry["reason_ok"]:
            entry["used"] = True
            self.suppressed.append(finding)
        else:
            self.findings.append(finding)

    def to_json(self) -> str:
        def enc(f: Finding):
            return {"file": f.rel, "line": f.line, "check": f.check,
                    "message": f.message}
        return json.dumps({
            "tool": "bda_analyze",
            "frontend": self.frontend,
            "files_analyzed": self.files_analyzed,
            "findings": [enc(f) for f in sorted(
                self.findings, key=lambda f: (f.rel, f.line, f.check))],
            "suppressed": [enc(f) for f in sorted(
                self.suppressed, key=lambda f: (f.rel, f.line, f.check))],
        }, indent=2) + "\n"

    def render_text(self) -> str:
        lines = [f.render() for f in sorted(
            self.findings, key=lambda f: (f.rel, f.line, f.check))]
        tail = (f"bda_analyze: {len(self.findings)} finding(s), "
                f"{len(self.suppressed)} suppressed, "
                f"{self.files_analyzed} file(s) [{self.frontend} frontend]")
        return "\n".join(lines + [tail])
