"""The five determinism-contract checks.

Each check is a function (facts, tree, report) -> None that appends
Findings.  What they encode — and why no generic tool can — is the paper's
operational contract: the pipelined 30-s cycle must be *bitwise identical*
to the serial cycle (docs/PIPELINE.md), which constrains where randomness
may be drawn, how floating-point sums may be ordered, and what byte streams
container iteration may feed.  The lock-annotation and status checks close
the two silent-failure classes PR 1 and PR 4 fixed by hand.
"""

from __future__ import annotations

import re

import cpplex
from facts import FileFacts, _split_top_level
from report import Finding, Report, Suppressions

# Where the bitwise-determinism contract applies (docs/PIPELINE.md): the
# analysis/ensemble state path.  Checks outside these trees would flag
# legitimately order-free code (benches, examples).
DETERMINISM_DIRS = ("src/letkf", "src/scale", "src/workflow")

# The cycle path for unchecked-status: a dropped status here loses a cycle
# (or silently corrupts one) rather than a test expectation.
CYCLE_PATH_DIRS = ("src/workflow", "src/jitdt", "src/letkf", "src/scale",
                   "src/hpc", "src/pawr")

# Files whose byte output is a product of record: container iteration order
# here is *always* output-visible, no sink heuristic needed.
SERIALIZATION_FILES = (
    "src/workflow/products", "src/workflow/checkpoint", "src/util/metrics",
    "src/util/binary_io", "src/pawr/datafile",
)


def _in_dirs(rel: str, dirs) -> bool:
    return any(rel.startswith(d) for d in dirs)


# ---------------------------------------------------------------------------
# 1. rng-thread-discipline

RNG_USE_RE = re.compile(
    r"\bRng\b|\brng\w*\b|\bmt19937(?:_64)?\b|\brandom_device\b|"
    r"\bs?rand\s*\(|\buniform_(?:real|int)_distribution\b|"
    r"\bnormal_distribution\b")


def check_rng_thread_discipline(facts: FileFacts, tree, report: Report,
                                supp: Suppressions):
    """RNG engines may only be constructed and drawn from staged-API call
    sites on the calling thread (src/workflow/cycle.hpp): a draw inside a
    std::async / worker lambda splits the random stream across a schedule-
    dependent thread interleaving and breaks pipelined == serial."""
    for ctx in facts.thread_contexts:
        span_text = ctx.span.slice(facts.code)
        for m in RNG_USE_RE.finditer(span_text):
            line = facts.line(ctx.span.start + m.start())
            report.add(Finding(
                facts.rel, line, "rng-thread-discipline",
                f"'{m.group(0).strip()}' used inside a worker context "
                f"({ctx.origin}) — all RNG construction/draws belong in "
                "staged-API call sites on the calling thread "
                "(src/workflow/cycle.hpp RNG discipline)"), supp)


# ---------------------------------------------------------------------------
# 2. nondet-fp-reduction

REDUCTION_CLAUSE_RE = re.compile(r"\breduction\s*\(\s*([^:()]+):([^)]+)\)")
ORDER_SENSITIVE_OPS = {"+", "-", "*"}
# Declarator-list aware: `std::size_t a = 0, b = 0;` declares b too, so the
# type token may be separated from the variable by earlier declarators (but
# never by a ';').
FP_DECL_RE = (r"\b(?:const\s+)?(?:real|float|double|long\s+double)\s+"
              r"[^;(){{}}]*?\b{}\b")
INT_DECL_RE = (r"\b(?:const\s+)?(?:unsigned\s+)?(?:bool|int|idx|long|short|"
               r"std::size_t|size_t|std::u?int\d+_t|u?int\d+_t|"
               r"std::ptrdiff_t|char)\s+[^;(){{}}]*?\b{}\b")
ATOMIC_FP_RE = re.compile(r"\bstd::atomic\s*<\s*(?:float|double|real|"
                          r"bda::real|long\s+double)\s*>")


def _var_type_class(facts: FileFacts, var: str, before_offset: int) -> str:
    """'fp' | 'int' | 'unknown' for the nearest declaration of `var` above
    `before_offset` (enclosing function first, then whole file)."""
    fp = re.compile(FP_DECL_RE.format(re.escape(var)))
    iv = re.compile(INT_DECL_RE.format(re.escape(var)))
    region = facts.code[:before_offset]
    fp_pos = max((m.start() for m in fp.finditer(region)), default=-1)
    int_pos = max((m.start() for m in iv.finditer(region)), default=-1)
    if fp_pos < 0 and int_pos < 0:
        return "unknown"
    return "fp" if fp_pos > int_pos else "int"


def check_nondet_fp_reduction(facts: FileFacts, tree, report: Report,
                              supp: Suppressions):
    """Unordered OpenMP reductions and atomic accumulation over floating-
    point values: FP addition is not associative, and with dynamic
    scheduling the per-thread partial sums differ run to run — the result
    is nondeterministic even on one machine.  Integer reductions are exact
    in any order and pass.  An order-independence justification is an
    allow() with a reason."""
    if not _in_dirs(facts.rel, DETERMINISM_DIRS):
        return
    for pragma in facts.omp_pragmas:
        for clause in REDUCTION_CLAUSE_RE.finditer(pragma.text):
            op = clause.group(1).strip()
            if op not in ORDER_SENSITIVE_OPS:
                continue
            for var in clause.group(2).split(","):
                var = var.strip()
                if not var:
                    continue
                cls = _var_type_class(facts, var, pragma.offset)
                if cls == "int":
                    continue
                why = ("declared floating-point" if cls == "fp" else
                       "type not provable as integer")
                report.add(Finding(
                    facts.rel, pragma.line, "nondet-fp-reduction",
                    f"omp reduction({op}:{var}) over a value that is {why} "
                    "— FP reduction order is schedule-dependent; use an "
                    "integer accumulator, a deterministic per-thread array "
                    "fold, or allow() with an order-independence reason"),
                    supp)
        if re.search(r"\bomp\s+atomic\b", pragma.text) and \
                not re.search(r"\bread\b|\bwrite\b", pragma.text):
            # The statement the atomic applies to is the next code line.
            nxt = facts.code[pragma.offset:].split("\n")
            stmt = ""
            for cand in nxt[1:]:
                if cand.strip():
                    stmt = cand
                    break
            tm = re.match(r"\s*([\w.\[\]>-]+?)\s*(?:\+|-|\*)=", stmt)
            if tm:
                base = re.split(r"[.\[\->]", tm.group(1))[0]
                if _var_type_class(facts, base, pragma.offset) != "int":
                    report.add(Finding(
                        facts.rel, pragma.line, "nondet-fp-reduction",
                        f"omp atomic accumulation into '{tm.group(1)}' — "
                        "atomic FP updates commit in scheduling order; "
                        "restructure as an ordered fold or allow() with an "
                        "order-independence reason"), supp)
    for m in ATOMIC_FP_RE.finditer(facts.code):
        report.add(Finding(
            facts.rel, facts.line(m.start()), "nondet-fp-reduction",
            "std::atomic over a floating-point type in a bitwise-"
            "determinism path — accumulation through it is ordering-"
            "nondeterministic; keep FP state thread-private and fold "
            "deterministically"), supp)


# ---------------------------------------------------------------------------
# 3. unordered-iteration-in-output

SINK_RE = re.compile(
    r"\bpush_back\b|\bemplace_back\b|\bappend\w*\b|\bwrite\w*\b|<<|"
    r"\bput_\w+\b|\bto_json\b|\bserialize\w*\b|\bsave_\w+\b|\binsert\b|"
    r"\bfwrite\b|\bemit\w*\b")


def check_unordered_iteration(facts: FileFacts, tree, report: Report,
                              supp: Suppressions):
    """Iterating a std::unordered_* container into anything ordered —
    serialized products, metrics JSON, checkpoint bytes, an observation
    vector — bakes the hash function and load factor into the output.
    That order differs across standard libraries (and across insertions),
    so the artifact is not reproducible.  Iterate a sorted view of the
    keys, or use an ordered container."""
    always_output = _in_dirs(facts.rel, SERIALIZATION_FILES)
    for loop in facts.unordered_loops:
        body = loop.body.slice(facts.code)
        sink = SINK_RE.search(body)
        if not (always_output or sink):
            continue
        how = ("in a serialization unit" if always_output else
               f"feeding '{sink.group(0)}'")
        report.add(Finding(
            facts.rel, loop.line, "unordered-iteration-in-output",
            f"iteration over unordered container '{loop.container}' {how} "
            "— hash order leaks into the output bytes; iterate sorted keys "
            "or switch to an ordered container"), supp)


# ---------------------------------------------------------------------------
# 4. mutex-annotation

def check_mutex_annotation(facts: FileFacts, tree, report: Report,
                           supp: Suppressions):
    """Every std::mutex member must demonstrably guard something (at least
    one BDA_GUARDED_BY/BDA_PT_GUARDED_BY in its class, or a BDA_REQUIRES/
    BDA_ACQUIRE in the file); every std::condition_variable member must be
    tied to its mutex with BDA_CV_OF on its own declaration.  This is what
    keeps tools/check_bda_style.py's lock cross-check — the GCC stand-in
    for clang -Wthread-safety — complete rather than best-effort."""
    requires = set(re.findall(
        r"BDA_(?:REQUIRES|ACQUIRE|RELEASE)\(\s*([\w, ]+)\)", facts.code))
    requires = {name.strip() for grp in requires for name in grp.split(",")}
    for cls in facts.classes:
        mutex_names = {m.name for m in cls.sync_members if m.kind == "mutex"}
        for m in cls.sync_members:
            if m.kind == "mutex":
                if m.name in cls.guard_targets or m.name in requires:
                    continue
                report.add(Finding(
                    facts.rel, m.line, "mutex-annotation",
                    f"std::mutex '{m.name}' in {cls.keyword} '{cls.name}' "
                    "has no BDA_GUARDED_BY coverage — annotate the members "
                    "it protects (util/annotations.hpp)"), supp)
            else:  # condition_variable
                if m.guarded_by and m.guarded_by in mutex_names:
                    continue
                report.add(Finding(
                    facts.rel, m.line, "mutex-annotation",
                    f"condition_variable '{m.name}' in '{cls.name}' is not "
                    "tied to its mutex — declare it "
                    "'std::condition_variable cv BDA_CV_OF(<mutex>);' "
                    "so the wait/notify protocol is checkable"), supp)


# ---------------------------------------------------------------------------
# 5. unchecked-status

#: Query-style names whose discarded call is almost always a smell we do
#: not want to gate on (kept empty on purpose: discarding a predicate is a
#: bug in this tree too — the eigensolver convergence flag was one).
STATUS_NAME_EXEMPT: set[str] = set()

DISCARD_PREFIX_RE = re.compile(r"^\s*(?:[\w:]+(?:\.|->))*$")


def check_unchecked_status(facts: FileFacts, tree, report: Report,
                           supp: Suppressions):
    """A status return (bool / TransferResult) discarded as a bare
    expression-statement on the cycle path.  This is the class of bug PR 4
    dug out of the eigensolver: the operation fails, nobody notices, and
    the analysis silently degrades.  Consume the value, or cast to (void)
    with an allow() reason."""
    if not _in_dirs(facts.rel, CYCLE_PATH_DIRS):
        return
    index = tree.status_functions
    code = facts.code
    for m in re.finditer(r"\b(\w+)\s*\(", code):
        name = m.group(1)
        if name not in index or name in STATUS_NAME_EXEMPT:
            continue
        # Statement prefix: text back to the previous ;, { or } must be a
        # bare receiver chain (no assignment, return, condition, cast...).
        start = max(code.rfind(";", 0, m.start()),
                    code.rfind("{", 0, m.start()),
                    code.rfind("}", 0, m.start()))
        prefix = code[start + 1:m.start(1)]
        if not DISCARD_PREFIX_RE.match(prefix):
            continue
        open_idx = m.end() - 1
        close = cpplex.match_forward(code, open_idx)
        if close < 0:
            continue
        after = code[close + 1:close + 40].lstrip()
        if not after.startswith(";"):
            continue
        # Arity filter: only flag when some declared overload of this name
        # could accept this many arguments.
        call_args = [a for a in _split_top_level(code[open_idx + 1:close])
                     if a.strip()]
        arity = len(call_args)
        decls = [d for d in index[name]
                 if d["min_arity"] <= arity <= d["max_arity"]]
        if not decls:
            continue
        report.add(Finding(
            facts.rel, facts.line(m.start()), "unchecked-status",
            f"return value of '{name}(...)' (declared in "
            f"{decls[0]['header']}) is discarded on the cycle path — check "
            "it, or cast to (void) with an allow() reason"), supp)


ALL_CHECKS = {
    "rng-thread-discipline": check_rng_thread_discipline,
    "nondet-fp-reduction": check_nondet_fp_reduction,
    "unordered-iteration-in-output": check_unordered_iteration,
    "mutex-annotation": check_mutex_annotation,
    "unchecked-status": check_unchecked_status,
}
