// Fixture: an allow() WITHOUT a reason must not suppress — the original
// finding stays, and the marker itself is reported as bad-allow.

namespace fixture {

double fold(const double* x, int n) {
  double sum = 0.0;
  // EXPECT-NEXT: bad-allow
  // bda-style: allow(nondet-fp-reduction)
#pragma omp parallel for reduction(+ : sum)  // EXPECT: nondet-fp-reduction
  for (int i = 0; i < n; ++i) sum += x[i];
  return sum;
}

}  // namespace fixture
