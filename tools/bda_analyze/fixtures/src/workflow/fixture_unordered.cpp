// Fixture: unordered-iteration-in-output.  Analyzer input only.
#include <unordered_map>
#include <vector>

namespace fixture {

// Hash-order iteration feeding push_back: the bucket layout becomes the
// vector order — flagged.
std::vector<int> leak_order(const std::unordered_map<int, int>& cells) {
  std::vector<int> out;
  for (const auto& kv : cells)  // EXPECT: unordered-iteration-in-output
    out.push_back(kv.second);
  return out;
}

// Order-free aggregation over the same container: no finding.
int count_positive(const std::unordered_map<int, int>& cells) {
  int n = 0;
  for (const auto& kv : cells)
    n += kv.second > 0 ? 1 : 0;
  return n;
}

}  // namespace fixture
