// Fixture: rng-thread-discipline.
//
// Seeded violations carry `// EXPECT: <check>` markers; selftest.py fails
// unless bda_analyze reports exactly the marked lines (nothing more,
// nothing less).  This file is analyzer input only — it is never compiled.
#include <future>
#include <random>

namespace fixture {

struct Rng {
  explicit Rng(unsigned seed);
  double normal();
};

// Calling-thread construction and draws: the staged-API pattern, no finding.
double staged_ok() {
  Rng rng(7);
  return rng.normal();
}

// A draw inside a std::async lambda splits the random stream across a
// schedule-dependent interleaving — both lines must be flagged.
double worker_bad() {
  auto fut = std::async(std::launch::async, [] {
    std::mt19937 gen(42);                 // EXPECT: rng-thread-discipline
    std::uniform_real_distribution<double> dist(0.0, 1.0);  // EXPECT: rng-thread-discipline
    return dist(gen);
  });
  return fut.get();
}

}  // namespace fixture
