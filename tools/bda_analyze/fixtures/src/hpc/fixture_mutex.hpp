// Fixture: mutex-annotation.  Analyzer input only — never compiled, so the
// annotation macros are stubbed here instead of including util/.
#pragma once

#include <condition_variable>
#include <mutex>

#define BDA_GUARDED_BY(x)
#define BDA_CV_OF(x)

namespace fixture {

// Fully annotated: the mutex guards a member, the cv names its mutex.
class Good {
  std::mutex mu_;
  std::condition_variable cv_ BDA_CV_OF(mu_);
  int queue_depth_ BDA_GUARDED_BY(mu_) = 0;
};

// Neither sync member is tied to anything: both flagged.
class Bad {
  std::mutex lonely_mu_;             // EXPECT: mutex-annotation
  std::condition_variable free_cv_;  // EXPECT: mutex-annotation
};

}  // namespace fixture
