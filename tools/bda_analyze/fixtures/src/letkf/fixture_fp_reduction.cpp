// Fixture: nondet-fp-reduction.  Analyzer input only — never compiled.
#include <atomic>

namespace fixture {

// FP reduction variable: flagged.  The integer companion in the same
// clause must NOT be flagged (exact in any order).
double column_sum(const double* x, int n) {
  double sum = 0.0;
  long hits = 0;
#pragma omp parallel for reduction(+ : sum, hits)  // EXPECT: nondet-fp-reduction
  for (int i = 0; i < n; ++i) {
    sum += x[i];
    hits += 1;
  }
  return sum + double(hits);
}

// Pure integer reduction: no finding.
long count_valid(const int* flags, int n) {
  long kept = 0;
#pragma omp parallel for reduction(+ : kept)
  for (int i = 0; i < n; ++i)
    if (flags[i] != 0) kept += 1;
  return kept;
}

// Atomic FP accumulation commits in scheduling order: flagged.
double accumulate(const double* x, int n) {
  double total = 0.0;
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
#pragma omp atomic  // EXPECT: nondet-fp-reduction
    total += x[i];
  }
  return total;
}

// std::atomic over FP in a determinism dir: flagged.  The integer atomic
// below it is fine.
struct Stats {
  std::atomic<double> drift{0.0};  // EXPECT: nondet-fp-reduction
  std::atomic<long> cycles{0};
};

}  // namespace fixture
