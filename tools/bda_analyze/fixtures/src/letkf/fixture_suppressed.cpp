// Negative fixture: the seeded violation below carries a *reasoned* allow,
// so the analyzer must report nothing for this file — the finding moves to
// the suppressed list instead.
// EXPECT-SUPPRESSED: nondet-fp-reduction

namespace fixture {

double fold(const double* x, int n) {
  double sum = 0.0;
  // bda-style: allow(nondet-fp-reduction): fixture — proves a reasoned allow suppresses
#pragma omp parallel for reduction(+ : sum)
  for (int i = 0; i < n; ++i) sum += x[i];
  return sum;
}

}  // namespace fixture
