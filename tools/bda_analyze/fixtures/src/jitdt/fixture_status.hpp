// Fixture header: declares the status-returning functions that feed the
// tree-wide index check_unchecked_status matches call sites against.
#pragma once

namespace fixture {

struct TransferResult {
  bool delivered = false;
};

bool push_segment(int fd, const char* bytes, int n);
TransferResult transfer_file(const char* path);

}  // namespace fixture
