// Fixture: unchecked-status.  Analyzer input only — never compiled.
#include "fixture_status.hpp"

namespace fixture {

int cycle(int fd, const char* bytes, int n, const char* path) {
  // Bare discarded status call: flagged.
  push_segment(fd, bytes, n);  // EXPECT: unchecked-status

  // Consumed in a condition / an initializer: both fine.
  if (!push_segment(fd, bytes, n)) return -1;
  const bool ok = push_segment(fd, bytes, n);

  // Discarded struct-valued status: flagged.
  transfer_file(path);  // EXPECT: unchecked-status

  // Arity mismatch must NOT match the index (different function entirely).
  push_segment(fd);

  return ok ? 0 : 1;
}

}  // namespace fixture
