"""Optional libclang (clang.cindex) frontend.

When the Python clang bindings and a loadable libclang are present, facts
are extracted from the real AST instead of the lexical scanner: class
members and their thread-safety attributes come from FIELD_DECL cursors,
worker contexts from LAMBDA_EXPR cursors under std::async/std::thread call
expressions, and unordered-container loops from CXX_FOR_RANGE_STMT over
variables whose canonical type names std::unordered_*.

The lexical frontend in facts.py remains the frontend of record — it runs
on any toolchain (this repo's minimal container has no libclang at all) and
the fixture corpus gates it in CI.  This module upgrades precision when it
can and degrades to `None` (caller falls back) when it cannot; it never
raises out of `extract`.
"""

from __future__ import annotations

from pathlib import Path

try:  # pragma: no cover - environment-dependent
    from clang import cindex as _ci
    try:
        _ci.Index.create()
        AVAILABLE = True
    except Exception:
        AVAILABLE = False
except Exception:  # ModuleNotFoundError or broken binding
    _ci = None
    AVAILABLE = False

import cpplex
import facts as facts_mod


def available() -> bool:
    return AVAILABLE


def _span_for(extent, code: str, lm) -> cpplex.Span:
    # libclang extents are line/column based; map to byte offsets via the
    # shared LineMap so Finding line numbers match the lexical frontend.
    start = lm.starts[extent.start.line - 1] + extent.start.column - 1
    end = lm.starts[extent.end.line - 1] + extent.end.column - 1
    return cpplex.Span(start, min(end, len(code)))


def extract(path: Path, rel: str, args: list[str] | None):
    """FileFacts from the AST, or None when parsing is unusable."""
    if not AVAILABLE:
        return None
    try:
        index = _ci.Index.create()
        tu = index.parse(str(path), args=(args or []) + ["-std=c++20"],
                         options=_ci.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES
                         * 0)
    except Exception:
        return None
    if tu is None:
        return None
    fatal = [d for d in tu.diagnostics if d.severity >= _ci.Diagnostic.Fatal]
    if fatal:
        return None

    # Start from the lexical facts (pragmas and function spans are cheaper
    # and just as precise lexically), then replace the AST-improvable parts.
    base = facts_mod.extract(path, rel)
    code, lm = base.code, base.linemap

    classes: list[facts_mod.ClassFacts] = []
    contexts: list[facts_mod.ThreadContext] = []
    loops: list[facts_mod.UnorderedLoop] = []

    def visit(cursor, class_stack):
        for child in cursor.get_children():
            if child.location.file and \
                    Path(str(child.location.file)) != path.resolve() and \
                    Path(str(child.location.file)) != path:
                continue
            kind = child.kind
            if kind in (_ci.CursorKind.CLASS_DECL,
                        _ci.CursorKind.STRUCT_DECL) and child.is_definition():
                cf = facts_mod.ClassFacts(
                    name=child.spelling or "<anon>",
                    line=child.location.line,
                    keyword="struct" if kind == _ci.CursorKind.STRUCT_DECL
                    else "class")
                classes.append(cf)
                visit(child, class_stack + [cf])
                continue
            if kind == _ci.CursorKind.FIELD_DECL and class_stack:
                t = child.type.get_canonical().spelling
                cf = class_stack[-1]
                kindname = None
                if "condition_variable" in t:
                    kindname = "condition_variable"
                elif t.endswith("::mutex") or t == "std::mutex":
                    kindname = "mutex"
                if kindname:
                    # Attribute arguments aren't exposed portably across
                    # libclang versions; read them lexically off the decl.
                    import re as _re
                    decl_line = base.raw.splitlines()[
                        child.location.line - 1] if \
                        child.location.line <= len(base.raw.splitlines()) \
                        else ""
                    g = _re.search(r"BDA_GUARDED_BY\(\s*(\w+)\s*\)",
                                   decl_line)
                    cf.sync_members.append(facts_mod.SyncMember(
                        kind=kindname, name=child.spelling,
                        class_name=cf.name, line=child.location.line,
                        guarded_by=g.group(1) if g else None))
                else:
                    import re as _re
                    decl_line = base.raw.splitlines()[
                        child.location.line - 1] if \
                        child.location.line <= len(base.raw.splitlines()) \
                        else ""
                    for gm in _re.finditer(
                            r"BDA_(?:PT_)?GUARDED_BY\(\s*(\w+)\s*\)",
                            decl_line):
                        class_stack[-1].guard_targets.add(gm.group(1))
            if kind == _ci.CursorKind.CALL_EXPR and \
                    child.spelling in ("async", "thread", "jthread",
                                       "emplace_back", "push_back"):
                for sub in child.walk_preorder():
                    if sub.kind == _ci.CursorKind.LAMBDA_EXPR:
                        contexts.append(facts_mod.ThreadContext(
                            span=_span_for(sub.extent, code, lm),
                            line=sub.location.line,
                            origin=f"std::{child.spelling}"))
            if kind == _ci.CursorKind.CXX_FOR_RANGE_STMT:
                rng_type = ""
                for sub in child.get_children():
                    rng_type = sub.type.get_canonical().spelling
                    break
                if "unordered_" in rng_type:
                    loops.append(facts_mod.UnorderedLoop(
                        container=child.spelling or "<range>",
                        line=child.location.line,
                        body=_span_for(child.extent, code, lm)))
            visit(child, class_stack)

    try:
        visit(tu.cursor, [])
    except Exception:
        return None

    base.classes = classes or base.classes
    base.thread_contexts = contexts or base.thread_contexts
    base.unordered_loops = loops or base.unordered_loops
    base.frontend = "libclang"
    return base
