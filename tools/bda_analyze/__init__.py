"""bda_analyze: determinism-contract static analysis for the BDA tree.

Run as a directory script (python3 tools/bda_analyze) or via tools/lint.sh.
See docs/ANALYSIS.md for the check catalog and suppression policy.
"""
