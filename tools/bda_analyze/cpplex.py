"""Lexical C++ utilities for bda_analyze.

Everything here operates on whole-file text and preserves offsets: comments
and string/char literal *contents* are blanked with spaces (newlines kept),
so byte offset <-> line number mapping is identical between the raw file and
the stripped view.  The structural helpers (brace matching, class bodies,
function bodies, lambda extraction, pragma joining) are deliberately not a
C++ parser — they are tuned to this tree's clang-format layout, and every
check built on them is validated against the fixture corpus in fixtures/.
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass, field


def strip_code(text: str) -> str:
    """Blank comments and string/char-literal contents; keep length."""
    out = list(text)
    i, n = 0, len(text)
    NORMAL, LINE_C, BLOCK_C, STR, CHR, RAW = range(6)
    state = NORMAL
    quote_end = ""  # raw-string terminator
    while i < n:
        c = text[i]
        if state == NORMAL:
            if c == "/" and i + 1 < n and text[i + 1] == "/":
                state = LINE_C
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and i + 1 < n and text[i + 1] == "*":
                state = BLOCK_C
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                if i >= 1 and text[i - 1] == "R":
                    m = re.match(r'R"([^()\\ ]{0,16})\(', text[i - 1:])
                    if m:
                        state = RAW
                        quote_end = ")" + m.group(1) + '"'
                        i += m.end() - 1
                        continue
                state = STR
                i += 1
                continue
            if c == "'":
                # Digit separators (1'000'000) are not char literals.
                if i >= 1 and (text[i - 1].isdigit() and i + 1 < n
                               and (text[i + 1].isdigit()
                                    or text[i + 1] in "abcdefABCDEF")):
                    i += 1
                    continue
                state = CHR
                i += 1
                continue
            i += 1
        elif state == LINE_C:
            if c == "\n":
                state = NORMAL
            elif c != "\t":
                out[i] = " "
            i += 1
        elif state == BLOCK_C:
            if c == "*" and i + 1 < n and text[i + 1] == "/":
                out[i] = out[i + 1] = " "
                state = NORMAL
                i += 2
                continue
            if c not in "\n\t":
                out[i] = " "
            i += 1
        elif state in (STR, CHR):
            end = '"' if state == STR else "'"
            if c == "\\" and i + 1 < n:
                out[i] = " "
                if text[i + 1] != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == end:
                state = NORMAL
            elif c != "\n":
                out[i] = " "
            i += 1
        elif state == RAW:
            if text.startswith(quote_end, i):
                i += len(quote_end)
                state = NORMAL
                continue
            if c != "\n":
                out[i] = " "
            i += 1
    return "".join(out)


class LineMap:
    """Offset -> 1-based line number."""

    def __init__(self, text: str):
        self.starts = [0]
        for i, c in enumerate(text):
            if c == "\n":
                self.starts.append(i + 1)

    def line(self, offset: int) -> int:
        return bisect.bisect_right(self.starts, offset)


def match_forward(code: str, open_idx: int, pairs: str = "()") -> int:
    """Index of the delimiter matching code[open_idx], or -1."""
    op, cl = pairs[0], pairs[1]
    assert code[open_idx] == op
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == op:
            depth += 1
        elif code[i] == cl:
            depth -= 1
            if depth == 0:
                return i
    return -1


def match_angles(code: str, open_idx: int) -> int:
    """Match template angle brackets (no shift-operator handling needed for
    the declaration contexts this is used in)."""
    assert code[open_idx] == "<"
    depth = 0
    for i in range(open_idx, len(code)):
        c = code[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i
        elif c in ";{}":
            return -1
    return -1


@dataclass
class Span:
    """A [start, end) byte range within the stripped code."""
    start: int
    end: int

    def slice(self, code: str) -> str:
        return code[self.start:self.end]


@dataclass
class ClassBody:
    name: str
    keyword: str            # "class" or "struct"
    decl_offset: int
    body: Span              # inside the braces


@dataclass
class FunctionBody:
    name: str
    decl_offset: int
    header: str             # up to 3 lines before the opening brace
    body: Span              # including the braces


@dataclass
class Lambda:
    intro_offset: int       # offset of '['
    body: Span              # including the braces
    context: str            # what call it was passed to (e.g. "std::async")


@dataclass
class OmpPragma:
    line: int               # 1-based line of the '#pragma'
    text: str               # continuation lines joined
    offset: int             # byte offset in the stripped code


CLASS_RE = re.compile(r"\b(class|struct)\s+(\w+)[^;{()]*\{")


def find_classes(code: str) -> list[ClassBody]:
    out = []
    for m in CLASS_RE.finditer(code):
        open_idx = m.end() - 1
        close = match_forward(code, open_idx, "{}")
        if close < 0:
            continue
        out.append(ClassBody(name=m.group(2), keyword=m.group(1),
                             decl_offset=m.start(),
                             body=Span(open_idx + 1, close)))
    return out


# A function definition header: return type soup, a name, a parameter list
# with no ';' inside, then an optional specifier run and '{'.  Constructors,
# operators and templates are matched well enough for the whole-body scans
# the checks do; precision comes from the checks, not from here.
FUNC_RE = re.compile(
    r"(?:^|[;{}\n])\s*(?:template\s*<[^;{}]*>\s*)?"
    r"[\w:<>,&*~\s\[\]]*?\b([\w~]+)\s*\(([^;{}()]*(?:\([^()]*\)[^;{}()]*)*)\)"
    r"\s*(?:const|noexcept|override|final|mutable|->\s*[\w:<>,&*\s]+|\s)*\{")


def find_functions(code: str) -> list[FunctionBody]:
    out = []
    for m in FUNC_RE.finditer(code):
        open_idx = m.end() - 1
        name = m.group(1)
        if name in ("if", "for", "while", "switch", "catch", "return",
                    "sizeof", "alignof", "decltype", "new", "delete"):
            continue
        close = match_forward(code, open_idx, "{}")
        if close < 0:
            continue
        hdr_start = code.rfind("\n", 0, max(0, m.start()))
        for _ in range(3):
            hdr_start = code.rfind("\n", 0, max(0, hdr_start))
            if hdr_start < 0:
                hdr_start = 0
                break
        out.append(FunctionBody(name=name, decl_offset=m.start(),
                                header=code[hdr_start:open_idx],
                                body=Span(open_idx, close + 1)))
    return out


def find_lambda_in_args(code: str, args: Span, context: str) -> list[Lambda]:
    """Lambdas appearing directly in a call's argument span."""
    out = []
    i = args.start
    while i < args.end:
        c = code[i]
        if c != "[":
            i += 1
            continue
        # A lambda introducer follows '(', ',', '{', or whitespace after
        # those; a subscript follows an identifier or ')'.
        j = i - 1
        while j >= args.start and code[j] in " \t\n":
            j -= 1
        if j >= args.start and (code[j].isalnum() or code[j] in "_)]"):
            i += 1
            continue
        close_b = match_forward(code, i, "[]")
        if close_b < 0:
            break
        k = close_b + 1
        while k < args.end and code[k] in " \t\n":
            k += 1
        if k < args.end and code[k] == "(":
            close_p = match_forward(code, k, "()")
            if close_p < 0:
                break
            k = close_p + 1
        # Skip specifiers (mutable, noexcept, -> T) up to the body brace.
        while k < args.end and code[k] != "{":
            if code[k] == ";" or code[k] == ")":
                break
            k += 1
        if k >= args.end or code[k] != "{":
            i = close_b + 1
            continue
        close_body = match_forward(code, k, "{}")
        if close_body < 0:
            break
        out.append(Lambda(intro_offset=i, body=Span(k, close_body + 1),
                          context=context))
        i = close_body + 1
    return out


def join_omp_pragmas(raw_text: str, code: str) -> list[OmpPragma]:
    """'#pragma omp' directives with backslash continuations joined.

    Offsets/lines come from the stripped code so they line up with the other
    structural facts.
    """
    out = []
    lines = code.splitlines(keepends=True)
    offset = 0
    i = 0
    while i < len(lines):
        line = lines[i]
        m = re.match(r"\s*#\s*pragma\s+omp\b", line)
        if m:
            text = line.rstrip("\n")
            j = i
            while text.rstrip().endswith("\\") and j + 1 < len(lines):
                j += 1
                text = text.rstrip().rstrip("\\") + " " + \
                    lines[j].rstrip("\n").lstrip()
            out.append(OmpPragma(line=i + 1, text=re.sub(r"\s+", " ", text),
                                 offset=offset))
            skipped = sum(len(lines[k]) for k in range(i, j + 1))
            offset += skipped
            i = j + 1
            continue
        offset += len(line)
        i += 1
    return out


def enclosing_function(functions: list[FunctionBody],
                       offset: int) -> FunctionBody | None:
    best = None
    for fn in functions:
        if fn.body.start <= offset < fn.body.end:
            if best is None or fn.body.start > best.body.start:
                best = fn
    return best
