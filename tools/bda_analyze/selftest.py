#!/usr/bin/env python3
"""Golden-fixture selftest for the determinism-contract analyzer.

fixtures/ is a miniature repo (fixtures/src/...) so the path-gated checks
see the directories they gate on.  Each fixture seeds violations marked
inline:

    // EXPECT: <check-name>         finding expected on this line
    // EXPECT-NEXT: <check-name>    finding expected on the next line
    // EXPECT-SUPPRESSED: <check>   suppressed finding expected in this file

The analyzer must report *exactly* the expected findings: a missing one
means the check regressed, an extra one is a false positive — the selftest
fails in both directions.  Registered as the ctest `bda_analyze_selftest`.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "fixtures"

EXPECT_RE = re.compile(r"EXPECT(?P<nxt>-NEXT)?:\s*(?P<check>[\w-]+)")
EXPECT_SUPP_RE = re.compile(r"EXPECT-SUPPRESSED:\s*(?P<check>[\w-]+)")


def harvest_expected():
    findings: set[tuple[str, int, str]] = set()
    suppressed: dict[str, list[str]] = {}
    for p in sorted((FIXTURES / "src").rglob("*")):
        if p.suffix not in (".cpp", ".hpp", ".h", ".cc"):
            continue
        rel = p.relative_to(FIXTURES).as_posix()
        for lineno, line in enumerate(p.read_text().splitlines(), 1):
            for m in EXPECT_SUPP_RE.finditer(line):
                suppressed.setdefault(rel, []).append(m.group("check"))
            # Strip the suppressed markers so EXPECT_RE cannot half-match.
            stripped = EXPECT_SUPP_RE.sub("", line)
            for m in EXPECT_RE.finditer(stripped):
                at = lineno + 1 if m.group("nxt") else lineno
                findings.add((rel, at, m.group("check")))
    return findings, suppressed


def main() -> int:
    with tempfile.TemporaryDirectory() as td:
        out = Path(td) / "report.json"
        proc = subprocess.run(
            [sys.executable, str(HERE), "--root", str(FIXTURES),
             "--frontend", "lexical", "--json", str(out)],
            capture_output=True, text=True)
        if proc.returncode not in (0, 1):
            print("selftest: analyzer crashed "
                  f"(exit {proc.returncode}):\n{proc.stderr}", file=sys.stderr)
            return 1
        data = json.loads(out.read_text())

    want, want_supp = harvest_expected()
    got = {(f["file"], f["line"], f["check"]) for f in data["findings"]}
    got_supp: dict[str, list[str]] = {}
    for f in data["suppressed"]:
        got_supp.setdefault(f["file"], []).append(f["check"])

    ok = True
    for miss in sorted(want - got):
        ok = False
        print(f"selftest: MISSED (check regressed): "
              f"{miss[0]}:{miss[1]} [{miss[2]}]")
    for extra in sorted(got - want):
        ok = False
        print(f"selftest: FALSE POSITIVE: "
              f"{extra[0]}:{extra[1]} [{extra[2]}]")
    for rel in sorted(set(want_supp) | set(got_supp)):
        if sorted(want_supp.get(rel, [])) != sorted(got_supp.get(rel, [])):
            ok = False
            print(f"selftest: suppression mismatch in {rel}: expected "
                  f"{sorted(want_supp.get(rel, []))}, got "
                  f"{sorted(got_supp.get(rel, []))}")
    if proc.returncode != 1:
        # Seeded violations exist, so the analyzer must exit 1 here.
        ok = False
        print(f"selftest: expected exit 1 over fixtures, got "
              f"{proc.returncode}")

    if not want:
        ok = False
        print("selftest: no EXPECT markers harvested — fixture set broken?")

    checks_covered = {c for (_, _, c) in want}
    print(f"selftest: {'OK' if ok else 'FAILED'} — "
          f"{len(want)} expected finding(s), "
          f"{len(checks_covered)} check(s) covered: "
          f"{', '.join(sorted(checks_covered))}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
