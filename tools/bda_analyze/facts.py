"""Structural facts extracted from one source file (lexical frontend).

A `FileFacts` is the common input contract for every check in checks.py:
the optional libclang frontend (frontend_libclang.py) produces the same
structure from the real AST, so checks never know which frontend ran.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

import cpplex


@dataclass
class SyncMember:
    """A std::mutex / std::condition_variable class member."""
    kind: str               # "mutex" or "condition_variable"
    name: str
    class_name: str
    line: int
    guarded_by: str | None  # BDA_GUARDED_BY(x) on the declaration itself


@dataclass
class ClassFacts:
    name: str
    line: int
    keyword: str = "class"  # "class" or "struct"
    sync_members: list[SyncMember] = field(default_factory=list)
    #: mutex names referenced by BDA_GUARDED_BY/BDA_PT_GUARDED_BY anywhere
    #: in the class body (i.e. "this mutex demonstrably guards something").
    guard_targets: set[str] = field(default_factory=set)


@dataclass
class ThreadContext:
    """A code span that runs off the calling thread (lambda handed to
    std::async / std::thread / a thread-vector, plus the bodies of functions
    those lambdas call within the same file — one hop)."""
    span: cpplex.Span
    line: int
    origin: str             # e.g. "std::async", "threads_.emplace_back"


@dataclass
class UnorderedLoop:
    """Range-for / iterator loop over a std::unordered_* container."""
    container: str
    line: int
    body: cpplex.Span


@dataclass
class FileFacts:
    path: Path
    rel: str                # repo-relative, '/'-separated
    raw: str
    code: str               # comments/strings blanked, offsets preserved
    linemap: cpplex.LineMap
    classes: list[ClassFacts]
    functions: list[cpplex.FunctionBody]
    thread_contexts: list[ThreadContext]
    unordered_loops: list[UnorderedLoop]
    omp_pragmas: list[cpplex.OmpPragma]
    frontend: str = "lexical"

    def line(self, offset: int) -> int:
        return self.linemap.line(offset)


MUTEX_MEMBER_RE = re.compile(
    r"(?:mutable\s+)?std::(mutex|condition_variable(?:_any)?)\s+(\w+)\s*"
    r"((?:BDA_GUARDED_BY|BDA_CV_OF)\(\s*(\w+)\s*\))?\s*;")
GUARD_TARGET_RE = re.compile(r"BDA_(?:PT_)?GUARDED_BY\(\s*(\w+)\s*\)")

# Thread-launch call sites whose lambda argument runs off-thread.
ASYNC_LAUNCH_RE = re.compile(r"\bstd::(?:async|thread|jthread)\s*[({]")
THREAD_VEC_RE = re.compile(
    r"\bstd::vector\s*<\s*std::j?thread\s*>\s+(\w+)")

UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_\w+\s*<")


def _extract_classes(code: str, lm: cpplex.LineMap) -> list[ClassFacts]:
    out = []
    class_bodies = cpplex.find_classes(code)
    for cb in class_bodies:
        cf = ClassFacts(name=cb.name, line=lm.line(cb.decl_offset),
                        keyword=cb.keyword)
        # Mask nested class bodies so a member is attributed only to its
        # innermost declaring class (Mailbox's cv is not CommWorld's).
        body_chars = list(cb.body.slice(code))
        for other in class_bodies:
            if other is cb:
                continue
            if cb.body.start < other.body.start and \
                    other.body.end <= cb.body.end:
                for i in range(other.body.start - cb.body.start,
                               other.body.end - cb.body.start):
                    if body_chars[i] not in "\n":
                        body_chars[i] = " "
        body = "".join(body_chars)
        for m in MUTEX_MEMBER_RE.finditer(body):
            kind = ("condition_variable"
                    if m.group(1).startswith("condition_variable")
                    else "mutex")
            cf.sync_members.append(SyncMember(
                kind=kind, name=m.group(2), class_name=cb.name,
                line=lm.line(cb.body.start + m.start()),
                guarded_by=m.group(4)))
        for m in GUARD_TARGET_RE.finditer(body):
            cf.guard_targets.add(m.group(1))
        out.append(cf)
    return out


def _extract_thread_contexts(code: str, lm: cpplex.LineMap,
                             functions: list[cpplex.FunctionBody],
                             ) -> list[ThreadContext]:
    contexts: list[ThreadContext] = []
    lambdas: list[cpplex.Lambda] = []

    for m in ASYNC_LAUNCH_RE.finditer(code):
        open_idx = m.end() - 1
        pairs = "()" if code[open_idx] == "(" else "{}"
        close = cpplex.match_forward(code, open_idx, pairs)
        if close < 0:
            continue
        origin = re.sub(r"\s*[({]$", "", m.group(0))
        lambdas += cpplex.find_lambda_in_args(
            code, cpplex.Span(open_idx + 1, close), origin)

    # Vectors of std::thread: lambdas handed to emplace_back/push_back.
    for tv in THREAD_VEC_RE.finditer(code):
        vec = tv.group(1)
        for call in re.finditer(
                rf"\b{re.escape(vec)}\s*\.\s*(?:emplace_back|push_back)\s*\(",
                code):
            open_idx = call.end() - 1
            close = cpplex.match_forward(code, open_idx)
            if close < 0:
                continue
            lambdas += cpplex.find_lambda_in_args(
                code, cpplex.Span(open_idx + 1, close),
                f"{vec}.emplace_back")

    by_name = {}
    for fn in functions:
        by_name.setdefault(fn.name, fn)

    seen_spans = set()
    for lam in lambdas:
        key = (lam.body.start, lam.body.end)
        if key in seen_spans:
            continue
        seen_spans.add(key)
        contexts.append(ThreadContext(span=lam.body,
                                      line=lm.line(lam.intro_offset),
                                      origin=lam.context))
        # One hop: functions the lambda calls, when defined in this file,
        # also run on the worker thread (e.g. `[this, g] { worker(g); }`).
        for cm in re.finditer(r"\b(\w+)\s*\(", lam.body.slice(code)):
            callee = by_name.get(cm.group(1))
            if callee is None:
                continue
            ckey = (callee.body.start, callee.body.end)
            if ckey in seen_spans:
                continue
            seen_spans.add(ckey)
            contexts.append(ThreadContext(
                span=callee.body, line=lm.line(callee.decl_offset),
                origin=f"{lam.context} -> {callee.name}()"))
    return contexts


def _extract_unordered_loops(code: str, lm: cpplex.LineMap,
                             ) -> list[UnorderedLoop]:
    names = []
    for m in UNORDERED_DECL_RE.finditer(code):
        lt = m.end() - 1
        gt = cpplex.match_angles(code, lt)
        if gt < 0:
            continue
        nm = re.match(r"\s*&?\s*(\w+)", code[gt + 1:gt + 120])
        if nm and nm.group(1) not in ("const",):
            names.append(nm.group(1))
    if not names:
        return []

    out = []
    for fm in re.finditer(r"\bfor\s*\(", code):
        open_idx = fm.end() - 1
        close = cpplex.match_forward(code, open_idx)
        if close < 0:
            continue
        head = code[open_idx + 1:close]
        hit = None
        for name in names:
            if re.search(rf":\s*(?:\w+(?:\.|->))*{re.escape(name)}\b", head) \
                    or re.search(rf"\b{re.escape(name)}\s*\.\s*(?:c?begin|"
                                 r"c?end)\s*\(", head):
                hit = name
                break
        if hit is None:
            continue
        bi = close + 1
        while bi < len(code) and code[bi] in " \t\n":
            bi += 1
        if bi >= len(code):
            continue
        if code[bi] == "{":
            bclose = cpplex.match_forward(code, bi, "{}")
            body = cpplex.Span(bi, (bclose + 1) if bclose > 0 else len(code))
        else:
            semi = code.find(";", bi)
            body = cpplex.Span(bi, semi + 1 if semi > 0 else len(code))
        out.append(UnorderedLoop(container=hit, line=lm.line(fm.start()),
                                 body=body))
    return out


def extract(path: Path, rel: str, text: str | None = None) -> FileFacts:
    raw = text if text is not None else path.read_text(errors="replace")
    code = cpplex.strip_code(raw)
    lm = cpplex.LineMap(code)
    functions = cpplex.find_functions(code)
    return FileFacts(
        path=path, rel=rel, raw=raw, code=code, linemap=lm,
        classes=_extract_classes(code, lm),
        functions=functions,
        thread_contexts=_extract_thread_contexts(code, lm, functions),
        unordered_loops=_extract_unordered_loops(code, lm),
        omp_pragmas=cpplex.join_omp_pragmas(raw, code),
    )


# ---------------------------------------------------------------------------
# Tree-level facts: the status-function index for unchecked-status.

#: Return types that make a discarded call a finding.  `bool` covers the
#: tree's fallible operations (the eigensolver class PR 4 fixed);
#: TransferResult is the JIT-DT outcome record.
STATUS_RETURN_TYPES = ("bool", "TransferResult", "jitdt::TransferResult")

STATUS_FN_RE = re.compile(
    r"(?:^|[;{}\n])\s*(?:\[\[nodiscard\]\]\s*)?"
    r"(?:virtual\s+|static\s+|inline\s+|constexpr\s+|friend\s+)*"
    r"(?:%s)\s+(\w+)\s*\(" % "|".join(
        t.replace(":", "\\:") for t in STATUS_RETURN_TYPES))


def _split_top_level(args: str) -> list[str]:
    parts, depth, cur = [], 0, []
    for c in args:
        if c in "(<[":
            depth += 1
        elif c in ")>]":
            depth -= 1
        if c == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    if "".join(cur).strip():
        parts.append("".join(cur))
    return parts


def status_function_index(header_texts: dict[str, str]) -> dict:
    """name -> list of {header, min_arity, max_arity} for every bool/status-
    returning function declared in the given headers.  Arity matters: a
    discarded `solver.solve()` must not match `BatchedSymEigen::solve(a, w)`
    just because the names collide."""
    index: dict[str, list[dict]] = {}
    for rel, text in header_texts.items():
        code = cpplex.strip_code(text)
        for m in STATUS_FN_RE.finditer(code):
            name = m.group(1)
            if name in ("operator", "if", "while", "return"):
                continue
            open_idx = m.end() - 1
            close = cpplex.match_forward(code, open_idx)
            if close < 0:
                continue
            params = _split_top_level(code[open_idx + 1:close])
            params = [p for p in params if p.strip() not in ("", "void")]
            defaults = sum(1 for p in params if "=" in p)
            entry = {"header": rel, "min_arity": len(params) - defaults,
                     "max_arity": len(params)}
            if entry not in index.setdefault(name, []):
                index[name].append(entry)
    return index
