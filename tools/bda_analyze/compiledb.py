"""compile_commands.json handling: file discovery, include flags for the
libclang frontend, and staleness detection (shared with tools/lint.sh)."""

from __future__ import annotations

import json
import shlex
from pathlib import Path


class CompileDb:
    def __init__(self, path: Path):
        self.path = path
        self.entries: dict[Path, list[str]] = {}
        if path.is_file():
            for e in json.loads(path.read_text()):
                src = (Path(e["directory"]) / e["file"]).resolve()
                args = e.get("arguments") or shlex.split(e.get("command", ""))
                self.entries[src] = args

    @property
    def available(self) -> bool:
        return bool(self.entries)

    def args_for(self, src: Path) -> list[str] | None:
        """Compiler args (include dirs, -D, -std) for the libclang frontend.
        Headers borrow the args of a sibling .cpp when they have one."""
        src = src.resolve()
        if src in self.entries:
            return self._filter(self.entries[src])
        sibling = src.with_suffix(".cpp")
        if sibling in self.entries:
            return self._filter(self.entries[sibling])
        return None

    @staticmethod
    def _filter(args: list[str]) -> list[str]:
        out, it = [], iter(args[1:])  # drop compiler path
        for a in it:
            if a in ("-c", "-o"):
                next(it, None)
                continue
            if a.startswith(("-I", "-D", "-std", "-isystem", "-f", "-W")):
                out.append(a)
                if a in ("-isystem",):
                    nxt = next(it, None)
                    if nxt:
                        out.append(nxt)
        return out


def staleness(repo: Path, db_path: Path) -> str | None:
    """Human-readable reason the compilation database is stale, or None.

    Stale means: missing, or older than any CMakeLists.txt / CMake preset
    that could have changed the translation-unit list.  tools/lint.sh fails
    loudly on this instead of linting against yesterday's flags.
    """
    if not db_path.is_file():
        return f"{db_path} does not exist — configure first (cmake --preset release)"
    db_mtime = db_path.stat().st_mtime
    candidates = [repo / "CMakePresets.json"]
    for sub in ("", "src", "tests", "bench", "examples"):
        candidates.append(repo / sub / "CMakeLists.txt")
    candidates += list((repo / "src").glob("*/CMakeLists.txt"))
    newer = [str(c.relative_to(repo)) for c in candidates
             if c.is_file() and c.stat().st_mtime > db_mtime]
    if newer:
        return ("compilation database is older than: " + ", ".join(newer) +
                " — re-run cmake to refresh it")
    return None
