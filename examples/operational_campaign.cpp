// Operational campaign simulator: "run the Olympics" on your laptop.
//
// Drives the discrete-event twin of the month-long deployment (Fig 5):
// 30-second cycles, rain-dependent compute, JIT-DT transfers, rotating
// forecast node groups, and failure injection — with every knob adjustable
// from an INI file, e.g.:
//
//   [campaign]
//   days = 5
//   seed = 42
//   [fugaku]
//   nodes_analysis = 8008
//   nodes_forecast = 880
//   [outages]
//   mtbf_hours = 60
//
// Prints the daily record, the Fig 5c histogram, and the paper-vs-simulated
// summary.
#include <cstdio>

#include "util/config.hpp"
#include "util/stats.hpp"
#include "workflow/operations.hpp"

using namespace bda;
using namespace bda::workflow;

int main(int argc, char** argv) {
  Config ini;
  if (argc > 1) ini = Config::load(argv[1]);

  const long days = ini.get_or("campaign.days", 7L);
  const auto seed = std::uint64_t(ini.get_or("campaign.seed", 20210720L));

  OperationConfig cfg;
  cfg.fugaku.nodes_analysis =
      int(ini.get_or("fugaku.nodes_analysis", 8008L));
  cfg.fugaku.nodes_forecast =
      int(ini.get_or("fugaku.nodes_forecast", 880L));
  cfg.fugaku.node_speedup = ini.get_or("fugaku.node_speedup", 48.0);
  cfg.outages.mtbf_s = ini.get_or("outages.mtbf_hours", 60.0) * 3600.0;
  cfg.outages.mean_duration_s =
      ini.get_or("outages.duration_hours", 6.0) * 3600.0;
  cfg.rain.storm_rate_per_day =
      ini.get_or("rain.storms_per_day", 3.0);

  OperationSimulator sim(cfg, hpc::reference_calibration());
  Rng rng(seed);
  const std::size_t cycles = std::size_t(days) * 86400 / 30;
  std::printf("simulating %ld days = %zu cycles on %d+%d virtual nodes...\n",
              days, cycles, cfg.fugaku.nodes_analysis,
              cfg.fugaku.nodes_forecast);
  const auto recs = sim.run(cycles, rng);
  const auto sum = OperationSimulator::summarize(recs);

  std::printf("\n  day | produced | mean TTS | p97 TTS | rain>=1mm/h\n");
  for (long d = 0; d < days; ++d) {
    RunningStats tts, rain;
    std::vector<double> day_tts;
    for (std::size_t c = std::size_t(d) * 2880;
         c < std::size_t(d + 1) * 2880 && c < recs.size(); ++c) {
      rain.add(recs[c].rain_area_1mm);
      if (recs[c].produced) {
        tts.add(recs[c].tts);
        day_tts.push_back(recs[c].tts);
      }
    }
    std::printf("  %3ld | %7zu%% | %6.1f s | %6.1f s | %7.0f km2\n", d + 1,
                tts.count() * 100 / 2880, tts.mean(),
                percentile(day_tts, 97.0), rain.mean());
  }

  std::printf("\ncampaign summary:\n");
  std::printf("  forecasts produced : %zu of %zu cycles (%.1f%%)\n",
              sum.forecasts_produced, sum.cycles_total,
              100.0 * double(sum.forecasts_produced) /
                  double(sum.cycles_total));
  std::printf("  time-to-solution   : mean %.1f s, p97 %.1f s, max %.1f s\n",
              sum.mean_tts, sum.p97_tts, sum.max_tts);
  std::printf("  under 3 minutes    : %.1f%%  (paper: ~97%%)\n",
              100.0 * sum.frac_under_3min);
  std::printf("  components         : file %.1f s | JIT-DT %.1f s | LETKF "
              "%.1f s | forecast %.1f s\n",
              sum.mean_file, sum.mean_jitdt, sum.mean_letkf, sum.mean_fcst);

  Histogram hist(0.0, 6.0, 24);
  for (const auto& r : recs)
    if (r.produced) hist.add(r.tts / 60.0);
  std::printf("\ntime-to-solution histogram (minutes):\n%s",
              hist.render(50).c_str());
  return 0;
}
