// Heavy-rain case study: the July 29, 2021 workflow end to end.
//
// Reproduces the paper's flagship use: assimilate radar volumes every 30 s,
// then at a fractional initial time (hh:mm:30 — something no hourly system
// can do) launch the product forecast from the analysis ensemble mean plus
// randomly chosen members, verify against the evolving truth, and write
// the Fig 1 products.  Accepts an optional INI config path to change the
// experiment without recompiling (see the inline defaults for keys).
#include <cstdio>
#include <filesystem>

#include "util/ascii_render.hpp"
#include "util/config.hpp"
#include "verify/persistence.hpp"
#include "verify/scores.hpp"
#include "workflow/cycle.hpp"
#include "workflow/products.hpp"

using namespace bda;

int main(int argc, char** argv) {
  Config ini;
  if (argc > 1) ini = Config::load(argv[1]);

  const long nx = ini.get_or("grid.nx", 20L);
  const long nz = ini.get_or("grid.nz", 10L);
  const long members = ini.get_or("ensemble.members", 8L);
  const long cycles = ini.get_or("da.cycles", 4L);
  const double lead_s = ini.get_or("forecast.lead_s", 600.0);
  const long fcst_members = ini.get_or("forecast.members", 3L);

  const scale::Grid grid = scale::Grid::stretched(
      nx, nx, nz, 500.0f, 10000.0f, 250.0f, 1.12f);

  workflow::BdaSystemConfig cfg;
  cfg.n_members = int(members);
  cfg.model.dt = real(ini.get_or("model.dt", 0.6));
  cfg.model.enable_rad = false;
  cfg.radar.radar_x = real(grid.extent_x()) / 2;
  cfg.radar.radar_y = real(grid.extent_y()) / 2;
  cfg.scan.range_max = 9000.0f;
  cfg.scan.n_azimuth = 48;
  cfg.scan.n_elevation = 16;
  cfg.letkf.rtpp_alpha = real(ini.get_or("letkf.rtpp_alpha", 0.7));
  cfg.letkf.hloc = real(ini.get_or("letkf.hloc", 2000.0));
  cfg.letkf.vloc = real(ini.get_or("letkf.vloc", 2000.0));

  workflow::BdaSystem sys(grid, scale::convective_sounding(), cfg);
  sys.perturb_ensemble();
  sys.trigger_storm(real(grid.extent_x()) * 0.6f,
                    real(grid.extent_y()) * 0.6f, 4.0f, true);
  std::printf("== spin-up ==\n");
  sys.spinup(360.0);

  std::printf("== %ld assimilation cycles (30-s refresh) ==\n", cycles);
  for (long c = 0; c < cycles; ++c) {
    const auto res = sys.cycle();
    std::printf("  t=%5.0fs  obs=%4zu  qc=%3zu  updated=%5zu\n", res.t_obs,
                res.n_obs, res.analysis.n_obs_qc,
                res.analysis.n_grid_updated);
  }

  // --- part <2>: ensemble product forecast from mean + random members.
  std::printf("\n== product forecast: mean + %ld random members, %0.f-min "
              "lead ==\n",
              fcst_members - 1, lead_s / 60.0);
  const auto picks = sys.rng().sample_without_replacement(
      std::size_t(members), std::size_t(fcst_members - 1));

  // Truth at the valid time for verification.
  scale::Model truth(grid, scale::convective_sounding(), cfg.model);
  truth.state() = sys.nature().state();
  verify::PersistenceForecast persist(sys.reflectivity_map(truth.state()));
  truth.advance(real(lead_s));
  const RField2D obs = sys.reflectivity_map(truth.state());

  auto forecast_of = [&](const scale::State& init, const char* label) {
    const auto maps = workflow::run_forecast_maps(
        grid, scale::convective_sounding(), cfg.model, init, lead_s, lead_s);
    const auto c = verify::contingency(maps.back(), obs, 30.0f);
    std::printf("  %-12s threat=%.3f pod=%.3f far=%.3f\n", label,
                c.threat_score(), c.pod(), c.far());
    return maps.back();
  };

  const RField2D mean_fcst = forecast_of(sys.ensemble().mean(), "mean");
  for (std::size_t p = 0; p < picks.size(); ++p)
    forecast_of(sys.ensemble().member(int(picks[p])),
                ("member " + std::to_string(picks[p])).c_str());
  {
    const auto c = verify::contingency(persist.at(lead_s), obs, 30.0f);
    std::printf("  %-12s threat=%.3f  (the baseline to beat)\n",
                "persistence", c.threat_score());
  }

  std::printf("\nforecast (left) vs truth (right), 30 dBZ = 'o':\n");
  const std::string f = render_dbz(mean_fcst), o = render_dbz(obs);
  // Print side by side.
  std::size_t fp = 0, op = 0;
  while (fp < f.size() && op < o.size()) {
    const auto fe = f.find('\n', fp), oe = o.find('\n', op);
    std::printf("%s   |   %s\n", f.substr(fp, fe - fp).c_str(),
                o.substr(op, oe - op).c_str());
    fp = fe + 1;
    op = oe + 1;
  }

  // --- Fig 1 products.
  const std::string out =
      (std::filesystem::temp_directory_path() / "bda_case_products").string();
  const auto paths =
      workflow::write_products(out, grid, sys.nature().state(), sys.time());
  std::printf("\nproducts written (file mtime = T_fcst):\n  %s\n  %s\n",
              paths.map_view.c_str(), paths.volume_3d.c_str());
  return 0;
}
