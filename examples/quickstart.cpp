// Quickstart: one Big Data Assimilation cycle in ~40 lines of API.
//
//   nature run --(phased-array radar)--> observations --(LETKF)--> analysis
//
// Builds a small twin experiment, runs three 30-second cycles, and prints
// the analysis statistics plus a reflectivity map of the truth the system
// is tracking.  Start here; the other examples scale the same calls up.
#include <cstdio>

#include "util/ascii_render.hpp"
#include "workflow/cycle.hpp"

using namespace bda;

int main() {
  // A 10 km x 10 km, 10-level domain at the paper's 500-m spacing.
  const scale::Grid grid =
      scale::Grid::stretched(20, 20, 10, 500.0f, 10000.0f, 250.0f, 1.12f);

  workflow::BdaSystemConfig cfg;
  cfg.n_members = 8;          // the paper runs 1000
  cfg.cycle_s = 30.0;         // the famous 30-second refresh
  cfg.model.dt = 0.6f;
  cfg.model.enable_rad = false;
  cfg.radar.radar_x = 5000.0f;  // radar at the domain center
  cfg.radar.radar_y = 5000.0f;
  cfg.scan.range_max = 9000.0f;
  cfg.scan.n_azimuth = 48;
  cfg.scan.n_elevation = 16;

  workflow::BdaSystem sys(grid, scale::convective_sounding(), cfg);

  // Give the ensemble initial spread, start a storm in the "true"
  // atmosphere (and fuzzier versions of it in every member), and let
  // convection develop.
  sys.perturb_ensemble();
  sys.trigger_storm(6000.0f, 6000.0f, 4.0f, /*in_ensemble=*/true);
  std::printf("spinning up convection (6 model minutes)...\n");
  sys.spinup(360.0);

  for (int c = 0; c < 3; ++c) {
    const auto res = sys.cycle();  // observe -> assimilate -> advance
    std::printf(
        "cycle %d @ t=%5.0fs: %4zu obs, %zu grid points updated, "
        "mean |innovation| %.2f, nature max %.0f dBZ\n",
        c + 1, res.t_obs, res.n_obs, res.analysis.n_grid_updated,
        res.analysis.mean_abs_innovation, res.nature_max_dbz);
  }

  std::printf("\nthe storm the system is tracking (2-km reflectivity, "
              "nature run):\n%s",
              render_dbz(sys.reflectivity_map(sys.nature().state())).c_str());
  std::printf("analysis ensemble mean, same view:\n%s",
              render_dbz(sys.reflectivity_map(sys.ensemble().mean())).c_str());
  return 0;
}
