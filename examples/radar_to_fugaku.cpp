// The data path: radar server -> JIT-DT -> assimilation-ready observations.
//
// Exercises the front half of Fig 2 with real files and threads:
//   1. a "radar server" writes completed volume-scan files (.pwr) into a
//      spool directory, one per 30-s scan, exactly as MP-PAWR does;
//   2. a DirectoryWatcher (JIT-DT's front end) notices each file the moment
//      its size is stable;
//   3. JIT-DT moves the bytes through the modeled SINET channel — with a
//      stall injected on scan 2 to show the watchdog/auto-restart fail-safe;
//   4. the receiver decodes, quality-controls and regrids the scan to
//      500-m analysis observations (Table 2).
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "jitdt/transfer.hpp"
#include "jitdt/watcher.hpp"
#include "pawr/datafile.hpp"
#include "pawr/forward.hpp"
#include "pawr/obsgen.hpp"
#include "scale/model.hpp"

using namespace bda;
namespace fs = std::filesystem;

int main() {
  const scale::Grid grid =
      scale::Grid::stretched(20, 20, 10, 500.0f, 10000.0f, 250.0f, 1.12f);

  // Atmosphere with a developing storm for the radar to see.
  scale::ModelConfig mcfg;
  mcfg.dt = 0.6f;
  mcfg.enable_rad = false;
  scale::Model atmosphere(grid, scale::convective_sounding(), mcfg);
  scale::add_thermal_bubble(atmosphere.state(), grid, 6000, 6000, 1200, 2500,
                            1000, 4.0f);
  std::printf("spinning up the atmosphere...\n");
  atmosphere.advance(420.0f);

  pawr::ScanConfig scan_cfg;
  scan_cfg.range_max = 9000.0f;
  scan_cfg.gate_length = 500.0f;
  scan_cfg.n_azimuth = 48;
  scan_cfg.n_elevation = 16;
  pawr::RadarSimConfig radar_cfg;
  radar_cfg.radar_x = 5000.0f;
  radar_cfg.radar_y = 5000.0f;
  pawr::RadarSimulator radar(grid, scan_cfg, radar_cfg);

  const std::string spool =
      (fs::temp_directory_path() / "bda_radar_spool").string();
  fs::remove_all(spool);
  fs::create_directories(spool);

  // --- receiver side: watcher + JIT-DT + regridding ---
  std::atomic<int> delivered{0};
  Rng fault_rng(99);
  jitdt::DirectoryWatcher watcher(spool, ".pwr", 0.02);
  watcher.start([&](const std::string& path) {
    const int n = delivered.load() + 1;
    // Scan 2 gets a lossy channel to demonstrate the fail-safe.
    jitdt::JitDtConfig jcfg;
    jitdt::FaultModel faults;
    Rng rng_local = fault_rng.split();
    if (n == 2) {
      faults.stall_probability = 0.35;
      faults.rng = &rng_local;
      jcfg.chunk_bytes = 16u << 10;  // many chunks: stalls will happen
      jcfg.max_restarts = 50;
    }
    jitdt::JitDtLink link(jcfg, faults);

    // Read the raw file bytes (the radar-server side of the wire).
    std::vector<std::uint8_t> raw;
    {
      std::ifstream f(path, std::ios::binary);
      raw.assign(std::istreambuf_iterator<char>(f),
                 std::istreambuf_iterator<char>());
    }
    std::vector<std::uint8_t> wire;
    const auto res = link.transfer(raw, wire);
    const auto scan = pawr::decode_scan(wire);
    const auto obs = pawr::regrid_scan(scan, grid, radar_cfg.radar_x,
                                       radar_cfg.radar_y, radar_cfg.radar_z);
    std::printf(
        "  delivered %s: %zu bytes in %.2f s (virtual), %d restart(s), "
        "crc %s -> %zu assimilation-ready obs (T_obs = %.0f s)\n",
        fs::path(path).filename().c_str(), res.bytes, res.elapsed_s,
        res.restarts, res.crc_ok ? "ok" : "FAIL", obs.size(), scan.t_obs);
    delivered.fetch_add(1);
  });

  // --- radar-server side: one scan file every (compressed) 30 s ---
  std::printf("radar server writing scans into %s\n", spool.c_str());
  Rng noise(7);
  for (int s = 0; s < 3; ++s) {
    atmosphere.advance(30.0f);
    const auto scan = radar.observe(atmosphere.state(), atmosphere.time(),
                                    noise);
    pawr::write_scan(spool + "/scan_" + std::to_string(s) + ".pwr", scan);
    std::printf("scan %d complete at t = %.0f s (%zu samples, %.1f MB)\n", s,
                atmosphere.time(), scan.n_samples(),
                double(scan.payload_bytes()) / 1e6);
  }

  // Wait for the watcher to drain the spool.
  for (int n = 0; n < 600 && delivered.load() < 3; ++n)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  watcher.stop();
  fs::remove_all(spool);

  std::printf("\n%d/3 scans delivered through the fail-safe pipeline.\n",
              delivered.load());
  std::printf("(operational scale: 100 MB per scan over SINET in ~3 s, "
              "every 30 s, for a month)\n");
  return delivered.load() == 3 ? 0 : 1;
}
