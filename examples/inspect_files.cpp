// File inspector: look inside the reproduction's data artifacts.
//
//   inspect_files <path.bdf|path.pwr> [--map]
//
// For BDF containers (checkpoints, forecast products, transport payloads):
// lists every field with shape and value statistics; --map renders 2-D
// fields (or the column max of 3-D ones) as an ASCII dBZ map.
// For PWR1 volume scans: prints the scan geometry, T_obs, coverage by flag
// class and reflectivity statistics.  Demonstrates the read-side API of
// util/binary_io and pawr/datafile.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "pawr/datafile.hpp"
#include "pawr/obsgen.hpp"
#include "util/ascii_render.hpp"
#include "util/binary_io.hpp"
#include "util/stats.hpp"

using namespace bda;

namespace {

int inspect_bdf(const std::string& path, bool map) {
  const auto recs = read_bdf(path);
  std::printf("%s: BDF container, %zu field(s)\n", path.c_str(),
              recs.size());
  for (const auto& r : recs) {
    RunningStats st;
    for (idx i = 0; i < r.data.nx(); ++i)
      for (idx j = 0; j < r.data.ny(); ++j)
        for (idx k = 0; k < r.data.nz(); ++k) st.add(r.data(i, j, k));
    std::printf(
        "  %-12s %4lld x %4lld x %3lld   min %11.4g  mean %11.4g  max "
        "%11.4g\n",
        r.name.c_str(), (long long)r.data.nx(), (long long)r.data.ny(),
        (long long)r.data.nz(), st.min(), st.mean(), st.max());
    if (map) {
      RField2D view(r.data.nx(), r.data.ny(), 0);
      for (idx i = 0; i < r.data.nx(); ++i)
        for (idx j = 0; j < r.data.ny(); ++j) {
          float m = r.data(i, j, 0);
          for (idx k = 1; k < r.data.nz(); ++k)
            m = std::max(m, r.data(i, j, k));
          view(i, j) = m;
        }
      std::printf("%s", render_dbz(view).c_str());
    }
  }
  return 0;
}

int inspect_pwr(const std::string& path) {
  const auto scan = pawr::read_scan(path);
  std::printf("%s: PWR1 volume scan\n", path.c_str());
  std::printf("  T_obs = %.3f s, period = %.0f s\n", scan.t_obs,
              scan.cfg.period_s);
  std::printf("  geometry: %d elevations x %d azimuths x %d gates "
              "(%.0f m gates to %.1f km)\n",
              scan.cfg.n_elevation, scan.cfg.n_azimuth, scan.cfg.n_gate(),
              double(scan.cfg.gate_length), double(scan.cfg.range_max) / 1000.0);
  std::printf("  payload: %.2f MB\n",
              double(scan.payload_bytes()) / 1.0e6);
  const auto cov = pawr::scan_coverage(scan);
  std::printf("  coverage: %zu valid / %zu out-of-domain / %zu blocked / "
              "%zu clutter\n",
              cov.valid, cov.out_of_domain, cov.blocked, cov.clutter);
  RunningStats refl, dopp;
  for (std::size_t n = 0; n < scan.n_samples(); ++n)
    if (scan.flag[n] == pawr::kValid) {
      refl.add(scan.reflectivity[n]);
      dopp.add(scan.doppler[n]);
    }
  std::printf("  reflectivity [dBZ]: min %.1f  mean %.1f  max %.1f\n",
              refl.min(), refl.mean(), refl.max());
  std::printf("  doppler [m/s]:      min %.1f  mean %.1f  max %.1f\n",
              dopp.min(), dopp.mean(), dopp.max());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: inspect_files <path.bdf|path.pwr> [--map]\n");
    // Self-demo so the example runs standalone: build a tiny product and
    // inspect it.
    Field3D<float> demo(12, 12, 4, 0);
    for (idx i = 4; i < 8; ++i)
      for (idx j = 4; j < 8; ++j)
        for (idx k = 0; k < 4; ++k) demo(i, j, k) = 45.0f;
    const std::string tmp = "/tmp/bda_inspect_demo.bdf";
    write_bdf(tmp, {{"demo_dbz", demo}});
    std::printf("\n(no file given — self-demo on %s)\n\n", tmp.c_str());
    return inspect_bdf(tmp, true);
  }
  const std::string path = argv[1];
  const bool map = argc > 2 && std::strcmp(argv[2], "--map") == 0;
  try {
    if (path.size() > 4 && path.substr(path.size() - 4) == ".pwr")
      return inspect_pwr(path);
    return inspect_bdf(path, map);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
