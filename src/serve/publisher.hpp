// Cycle-product publisher: the bridge from the 30-s cycle to the cache.
//
// Publication must never sit on the cycle's critical path: the paper's
// fail-safe contract for every off-path component (JIT-DT, Sec. 5) is
// "monitor, and restart automatically when necessary".  The publisher
// reproduces that idiom for the serving tier:
//
//   submit()   — called by the cycle thread (PipelinedDriver), O(1) + one
//                state snapshot; never blocks on the publish worker.  A
//                newer cycle supersedes a still-queued older one (a fresher
//                analysis makes the stale product worthless — the same
//                policy as the rotating-group forecast admission).
//   worker     — background thread: builds the ProductFrame, cuts and
//                delta-encodes the tiles, publishes into the ProductCache
//                (atomic epoch swap).
//   watchdog   — background thread: when the worker makes no progress for
//                `stall_timeout_s` (a wedged frame builder, a hung publish
//                hook), it *abandons* that worker — bumps the generation,
//                spawns a replacement, and lets the wedged thread discover
//                on completion that its result is stale and must be
//                discarded.  The cache's monotonic-cycle rejection backs
//                this up: even a discarded-generation race cannot roll the
//                cache backwards.  Restarts are budgeted (max_restarts),
//                counted, and logged, exactly like JIT-DT's.
//
// Delta-encoding state is per-worker-generation: a replacement worker has
// no base frame, so its first publication is all keyframes — the fallback
// that keeps the client-visible chain decodable across restarts.
//
// Determinism: the publisher only ever *reads* snapshots handed to
// submit(); it draws no randomness and never touches model or analysis
// state, so enabling it is bitwise-transparent to the cycle
// (tests/workflow/test_pipeline_serve.cpp pins this).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "serve/product_cache.hpp"
#include "serve/tile.hpp"
#include "util/annotations.hpp"
#include "util/metrics.hpp"

namespace bda::serve {

struct PublisherConfig {
  TileGridConfig tiles;
  /// Force a full-keyframe publication every N successful publishes
  /// (clamped to the cache's retention window so a fresh client can always
  /// decode the latest cycle from cached tiles alone; 0 = use the cache's
  /// retention_cycles).
  std::size_t keyframe_every = 0;
  /// Watchdog threshold: a publication making no progress for this long is
  /// abandoned and the worker restarted (cf. jitdt::JitDtConfig).
  double stall_timeout_s = 5.0;
  /// Watchdog poll cadence.
  double watchdog_poll_s = 0.01;
  /// Restart budget; once exhausted a wedged worker is left alone and
  /// publication stops (submissions still supersede harmlessly).
  int max_restarts = 3;
  /// Fault injection: runs on the worker thread after encoding, before the
  /// cache commit (tests wedge publications here).
  std::function<void(std::uint64_t cycle)> publish_hook;
};

class Publisher {
 public:
  /// Produces the cycle's dense products on the worker thread.  The
  /// callable must be self-contained (own its state snapshot).
  using FrameSource = std::function<ProductFrame()>;

  /// Borrows `cache` (must outlive the publisher).  `metrics` may be null;
  /// see docs/SERVING.md for the metric schema.
  Publisher(ProductCache* cache, PublisherConfig cfg,
            util::Metrics* metrics = nullptr);
  ~Publisher();
  Publisher(const Publisher&) = delete;
  Publisher& operator=(const Publisher&) = delete;

  /// Stage `frame` for publication as `cycle`.  Never blocks on a busy or
  /// wedged worker: a queued-but-unstarted older job is superseded.
  void submit(std::uint64_t cycle, FrameSource frame);

  /// Wait until no submission is queued and no live-generation publication
  /// is in flight.  Returns false on timeout (e.g. a wedged worker whose
  /// restart budget is exhausted).
  [[nodiscard]] bool drain(double timeout_s = 30.0);

  std::uint64_t submitted() const;   ///< submit() calls accepted
  std::uint64_t superseded() const;  ///< queued jobs replaced by newer ones
  std::uint64_t published() const;   ///< cycles committed to the cache
  int restarts() const;              ///< watchdog-triggered worker restarts
  std::uint64_t stale_discards() const;  ///< abandoned-generation results

 private:
  struct Job {
    std::uint64_t cycle = 0;
    FrameSource frame;
  };
  /// Delta base: the raw tiles of the last cycle this worker generation
  /// committed (per product kind, in cut_tiles order).
  struct DeltaBase {
    std::uint64_t cycle = 0;
    std::vector<std::vector<float>> map_view;
    std::vector<std::vector<float>> volume;
  };

  void worker(std::uint64_t gen);
  void watchdog();
  std::shared_ptr<const CycleProducts> encode_frame(
      std::uint64_t cycle, const ProductFrame& frame,
      std::optional<DeltaBase>& base, std::size_t& since_keyframe) const;

  ProductCache* cache_;
  PublisherConfig cfg_;
  util::Metrics* metrics_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_ BDA_CV_OF(mu_);  ///< job / shutdown /
                                                    ///< generation change
  std::condition_variable idle_cv_ BDA_CV_OF(mu_);  ///< publication done
  std::unique_ptr<Job> pending_ BDA_GUARDED_BY(mu_);
  bool busy_ BDA_GUARDED_BY(mu_) = false;  ///< live generation mid-publish
  std::chrono::steady_clock::time_point busy_since_ BDA_GUARDED_BY(mu_);
  std::uint64_t generation_ BDA_GUARDED_BY(mu_) = 0;
  bool shutdown_ BDA_GUARDED_BY(mu_) = false;
  std::uint64_t submitted_ BDA_GUARDED_BY(mu_) = 0;
  std::uint64_t superseded_ BDA_GUARDED_BY(mu_) = 0;
  std::uint64_t published_ BDA_GUARDED_BY(mu_) = 0;
  int restarts_ BDA_GUARDED_BY(mu_) = 0;
  std::uint64_t stale_discards_ BDA_GUARDED_BY(mu_) = 0;
  /// Every worker ever spawned (the live one plus abandoned ones, which
  /// exit on their own once their wedge clears); joined at destruction.
  std::vector<std::thread> workers_ BDA_GUARDED_BY(mu_);

  std::thread watchdog_thread_;  ///< started in ctor, joined in dtor
};

}  // namespace bda::serve
