// In-memory, cycle-keyed, read-mostly nowcast product cache.
//
// The serving tier's hot path is a tile lookup under a request storm that
// peaks right when a new cycle publishes (every client wants the fresh
// frame at once).  The cache therefore never locks readers against the
// publisher: all published state lives in an immutable `Epoch` snapshot
// held by shared_ptr, readers copy that pointer under a briefly held mutex
// and then read entirely lock-free, and publication builds a *new* epoch
// aside (copying the per-cycle pointers, not the tiles) and swaps it in —
// the atomic-epoch-swap idiom.  Old cycles are retired by the swap itself:
// an epoch holds at most `retention_cycles` consecutive newest cycles, and
// an in-flight reader of a retired cycle keeps it alive through its own
// snapshot until it drops the pointer.
//
// Publication is strictly monotonic in cycle number: a publish whose cycle
// is not newer than the current latest is rejected (counted, logged), which
// is what makes the watchdog-restart path safe — a wedged publisher that
// finally finishes after its replacement has moved on cannot roll the
// cache backwards (publisher.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "serve/tile.hpp"
#include "util/annotations.hpp"

namespace bda::serve {

/// Everything published for one cycle.  Immutable after publish.
struct CycleProducts {
  std::uint64_t cycle = 0;
  std::map<TileKey, EncodedTile> tiles;  ///< ordered: deterministic walks
  std::size_t keyframe_tiles = 0;
  std::size_t delta_tiles = 0;
  std::size_t keyframe_bytes = 0;  ///< encoded bytes shipped as keyframes
  std::size_t delta_bytes = 0;     ///< encoded bytes shipped as deltas

  const EncodedTile* find(const TileKey& key) const {
    const auto it = tiles.find(key);
    return it == tiles.end() ? nullptr : &it->second;
  }
};

class ProductCache {
 public:
  /// Immutable view of the published state at one instant.
  struct Epoch {
    std::uint64_t seq = 0;  ///< publication sequence number (0 = empty)
    /// Newest `retention` cycles, keyed by cycle number (ordered so the
    /// retention window is the map's tail).
    std::map<std::uint64_t, std::shared_ptr<const CycleProducts>> cycles;

    bool empty() const { return cycles.empty(); }
    std::uint64_t latest_cycle() const {
      return cycles.empty() ? 0 : cycles.rbegin()->first;
    }
    const CycleProducts* latest() const {
      return cycles.empty() ? nullptr : cycles.rbegin()->second.get();
    }
    const CycleProducts* find_cycle(std::uint64_t cycle) const {
      const auto it = cycles.find(cycle);
      return it == cycles.end() ? nullptr : it->second.get();
    }
  };

  explicit ProductCache(std::size_t retention_cycles = 4)
      : retention_(retention_cycles == 0 ? 1 : retention_cycles),
        epoch_(std::make_shared<const Epoch>()) {}

  /// Publish one cycle's products; atomically swaps in a new epoch whose
  /// window is the newest `retention_cycles` cycles.  Returns false (and
  /// changes nothing) when `p->cycle` is not strictly newer than the
  /// current latest — the stale-publisher rejection contract.
  [[nodiscard]] bool publish(std::shared_ptr<const CycleProducts> p);

  /// Current epoch (never null; an empty cache returns an empty epoch).
  /// The snapshot stays valid — and its cycles stay alive — for as long as
  /// the caller holds it, regardless of concurrent publication.
  std::shared_ptr<const Epoch> snapshot() const;

  std::size_t retention_cycles() const { return retention_; }

  /// Publishes rejected for being older than the cache head.
  std::uint64_t rejected_stale() const;

 private:
  const std::size_t retention_;

  mutable std::mutex mu_;
  std::shared_ptr<const Epoch> epoch_ BDA_GUARDED_BY(mu_);
  std::uint64_t rejected_stale_ BDA_GUARDED_BY(mu_) = 0;
};

}  // namespace bda::serve
