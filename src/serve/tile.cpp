#include "serve/tile.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "util/binary_io.hpp"
#include "util/codec.hpp"

namespace bda::serve {

const char* product_kind_name(ProductKind k) {
  switch (k) {
    case ProductKind::kMapView: return "map_view";
    case ProductKind::kVolume3D: return "volume3d";
  }
  return "unknown";
}

namespace {

/// Raw little-layout sample bytes of a tile (memcpy through bda::io — the
/// repo's single sanctioned punning route).
std::vector<std::uint8_t> sample_bytes(const std::vector<float>& samples) {
  std::vector<std::uint8_t> buf;
  buf.reserve(samples.size() * sizeof(float));
  io::append_raw(buf, samples.data(), samples.size());
  return buf;
}

std::vector<float> bytes_to_samples(const std::vector<std::uint8_t>& bytes,
                                    std::size_t n) {
  if (bytes.size() != n * sizeof(float))
    throw std::runtime_error("serve::decode_tile: payload size mismatch");
  std::vector<float> out(n);
  std::size_t pos = 0;
  io::take_raw(bytes, pos, out.data(), n, "serve::decode_tile");
  return out;
}

}  // namespace

std::vector<std::vector<float>> cut_tiles(const Field3D<float>& field,
                                          const TileGridConfig& cfg) {
  const idx tiles_x = tile_count(field.nx(), cfg.tile_nx);
  const idx tiles_y = tile_count(field.ny(), cfg.tile_ny);
  std::vector<std::vector<float>> out;
  out.reserve(static_cast<std::size_t>(tiles_x * tiles_y));
  for (idx tx = 0; tx < tiles_x; ++tx)
    for (idx ty = 0; ty < tiles_y; ++ty) {
      const idx i0 = tx * cfg.tile_nx;
      const idx j0 = ty * cfg.tile_ny;
      const idx ni = std::min(cfg.tile_nx, field.nx() - i0);
      const idx nj = std::min(cfg.tile_ny, field.ny() - j0);
      std::vector<float> samples;
      samples.reserve(
          static_cast<std::size_t>(ni * nj * field.nz()));
      for (idx i = i0; i < i0 + ni; ++i)
        for (idx j = j0; j < j0 + nj; ++j) {
          const auto col = field.column(i, j);
          samples.insert(samples.end(), col.begin(), col.end());
        }
      out.push_back(std::move(samples));
    }
  return out;
}

EncodedTile encode_tile(const TileKey& key, std::uint64_t cycle, idx nx,
                        idx ny, idx nz, const std::vector<float>& samples,
                        const std::vector<float>* base,
                        std::int64_t base_cycle, bool force_keyframe) {
  if (samples.size() != static_cast<std::size_t>(nx) *
                            static_cast<std::size_t>(ny) *
                            static_cast<std::size_t>(nz))
    throw std::runtime_error("serve::encode_tile: sample/dims mismatch");

  EncodedTile t;
  t.key = key;
  t.cycle = cycle;
  t.nx = nx;
  t.ny = ny;
  t.nz = nz;

  const std::vector<std::uint8_t> raw = sample_bytes(samples);
  t.payload_crc = crc32(raw.data(), raw.size());

  std::vector<std::uint8_t> keyframe = encode_rle(raw);
  if (!force_keyframe && base != nullptr && base->size() == samples.size()) {
    std::vector<std::uint8_t> xored = raw;
    const std::vector<std::uint8_t> base_raw = sample_bytes(*base);
    for (std::size_t b = 0; b < xored.size(); ++b) xored[b] ^= base_raw[b];
    std::vector<std::uint8_t> delta = encode_rle(xored);
    if (delta.size() < keyframe.size()) {
      t.base_cycle = base_cycle;
      t.bytes = std::move(delta);
      return t;
    }
  }
  t.base_cycle = kNoBaseCycle;
  t.bytes = std::move(keyframe);
  return t;
}

std::vector<float> decode_tile(const EncodedTile& tile,
                               const std::vector<float>* base,
                               std::int64_t base_cycle) {
  std::vector<std::uint8_t> raw = decode_rle(tile.bytes);
  if (!tile.is_keyframe()) {
    if (base == nullptr)
      throw std::runtime_error(
          "serve::decode_tile: delta tile decoded without a base");
    if (base_cycle != tile.base_cycle)
      throw std::runtime_error(
          "serve::decode_tile: base cycle mismatch (tile is based on cycle " +
          std::to_string(tile.base_cycle) + ", got " +
          std::to_string(base_cycle) + ")");
    if (base->size() * sizeof(float) != raw.size())
      throw std::runtime_error(
          "serve::decode_tile: base size mismatch for delta tile");
    const std::vector<std::uint8_t> base_raw = sample_bytes(*base);
    for (std::size_t b = 0; b < raw.size(); ++b) raw[b] ^= base_raw[b];
  }
  if (crc32(raw.data(), raw.size()) != tile.payload_crc)
    throw std::runtime_error(
        "serve::decode_tile: payload CRC mismatch (corrupt tile or wrong "
        "delta base)");
  return bytes_to_samples(raw, tile.sample_count());
}

}  // namespace bda::serve
