#include "serve/publisher.hpp"

#include <exception>
#include <utility>

#include "util/logging.hpp"

namespace bda::serve {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}
}  // namespace

Publisher::Publisher(ProductCache* cache, PublisherConfig cfg,
                     util::Metrics* metrics)
    : cache_(cache), cfg_(std::move(cfg)), metrics_(metrics) {
  if (cfg_.keyframe_every == 0 ||
      cfg_.keyframe_every > cache_->retention_cycles())
    cfg_.keyframe_every = cache_->retention_cycles();
  {
    std::lock_guard<std::mutex> lk(mu_);
    workers_.emplace_back([this] { worker(0); });
  }
  watchdog_thread_ = std::thread([this] { watchdog(); });
}

Publisher::~Publisher() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  watchdog_thread_.join();
  {
    // The watchdog is gone, so no new workers can appear; take ownership
    // of the pool and join outside the lock (a wedged worker may still be
    // finishing its abandoned publication).
    std::lock_guard<std::mutex> lk(mu_);
    workers = std::move(workers_);
  }
  for (auto& t : workers) t.join();
}

void Publisher::submit(std::uint64_t cycle, FrameSource frame) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_) return;
    if (pending_) {
      ++superseded_;
      if (metrics_) metrics_->count("serve.publish.superseded");
    }
    pending_ = std::make_unique<Job>();
    pending_->cycle = cycle;
    pending_->frame = std::move(frame);
    ++submitted_;
    if (metrics_) metrics_->count("serve.publish.submitted");
  }
  work_cv_.notify_all();
}

bool Publisher::drain(double timeout_s) {
  std::unique_lock<std::mutex> lk(mu_);
  return idle_cv_.wait_for(lk, std::chrono::duration<double>(timeout_s),
                           [&] { return pending_ == nullptr && !busy_; });
}

std::shared_ptr<const CycleProducts> Publisher::encode_frame(
    std::uint64_t cycle, const ProductFrame& frame,
    std::optional<DeltaBase>& base, std::size_t& since_keyframe) const {
  auto products = std::make_shared<CycleProducts>();
  products->cycle = cycle;

  const bool force_key =
      !base.has_value() || since_keyframe + 1 >= cfg_.keyframe_every;

  DeltaBase next;
  next.cycle = cycle;
  next.map_view = cut_tiles(frame.map_view, cfg_.tiles);
  next.volume = cut_tiles(frame.volume, cfg_.tiles);

  const struct {
    ProductKind kind;
    const Field3D<float>* field;
    const std::vector<std::vector<float>>* raw;
    const std::vector<std::vector<float>>* base_raw;
  } planes[2] = {
      {ProductKind::kMapView, &frame.map_view, &next.map_view,
       base ? &base->map_view : nullptr},
      {ProductKind::kVolume3D, &frame.volume, &next.volume,
       base ? &base->volume : nullptr},
  };

  for (const auto& plane : planes) {
    const Field3D<float>& f = *plane.field;
    const idx tiles_x = tile_count(f.nx(), cfg_.tiles.tile_nx);
    const idx tiles_y = tile_count(f.ny(), cfg_.tiles.tile_ny);
    std::size_t flat = 0;
    for (idx tx = 0; tx < tiles_x; ++tx)
      for (idx ty = 0; ty < tiles_y; ++ty, ++flat) {
        const idx ni = std::min(cfg_.tiles.tile_nx, f.nx() - tx *
                                cfg_.tiles.tile_nx);
        const idx nj = std::min(cfg_.tiles.tile_ny, f.ny() - ty *
                                cfg_.tiles.tile_ny);
        const std::vector<float>* tile_base = nullptr;
        if (!force_key && plane.base_raw != nullptr &&
            flat < plane.base_raw->size())
          tile_base = &(*plane.base_raw)[flat];
        const TileKey key{plane.kind, tx, ty};
        EncodedTile t = encode_tile(key, cycle, ni, nj, f.nz(),
                                    (*plane.raw)[flat], tile_base,
                                    base ? std::int64_t(base->cycle)
                                         : kNoBaseCycle,
                                    force_key);
        if (t.is_keyframe()) {
          ++products->keyframe_tiles;
          products->keyframe_bytes += t.bytes.size();
        } else {
          ++products->delta_tiles;
          products->delta_bytes += t.bytes.size();
        }
        products->tiles.emplace(key, std::move(t));
      }
  }

  since_keyframe = force_key ? 0 : since_keyframe + 1;
  base = std::move(next);
  return products;
}

void Publisher::worker(std::uint64_t gen) {
  // Delta-encoding state of THIS worker generation only: a replacement
  // worker starts fresh, so its first publication is all keyframes.
  std::optional<DeltaBase> base;
  std::size_t since_keyframe = 0;

  for (;;) {
    std::unique_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] {
        return shutdown_ || generation_ != gen || pending_ != nullptr;
      });
      if (generation_ != gen) return;  // abandoned while idle
      if (pending_ == nullptr) return;  // shutdown, nothing queued
      job = std::move(pending_);
      busy_ = true;
      busy_since_ = Clock::now();
    }

    std::shared_ptr<const CycleProducts> products;
    util::Metrics::ScopedTimer timer(metrics_, "serve.publish");
    try {
      const ProductFrame frame = job->frame();
      products = encode_frame(job->cycle, frame, base, since_keyframe);
      if (cfg_.publish_hook) cfg_.publish_hook(job->cycle);
    } catch (const std::exception& e) {
      log_error("serve: publish of cycle ", job->cycle, " failed: ",
                e.what());
      if (metrics_) metrics_->count("serve.publish.error");
      base.reset();  // the delta chain is broken; restart from a keyframe
      products = nullptr;
    }
    timer.stop();

    {
      std::lock_guard<std::mutex> lk(mu_);
      if (generation_ != gen) {
        // The watchdog abandoned this publication mid-flight; a newer
        // generation owns the cache now.  Discard — the monotonic-cycle
        // check in ProductCache::publish would reject a late commit
        // anyway, but we never even offer it.
        ++stale_discards_;
        if (metrics_) metrics_->count("serve.publish.stale_discard");
        return;
      }
      if (products != nullptr) {
        if (cache_->publish(products)) {
          ++published_;
          if (metrics_) {
            metrics_->count("serve.publish.count");
            metrics_->count("serve.tiles.keyframe",
                            products->keyframe_tiles);
            metrics_->count("serve.tiles.delta", products->delta_tiles);
            metrics_->observe("serve.keyframe_bytes",
                              double(products->keyframe_bytes));
            metrics_->observe("serve.delta_bytes",
                              double(products->delta_bytes));
          }
        } else {
          // Rejected as stale (e.g. a replacement worker already published
          // a newer cycle before an old submission drained).  Our delta
          // base no longer matches the cache head — drop it.
          base.reset();
          since_keyframe = 0;
          if (metrics_) metrics_->count("serve.publish.rejected");
        }
      }
      busy_ = false;
    }
    idle_cv_.notify_all();
  }
}

void Publisher::watchdog() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait_for(lk, std::chrono::duration<double>(cfg_.watchdog_poll_s),
                      [&] { return shutdown_; });
    if (shutdown_) return;
    if (!busy_) continue;
    const double stalled_s = seconds_since(busy_since_, Clock::now());
    if (stalled_s < cfg_.stall_timeout_s) continue;
    if (restarts_ >= cfg_.max_restarts) {
      // Budget exhausted: leave the wedged worker alone (the paper's
      // fail-safe gives up the component, not the cycle — submissions
      // keep superseding harmlessly and the cache serves the last good
      // epoch).
      continue;
    }
    ++restarts_;
    ++generation_;
    busy_ = false;  // ownership of the busy flag passes to the new worker
    const std::uint64_t gen = generation_;
    log_warn("serve: publisher stalled ", stalled_s,
             " s (timeout ", cfg_.stall_timeout_s,
             " s) — abandoning worker, restart ", restarts_, "/",
             cfg_.max_restarts);
    if (metrics_) metrics_->count("serve.publish.restarts");
    workers_.emplace_back([this, gen] { worker(gen); });
    idle_cv_.notify_all();
  }
}

std::uint64_t Publisher::submitted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return submitted_;
}
std::uint64_t Publisher::superseded() const {
  std::lock_guard<std::mutex> lk(mu_);
  return superseded_;
}
std::uint64_t Publisher::published() const {
  std::lock_guard<std::mutex> lk(mu_);
  return published_;
}
int Publisher::restarts() const {
  std::lock_guard<std::mutex> lk(mu_);
  return restarts_;
}
std::uint64_t Publisher::stale_discards() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stale_discards_;
}

}  // namespace bda::serve
