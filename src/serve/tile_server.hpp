// Thread-safe tile request API over the ProductCache.
//
// One TileServer instance is shared by every client thread of the request
// storm; get() is const, lock-free past the cache snapshot, and safe to
// call concurrently with publication.  Hit/miss accounting uses relaxed
// atomics on the request path and is flushed into util::Metrics on demand
// (flush_metrics), so the hot path never takes the metrics mutex per
// request; request latency is *sampled* into the metrics series (every
// `sample_every`-th request) for the same reason.
//
// Staleness contract (the SLO bench_serve_storm gates on): a kLatest
// request is always answered from the newest published cycle, so its
// staleness is 0 by construction; a pinned-cycle request is answered only
// while that cycle is inside the retention window — once retired it is a
// kStaleCycle miss, never a silently old product.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "serve/product_cache.hpp"
#include "util/metrics.hpp"

namespace bda::serve {

/// Request the newest published cycle.
inline constexpr std::uint64_t kLatestCycle = ~std::uint64_t{0};

struct TileRequest {
  TileKey key;
  /// Specific cycle, or kLatestCycle for the newest.
  std::uint64_t cycle = kLatestCycle;
};

enum class ServeStatus : std::uint8_t {
  kHit = 0,         ///< tile returned
  kEmpty,           ///< nothing published yet
  kStaleCycle,      ///< requested cycle outside the retention window
  kUnknownTile,     ///< cycle present but no such tile key
};

struct TileResponse {
  ServeStatus status = ServeStatus::kEmpty;
  std::uint64_t served_cycle = 0;  ///< cycle of `tile` (valid on kHit)
  std::uint64_t latest_cycle = 0;  ///< cache head at answer time
  /// Borrowed from `pin`; valid while `pin` is held.
  const EncodedTile* tile = nullptr;
  /// Keeps the served cycle alive past concurrent retirement.
  std::shared_ptr<const ProductCache::Epoch> pin;

  bool hit() const { return status == ServeStatus::kHit; }
  /// Cycles between the cache head and what was served (0 on kLatestCycle
  /// requests by construction).
  std::uint64_t staleness_cycles() const {
    return hit() ? latest_cycle - served_cycle : 0;
  }
};

class TileServer {
 public:
  /// Borrows `cache` (must outlive the server).  `metrics` may be null.
  /// Every `sample_every`-th request's latency lands in the
  /// "serve.request" series (1 = all requests).
  TileServer(const ProductCache* cache, util::Metrics* metrics = nullptr,
             std::uint64_t sample_every = 1);

  /// Answer one tile request.  Thread-safe, wait-free past the cache
  /// snapshot.
  TileResponse get(const TileRequest& req) const;

  std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return miss_empty_.load(std::memory_order_relaxed) +
           miss_stale_.load(std::memory_order_relaxed) +
           miss_unknown_.load(std::memory_order_relaxed);
  }

  /// Push the counter deltas since the last flush into the metrics sink
  /// ("serve.hit", "serve.miss.empty", "serve.miss.stale",
  /// "serve.miss.unknown", "serve.requests").  Call from one thread at a
  /// time (end of run, or a periodic reporter).
  void flush_metrics();

 private:
  const ProductCache* cache_;
  util::Metrics* metrics_;
  const std::uint64_t sample_every_;

  mutable std::atomic<std::uint64_t> requests_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> miss_empty_{0};
  mutable std::atomic<std::uint64_t> miss_stale_{0};
  mutable std::atomic<std::uint64_t> miss_unknown_{0};
  std::uint64_t flushed_[5] = {0, 0, 0, 0, 0};  ///< last-flushed snapshot
};

}  // namespace bda::serve
