// Nowcast product tiling and delta encoding (the serving wire format).
//
// The operational system served each 30-second forecast refresh to millions
// of smartphone users (paper Sec. 1: the MTI app's map view and bird's-eye
// 3-D rendering).  A client never re-downloads the whole domain every 30 s:
// the products are cut on a fixed tile grid, and each tile is shipped either
// as a *keyframe* (the tile's raw samples, run-length compressed) or as a
// *delta* against the same tile of the previous cycle (byte-XOR, then RLE —
// consecutive cycles differ only where the rain moved, so the XOR stream is
// mostly zero runs).  The encoder falls back to a keyframe whenever the
// delta would not be smaller, and unconditionally every `keyframe_every`
// cycles so a bounded cache retention window always contains a decodable
// chain (see product_cache.hpp).
//
// Decoding is defensive by construction: every tile carries the cycle it
// was cut from, the cycle its delta is based on, and a CRC32 of the decoded
// samples — applying a delta to the wrong base cycle is a detected error
// (CRC mismatch / base check), never a silently wrong image.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/field.hpp"
#include "util/types.hpp"

namespace bda::serve {

/// Which Fig 1 product a tile belongs to.
enum class ProductKind : std::uint8_t {
  kMapView = 0,   ///< 2-D composite (column-max) reflectivity
  kVolume3D = 1,  ///< full 3-D reflectivity voxel grid
};

const char* product_kind_name(ProductKind k);

/// Fixed tile grid: tiles are `tile_nx x tile_ny` columns (all vertical
/// levels of a column stay in one tile); edge tiles are clipped.
struct TileGridConfig {
  idx tile_nx = 8;
  idx tile_ny = 8;
};

/// Identity of one tile within a product.
struct TileKey {
  ProductKind kind = ProductKind::kMapView;
  idx tx = 0;  ///< tile column index, [0, tiles_x)
  idx ty = 0;  ///< tile row index, [0, tiles_y)

  friend bool operator<(const TileKey& a, const TileKey& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.tx != b.tx) return a.tx < b.tx;
    return a.ty < b.ty;
  }
  friend bool operator==(const TileKey& a, const TileKey& b) {
    return a.kind == b.kind && a.tx == b.tx && a.ty == b.ty;
  }
};

/// Sentinel for "this tile is a keyframe" in EncodedTile::base_cycle.
inline constexpr std::int64_t kNoBaseCycle = -1;

/// One encoded tile as it would travel to a client.
struct EncodedTile {
  TileKey key;
  std::uint64_t cycle = 0;  ///< cycle this tile renders
  /// Cycle the delta payload is XOR-based on; kNoBaseCycle for keyframes.
  std::int64_t base_cycle = kNoBaseCycle;
  idx nx = 0, ny = 0, nz = 0;  ///< tile sample dims (edge tiles are smaller)
  std::uint32_t payload_crc = 0;  ///< CRC32 of the decoded sample bytes
  std::vector<std::uint8_t> bytes;  ///< RLE(raw) or RLE(raw XOR base)

  bool is_keyframe() const { return base_cycle == kNoBaseCycle; }
  std::size_t sample_count() const {
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
           static_cast<std::size_t>(nz);
  }
};

/// Both Fig 1 products of one cycle, as dense fields (what the forecast
/// stage hands the publisher).
struct ProductFrame {
  Field3D<float> map_view;  ///< (nx, ny, 1) composite reflectivity
  Field3D<float> volume;    ///< (nx, ny, nz) reflectivity voxels
};

/// Number of tiles covering `n` columns with tile edge `tile_n`.
inline idx tile_count(idx n, idx tile_n) {
  return (n + tile_n - 1) / tile_n;
}

/// Cut one product field into raw (decoded) per-tile sample vectors, in
/// deterministic tile order (tx-major, then ty).  Samples within a tile are
/// ordered i-major, then j, then k — the column layout of Field3D.
std::vector<std::vector<float>> cut_tiles(const Field3D<float>& field,
                                          const TileGridConfig& cfg);

/// Encode one tile.  `base` (may be null) is the decoded sample vector of
/// the SAME tile at `base_cycle`; when present and the XOR delta compresses
/// smaller than the keyframe, a delta tile is produced, otherwise a
/// keyframe.  `force_keyframe` skips the delta attempt entirely.
EncodedTile encode_tile(const TileKey& key, std::uint64_t cycle, idx nx,
                        idx ny, idx nz, const std::vector<float>& samples,
                        const std::vector<float>* base,
                        std::int64_t base_cycle, bool force_keyframe);

/// Decode a tile back to its samples.  For delta tiles `base` must be the
/// decoded samples of `tile.base_cycle` and `base_cycle` must match the
/// tile's recorded base; any mismatch (wrong base cycle, wrong payload,
/// corrupt bytes) throws std::runtime_error — a wrong-base decode is
/// detected, never silently wrong.  For keyframes `base` is ignored.
std::vector<float> decode_tile(const EncodedTile& tile,
                               const std::vector<float>* base,
                               std::int64_t base_cycle);

}  // namespace bda::serve
