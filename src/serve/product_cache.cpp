#include "serve/product_cache.hpp"

#include "util/logging.hpp"

namespace bda::serve {

bool ProductCache::publish(std::shared_ptr<const CycleProducts> p) {
  if (!p) return false;
  std::lock_guard<std::mutex> lk(mu_);
  if (!epoch_->cycles.empty() && p->cycle <= epoch_->latest_cycle()) {
    ++rejected_stale_;
    log_warn("serve: rejected stale publish of cycle ", p->cycle,
             " (cache head is cycle ", epoch_->latest_cycle(), ")");
    return false;
  }
  auto next = std::make_shared<Epoch>();
  next->seq = epoch_->seq + 1;
  next->cycles = epoch_->cycles;  // copies pointers, not tiles
  next->cycles.emplace(p->cycle, std::move(p));
  while (next->cycles.size() > retention_)
    next->cycles.erase(next->cycles.begin());
  epoch_ = std::move(next);
  return true;
}

std::shared_ptr<const ProductCache::Epoch> ProductCache::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return epoch_;
}

std::uint64_t ProductCache::rejected_stale() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rejected_stale_;
}

}  // namespace bda::serve
