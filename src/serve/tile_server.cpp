#include "serve/tile_server.hpp"

#include <chrono>

namespace bda::serve {

TileServer::TileServer(const ProductCache* cache, util::Metrics* metrics,
                       std::uint64_t sample_every)
    : cache_(cache), metrics_(metrics),
      sample_every_(sample_every == 0 ? 1 : sample_every) {}

TileResponse TileServer::get(const TileRequest& req) const {
  const std::uint64_t n =
      requests_.fetch_add(1, std::memory_order_relaxed) + 1;
  const bool sampled = metrics_ != nullptr && (n % sample_every_) == 0;
  const auto t0 = sampled ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};

  TileResponse resp;
  resp.pin = cache_->snapshot();
  const ProductCache::Epoch& epoch = *resp.pin;
  resp.latest_cycle = epoch.latest_cycle();

  if (epoch.empty()) {
    resp.status = ServeStatus::kEmpty;
    miss_empty_.fetch_add(1, std::memory_order_relaxed);
  } else {
    const CycleProducts* products = nullptr;
    if (req.cycle == kLatestCycle) {
      products = epoch.latest();
    } else {
      products = epoch.find_cycle(req.cycle);
      if (products == nullptr) {
        resp.status = ServeStatus::kStaleCycle;
        miss_stale_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (products != nullptr) {
      resp.tile = products->find(req.key);
      if (resp.tile == nullptr) {
        resp.status = ServeStatus::kUnknownTile;
        miss_unknown_.fetch_add(1, std::memory_order_relaxed);
      } else {
        resp.status = ServeStatus::kHit;
        resp.served_cycle = products->cycle;
        hits_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  if (sampled) {
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    metrics_->observe("serve.request", dt.count());
  }
  return resp;
}

void TileServer::flush_metrics() {
  if (metrics_ == nullptr) return;
  const std::uint64_t now[5] = {
      requests_.load(std::memory_order_relaxed),
      hits_.load(std::memory_order_relaxed),
      miss_empty_.load(std::memory_order_relaxed),
      miss_stale_.load(std::memory_order_relaxed),
      miss_unknown_.load(std::memory_order_relaxed)};
  const char* names[5] = {"serve.requests", "serve.hit", "serve.miss.empty",
                          "serve.miss.stale", "serve.miss.unknown"};
  for (int i = 0; i < 5; ++i) {
    if (now[i] > flushed_[i]) metrics_->count(names[i], now[i] - flushed_[i]);
    flushed_[i] = now[i];
  }
}

}  // namespace bda::serve
