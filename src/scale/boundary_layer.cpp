#include "scale/boundary_layer.hpp"

#include <algorithm>
#include <cmath>

namespace bda::scale {

using C = Constants<real>;

BoundaryLayer::BoundaryLayer(const Grid& grid, PblParams params)
    : grid_(grid), params_(params),
      tke_(grid.nx(), grid.ny(), grid.nz(), 0) {
  tke_.fill(params_.tke_min);
}

void BoundaryLayer::step(State& s, real dt) {
  const idx nx = s.nx, ny = s.ny, nz = s.nz;
  const PblParams& P = params_;
  constexpr real kappa = 0.4f;  // von Karman

#pragma omp parallel for collapse(2)
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j) {
      real km[256], kh[256];
      // --- mixing coefficients from current TKE
      for (idx k = 0; k < nz; ++k) {
        const real z = grid_.zc(k);
        const real l = kappa * z / (real(1) + kappa * z / P.l_inf);
        const real e = std::max(tke_(i, j, k), P.tke_min);
        km[k] = std::min(P.sm * l * std::sqrt(e), P.k_max);
        kh[k] = std::min(P.sh * l * std::sqrt(e), P.k_max);
      }
      // --- TKE sources: shear and buoyancy from vertical gradients
      for (idx k = 0; k < nz; ++k) {
        real shear2 = 0, n2 = 0;
        if (k > 0 && k + 1 < nz) {
          const real rdz = real(1) / (grid_.zc(k + 1) - grid_.zc(k - 1));
          const real dudz = (s.u(i, j, k + 1) - s.u(i, j, k - 1)) * rdz;
          const real dvdz = (s.v(i, j, k + 1) - s.v(i, j, k - 1)) * rdz;
          shear2 = dudz * dudz + dvdz * dvdz;
          const real th = s.theta(i, j, k);
          n2 = (C::grav / th) *
               (s.theta(i, j, k + 1) - s.theta(i, j, k - 1)) * rdz;
        }
        const real z = grid_.zc(k);
        const real l = kappa * z / (real(1) + kappa * z / P.l_inf);
        real e = std::max(tke_(i, j, k), P.tke_min);
        const real prod = km[k] * shear2 - kh[k] * n2;
        const real diss = P.ce * e * std::sqrt(e) / std::max(l, real(1));
        e += dt * (prod - diss);
        tke_(i, j, k) = std::max(e, P.tke_min);
      }
      // --- implicit vertical diffusion of u, v, theta, qv and TKE
      // (backward Euler tridiagonal per column; unconditionally stable so
      // strong surface-layer mixing cannot blow up).
      auto mix_column = [&](auto getter, auto setter, const real* kcoef) {
        real a[256], b[256], c[256], d[256];
        for (idx k = 0; k < nz; ++k) {
          const real dz = grid_.dz(k);
          const real kup =
              (k + 1 < nz) ? real(0.5) * (kcoef[k] + kcoef[k + 1]) : real(0);
          const real kdn =
              (k > 0) ? real(0.5) * (kcoef[k] + kcoef[k - 1]) : real(0);
          const real cu = (k + 1 < nz) ? kup / (grid_.dzf(k + 1) * dz) : 0;
          const real cd = (k > 0) ? kdn / (grid_.dzf(k) * dz) : 0;
          a[k] = -dt * cd;
          c[k] = -dt * cu;
          b[k] = real(1) + dt * (cu + cd);
          d[k] = getter(k);
        }
        // Thomas
        for (idx k = 1; k < nz; ++k) {
          const real m = a[k] / b[k - 1];
          b[k] -= m * c[k - 1];
          d[k] -= m * d[k - 1];
        }
        d[nz - 1] /= b[nz - 1];
        for (idx k = nz - 2; k >= 0; --k)
          d[k] = (d[k] - c[k] * d[k + 1]) / b[k];
        for (idx k = 0; k < nz; ++k) setter(k, d[k]);
      };

      // theta
      mix_column([&](idx k) { return s.theta(i, j, k); },
                 [&](idx k, real v) { s.rhot(i, j, k) = s.dens(i, j, k) * v; },
                 kh);
      // qv
      mix_column(
          [&](idx k) { return s.rhoq[QV](i, j, k) / s.dens(i, j, k); },
          [&](idx k, real v) { s.rhoq[QV](i, j, k) = s.dens(i, j, k) * v; },
          kh);
      // u momentum: mix the face value to the left of the cell (approximate
      // on the staggered grid; columns are independent so this is local).
      mix_column(
          [&](idx k) { return s.momx(i, j, k) / s.dens(i, j, k); },
          [&](idx k, real v) { s.momx(i, j, k) = s.dens(i, j, k) * v; }, km);
      mix_column(
          [&](idx k) { return s.momy(i, j, k) / s.dens(i, j, k); },
          [&](idx k, real v) { s.momy(i, j, k) = s.dens(i, j, k) * v; }, km);
      // TKE self-diffusion
      mix_column([&](idx k) { return tke_(i, j, k); },
                 [&](idx k, real v) { tke_(i, j, k) = std::max(v, P.tke_min); },
                 km);
    }
}

}  // namespace bda::scale
