#include "scale/microphysics.hpp"

#include <algorithm>
#include <cmath>

#include "scale/reference.hpp"

namespace bda::scale {

using C = Constants<real>;

Microphysics::Microphysics(const Grid& grid, MicroParams params)
    : grid_(grid), params_(params),
      accum_precip_(grid.nx(), grid.ny(), 0),
      last_rate_(grid.nx(), grid.ny(), 0) {}

void Microphysics::step(State& s, real dt) {
  phase_changes(s, dt);
  sedimentation(s, dt);
}

void Microphysics::phase_changes(State& s, real dt) {
  const idx nx = s.nx, ny = s.ny, nz = s.nz;
  const MicroParams& P = params_;

#pragma omp parallel for collapse(2)
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j)
      for (idx k = 0; k < nz; ++k) {
        const real dens = s.dens(i, j, k);
        real th = s.rhot(i, j, k) / dens;
        const real pres = s.pressure(i, j, k);
        const real exner = std::pow(pres / C::pres00, C::kappa);
        real tem = th * exner;

        real qv = std::max(s.rhoq[QV](i, j, k) / dens, real(0));
        real qc = std::max(s.rhoq[QC](i, j, k) / dens, real(0));
        real qr = std::max(s.rhoq[QR](i, j, k) / dens, real(0));
        real qi = std::max(s.rhoq[QI](i, j, k) / dens, real(0));
        real qs = std::max(s.rhoq[QS](i, j, k) / dens, real(0));
        real qg = std::max(s.rhoq[QG](i, j, k) / dens, real(0));

        // Latent-heat factors d(theta)/dq at constant pressure.
        const real lv_fac = C::lhv / (C::cp * exner);
        const real ls_fac = C::lhs / (C::cp * exner);
        const real lf_fac = C::lhf / (C::cp * exner);

        // --- 1. Saturation adjustment: qv <-> qc (liquid branch).  Two
        // Newton steps on the saturation deficit; the (1 + L^2 qs / ...)
        // denominator accounts for the temperature change of each step.
        for (int iter = 0; iter < 2; ++iter) {
          const real qsl = qsat_liquid(tem, pres);
          const real gam = real(1) + (C::lhv * C::lhv * qsl) /
                                         (C::cp * C::rvap * tem * tem);
          real dq = (qv - qsl) / gam;  // >0: condense, <0: evaporate cloud
          if (dq < 0) dq = std::max(dq, -qc);
          qv -= dq;
          qc += dq;
          th += lv_fac * dq;
          tem = th * exner;
        }

        if (P.ice_enabled) {
          // --- 2. Homogeneous/heterogeneous cloud freezing.
          if (tem < real(233.15) && qc > 0) {
            qi += qc;
            th += lf_fac * qc;
            qc = 0;
          } else if (tem < C::tem00 && qc > 0) {
            const real frz =
                std::min(qc, qc * P.freeze_rate * (C::tem00 - tem) * dt);
            qc -= frz;
            qi += frz;
            th += lf_fac * frz;
          }
          // Melt cloud ice immediately above freezing.
          if (tem > C::tem00 && qi > 0) {
            qc += qi;
            th -= lf_fac * qi;
            qi = 0;
          }
          tem = th * exner;

          // --- 3. Vapor deposition onto ice / snow when supersaturated
          // w.r.t. ice (and sublimation when subsaturated).
          if (tem < C::tem00) {
            const real qsi = qsat_ice(tem, pres);
            const real ssi = (qv - qsi) / std::max(qsi, real(1e-8));
            if (ssi > 0) {
              const real dep = std::min(
                  qv - qsi,
                  P.dep_rate * ssi * (std::sqrt(qi) + std::sqrt(qs)) * dt);
              if (dep > 0) {
                // Split between ice and snow by mass.
                const real wi = qi / std::max(qi + qs, real(1e-10));
                qi += dep * wi;
                qs += dep * (real(1) - wi);
                qv -= dep;
                th += ls_fac * dep;
              }
            } else if (ssi < 0) {
              const real sub = std::min(
                  qi + qs,
                  P.dep_rate * (-ssi) * (std::sqrt(qi) + std::sqrt(qs)) * dt);
              if (sub > 0) {
                const real wi = qi / std::max(qi + qs, real(1e-10));
                const real di = std::min(qi, sub * wi);
                const real ds = std::min(qs, sub - di);
                qi -= di;
                qs -= ds;
                qv += di + ds;
                th -= ls_fac * (di + ds);
              }
            }
            tem = th * exner;
          }
        }

        // --- 4. Warm rain: autoconversion + accretion (Kessler form, the
        // same structure Tomita 2008 uses for the liquid branch).
        {
          const real auto_r =
              P.auto_rate * std::max(qc - P.qc_auto_threshold, real(0)) * dt;
          const real accr =
              P.accr_rate * qc * std::pow(std::max(qr, real(0)), real(0.875)) *
              dt;
          const real dqr = std::min(qc, auto_r + accr);
          qc -= dqr;
          qr += dqr;
        }

        // --- 5. Rain evaporation in subsaturated air.
        {
          const real qsl = qsat_liquid(tem, pres);
          if (qv < qsl && qr > 0) {
            const real deficit = (qsl - qv) / qsl;
            const real evap = std::min(
                qr, P.evap_rate * deficit *
                        std::pow(qr, real(0.65)) * dt);
            qr -= evap;
            qv += evap;
            th -= lv_fac * evap;
            tem = th * exner;
          }
        }

        if (P.ice_enabled) {
          // --- 6. Ice -> snow autoconversion (aggregation).
          {
            const real conv =
                P.ice_auto_rate * std::max(qi - P.qi_auto_threshold, real(0)) *
                dt;
            const real d = std::min(qi, conv);
            qi -= d;
            qs += d;
          }
          // --- 7. Riming: snow collects cloud water; heavy riming makes
          // graupel.
          if (tem < C::tem00 && qc > 0 && qs > 0) {
            const real rime = std::min(qc, P.rime_rate * qc *
                                               std::pow(qs, real(0.875)) * dt);
            qc -= rime;
            // Half of rimed mass densifies to graupel once snow is loaded.
            const real to_g = (qs > real(1e-3)) ? real(0.5) * rime : real(0);
            qs += rime - to_g;
            qg += to_g;
            th += lf_fac * rime;  // freezing of collected liquid
          }
          // --- 8. Rain freezing to graupel below 0 C.
          if (tem < C::tem00 && qr > 0) {
            const real frz = std::min(
                qr, P.freeze_rate * (C::tem00 - tem) * qr * dt);
            qr -= frz;
            qg += frz;
            th += lf_fac * frz;
          }
          // --- 9. Graupel collects cloud (wet growth -> stays graupel).
          if (tem < C::tem00 && qc > 0 && qg > 0) {
            const real coll = std::min(
                qc, P.rime_rate * qc * std::pow(qg, real(0.875)) * dt);
            qc -= coll;
            qg += coll;
            th += lf_fac * coll;
          }
          // --- 10. Melting of snow and graupel above 0 C.
          if (tem > C::tem00) {
            const real melt_s =
                std::min(qs, P.melt_rate * (tem - C::tem00) * qs * dt);
            const real melt_g =
                std::min(qg, P.melt_rate * (tem - C::tem00) * qg * dt);
            qs -= melt_s;
            qg -= melt_g;
            qr += melt_s + melt_g;
            th -= lf_fac * (melt_s + melt_g);
          }
        }

        // Write back (mixing ratio -> partial density).
        s.rhoq[QV](i, j, k) = dens * qv;
        s.rhoq[QC](i, j, k) = dens * qc;
        s.rhoq[QR](i, j, k) = dens * qr;
        s.rhoq[QI](i, j, k) = dens * qi;
        s.rhoq[QS](i, j, k) = dens * qs;
        s.rhoq[QG](i, j, k) = dens * qg;
        s.rhot(i, j, k) = dens * th;
      }
}

void Microphysics::sedimentation(State& s, real dt) {
  const idx nx = s.nx, ny = s.ny, nz = s.nz;
  const MicroParams& P = params_;
  const real rho0 = real(1.28);  // near-surface reference density

  last_rate_.fill(0);

#pragma omp parallel for collapse(2)
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j) {
      // Four precipitating categories; each column is swept independently.
      const int cats[4] = {QR, QI, QS, QG};
      for (int c = 0; c < 4; ++c) {
        const int t = cats[c];
        // Terminal velocity per level.
        real vt[256];
        real vmax = 0;
        for (idx k = 0; k < nz; ++k) {
          const real rhoq = std::max(s.rhoq[t](i, j, k), real(0));
          const real dens = s.dens(i, j, k);
          real v = 0;
          if (t == QR)
            v = P.vt_rain_coef * std::pow(rhoq, real(0.1364)) *
                std::sqrt(rho0 / dens);
          else if (t == QS)
            v = P.vt_snow;
          else if (t == QG)
            v = P.vt_graupel_coef * std::pow(rhoq, real(0.125));
          else
            v = P.vt_ice;
          vt[k] = std::min(v, P.vt_max);
          vmax = std::max(vmax, vt[k]);
        }
        // Sub-step for the fall CFL in the thinnest layer.
        real dzmin = grid_.dz(0);
        for (idx k = 1; k < nz; ++k) dzmin = std::min(dzmin, grid_.dz(k));
        const int nsub =
            std::max(1, static_cast<int>(std::ceil(vmax * dt / dzmin)));
        const real dts = dt / real(nsub);
        for (int sub = 0; sub < nsub; ++sub) {
          // Downward upwind flux through each cell bottom face.
          real flux[257] = {};  // flux[k] = through bottom of cell k
          for (idx k = 0; k < nz; ++k)
            flux[k] = vt[k] * std::max(s.rhoq[t](i, j, k), real(0));
          real out_bottom = flux[0] * dts;  // mass leaving the column
          for (idx k = 0; k < nz; ++k) {
            const real in_from_above = (k + 1 < nz) ? flux[k + 1] : real(0);
            const real d = dts * (in_from_above - flux[k]) / grid_.dz(k);
            s.rhoq[t](i, j, k) += d;
            s.dens(i, j, k) += d;  // condensate mass is part of total density
            // Keep theta consistent: falling mass carries its theta; we use
            // the local theta so rhot/dens stays the potential temperature.
            s.rhot(i, j, k) += d * (s.rhot(i, j, k) / (s.dens(i, j, k) - d));
          }
          // Surface accumulation [mm]: kg/m2 of water = mm.
          accum_precip_(i, j) += out_bottom;
          last_rate_(i, j) += out_bottom * (real(3600) / dt);
        }
      }
    }
}

real cell_reflectivity_dbz(const State& s, idx i, idx j, idx k) {
  // Stoelinga (2005)-style equivalent reflectivity from the precipitating
  // categories; Z in mm^6/m^3 with rho*q in kg/m^3.
  const real rqr = std::max(s.rhoq[QR](i, j, k), real(0));
  const real rqs = std::max(s.rhoq[QS](i, j, k), real(0));
  const real rqg = std::max(s.rhoq[QG](i, j, k), real(0));
  const double z = 3.63e9 * std::pow(double(rqr), 1.75) +
                   9.80e8 * std::pow(double(rqs), 1.75) +
                   4.33e10 * std::pow(double(rqg), 1.75);
  const double dbz = 10.0 * std::log10(std::max(z, 1e-2));
  return real(dbz);
}

void reflectivity_field(const State& s, RField3D& out) {
  for (idx i = 0; i < s.nx; ++i)
    for (idx j = 0; j < s.ny; ++j)
      for (idx k = 0; k < s.nz; ++k)
        out(i, j, k) = cell_reflectivity_dbz(s, i, j, k);
}

real cell_fall_speed(const State& s, const MicroParams& p, idx i, idx j,
                     idx k) {
  const real rho0 = real(1.28);
  const real dens = s.dens(i, j, k);
  const real rqr = std::max(s.rhoq[QR](i, j, k), real(0));
  const real rqs = std::max(s.rhoq[QS](i, j, k), real(0));
  const real rqg = std::max(s.rhoq[QG](i, j, k), real(0));
  const real total = rqr + rqs + rqg;
  if (total < real(1e-8)) return 0;
  const real vr = std::min(
      p.vt_rain_coef * std::pow(rqr, real(0.1364)) * std::sqrt(rho0 / dens),
      p.vt_max);
  const real vg =
      std::min(p.vt_graupel_coef * std::pow(rqg, real(0.125)), p.vt_max);
  return (vr * rqr + p.vt_snow * rqs + vg * rqg) / total;
}

}  // namespace bda::scale
