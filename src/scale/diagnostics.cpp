#include "scale/diagnostics.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace bda::scale {

using C = Constants<real>;

real moist_lapse_rate(real temperature, real pressure) {
  // Saturated pseudo-adiabatic lapse rate:
  //   Gamma_m = g (1 + L qs / (Rd T)) / (cp + L^2 qs eps / (Rd T^2))
  const real qs = qsat_liquid(temperature, pressure);
  const real num =
      C::grav * (real(1) + C::lhv * qs / (C::rdry * temperature));
  const real den = C::cp + C::lhv * C::lhv * qs * real(0.622) /
                               (C::rdry * temperature * temperature);
  return num / den;
}

namespace {

struct Column {
  std::vector<real> z, tem, pres, qv;
};

ParcelDiagnostics lift(const Grid& grid, const Column& env) {
  ParcelDiagnostics out;
  const idx nz = grid.nz();
  if (nz < 3) return out;

  // Surface parcel.
  real t_parcel = env.tem[0];
  real qv_parcel = env.qv[0];
  bool saturated = false;

  std::vector<real> buoy(static_cast<std::size_t>(nz), 0.0f);
  for (idx k = 1; k < nz; ++k) {
    const real dz = grid.zc(k) - grid.zc(k - 1);
    if (!saturated) {
      // Dry adiabatic ascent; condensation check at the new level.
      t_parcel -= C::grav / C::cp * dz;
      const real qs = qsat_liquid(t_parcel, env.pres[k]);
      if (qv_parcel >= qs) {
        saturated = true;
        out.lcl = grid.zc(k);
      }
    } else {
      t_parcel -= moist_lapse_rate(t_parcel, env.pres[k]) * dz;
      // Pseudo-adiabatic: condensed water rains out, parcel stays at qs.
      qv_parcel = qsat_liquid(t_parcel, env.pres[k]);
    }
    // Virtual temperature buoyancy vs the environment.
    const real tv_parcel = t_parcel * (real(1) + real(0.608) * qv_parcel);
    const real tv_env = env.tem[k] * (real(1) + real(0.608) * env.qv[k]);
    buoy[k] = C::grav * (tv_parcel - tv_env) / tv_env;
  }

  // Integrate: CIN is the negative area below the LFC; CAPE the positive
  // area between LFC and EL.
  bool found_lfc = false;
  for (idx k = 1; k < nz; ++k) {
    const real dz = grid.zc(k) - grid.zc(k - 1);
    if (!found_lfc) {
      if (buoy[k] > 0 && saturated && grid.zc(k) >= out.lcl && out.lcl > 0) {
        found_lfc = true;
        out.lfc = grid.zc(k);
        out.cape += buoy[k] * dz;
        out.el = grid.zc(k);
      } else if (buoy[k] < 0) {
        out.cin += -buoy[k] * dz;
      }
    } else {
      if (buoy[k] > 0) {
        out.cape += buoy[k] * dz;
        out.el = grid.zc(k);
      }
      // Negative area above the EL is ignored (parcel overshoot).
    }
  }
  if (!found_lfc) {
    out.cape = 0;
    out.cin = 0;  // stable column: CIN unbounded in principle; report 0 CAPE
  }
  return out;
}

}  // namespace

ParcelDiagnostics parcel_diagnostics(const Grid& grid,
                                     const ReferenceState& ref) {
  Column env;
  const idx nz = grid.nz();
  env.z.resize(nz);
  env.tem.resize(nz);
  env.pres.resize(nz);
  env.qv.resize(nz);
  for (idx k = 0; k < nz; ++k) {
    env.z[k] = grid.zc(k);
    env.pres[k] = ref.pres[k];
    env.tem[k] = ref.theta[k] *
                 std::pow(ref.pres[k] / C::pres00, C::kappa);
    env.qv[k] = ref.qv[k];
  }
  return lift(grid, env);
}

ParcelDiagnostics parcel_diagnostics(const Grid& grid, const State& s,
                                     idx i, idx j) {
  Column env;
  const idx nz = grid.nz();
  env.z.resize(nz);
  env.tem.resize(nz);
  env.pres.resize(nz);
  env.qv.resize(nz);
  for (idx k = 0; k < nz; ++k) {
    env.z[k] = grid.zc(k);
    env.pres[k] = s.pressure(i, j, k);
    env.tem[k] = s.temperature(i, j, k);
    env.qv[k] = s.q(QV, i, j, k);
  }
  return lift(grid, env);
}

}  // namespace bda::scale
