#include "scale/dynamics.hpp"

#include <cmath>
#include <vector>

#include "scale/kernels.hpp"

namespace bda::scale {

using C = Constants<real>;

namespace {
constexpr real kGammaEos = C::cp / C::cv;

/// Equation of state: p = p00 (R * rhot / p00)^(cp/cv).
/// rhot is rho*theta with rho the *total* density (dry air + vapor +
/// condensate).  Treating condensate mass inside the gas law overestimates
/// pressure by O(q_cond) ~ 0.5%; in exchange, total mass is exactly
/// conserved and condensate loading enters buoyancy with no extra term.
inline real eos_pressure(real rhot) {
  return C::pres00 * std::pow(C::rdry * rhot / C::pres00, kGammaEos);
}
}  // namespace

Tendencies::Tendencies(const Grid& g)
    : dens(g.nx(), g.ny(), g.nz(), Grid::kHalo),
      rhot(g.nx(), g.ny(), g.nz(), Grid::kHalo),
      momx(g.nx(), g.ny(), g.nz(), Grid::kHalo),
      momy(g.nx(), g.ny(), g.nz(), Grid::kHalo),
      momz(g.nx(), g.ny(), g.nz() + 1, Grid::kHalo) {
  for (auto& q : rhoq) q = RField3D(g.nx(), g.ny(), g.nz(), Grid::kHalo);
}

Dynamics::Dynamics(const Grid& grid, const ReferenceState& ref,
                   DynParams params)
    : grid_(grid), ref_(ref), params_(params),
      ufc_(grid.nx(), grid.ny(), grid.nz(), Grid::kHalo),
      vfc_(grid.nx(), grid.ny(), grid.nz(), Grid::kHalo),
      wfc_(grid.nx(), grid.ny(), grid.nz() + 1, Grid::kHalo),
      th_(grid.nx(), grid.ny(), grid.nz(), Grid::kHalo),
      prs_(grid.nx(), grid.ny(), grid.nz(), Grid::kHalo),
      div_(grid.nx(), grid.ny(), grid.nz(), Grid::kHalo),
      lap_(grid.nx(), grid.ny(), grid.nz() + 1, Grid::kHalo),
      stage_in_(grid), stage_out_(grid), tend_(grid) {
  // Reference pressure consistent with our EOS: A_c must be exactly zero
  // for the resting reference state regardless of how the sounding was
  // integrated.
  pref_.resize(static_cast<std::size_t>(grid.nz()));
  for (idx k = 0; k < grid.nz(); ++k)
    pref_[k] = eos_pressure(ref.dens[k] * ref.theta[k]);
}

void Dynamics::fill_halos(State& s) const {
  if (params_.lateral_bc == LateralBc::kPeriodic)
    s.fill_halos_periodic();
  else
    s.fill_halos_clamp();
}

void Dynamics::fill_derived_halos() {
  auto fill = [this](RField3D& f) {
    if (params_.lateral_bc == LateralBc::kPeriodic)
      f.fill_halo_periodic();
    else
      f.fill_halo_clamp();
  };
  fill(ufc_);
  fill(vfc_);
  fill(wfc_);
  fill(th_);
  fill(prs_);
  fill(div_);
}

void Dynamics::compute_derived(const State& in) {
  const idx nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  const real rdx = real(1) / grid_.dx();
#pragma omp parallel for collapse(2)
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j) {
      for (idx k = 0; k < nz; ++k) {
        const real dc = in.dens(i, j, k);
        ufc_(i, j, k) =
            in.momx(i, j, k) / (real(0.5) * (dc + in.dens(i + 1, j, k)));
        vfc_(i, j, k) =
            in.momy(i, j, k) / (real(0.5) * (dc + in.dens(i, j + 1, k)));
        th_(i, j, k) = in.rhot(i, j, k) / dc;
        prs_(i, j, k) = eos_pressure(in.rhot(i, j, k));
        div_(i, j, k) =
            (in.momx(i, j, k) - in.momx(i - 1, j, k)) * rdx +
            (in.momy(i, j, k) - in.momy(i, j - 1, k)) * rdx +
            (in.momz(i, j, k + 1) - in.momz(i, j, k)) / grid_.dz(k);
      }
      // w at z-faces: rho interpolated between the adjacent cells.
      wfc_(i, j, 0) = 0;
      wfc_(i, j, nz) = 0;
      for (idx kf = 1; kf < nz; ++kf) {
        const real df =
            real(0.5) * (in.dens(i, j, kf - 1) + in.dens(i, j, kf));
        wfc_(i, j, kf) = in.momz(i, j, kf) / df;
      }
    }
  fill_derived_halos();
}

void Dynamics::compute_tendencies(const State& in, Tendencies& tend,
                                  real dt_full) {
  compute_derived(in);

  const idx nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  const real dx = grid_.dx();
  const real rdx = real(1) / dx;
  // Divergence damping: beta * grad_h(div(rho u)); beta = alpha dx^2 / dt.
  const real beta = params_.divdamp_coef * dx * dx / dt_full;
  const real f_cor = params_.f_coriolis;

  // ---- scalar tendencies: dens (horizontal only), rhot (horizontal only),
  // ---- tracers (full 3-D, explicit).
#pragma omp parallel for collapse(2)
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j)
      for (idx k = 0; k < nz; ++k) {
        // Horizontal mass-flux divergence (vertical handled implicitly).
        tend.dens(i, j, k) =
            -((in.momx(i, j, k) - in.momx(i - 1, j, k)) +
              (in.momy(i, j, k) - in.momy(i, j - 1, k))) *
            rdx;

        // rho*theta: horizontal flux with 3rd-order upwind theta.
        auto fx_th = [&](idx ii) {
          const real m = in.momx(ii, j, k);
          return m * upwind3(th_(ii - 1, j, k), th_(ii, j, k),
                             th_(ii + 1, j, k), th_(ii + 2, j, k), m);
        };
        auto fy_th = [&](idx jj) {
          const real m = in.momy(i, jj, k);
          return m * upwind3(th_(i, jj - 1, k), th_(i, jj, k),
                             th_(i, jj + 1, k), th_(i, jj + 2, k), m);
        };
        tend.rhot(i, j, k) =
            -((fx_th(i) - fx_th(i - 1)) + (fy_th(j) - fy_th(j - 1))) * rdx;
      }

  for (int t = 0; t < kNumTracers; ++t) {
    const RField3D& rq = in.rhoq[t];
#pragma omp parallel for collapse(2)
    for (idx i = 0; i < nx; ++i)
      for (idx j = 0; j < ny; ++j) {
        auto q_at = [&](idx ii, idx jj, idx kk) {
          return rq(ii, jj, kk) / in.dens(ii, jj, kk);
        };
        for (idx k = 0; k < nz; ++k) {
          auto fx = [&](idx ii) {
            const real m = in.momx(ii, j, k);
            return m * upwind3(q_at(ii - 1, j, k), q_at(ii, j, k),
                               q_at(ii + 1, j, k), q_at(ii + 2, j, k), m);
          };
          auto fy = [&](idx jj) {
            const real m = in.momy(i, jj, k);
            return m * upwind3(q_at(i, jj - 1, k), q_at(i, jj, k),
                               q_at(i, jj + 1, k), q_at(i, jj + 2, k), m);
          };
          auto fz = [&](idx kf) {  // flux through z-face kf (cells kf-1|kf)
            if (kf == 0 || kf == nz) return real(0);
            const real m = in.momz(i, j, kf);
            if (kf == 1 || kf == nz - 1)
              return m * upwind1(q_at(i, j, kf - 1), q_at(i, j, kf), m);
            return m * upwind3(q_at(i, j, kf - 2), q_at(i, j, kf - 1),
                               q_at(i, j, kf), q_at(i, j, kf + 1), m);
          };
          tend.rhoq[t](i, j, k) =
              -((fx(i) - fx(i - 1)) + (fy(j) - fy(j - 1))) * rdx -
              (fz(k + 1) - fz(k)) / grid_.dz(k);
        }
      }
  }

  // ---- u momentum (x-faces) ----
#pragma omp parallel for collapse(2)
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j)
      for (idx k = 0; k < nz; ++k) {
        // x-fluxes at the cell centers flanking face i.
        auto fxc = [&](idx ii) {  // flux through center ii
          const real m = real(0.5) * (in.momx(ii - 1, j, k) + in.momx(ii, j, k));
          return m * upwind3(ufc_(ii - 2, j, k), ufc_(ii - 1, j, k),
                             ufc_(ii, j, k), ufc_(ii + 1, j, k), m);
        };
        // y-fluxes at the corners (face i, y-face jf).
        auto fyc = [&](idx jf) {
          const real m = real(0.5) * (in.momy(i, jf, k) + in.momy(i + 1, jf, k));
          return m * upwind3(ufc_(i, jf - 1, k), ufc_(i, jf, k),
                             ufc_(i, jf + 1, k), ufc_(i, jf + 2, k), m);
        };
        // z-fluxes at (face i, z-face kf).
        auto fzc = [&](idx kf) {
          if (kf == 0 || kf == nz) return real(0);
          const real m =
              real(0.5) * (in.momz(i, j, kf) + in.momz(i + 1, j, kf));
          if (kf == 1 || kf == nz - 1)
            return m * upwind1(ufc_(i, j, kf - 1), ufc_(i, j, kf), m);
          return m * upwind3(ufc_(i, j, kf - 2), ufc_(i, j, kf - 1),
                             ufc_(i, j, kf), ufc_(i, j, kf + 1), m);
        };
        real f = -((fxc(i + 1) - fxc(i))) * rdx - (fyc(j) - fyc(j - 1)) * rdx -
                 (fzc(k + 1) - fzc(k)) / grid_.dz(k);
        // Horizontal pressure gradient (reference is horizontally uniform,
        // so full p works) and divergence damping.
        f -= (prs_(i + 1, j, k) - prs_(i, j, k)) * rdx;
        f += beta * (div_(i + 1, j, k) - div_(i, j, k)) * rdx;
        if (f_cor != real(0)) {
          const real rv =
              real(0.25) * (in.momy(i, j - 1, k) + in.momy(i, j, k) +
                            in.momy(i + 1, j - 1, k) + in.momy(i + 1, j, k));
          f += f_cor * rv;
        }
        tend.momx(i, j, k) = f;
      }

  // ---- v momentum (y-faces) ----
#pragma omp parallel for collapse(2)
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j)
      for (idx k = 0; k < nz; ++k) {
        auto fyc = [&](idx jj) {  // flux through center jj
          const real m = real(0.5) * (in.momy(i, jj - 1, k) + in.momy(i, jj, k));
          return m * upwind3(vfc_(i, jj - 2, k), vfc_(i, jj - 1, k),
                             vfc_(i, jj, k), vfc_(i, jj + 1, k), m);
        };
        auto fxc = [&](idx if_) {  // corner (x-face if_, face j)
          const real m = real(0.5) * (in.momx(if_, j, k) + in.momx(if_, j + 1, k));
          return m * upwind3(vfc_(if_ - 1, j, k), vfc_(if_, j, k),
                             vfc_(if_ + 1, j, k), vfc_(if_ + 2, j, k), m);
        };
        auto fzc = [&](idx kf) {
          if (kf == 0 || kf == nz) return real(0);
          const real m =
              real(0.5) * (in.momz(i, j, kf) + in.momz(i, j + 1, kf));
          if (kf == 1 || kf == nz - 1)
            return m * upwind1(vfc_(i, j, kf - 1), vfc_(i, j, kf), m);
          return m * upwind3(vfc_(i, j, kf - 2), vfc_(i, j, kf - 1),
                             vfc_(i, j, kf), vfc_(i, j, kf + 1), m);
        };
        real f = -(fyc(j + 1) - fyc(j)) * rdx - (fxc(i) - fxc(i - 1)) * rdx -
                 (fzc(k + 1) - fzc(k)) / grid_.dz(k);
        f -= (prs_(i, j + 1, k) - prs_(i, j, k)) * rdx;
        f += beta * (div_(i, j + 1, k) - div_(i, j, k)) * rdx;
        if (f_cor != real(0)) {
          const real ru =
              real(0.25) * (in.momx(i - 1, j, k) + in.momx(i, j, k) +
                            in.momx(i - 1, j + 1, k) + in.momx(i, j + 1, k));
          f -= f_cor * ru;
        }
        tend.momy(i, j, k) = f;
      }

  // ---- w momentum (z-faces): advection + sponge only; the vertical
  // ---- pressure gradient and buoyancy live in the implicit solver.
  const real ztop = grid_.ztop();
#pragma omp parallel for collapse(2)
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j) {
      tend.momz(i, j, 0) = 0;
      tend.momz(i, j, nz) = 0;
      for (idx kf = 1; kf < nz; ++kf) {
        auto fx = [&](idx if_) {  // through x-face if_ at z-face kf
          const real m =
              real(0.5) * (in.momx(if_, j, kf - 1) + in.momx(if_, j, kf));
          return m * upwind3(wfc_(if_ - 1, j, kf), wfc_(if_, j, kf),
                             wfc_(if_ + 1, j, kf), wfc_(if_ + 2, j, kf), m);
        };
        auto fy = [&](idx jf) {
          const real m =
              real(0.5) * (in.momy(i, jf, kf - 1) + in.momy(i, jf, kf));
          return m * upwind3(wfc_(i, jf - 1, kf), wfc_(i, jf, kf),
                             wfc_(i, jf + 1, kf), wfc_(i, jf + 2, kf), m);
        };
        auto fzc = [&](idx c) {  // through cell center c (faces c..c+1)
          const real m = real(0.5) * (in.momz(i, j, c) + in.momz(i, j, c + 1));
          if (c == 0)
            return m * upwind1(wfc_(i, j, c), wfc_(i, j, c + 1), m);
          if (c == nz - 1)
            return m * upwind1(wfc_(i, j, c), wfc_(i, j, c + 1), m);
          return m * upwind3(wfc_(i, j, c - 1), wfc_(i, j, c),
                             wfc_(i, j, c + 1), wfc_(i, j, c + 2), m);
        };
        real f = -(fx(i) - fx(i - 1)) * rdx - (fy(j) - fy(j - 1)) * rdx -
                 (fzc(kf) - fzc(kf - 1)) / grid_.dzf(kf);
        // Rayleigh sponge near the model top damps reflected gravity waves.
        const real zf = grid_.zf(kf);
        if (zf > ztop - params_.sponge_depth) {
          const real s = (zf - (ztop - params_.sponge_depth)) /
                         params_.sponge_depth;
          f -= (s * s / params_.sponge_tau) * in.momz(i, j, kf);
        }
        tend.momz(i, j, kf) = f;
      }
    }

  // ---- 4th-order horizontal hyperdiffusion on momenta, rhot and tracers.
  const real nu4 =
      params_.hyperdiff_coef * dx * dx * dx * dx / dt_full;
  if (nu4 > real(0)) {
    auto apply = [&](const RField3D& q, RField3D& tendf, idx nlev) {
      const real rdx2 = rdx * rdx;
#pragma omp parallel for collapse(2)
      for (idx i = 0; i < nx; ++i)
        for (idx j = 0; j < ny; ++j)
          for (idx k = 0; k < nlev; ++k)
            lap_(i, j, k) = (q(i + 1, j, k) + q(i - 1, j, k) + q(i, j + 1, k) +
                             q(i, j - 1, k) - real(4) * q(i, j, k)) *
                            rdx2;
      if (params_.lateral_bc == LateralBc::kPeriodic)
        lap_.fill_halo_periodic();
      else
        lap_.fill_halo_clamp();
#pragma omp parallel for collapse(2)
      for (idx i = 0; i < nx; ++i)
        for (idx j = 0; j < ny; ++j)
          for (idx k = 0; k < nlev; ++k)
            tendf(i, j, k) -= nu4 *
                              (lap_(i + 1, j, k) + lap_(i - 1, j, k) +
                               lap_(i, j + 1, k) + lap_(i, j - 1, k) -
                               real(4) * lap_(i, j, k)) *
                              rdx2;
    };
    apply(in.momx, tend.momx, nz);
    apply(in.momy, tend.momy, nz);
    apply(in.momz, tend.momz, nz + 1);
    apply(in.rhot, tend.rhot, nz);
    for (int t = 0; t < kNumTracers; ++t) apply(in.rhoq[t], tend.rhoq[t], nz);
  }
}

void Dynamics::vertical_implicit(const State& s0, const State& in,
                                 const Tendencies& tend, real dts,
                                 State& out) {
  const idx nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  const real g = C::grav;

  // Explicit-only prognostics first.
#pragma omp parallel for collapse(2)
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j)
      for (idx k = 0; k < nz; ++k) {
        out.momx(i, j, k) = s0.momx(i, j, k) + dts * tend.momx(i, j, k);
        out.momy(i, j, k) = s0.momy(i, j, k) + dts * tend.momy(i, j, k);
        for (int t = 0; t < kNumTracers; ++t)
          out.rhoq[t](i, j, k) =
              s0.rhoq[t](i, j, k) + dts * tend.rhoq[t](i, j, k);
      }

  // Column-implicit solve.
  //
  // Unknowns x_k = momz at interior faces k = 1..nz-1.  Backward Euler on
  // the coupled acoustic system (cells c, faces k; face k sits between
  // cells k-1 and k):
  //   p'^+ _c = A_c - dts * dpdrt_c * (x_{c+1} thf_{c+1} - x_c thf_c)/dz_c
  //   rho'^+_c = B_c - dts * (x_{c+1} - x_c)/dz_c
  //   x_k = rhs0_k - (dts/dzf_k)(p'^+_k - p'^+_{k-1})
  //         - dts*g*(rho'^+_{k-1} + rho'^+_k)/2
  // where A_c collects all explicit contributions to the pressure
  // perturbation at the new time, B_c to the density perturbation, and
  // dpdrt = dp/d(rho theta) = gamma p / (rho theta) (so dpdrt*theta = cs^2).
#pragma omp parallel
  {
    std::vector<real> A(nz), B(nz), dpdrt(nz), thf(nz + 1);
    std::vector<real> ta(nz - 1), tb(nz - 1), tc(nz - 1), td(nz - 1);
#pragma omp for collapse(2)
    for (idx i = 0; i < nx; ++i)
      for (idx j = 0; j < ny; ++j) {
        for (idx c = 0; c < nz; ++c) {
          const real p_in = prs_(i, j, c);
          dpdrt[c] = kGammaEos * p_in / in.rhot(i, j, c);
          const real rhot_new_expl =
              s0.rhot(i, j, c) + dts * tend.rhot(i, j, c);
          A[c] = p_in - pref_[c] +
                 dpdrt[c] * (rhot_new_expl - in.rhot(i, j, c));
          B[c] = s0.dens(i, j, c) + dts * tend.dens(i, j, c) - ref_.dens[c];
        }
        thf[0] = th_(i, j, 0);
        thf[nz] = th_(i, j, nz - 1);
        for (idx k = 1; k < nz; ++k)
          thf[k] = real(0.5) * (th_(i, j, k - 1) + th_(i, j, k));

        for (idx k = 1; k < nz; ++k) {
          const std::size_t m = static_cast<std::size_t>(k - 1);
          const real dzf = grid_.dzf(k);
          const real dzl = grid_.dz(k - 1);  // cell below the face
          const real dzu = grid_.dz(k);      // cell above the face
          const real dts2 = dts * dts;
          ta[m] = -(dts2 / (dzf * dzl)) * dpdrt[k - 1] * thf[k - 1] +
                  (g * dts2 * real(0.5)) / dzl;
          tb[m] = real(1) +
                  (dts2 * thf[k] / dzf) * (dpdrt[k] / dzu + dpdrt[k - 1] / dzl) +
                  (g * dts2 * real(0.5)) * (real(1) / dzu - real(1) / dzl);
          tc[m] = -(dts2 / (dzf * dzu)) * dpdrt[k] * thf[k + 1] -
                  (g * dts2 * real(0.5)) / dzu;
          td[m] = s0.momz(i, j, k) + dts * tend.momz(i, j, k) -
                  (dts / dzf) * (A[k] - A[k - 1]) -
                  (dts * g * real(0.5)) * (B[k - 1] + B[k]);
        }
        solve_tridiagonal<real>(ta, tb, tc, td);

        out.momz(i, j, 0) = 0;
        out.momz(i, j, nz) = 0;
        for (idx k = 1; k < nz; ++k)
          out.momz(i, j, k) = td[static_cast<std::size_t>(k - 1)];

        for (idx c = 0; c < nz; ++c) {
          const real xl = out.momz(i, j, c);
          const real xu = out.momz(i, j, c + 1);
          out.dens(i, j, c) = s0.dens(i, j, c) +
                              dts * (tend.dens(i, j, c) - (xu - xl) / grid_.dz(c));
          out.rhot(i, j, c) =
              s0.rhot(i, j, c) +
              dts * (tend.rhot(i, j, c) -
                     (xu * thf[c + 1] - xl * thf[c]) / grid_.dz(c));
        }
      }
  }
}

void Dynamics::step(State& s, real dt) {
  const int ns = params_.rk_stages;
  State* in = &s;
  for (int stage = 0; stage < ns; ++stage) {
    const real dts = dt / real(ns - stage);  // dt/3, dt/2, dt for RK3
    // Halos of the stage input must be current before stencils run.
    fill_halos(*in);
    compute_tendencies(*in, tend_, dt);
    vertical_implicit(s, *in, tend_, dts, stage_out_);
    if (stage + 1 < ns) {
      std::swap(stage_in_, stage_out_);
      in = &stage_in_;
    }
  }
  if (ns > 0) std::swap(s, stage_out_);
  fill_halos(s);
}

void add_thermal_bubble(State& s, const Grid& g, real x0, real y0, real z0,
                        real rh, real rv, real amplitude) {
  for (idx i = 0; i < s.nx; ++i)
    for (idx j = 0; j < s.ny; ++j)
      for (idx k = 0; k < s.nz; ++k) {
        const real dxr = (g.xc(i) - x0) / rh;
        const real dyr = (g.yc(j) - y0) / rh;
        const real dzr = (g.zc(k) - z0) / rv;
        const real r2 = dxr * dxr + dyr * dyr + dzr * dzr;
        if (r2 > real(9)) continue;
        const real dth = amplitude * std::exp(-r2);
        s.rhot(i, j, k) += s.dens(i, j, k) * dth;
      }
}

void add_moisture_anomaly(State& s, const Grid& g, real x0, real y0, real z0,
                          real rh, real rv, real dq) {
  for (idx i = 0; i < s.nx; ++i)
    for (idx j = 0; j < s.ny; ++j)
      for (idx k = 0; k < s.nz; ++k) {
        const real dxr = (g.xc(i) - x0) / rh;
        const real dyr = (g.yc(j) - y0) / rh;
        const real dzr = (g.zc(k) - z0) / rv;
        const real r2 = dxr * dxr + dyr * dyr + dzr * dzr;
        if (r2 > real(9)) continue;
        const real th = s.theta(i, j, k);
        const real dmass = s.dens(i, j, k) * dq * std::exp(-r2);
        s.rhoq[QV](i, j, k) += dmass;
        s.dens(i, j, k) += dmass;        // vapor adds to total mass
        s.rhot(i, j, k) += th * dmass;   // keep theta unchanged
      }
}

}  // namespace bda::scale
