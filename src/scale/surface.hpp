// Bulk surface fluxes, Beljaars-type (Table 3: "Surface flux:
// Beljaars-type").
//
// Monin-Obukhov similarity in bulk form: neutral exchange coefficients from
// the log law, corrected by Beljaars-Holtslag stability functions (stable
// side) and Dyer-Businger (unstable side) evaluated from the bulk
// Richardson number.  Momentum drag, sensible heat and latent heat are
// applied to the lowest model level; the friction velocity feeds TKE
// production in the boundary-layer scheme.
#pragma once

#include "scale/boundary_layer.hpp"
#include "scale/grid.hpp"
#include "scale/state.hpp"

namespace bda::scale {

struct SurfaceParams {
  real z0m = 0.1f;          ///< momentum roughness length [m] (land)
  real z0h = 0.01f;         ///< scalar roughness length [m]
  real t_surface = 303.0f;  ///< skin temperature [K]
  real wetness = 0.8f;      ///< surface moisture availability [0..1]
  real diurnal_amp = 0.0f;  ///< diurnal skin-temperature amplitude [K]
};

class Surface {
 public:
  Surface(const Grid& grid, SurfaceParams params = {});

  /// Apply surface fluxes over dt; optionally feed TKE production to `pbl`.
  /// `time_of_day_s` drives the diurnal cycle when diurnal_amp > 0.
  void step(State& s, real dt, BoundaryLayer* pbl = nullptr,
            real time_of_day_s = 43200.0f);

  /// Stability-corrected bulk transfer coefficients for given bulk
  /// Richardson number (exposed for unit tests of the Beljaars branch).
  static real stability_factor_momentum(real rib);
  static real stability_factor_heat(real rib);

 private:
  const Grid& grid_;
  SurfaceParams params_;
};

}  // namespace bda::scale
