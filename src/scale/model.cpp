#include "scale/model.hpp"

#include <cmath>

namespace bda::scale {

Model::Model(const Grid& grid, const Sounding& sounding, ModelConfig cfg)
    : grid_(grid), ref_(ReferenceState::build(grid_, sounding)), cfg_(cfg),
      state_(grid_), dyn_(grid_, ref_, cfg.dyn), micro_(grid_, cfg.micro),
      turb_(grid_, cfg.turb), pbl_(grid_, cfg.pbl), sfc_(grid_, cfg.sfc),
      rad_(grid_, cfg.rad) {
  state_.init_from_reference(grid_, ref_);
  state_.fill_halos_periodic();
}

void Model::set_boundary(const BoundaryDriver* driver, idx width, real tau) {
  bdy_driver_ = driver;
  bdy_width_ = width;
  bdy_tau_ = tau;
  if (driver && !bdy_state_) bdy_state_ = std::make_unique<State>(grid_);
}

void Model::step() {
  dyn_.step(state_, cfg_.dt);
  if (cfg_.enable_micro) micro_.step(state_, cfg_.dt);
  const bool full_physics = (step_count_ % cfg_.physics_every) == 0;
  if (full_physics) {
    const real pdt = cfg_.dt * real(cfg_.physics_every);
    if (cfg_.enable_turb) turb_.step(state_, pdt);
    if (cfg_.enable_pbl) pbl_.step(state_, pdt);
    if (cfg_.enable_sfc)
      sfc_.step(state_, pdt, cfg_.enable_pbl ? &pbl_ : nullptr,
                real(std::fmod(time_, 86400.0)));
    if (cfg_.enable_rad) rad_.step(state_, pdt);
  }
  if (bdy_driver_) {
    bdy_driver_->fill(time_, *bdy_state_);
    apply_davies(state_, *bdy_state_, bdy_width_, cfg_.dt, bdy_tau_);
  }
  time_ += double(cfg_.dt);
  ++step_count_;
}

void Model::advance(real duration) {
  const long n = static_cast<long>(std::floor(duration / cfg_.dt + 0.5f));
  for (long s = 0; s < n; ++s) step();
}

}  // namespace bda::scale
