// Smagorinsky-type subgrid turbulence (Table 3: "Turbulence:
// Smagorinsky-type").
//
// Eddy viscosity K = (Cs * Delta)^2 |S| from the resolved deformation,
// applied as down-gradient diffusion of momentum, heat and moisture.  At a
// 500-m grid spacing this is the dominant subgrid mixing outside the
// boundary layer (which the TKE scheme handles).
#pragma once

#include "scale/grid.hpp"
#include "scale/state.hpp"
#include "util/field.hpp"

namespace bda::scale {

struct TurbParams {
  real cs = 0.18f;          ///< Smagorinsky constant
  real prandtl = 0.7f;      ///< turbulent Prandtl number (K_h = K_m / Pr)
  real k_max = 400.0f;      ///< viscosity cap [m2/s] for robustness
};

class Turbulence {
 public:
  Turbulence(const Grid& grid, TurbParams params = {});

  /// Apply one diffusion step (explicit, operator-split).
  void step(State& s, real dt);

  /// Eddy viscosity of the last step (diagnostic, cell centers).
  const RField3D& k_m() const { return km_; }

 private:
  void compute_viscosity(const State& s);

  const Grid& grid_;
  TurbParams params_;
  RField3D km_;
};

}  // namespace bda::scale
