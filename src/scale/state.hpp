// Prognostic model state (flux form, Arakawa C staggering).
//
// Prognostic set mirrors SCALE-RM:
//   dens        rho              cell centers
//   momx        rho*u            x-faces (index i holds face i+1/2)
//   momy        rho*v            y-faces (index j holds face j+1/2)
//   momz        rho*w            z-faces (nz+1 levels; 0 and nz are rigid)
//   rhot        rho*theta        cell centers
//   rhoq[0..5]  rho*q_x          cell centers; vapor, cloud, rain, ice,
//                                snow, graupel (single-moment 6-category)
// Diagnostics (pressure, temperature, velocities at centers) are derived.
#pragma once

#include <array>
#include <string>

#include "scale/grid.hpp"
#include "scale/reference.hpp"
#include "util/field.hpp"

namespace bda::scale {

/// Hydrometeor/tracer category order for rhoq.
enum Tracer : int { QV = 0, QC, QR, QI, QS, QG, kNumTracers };

/// Human-readable tracer names, aligned with enum Tracer.
const char* tracer_name(int t);

struct State {
  State() = default;
  explicit State(const Grid& grid);

  RField3D dens;   ///< [kg/m3], centers
  RField3D momx;   ///< [kg/m2/s], x-faces
  RField3D momy;   ///< [kg/m2/s], y-faces
  RField3D momz;   ///< [kg/m2/s], z-faces, nz+1 levels
  RField3D rhot;   ///< [kg K/m3], centers
  std::array<RField3D, kNumTracers> rhoq;  ///< [kg/m3], centers

  idx nx = 0, ny = 0, nz = 0;

  /// Initialize to the horizontally uniform hydrostatic reference at rest.
  void init_from_reference(const Grid& grid, const ReferenceState& ref);

  /// Fill all horizontal halos (periodic or clamped).
  void fill_halos_periodic();
  void fill_halos_clamp();

  /// Diagnostics at a cell (i, j, k).
  real theta(idx i, idx j, idx k) const { return rhot(i, j, k) / dens(i, j, k); }
  real q(int tracer, idx i, idx j, idx k) const {
    return rhoq[tracer](i, j, k) / dens(i, j, k);
  }
  /// Full pressure from the equation of state p = p00 (R rhot / p00)^(cp/cv).
  real pressure(idx i, idx j, idx k) const;
  real temperature(idx i, idx j, idx k) const;
  /// Velocities interpolated to cell centers.
  real u(idx i, idx j, idx k) const;
  real v(idx i, idx j, idx k) const;
  real w(idx i, idx j, idx k) const;

  /// Total dry + moist mass in the interior [kg/m3 * cells] (for the
  /// conservation property tests; multiply by cell volume for kg).
  double total_mass() const;
  /// Total water (all categories) [kg/m3 * cells].
  double total_water() const;

  /// True if any prognostic value is NaN/Inf (used by stability tests and
  /// the operational watchdog).
  [[nodiscard]] bool has_nonfinite() const;

  /// Elementwise linear combination: this = a*this + b*other (all fields).
  void axpby(real a, real b, const State& other);
};

}  // namespace bda::scale
