// Thermodynamic sounding diagnostics.
//
// CAPE (convective available potential energy) and CIN (convective
// inhibition) quantify how much buoyant energy a lifted surface parcel can
// release — the discriminator between environments that can sustain the
// paper's July-2021 torrential rains and those that cannot.  Used to
// characterize the synthetic soundings (the nature-run environment must be
// conditionally unstable) and as a forecast diagnostic.
#pragma once

#include "scale/grid.hpp"
#include "scale/reference.hpp"
#include "scale/state.hpp"

namespace bda::scale {

struct ParcelDiagnostics {
  real cape = 0;      ///< [J/kg] integrated positive buoyancy
  real cin = 0;       ///< [J/kg] magnitude of negative area below the LFC
  real lcl = 0;       ///< lifted condensation level [m] (0 if none found)
  real lfc = 0;       ///< level of free convection [m] (0 if none)
  real el = 0;        ///< equilibrium level [m] (0 if none)
};

/// Lift the lowest-level parcel of a reference column pseudo-adiabatically
/// (dry to the LCL, moist above) and integrate parcel-minus-environment
/// virtual-temperature buoyancy over the grid column.
ParcelDiagnostics parcel_diagnostics(const Grid& grid,
                                     const ReferenceState& ref);

/// Same computation from a model column at (i, j) of a State.
ParcelDiagnostics parcel_diagnostics(const Grid& grid, const State& s,
                                     idx i, idx j);

/// Moist-adiabatic temperature lapse rate [K/m] at (T, p): the saturated
/// parcel's cooling rate, used by the lifting integration (exposed for
/// tests: must be smaller than the dry rate and approach it aloft).
real moist_lapse_rate(real temperature, real pressure);

}  // namespace bda::scale
