// Ensemble of model trajectories.
//
// The paper runs 1000 members for the 30-second cycle forecasts (<1-2>) and
// 11 members (mean + 10 random analyses) for the 30-minute product forecast
// (<2>).  Members here share one dynamics/turbulence engine (their scratch
// buffers dominate memory and are trajectory-independent); per-member
// trajectory state — the prognostic State, boundary-layer TKE and
// accumulated precipitation — is kept per member.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "scale/boundary.hpp"
#include "scale/boundary_layer.hpp"
#include "scale/dynamics.hpp"
#include "scale/microphysics.hpp"
#include "scale/model.hpp"
#include "scale/radiation.hpp"
#include "scale/surface.hpp"
#include "scale/turbulence.hpp"
#include "util/rng.hpp"

namespace bda::scale {

/// Amplitudes for the additive initial/boundary ensemble perturbations
/// (paper Fig 3: "additive ensemble perturbations" seed the outer-domain
/// ensemble).  Perturbations are spatially smooth: white noise generated on
/// a coarsened grid and bilinearly interpolated.
struct PerturbationSpec {
  real theta_amp = 0.3f;   ///< potential temperature [K]
  real qv_frac = 0.05f;    ///< fractional vapor perturbation
  real wind_amp = 0.5f;    ///< horizontal momentum / density [m/s]
  idx coarsen = 4;         ///< smoothness: noise grid coarsening factor
  real zmax = 6000.0f;     ///< perturb below this height only
};

/// One rank's private engine set for the sharded (member-block) advance.
/// The shared Ensemble engines are scratch-only (no trajectory state), so a
/// freshly constructed replica steps a member to bitwise-identical state —
/// that is what lets ranks advance disjoint member blocks concurrently.
struct ShardEngines {
  ShardEngines(const Grid& grid, const ReferenceState& ref,
               const ModelConfig& cfg)
      : dyn(grid, ref, cfg.dyn), turb(grid, cfg.turb), sfc(grid, cfg.sfc),
        rad(grid, cfg.rad) {}

  Dynamics dyn;
  Turbulence turb;
  Surface sfc;
  Radiation rad;
  /// Per-rank boundary scratch (allocated by make_shard_engines iff a
  /// boundary driver is attached; BoundaryDriver::fill is a deterministic
  /// function of time, so every rank's copy holds identical bytes).
  std::unique_ptr<State> bdy_state;
};

class Ensemble {
 public:
  Ensemble(const Grid& grid, const Sounding& sounding, ModelConfig cfg,
           int n_members);
  Ensemble(const Ensemble&) = delete;
  Ensemble& operator=(const Ensemble&) = delete;

  int size() const { return static_cast<int>(members_.size()); }
  State& member(int m) { return members_[static_cast<std::size_t>(m)]; }
  const State& member(int m) const {
    return members_[static_cast<std::size_t>(m)];
  }
  const Grid& grid() const { return grid_; }
  const ReferenceState& reference() const { return ref_; }
  double time() const { return time_; }
  void set_time(double t) { time_ = t; }

  /// Apply independent smooth perturbations to every member.
  void perturb(const PerturbationSpec& spec, Rng& rng);

  /// Integrate all members forward by `duration` seconds.
  void advance(real duration);

  /// Sharded advance, used by hpc::ShardedEngine.  Each rank builds its own
  /// engine replica once, then per cycle advances a disjoint member block
  /// [m0, m1) — safe concurrently because blocks touch disjoint member and
  /// microphysics/PBL state and `eng` is rank-private.  advance_block does
  /// NOT move the ensemble clock; after all blocks finish, exactly one
  /// caller commits the time/step-count advance:
  ///
  ///   auto eng = ens.make_shard_engines();      // once per rank
  ///   ens.advance_block(dt_total, m0, m1, *eng);  // every rank
  ///   ens.commit_advance(dt_total);             // once, after a barrier
  ///
  /// advance(d) == { advance_block(d, 0, size()); commit_advance(d); } with
  /// the shared engines, so serial and sharded trajectories are bitwise
  /// identical.
  std::unique_ptr<ShardEngines> make_shard_engines() const;
  void advance_block(real duration, int m0, int m1, ShardEngines& eng);
  void commit_advance(real duration);

  /// Ensemble mean state (all prognostic fields).
  State mean() const;

  /// Attach a shared lateral boundary driver (Davies rim, as in Model).
  void set_boundary(const BoundaryDriver* driver, idx width = 5,
                    real tau = 10.0f);

  /// Accumulated surface precipitation of member m [mm].
  const RField2D& precip(int m) const {
    return micro_[static_cast<std::size_t>(m)]->accumulated_precip();
  }

 private:
  /// Shared inner loop of advance() and advance_block(): steps members
  /// [m0, m1) with the given engines against local copies of the clock.
  void advance_members(real duration, std::size_t m0, std::size_t m1,
                       Dynamics& dyn, Turbulence& turb, Surface& sfc,
                       Radiation& rad, State* bdy_scratch);

  Grid grid_;
  ReferenceState ref_;
  ModelConfig cfg_;
  double time_ = 0.0;
  long step_count_ = 0;

  Dynamics dyn_;       // shared engine (scratch only, no trajectory state)
  Turbulence turb_;    // shared (km_ is recomputed every call)
  Surface sfc_;
  Radiation rad_;
  std::vector<State> members_;
  std::vector<std::unique_ptr<Microphysics>> micro_;
  std::vector<std::unique_ptr<BoundaryLayer>> pbl_;

  const BoundaryDriver* bdy_driver_ = nullptr;
  idx bdy_width_ = 5;
  real bdy_tau_ = 10.0f;
  std::unique_ptr<State> bdy_state_;
};

/// Smooth random field on [0, nx) x [0, ny): white noise on a coarsened
/// grid, bilinearly interpolated (shared helper, also used for the LETKF
/// OSSE tests).
RField2D smooth_noise(idx nx, idx ny, idx coarsen, Rng& rng);

}  // namespace bda::scale
