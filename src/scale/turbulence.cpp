#include "scale/turbulence.hpp"

#include <algorithm>
#include <cmath>

namespace bda::scale {

Turbulence::Turbulence(const Grid& grid, TurbParams params)
    : grid_(grid), params_(params),
      km_(grid.nx(), grid.ny(), grid.nz(), Grid::kHalo) {}

void Turbulence::compute_viscosity(const State& s) {
  const idx nx = s.nx, ny = s.ny, nz = s.nz;
  const real rdx = real(1) / grid_.dx();
#pragma omp parallel for collapse(2)
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j)
      for (idx k = 0; k < nz; ++k) {
        // Deformation from centered differences of cell-center velocities.
        const real dudx = (s.u(i + 1, j, k) - s.u(i - 1, j, k)) * rdx * 0.5f;
        const real dvdy = (s.v(i, j + 1, k) - s.v(i, j - 1, k)) * rdx * 0.5f;
        const real dudy = (s.u(i, j + 1, k) - s.u(i, j - 1, k)) * rdx * 0.5f;
        const real dvdx = (s.v(i + 1, j, k) - s.v(i - 1, j, k)) * rdx * 0.5f;
        real dudz = 0, dvdz = 0, dwdz = 0;
        if (k > 0 && k + 1 < nz) {
          const real rdz = real(1) / (grid_.zc(k + 1) - grid_.zc(k - 1));
          dudz = (s.u(i, j, k + 1) - s.u(i, j, k - 1)) * rdz;
          dvdz = (s.v(i, j, k + 1) - s.v(i, j, k - 1)) * rdz;
          dwdz = (s.w(i, j, k + 1) - s.w(i, j, k - 1)) * rdz;
        }
        const real s2 = 2 * (dudx * dudx + dvdy * dvdy + dwdz * dwdz) +
                        (dudy + dvdx) * (dudy + dvdx) + dudz * dudz +
                        dvdz * dvdz;
        const real smag = std::sqrt(std::max(s2, real(0)));
        const real delta = std::cbrt(grid_.dx() * grid_.dx() * grid_.dz(k));
        const real cs_d = params_.cs * delta;
        km_(i, j, k) = std::min(cs_d * cs_d * smag, params_.k_max);
      }
  km_.fill_halo_clamp();
}

void Turbulence::step(State& s, real dt) {
  compute_viscosity(s);
  const idx nx = s.nx, ny = s.ny, nz = s.nz;
  const real rdx2 = real(1) / (grid_.dx() * grid_.dx());
  const real kh_fac = real(1) / params_.prandtl;

  // Down-gradient diffusion of a cell-centered specific quantity
  // phi = f / dens: d(f)/dt = div(dens K grad phi).  Explicit; the
  // viscosity cap keeps the diffusion number < 1/6 at our time steps.
  auto diffuse = [&](RField3D& f, real fac) {
    // Work on a copy of phi so the update is Jacobi-style.
    RField3D phi(nx, ny, nz, Grid::kHalo);
    for (idx i = -Grid::kHalo; i < nx + Grid::kHalo; ++i)
      for (idx j = -Grid::kHalo; j < ny + Grid::kHalo; ++j)
        for (idx k = 0; k < nz; ++k)
          phi(i, j, k) = f(i, j, k) / s.dens(i, j, k);
#pragma omp parallel for collapse(2)
    for (idx i = 0; i < nx; ++i)
      for (idx j = 0; j < ny; ++j)
        for (idx k = 0; k < nz; ++k) {
          const real rho_k = s.dens(i, j, k) * fac;
          auto kf = [&](idx ii, idx jj, idx kk) {
            return real(0.5) * (km_(i, j, k) + km_(ii, jj, kk));
          };
          real flux = 0;
          flux += kf(i + 1, j, k) * (phi(i + 1, j, k) - phi(i, j, k)) * rdx2;
          flux -= kf(i - 1, j, k) * (phi(i, j, k) - phi(i - 1, j, k)) * rdx2;
          flux += kf(i, j + 1, k) * (phi(i, j + 1, k) - phi(i, j, k)) * rdx2;
          flux -= kf(i, j - 1, k) * (phi(i, j, k) - phi(i, j - 1, k)) * rdx2;
          if (k + 1 < nz)
            flux += kf(i, j, k + 1) * (phi(i, j, k + 1) - phi(i, j, k)) /
                    (grid_.dzf(k + 1) * grid_.dz(k));
          if (k > 0)
            flux -= kf(i, j, k - 1) * (phi(i, j, k) - phi(i, j, k - 1)) /
                    (grid_.dzf(k) * grid_.dz(k));
          f(i, j, k) += dt * rho_k * flux;
        }
  };

  // Momentum: diffuse cell-center velocities is inexact on the C grid; we
  // diffuse the staggered momenta directly treating them as located scalars
  // (acceptable for a smooth K field).
  s.fill_halos_clamp();
  diffuse(s.momx, 1.0f);
  diffuse(s.momy, 1.0f);
  diffuse(s.rhot, kh_fac);
  for (int t = 0; t < kNumTracers; ++t) diffuse(s.rhoq[t], kh_fac);
}

}  // namespace bda::scale
