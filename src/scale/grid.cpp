#include "scale/grid.hpp"

#include <cassert>
#include <cmath>

namespace bda::scale {

Grid::Grid(idx nx, idx ny, idx nz, real dx, real ztop)
    : nx_(nx), ny_(ny), nz_(nz), dx_(dx) {
  assert(nx > 0 && ny > 0 && nz > 0 && dx > 0 && ztop > 0);
  zf_.resize(static_cast<std::size_t>(nz + 1));
  for (idx k = 0; k <= nz; ++k)
    zf_[static_cast<std::size_t>(k)] = ztop * real(k) / real(nz);
  zc_.resize(static_cast<std::size_t>(nz));
  dz_.resize(static_cast<std::size_t>(nz));
  for (idx k = 0; k < nz; ++k) {
    zc_[k] = real(0.5) * (zf_[k] + zf_[k + 1]);
    dz_[k] = zf_[k + 1] - zf_[k];
  }
  dzf_.assign(static_cast<std::size_t>(nz), real(0));
  for (idx k = 1; k < nz; ++k) dzf_[k] = zc_[k] - zc_[k - 1];
}

Grid Grid::stretched(idx nx, idx ny, idx nz, real dx, real ztop, real dz0,
                     real stretch) {
  Grid g(nx, ny, nz, dx, ztop);
  // Geometric thickness profile rescaled to exactly reach ztop.
  std::vector<real> dz(static_cast<std::size_t>(nz));
  real sum = 0;
  real d = dz0;
  for (idx k = 0; k < nz; ++k) {
    dz[k] = d;
    sum += d;
    d *= stretch;
  }
  const real scale = ztop / sum;
  g.zf_[0] = 0;
  for (idx k = 0; k < nz; ++k) g.zf_[k + 1] = g.zf_[k] + dz[k] * scale;
  for (idx k = 0; k < nz; ++k) {
    g.zc_[k] = real(0.5) * (g.zf_[k] + g.zf_[k + 1]);
    g.dz_[k] = g.zf_[k + 1] - g.zf_[k];
  }
  for (idx k = 1; k < nz; ++k) g.dzf_[k] = g.zc_[k] - g.zc_[k - 1];
  return g;
}

Grid Grid::with_faces(idx nx, idx ny, real dx, const std::vector<real>& zf) {
  assert(zf.size() >= 2 && zf.front() == real(0));
  const idx nz = static_cast<idx>(zf.size()) - 1;
  Grid g(nx, ny, nz, dx, zf.back());
  g.zf_ = zf;
  for (idx k = 0; k < nz; ++k) {
    g.zc_[k] = real(0.5) * (zf[k] + zf[k + 1]);
    g.dz_[k] = zf[k + 1] - zf[k];
    assert(g.dz_[k] > 0);
  }
  for (idx k = 1; k < nz; ++k) g.dzf_[k] = g.zc_[k] - g.zc_[k - 1];
  return g;
}

Grid Grid::paper_inner() {
  // 256 x 256 x 60, dx = 500 m, top 16.4 km; dz stretches from ~80 m near
  // the surface to ~500 m near the top, close to the operational setup.
  return stretched(256, 256, 60, 500.0f, 16400.0f, 80.0f, 1.032f);
}

Grid Grid::paper_outer() {
  // Outer domain: 1.5-km spacing, same column.  The operational outer extent
  // covers the Kanto region (Fig 3a); 256 x 256 at 1.5 km = 384 km square.
  return stretched(256, 256, 60, 1500.0f, 16400.0f, 80.0f, 1.032f);
}

}  // namespace bda::scale
