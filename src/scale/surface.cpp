#include "scale/surface.hpp"

#include <algorithm>
#include <cmath>

#include "scale/reference.hpp"

namespace bda::scale {

using C = Constants<real>;

Surface::Surface(const Grid& grid, SurfaceParams params)
    : grid_(grid), params_(params) {}

real Surface::stability_factor_momentum(real rib) {
  // Beljaars-Holtslag (1991)-inspired damping on the stable side; Dyer-type
  // enhancement on the unstable side.  Returns a multiplier on the neutral
  // coefficient.
  if (rib >= 0) {
    const real f = real(1) / (real(1) + real(10) * rib * (real(1) + real(8) * rib));
    return std::max(f, real(0.05));
  }
  return std::sqrt(real(1) - real(16) * rib);
}

real Surface::stability_factor_heat(real rib) {
  if (rib >= 0) {
    const real f = real(1) / (real(1) + real(15) * rib * (real(1) + real(8) * rib));
    return std::max(f, real(0.03));
  }
  return std::pow(real(1) - real(16) * rib, real(0.75));
}

void Surface::step(State& s, real dt, BoundaryLayer* pbl,
                   real time_of_day_s) {
  const idx nx = s.nx, ny = s.ny;
  constexpr real kappa = 0.4f;
  const real z1 = grid_.zc(0);
  const real cdn = (kappa / std::log(z1 / params_.z0m)) *
                   (kappa / std::log(z1 / params_.z0m));
  const real chn = (kappa / std::log(z1 / params_.z0m)) *
                   (kappa / std::log(z1 / params_.z0h));
  // Diurnal skin temperature: peak at local noon (43200 s).
  const real tsfc =
      params_.t_surface +
      params_.diurnal_amp *
          std::sin(real(2.0 * M_PI) * (time_of_day_s - 21600.0f) / 86400.0f);

#pragma omp parallel for collapse(2)
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j) {
      const real dens = s.dens(i, j, 0);
      const real u1 = s.u(i, j, 0);
      const real v1 = s.v(i, j, 0);
      const real wind = std::max(std::sqrt(u1 * u1 + v1 * v1), real(0.1));
      const real th1 = s.theta(i, j, 0);
      const real pres = s.pressure(i, j, 0);
      const real exner = std::pow(pres / C::pres00, C::kappa);
      const real th_sfc = tsfc / exner;

      // Bulk Richardson number of the surface layer.
      const real rib = C::grav * z1 * (th1 - th_sfc) /
                       (th1 * wind * wind);
      const real cd = cdn * stability_factor_momentum(rib);
      const real ch = chn * stability_factor_heat(rib);

      // Momentum drag (implicit factor keeps it stable for large cd|U|dt/dz).
      const real drag = cd * wind / grid_.dz(0);
      const real fac = real(1) / (real(1) + dt * drag);
      s.momx(i, j, 0) *= fac;
      s.momy(i, j, 0) *= fac;

      // Sensible heat -> theta tendency of the lowest layer.
      const real wth = ch * wind * (th_sfc - th1);  // kinematic flux [K m/s]
      s.rhot(i, j, 0) += dt * dens * wth / grid_.dz(0);

      // Latent heat: evaporation limited by surface wetness.
      const real qv1 = s.rhoq[QV](i, j, 0) / dens;
      const real qsat_s = qsat_liquid(tsfc, pres);
      const real wq =
          params_.wetness * ch * wind * std::max(qsat_s - qv1, real(0));
      const real dm = dt * dens * wq / grid_.dz(0);
      s.rhoq[QV](i, j, 0) += dm;
      s.dens(i, j, 0) += dm;  // evaporated water adds mass
      s.rhot(i, j, 0) += dm * th1;

      if (pbl) {
        const real ustar = std::sqrt(cd) * wind;
        // Surface shear production integrated over the step.
        pbl->add_surface_production(
            i, j, dt * ustar * ustar * ustar / (kappa * z1));
      }
    }
}

}  // namespace bda::scale
