#include "scale/boundary.hpp"

#include <algorithm>
#include <cmath>

namespace bda::scale {

SteadyDriver::SteadyDriver(const Grid& grid, const ReferenceState& ref,
                           real u_mean, real v_mean)
    : grid_(grid), ref_(ref), u_mean_(u_mean), v_mean_(v_mean) {}

void SteadyDriver::fill(double /*time_s*/, State& bc) const {
  bc.init_from_reference(grid_, ref_);
  for (idx i = 0; i < bc.nx; ++i)
    for (idx j = 0; j < bc.ny; ++j)
      for (idx k = 0; k < bc.nz; ++k) {
        bc.momx(i, j, k) = ref_.dens[k] * u_mean_;
        bc.momy(i, j, k) = ref_.dens[k] * v_mean_;
      }
  bc.fill_halos_clamp();
}

SyntheticMesoscaleDriver::SyntheticMesoscaleDriver(const Grid& grid,
                                                   const ReferenceState& ref,
                                                   real u_base, real v_base,
                                                   double refresh_s)
    : grid_(grid), ref_(ref), u_base_(u_base), v_base_(v_base),
      refresh_s_(refresh_s) {}

void SyntheticMesoscaleDriver::fill(double time_s, State& bc) const {
  // Quantize to the 3-hourly refresh: boundary files change discretely.
  const double t = std::floor(time_s / refresh_s_) * refresh_s_;
  // Mean wind veers over ~12 h; low-level moisture surges over ~8 h (a
  // period deliberately incommensurate with the 3-h refresh so quantized
  // samples do not alias onto the zero crossings).
  const real ang = real(2.0 * M_PI * t / 43200.0);
  const real u = u_base_ * std::cos(ang * 0.3f) - v_base_ * std::sin(ang * 0.3f);
  const real v = u_base_ * std::sin(ang * 0.3f) + v_base_ * std::cos(ang * 0.3f);
  const real moist = real(1.0) + real(0.15) * std::sin(real(2.0 * M_PI * t / 28800.0));

  bc.init_from_reference(grid_, ref_);
  for (idx i = 0; i < bc.nx; ++i)
    for (idx j = 0; j < bc.ny; ++j)
      for (idx k = 0; k < bc.nz; ++k) {
        bc.momx(i, j, k) = ref_.dens[k] * u;
        bc.momy(i, j, k) = ref_.dens[k] * v;
        if (grid_.zc(k) < 2000.0f) {
          const real dq = ref_.dens[k] * ref_.qv[k] * (moist - real(1));
          bc.rhoq[QV](i, j, k) += dq;
          bc.dens(i, j, k) += dq;
          bc.rhot(i, j, k) += dq * ref_.theta[k];
        }
      }
  bc.fill_halos_clamp();
}

void apply_davies(State& s, const State& bc, idx width, real dt, real tau) {
  const idx nx = s.nx, ny = s.ny, nz = s.nz;
  auto blend = [&](RField3D& f, const RField3D& fb, idx nlev) {
#pragma omp parallel for collapse(2)
    for (idx i = 0; i < nx; ++i)
      for (idx j = 0; j < ny; ++j) {
        const idx dist = std::min(std::min(i, nx - 1 - i),
                                  std::min(j, ny - 1 - j));
        if (dist >= width) continue;
        const real r = real(1) - real(dist) / real(width);
        const real alpha = std::min(dt / tau * r * r, real(1));
        for (idx k = 0; k < nlev; ++k)
          f(i, j, k) += alpha * (fb(i, j, k) - f(i, j, k));
      }
  };
  blend(s.dens, bc.dens, nz);
  blend(s.momx, bc.momx, nz);
  blend(s.momy, bc.momy, nz);
  blend(s.momz, bc.momz, nz + 1);
  blend(s.rhot, bc.rhot, nz);
  for (int t = 0; t < kNumTracers; ++t) blend(s.rhoq[t], bc.rhoq[t], nz);
}

void nest_interpolate(const State& coarse, const Grid& coarse_grid,
                      State& fine, const Grid& fine_grid) {
  // Fine domain centered in the coarse domain.
  const real x_off = real(0.5) * (coarse_grid.extent_x() - fine_grid.extent_x());
  const real y_off = real(0.5) * (coarse_grid.extent_y() - fine_grid.extent_y());
  const idx cnx = coarse_grid.nx(), cny = coarse_grid.ny();

  auto sample = [&](const RField3D& cf, real x, real y, idx k) {
    // Bilinear in the horizontal on cell centers, clamped at the edge.
    const real gx = x / coarse_grid.dx() - real(0.5);
    const real gy = y / coarse_grid.dx() - real(0.5);
    idx i0 = static_cast<idx>(std::floor(gx));
    idx j0 = static_cast<idx>(std::floor(gy));
    const real fx = gx - real(i0);
    const real fy = gy - real(j0);
    i0 = std::clamp<idx>(i0, 0, cnx - 2);
    j0 = std::clamp<idx>(j0, 0, cny - 2);
    return (cf(i0, j0, k) * (1 - fx) + cf(i0 + 1, j0, k) * fx) * (1 - fy) +
           (cf(i0, j0 + 1, k) * (1 - fx) + cf(i0 + 1, j0 + 1, k) * fx) * fy;
  };

  auto interp = [&](const RField3D& cf, RField3D& ff, idx nlev) {
#pragma omp parallel for collapse(2)
    for (idx i = 0; i < fine.nx; ++i)
      for (idx j = 0; j < fine.ny; ++j) {
        const real x = x_off + fine_grid.xc(i);
        const real y = y_off + fine_grid.yc(j);
        for (idx k = 0; k < nlev; ++k) ff(i, j, k) = sample(cf, x, y, k);
      }
  };

  interp(coarse.dens, fine.dens, fine.nz);
  interp(coarse.momx, fine.momx, fine.nz);
  interp(coarse.momy, fine.momy, fine.nz);
  interp(coarse.momz, fine.momz, fine.nz + 1);
  interp(coarse.rhot, fine.rhot, fine.nz);
  for (int t = 0; t < kNumTracers; ++t)
    interp(coarse.rhoq[t], fine.rhoq[t], fine.nz);
  fine.fill_halos_clamp();
}

}  // namespace bda::scale
