#include "scale/ensemble.hpp"

#include <cmath>

namespace bda::scale {

RField2D smooth_noise(idx nx, idx ny, idx coarsen, Rng& rng) {
  const idx cnx = std::max<idx>(nx / coarsen + 2, 2);
  const idx cny = std::max<idx>(ny / coarsen + 2, 2);
  RField2D coarse(cnx, cny, 0);
  for (idx i = 0; i < cnx; ++i)
    for (idx j = 0; j < cny; ++j) coarse(i, j) = real(rng.normal());
  RField2D out(nx, ny, 0);
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j) {
      const real gx = real(i) / real(coarsen);
      const real gy = real(j) / real(coarsen);
      idx i0 = static_cast<idx>(gx);
      idx j0 = static_cast<idx>(gy);
      i0 = std::min(i0, cnx - 2);
      j0 = std::min(j0, cny - 2);
      const real fx = gx - real(i0);
      const real fy = gy - real(j0);
      out(i, j) =
          (coarse(i0, j0) * (1 - fx) + coarse(i0 + 1, j0) * fx) * (1 - fy) +
          (coarse(i0, j0 + 1) * (1 - fx) + coarse(i0 + 1, j0 + 1) * fx) * fy;
    }
  return out;
}

Ensemble::Ensemble(const Grid& grid, const Sounding& sounding,
                   ModelConfig cfg, int n_members)
    : grid_(grid), ref_(ReferenceState::build(grid_, sounding)), cfg_(cfg),
      dyn_(grid_, ref_, cfg.dyn), turb_(grid_, cfg.turb),
      sfc_(grid_, cfg.sfc), rad_(grid_, cfg.rad) {
  members_.reserve(static_cast<std::size_t>(n_members));
  for (int m = 0; m < n_members; ++m) {
    members_.emplace_back(grid_);
    members_.back().init_from_reference(grid_, ref_);
    members_.back().fill_halos_periodic();
    micro_.push_back(std::make_unique<Microphysics>(grid_, cfg.micro));
    pbl_.push_back(std::make_unique<BoundaryLayer>(grid_, cfg.pbl));
  }
}

void Ensemble::perturb(const PerturbationSpec& spec, Rng& rng) {
  for (auto& s : members_) {
    // One smooth noise pattern per variable per member; vertical weight
    // tapers to zero at spec.zmax.
    const RField2D nth = smooth_noise(s.nx, s.ny, spec.coarsen, rng);
    const RField2D nqv = smooth_noise(s.nx, s.ny, spec.coarsen, rng);
    const RField2D nu = smooth_noise(s.nx, s.ny, spec.coarsen, rng);
    const RField2D nv = smooth_noise(s.nx, s.ny, spec.coarsen, rng);
    for (idx i = 0; i < s.nx; ++i)
      for (idx j = 0; j < s.ny; ++j)
        for (idx k = 0; k < s.nz; ++k) {
          const real z = grid_.zc(k);
          if (z > spec.zmax) break;
          const real wz = real(1) - z / spec.zmax;
          const real dens = s.dens(i, j, k);
          s.rhot(i, j, k) += dens * spec.theta_amp * wz * nth(i, j);
          const real dq = s.rhoq[QV](i, j, k) * spec.qv_frac * wz * nqv(i, j);
          s.rhoq[QV](i, j, k) += dq;
          s.dens(i, j, k) += dq;
          s.momx(i, j, k) += dens * spec.wind_amp * wz * nu(i, j);
          s.momy(i, j, k) += dens * spec.wind_amp * wz * nv(i, j);
        }
    s.fill_halos_periodic();
  }
}

void Ensemble::advance_members(real duration, std::size_t m0,
                               std::size_t m1, Dynamics& dyn,
                               Turbulence& turb, Surface& sfc, Radiation& rad,
                               State* bdy_scratch) {
  const long nsteps =
      static_cast<long>(std::floor(duration / cfg_.dt + 0.5f));
  // Local clock copies: every member block replays the same step sequence;
  // commit_advance moves the shared clock once all blocks are done.
  double t = time_;
  long sc = step_count_;
  for (long n = 0; n < nsteps; ++n) {
    const bool full_physics = (sc % cfg_.physics_every) == 0;
    const real pdt = cfg_.dt * real(cfg_.physics_every);
    if (bdy_driver_ && bdy_scratch) bdy_driver_->fill(t, *bdy_scratch);
    for (std::size_t m = m0; m < m1; ++m) {
      State& s = members_[m];
      dyn.step(s, cfg_.dt);
      if (cfg_.enable_micro) micro_[m]->step(s, cfg_.dt);
      if (full_physics) {
        if (cfg_.enable_turb) turb.step(s, pdt);
        if (cfg_.enable_pbl) pbl_[m]->step(s, pdt);
        if (cfg_.enable_sfc)
          sfc.step(s, pdt, cfg_.enable_pbl ? pbl_[m].get() : nullptr,
                   real(std::fmod(t, 86400.0)));
        if (cfg_.enable_rad) rad.step(s, pdt);
      }
      if (bdy_driver_ && bdy_scratch)
        apply_davies(s, *bdy_scratch, bdy_width_, cfg_.dt, bdy_tau_);
    }
    t += double(cfg_.dt);
    ++sc;
  }
}

void Ensemble::advance(real duration) {
  if (bdy_driver_ && !bdy_state_) bdy_state_ = std::make_unique<State>(grid_);
  advance_members(duration, 0, members_.size(), dyn_, turb_, sfc_, rad_,
                  bdy_state_.get());
  commit_advance(duration);
}

std::unique_ptr<ShardEngines> Ensemble::make_shard_engines() const {
  auto eng = std::make_unique<ShardEngines>(grid_, ref_, cfg_);
  if (bdy_driver_) eng->bdy_state = std::make_unique<State>(grid_);
  return eng;
}

void Ensemble::advance_block(real duration, int m0, int m1,
                             ShardEngines& eng) {
  advance_members(duration, static_cast<std::size_t>(m0),
                  static_cast<std::size_t>(m1), eng.dyn, eng.turb, eng.sfc,
                  eng.rad, eng.bdy_state.get());
}

void Ensemble::commit_advance(real duration) {
  const long nsteps =
      static_cast<long>(std::floor(duration / cfg_.dt + 0.5f));
  // Same accumulation as the per-step loop (repeated adds, not one fused
  // multiply-add) so the clock stays bitwise on the historical trajectory.
  for (long n = 0; n < nsteps; ++n) time_ += double(cfg_.dt);
  step_count_ += nsteps;
}

State Ensemble::mean() const {
  State m(grid_);
  m.fill_halos_periodic();
  const real w = real(1) / real(members_.size());
  auto acc = [&](RField3D& dst, const RField3D& src) {
    auto d = dst.raw();
    auto s = src.raw();
    for (std::size_t n = 0; n < d.size(); ++n) d[n] += w * s[n];
  };
  // Zero, then accumulate.
  m.dens.fill(0);
  m.momx.fill(0);
  m.momy.fill(0);
  m.momz.fill(0);
  m.rhot.fill(0);
  for (auto& q : m.rhoq) q.fill(0);
  for (const auto& s : members_) {
    acc(m.dens, s.dens);
    acc(m.momx, s.momx);
    acc(m.momy, s.momy);
    acc(m.momz, s.momz);
    acc(m.rhot, s.rhot);
    for (int t = 0; t < kNumTracers; ++t) acc(m.rhoq[t], s.rhoq[t]);
  }
  return m;
}

void Ensemble::set_boundary(const BoundaryDriver* driver, idx width,
                            real tau) {
  bdy_driver_ = driver;
  bdy_width_ = width;
  bdy_tau_ = tau;
}

}  // namespace bda::scale
