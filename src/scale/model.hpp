// Single-trajectory model: dynamics plus the full physics suite behind one
// `step()` call.  This is the deterministic building block; ensembles use
// scale::Ensemble, which shares the dynamics scratch between members.
#pragma once

#include <memory>

#include "scale/boundary.hpp"
#include "scale/boundary_layer.hpp"
#include "scale/dynamics.hpp"
#include "scale/grid.hpp"
#include "scale/microphysics.hpp"
#include "scale/radiation.hpp"
#include "scale/reference.hpp"
#include "scale/state.hpp"
#include "scale/surface.hpp"
#include "scale/turbulence.hpp"

namespace bda::scale {

struct ModelConfig {
  real dt = 0.4f;  ///< dynamics time step [s] (Table 3 value)
  DynParams dyn;
  MicroParams micro;
  TurbParams turb;
  PblParams pbl;
  SurfaceParams sfc;
  RadParams rad;
  bool enable_micro = true;
  bool enable_turb = true;
  bool enable_pbl = true;
  bool enable_sfc = true;
  bool enable_rad = true;
  /// Physics are sub-cycled: called every `physics_every` dynamics steps
  /// (microphysics always runs every step; it controls precipitation).
  int physics_every = 5;
};

class Model {
 public:
  Model(const Grid& grid, const Sounding& sounding, ModelConfig cfg = {});
  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  /// One dynamics step (cfg.dt) plus operator-split physics.
  void step();
  /// Integrate for `duration` seconds (rounded down to whole steps).
  void advance(real duration);

  State& state() { return state_; }
  const State& state() const { return state_; }
  const Grid& grid() const { return grid_; }
  const ReferenceState& reference() const { return ref_; }
  const ModelConfig& config() const { return cfg_; }
  double time() const { return time_; }
  void set_time(double t) { time_ = t; }
  Microphysics& microphysics() { return micro_; }

  /// Attach a lateral boundary driver (regional mode).  The model relaxes a
  /// `width`-cell rim toward the driver state with time scale `tau` after
  /// every step.  Pass nullptr to detach (periodic mode).
  void set_boundary(const BoundaryDriver* driver, idx width = 5,
                    real tau = 10.0f);

 private:
  Grid grid_;
  ReferenceState ref_;
  ModelConfig cfg_;
  State state_;
  Dynamics dyn_;
  Microphysics micro_;
  Turbulence turb_;
  BoundaryLayer pbl_;
  Surface sfc_;
  Radiation rad_;
  double time_ = 0.0;
  long step_count_ = 0;

  const BoundaryDriver* bdy_driver_ = nullptr;
  idx bdy_width_ = 5;
  real bdy_tau_ = 10.0f;
  std::unique_ptr<State> bdy_state_;
};

}  // namespace bda::scale
