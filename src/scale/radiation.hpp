// Gray-atmosphere radiation.
//
// The operational system runs MstrnX (Sekiguchi & Nakajima 2008), a
// k-distribution broadband code.  Within a 30-minute convective forecast
// the radiative tendency is a small, smooth forcing, so we substitute a
// two-component gray scheme: clear-sky longwave cooling through the
// troposphere plus cloud-top cooling where condensate is present
// (DESIGN.md records the substitution).  The column scan and per-cell
// tendency application exercise the same code path and cost profile as a
// cheap radiation call.
#pragma once

#include "scale/grid.hpp"
#include "scale/state.hpp"

namespace bda::scale {

struct RadParams {
  real clear_sky_cooling = 1.5f;   ///< tropospheric LW cooling [K/day]
  real cloud_top_cooling = 30.0f;  ///< extra cooling at cloud top [K/day]
  real cloud_threshold = 1.0e-5f;  ///< condensate mixing ratio for "cloudy"
  real tropopause = 12000.0f;      ///< cooling tapers to zero above [m]
};

class Radiation {
 public:
  Radiation(const Grid& grid, RadParams params = {});
  void step(State& s, real dt);

 private:
  const Grid& grid_;
  RadParams params_;
};

}  // namespace bda::scale
