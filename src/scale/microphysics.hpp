// Single-moment 6-category bulk cloud microphysics.
//
// Follows the structure of Tomita (2008), the scheme the paper runs
// (Table 3): water vapor (qv), cloud water (qc), rain (qr), cloud ice (qi),
// snow (qs) and graupel (qg).  Processes: saturation adjustment
// (condensation/evaporation of cloud, deposition/sublimation of ice),
// warm-rain autoconversion and accretion, rain evaporation, ice-phase
// conversions (freezing, riming, aggregation, graupel production), melting,
// and sedimentation with category-dependent terminal velocities.  Rate
// coefficients are the standard single-moment bulk values; they are exposed
// in MicroParams so the sensitivity benches can sweep them.
//
// Mass accounting: phase changes move mass between rhoq categories and
// deposit latent heat into rhot; sedimentation moves condensate mass
// downward through cell faces and removes it (and the same mass from total
// density) at the surface, accumulating in `accumulated_precip`.
#pragma once

#include "scale/grid.hpp"
#include "scale/state.hpp"
#include "util/field.hpp"

namespace bda::scale {

struct MicroParams {
  bool ice_enabled = true;    ///< cold-phase processes on/off (ablation)
  real qc_auto_threshold = 1.0e-3f;  ///< cloud->rain autoconversion onset
  real auto_rate = 1.0e-3f;          ///< [1/s]
  real accr_rate = 2.2f;             ///< rain collecting cloud [..]
  real evap_rate = 0.3f;             ///< rain evaporation coefficient
  real qi_auto_threshold = 0.6e-3f;  ///< ice->snow onset
  real ice_auto_rate = 1.0e-3f;      ///< [1/s]
  real rime_rate = 1.5f;             ///< snow/graupel collecting cloud
  real melt_rate = 2.0e-3f;          ///< [1/s/K]
  real freeze_rate = 1.0e-3f;        ///< rain freezing to graupel [1/s/K]
  real dep_rate = 2.0e-3f;           ///< ice/snow deposition coefficient
  real vt_rain_coef = 36.34f;        ///< Vr = c (rho qr)^0.1364 sqrt(rho0/rho)
  real vt_snow = 1.0f;               ///< [m/s]
  real vt_graupel_coef = 10.0f;      ///< Vg = c (rho qg)^0.125
  real vt_ice = 0.3f;                ///< [m/s]
  real vt_max = 12.0f;               ///< cap on any terminal velocity [m/s]
};

class Microphysics {
 public:
  Microphysics(const Grid& grid, MicroParams params = {});

  /// Apply all microphysical processes over dt (operator split from the
  /// dynamics).  Updates rhoq, rhot (latent heat), dens (precipitation
  /// mass flux out of the column) in place.
  void step(State& s, real dt);

  /// Sedimentation only (no phase changes) — exposed so tests and the
  /// fall-speed ablation can isolate the precipitation flux.
  void sediment_only(State& s, real dt) { sedimentation(s, dt); }

  /// Accumulated surface precipitation since construction [mm].
  const RField2D& accumulated_precip() const { return accum_precip_; }
  /// Precipitation rate of the last step [mm/h].
  const RField2D& last_rate() const { return last_rate_; }

  const MicroParams& params() const { return params_; }

 private:
  void phase_changes(State& s, real dt);
  void sedimentation(State& s, real dt);

  const Grid& grid_;
  MicroParams params_;
  RField2D accum_precip_;
  RField2D last_rate_;
};

/// Simulated radar reflectivity [dBZ] at a cell, from the precipitating
/// categories (Stoelinga-2005-style power laws).  Shared by the radar
/// forward operator, the verification module and the product writer.
real cell_reflectivity_dbz(const State& s, idx i, idx j, idx k);

/// Fill a 3-D field with reflectivity (interior only).
void reflectivity_field(const State& s, RField3D& out);

/// Mass-weighted hydrometeor fall speed at a cell [m/s, positive downward];
/// enters the Doppler-velocity forward operator.
real cell_fall_speed(const State& s, const MicroParams& p, idx i, idx j,
                     idx k);

}  // namespace bda::scale
