// HEVI dynamical core (horizontally explicit, vertically implicit).
//
// Fully compressible flux-form equations integrated with 3-stage
// Wicker-Skamarock Runge-Kutta.  Within each stage all horizontal terms
// (advection, pressure gradient, divergence damping, hyperdiffusion) are
// explicit; the vertically propagating acoustic/gravity terms — vertical
// pressure gradient, buoyancy, and the vertical mass/heat fluxes they feed —
// are integrated backward-Euler, reducing to one tridiagonal solve per
// column per stage.  This is the "hybrid (explicit in the horizontal,
// implicit in the vertical)" integration the paper lists in Table 3, and it
// is what allows dt = 0.4 s at dx = 500 m with ~80-m near-surface layers
// (vertical acoustic CFL > 1).
#pragma once

#include <array>

#include "scale/grid.hpp"
#include "scale/reference.hpp"
#include "scale/state.hpp"

namespace bda::scale {

enum class LateralBc {
  kPeriodic,  ///< doubly periodic (idealized tests, nature runs)
  kClamp,     ///< zero-gradient; pair with boundary::DaviesRelaxation
};

struct DynParams {
  int rk_stages = 3;           ///< 1 = forward Euler (tests), 3 = WS-RK3
  real divdamp_coef = 0.05f;   ///< 3-D divergence damping, nondimensional
  real hyperdiff_coef = 0.01f; ///< 4th-order horizontal filter, nondim
  real sponge_depth = 3000.0f; ///< Rayleigh layer below model top [m]
  real sponge_tau = 120.0f;    ///< sponge relaxation time scale [s]
  real f_coriolis = 0.0f;      ///< f-plane parameter [1/s] (0 = off)
  LateralBc lateral_bc = LateralBc::kPeriodic;
};

/// Explicit tendencies of all prognostic variables for one RK stage.
/// Vertical acoustic terms are *not* included here — the implicit solver
/// owns them.
struct Tendencies {
  explicit Tendencies(const Grid& g);
  RField3D dens, rhot, momx, momy, momz;
  std::array<RField3D, kNumTracers> rhoq;
};

class Dynamics {
 public:
  Dynamics(const Grid& grid, const ReferenceState& ref, DynParams params);

  /// Advance the state by dt.
  void step(State& s, real dt);

  const DynParams& params() const { return params_; }

  /// Exposed for unit tests: compute explicit tendencies of `in` into
  /// `tend` (assumes halos of `in` are filled).
  void compute_tendencies(const State& in, Tendencies& tend, real dt_full);

  /// Exposed for unit tests: given base state s0, stage input `in`, and its
  /// explicit tendencies, perform the backward-Euler vertical solve and
  /// write the stage result to `out` (dts = stage step).
  void vertical_implicit(const State& s0, const State& in,
                         const Tendencies& tend, real dts, State& out);

 private:
  void fill_halos(State& s) const;
  void fill_derived_halos();
  void compute_derived(const State& in);

  const Grid& grid_;
  const ReferenceState& ref_;
  DynParams params_;
  std::vector<real> pref_;  ///< reference pressure consistent with our EOS

  // Derived fields recomputed each stage (with halos).
  RField3D ufc_;    ///< u at x-faces
  RField3D vfc_;    ///< v at y-faces
  RField3D wfc_;    ///< w at z-faces (nz+1)
  RField3D th_;     ///< potential temperature at centers
  RField3D prs_;    ///< full pressure at centers
  RField3D div_;    ///< 3-D divergence of momentum at centers
  RField3D lap_;    ///< scratch Laplacian for the 4th-order filter

  // RK scratch states.
  State stage_in_, stage_out_;
  Tendencies tend_;
};

/// Add a Gaussian warm (or cold) bubble to theta: the classic trigger for an
/// idealized convective cell.  amplitude in K; radii in meters.
void add_thermal_bubble(State& s, const Grid& g, real x0, real y0, real z0,
                        real rh, real rv, real amplitude);

/// Add a moisture anomaly (fractional RH increase) in a Gaussian blob.
void add_moisture_anomaly(State& s, const Grid& g, real x0, real y0, real z0,
                          real rh, real rv, real dq);

}  // namespace bda::scale
