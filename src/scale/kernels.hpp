// Low-level numerical kernels shared by the dynamical core and the
// precision-ablation bench (bench_ablation_precision).  Templated on the
// scalar type so the identical code runs in float (the paper's production
// configuration) and double (the conventional baseline).
#pragma once

#include <cassert>
#include <cstddef>
#include <span>

namespace bda::scale {

/// 3rd-order upwind interpolation of a cell value to the face between q0 and
/// qp1, given one extra cell on each side and the advecting velocity sign.
/// This is the (K = 3) member of the standard UTOPIA/Wicker-Skamarock family:
/// it equals the 4th-order centered interpolant plus a velocity-signed
/// dissipative term, which is what keeps flux-form advection stable without
/// explicit filtering.
template <typename T>
inline T upwind3(T qm1, T q0, T qp1, T qp2, T vel) {
  constexpr T sixth = T(1) / T(6);
  return vel >= T(0) ? (-qm1 + T(5) * q0 + T(2) * qp1) * sixth
                     : (T(2) * q0 + T(5) * qp1 - qp2) * sixth;
}

/// 1st-order upwind face value (used adjacent to the vertical boundaries
/// where the 3rd-order stencil does not fit).
template <typename T>
inline T upwind1(T q0, T qp1, T vel) {
  return vel >= T(0) ? q0 : qp1;
}

/// Thomas algorithm for a tridiagonal system
///   a[i] x[i-1] + b[i] x[i] + c[i] x[i+1] = d[i],  i = 0..n-1
/// with a[0] and c[n-1] ignored.  In-place on d; c is clobbered.  The HEVI
/// vertical acoustic solve calls this once per column per RK stage.
/// Requires the system to be diagonally dominant (the acoustic system is,
/// for any time step: diagonal is 1 + positive terms).
template <typename T>
inline void solve_tridiagonal(std::span<const T> a, std::span<const T> b,
                              std::span<T> c, std::span<T> d) {
  const std::size_t n = d.size();
  assert(a.size() == n && b.size() == n && c.size() == n);
  if (n == 0) return;
  c[0] = c[0] / b[0];
  d[0] = d[0] / b[0];
  for (std::size_t i = 1; i < n; ++i) {
    const T m = T(1) / (b[i] - a[i] * c[i - 1]);
    c[i] = c[i] * m;
    d[i] = (d[i] - a[i] * d[i - 1]) * m;
  }
  for (std::size_t i = n - 1; i-- > 0;) d[i] -= c[i] * d[i + 1];
}

/// Dense symmetric matrix-vector product y = A x (row-major, n x n).
/// Hot loop of the LETKF transform; templated for the precision ablation.
template <typename T>
inline void symv(std::size_t n, const T* a, const T* x, T* y) {
  for (std::size_t i = 0; i < n; ++i) {
    T s = T(0);
    const T* row = a + i * n;
    for (std::size_t j = 0; j < n; ++j) s += row[j] * x[j];
    y[i] = s;
  }
}

/// General matrix-matrix product C = A(m x k) * B(k x n), row-major,
/// accumulating in T.  Small-matrix use only (ensemble-space products).
template <typename T>
inline void gemm(std::size_t m, std::size_t k, std::size_t n, const T* a,
                 const T* b, T* c) {
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) c[i * n + j] = T(0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t p = 0; p < k; ++p) {
      const T aip = a[i * k + p];
      const T* brow = b + p * n;
      T* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
}

}  // namespace bda::scale
