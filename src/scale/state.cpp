#include "scale/state.hpp"

#include <cmath>

namespace bda::scale {

using C = Constants<real>;

const char* tracer_name(int t) {
  static const char* names[kNumTracers] = {"qv", "qc", "qr", "qi", "qs", "qg"};
  return (t >= 0 && t < kNumTracers) ? names[t] : "??";
}

State::State(const Grid& grid)
    : dens(grid.nx(), grid.ny(), grid.nz(), Grid::kHalo),
      momx(grid.nx(), grid.ny(), grid.nz(), Grid::kHalo),
      momy(grid.nx(), grid.ny(), grid.nz(), Grid::kHalo),
      momz(grid.nx(), grid.ny(), grid.nz() + 1, Grid::kHalo),
      rhot(grid.nx(), grid.ny(), grid.nz(), Grid::kHalo),
      nx(grid.nx()), ny(grid.ny()), nz(grid.nz()) {
  for (auto& q : rhoq)
    q = RField3D(grid.nx(), grid.ny(), grid.nz(), Grid::kHalo);
}

void State::init_from_reference(const Grid& grid, const ReferenceState& ref) {
  for (idx i = -Grid::kHalo; i < nx + Grid::kHalo; ++i)
    for (idx j = -Grid::kHalo; j < ny + Grid::kHalo; ++j)
      for (idx k = 0; k < nz; ++k) {
        dens(i, j, k) = ref.dens[k];
        rhot(i, j, k) = ref.dens[k] * ref.theta[k];
        rhoq[QV](i, j, k) = ref.dens[k] * ref.qv[k];
        for (int t = QC; t < kNumTracers; ++t) rhoq[t](i, j, k) = 0;
      }
  momx.fill(0);
  momy.fill(0);
  momz.fill(0);
  (void)grid;
}

void State::fill_halos_periodic() {
  dens.fill_halo_periodic();
  momx.fill_halo_periodic();
  momy.fill_halo_periodic();
  momz.fill_halo_periodic();
  rhot.fill_halo_periodic();
  for (auto& q : rhoq) q.fill_halo_periodic();
}

void State::fill_halos_clamp() {
  dens.fill_halo_clamp();
  momx.fill_halo_clamp();
  momy.fill_halo_clamp();
  momz.fill_halo_clamp();
  rhot.fill_halo_clamp();
  for (auto& q : rhoq) q.fill_halo_clamp();
}

real State::pressure(idx i, idx j, idx k) const {
  const real rt = rhot(i, j, k);
  return C::pres00 *
         std::pow(C::rdry * rt / C::pres00, C::cp / C::cv);
}

real State::temperature(idx i, idx j, idx k) const {
  const real p = pressure(i, j, k);
  return p / (C::rdry * dens(i, j, k));
}

real State::u(idx i, idx j, idx k) const {
  // momx(i) is the face between cells i and i+1; average the two faces
  // around cell i and divide by cell density.
  const real mx = real(0.5) * (momx(i - 1, j, k) + momx(i, j, k));
  return mx / dens(i, j, k);
}

real State::v(idx i, idx j, idx k) const {
  const real my = real(0.5) * (momy(i, j - 1, k) + momy(i, j, k));
  return my / dens(i, j, k);
}

real State::w(idx i, idx j, idx k) const {
  const real mz = real(0.5) * (momz(i, j, k) + momz(i, j, k + 1));
  return mz / dens(i, j, k);
}

double State::total_mass() const {
  return dens.interior_sum();
}

double State::total_water() const {
  double s = 0.0;
  for (const auto& q : rhoq) s += q.interior_sum();
  return s;
}

bool State::has_nonfinite() const {
  auto bad = [](const RField3D& f) {
    for (real v : f.raw())
      if (!std::isfinite(v)) return true;
    return false;
  };
  if (bad(dens) || bad(momx) || bad(momy) || bad(momz) || bad(rhot))
    return true;
  for (const auto& q : rhoq)
    if (bad(q)) return true;
  return false;
}

void State::axpby(real a, real b, const State& other) {
  auto comb = [a, b](RField3D& x, const RField3D& y) {
    auto xr = x.raw();
    auto yr = y.raw();
    for (std::size_t n = 0; n < xr.size(); ++n) xr[n] = a * xr[n] + b * yr[n];
  };
  comb(dens, other.dens);
  comb(momx, other.momx);
  comb(momy, other.momy);
  comb(momz, other.momz);
  comb(rhot, other.rhot);
  for (int t = 0; t < kNumTracers; ++t) comb(rhoq[t], other.rhoq[t]);
}

}  // namespace bda::scale
