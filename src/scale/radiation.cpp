#include "scale/radiation.hpp"

#include <algorithm>
#include <cmath>

namespace bda::scale {

Radiation::Radiation(const Grid& grid, RadParams params)
    : grid_(grid), params_(params) {}

void Radiation::step(State& s, real dt) {
  const idx nx = s.nx, ny = s.ny, nz = s.nz;
  const real day = 86400.0f;
  const real clear = params_.clear_sky_cooling / day;  // K/s
  const real ctop = params_.cloud_top_cooling / day;

#pragma omp parallel for collapse(2)
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j) {
      // Find the cloud top: highest level with condensate.
      idx cloud_top = -1;
      for (idx k = nz - 1; k >= 0; --k) {
        const real cond = (s.rhoq[QC](i, j, k) + s.rhoq[QI](i, j, k)) /
                          s.dens(i, j, k);
        if (cond > params_.cloud_threshold) {
          cloud_top = k;
          break;
        }
      }
      for (idx k = 0; k < nz; ++k) {
        const real z = grid_.zc(k);
        real cool = 0;
        if (z < params_.tropopause)
          cool = clear * (real(1) - z / params_.tropopause * real(0.5));
        if (k == cloud_top) cool += ctop;
        s.rhot(i, j, k) -= dt * s.dens(i, j, k) * cool;
      }
    }
}

}  // namespace bda::scale
