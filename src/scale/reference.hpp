// Hydrostatic reference state and idealized soundings.
//
// The dynamics integrates perturbations about a hydrostatically balanced,
// horizontally uniform reference column (standard practice in nonhydrostatic
// cores: it removes the large hydrostatic terms from the vertical momentum
// equation so buoyancy appears as a small residual).  Soundings also seed
// the nature runs: `convective_sounding()` builds a conditionally unstable
// moist environment of the type that produced the July 2021 Tokyo heavy
// rains the paper evaluates on.
#pragma once

#include <vector>

#include "scale/grid.hpp"
#include "util/types.hpp"

namespace bda::scale {

/// Analytic sounding: potential temperature and relative humidity vs height.
struct Sounding {
  /// Potential temperature [K] at height z [m].
  real theta_surface = 300.0f;
  real theta_lapse_pbl = 0.001f;   ///< d(theta)/dz in the boundary layer [K/m]
  real pbl_top = 1500.0f;          ///< boundary-layer top [m]
  real theta_lapse_free = 0.0045f; ///< free-troposphere stability [K/m]
  real tropopause = 12000.0f;
  real theta_lapse_strat = 0.02f;  ///< stratospheric stability [K/m]
  real rh_surface = 0.85f;         ///< relative humidity at the surface
  real rh_free = 0.45f;            ///< RH above the boundary layer
  real rh_decay = 6000.0f;         ///< e-folding height of free-troposphere RH

  real theta(real z) const;
  real rh(real z) const;
};

/// Weakly stable dry sounding (for dynamics-only tests).
Sounding stable_sounding();

/// Conditionally unstable, moist low-level sounding able to sustain deep
/// convection (the nature-run environment).
Sounding convective_sounding();

/// Hydrostatically balanced column discretized on a grid.
struct ReferenceState {
  std::vector<real> dens;   ///< reference density at cell centers [kg/m3]
  std::vector<real> pres;   ///< reference pressure at cell centers [Pa]
  std::vector<real> theta;  ///< reference potential temperature [K]
  std::vector<real> qv;     ///< reference vapor mixing ratio [kg/kg]

  /// Integrate hydrostatic balance dp/dz = -rho g upward from surface
  /// pressure `ps`, given the sounding's theta(z) and moisture.
  static ReferenceState build(const Grid& grid, const Sounding& snd,
                              real ps = 100000.0f);
};

/// Saturation vapor pressure over liquid water [Pa] (Tetens).
real esat_liquid(real temperature);
/// Saturation vapor pressure over ice [Pa].
real esat_ice(real temperature);
/// Saturation mixing ratio [kg/kg] at temperature T and pressure p.
real qsat_liquid(real temperature, real pressure);
real qsat_ice(real temperature, real pressure);

}  // namespace bda::scale
