// Boundary-layer turbulence: prognostic-TKE vertical mixing
// (Mellor-Yamada / Nakanishi-Niino level-2.5 class, Table 3: "Boundary
// layer: MYNN level 2.5").
//
// One TKE value per cell is marched with shear production, buoyancy
// production/destruction, dissipation e^{3/2}/l and vertical self-diffusion;
// the resulting K_m/K_h mix momentum, heat and moisture column by column.
// The full NN level-2.5 stability functions are reduced to their leading
// constants — the mixing-length and TKE machinery, which set the PBL
// structure the LETKF sees, are retained.
#pragma once

#include "scale/grid.hpp"
#include "scale/state.hpp"
#include "util/field.hpp"

namespace bda::scale {

struct PblParams {
  real ce = 0.19f;        ///< dissipation constant
  real sm = 0.39f;        ///< momentum stability constant
  real sh = 0.49f;        ///< heat stability constant
  real l_inf = 100.0f;    ///< asymptotic mixing length [m]
  real tke_min = 1.0e-4f; ///< TKE floor [m2/s2]
  real k_max = 200.0f;    ///< diffusivity cap [m2/s]
};

class BoundaryLayer {
 public:
  BoundaryLayer(const Grid& grid, PblParams params = {});

  /// March TKE and apply vertical mixing over dt.
  void step(State& s, real dt);

  /// Inject surface-flux forcing into the lowest-level TKE (called by the
  /// surface scheme: u*^3 / (kappa z1) shear production).
  void add_surface_production(idx i, idx j, real prod) {
    tke_(i, j, 0) += prod;
  }

  const RField3D& tke() const { return tke_; }
  RField3D& tke() { return tke_; }

 private:
  const Grid& grid_;
  PblParams params_;
  RField3D tke_;
};

}  // namespace bda::scale
