#include "scale/reference.hpp"

#include <cmath>

namespace bda::scale {

using C = Constants<real>;

real Sounding::theta(real z) const {
  if (z <= pbl_top) return theta_surface + theta_lapse_pbl * z;
  const real th_pbl = theta_surface + theta_lapse_pbl * pbl_top;
  if (z <= tropopause) return th_pbl + theta_lapse_free * (z - pbl_top);
  const real th_trop = th_pbl + theta_lapse_free * (tropopause - pbl_top);
  return th_trop + theta_lapse_strat * (z - tropopause);
}

real Sounding::rh(real z) const {
  if (z <= pbl_top) return rh_surface;
  const real decay = std::exp(-(z - pbl_top) / rh_decay);
  return rh_free * decay + 0.05f * (1.0f - decay);
}

Sounding stable_sounding() {
  Sounding s;
  s.theta_surface = 300.0f;
  s.theta_lapse_pbl = 0.004f;
  s.theta_lapse_free = 0.004f;
  s.rh_surface = 0.30f;
  s.rh_free = 0.20f;
  return s;
}

Sounding convective_sounding() {
  Sounding s;
  s.theta_surface = 302.0f;
  s.theta_lapse_pbl = 0.0f;      // well-mixed boundary layer
  s.pbl_top = 1200.0f;
  s.theta_lapse_free = 0.0038f;  // weak stability -> conditionally unstable
  s.rh_surface = 0.90f;
  s.rh_free = 0.55f;
  s.rh_decay = 5000.0f;
  return s;
}

real esat_liquid(real temperature) {
  // Tetens over liquid: es = 610.78 * exp(17.269 (T - 273.15)/(T - 35.86)).
  const real t = temperature;
  return 610.78f * std::exp(17.269f * (t - 273.15f) / (t - 35.86f));
}

real esat_ice(real temperature) {
  const real t = temperature;
  return 610.78f * std::exp(21.875f * (t - 273.15f) / (t - 7.66f));
}

real qsat_liquid(real temperature, real pressure) {
  const real es = esat_liquid(temperature);
  const real denom = pressure - 0.378f * es;
  return 0.622f * es / std::max(denom, 1.0f);
}

real qsat_ice(real temperature, real pressure) {
  const real es = esat_ice(temperature);
  const real denom = pressure - 0.378f * es;
  return 0.622f * es / std::max(denom, 1.0f);
}

ReferenceState ReferenceState::build(const Grid& grid, const Sounding& snd,
                                     real ps) {
  const idx nz = grid.nz();
  ReferenceState ref;
  ref.dens.resize(nz);
  ref.pres.resize(nz);
  ref.theta.resize(nz);
  ref.qv.resize(nz);

  // March the Exner function upward: d(pi)/dz = -g / (cp * theta_v).
  // Iterate each layer once to center the theta_v used over the half-step.
  real pi_below = std::pow(ps / C::pres00, C::kappa);  // Exner at the surface
  real z_below = 0.0f;
  for (idx k = 0; k < nz; ++k) {
    const real z = grid.zc(k);
    const real th = snd.theta(z);
    // First guess for qv from RH at the previous pressure level.
    real pi = pi_below;
    real qv = 0.0f;
    for (int iter = 0; iter < 3; ++iter) {
      const real pmid = C::pres00 * std::pow(pi, C::cp / C::rdry);
      const real temp = th * pi;
      qv = snd.rh(z) * qsat_liquid(temp, pmid);
      const real thv = th * (1.0f + 0.608f * qv);
      pi = pi_below - C::grav * (z - z_below) / (C::cp * thv);
    }
    const real pres = C::pres00 * std::pow(pi, C::cp / C::rdry);
    const real temp = th * pi;
    const real thv = th * (1.0f + 0.608f * qv);
    ref.theta[k] = th;
    ref.qv[k] = qv;
    ref.pres[k] = pres;
    // Moist density from the ideal-gas law with virtual temperature.
    ref.dens[k] = pres / (C::rdry * temp * (1.0f + 0.608f * qv));
    (void)thv;
    pi_below = pi;
    z_below = z;
  }
  return ref;
}

}  // namespace bda::scale
