// Computational grid for the regional model.
//
// Horizontally uniform (dx = dy), Arakawa C staggering; vertically stretched
// levels as in the paper's inner domain: 128 km x 128 km x 16.4 km with a
// 500-m horizontal spacing and 60 levels (Table 3).  Terrain is flat — the
// real system uses terrain-following coordinates over the Kanto plain, which
// is predominantly flat within the 60-km radar range; this substitution is
// recorded in DESIGN.md.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace bda::scale {

class Grid {
 public:
  /// Uniformly spaced vertical levels.
  Grid(idx nx, idx ny, idx nz, real dx, real ztop);

  /// Stretched vertical levels: dz grows geometrically from dz0 at the
  /// surface by `stretch` per level, rescaled so the column exactly reaches
  /// ztop.  stretch = 1 reproduces uniform spacing.
  static Grid stretched(idx nx, idx ny, idx nz, real dx, real ztop, real dz0,
                        real stretch);

  /// Grid with an explicitly specified vertical face profile (zf must have
  /// nz + 1 ascending entries starting at 0).  Used by the nesting chain so
  /// the outer domain shares the inner domain's exact column.
  static Grid with_faces(idx nx, idx ny, real dx,
                         const std::vector<real>& zf);

  /// The paper's inner-domain grid (Table 3): 256 x 256 x 60, dx = 500 m,
  /// 16.4-km top, surface-refined stretching.
  static Grid paper_inner();

  /// The paper's outer-domain grid: 1.5-km spacing covering ~3x the inner
  /// extent (Fig 3a), same 60-level column.
  static Grid paper_outer();

  idx nx() const { return nx_; }
  idx ny() const { return ny_; }
  idx nz() const { return nz_; }
  real dx() const { return dx_; }
  real ztop() const { return zf_.back(); }
  real extent_x() const { return real(nx_) * dx_; }
  real extent_y() const { return real(ny_) * dx_; }

  /// Cell-center height of level k.
  real zc(idx k) const { return zc_[static_cast<std::size_t>(k)]; }
  /// Face height; k in [0, nz], zf(0) = 0 (surface), zf(nz) = ztop.
  real zf(idx k) const { return zf_[static_cast<std::size_t>(k)]; }
  /// Cell thickness of level k.
  real dz(idx k) const { return dz_[static_cast<std::size_t>(k)]; }
  /// Distance between centers of cells k-1 and k (for face k gradients);
  /// defined for k in [1, nz-1].
  real dzf(idx k) const { return dzf_[static_cast<std::size_t>(k)]; }

  /// Cell-center x/y coordinate of column index (cell i spans [i*dx,(i+1)*dx)).
  real xc(idx i) const { return (real(i) + real(0.5)) * dx_; }
  real yc(idx j) const { return (real(j) + real(0.5)) * dx_; }

  /// All vertical face heights (nz + 1 entries); lets a coarser grid be
  /// built with an identical column (see with_faces).
  const std::vector<real>& faces() const { return zf_; }

  /// Halo width required by the 3rd-order upwind stencils.
  static constexpr idx kHalo = 2;

 private:
  idx nx_, ny_, nz_;
  real dx_;
  std::vector<real> zc_, zf_, dz_, dzf_;
};

}  // namespace bda::scale
