// Lateral boundary forcing and one-way nesting.
//
// Reproduces the paper's Fig 3 data flow: JMA mesoscale forecasts (3-hourly,
// 5-km) drive 1000-member outer-domain (1.5-km) forecasts, which provide the
// lateral boundaries of the inner 500-m domain.  Here:
//   * DaviesRelaxation nudges a rim of cells toward a boundary state
//     (classic regional-NWP lateral coupling),
//   * SyntheticMesoscaleDriver stands in for the JMA feed (slowly varying
//     large-scale wind/moisture; substitution recorded in DESIGN.md),
//   * nest_interpolate downscales an outer-domain state onto an inner grid,
//     implementing the one-way nesting of outer -> inner.
#pragma once

#include <memory>

#include "scale/grid.hpp"
#include "scale/reference.hpp"
#include "scale/state.hpp"

namespace bda::scale {

/// Provides the boundary target state at a given simulation time.
class BoundaryDriver {
 public:
  virtual ~BoundaryDriver() = default;
  /// Fill `bc` with the full-domain target the rim is relaxed toward.
  virtual void fill(double time_s, State& bc) const = 0;
};

/// Fixed environment: reference atmosphere plus a constant mean wind.
class SteadyDriver final : public BoundaryDriver {
 public:
  SteadyDriver(const Grid& grid, const ReferenceState& ref, real u_mean,
               real v_mean);
  void fill(double time_s, State& bc) const override;

 private:
  const Grid& grid_;
  const ReferenceState& ref_;
  real u_mean_, v_mean_;
};

/// Stand-in for the JMA mesoscale feed: reference atmosphere with slowly
/// rotating mean wind and a low-level moisture surge cycle, refreshed with
/// the operational 3-hour cadence (values held piecewise-constant between
/// refreshes, as file-based boundary data would be).
class SyntheticMesoscaleDriver final : public BoundaryDriver {
 public:
  SyntheticMesoscaleDriver(const Grid& grid, const ReferenceState& ref,
                           real u_base, real v_base,
                           double refresh_s = 10800.0);
  void fill(double time_s, State& bc) const override;

 private:
  const Grid& grid_;
  const ReferenceState& ref_;
  real u_base_, v_base_;
  double refresh_s_;
};

/// Serves a caller-owned boundary state (refreshed externally, e.g. by the
/// outer-domain nesting chain each time the coarse forecast advances).
class StateDriver final : public BoundaryDriver {
 public:
  explicit StateDriver(const State* state) : state_(state) {}
  void fill(double /*time_s*/, State& bc) const override { bc = *state_; }
  void set_state(const State* state) { state_ = state; }

 private:
  const State* state_;
};

/// Davies (1976) relaxation: blend the outer `width` cells toward `bc` with
/// a quadratic ramp; the outermost cell relaxes with time scale `tau`.
void apply_davies(State& s, const State& bc, idx width, real dt, real tau);

/// One-way nesting: bilinear horizontal interpolation of a coarse-domain
/// state onto a fine grid (vertical levels must match).  The fine domain is
/// assumed centered inside the coarse one, as in Fig 3a.
void nest_interpolate(const State& coarse, const Grid& coarse_grid,
                      State& fine, const Grid& fine_grid);

}  // namespace bda::scale
