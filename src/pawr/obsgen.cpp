#include "pawr/obsgen.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

namespace bda::pawr {

namespace {
struct CellAccum {
  double refl_sum = 0;
  double dopp_sum = 0;
  int refl_n = 0;
  int dopp_n = 0;
  float max_refl = -100.0f;
};
}  // namespace

letkf::ObsVector regrid_scan(const VolumeScan& scan, const scale::Grid& grid,
                             real radar_x, real radar_y, real radar_z,
                             const ObsGenConfig& cfg) {
  const idx nx = grid.nx(), ny = grid.ny(), nz = grid.nz();
  // Accumulate polar samples into grid cells; flat map keyed by cell index.
  std::unordered_map<std::size_t, CellAccum> cells;
  cells.reserve(scan.n_samples() / 8);

  for (int e = 0; e < scan.cfg.n_elevation; ++e)
    for (int a = 0; a < scan.cfg.n_azimuth; ++a)
      for (int g = 0; g < scan.cfg.n_gate(); ++g) {
        const std::size_t n = scan.index(e, a, g);
        if (scan.flag[n] != kValid) continue;
        real dx, dy, dz;
        scan.sample_position(e, a, g, dx, dy, dz);
        const real x = radar_x + dx;
        const real y = radar_y + dy;
        const real z = radar_z + dz;
        if (z < cfg.z_min || z > cfg.z_max) continue;
        const idx i = static_cast<idx>(x / grid.dx());
        const idx j = static_cast<idx>(y / grid.dx());
        if (i < 0 || i >= nx || j < 0 || j >= ny) continue;
        idx k = -1;
        for (idx kk = 0; kk < nz; ++kk)
          if (z < grid.zf(kk + 1)) {
            k = kk;
            break;
          }
        if (k < 0) continue;
        const std::size_t key =
            (static_cast<std::size_t>(i) * ny + j) * nz + k;
        auto& c = cells[key];
        c.refl_sum += double(scan.reflectivity[n]);
        c.refl_n += 1;
        c.max_refl = std::max(c.max_refl, scan.reflectivity[n]);
        if (scan.reflectivity[n] >= cfg.doppler_min_refl) {
          c.dopp_sum += double(scan.doppler[n]);
          c.dopp_n += 1;
        }
      }

  // Emit in ascending cell-index order: iterating the hash map directly
  // would bake its bucket layout into the observation order, and through
  // the LETKF's (distance, index) tie-breaking into the analysis bytes —
  // reproducible on one libstdc++, different on the next.
  std::vector<std::size_t> keys;
  keys.reserve(cells.size());
  for (const auto& kv : cells)  // bda-style: allow(unordered-iteration-in-output): keys are sorted on the next line, so hash order cannot reach the ObsVector
    keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end());

  letkf::ObsVector obs;
  obs.reserve(cells.size());
  for (const std::size_t key : keys) {
    const CellAccum& c = cells.find(key)->second;
    const idx k = static_cast<idx>(key % nz);
    const idx j = static_cast<idx>((key / nz) % ny);
    const idx i = static_cast<idx>(key / (static_cast<std::size_t>(ny) * nz));
    const real x = grid.xc(i), y = grid.yc(j), z = grid.zc(k);
    const real refl = real(c.refl_sum / c.refl_n);

    if (refl >= cfg.rain_threshold) {
      obs.push_back({letkf::ObsType::kReflectivity, x, y, z, refl,
                     cfg.err_refl, radar_x, radar_y, radar_z, true});
      if (c.dopp_n > 0)
        obs.push_back({letkf::ObsType::kDopplerVelocity, x, y, z,
                       real(c.dopp_sum / c.dopp_n), cfg.err_dopp, radar_x,
                       radar_y, radar_z, true});
    } else if (cfg.clear_air) {
      // Thin clear-air obs on a checkerboard of period clear_air_thin.
      if ((i % cfg.clear_air_thin) == 0 && (j % cfg.clear_air_thin) == 0)
        obs.push_back({letkf::ObsType::kReflectivity, x, y, z,
                       std::max(refl, real(-20)), cfg.err_refl, radar_x,
                       radar_y, radar_z, true});
    }
  }
  return obs;
}

ScanCoverage scan_coverage(const VolumeScan& scan) {
  ScanCoverage cov;
  for (auto f : scan.flag) {
    switch (f) {
      case kValid: ++cov.valid; break;
      case kOutOfDomain: ++cov.out_of_domain; break;
      case kBeamBlocked: ++cov.blocked; break;
      case kClutter: ++cov.clutter; break;
      default: break;
    }
  }
  return cov;
}

}  // namespace bda::pawr
