// Radar simulator: produce a VolumeScan from a model state.
//
// This is the substitution for the live MP-PAWR feed (DESIGN.md): a
// high-resolution "nature run" of the model plays the real atmosphere, and
// this simulator observes it exactly the way the radar would — sampling
// reflectivity and radial velocity along beams, adding instrument noise,
// masking blocked sectors, cluttered low gates and out-of-range samples
// (the hatched regions of the paper's Fig 6b).
#pragma once

#include "pawr/scan.hpp"
#include "scale/grid.hpp"
#include "scale/microphysics.hpp"
#include "scale/state.hpp"
#include "util/rng.hpp"

namespace bda::pawr {

struct RadarSimConfig {
  real radar_x = 0, radar_y = 0, radar_z = 50.0f;  ///< site [m, model coords]
  real noise_refl = 1.0f;    ///< instrument noise sd [dBZ]
  real noise_dopp = 0.5f;    ///< instrument noise sd [m/s]
  real clutter_height = 200.0f;  ///< gates below this are flagged clutter
  /// Blocked azimuth sector [deg, deg) — e.g. a building; empty if equal.
  real block_az_from = 200.0f;
  real block_az_to = 215.0f;
  /// X-band path attenuation.  MP-PAWR operates at X band, where heavy rain
  /// along the beam attenuates the signal measurably (one reason the
  /// multi-parameter upgrade and dual coverage matter).  Two-way specific
  /// attenuation is modeled as k [dB/km] = atten_coef * Zlin^atten_exp with
  /// Zlin the linear reflectivity (mm^6/m^3) at the gate.
  bool attenuation = false;
  real atten_coef = 1.4e-4f;
  real atten_exp = 0.78f;
  scale::MicroParams micro;  ///< fall-speed law for Doppler
};

class RadarSimulator {
 public:
  RadarSimulator(const scale::Grid& grid, ScanConfig scan,
                 RadarSimConfig cfg = {});

  /// Observe `truth` at time t_obs into a fresh scan (deterministic given
  /// the rng state).
  VolumeScan observe(const scale::State& truth, double t_obs, Rng& rng) const;

  const ScanConfig& scan_config() const { return scan_; }
  const RadarSimConfig& config() const { return cfg_; }

 private:
  const scale::Grid& grid_;
  ScanConfig scan_;
  RadarSimConfig cfg_;
};

}  // namespace bda::pawr
