// MP-PAWR volume-scan geometry and container.
//
// The multi-parameter phased-array weather radar at Saitama University scans
// a gapless 3-D volume (360 degrees azimuth, ~100 electronically steered
// elevations, 60-km range) every 30 seconds — ~100x the data of a
// mechanically rotating radar and the "big data" of Big Data Assimilation.
// A completed scan is stamped with T_obs, the start of the paper's
// time-to-solution clock (Fig 4).
//
// VolumeScan is the in-memory image of one scan file (~100 MB at the
// operational resolution; the geometry is configurable so tests run scaled
// versions of the same structure).
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace bda::pawr {

struct ScanConfig {
  real range_max = 60000.0f;  ///< maximum range [m]
  real gate_length = 500.0f;  ///< range-gate spacing [m]
  int n_azimuth = 120;        ///< azimuth samples over 360 degrees
  int n_elevation = 30;       ///< elevation steps, 0..elev_max
  real elev_max_deg = 90.0f;  ///< top of the electronic elevation fan
  double period_s = 30.0;     ///< volume refresh (the paper's 30 s)

  int n_gate() const { return static_cast<int>(range_max / gate_length); }
  std::size_t n_samples() const {
    return static_cast<std::size_t>(n_elevation) *
           static_cast<std::size_t>(n_azimuth) *
           static_cast<std::size_t>(n_gate());
  }
  /// Operational-scale geometry: ~100 MB per scan as in the paper.
  static ScanConfig paper_scale();
};

/// Validity flags per sample.
enum SampleFlag : std::uint8_t {
  kValid = 0,
  kOutOfDomain = 1,   ///< beyond the model domain or 60-km range
  kBeamBlocked = 2,   ///< terrain/building blockage sector
  kClutter = 3,       ///< ground-clutter contaminated (lowest gates)
};

struct VolumeScan {
  VolumeScan() = default;
  explicit VolumeScan(const ScanConfig& cfg);

  ScanConfig cfg;
  double t_obs = 0.0;  ///< scan completion time stamp [s] (paper's T_obs)
  std::vector<float> reflectivity;  ///< [dBZ]
  std::vector<float> doppler;       ///< radial velocity [m/s]
  std::vector<std::uint8_t> flag;   ///< SampleFlag per sample

  std::size_t index(int e, int a, int g) const {
    return (static_cast<std::size_t>(e) * cfg.n_azimuth + a) * cfg.n_gate() +
           g;
  }

  /// Cartesian offset of a sample relative to the radar [m].
  void sample_position(int e, int a, int g, real& dx, real& dy,
                       real& dz) const;

  /// Payload bytes (reflectivity + doppler + flags), the size JIT-DT moves.
  std::size_t payload_bytes() const {
    return n_samples() * (2 * sizeof(float) + 1);
  }
  std::size_t n_samples() const { return cfg.n_samples(); }
};

}  // namespace bda::pawr
