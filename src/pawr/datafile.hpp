// Volume-scan file format ("PWR1").
//
// The operational workflow materializes each completed scan as a file on a
// server at Saitama University; JIT-DT watches for the file and ships it to
// Fugaku.  This format is what our JIT-DT moves: little-endian header
// (magic, T_obs, geometry) + reflectivity + doppler + flags + CRC32.
// At ScanConfig::paper_scale() the file is ~100 MB, matching the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pawr/scan.hpp"

namespace bda::pawr {

/// Serialize to bytes (including trailing CRC32).
std::vector<std::uint8_t> encode_scan(const VolumeScan& vs);

/// Parse; throws std::runtime_error on bad magic/CRC/truncation.
VolumeScan decode_scan(const std::vector<std::uint8_t>& buf);

/// Write/read scan files.
void write_scan(const std::string& path, const VolumeScan& vs);
VolumeScan read_scan(const std::string& path);

}  // namespace bda::pawr
