#include "pawr/forward.hpp"

#include <algorithm>
#include <cmath>

namespace bda::pawr {

RadarSimulator::RadarSimulator(const scale::Grid& grid, ScanConfig scan,
                               RadarSimConfig cfg)
    : grid_(grid), scan_(scan), cfg_(cfg) {}

VolumeScan RadarSimulator::observe(const scale::State& truth, double t_obs,
                                   Rng& rng) const {
  VolumeScan vs(scan_);
  vs.t_obs = t_obs;

  const real lx = grid_.extent_x(), ly = grid_.extent_y();
  const real ztop = grid_.ztop();

  for (int e = 0; e < scan_.n_elevation; ++e)
    for (int a = 0; a < scan_.n_azimuth; ++a) {
      const real az_deg = real(a) / real(scan_.n_azimuth) * 360.0f;
      const bool blocked =
          az_deg >= cfg_.block_az_from && az_deg < cfg_.block_az_to;
      // Two-way path-integrated attenuation accumulated gate by gate
      // (gates are scanned outward along the beam).
      real pia_db = 0;
      for (int g = 0; g < scan_.n_gate(); ++g) {
        const std::size_t n = vs.index(e, a, g);
        real dx, dy, dz;
        vs.sample_position(e, a, g, dx, dy, dz);
        const real x = cfg_.radar_x + dx;
        const real y = cfg_.radar_y + dy;
        const real z = cfg_.radar_z + dz;
        if (x < 0 || x >= lx || y < 0 || y >= ly || z >= ztop) {
          vs.flag[n] = kOutOfDomain;
          continue;
        }
        if (blocked) {
          vs.flag[n] = kBeamBlocked;
          continue;
        }
        if (z < cfg_.clutter_height) {
          vs.flag[n] = kClutter;
          continue;
        }
        // Nearest model cell (the 500-m analysis-grid regridding downstream
        // re-averages anyway).
        const idx i =
            std::clamp<idx>(static_cast<idx>(x / grid_.dx()), 0,
                            grid_.nx() - 1);
        const idx j =
            std::clamp<idx>(static_cast<idx>(y / grid_.dx()), 0,
                            grid_.ny() - 1);
        idx kz = grid_.nz() - 1;
        for (idx kk = 0; kk < grid_.nz(); ++kk)
          if (z < grid_.zf(kk + 1)) {
            kz = kk;
            break;
          }
        real dbz_true = scale::cell_reflectivity_dbz(truth, i, j, kz);
        if (cfg_.attenuation) {
          // Attenuate by the path so far, then add this gate's own
          // contribution to the two-way attenuation behind it.
          dbz_true -= pia_db;
          const real zlin =
              std::pow(real(10), std::min(dbz_true, real(70)) / real(10));
          const real k_db_per_km =
              cfg_.atten_coef * std::pow(std::max(zlin, real(0)),
                                         cfg_.atten_exp);
          pia_db += real(2) * k_db_per_km * scan_.gate_length / real(1000);
        }
        const real dbz = dbz_true + cfg_.noise_refl * real(rng.normal());
        vs.reflectivity[n] = float(dbz);

        // Radial velocity along the beam unit vector.
        const real r = std::sqrt(dx * dx + dy * dy + dz * dz);
        if (r > real(1)) {
          const real vt =
              scale::cell_fall_speed(truth, cfg_.micro, i, j, kz);
          const real vr = (dx * truth.u(i, j, kz) + dy * truth.v(i, j, kz) +
                           dz * (truth.w(i, j, kz) - vt)) /
                          r;
          vs.doppler[n] = float(vr + cfg_.noise_dopp * real(rng.normal()));
        }
      }
    }
  return vs;
}

}  // namespace bda::pawr
