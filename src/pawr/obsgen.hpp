// Scan-to-observation regridding and quality control.
//
// Table 2: "Regridded observation resolution: 500 m" — the raw volume scan
// (polar coordinates) is averaged onto the analysis grid before
// assimilation.  Each grid cell receives the mean of the valid samples that
// fall inside it; cells with no valid sample produce no observation.
// Reflectivity cells below `rain_threshold` can optionally be emitted as
// thinned "clear-air" observations, which suppress spurious ensemble rain —
// standard practice in radar DA.
#pragma once

#include "letkf/obs.hpp"
#include "pawr/scan.hpp"
#include "scale/grid.hpp"

namespace bda::pawr {

struct ObsGenConfig {
  real err_refl = 5.0f;      ///< obs error sd [dBZ] (Table 2)
  real err_dopp = 3.0f;      ///< obs error sd [m/s] (Table 2)
  real rain_threshold = 5.0f;  ///< dBZ above which a cell is "raining"
  bool clear_air = true;     ///< emit thinned clear-air reflectivity obs
  int clear_air_thin = 4;    ///< keep 1 of N^2 clear-air cells (horizontal)
  real doppler_min_refl = 10.0f;  ///< Doppler needs scatterers [dBZ]
  real z_min = 300.0f;       ///< discard obs below (clutter margin)
  real z_max = 12000.0f;
};

/// Regrid a volume scan onto `grid` (grid coordinates are model-local; the
/// radar offset was already applied when the scan was made).  Returns
/// observations in model coordinates.
letkf::ObsVector regrid_scan(const VolumeScan& scan, const scale::Grid& grid,
                             real radar_x, real radar_y, real radar_z,
                             const ObsGenConfig& cfg = {});

/// Count of samples by flag value (diagnostics for the Fig 6 "no data"
/// hatching).
struct ScanCoverage {
  std::size_t valid = 0, out_of_domain = 0, blocked = 0, clutter = 0;
};
ScanCoverage scan_coverage(const VolumeScan& scan);

}  // namespace bda::pawr
