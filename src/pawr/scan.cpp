#include "pawr/scan.hpp"

#include <cmath>

namespace bda::pawr {

ScanConfig ScanConfig::paper_scale() {
  // ~100 MB/scan: 110 elevations x 300 azimuths x 600 gates x 9 B/sample
  // ~ 178M samples... the real format also compresses; we pick the geometry
  // that lands near 100 MB of payload, which is the published figure.
  ScanConfig c;
  c.range_max = 60000.0f;
  c.gate_length = 100.0f;
  c.n_azimuth = 300;
  c.n_elevation = 64;
  c.elev_max_deg = 90.0f;
  c.period_s = 30.0;
  return c;  // 64 * 300 * 600 * 9 B = ~98.9 MB
}

VolumeScan::VolumeScan(const ScanConfig& c)
    : cfg(c), reflectivity(c.n_samples(), -20.0f),
      doppler(c.n_samples(), 0.0f), flag(c.n_samples(), kValid) {}

void VolumeScan::sample_position(int e, int a, int g, real& dx, real& dy,
                                 real& dz) const {
  const real elev = real(e) / real(cfg.n_elevation) *
                    (cfg.elev_max_deg * real(M_PI) / 180.0f);
  const real azim = real(a) / real(cfg.n_azimuth) * real(2.0 * M_PI);
  const real r = (real(g) + 0.5f) * cfg.gate_length;
  dx = r * std::cos(elev) * std::sin(azim);
  dy = r * std::cos(elev) * std::cos(azim);
  dz = r * std::sin(elev);
}

}  // namespace bda::pawr
