#include "pawr/datafile.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/binary_io.hpp"

namespace bda::pawr {

namespace {
constexpr char kMagic[4] = {'P', 'W', 'R', '1'};

template <typename T>
void put(std::vector<std::uint8_t>& buf, T v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  buf.insert(buf.end(), p, p + sizeof(T));
}

template <typename T>
T take(const std::vector<std::uint8_t>& buf, std::size_t& pos) {
  if (pos + sizeof(T) > buf.size())
    throw std::runtime_error("PWR1: truncated");
  T v;
  std::memcpy(&v, buf.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}
}  // namespace

std::vector<std::uint8_t> encode_scan(const VolumeScan& vs) {
  std::vector<std::uint8_t> buf;
  buf.reserve(vs.payload_bytes() + 64);
  buf.insert(buf.end(), kMagic, kMagic + 4);
  put<double>(buf, vs.t_obs);
  put<float>(buf, vs.cfg.range_max);
  put<float>(buf, vs.cfg.gate_length);
  put<std::int32_t>(buf, vs.cfg.n_azimuth);
  put<std::int32_t>(buf, vs.cfg.n_elevation);
  put<float>(buf, vs.cfg.elev_max_deg);
  put<double>(buf, vs.cfg.period_s);
  const auto* pr = reinterpret_cast<const std::uint8_t*>(vs.reflectivity.data());
  buf.insert(buf.end(), pr, pr + vs.reflectivity.size() * sizeof(float));
  const auto* pd = reinterpret_cast<const std::uint8_t*>(vs.doppler.data());
  buf.insert(buf.end(), pd, pd + vs.doppler.size() * sizeof(float));
  buf.insert(buf.end(), vs.flag.begin(), vs.flag.end());
  put<std::uint32_t>(buf, crc32(buf.data(), buf.size()));
  return buf;
}

VolumeScan decode_scan(const std::vector<std::uint8_t>& buf) {
  if (buf.size() < 44) throw std::runtime_error("PWR1: too short");
  if (std::memcmp(buf.data(), kMagic, 4) != 0)
    throw std::runtime_error("PWR1: bad magic");
  std::uint32_t stored;
  std::memcpy(&stored, buf.data() + buf.size() - 4, 4);
  if (crc32(buf.data(), buf.size() - 4) != stored)
    throw std::runtime_error("PWR1: CRC mismatch");

  std::size_t pos = 4;
  const double t_obs = take<double>(buf, pos);
  ScanConfig cfg;
  cfg.range_max = take<float>(buf, pos);
  cfg.gate_length = take<float>(buf, pos);
  cfg.n_azimuth = take<std::int32_t>(buf, pos);
  cfg.n_elevation = take<std::int32_t>(buf, pos);
  cfg.elev_max_deg = take<float>(buf, pos);
  cfg.period_s = take<double>(buf, pos);
  if (cfg.n_azimuth <= 0 || cfg.n_elevation <= 0 || cfg.gate_length <= 0)
    throw std::runtime_error("PWR1: bad geometry");

  VolumeScan vs(cfg);
  vs.t_obs = t_obs;
  const std::size_t n = vs.n_samples();
  const std::size_t need = n * (2 * sizeof(float) + 1);
  if (pos + need + 4 != buf.size())
    throw std::runtime_error("PWR1: size mismatch");
  std::memcpy(vs.reflectivity.data(), buf.data() + pos, n * sizeof(float));
  pos += n * sizeof(float);
  std::memcpy(vs.doppler.data(), buf.data() + pos, n * sizeof(float));
  pos += n * sizeof(float);
  std::memcpy(vs.flag.data(), buf.data() + pos, n);
  return vs;
}

void write_scan(const std::string& path, const VolumeScan& vs) {
  const auto buf = encode_scan(vs);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("PWR1: cannot open " + path);
  f.write(reinterpret_cast<const char*>(buf.data()),
          static_cast<std::streamsize>(buf.size()));
  if (!f) throw std::runtime_error("PWR1: write failed " + path);
}

VolumeScan read_scan(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("PWR1: cannot open " + path);
  std::vector<std::uint8_t> buf((std::istreambuf_iterator<char>(f)),
                                std::istreambuf_iterator<char>());
  return decode_scan(buf);
}

}  // namespace bda::pawr
