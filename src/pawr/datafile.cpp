#include "pawr/datafile.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/binary_io.hpp"

namespace bda::pawr {

namespace {
constexpr char kMagic[4] = {'P', 'W', 'R', '1'};

// All byte-level packing goes through bda::io (util/binary_io), the one
// sanctioned home for type punning in the tree.
template <typename T>
void put(std::vector<std::uint8_t>& buf, T v) {
  io::put_scalar<T>(buf, v);
}

template <typename T>
T take(const std::vector<std::uint8_t>& buf, std::size_t& pos) {
  return io::take_scalar<T>(buf, pos, "PWR1");
}
}  // namespace

std::vector<std::uint8_t> encode_scan(const VolumeScan& vs) {
  // Seed with the magic at construction: insert() into a still-empty vector
  // trips GCC 12's -Wstringop-overflow false positive under -fsanitize.
  std::vector<std::uint8_t> buf(kMagic, kMagic + 4);
  buf.reserve(vs.payload_bytes() + 64);
  put<double>(buf, vs.t_obs);
  put<float>(buf, vs.cfg.range_max);
  put<float>(buf, vs.cfg.gate_length);
  put<std::int32_t>(buf, vs.cfg.n_azimuth);
  put<std::int32_t>(buf, vs.cfg.n_elevation);
  put<float>(buf, vs.cfg.elev_max_deg);
  put<double>(buf, vs.cfg.period_s);
  io::append_raw(buf, vs.reflectivity.data(), vs.reflectivity.size());
  io::append_raw(buf, vs.doppler.data(), vs.doppler.size());
  buf.insert(buf.end(), vs.flag.begin(), vs.flag.end());
  put<std::uint32_t>(buf, crc32(buf.data(), buf.size()));
  return buf;
}

VolumeScan decode_scan(const std::vector<std::uint8_t>& buf) {
  if (buf.size() < 44) throw std::runtime_error("PWR1: too short");
  if (std::memcmp(buf.data(), kMagic, 4) != 0)
    throw std::runtime_error("PWR1: bad magic");
  std::uint32_t stored;
  std::memcpy(&stored, buf.data() + buf.size() - 4, 4);
  if (crc32(buf.data(), buf.size() - 4) != stored)
    throw std::runtime_error("PWR1: CRC mismatch");

  std::size_t pos = 4;
  const double t_obs = take<double>(buf, pos);
  ScanConfig cfg;
  cfg.range_max = take<float>(buf, pos);
  cfg.gate_length = take<float>(buf, pos);
  cfg.n_azimuth = take<std::int32_t>(buf, pos);
  cfg.n_elevation = take<std::int32_t>(buf, pos);
  cfg.elev_max_deg = take<float>(buf, pos);
  cfg.period_s = take<double>(buf, pos);
  if (cfg.n_azimuth <= 0 || cfg.n_elevation <= 0 || cfg.gate_length <= 0)
    throw std::runtime_error("PWR1: bad geometry");

  VolumeScan vs(cfg);
  vs.t_obs = t_obs;
  const std::size_t n = vs.n_samples();
  const std::size_t need = n * (2 * sizeof(float) + 1);
  if (pos + need + 4 != buf.size())
    throw std::runtime_error("PWR1: size mismatch");
  io::take_raw(buf, pos, vs.reflectivity.data(), n, "PWR1");
  io::take_raw(buf, pos, vs.doppler.data(), n, "PWR1");
  io::take_raw(buf, pos, vs.flag.data(), n, "PWR1");
  return vs;
}

void write_scan(const std::string& path, const VolumeScan& vs) {
  // Atomic rename: the radar server publishes scans via rename in
  // production (jitdt/watcher.hpp), and the JIT-DT watcher's stability
  // check assumes files never shrink once visible.
  io::write_file_atomic(path, encode_scan(vs), "PWR1");
}

VolumeScan read_scan(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("PWR1: cannot open " + path);
  std::vector<std::uint8_t> buf((std::istreambuf_iterator<char>(f)),
                                std::istreambuf_iterator<char>());
  return decode_scan(buf);
}

}  // namespace bda::pawr
