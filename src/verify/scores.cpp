#include "verify/scores.hpp"

#include <cmath>
#include <cstdint>

namespace bda::verify {

double Contingency::threat_score() const {
  const std::size_t denom = hits + misses + false_alarms;
  if (denom == 0) return 1.0;  // event absent everywhere: perfect agreement
  return double(hits) / double(denom);
}

double Contingency::pod() const {
  const std::size_t denom = hits + misses;
  return denom ? double(hits) / double(denom) : 1.0;
}

double Contingency::far() const {
  const std::size_t denom = hits + false_alarms;
  return denom ? double(false_alarms) / double(denom) : 0.0;
}

double Contingency::bias() const {
  const std::size_t denom = hits + misses;
  return denom ? double(hits + false_alarms) / double(denom) : 1.0;
}

Contingency contingency(const RField2D& forecast, const RField2D& observed,
                        real threshold,
                        const Field2D<std::uint8_t>* mask) {
  Contingency c;
  for (idx i = 0; i < forecast.nx(); ++i)
    for (idx j = 0; j < forecast.ny(); ++j) {
      if (mask && (*mask)(i, j) == 0) continue;
      const bool f = forecast(i, j) >= threshold;
      const bool o = observed(i, j) >= threshold;
      if (f && o)
        ++c.hits;
      else if (!f && o)
        ++c.misses;
      else if (f && !o)
        ++c.false_alarms;
      else
        ++c.correct_negatives;
    }
  return c;
}

std::size_t exceed_area(const RField2D& f, real threshold) {
  std::size_t n = 0;
  for (idx i = 0; i < f.nx(); ++i)
    for (idx j = 0; j < f.ny(); ++j)
      if (f(i, j) >= threshold) ++n;
  return n;
}

double rmse(const RField2D& a, const RField2D& b) {
  double s = 0.0;
  std::size_t n = 0;
  for (idx i = 0; i < a.nx(); ++i)
    for (idx j = 0; j < a.ny(); ++j) {
      const double d = double(a(i, j)) - double(b(i, j));
      s += d * d;
      ++n;
    }
  return n ? std::sqrt(s / double(n)) : 0.0;
}

double fractions_skill_score(const RField2D& forecast,
                             const RField2D& observed, real threshold,
                             idx neighborhood) {
  const idx nx = forecast.nx(), ny = forecast.ny();
  // Binary event fields -> box-averaged fractions (clamped windows).
  auto fraction_at = [&](const RField2D& f, idx i, idx j) {
    const idx i0 = std::max<idx>(i - neighborhood, 0);
    const idx i1 = std::min<idx>(i + neighborhood, nx - 1);
    const idx j0 = std::max<idx>(j - neighborhood, 0);
    const idx j1 = std::min<idx>(j + neighborhood, ny - 1);
    std::size_t hit = 0, tot = 0;
    for (idx ii = i0; ii <= i1; ++ii)
      for (idx jj = j0; jj <= j1; ++jj) {
        if (f(ii, jj) >= threshold) ++hit;
        ++tot;
      }
    return double(hit) / double(tot);
  };
  double num = 0, den = 0;
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j) {
      const double pf = fraction_at(forecast, i, j);
      const double po = fraction_at(observed, i, j);
      num += (pf - po) * (pf - po);
      den += pf * pf + po * po;
    }
  if (den == 0.0) return 1.0;  // event absent everywhere in both
  return 1.0 - num / den;
}

double rmse3(const RField3D& a, const RField3D& b) {
  double s = 0.0;
  std::size_t n = 0;
  for (idx i = 0; i < a.nx(); ++i)
    for (idx j = 0; j < a.ny(); ++j)
      for (idx k = 0; k < a.nz(); ++k) {
        const double d = double(a(i, j, k)) - double(b(i, j, k));
        s += d * d;
        ++n;
      }
  return n ? std::sqrt(s / double(n)) : 0.0;
}

}  // namespace bda::verify
