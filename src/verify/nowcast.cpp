#include "verify/nowcast.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace bda::verify {

MotionVector estimate_block_motion(const RField2D& earlier,
                                   const RField2D& later, idx i0, idx j0,
                                   const NowcastConfig& cfg, double dt_s) {
  MotionVector mv;
  const idx nb = cfg.block;
  if (i0 + nb > earlier.nx() || j0 + nb > earlier.ny()) return mv;

  // Require echo in the earlier block.
  real peak = -1e9f;
  for (idx i = i0; i < i0 + nb; ++i)
    for (idx j = j0; j < j0 + nb; ++j) peak = std::max(peak, earlier(i, j));
  if (peak < cfg.min_signal) return mv;

  // Search the displacement maximizing the (unnormalized) correlation of
  // positive echo.
  real best = -1e30f;
  idx best_di = 0, best_dj = 0;
  for (idx di = -cfg.search; di <= cfg.search; ++di)
    for (idx dj = -cfg.search; dj <= cfg.search; ++dj) {
      real score = 0;
      for (idx i = i0; i < i0 + nb; ++i)
        for (idx j = j0; j < j0 + nb; ++j) {
          const idx ii = i + di, jj = j + dj;
          if (ii < 0 || ii >= later.nx() || jj < 0 || jj >= later.ny())
            continue;
          const real a = std::max(earlier(i, j), real(0));
          const real b = std::max(later(ii, jj), real(0));
          score += a * b;
        }
      if (score > best) {
        best = score;
        best_di = di;
        best_dj = dj;
      }
    }
  mv.u = real(best_di / dt_s);
  mv.v = real(best_dj / dt_s);
  mv.valid = true;
  return mv;
}

MotionVector estimate_motion(const RField2D& earlier, const RField2D& later,
                             const NowcastConfig& cfg, double dt_s) {
  std::vector<real> us, vs;
  for (idx i0 = 0; i0 + cfg.block <= earlier.nx(); i0 += cfg.block)
    for (idx j0 = 0; j0 + cfg.block <= earlier.ny(); j0 += cfg.block) {
      const auto mv = estimate_block_motion(earlier, later, i0, j0, cfg,
                                            dt_s);
      if (mv.valid) {
        us.push_back(mv.u);
        vs.push_back(mv.v);
      }
    }
  MotionVector out;
  if (us.empty()) return out;
  auto median = [](std::vector<real>& v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  out.u = median(us);
  out.v = median(vs);
  out.valid = true;
  return out;
}

RField2D advect_nowcast(const RField2D& latest, const MotionVector& motion,
                        double lead_s, real fill) {
  RField2D out(latest.nx(), latest.ny(), 0);
  const real sx = real(motion.valid ? double(motion.u) * lead_s : 0.0);
  const real sy = real(motion.valid ? double(motion.v) * lead_s : 0.0);
  for (idx i = 0; i < out.nx(); ++i)
    for (idx j = 0; j < out.ny(); ++j) {
      const real x = real(i) - sx;
      const real y = real(j) - sy;
      const idx i0 = static_cast<idx>(std::floor(x));
      const idx j0 = static_cast<idx>(std::floor(y));
      if (i0 < 0 || i0 + 1 >= latest.nx() || j0 < 0 ||
          j0 + 1 >= latest.ny()) {
        out(i, j) = fill;
        continue;
      }
      const real fx = x - real(i0);
      const real fy = y - real(j0);
      out(i, j) =
          (latest(i0, j0) * (1 - fx) + latest(i0 + 1, j0) * fx) * (1 - fy) +
          (latest(i0, j0 + 1) * (1 - fx) + latest(i0 + 1, j0 + 1) * fx) * fy;
    }
  return out;
}

}  // namespace bda::verify
