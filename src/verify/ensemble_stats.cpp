#include "verify/ensemble_stats.hpp"

#include <algorithm>
#include <cmath>

namespace bda::verify {

std::size_t rank_of_truth(std::span<const real> members, real truth) {
  std::size_t rank = 0;
  for (real m : members)
    if (m < truth) ++rank;
  return rank;
}

RankHistogram::RankHistogram(std::size_t n_members)
    : counts_(n_members + 1, 0) {}

void RankHistogram::add(std::span<const real> members, real truth) {
  const std::size_t r = rank_of_truth(members, truth);
  counts_[std::min(r, counts_.size() - 1)] += 1;
  ++total_;
}

double RankHistogram::outlier_ratio() const {
  if (total_ == 0) return 0.0;
  const double expect = 2.0 * double(total_) / double(counts_.size());
  const double outer = double(counts_.front() + counts_.back());
  return outer / expect;
}

double RankHistogram::chi_square() const {
  if (total_ == 0) return 0.0;
  const double expect = double(total_) / double(counts_.size());
  double chi = 0;
  for (std::size_t c : counts_) {
    const double d = double(c) - expect;
    chi += d * d / expect;
  }
  return chi;
}

void SpreadSkill::add(std::span<const real> members, real truth) {
  const std::size_t k = members.size();
  if (k < 2) return;
  double mean = 0;
  for (real m : members) mean += double(m);
  mean /= double(k);
  double var = 0;
  for (real m : members) {
    const double dm = double(m) - mean;
    var += dm * dm;
  }
  var /= double(k - 1);
  sum_var_ += var;
  const double err = mean - double(truth);
  sum_err2_ += err * err;
  ++n_;
}

double SpreadSkill::mean_spread() const {
  return n_ ? sum_var_ / double(n_) : 0.0;
}

double SpreadSkill::mean_error2() const {
  return n_ ? sum_err2_ / double(n_) : 0.0;
}

double SpreadSkill::consistency_ratio() const {
  const double sp = mean_spread();
  if (sp <= 0.0) return 0.0;
  return std::sqrt(mean_error2() / sp);
}

void InnovationStats::add(double innovation, double obs_error) {
  const double z = innovation / std::max(obs_error, 1e-12);
  sum_ += z;
  sum2_ += z * z;
  ++count;
}

double InnovationStats::mean() const {
  return count ? sum_ / double(count) : 0.0;
}

double InnovationStats::stddev() const {
  if (count < 2) return 0.0;
  const double m = mean();
  return std::sqrt(std::max(sum2_ / double(count) - m * m, 0.0));
}

}  // namespace bda::verify
