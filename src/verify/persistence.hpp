// Persistence-forecast baseline.
//
// "In the persistence forecast, the initial rain patterns are taken from
// the MP-PAWR observation and do not evolve" (Sec. 6.1).  At lead time 0 it
// is perfect by construction (Fig 7: the black curve starts at 1); skill
// then decays as convection evolves.  The optional advection variant
// translates the initial pattern with a constant steering wind — the
// classic nowcast upgrade the BDA forecast must also beat.
#pragma once

#include "util/field.hpp"

namespace bda::verify {

class PersistenceForecast {
 public:
  /// Capture the initial observed field (e.g. 2-km reflectivity).
  explicit PersistenceForecast(RField2D initial)
      : initial_(std::move(initial)) {}

  /// Forecast at any lead time: the initial field, unchanged.
  const RField2D& at(double /*lead_s*/) const { return initial_; }

  /// Advected variant: the pattern translated by (u, v) * lead [m],
  /// grid spacing dx; cells advected in from outside carry "no rain"
  /// (fill value).
  RField2D advected(double lead_s, real u, real v, real dx,
                    real fill = -20.0f) const;

 private:
  RField2D initial_;
};

}  // namespace bda::verify
