#include "verify/persistence.hpp"

#include <cmath>

namespace bda::verify {

RField2D PersistenceForecast::advected(double lead_s, real u, real v, real dx,
                                       real fill) const {
  RField2D out(initial_.nx(), initial_.ny(), 0);
  const real sx = real(double(u) * lead_s / double(dx));
  const real sy = real(double(v) * lead_s / double(dx));
  for (idx i = 0; i < out.nx(); ++i)
    for (idx j = 0; j < out.ny(); ++j) {
      // Semi-Lagrangian backtrack with bilinear sampling.
      const real x = real(i) - sx;
      const real y = real(j) - sy;
      const idx i0 = static_cast<idx>(std::floor(x));
      const idx j0 = static_cast<idx>(std::floor(y));
      if (i0 < 0 || i0 + 1 >= initial_.nx() || j0 < 0 ||
          j0 + 1 >= initial_.ny()) {
        out(i, j) = fill;
        continue;
      }
      const real fx = x - real(i0);
      const real fy = y - real(j0);
      out(i, j) = (initial_(i0, j0) * (1 - fx) + initial_(i0 + 1, j0) * fx) *
                      (1 - fy) +
                  (initial_(i0, j0 + 1) * (1 - fx) +
                   initial_(i0 + 1, j0 + 1) * fx) *
                      fy;
    }
  return out;
}

}  // namespace bda::verify
