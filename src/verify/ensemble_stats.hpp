// Ensemble verification diagnostics.
//
// The standard DA-community health checks for a cycling ensemble system
// like the paper's: rank histograms (is the truth statistically
// indistinguishable from a member?), spread-skill consistency (does the
// ensemble spread predict the ensemble-mean error?), and innovation
// statistics (are observation-space departures consistent with the assumed
// errors?).  These are the diagnostics behind configuration choices like
// Table 2's RTPP factor.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace bda::verify {

/// Rank of `truth` within the sorted ensemble values (0..k inclusive).
/// A calibrated ensemble yields uniformly distributed ranks; U-shaped
/// histograms mean under-dispersion (the failure RTPP guards against).
std::size_t rank_of_truth(std::span<const real> members, real truth);

/// Accumulates rank histograms over many (ensemble, truth) samples.
class RankHistogram {
 public:
  explicit RankHistogram(std::size_t n_members);
  void add(std::span<const real> members, real truth);
  const std::vector<std::size_t>& counts() const { return counts_; }
  std::size_t samples() const { return total_; }
  /// Ratio of outermost-bin mass to the uniform expectation; ~1 for a
  /// calibrated ensemble, >> 1 when under-dispersive.
  double outlier_ratio() const;
  /// Chi-square statistic against uniformity (k degrees of freedom).
  double chi_square() const;

 private:
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Spread-skill accumulator: for each sample, the ensemble variance and the
/// squared ensemble-mean error.  For a statistically consistent system,
/// mean(error^2) ~ (1 + 1/k) * mean(variance).
class SpreadSkill {
 public:
  void add(std::span<const real> members, real truth);
  std::size_t samples() const { return n_; }
  double mean_spread() const;  ///< mean ensemble variance
  double mean_error2() const;  ///< mean squared error of the ensemble mean
  /// sqrt(error2 / spread); ~sqrt(1 + 1/k) when consistent, > that when
  /// under-dispersive.
  double consistency_ratio() const;

 private:
  double sum_var_ = 0, sum_err2_ = 0;
  std::size_t n_ = 0;
};

/// Observation-space departure statistics: mean (bias) and standard
/// deviation of (obs - H(mean)) normalized by the assumed obs error.  A
/// well-tuned system has |bias| << 1 and sd ~ sqrt(1 + spread/R).
struct InnovationStats {
  void add(double innovation, double obs_error);
  std::size_t count = 0;
  double mean() const;
  double stddev() const;

 private:
  double sum_ = 0, sum2_ = 0;
};

}  // namespace bda::verify
