// Forecast verification.
//
// The paper evaluates heavy-rain skill with the *threat score* (critical
// success index) of radar reflectivity at the 30 dBZ threshold (Fig 7),
// against a persistence baseline — "a common practice in the meteorological
// domain science".  Rain-area statistics (Fig 5 cyan/blue curves) come from
// the same contingency machinery.
#pragma once

#include <cstddef>

#include "util/field.hpp"

namespace bda::verify {

/// 2x2 contingency table of forecast vs observation exceeding a threshold.
struct Contingency {
  std::size_t hits = 0;          ///< both exceed
  std::size_t misses = 0;        ///< obs exceeds, forecast does not
  std::size_t false_alarms = 0;  ///< forecast exceeds, obs does not
  std::size_t correct_negatives = 0;

  /// Threat score (CSI) = hits / (hits + misses + false alarms); defined as
  /// 1 when the event occurs nowhere in either field (perfect agreement).
  double threat_score() const;
  /// Probability of detection = hits / (hits + misses).
  double pod() const;
  /// False-alarm ratio = false alarms / (hits + false alarms).
  double far() const;
  /// Frequency bias = (hits + false alarms) / (hits + misses).
  double bias() const;
};

/// Build the table comparing two 2-D fields at `threshold`.  An optional
/// mask (same shape, nonzero = valid) restricts to observed area, matching
/// the paper's exclusion of no-data regions (Fig 6b hatching).
Contingency contingency(const RField2D& forecast, const RField2D& observed,
                        real threshold, const Field2D<std::uint8_t>* mask =
                                             nullptr);

/// Area [number of cells] where the field exceeds the threshold.
std::size_t exceed_area(const RField2D& f, real threshold);

/// Root-mean-square difference over the interior.
double rmse(const RField2D& a, const RField2D& b);
double rmse3(const RField3D& a, const RField3D& b);

/// Fractions skill score (Roberts & Lean 2008): neighborhood verification
/// for high-resolution rain forecasts, the standard remedy for the
/// "double penalty" that grid-point scores charge a slightly displaced
/// storm.  Event fractions are computed in (2n+1)^2 boxes; FSS = 1 -
/// sum((Pf-Po)^2) / (sum(Pf^2) + sum(Po^2)).  1 = perfect, 0 = no skill;
/// for a displaced feature FSS grows with neighborhood size.
double fractions_skill_score(const RField2D& forecast,
                             const RField2D& observed, real threshold,
                             idx neighborhood);

}  // namespace bda::verify
