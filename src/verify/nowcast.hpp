// Advection nowcast baseline (the operational comparator).
//
// Before BDA, the state of the art for minutes-scale rain prediction was
// the *nowcast*: estimate the motion of observed echoes from consecutive
// radar images and advect the latest image forward (JMA's high-resolution
// nowcast; compared against 30-s NWP in Honda et al. 2022 [34]).  This
// module implements that baseline honestly: block cross-correlation motion
// vectors between two scans, median-filtered, then semi-Lagrangian
// advection of the latest field.  It beats frozen persistence for moving
// storms — the bar the BDA forecast has to clear for *evolving* storms.
#pragma once

#include "util/field.hpp"

namespace bda::verify {

struct MotionVector {
  real u = 0;  ///< cells per second, x
  real v = 0;  ///< cells per second, y
  bool valid = false;
};

struct NowcastConfig {
  idx block = 8;          ///< correlation block size [cells]
  idx search = 4;         ///< max displacement searched [cells]
  real min_signal = 10.0f;  ///< dBZ a block must reach to yield a vector
};

/// Estimate the displacement (in cells) of `later` relative to `earlier`
/// maximizing the block cross-correlation; `dt_s` converts to cell/s.
/// Returns invalid when the block has no echo.
MotionVector estimate_block_motion(const RField2D& earlier,
                                   const RField2D& later, idx i0, idx j0,
                                   const NowcastConfig& cfg, double dt_s);

/// Single domain-wide motion vector: median of all valid block vectors
/// (robust to isolated growth/decay).
MotionVector estimate_motion(const RField2D& earlier, const RField2D& later,
                             const NowcastConfig& cfg, double dt_s);

/// Nowcast: advect `latest` by the estimated motion for `lead_s` seconds
/// (semi-Lagrangian, bilinear; fill value for cells advected in from
/// outside).
RField2D advect_nowcast(const RField2D& latest, const MotionVector& motion,
                        double lead_s, real fill = -20.0f);

}  // namespace bda::verify
