// Time-to-solution instrumentation for the 30-second cycle path.
//
// The paper's headline claim is operational, not meteorological: the wall
// clock from "radar scan complete" to "product file written" stayed under
// 3 minutes for ~97% of 75,248 forecasts (Fig 4 defines the clock, Fig 5
// reports the month-long record).  This layer is how the reproduction
// measures the same thing: monotonic per-stage timers, counters and
// sample series with percentile queries, shared by the serial cycle, the
// pipelined driver, and the `bench_pipeline_tts` bench, and exportable as
// JSON so the perf trajectory accumulates across runs (BENCH_*.json).
//
// Thread model: one Metrics instance is written from the cycle thread, the
// regrid/transfer overlap task and every product-forecast worker at once,
// so all state is guarded by `mu_` (BDA_GUARDED_BY, TSan-clean).  Recording
// is cheap (a map insert + push_back); percentile queries sort a copy and
// are meant for end-of-run reporting, not the hot path.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/annotations.hpp"

namespace bda::util {

/// CPU time consumed by the *calling thread* in seconds
/// (CLOCK_THREAD_CPUTIME_ID where available, steady_clock otherwise).
/// This is what the per-rank shard timers use: on an oversubscribed host
/// (threads-as-ranks on fewer cores) wall clock charges every rank for
/// its neighbours' work, while thread CPU time measures only its own —
/// so max-over-ranks CPU time is the node-exclusive time-to-solution
/// projection.  See docs/SHARDING.md.
double thread_cpu_seconds();

/// Summary of one named timer series (all durations in seconds).
struct TimerStats {
  std::size_t count = 0;
  double total_s = 0;
  double mean_s = 0;
  double min_s = 0;
  double max_s = 0;
  double p50_s = 0;
  double p97_s = 0;  ///< the paper's "~97% under 3 minutes" quantile
  double p99_s = 0;
};

class Metrics {
 public:
  /// Increment counter `name` by `n`.
  void count(const std::string& name, std::uint64_t n = 1);

  /// Record one sample (typically a stage duration in seconds) under
  /// `name`.
  void observe(const std::string& name, double value);

  /// RAII stage timer on the monotonic clock.  A null `Metrics*` makes the
  /// timer a no-op, so instrumented code paths need no branching:
  ///
  ///   util::Metrics::ScopedTimer t(metrics_, "cycle.letkf");  // ok if null
  class ScopedTimer {
   public:
    ScopedTimer(Metrics* m, std::string name)
        : m_(m), name_(std::move(name)),
          t0_(std::chrono::steady_clock::now()) {}
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;
    ScopedTimer(ScopedTimer&& o) noexcept
        : m_(o.m_), name_(std::move(o.name_)), t0_(o.t0_) {
      o.m_ = nullptr;
    }
    ScopedTimer& operator=(ScopedTimer&&) = delete;
    ~ScopedTimer() { stop(); }

    /// Stop early and record; returns the elapsed seconds (0 if already
    /// stopped or detached).
    double stop() {
      if (!m_) return 0.0;
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0_;
      m_->observe(name_, dt.count());
      m_ = nullptr;
      return dt.count();
    }

   private:
    Metrics* m_;
    std::string name_;
    std::chrono::steady_clock::time_point t0_;
  };

  ScopedTimer time(std::string name) {
    return ScopedTimer(this, std::move(name));
  }

  /// Current counter value (0 if never incremented).
  std::uint64_t counter(const std::string& name) const;

  /// Number of samples observed under `name`.
  std::size_t samples(const std::string& name) const;

  /// Sum of all samples under `name`.
  double total(const std::string& name) const;

  /// Percentile (linear interpolation, p in [0,100]) of the samples under
  /// `name`; 0 if the series is empty.
  double percentile(const std::string& name, double p) const;

  /// Full summary of one timer series.
  TimerStats timer_stats(const std::string& name) const;

  std::vector<std::string> counter_names() const;
  std::vector<std::string> timer_names() const;

  /// JSON export: {"counters": {...}, "timers": {name: {count, total_s,
  /// mean_s, min_s, max_s, p50_s, p97_s, p99_s}, ...}}.  Keys are sorted,
  /// so the output is deterministic for a deterministic run, and escaped
  /// (quotes, backslashes, control characters), so any caller-chosen
  /// metric name yields valid JSON.
  std::string to_json() const;

  /// Drop all counters and samples.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counters_ BDA_GUARDED_BY(mu_);
  std::map<std::string, std::vector<double>> series_ BDA_GUARDED_BY(mu_);
};

}  // namespace bda::util
