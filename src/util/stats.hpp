// Streaming statistics and histograms.
//
// Used throughout the benches: Fig 5 is a time-to-solution time series plus
// a histogram with the "~97% under 3 minutes" headline; the verification
// module aggregates threat scores; the performance model is calibrated from
// measured kernel-time distributions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bda {

/// Welford single-pass mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * double(n_) : 0.0; }
  void merge(const RunningStats& o);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0, m2_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

/// Percentile of a sample (linear interpolation between order statistics).
/// `p` is clamped to [0,100]; empty input returns 0, a single sample is
/// returned unchanged for every p.  The input vector is copied and sorted.
double percentile(std::vector<double> v, double p);

/// Fraction of samples <= threshold (e.g. fraction of cycles with
/// time-to-solution under 3 minutes).
double fraction_below(const std::vector<double>& v, double threshold);

/// Fixed-width histogram over [lo, hi); samples outside are clamped into the
/// first/last bin so total count always equals samples added.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t b) const { return counts_[b]; }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t b) const;
  double bin_hi(std::size_t b) const;
  /// Multi-line ASCII bar rendering, used by the Fig 5(c) bench output.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace bda
