// Portable thread-safety annotations (clang -Wthread-safety).
//
// The 30-s cycle path is concurrent by design: CommWorld runs one thread per
// rank, the JIT-DT watcher polls from a background thread, and the logger is
// called from all of them.  These macros attach clang's thread-safety
// attributes to the mutexes and the members they guard, turning "this member
// is protected by that mutex" from a comment into a compile-time race gate
// (enabled via -Wthread-safety whenever the compiler is clang; they expand
// to nothing elsewhere, so GCC builds are unaffected).
//
// tools/check_bda_style.py additionally cross-checks the annotations against
// the implementation files on every lint run, so the discipline holds even
// on a GCC-only toolchain: a member declared BDA_GUARDED_BY(mu_) may only be
// touched from functions that lock `mu_` or are marked BDA_REQUIRES(mu_).
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define BDA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BDA_THREAD_ANNOTATION(x)  // no-op on GCC/MSVC
#endif

/// Marks a mutex-like type or member as a capability ("mutex").
#define BDA_CAPABILITY(x) BDA_THREAD_ANNOTATION(capability(x))

/// Member may only be read or written while holding `x`.
#define BDA_GUARDED_BY(x) BDA_THREAD_ANNOTATION(guarded_by(x))

/// Pointee may only be accessed while holding `x`.
#define BDA_PT_GUARDED_BY(x) BDA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function must be called with `x` (...) held.
#define BDA_REQUIRES(...) BDA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires / releases `x` (constructor/destructor of RAII locks,
/// or lock()/unlock() style members).
#define BDA_ACQUIRE(...) BDA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define BDA_RELEASE(...) BDA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function must NOT be called with `x` held (deadlock guard).
#define BDA_EXCLUDES(...) BDA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch for code the analysis cannot follow (e.g. lock handoff
/// through std::condition_variable::wait).  Use sparingly and comment why.
#define BDA_NO_THREAD_SAFETY_ANALYSIS \
  BDA_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Ties a condition_variable member to the mutex guarding its predicate.
/// Deliberately expands to nothing on every compiler — notifying without
/// the lock held is legal and intentional here (PipelinedDriver notifies
/// after unlock), so this must NOT become a clang guarded_by attribute.
/// It exists for the machines: tools/bda_analyze (mutex-annotation check)
/// requires every condition_variable to carry one, and
/// tools/check_bda_style.py cross-checks that functions touching the cv
/// also name the mutex.
#define BDA_CV_OF(x)
