// Dense 2-D / 3-D field containers with optional horizontal halo.
//
// Memory layout is column-major in the vertical: for Field3D the k (vertical)
// index is fastest-varying, so an entire model column is contiguous.  This is
// the layout SCALE-RM uses and it makes the vertically implicit (tridiagonal)
// solves and column physics cache-friendly; horizontal stencils walk with a
// fixed stride of nz.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace bda {

/// 3-D field (nx, ny, nz) with a horizontal halo of width `halo` on each
/// side in x and y.  Valid indices: i,j in [-halo, n+halo), k in [0, nz).
template <typename T>
class Field3D {
 public:
  Field3D() = default;
  Field3D(idx nx, idx ny, idx nz, idx halo = 0)
      : nx_(nx), ny_(ny), nz_(nz), halo_(halo),
        sx_((ny + 2 * halo) * nz), sy_(nz),
        data_((nx + 2 * halo) * (ny + 2 * halo) * nz, T(0)) {
    assert(nx > 0 && ny > 0 && nz > 0 && halo >= 0);
  }

  idx nx() const { return nx_; }
  idx ny() const { return ny_; }
  idx nz() const { return nz_; }
  idx halo() const { return halo_; }
  /// Total allocated elements including halo.
  std::size_t size() const { return data_.size(); }
  /// Interior elements only.
  std::size_t interior_size() const {
    return static_cast<std::size_t>(nx_ * ny_ * nz_);
  }

  T& operator()(idx i, idx j, idx k) { return data_[offset(i, j, k)]; }
  const T& operator()(idx i, idx j, idx k) const {
    return data_[offset(i, j, k)];
  }

  /// Contiguous column (k = 0..nz) at horizontal location (i, j).
  std::span<T> column(idx i, idx j) {
    return {data_.data() + offset(i, j, 0), static_cast<std::size_t>(nz_)};
  }
  std::span<const T> column(idx i, idx j) const {
    return {data_.data() + offset(i, j, 0), static_cast<std::size_t>(nz_)};
  }

  std::span<T> raw() { return data_; }
  std::span<const T> raw() const { return data_; }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// Copy interior + halo from another field of identical shape.
  void copy_from(const Field3D& o) {
    assert(same_shape(o));
    data_ = o.data_;
  }

  bool same_shape(const Field3D& o) const {
    return nx_ == o.nx_ && ny_ == o.ny_ && nz_ == o.nz_ && halo_ == o.halo_;
  }

  /// Periodic halo exchange in x and y (single process).  The distributed
  /// path goes through bda::hpc; this serves serial runs and tests.
  void fill_halo_periodic() {
    const idx h = halo_;
    if (h == 0) return;
    for (idx i = -h; i < nx_ + h; ++i) {
      const idx si = (i % nx_ + nx_) % nx_;
      for (idx j = -h; j < ny_ + h; ++j) {
        if (i >= 0 && i < nx_ && j >= 0 && j < ny_) continue;
        const idx sj = (j % ny_ + ny_) % ny_;
        auto dst = column(i, j);
        auto src = column(si, sj);
        std::copy(src.begin(), src.end(), dst.begin());
      }
    }
  }

  /// Zero-gradient (Neumann) halo fill: halo columns copy the nearest
  /// interior column.  Used by the regional model's lateral boundaries
  /// before the relaxation zone is applied.
  void fill_halo_clamp() {
    const idx h = halo_;
    if (h == 0) return;
    for (idx i = -h; i < nx_ + h; ++i) {
      const idx si = std::clamp<idx>(i, 0, nx_ - 1);
      for (idx j = -h; j < ny_ + h; ++j) {
        if (i >= 0 && i < nx_ && j >= 0 && j < ny_) continue;
        const idx sj = std::clamp<idx>(j, 0, ny_ - 1);
        auto dst = column(i, j);
        auto src = column(si, sj);
        std::copy(src.begin(), src.end(), dst.begin());
      }
    }
  }

  /// Sum over interior points (accumulated in double for reproducibility of
  /// the conservation property tests even when T = float).
  double interior_sum() const {
    double s = 0.0;
    for (idx i = 0; i < nx_; ++i)
      for (idx j = 0; j < ny_; ++j)
        for (idx k = 0; k < nz_; ++k) s += double((*this)(i, j, k));
    return s;
  }

  T interior_max() const {
    T m = (*this)(0, 0, 0);
    for (idx i = 0; i < nx_; ++i)
      for (idx j = 0; j < ny_; ++j)
        for (idx k = 0; k < nz_; ++k) m = std::max(m, (*this)(i, j, k));
    return m;
  }

  T interior_min() const {
    T m = (*this)(0, 0, 0);
    for (idx i = 0; i < nx_; ++i)
      for (idx j = 0; j < ny_; ++j)
        for (idx k = 0; k < nz_; ++k) m = std::min(m, (*this)(i, j, k));
    return m;
  }

 private:
  std::size_t offset(idx i, idx j, idx k) const {
    assert(i >= -halo_ && i < nx_ + halo_);
    assert(j >= -halo_ && j < ny_ + halo_);
    assert(k >= 0 && k < nz_);
    return static_cast<std::size_t>((i + halo_) * sx_ + (j + halo_) * sy_ + k);
  }

  idx nx_ = 0, ny_ = 0, nz_ = 0, halo_ = 0;
  idx sx_ = 0, sy_ = 0;
  std::vector<T> data_;
};

/// 2-D horizontal field (nx, ny) with halo; j fastest.
template <typename T>
class Field2D {
 public:
  Field2D() = default;
  Field2D(idx nx, idx ny, idx halo = 0)
      : nx_(nx), ny_(ny), halo_(halo), sx_(ny + 2 * halo),
        data_((nx + 2 * halo) * (ny + 2 * halo), T(0)) {}

  idx nx() const { return nx_; }
  idx ny() const { return ny_; }
  idx halo() const { return halo_; }
  std::size_t size() const { return data_.size(); }

  T& operator()(idx i, idx j) { return data_[offset(i, j)]; }
  const T& operator()(idx i, idx j) const { return data_[offset(i, j)]; }

  std::span<T> raw() { return data_; }
  std::span<const T> raw() const { return data_; }
  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  double interior_sum() const {
    double s = 0.0;
    for (idx i = 0; i < nx_; ++i)
      for (idx j = 0; j < ny_; ++j) s += double((*this)(i, j));
    return s;
  }

  T interior_max() const {
    T m = (*this)(0, 0);
    for (idx i = 0; i < nx_; ++i)
      for (idx j = 0; j < ny_; ++j) m = std::max(m, (*this)(i, j));
    return m;
  }

 private:
  std::size_t offset(idx i, idx j) const {
    assert(i >= -halo_ && i < nx_ + halo_);
    assert(j >= -halo_ && j < ny_ + halo_);
    return static_cast<std::size_t>((i + halo_) * sx_ + (j + halo_));
  }

  idx nx_ = 0, ny_ = 0, halo_ = 0;
  idx sx_ = 0;
  std::vector<T> data_;
};

using RField3D = Field3D<real>;
using RField2D = Field2D<real>;

}  // namespace bda
