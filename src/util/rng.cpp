#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace bda {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four xoshiro words from splitmix64 as recommended by the
  // xoshiro authors; guards against the all-zero state.
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return double(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_cached_) {
    has_cached_ = false;
    return cached_normal_;
  }
  // Box-Muller; reject u1 == 0 to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double th = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(th);
  has_cached_ = true;
  return r * std::cos(th);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Lemire's bounded generation with rejection to remove modulo bias.
  if (n == 0) return 0;
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  k = std::min(k, n);
  std::vector<std::size_t> out;
  out.reserve(k);
  // Floyd's algorithm: O(k) draws, no shuffle of the full range.
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(uniform_int(j + 1));
    if (std::find(out.begin(), out.end(), t) == out.end())
      out.push_back(t);
    else
      out.push_back(j);
  }
  return out;
}

Rng Rng::split() {
  return Rng(next_u64());
}

}  // namespace bda
