#include "util/metrics.hpp"

#include <algorithm>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <ctime>
#define BDA_HAVE_THREAD_CPUTIME 1
#endif

#include "util/stats.hpp"

namespace bda::util {

double thread_cpu_seconds() {
#ifdef BDA_HAVE_THREAD_CPUTIME
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
#endif
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

void Metrics::count(const std::string& name, std::uint64_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  counters_[name] += n;
}

void Metrics::observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lk(mu_);
  series_[name].push_back(value);
}

std::uint64_t Metrics::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0u : it->second;
}

std::size_t Metrics::samples(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = series_.find(name);
  return it == series_.end() ? 0u : it->second.size();
}

double Metrics::total(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = series_.find(name);
  if (it == series_.end()) return 0.0;
  double sum = 0.0;
  for (double v : it->second) sum += v;
  return sum;
}

double Metrics::percentile(const std::string& name, double p) const {
  std::vector<double> copy;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = series_.find(name);
    if (it == series_.end() || it->second.empty()) return 0.0;
    copy = it->second;
  }
  return bda::percentile(std::move(copy), p);
}

namespace {
TimerStats stats_of(const std::vector<double>& v) {
  TimerStats s;
  s.count = v.size();
  if (v.empty()) return s;
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (double x : sorted) s.total_s += x;
  s.mean_s = s.total_s / double(sorted.size());
  s.min_s = sorted.front();
  s.max_s = sorted.back();
  s.p50_s = bda::percentile(sorted, 50.0);
  s.p97_s = bda::percentile(sorted, 97.0);
  s.p99_s = bda::percentile(sorted, 99.0);
  return s;
}
}  // namespace

TimerStats Metrics::timer_stats(const std::string& name) const {
  std::vector<double> copy;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = series_.find(name);
    if (it != series_.end()) copy = it->second;
  }
  return stats_of(copy);
}

std::vector<std::string> Metrics::counter_names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [k, v] : counters_) names.push_back(k);
  return names;
}

std::vector<std::string> Metrics::timer_names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [k, v] : series_) names.push_back(k);
  return names;
}

namespace {
void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

// Metric names are caller-chosen strings (bench labels interpolate tile
// keys, file paths, ...), so export must escape them: a bare `"` or `\`
// in a key used to render the whole BENCH_*.json unparseable.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

std::string Metrics::to_json() const {
  // Snapshot under the lock, format outside it.
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::vector<double>> series;
  {
    std::lock_guard<std::mutex> lk(mu_);
    counters = counters_;
    series = series_;
  }

  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"timers\": {";
  first = true;
  for (const auto& [name, v] : series) {
    const TimerStats s = stats_of(v);
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"count\": " +
           std::to_string(s.count);
    const std::pair<const char*, double> fields[] = {
        {"total_s", s.total_s}, {"mean_s", s.mean_s}, {"min_s", s.min_s},
        {"max_s", s.max_s},     {"p50_s", s.p50_s},   {"p97_s", s.p97_s},
        {"p99_s", s.p99_s}};
    for (const auto& [key, val] : fields) {
      out += ", \"";
      out += key;
      out += "\": ";
      append_number(out, val);
    }
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void Metrics::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  counters_.clear();
  series_.clear();
}

}  // namespace bda::util
