// Fundamental scalar types for the BDA reproduction.
//
// The paper's headline software innovation is running both the weather model
// (SCALE) and the data assimilation (LETKF) in *single precision* for a ~2x
// speedup over the conventional double-precision configuration.  We follow
// that choice: `bda::real` is float.  Modules that participate in the
// precision ablation (bench_ablation_precision) are templated on the scalar
// type so the double-precision baseline remains available.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bda {

/// Default floating-point type for model state and analysis (paper: single).
using real = float;

/// Index type for grid dimensions.  Signed so halo indices (-h..n+h) are
/// representable without casts.
using idx = std::int64_t;

/// Physical constants shared between the model, observation operators and
/// verification.  Values follow the conventions of regional NWP models.
template <typename T>
struct Constants {
  static constexpr T grav = T(9.80665);    ///< gravity [m/s2]
  static constexpr T rdry = T(287.04);     ///< gas constant, dry air [J/kg/K]
  static constexpr T rvap = T(461.50);     ///< gas constant, vapor [J/kg/K]
  static constexpr T cp = T(1004.64);      ///< specific heat, const p [J/kg/K]
  static constexpr T cv = T(717.60);       ///< specific heat, const v [J/kg/K]
  static constexpr T pres00 = T(100000.0); ///< reference pressure [Pa]
  static constexpr T lhv = T(2.501e6);     ///< latent heat, vaporization [J/kg]
  static constexpr T lhf = T(3.34e5);      ///< latent heat, fusion [J/kg]
  static constexpr T lhs = T(2.835e6);     ///< latent heat, sublimation [J/kg]
  static constexpr T tem00 = T(273.15);    ///< freezing point [K]
  static constexpr T dens_water = T(1000.0); ///< liquid water density [kg/m3]
  static constexpr T kappa = rdry / cp;    ///< R/cp exponent
};

using Const = Constants<real>;

}  // namespace bda
