#include "util/binary_io.hpp"

#include <array>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace bda::io {

void write_file(const std::string& path, const std::vector<std::uint8_t>& buf,
                const char* what) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f)
    throw std::runtime_error(std::string(what) +
                             ": cannot open for write: " + path);
  // The one sanctioned reinterpret_cast in the tree: iostreams speak char*,
  // the buffers are uint8_t — both are byte types, so this is not punning.
  f.write(reinterpret_cast<const char*>(buf.data()),
          static_cast<std::streamsize>(buf.size()));
  if (!f)
    throw std::runtime_error(std::string(what) + ": write failed: " + path);
}

void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& buf,
                       const char* what) {
  // Unique per call so concurrent writers of the SAME path cannot stomp
  // each other's staging file (last rename wins, both renames are whole
  // files).  Same directory as the target: rename must not cross a
  // filesystem boundary.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp =
      path + ".tmp." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  write_file(tmp, buf, what);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error(std::string(what) +
                             ": atomic rename failed: " + path);
  }
}

}  // namespace bda::io

namespace bda {

namespace {
constexpr std::array<char, 4> kMagic = {'B', 'D', 'F', '1'};
}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> encode_bdf(const std::vector<FieldRecord>& recs) {
  // Seed with the magic at construction: insert() into a still-empty vector
  // trips GCC 12's -Wstringop-overflow false positive under -fsanitize.
  std::vector<std::uint8_t> buf(kMagic.begin(), kMagic.end());
  io::put_scalar<std::uint32_t>(buf, static_cast<std::uint32_t>(recs.size()));
  for (const auto& r : recs) {
    io::put_scalar<std::uint32_t>(buf,
                                  static_cast<std::uint32_t>(r.name.size()));
    io::append_raw(buf, r.name.data(), r.name.size());
    io::put_scalar<std::uint32_t>(buf, static_cast<std::uint32_t>(r.data.nx()));
    io::put_scalar<std::uint32_t>(buf, static_cast<std::uint32_t>(r.data.ny()));
    io::put_scalar<std::uint32_t>(buf, static_cast<std::uint32_t>(r.data.nz()));
    for (idx i = 0; i < r.data.nx(); ++i)
      for (idx j = 0; j < r.data.ny(); ++j) {
        auto col = r.data.column(i, j);
        io::append_raw(buf, col.data(), col.size());
      }
  }
  const std::uint32_t crc = crc32(buf.data(), buf.size());
  io::put_scalar<std::uint32_t>(buf, crc);
  return buf;
}

std::vector<FieldRecord> decode_bdf(const std::vector<std::uint8_t>& buf) {
  if (buf.size() < 12) throw std::runtime_error("BDF: too short");
  if (std::memcmp(buf.data(), kMagic.data(), 4) != 0)
    throw std::runtime_error("BDF: bad magic");
  std::size_t crc_pos = buf.size() - 4;
  const auto stored_crc = io::take_scalar<std::uint32_t>(buf, crc_pos, "BDF");
  if (crc32(buf.data(), buf.size() - 4) != stored_crc)
    throw std::runtime_error("BDF: CRC mismatch");

  std::size_t pos = 4;
  const auto nrec = io::take_scalar<std::uint32_t>(buf, pos, "BDF");
  std::vector<FieldRecord> recs;
  recs.reserve(nrec);
  for (std::uint32_t r = 0; r < nrec; ++r) {
    const auto nlen = io::take_scalar<std::uint32_t>(buf, pos, "BDF");
    if (pos + nlen > buf.size()) throw std::runtime_error("BDF: truncated");
    std::string name(nlen, '\0');
    io::take_raw(buf, pos, name.data(), nlen, "BDF");
    const auto nx = io::take_scalar<std::uint32_t>(buf, pos, "BDF");
    const auto ny = io::take_scalar<std::uint32_t>(buf, pos, "BDF");
    const auto nz = io::take_scalar<std::uint32_t>(buf, pos, "BDF");
    if (nx == 0 || ny == 0 || nz == 0)
      throw std::runtime_error("BDF: zero dimension");
    Field3D<float> f(nx, ny, nz, 0);
    for (std::uint32_t i = 0; i < nx; ++i)
      for (std::uint32_t j = 0; j < ny; ++j) {
        auto col = f.column(i, j);
        io::take_raw(buf, pos, col.data(), col.size(), "BDF");
      }
    recs.push_back({std::move(name), std::move(f)});
  }
  return recs;
}

void write_bdf(const std::string& path, const std::vector<FieldRecord>& recs) {
  // Products of record (map view, 3-D volume, checkpoints) are published
  // atomically: the file either does not exist yet or is complete.
  io::write_file_atomic(path, encode_bdf(recs), "BDF");
}

std::vector<FieldRecord> read_bdf(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("BDF: cannot open: " + path);
  std::vector<std::uint8_t> buf((std::istreambuf_iterator<char>(f)),
                                std::istreambuf_iterator<char>());
  return decode_bdf(buf);
}

}  // namespace bda
