#include "util/binary_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace bda {

namespace {

constexpr std::array<char, 4> kMagic = {'B', 'D', 'F', '1'};

template <typename T>
void put(std::vector<std::uint8_t>& buf, T v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  buf.insert(buf.end(), p, p + sizeof(T));
}

template <typename T>
T take(const std::vector<std::uint8_t>& buf, std::size_t& pos) {
  if (pos + sizeof(T) > buf.size())
    throw std::runtime_error("BDF: truncated buffer");
  T v;
  std::memcpy(&v, buf.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> encode_bdf(const std::vector<FieldRecord>& recs) {
  std::vector<std::uint8_t> buf;
  buf.insert(buf.end(), kMagic.begin(), kMagic.end());
  put<std::uint32_t>(buf, static_cast<std::uint32_t>(recs.size()));
  for (const auto& r : recs) {
    put<std::uint32_t>(buf, static_cast<std::uint32_t>(r.name.size()));
    buf.insert(buf.end(), r.name.begin(), r.name.end());
    put<std::uint32_t>(buf, static_cast<std::uint32_t>(r.data.nx()));
    put<std::uint32_t>(buf, static_cast<std::uint32_t>(r.data.ny()));
    put<std::uint32_t>(buf, static_cast<std::uint32_t>(r.data.nz()));
    for (idx i = 0; i < r.data.nx(); ++i)
      for (idx j = 0; j < r.data.ny(); ++j) {
        auto col = r.data.column(i, j);
        const auto* p = reinterpret_cast<const std::uint8_t*>(col.data());
        buf.insert(buf.end(), p, p + col.size() * sizeof(float));
      }
  }
  const std::uint32_t crc = crc32(buf.data(), buf.size());
  put<std::uint32_t>(buf, crc);
  return buf;
}

std::vector<FieldRecord> decode_bdf(const std::vector<std::uint8_t>& buf) {
  if (buf.size() < 12) throw std::runtime_error("BDF: too short");
  if (std::memcmp(buf.data(), kMagic.data(), 4) != 0)
    throw std::runtime_error("BDF: bad magic");
  const std::uint32_t stored_crc =
      [&] {
        std::uint32_t c;
        std::memcpy(&c, buf.data() + buf.size() - 4, 4);
        return c;
      }();
  if (crc32(buf.data(), buf.size() - 4) != stored_crc)
    throw std::runtime_error("BDF: CRC mismatch");

  std::size_t pos = 4;
  const auto nrec = take<std::uint32_t>(buf, pos);
  std::vector<FieldRecord> recs;
  recs.reserve(nrec);
  for (std::uint32_t r = 0; r < nrec; ++r) {
    const auto nlen = take<std::uint32_t>(buf, pos);
    if (pos + nlen > buf.size()) throw std::runtime_error("BDF: truncated");
    std::string name(reinterpret_cast<const char*>(buf.data() + pos), nlen);
    pos += nlen;
    const auto nx = take<std::uint32_t>(buf, pos);
    const auto ny = take<std::uint32_t>(buf, pos);
    const auto nz = take<std::uint32_t>(buf, pos);
    if (nx == 0 || ny == 0 || nz == 0)
      throw std::runtime_error("BDF: zero dimension");
    Field3D<float> f(nx, ny, nz, 0);
    for (std::uint32_t i = 0; i < nx; ++i)
      for (std::uint32_t j = 0; j < ny; ++j) {
        auto col = f.column(i, j);
        const std::size_t bytes = col.size() * sizeof(float);
        if (pos + bytes > buf.size())
          throw std::runtime_error("BDF: truncated data");
        std::memcpy(col.data(), buf.data() + pos, bytes);
        pos += bytes;
      }
    recs.push_back({std::move(name), std::move(f)});
  }
  return recs;
}

void write_bdf(const std::string& path, const std::vector<FieldRecord>& recs) {
  const auto buf = encode_bdf(recs);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("BDF: cannot open for write: " + path);
  f.write(reinterpret_cast<const char*>(buf.data()),
          static_cast<std::streamsize>(buf.size()));
  if (!f) throw std::runtime_error("BDF: write failed: " + path);
}

std::vector<FieldRecord> read_bdf(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("BDF: cannot open: " + path);
  std::vector<std::uint8_t> buf((std::istreambuf_iterator<char>(f)),
                                std::istreambuf_iterator<char>());
  return decode_bdf(buf);
}

}  // namespace bda
