#include "util/codec.hpp"

#include <stdexcept>

namespace bda {

namespace {
constexpr std::uint8_t kEscape = 0xAB;
constexpr std::size_t kMinRun = 4;
constexpr std::size_t kMaxRun = 65535;
}  // namespace

std::vector<std::uint8_t> encode_rle(const std::vector<std::uint8_t>& in) {
  std::vector<std::uint8_t> out;
  out.reserve(in.size() / 2 + 16);
  std::size_t i = 0;
  while (i < in.size()) {
    // Measure the run at i.
    std::size_t run = 1;
    while (i + run < in.size() && in[i + run] == in[i] && run < kMaxRun)
      ++run;
    if (run >= kMinRun || in[i] == kEscape) {
      out.push_back(kEscape);
      out.push_back(std::uint8_t(run & 0xFF));
      out.push_back(std::uint8_t(run >> 8));
      out.push_back(in[i]);
      i += run;
    } else {
      out.push_back(in[i]);
      ++i;
    }
  }
  return out;
}

std::vector<std::uint8_t> decode_rle(const std::vector<std::uint8_t>& in) {
  std::vector<std::uint8_t> out;
  out.reserve(in.size() * 2);
  std::size_t i = 0;
  while (i < in.size()) {
    if (in[i] == kEscape) {
      if (i + 3 >= in.size())
        throw std::runtime_error("RLE: truncated escape sequence");
      const std::size_t run =
          std::size_t(in[i + 1]) | (std::size_t(in[i + 2]) << 8);
      if (run == 0) throw std::runtime_error("RLE: zero-length run");
      out.insert(out.end(), run, in[i + 3]);
      i += 4;
    } else {
      out.push_back(in[i]);
      ++i;
    }
  }
  return out;
}

}  // namespace bda
