#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace bda {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double d = x - mean_;
  mean_ += d / double(n_);
  m2_ += d * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / double(n_ - 1) : 0.0;
}

double RunningStats::stddev() const {
  return std::sqrt(variance());
}

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double d = o.mean_ - mean_;
  const std::size_t n = n_ + o.n_;
  m2_ += o.m2_ + d * d * double(n_) * double(o.n_) / double(n);
  mean_ += d * double(o.n_) / double(n);
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  n_ = n;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  // Clamp p: out-of-range p (or any p > 0 on a single sample, where
  // rank rounds to size-1 exactly) must not produce an index past the
  // last element — casting a negative rank to size_t wraps huge.
  p = std::clamp(p, 0.0, 100.0);
  const double rank = (p / 100.0) * double(v.size() - 1);
  const std::size_t lo = std::min(static_cast<std::size_t>(rank),
                                  v.size() - 1);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - double(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double fraction_below(const std::vector<double>& v, double threshold) {
  if (v.empty()) return 0.0;
  std::size_t n = 0;
  for (double x : v)
    if (x <= threshold) ++n;
  return double(n) / double(v.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {}

void Histogram::add(double x) {
  const double w = (hi_ - lo_) / double(counts_.size());
  long b = static_cast<long>(std::floor((x - lo_) / w));
  b = std::clamp<long>(b, 0, long(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(b)];
  ++total_;
}

double Histogram::bin_lo(std::size_t b) const {
  return lo_ + (hi_ - lo_) * double(b) / double(counts_.size());
}

double Histogram::bin_hi(std::size_t b) const {
  return lo_ + (hi_ - lo_) * double(b + 1) / double(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "[%6.2f,%6.2f) %8zu |", bin_lo(b),
                  bin_hi(b), counts_[b]);
    os << buf;
    const std::size_t bar = counts_[b] * width / peak;
    for (std::size_t i = 0; i < bar; ++i) os << '#';
    os << '\n';
  }
  return os.str();
}

}  // namespace bda
