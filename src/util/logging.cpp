#include "util/logging.hpp"

#include <cstdio>

namespace bda {

namespace {
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

Logger::Logger()
    : sink_([](LogLevel lvl, const std::string& msg) {
        std::fprintf(stderr, "[%s] %s\n", level_name(lvl), msg.c_str());
      }) {}

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

Logger::Sink Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  auto prev = std::move(sink_);
  sink_ = std::move(sink);
  return prev;
}

void Logger::log(LogLevel lvl, const std::string& msg) {
  if (static_cast<int>(lvl) < static_cast<int>(level())) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_) sink_(lvl, msg);
}

}  // namespace bda
