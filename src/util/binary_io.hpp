// Simple self-describing binary container for 3-D fields ("BDF1" format).
//
// Stands in for the NetCDF files the real system writes: the final forecast
// product whose file timestamp defines the end of time-to-solution (paper
// Sec. 6.1, "Measurement mechanism: final product file time stamp"), and the
// legacy SCALE<->LETKF file transport that the parallel in-memory path
// replaced.  Little-endian; header carries dims and scalar width.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/field.hpp"

namespace bda {

struct FieldRecord {
  std::string name;       ///< variable name, e.g. "qr" or "reflectivity"
  Field3D<float> data;    ///< interior values (halo is never serialized)
};

/// Write records to `path`; throws std::runtime_error on I/O failure.
void write_bdf(const std::string& path, const std::vector<FieldRecord>& recs);

/// Read all records; throws std::runtime_error on missing/corrupt file.
std::vector<FieldRecord> read_bdf(const std::string& path);

/// Serialize to an in-memory buffer (used by the in-memory transport and by
/// JIT-DT framing tests).
std::vector<std::uint8_t> encode_bdf(const std::vector<FieldRecord>& recs);
std::vector<FieldRecord> decode_bdf(const std::vector<std::uint8_t>& buf);

/// CRC32 (IEEE) — JIT-DT verifies every transferred chunk with this.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

}  // namespace bda
