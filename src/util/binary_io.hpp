// Simple self-describing binary container for 3-D fields ("BDF1" format).
//
// Stands in for the NetCDF files the real system writes: the final forecast
// product whose file timestamp defines the end of time-to-solution (paper
// Sec. 6.1, "Measurement mechanism: final product file time stamp"), and the
// legacy SCALE<->LETKF file transport that the parallel in-memory path
// replaced.  Little-endian; header carries dims and scalar width.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "util/field.hpp"

namespace bda::io {

// The repo's single home for byte-level type punning.  Everything goes
// through std::memcpy on trivially-copyable types (defined behaviour, and
// compilers lower it to plain loads/stores), so serializers elsewhere never
// need a reinterpret_cast of their own — tools/check_bda_style.py enforces
// that only util/binary_io.cpp may spell one.

/// Append the object representation of `v` to `buf` (native endianness).
template <typename T>
void put_scalar(std::vector<std::uint8_t>& buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t old = buf.size();
  buf.resize(old + sizeof(T));
  std::memcpy(buf.data() + old, &v, sizeof(T));
}

/// Read a `T` at `pos` and advance; throws if the buffer is too short.
template <typename T>
T take_scalar(const std::vector<std::uint8_t>& buf, std::size_t& pos,
              const char* what = "binary_io") {
  static_assert(std::is_trivially_copyable_v<T>);
  if (pos + sizeof(T) > buf.size())
    throw std::runtime_error(std::string(what) + ": truncated buffer");
  T v;
  std::memcpy(&v, buf.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

/// Append the raw bytes of `n` contiguous elements at `p`.
template <typename T>
void append_raw(std::vector<std::uint8_t>& buf, const T* p, std::size_t n) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t old = buf.size();
  buf.resize(old + n * sizeof(T));
  std::memcpy(buf.data() + old, p, n * sizeof(T));
}

/// Copy `n` elements out of `buf` at `pos` into `dst` and advance; throws if
/// the buffer is too short.
template <typename T>
void take_raw(const std::vector<std::uint8_t>& buf, std::size_t& pos, T* dst,
              std::size_t n, const char* what = "binary_io") {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t bytes = n * sizeof(T);
  if (pos + bytes > buf.size())
    throw std::runtime_error(std::string(what) + ": truncated buffer");
  std::memcpy(dst, buf.data() + pos, bytes);
  pos += bytes;
}

/// Write a whole byte buffer to `path` (binary, truncating); throws on I/O
/// failure.  `what` prefixes error messages ("BDF", "PWR1", ...).
/// NOTE: writes in place — a concurrent reader can observe a truncated
/// file.  Product-of-record paths must use write_file_atomic instead.
void write_file(const std::string& path, const std::vector<std::uint8_t>& buf,
                const char* what = "binary_io");

/// Write `buf` to a unique temp file next to `path`, then rename it into
/// place.  rename(2) is atomic within a filesystem, so a concurrent reader
/// (the serving tier, the ops watcher, the JIT-DT directory poll) sees
/// either the previous complete file or the new complete file — never a
/// torn intermediate whose mtime already claims T_fcst.  Throws on I/O
/// failure; the temp file is removed on error.
void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& buf,
                       const char* what = "binary_io");

}  // namespace bda::io

namespace bda {

struct FieldRecord {
  std::string name;       ///< variable name, e.g. "qr" or "reflectivity"
  Field3D<float> data;    ///< interior values (halo is never serialized)
};

/// Write records to `path`; throws std::runtime_error on I/O failure.
void write_bdf(const std::string& path, const std::vector<FieldRecord>& recs);

/// Read all records; throws std::runtime_error on missing/corrupt file.
std::vector<FieldRecord> read_bdf(const std::string& path);

/// Serialize to an in-memory buffer (used by the in-memory transport and by
/// JIT-DT framing tests).
std::vector<std::uint8_t> encode_bdf(const std::vector<FieldRecord>& recs);
std::vector<FieldRecord> decode_bdf(const std::vector<std::uint8_t>& buf);

/// CRC32 (IEEE) — JIT-DT verifies every transferred chunk with this.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

}  // namespace bda
