#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bda {

namespace {
std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}
}  // namespace

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  std::string section;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments (full-line or trailing).
    const auto hash = line.find_first_of("#;");
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']')
        throw std::runtime_error("config line " + std::to_string(lineno) +
                                 ": unterminated section header");
      section = trim(line.substr(1, line.size() - 2));
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      throw std::runtime_error("config line " + std::to_string(lineno) +
                               ": expected key = value");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty())
      throw std::runtime_error("config line " + std::to_string(lineno) +
                               ": empty key");
    cfg.values_[section.empty() ? key : section + "." + key] = value;
  }
  return cfg;
}

Config Config::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open config file: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse(ss.str());
}

std::optional<std::string> Config::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_or(const std::string& key,
                           const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double Config::get_or(const std::string& key, double fallback) const {
  const auto v = get(key);
  return v ? std::stod(*v) : fallback;
}

long Config::get_or(const std::string& key, long fallback) const {
  const auto v = get(key);
  return v ? std::stol(*v) : fallback;
}

bool Config::get_or(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  std::string s = *v;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "true" || s == "yes" || s == "on" || s == "1") return true;
  if (s == "false" || s == "no" || s == "off" || s == "0") return false;
  throw std::runtime_error("config key " + key + ": not a boolean: " + *v);
}

std::string Config::require(const std::string& key) const {
  const auto v = get(key);
  if (!v) throw std::runtime_error("config key missing: " + key);
  return *v;
}

double Config::require_double(const std::string& key) const {
  return std::stod(require(key));
}

long Config::require_long(const std::string& key) const {
  return std::stol(require(key));
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::has(const std::string& key) const {
  return values_.count(key) != 0;
}

}  // namespace bda
