// Minimal INI-style configuration reader.
//
// The operational SCALE-LETKF is driven by Fortran namelists; our examples
// use the same idea — a flat text file of `[section]` + `key = value` lines —
// so experiment configurations (Tables 2 and 3 of the paper) can be changed
// without recompiling.
#pragma once

#include <map>
#include <optional>
#include <string>

namespace bda {

class Config {
 public:
  Config() = default;

  /// Parse from text.  Lines: `[section]`, `key = value`, `#`/`;` comments.
  /// Throws std::runtime_error with line number on malformed input.
  static Config parse(const std::string& text);

  /// Parse a file; throws std::runtime_error if unreadable.
  static Config load(const std::string& path);

  /// Typed getters; key is "section.key".  The `get_or` forms return the
  /// fallback when the key is absent; the `require` forms throw.
  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;
  double get_or(const std::string& key, double fallback) const;
  long get_or(const std::string& key, long fallback) const;
  bool get_or(const std::string& key, bool fallback) const;
  std::string require(const std::string& key) const;
  double require_double(const std::string& key) const;
  long require_long(const std::string& key) const;

  void set(const std::string& key, const std::string& value);
  bool has(const std::string& key) const;
  std::size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace bda
