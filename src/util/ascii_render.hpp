// ASCII rendering of 2-D fields.
//
// The paper's Figs 1, 6 and 8 are map views and 3-D views of radar
// reflectivity.  Our benches render the same fields as terminal "maps" so
// forecast/observation agreement can be inspected directly in bench output.
// The dBZ character ramp mirrors the paper's color classes (shades above
// 40 dBZ are the hazardous ones).
#pragma once

#include <string>

#include "util/field.hpp"

namespace bda {

/// Render a horizontal slice with a linear ramp between lo and hi.
std::string render_field(const RField2D& f, real lo, real hi);

/// Render reflectivity (dBZ) with the meteorological intensity classes:
/// ' ' <10, '.' 10-20, ':' 20-30, 'o' 30-40, 'O' 40-50, '@' >=50 dBZ.
std::string render_dbz(const RField2D& f);

/// Extract a horizontal slice at model level k from a 3-D field.
RField2D slice_k(const RField3D& f, idx k);

/// Column maximum over levels [k0, k1) — "composite reflectivity" view.
RField2D column_max(const RField3D& f, idx k0, idx k1);

}  // namespace bda
