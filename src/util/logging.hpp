// Leveled logger.
//
// The operational system's fail-safe relied on monitoring logs of every
// workflow component (JIT-DT restarts, cycle delays).  Our orchestrator and
// JIT-DT watchdog log through this interface; tests capture it via a sink.
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace bda {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Process-wide logger.  Default sink writes to stderr.
  static Logger& global();

  void set_level(LogLevel lvl) { level_ = lvl; }
  LogLevel level() const { return level_; }
  /// Replace the sink (returns the previous one so tests can restore it).
  Sink set_sink(Sink sink);

  void log(LogLevel lvl, const std::string& msg);

 private:
  Logger();
  std::mutex mu_;
  LogLevel level_ = LogLevel::kInfo;
  Sink sink_;
};

namespace detail {
template <typename... Args>
std::string cat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  Logger::global().log(LogLevel::kDebug,
                       detail::cat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  Logger::global().log(LogLevel::kInfo,
                       detail::cat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  Logger::global().log(LogLevel::kWarn,
                       detail::cat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  Logger::global().log(LogLevel::kError,
                       detail::cat(std::forward<Args>(args)...));
}

}  // namespace bda
