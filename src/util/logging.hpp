// Leveled logger.
//
// The operational system's fail-safe relied on monitoring logs of every
// workflow component (JIT-DT restarts, cycle delays).  Our orchestrator and
// JIT-DT watchdog log through this interface; tests capture it via a sink.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>

#include "util/annotations.hpp"

namespace bda {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Thread-safe leveled logger.  All of the cycle path logs through this from
/// concurrent contexts (comm rank threads, the JIT-DT watcher thread, OpenMP
/// regions), so the level gate is atomic (read lock-free on every call) and
/// the sink is swapped and invoked under `mu_`.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Process-wide logger.  Default sink writes to stderr.
  static Logger& global();

  void set_level(LogLevel lvl) {
    level_.store(static_cast<int>(lvl), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  /// Replace the sink (returns the previous one so tests can restore it).
  Sink set_sink(Sink sink);

  void log(LogLevel lvl, const std::string& msg);

 private:
  Logger();
  std::mutex mu_;
  std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};
  Sink sink_ BDA_GUARDED_BY(mu_);
};

namespace detail {
template <typename... Args>
std::string cat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  Logger::global().log(LogLevel::kDebug,
                       detail::cat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  Logger::global().log(LogLevel::kInfo,
                       detail::cat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  Logger::global().log(LogLevel::kWarn,
                       detail::cat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  Logger::global().log(LogLevel::kError,
                       detail::cat(std::forward<Args>(args)...));
}

}  // namespace bda
