#include "util/ascii_render.hpp"

#include <algorithm>
#include <sstream>

namespace bda {

std::string render_field(const RField2D& f, real lo, real hi) {
  static const char ramp[] = " .:-=+*#%@";
  constexpr int nramp = sizeof(ramp) - 2;
  std::ostringstream os;
  // j decreasing so north is up, matching a map view.
  for (idx j = f.ny() - 1; j >= 0; --j) {
    for (idx i = 0; i < f.nx(); ++i) {
      real t = (f(i, j) - lo) / (hi - lo);
      t = std::clamp<real>(t, 0, 1);
      os << ramp[static_cast<int>(t * nramp + real(0.5))];
    }
    os << '\n';
  }
  return os.str();
}

std::string render_dbz(const RField2D& f) {
  std::ostringstream os;
  for (idx j = f.ny() - 1; j >= 0; --j) {
    for (idx i = 0; i < f.nx(); ++i) {
      const real z = f(i, j);
      char c = ' ';
      if (z >= 50)
        c = '@';
      else if (z >= 40)
        c = 'O';
      else if (z >= 30)
        c = 'o';
      else if (z >= 20)
        c = ':';
      else if (z >= 10)
        c = '.';
      os << c;
    }
    os << '\n';
  }
  return os.str();
}

RField2D slice_k(const RField3D& f, idx k) {
  RField2D out(f.nx(), f.ny(), 0);
  for (idx i = 0; i < f.nx(); ++i)
    for (idx j = 0; j < f.ny(); ++j) out(i, j) = f(i, j, k);
  return out;
}

RField2D column_max(const RField3D& f, idx k0, idx k1) {
  RField2D out(f.nx(), f.ny(), 0);
  for (idx i = 0; i < f.nx(); ++i)
    for (idx j = 0; j < f.ny(); ++j) {
      real m = f(i, j, k0);
      for (idx k = k0 + 1; k < k1; ++k) m = std::max(m, f(i, j, k));
      out(i, j) = m;
    }
  return out;
}

}  // namespace bda
