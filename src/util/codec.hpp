// Byte-level run-length codec.
//
// A volume scan is mostly clear air: long runs of identical bytes in the
// reflectivity floor and the flag plane.  The operational transfer chain
// compresses scans before they hit the wire; this RLE codec provides the
// same lever for JIT-DT (compress -> transfer fewer bytes -> decompress),
// with exact round-trip guarantees.
//
// Format: a sequence of (count, byte) pairs for runs of length >= 4 escaped
// as {kEscape, count_lo, count_hi, byte}; literal bytes otherwise, with the
// escape byte itself escaped as a run of length 1.
#pragma once

#include <cstdint>
#include <vector>

namespace bda {

/// Compress; never fails.  Worst case inflates by ~4/255 per escape byte.
std::vector<std::uint8_t> encode_rle(const std::vector<std::uint8_t>& in);

/// Decompress; throws std::runtime_error on malformed input.
std::vector<std::uint8_t> decode_rle(const std::vector<std::uint8_t>& in);

}  // namespace bda
