// Deterministic random number generation.
//
// Everything stochastic in the reproduction — ensemble perturbations,
// observation noise, synthetic rain climatology, failure injection — draws
// from this generator so that every test, bench and example is exactly
// reproducible from its seed.  xoshiro256** is used for speed and good
// statistical quality without pulling in <random>'s implementation-defined
// distributions (std::normal_distribution output differs across libstdc++
// versions; ours does not).
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace bda {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n);

  /// Sample k distinct indices from [0, n) (Floyd's algorithm).  Used to
  /// pick the 10 random analysis members that initialize the 30-minute
  /// ensemble forecast (paper Sec. 5, part <2>).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Derive an independent stream (for per-member / per-thread use).
  Rng split();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace bda
