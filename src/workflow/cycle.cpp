#include "workflow/cycle.hpp"

#include <cmath>

#include "scale/microphysics.hpp"

namespace bda::workflow {

namespace {
/// Regional (nested) runs relax a Davies rim toward the outer state; the
/// model halos must then be clamped, not periodic.
scale::ModelConfig adjusted_model(const BdaSystemConfig& cfg) {
  scale::ModelConfig m = cfg.model;
  if (cfg.use_outer_domain)
    m.dyn.lateral_bc = scale::LateralBc::kClamp;
  return m;
}
}  // namespace

BdaSystem::BdaSystem(const scale::Grid& grid, const scale::Sounding& sounding,
                     BdaSystemConfig cfg)
    : grid_(grid), cfg_(cfg), rng_(cfg.seed),
      nature_(grid_, sounding, adjusted_model(cfg)),
      ens_(grid_, sounding, adjusted_model(cfg), cfg.n_members),
      radar_(grid_, cfg.scan, cfg.radar),
      extra_radars_([&] {
        std::vector<pawr::RadarSimulator> v;
        v.reserve(cfg.extra_radars.size());
        for (const auto& rc : cfg.extra_radars)
          v.emplace_back(grid_, cfg.scan, rc);
        return v;
      }()),
      letkf_(grid_, cfg.letkf),
      obsop_(grid_, cfg.radar.radar_x, cfg.radar.radar_y, cfg.radar.radar_z,
             cfg.radar.micro) {
  if (cfg_.use_outer_domain) {
    // Outer domain: same horizontal cell count at coarser spacing (so it
    // covers outer_dx/dx times the inner extent, centered — Fig 3a) and
    // the exact inner vertical column.
    outer_grid_ = std::make_unique<scale::Grid>(scale::Grid::with_faces(
        grid_.nx(), grid_.ny(), cfg_.outer_dx, grid_.faces()));
    scale::ModelConfig ocfg = cfg_.model;
    ocfg.dt *= cfg_.outer_dx / grid_.dx();  // coarser grid, longer step
    ocfg.dyn.lateral_bc = scale::LateralBc::kClamp;
    outer_model_ =
        std::make_unique<scale::Model>(*outer_grid_, sounding, ocfg);
    meso_driver_ = std::make_unique<scale::SyntheticMesoscaleDriver>(
        *outer_grid_, outer_model_->reference(), 5.0f, 2.0f);
    outer_model_->set_boundary(meso_driver_.get(), 4, 60.0f);

    inner_bc_ = std::make_unique<scale::State>(grid_);
    bc_driver_ = std::make_unique<scale::StateDriver>(inner_bc_.get());
    refresh_outer_boundary();  // initial boundary at t = 0
    nature_.set_boundary(bc_driver_.get(), cfg_.davies_width,
                         cfg_.davies_tau);
    ens_.set_boundary(bc_driver_.get(), cfg_.davies_width, cfg_.davies_tau);
  }
}

void BdaSystem::refresh_outer_boundary() {
  if (!cfg_.use_outer_domain) return;
  if (time_ - last_outer_refresh_ < cfg_.outer_refresh_s) return;
  // Advance the outer forecast to the current time and downscale it.
  const double lag = time_ - outer_model_->time();
  if (lag > 0) outer_model_->advance(real(lag));
  scale::nest_interpolate(outer_model_->state(), *outer_grid_, *inner_bc_,
                          grid_);
  last_outer_refresh_ = time_;
}

void BdaSystem::spinup_nature(double seconds) {
  nature_.advance(real(seconds));
  time_ = nature_.time();
  ens_.set_time(time_);
}

void BdaSystem::spinup(double seconds) {
  nature_.advance(real(seconds));
  ens_.advance(real(seconds));
  time_ = nature_.time();
}

void BdaSystem::trigger_storm(real x, real y, real amplitude,
                              bool in_ensemble, real displace) {
  scale::add_thermal_bubble(nature_.state(), grid_, x, y, 1200.0f, 3000.0f,
                            1200.0f, amplitude);
  scale::add_moisture_anomaly(nature_.state(), grid_, x, y, 1000.0f, 4000.0f,
                              1500.0f, 0.002f);
  if (in_ensemble) {
    for (int m = 0; m < ens_.size(); ++m) {
      // Same storm, displaced and weakened differently per member: the
      // ensemble "knows" convection is around but not exactly where —
      // the situation the 30-s radar refresh corrects.
      const real dx = real(rng_.normal(0.0, displace));
      const real dy = real(rng_.normal(0.0, displace));
      const real amp = amplitude * real(0.7 + 0.3 * rng_.uniform());
      scale::add_thermal_bubble(ens_.member(m), grid_, x + dx, y + dy,
                                1200.0f, 3000.0f, 1200.0f, amp);
      scale::add_moisture_anomaly(ens_.member(m), grid_, x + dx, y + dy,
                                  1000.0f, 4000.0f, 1500.0f, 0.002f);
    }
  }
}

void BdaSystem::perturb_ensemble() {
  ens_.perturb(cfg_.perturb, rng_);
}

pawr::VolumeScan BdaSystem::observe_nature() {
  return radar_.observe(nature_.state(), time_, rng_);
}

CycleResult BdaSystem::cycle() {
  CycleResult res;

  // Fig 3 cadence: refresh the nested lateral boundary when the outer
  // domain's 3-hourly (scaled) forecast is due.
  refresh_outer_boundary();

  // Nature evolves to the new observation time.
  nature_.advance(real(cfg_.cycle_s));
  time_ = nature_.time();

  // Radar completes its volume scan of the truth (T_obs).
  pawr::VolumeScan scan = radar_.observe(nature_.state(), time_, rng_);
  res.t_obs = time_;

  // Optionally push the scan bytes through JIT-DT (the real data path).
  if (cfg_.transfer_scans) {
    jitdt::JitDtLink link(cfg_.jitdt);
    const auto bytes = pawr::encode_scan(scan);
    std::vector<std::uint8_t> delivered;
    res.transfer = link.transfer(bytes, delivered);
    scan = pawr::decode_scan(delivered);
  }

  // Regrid to analysis-grid observations (Table 2: 500-m resolution).
  auto obs =
      pawr::regrid_scan(scan, grid_, cfg_.radar.radar_x, cfg_.radar.radar_y,
                        cfg_.radar.radar_z, cfg_.obsgen);

  // Multi-radar coverage: every extra site scans the same truth; its
  // observations (carrying their own beam origin for Doppler) are appended.
  for (std::size_t r = 0; r < extra_radars_.size(); ++r) {
    const auto& rc = cfg_.extra_radars[r];
    const auto extra_scan =
        extra_radars_[r].observe(nature_.state(), time_, rng_);
    const auto extra = pawr::regrid_scan(extra_scan, grid_, rc.radar_x,
                                         rc.radar_y, rc.radar_z, cfg_.obsgen);
    obs.insert(obs.end(), extra.begin(), extra.end());
  }
  res.n_obs = obs.size();

  // <1-2>: ensemble background at the observation time.
  ens_.advance(real(cfg_.cycle_s));

  // <1-1>: LETKF analysis.
  res.analysis = letkf_.analyze(ens_, obs, obsop_);
  if (cfg_.adaptive_inflation) {
    adaptive_infl_.update(res.analysis.moments);
    letkf_.set_inflation(adaptive_infl_.rho());
  }

  RField2D nat = reflectivity_map(nature_.state());
  res.nature_max_dbz = nat.interior_max();
  return res;
}

RField2D BdaSystem::reflectivity_map(const scale::State& s,
                                     real height_m) const {
  idx kz = grid_.nz() - 1;
  for (idx k = 0; k < grid_.nz(); ++k)
    if (height_m < grid_.zf(k + 1)) {
      kz = k;
      break;
    }
  RField2D out(s.nx, s.ny, 0);
  for (idx i = 0; i < s.nx; ++i)
    for (idx j = 0; j < s.ny; ++j)
      out(i, j) = scale::cell_reflectivity_dbz(s, i, j, kz);
  return out;
}

std::vector<RField2D> run_forecast_maps(const scale::Grid& grid,
                                        const scale::Sounding& sounding,
                                        const scale::ModelConfig& cfg,
                                        const scale::State& init,
                                        double lead_s, double out_every_s,
                                        real height_m) {
  scale::Model fc(grid, sounding, cfg);
  fc.state() = init;

  idx kz = grid.nz() - 1;
  for (idx k = 0; k < grid.nz(); ++k)
    if (height_m < grid.zf(k + 1)) {
      kz = k;
      break;
    }
  auto map_now = [&]() {
    RField2D out(grid.nx(), grid.ny(), 0);
    for (idx i = 0; i < grid.nx(); ++i)
      for (idx j = 0; j < grid.ny(); ++j)
        out(i, j) = scale::cell_reflectivity_dbz(fc.state(), i, j, kz);
    return out;
  };

  std::vector<RField2D> maps;
  maps.push_back(map_now());
  const long n_out = static_cast<long>(std::floor(lead_s / out_every_s + 0.5));
  for (long n = 0; n < n_out; ++n) {
    fc.advance(real(out_every_s));
    maps.push_back(map_now());
  }
  return maps;
}

}  // namespace bda::workflow
