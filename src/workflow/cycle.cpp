#include "workflow/cycle.hpp"

#include <cmath>

#include "scale/microphysics.hpp"

namespace bda::workflow {

namespace {
/// Regional (nested) runs relax a Davies rim toward the outer state; the
/// model halos must then be clamped, not periodic.
scale::ModelConfig adjusted_model(const BdaSystemConfig& cfg) {
  scale::ModelConfig m = cfg.model;
  if (cfg.use_outer_domain)
    m.dyn.lateral_bc = scale::LateralBc::kClamp;
  return m;
}
}  // namespace

BdaSystem::BdaSystem(const scale::Grid& grid, const scale::Sounding& sounding,
                     BdaSystemConfig cfg)
    : grid_(grid), cfg_(cfg), sounding_(sounding), rng_(cfg.seed),
      nature_(grid_, sounding, adjusted_model(cfg)),
      ens_(grid_, sounding, adjusted_model(cfg), cfg.n_members),
      radar_(grid_, cfg.scan, cfg.radar),
      extra_radars_([&] {
        std::vector<pawr::RadarSimulator> v;
        v.reserve(cfg.extra_radars.size());
        for (const auto& rc : cfg.extra_radars)
          v.emplace_back(grid_, cfg.scan, rc);
        return v;
      }()),
      letkf_(grid_, cfg.letkf),
      obsop_(grid_, cfg.radar.radar_x, cfg.radar.radar_y, cfg.radar.radar_z,
             cfg.radar.micro) {
  if (cfg_.use_outer_domain) {
    // Outer domain: same horizontal cell count at coarser spacing (so it
    // covers outer_dx/dx times the inner extent, centered — Fig 3a) and
    // the exact inner vertical column.
    outer_grid_ = std::make_unique<scale::Grid>(scale::Grid::with_faces(
        grid_.nx(), grid_.ny(), cfg_.outer_dx, grid_.faces()));
    scale::ModelConfig ocfg = cfg_.model;
    ocfg.dt *= cfg_.outer_dx / grid_.dx();  // coarser grid, longer step
    ocfg.dyn.lateral_bc = scale::LateralBc::kClamp;
    outer_model_ =
        std::make_unique<scale::Model>(*outer_grid_, sounding, ocfg);
    meso_driver_ = std::make_unique<scale::SyntheticMesoscaleDriver>(
        *outer_grid_, outer_model_->reference(), 5.0f, 2.0f);
    outer_model_->set_boundary(meso_driver_.get(), 4, 60.0f);

    inner_bc_ = std::make_unique<scale::State>(grid_);
    bc_driver_ = std::make_unique<scale::StateDriver>(inner_bc_.get());
    refresh_outer_boundary();  // initial boundary at t = 0
    nature_.set_boundary(bc_driver_.get(), cfg_.davies_width,
                         cfg_.davies_tau);
    ens_.set_boundary(bc_driver_.get(), cfg_.davies_width, cfg_.davies_tau);
  }
}

void BdaSystem::refresh_outer_boundary() {
  if (!cfg_.use_outer_domain) return;
  if (time_ - last_outer_refresh_ < cfg_.outer_refresh_s) return;
  // Advance the outer forecast to the current time and downscale it.
  const double lag = time_ - outer_model_->time();
  if (lag > 0) outer_model_->advance(real(lag));
  scale::nest_interpolate(outer_model_->state(), *outer_grid_, *inner_bc_,
                          grid_);
  last_outer_refresh_ = time_;
}

void BdaSystem::spinup_nature(double seconds) {
  nature_.advance(real(seconds));
  time_ = nature_.time();
  ens_.set_time(time_);
}

void BdaSystem::spinup(double seconds) {
  nature_.advance(real(seconds));
  ens_.advance(real(seconds));
  time_ = nature_.time();
}

void BdaSystem::trigger_storm(real x, real y, real amplitude,
                              bool in_ensemble, real displace) {
  scale::add_thermal_bubble(nature_.state(), grid_, x, y, 1200.0f, 3000.0f,
                            1200.0f, amplitude);
  scale::add_moisture_anomaly(nature_.state(), grid_, x, y, 1000.0f, 4000.0f,
                              1500.0f, 0.002f);
  if (in_ensemble) {
    for (int m = 0; m < ens_.size(); ++m) {
      // Same storm, displaced and weakened differently per member: the
      // ensemble "knows" convection is around but not exactly where —
      // the situation the 30-s radar refresh corrects.
      const real dx = real(rng_.normal(0.0, displace));
      const real dy = real(rng_.normal(0.0, displace));
      const real amp = amplitude * real(0.7 + 0.3 * rng_.uniform());
      scale::add_thermal_bubble(ens_.member(m), grid_, x + dx, y + dy,
                                1200.0f, 3000.0f, 1200.0f, amp);
      scale::add_moisture_anomaly(ens_.member(m), grid_, x + dx, y + dy,
                                  1000.0f, 4000.0f, 1500.0f, 0.002f);
    }
  }
}

void BdaSystem::perturb_ensemble() {
  ens_.perturb(cfg_.perturb, rng_);
}

pawr::VolumeScan BdaSystem::observe_nature() {
  return radar_.observe(nature_.state(), time_, rng_);
}

BdaSystem::ObservedScans BdaSystem::advance_and_observe() {
  ObservedScans out;

  // Fig 3 cadence: refresh the nested lateral boundary when the outer
  // domain's 3-hourly (scaled) forecast is due.
  refresh_outer_boundary();

  // Nature evolves to the new observation time.
  {
    util::Metrics::ScopedTimer t(metrics_, "cycle.nature");
    nature_.advance(real(cfg_.cycle_s));
  }
  time_ = nature_.time();

  // Radars complete their volume scans of the truth (T_obs).  All random
  // draws of the cycle happen here, in site order.
  {
    util::Metrics::ScopedTimer t(metrics_, "cycle.observe");
    out.scan = radar_.observe(nature_.state(), time_, rng_);
    out.extra.reserve(extra_radars_.size());
    for (auto& site : extra_radars_)
      out.extra.push_back(site.observe(nature_.state(), time_, rng_));
  }
  out.partial.t_obs = time_;
  return out;
}

void BdaSystem::transfer_scan(ObservedScans& scans) const {
  // Optionally push the primary scan's bytes through JIT-DT (the real
  // data path).
  if (!cfg_.transfer_scans) return;
  util::Metrics::ScopedTimer t(metrics_, "cycle.jitdt");
  jitdt::JitDtLink link(cfg_.jitdt);
  const auto bytes = pawr::encode_scan(scans.scan);
  std::vector<std::uint8_t> delivered;
  scans.partial.transfer = link.transfer(bytes, delivered);
  scans.scan = pawr::decode_scan(delivered);
}

letkf::ObsVector BdaSystem::regrid_observations(
    const ObservedScans& scans) const {
  util::Metrics::ScopedTimer t(metrics_, "cycle.regrid");
  // Regrid to analysis-grid observations (Table 2: 500-m resolution).
  auto obs = pawr::regrid_scan(scans.scan, grid_, cfg_.radar.radar_x,
                               cfg_.radar.radar_y, cfg_.radar.radar_z,
                               cfg_.obsgen);
  // Multi-radar coverage: every extra site scans the same truth; its
  // observations (carrying their own beam origin for Doppler) are appended.
  for (std::size_t r = 0; r < scans.extra.size(); ++r) {
    const auto& rc = cfg_.extra_radars[r];
    const auto extra = pawr::regrid_scan(scans.extra[r], grid_, rc.radar_x,
                                         rc.radar_y, rc.radar_z, cfg_.obsgen);
    obs.insert(obs.end(), extra.begin(), extra.end());
  }
  return obs;
}

void BdaSystem::enable_sharding(int px, int py) {
  sharded_ = std::make_unique<hpc::ShardedEngine>(ens_, letkf_, obsop_,
                                                  grid_,
                                                  hpc::ShardConfig{px, py});
  sharded_->set_metrics(metrics_);
}

void BdaSystem::advance_ensemble() {
  // <1-2>: ensemble background at the observation time.
  util::Metrics::ScopedTimer t(metrics_, "cycle.ensemble");
  if (sharded_)
    sharded_->advance_ensemble(real(cfg_.cycle_s));
  else
    ens_.advance(real(cfg_.cycle_s));
}

CycleResult BdaSystem::finish_analysis(CycleResult partial,
                                       const letkf::ObsVector& obs) {
  CycleResult res = std::move(partial);
  res.n_obs = obs.size();

  // <1-1>: LETKF analysis (domain-sharded when sharding is enabled; the
  // results are bitwise identical either way).
  {
    util::Metrics::ScopedTimer t(metrics_, "cycle.letkf");
    res.analysis =
        sharded_ ? sharded_->analyze(obs) : letkf_.analyze(ens_, obs, obsop_);
  }
  if (cfg_.adaptive_inflation) {
    adaptive_infl_.update(res.analysis.moments);
    letkf_.set_inflation(adaptive_infl_.rho());
  }

  RField2D nat = reflectivity_map(nature_.state());
  res.nature_max_dbz = nat.interior_max();
  if (metrics_) {
    metrics_->count("cycle.cycles");
    metrics_->count("cycle.obs", res.n_obs);
  }
  return res;
}

CycleResult BdaSystem::cycle() {
  util::Metrics::ScopedTimer total(metrics_, "cycle.total");
  ObservedScans scans = advance_and_observe();
  transfer_scan(scans);
  const letkf::ObsVector obs = regrid_observations(scans);
  advance_ensemble();
  return finish_analysis(std::move(scans.partial), obs);
}

RField2D BdaSystem::reflectivity_map(const scale::State& s,
                                     real height_m) const {
  idx kz = grid_.nz() - 1;
  for (idx k = 0; k < grid_.nz(); ++k)
    if (height_m < grid_.zf(k + 1)) {
      kz = k;
      break;
    }
  RField2D out(s.nx, s.ny, 0);
  for (idx i = 0; i < s.nx; ++i)
    for (idx j = 0; j < s.ny; ++j)
      out(i, j) = scale::cell_reflectivity_dbz(s, i, j, kz);
  return out;
}

std::vector<RField2D> run_forecast_maps(const scale::Grid& grid,
                                        const scale::Sounding& sounding,
                                        const scale::ModelConfig& cfg,
                                        const scale::State& init,
                                        double lead_s, double out_every_s,
                                        real height_m, util::Metrics* metrics) {
  util::Metrics::ScopedTimer timer(metrics, "forecast.product");
  scale::Model fc(grid, sounding, cfg);
  fc.state() = init;

  idx kz = grid.nz() - 1;
  for (idx k = 0; k < grid.nz(); ++k)
    if (height_m < grid.zf(k + 1)) {
      kz = k;
      break;
    }
  auto map_now = [&]() {
    RField2D out(grid.nx(), grid.ny(), 0);
    for (idx i = 0; i < grid.nx(); ++i)
      for (idx j = 0; j < grid.ny(); ++j)
        out(i, j) = scale::cell_reflectivity_dbz(fc.state(), i, j, kz);
    return out;
  };

  std::vector<RField2D> maps;
  maps.push_back(map_now());
  const long n_out = static_cast<long>(std::floor(lead_s / out_every_s + 0.5));
  for (long n = 0; n < n_out; ++n) {
    fc.advance(real(out_every_s));
    maps.push_back(map_now());
  }
  if (metrics) metrics->count("forecast.maps", maps.size());
  return maps;
}

}  // namespace bda::workflow
