#include "workflow/checkpoint.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/binary_io.hpp"

namespace bda::workflow {

namespace {

using scale::State;

Field3D<float> to_plain(const RField3D& f, idx nlev) {
  Field3D<float> out(f.nx(), f.ny(), nlev, 0);
  for (idx i = 0; i < f.nx(); ++i)
    for (idx j = 0; j < f.ny(); ++j)
      for (idx k = 0; k < nlev; ++k) out(i, j, k) = f(i, j, k);
  return out;
}

void from_plain(const Field3D<float>& in, RField3D& f, idx nlev) {
  if (in.nx() != f.nx() || in.ny() != f.ny() || in.nz() != nlev)
    throw std::runtime_error("checkpoint: field shape mismatch");
  for (idx i = 0; i < in.nx(); ++i)
    for (idx j = 0; j < in.ny(); ++j)
      for (idx k = 0; k < nlev; ++k) f(i, j, k) = in(i, j, k);
}

}  // namespace

void save_state(const std::string& path, const State& s) {
  std::vector<FieldRecord> recs;
  recs.push_back({"dens", to_plain(s.dens, s.nz)});
  recs.push_back({"momx", to_plain(s.momx, s.nz)});
  recs.push_back({"momy", to_plain(s.momy, s.nz)});
  recs.push_back({"momz", to_plain(s.momz, s.nz + 1)});
  recs.push_back({"rhot", to_plain(s.rhot, s.nz)});
  for (int t = 0; t < scale::kNumTracers; ++t)
    recs.push_back({scale::tracer_name(t), to_plain(s.rhoq[t], s.nz)});
  write_bdf(path, recs);
}

void load_state(const std::string& path, State& s) {
  const auto recs = read_bdf(path);
  if (recs.size() != 5 + scale::kNumTracers)
    throw std::runtime_error("checkpoint: unexpected record count in " +
                             path);
  auto find = [&](const std::string& name) -> const FieldRecord& {
    for (const auto& r : recs)
      if (r.name == name) return r;
    throw std::runtime_error("checkpoint: missing field " + name);
  };
  from_plain(find("dens").data, s.dens, s.nz);
  from_plain(find("momx").data, s.momx, s.nz);
  from_plain(find("momy").data, s.momy, s.nz);
  from_plain(find("momz").data, s.momz, s.nz + 1);
  from_plain(find("rhot").data, s.rhot, s.nz);
  for (int t = 0; t < scale::kNumTracers; ++t)
    from_plain(find(scale::tracer_name(t)).data, s.rhoq[t], s.nz);
  s.fill_halos_periodic();
}

void save_ensemble(const std::string& dir, const scale::Ensemble& ens) {
  std::filesystem::create_directories(dir);
  for (int m = 0; m < ens.size(); ++m)
    save_state(dir + "/member_" + std::to_string(m) + ".bdf", ens.member(m));
  std::ofstream manifest(dir + "/manifest.txt", std::ios::trunc);
  if (!manifest)
    throw std::runtime_error("checkpoint: cannot write manifest in " + dir);
  manifest << "members = " << ens.size() << "\n";
  manifest << "time = " << ens.time() << "\n";
}

void load_ensemble(const std::string& dir, scale::Ensemble& ens) {
  std::ifstream manifest(dir + "/manifest.txt");
  if (!manifest)
    throw std::runtime_error("checkpoint: no manifest in " + dir);
  std::string key, eq;
  int members = 0;
  double time = 0;
  while (manifest >> key >> eq) {
    if (key == "members")
      manifest >> members;
    else if (key == "time")
      manifest >> time;
  }
  if (members != ens.size())
    throw std::runtime_error("checkpoint: ensemble size mismatch (" +
                             std::to_string(members) + " vs " +
                             std::to_string(ens.size()) + ")");
  for (int m = 0; m < ens.size(); ++m)
    load_state(dir + "/member_" + std::to_string(m) + ".bdf", ens.member(m));
  ens.set_time(time);
}

}  // namespace bda::workflow
