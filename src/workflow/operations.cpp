#include "workflow/operations.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace bda::workflow {

OperationSimulator::OperationSimulator(OperationConfig cfg,
                                       hpc::HostCalibration cal)
    : cfg_(cfg), cost_(cal, cfg.fugaku) {}

std::vector<CycleRecord> OperationSimulator::run(std::size_t n_cycles,
                                                 Rng& rng,
                                                 double t0_s) const {
  std::vector<CycleRecord> recs;
  recs.reserve(n_cycles);

  // --- rain-area series: diurnal base + Poisson storm events.
  struct Storm {
    double t_start;
    double peak;
  };
  std::vector<Storm> storms;
  const double horizon = double(n_cycles) * cfg_.cycle_s;
  {
    double t = 0;
    const double rate = cfg_.rain.storm_rate_per_day / 86400.0;
    while (t < horizon) {
      t += -std::log(std::max(rng.uniform(), 1e-12)) / rate;
      if (t < horizon)
        storms.push_back(
            {t, cfg_.rain.storm_area_km2 * (0.5 + rng.uniform())});
    }
  }
  auto rain_area = [&](double t) {
    const double tod = std::fmod(t0_s + t, 86400.0);
    // Afternoon convection peak near 15 LT.
    const double diurnal =
        1.0 + cfg_.rain.diurnal_frac *
                  std::sin(2.0 * M_PI * (tod - 9.0 * 3600.0) / 86400.0);
    double area = cfg_.rain.base_area_km2 * std::max(diurnal, 0.1);
    for (const auto& s : storms) {
      const double dt = t - s.t_start;
      if (dt < 0) continue;
      const double grow = 1.0 - std::exp(-dt / cfg_.rain.storm_growth_s);
      const double decay = std::exp(-dt / cfg_.rain.storm_decay_s);
      area += s.peak * grow * decay;
    }
    return area;
  };

  // --- outage schedule (gray shading in Fig 5).
  std::vector<std::pair<double, double>> outages;
  {
    double t = 0;
    while (t < horizon) {
      t += -std::log(std::max(rng.uniform(), 1e-12)) * cfg_.outages.mtbf_s;
      if (t >= horizon) break;
      const double d =
          -std::log(std::max(rng.uniform(), 1e-12)) *
          cfg_.outages.mean_duration_s;
      outages.emplace_back(t, t + d);
      t += d;
    }
  }
  auto in_outage = [&](double t) {
    for (const auto& [a, b] : outages)
      if (t >= a && t < b) return true;
    return false;
  };

  // --- forecast scheduler state (rotating groups, part <2>): the same
  // admission policy object as ForecastScheduler and the PipelinedDriver,
  // so drop/queue semantics cannot drift between the consumers.
  hpc::RotatingGroupPool pool(cfg_.scheduler.n_groups,
                              cfg_.max_forecast_wait_s);

  jitdt::JitDtLink link(cfg_.jitdt);
  const double domain_km2 = 128.0 * 128.0;

  auto jitter = [&](double v) {
    return v * (1.0 + cfg_.jitter_frac * rng.normal());
  };

  for (std::size_t c = 0; c < n_cycles; ++c) {
    CycleRecord r;
    r.t_obs = double(c) * cfg_.cycle_s;
    const double area1 = rain_area(r.t_obs);
    r.rain_area_1mm = area1;
    r.rain_area_20mm = area1 * cfg_.rain.heavy_fraction;

    if (in_outage(r.t_obs)) {
      recs.push_back(r);  // produced = false: gray period
      continue;
    }

    // File creation at the radar server.
    r.t_file = std::max(
        1.0, rng.normal(cfg_.file_creation_mean_s, cfg_.file_creation_sd_s));

    // JIT-DT transfer of the ~100 MB scan.
    r.t_jitdt = jitter(link.estimate_time(
        static_cast<std::size_t>(cfg_.scan_bytes)));

    // LETKF <1-1>: analysis points scale with observed rain coverage —
    // covered columns get the obs-cap workload, the rest see clear-air
    // thinning only.
    const double rain_frac = std::min(area1 / domain_km2, 1.0);
    const std::size_t points_full = static_cast<std::size_t>(
        double(cfg_.grid_cells) * (0.15 + 0.85 * rain_frac));
    const double mean_obs = 200.0 + 800.0 * rain_frac;  // cap = 1000
    r.t_letkf = jitter(cost_.t_letkf(points_full, cfg_.members, mean_obs,
                                     cfg_.fugaku.nodes_analysis));

    // Cycle forecast <1-2> (off the TTS path; must fit within 30 s).
    r.t_cycle_fcst = jitter(cost_.t_forecast(
        cfg_.grid_cells, int(cfg_.members), cfg_.steps_30s,
        cfg_.fugaku.nodes_analysis));

    // Product forecast <2>: admitted when the analysis is ready; runs on
    // the first free rotating group.
    const double t_ready = r.t_obs + r.t_file + r.t_jitdt + r.t_letkf;
    double fcst_runtime = jitter(cost_.t_forecast(
        cfg_.grid_cells, cfg_.product_members, cfg_.steps_30min,
        cfg_.fugaku.nodes_forecast));
    if (rng.uniform() < cfg_.slow_cycle_prob)
      fcst_runtime *= cfg_.slow_factor;
    // The job may queue briefly for the earliest-free group; beyond the
    // wait budget the cycle is skipped (a fresher analysis supersedes it).
    const double t_product_write = hpc::BdaCostModel::t_file(
        cfg_.product_bytes, cfg_.disk_bw, 0.5);
    const auto adm = pool.admit(t_ready, fcst_runtime + t_product_write);
    if (!adm.admitted) {
      recs.push_back(r);
      continue;
    }

    r.t_fcst = fcst_runtime + t_product_write;
    r.tts = adm.t_done - r.t_obs;
    r.produced = true;
    recs.push_back(r);
  }
  return recs;
}

OperationSummary OperationSimulator::summarize(
    const std::vector<CycleRecord>& recs) {
  OperationSummary s;
  s.cycles_total = recs.size();
  std::vector<double> tts;
  RunningStats f, j, l, fc;
  for (const auto& r : recs) {
    if (!r.produced) continue;
    ++s.forecasts_produced;
    tts.push_back(r.tts);
    f.add(r.t_file);
    j.add(r.t_jitdt);
    l.add(r.t_letkf);
    fc.add(r.t_fcst);
  }
  if (!tts.empty()) {
    s.frac_under_3min = fraction_below(tts, 180.0);
    RunningStats all;
    for (double v : tts) all.add(v);
    s.mean_tts = all.mean();
    s.max_tts = all.max();
    s.p50_tts = percentile(tts, 50.0);
    s.p97_tts = percentile(tts, 97.0);
    s.mean_file = f.mean();
    s.mean_jitdt = j.mean();
    s.mean_letkf = l.mean();
    s.mean_fcst = fc.mean();
  }
  s.produced_seconds = double(s.forecasts_produced) * 30.0;
  return s;
}

}  // namespace bda::workflow
