#include "workflow/products.hpp"

#include <algorithm>
#include <array>
#include <filesystem>

#include "scale/microphysics.hpp"
#include "util/binary_io.hpp"

namespace bda::workflow {

serve::ProductFrame product_frame(const scale::Grid& grid,
                                  const scale::State& s) {
  serve::ProductFrame frame;

  // 3-D reflectivity volume.
  frame.volume = Field3D<float>(grid.nx(), grid.ny(), grid.nz(), 0);
  for (idx i = 0; i < grid.nx(); ++i)
    for (idx j = 0; j < grid.ny(); ++j)
      for (idx k = 0; k < grid.nz(); ++k)
        frame.volume(i, j, k) = float(scale::cell_reflectivity_dbz(s, i, j, k));

  // Map view: column-max ("composite") reflectivity as a 1-level field.
  frame.map_view = Field3D<float>(grid.nx(), grid.ny(), 1, 0);
  for (idx i = 0; i < grid.nx(); ++i)
    for (idx j = 0; j < grid.ny(); ++j) {
      float m = frame.volume(i, j, 0);
      for (idx k = 1; k < grid.nz(); ++k)
        m = std::max(m, frame.volume(i, j, k));
      frame.map_view(i, j, 0) = m;
    }
  return frame;
}

ProductPaths write_products(const std::string& out_dir,
                            const scale::Grid& grid, const scale::State& s,
                            double valid_time_s) {
  std::filesystem::create_directories(out_dir);
  const std::string stamp = std::to_string(static_cast<long>(valid_time_s));
  const serve::ProductFrame frame = product_frame(grid, s);

  ProductPaths paths;
  paths.map_view = out_dir + "/map_view_" + stamp + ".bdf";
  paths.volume_3d = out_dir + "/volume3d_" + stamp + ".bdf";
  write_bdf(paths.map_view, {{"composite_dbz", frame.map_view}});
  write_bdf(paths.volume_3d, {{"dbz", frame.volume}});
  return paths;
}

std::vector<std::size_t> rain_cores(const RField3D& dbz, real threshold) {
  const idx nx = dbz.nx(), ny = dbz.ny(), nz = dbz.nz();
  std::vector<std::uint8_t> visited(
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
          static_cast<std::size_t>(nz),
      0);
  auto id = [&](idx i, idx j, idx k) {
    return (static_cast<std::size_t>(i) * static_cast<std::size_t>(ny) +
            static_cast<std::size_t>(j)) *
               static_cast<std::size_t>(nz) +
           static_cast<std::size_t>(k);
  };
  // Core membership is `>= threshold` (the header's documented boundary).
  // Spelled as a positive comparison so NaN voxels (missing data) are
  // excluded: the negated form `!(dbz < threshold)` silently swept NaNs
  // into cores — a degenerate all-NaN volume labeled as one giant core.
  auto in_core = [&](idx i, idx j, idx k) {
    return dbz(i, j, k) >= threshold;
  };

  std::vector<std::size_t> sizes;
  // Explicit worklist (no recursion: a degenerate all-above-threshold
  // volume is one core covering every voxel, which would blow the stack on
  // a call-recursive fill).  LIFO order keeps the live frontier compact;
  // the vector is reused across cores so the fill never reallocates after
  // the first.
  std::vector<std::array<idx, 3>> worklist;
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j)
      for (idx k = 0; k < nz; ++k) {
        if (visited[id(i, j, k)] || !in_core(i, j, k)) continue;
        // Flood fill (6-connectivity).
        std::size_t count = 0;
        visited[id(i, j, k)] = 1;
        worklist.push_back({i, j, k});
        while (!worklist.empty()) {
          const auto [ci, cj, ck] = worklist.back();
          worklist.pop_back();
          ++count;
          const idx di[6] = {1, -1, 0, 0, 0, 0};
          const idx dj[6] = {0, 0, 1, -1, 0, 0};
          const idx dk[6] = {0, 0, 0, 0, 1, -1};
          for (int n = 0; n < 6; ++n) {
            const idx ni = ci + di[n], nj = cj + dj[n], nk = ck + dk[n];
            if (ni < 0 || ni >= nx || nj < 0 || nj >= ny || nk < 0 ||
                nk >= nz)
              continue;
            if (visited[id(ni, nj, nk)] || !in_core(ni, nj, nk)) continue;
            visited[id(ni, nj, nk)] = 1;
            worklist.push_back({ni, nj, nk});
          }
        }
        sizes.push_back(count);
      }
  std::sort(sizes.rbegin(), sizes.rend());
  return sizes;
}

std::vector<std::vector<std::size_t>> dbz_shell_profile(
    const RField3D& dbz, const std::vector<real>& thresholds) {
  std::vector<std::vector<std::size_t>> out(
      thresholds.size(),
      std::vector<std::size_t>(static_cast<std::size_t>(dbz.nz()), 0));
  for (idx k = 0; k < dbz.nz(); ++k)
    for (idx i = 0; i < dbz.nx(); ++i)
      for (idx j = 0; j < dbz.ny(); ++j)
        for (std::size_t t = 0; t < thresholds.size(); ++t)
          if (dbz(i, j, k) >= thresholds[t])
            ++out[t][static_cast<std::size_t>(k)];
  return out;
}

}  // namespace bda::workflow
