// Pipelined 30-second cycle driver (the paper's Fig 2 workflow with real
// concurrency).
//
// The operational system never runs its stages back to back: while the
// 30-minute product forecast <2> occupies one rotating node group for ~120 s,
// four more 30-s cycles complete on the analysis partition, and within each
// cycle the JIT-DT transfer + observation regridding overlap the <1-2>
// ensemble advance.  PipelinedDriver reproduces that schedule on threads:
//
//   main thread    : advance_and_observe -> advance_ensemble -> LETKF <1-1>
//   overlap task   : JIT-DT transfer + regrid (joined before the LETKF)
//   worker threads : one per rotating group, running run_forecast_maps <2>
//
// Admission of product forecasts mirrors hpc::RotatingGroupPool with a zero
// wait budget: a cycle's forecast goes to the free group that has been idle
// longest; if every group is busy the forecast is dropped (the Fig 5 gap)
// and counted.  Workers read a private copy of the ensemble mean, so the
// assimilation state is never shared — which is why the driver's analyses
// are bitwise identical to serial BdaSystem::cycle() (the RNG discipline is
// documented on the staged API in cycle.hpp).
//
// All cross-thread state is BDA_GUARDED_BY(mu_); the stress test runs this
// under TSan (see tests/workflow/test_pipeline.cpp).
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/annotations.hpp"
#include "util/metrics.hpp"
#include "workflow/cycle.hpp"

namespace bda::serve {
class Publisher;
}  // namespace bda::serve

namespace bda::workflow {

struct PipelineConfig {
  /// Rotating node groups = concurrent product forecasts (paper: 4, so
  /// 4 x 30 s covers the ~120 s forecast runtime).
  int n_groups = 4;
  /// Launch a product forecast every N cycles (0 disables products).
  int product_every = 1;
  /// Product forecast horizon and map output interval (model seconds).
  double forecast_lead_s = 120.0;
  double forecast_out_every_s = 30.0;
  real forecast_height_m = 2000.0f;
  /// Injected wall-clock sleep per product forecast — the test stand-in
  /// for the ~120 s Fugaku runtime, scaled down so stress tests finish.
  double forecast_sleep_s = 0.0;
  /// Injected wall-clock sleep per cycle on the main thread — the stand-in
  /// for the 30-s real-time cadence (paper balance: forecast_sleep_s =
  /// n_groups * cycle_sleep_s keeps the rotation exactly sustained).
  double cycle_sleep_s = 0.0;
  /// Optional per-cycle override of the injected sleep (fault injection:
  /// return a larger value for designated "slow" cycles).  Called on the
  /// main thread at admission time.
  std::function<double(std::size_t cycle)> sleep_for_cycle;
  /// Optional serving tier (may be null): every `publish_every`-th cycle's
  /// analysis-mean nowcast products are handed to this publisher.  The
  /// handoff is one state snapshot + a non-blocking submit on the main
  /// thread; tiling, delta encoding and the cache commit all run on the
  /// publisher's own watchdog-guarded worker, so a slow or wedged
  /// publisher never delays the next cycle's admission — and the serving
  /// tier is bitwise-transparent to the analyses
  /// (tests/workflow/test_pipeline_serve.cpp).
  serve::Publisher* publisher = nullptr;
  int publish_every = 1;
};

/// One completed product forecast <2>.  Times are wall-clock seconds on the
/// monotonic clock, relative to run() start — the Fig 4 clock: `tts_s` is
/// "scan complete" to "maps written".
struct ProductRecord {
  std::size_t cycle = 0;    ///< cycle index that launched it
  int group = -1;           ///< rotating group that ran it
  double t_obs_s = 0;       ///< scan completion (wall)
  double t_admit_s = 0;     ///< admission to the group (wall)
  double t_done_s = 0;      ///< maps written (wall)
  double tts_s = 0;         ///< t_done_s - t_obs_s
  std::size_t n_maps = 0;   ///< reflectivity maps produced
};

class PipelinedDriver {
 public:
  /// The driver borrows `sys`; it must outlive the driver.  `metrics` (may
  /// be null) receives "pipeline.cycle", "pipeline.tts" and
  /// "pipeline.forecast" timers plus "pipeline.launched" /
  /// "pipeline.dropped" counters, in addition to whatever sink `sys`
  /// itself carries.
  PipelinedDriver(BdaSystem& sys, PipelineConfig cfg,
                  util::Metrics* metrics = nullptr);
  ~PipelinedDriver();

  PipelinedDriver(const PipelinedDriver&) = delete;
  PipelinedDriver& operator=(const PipelinedDriver&) = delete;

  /// Run `n_cycles` 30-s cycles.  Returns the per-cycle analysis results,
  /// bitwise identical to calling sys.cycle() n_cycles times serially.
  /// Product forecasts may still be in flight when this returns; call
  /// drain() (or destroy the driver) to wait for them.
  std::vector<CycleResult> run(std::size_t n_cycles);

  /// Block until every admitted product forecast has completed.
  void drain();

  /// Completed product forecasts so far (snapshot).
  std::vector<ProductRecord> products() const;

  std::size_t launched() const;  ///< product forecasts admitted
  std::size_t dropped() const;   ///< forecasts skipped: all groups busy

 private:
  struct Job {
    std::size_t cycle = 0;
    double t_obs_s = 0;
    double t_admit_s = 0;
    double sleep_s = 0;
    scale::State init;
    Job(std::size_t c, double t_obs, double t_admit, double sleep,
        scale::State s)
        : cycle(c), t_obs_s(t_obs), t_admit_s(t_admit), sleep_s(sleep),
          init(std::move(s)) {}
  };
  struct Group {
    bool busy = false;           ///< admitted job not yet completed
    std::unique_ptr<Job> job;    ///< handoff slot (set iff busy, pre-pickup)
    double last_free_s = 0;      ///< when the group last went idle (wall)
  };

  void worker(int g);
  /// Admit the cycle's product forecast to the longest-idle free group, or
  /// drop it.  Main thread only.
  void submit_product(std::size_t cycle, double t_obs_s);
  double now_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }

  BdaSystem& sys_;
  PipelineConfig cfg_;
  util::Metrics* metrics_;
  std::chrono::steady_clock::time_point t0_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_ BDA_CV_OF(mu_);  ///< wakes workers on
                                                    ///< job / shutdown
  std::condition_variable idle_cv_ BDA_CV_OF(mu_);  ///< wakes drain() on
                                                    ///< completion
  std::vector<Group> groups_ BDA_GUARDED_BY(mu_);
  std::vector<ProductRecord> products_ BDA_GUARDED_BY(mu_);
  std::size_t launched_ BDA_GUARDED_BY(mu_) = 0;
  std::size_t dropped_ BDA_GUARDED_BY(mu_) = 0;
  bool shutdown_ BDA_GUARDED_BY(mu_) = false;

  std::vector<std::thread> threads_;  ///< started in ctor, joined in dtor
};

}  // namespace bda::workflow
