// Month-long operational simulation (Fig 5).
//
// Reproduces the statistics of the Olympics/Paralympics deployment: one
// forecast every 30 s, time-to-solution = file creation + JIT-DT + LETKF
// <1-1> + 30-minute forecast <2> (Fig 4; the cycle forecast <1-2> runs off
// the critical path but must finish within the 30-s interval).  Component
// times come from the calibrated BdaCostModel; LETKF and forecast work
// scale with a synthetic rain-area climatology (diurnal modulation +
// Poisson storm events — "the more the rain area, the more the
// computation"); outage periods (the gray shading of Fig 5a/b) come from a
// failure-injection model of the kind the operational fail-safe handled.
#pragma once

#include <cstddef>
#include <vector>

#include "hpc/perf_model.hpp"
#include "hpc/scheduler.hpp"
#include "jitdt/transfer.hpp"
#include "util/rng.hpp"

namespace bda::workflow {

struct RainClimatology {
  double base_area_km2 = 150.0;     ///< mean light-rain area (>=1 mm/h)
  double diurnal_frac = 0.6;        ///< afternoon convection modulation
  double storm_rate_per_day = 3.0;  ///< Poisson arrivals of heavy events
  double storm_area_km2 = 900.0;    ///< peak added area of one event
  double storm_growth_s = 1800.0;   ///< e-folding growth time
  double storm_decay_s = 5400.0;    ///< e-folding decay time
  double heavy_fraction = 0.12;     ///< >=20 mm/h area as fraction of >=1
};

struct OutageModel {
  // Tuned so net production lands near the paper's record: 75,248
  // forecasts over a 32-day campaign = 82% of cycles (the gray shading in
  // Fig 5a/b covers the rest).
  double mtbf_s = 2.5 * 86400.0;     ///< mean time between outages
  double mean_duration_s = 21600.0;  ///< mean outage length
};

struct OperationConfig {
  double cycle_s = 30.0;
  double scan_bytes = 100.0e6;          ///< ~100 MB per volume scan
  double file_creation_mean_s = 20.0;   ///< radar-server file build
  double file_creation_sd_s = 3.0;
  double disk_bw = 2.0e9;               ///< exclusive volume, product write
  double product_bytes = 400.0e6;       ///< 11-member forecast product
  jitdt::JitDtConfig jitdt;
  hpc::FugakuSpec fugaku;
  hpc::SchedulerConfig scheduler;       ///< part <2> rotation
  RainClimatology rain;
  OutageModel outages;
  // Problem size (paper values).
  std::size_t grid_cells = 256ull * 256ull * 60ull;
  std::size_t members = 1000;
  int product_members = 11;
  long steps_30s = 75;      ///< 30 s / 0.4 s
  long steps_30min = 4500;  ///< 1800 s / 0.4 s
  double jitter_frac = 0.08;  ///< run-to-run component-time noise
  /// Occasional slow cycles (I/O congestion, checkpoint interference...):
  /// the few-percent tail above 3 minutes in the paper's Fig 5c histogram.
  double slow_cycle_prob = 0.03;
  double slow_factor = 1.35;
  /// A product forecast may wait this long for a busy node group before the
  /// cycle is skipped (a later cycle's fresher analysis supersedes it).
  double max_forecast_wait_s = 15.0;
};

struct CycleRecord {
  double t_obs = 0;          ///< scan completion (start of TTS clock)
  bool produced = false;     ///< false during outages / dropped slots
  double t_file = 0, t_jitdt = 0, t_letkf = 0, t_fcst = 0;
  double tts = 0;            ///< total time-to-solution [s]
  double rain_area_1mm = 0;  ///< km^2 (Fig 5 cyan)
  double rain_area_20mm = 0; ///< km^2 (Fig 5 blue)
  double t_cycle_fcst = 0;   ///< <1-2>, off the TTS path
};

struct OperationSummary {
  std::size_t cycles_total = 0;
  std::size_t forecasts_produced = 0;
  double frac_under_3min = 0;
  double mean_tts = 0, p50_tts = 0, p97_tts = 0, max_tts = 0;
  double mean_file = 0, mean_jitdt = 0, mean_letkf = 0, mean_fcst = 0;
  double produced_seconds = 0;  ///< net production time ("26 days 3 hours")
};

class OperationSimulator {
 public:
  OperationSimulator(OperationConfig cfg, hpc::HostCalibration cal);

  /// Simulate `n_cycles` 30-s cycles starting at local time `t0_s` (seconds
  /// after local midnight; the diurnal cycle cares).
  std::vector<CycleRecord> run(std::size_t n_cycles, Rng& rng,
                               double t0_s = 6.0 * 3600.0) const;

  static OperationSummary summarize(const std::vector<CycleRecord>& recs);

  const OperationConfig& config() const { return cfg_; }
  const hpc::BdaCostModel& cost_model() const { return cost_; }

 private:
  OperationConfig cfg_;
  hpc::BdaCostModel cost_;
};

}  // namespace bda::workflow
