// Final forecast products (Fig 1).
//
// The operational chain ends when the product file lands on disk — its
// timestamp is T_fcst, the end of time-to-solution.  Two products are
// emitted, matching Fig 1: the map-view rain-intensity field served on the
// RIKEN web page, and the 3-D reflectivity voxel grid behind MTI's
// smartphone application's bird's-eye view (also the Fig 8 rendering).
#pragma once

#include <string>
#include <vector>

#include "scale/grid.hpp"
#include "scale/state.hpp"
#include "serve/tile.hpp"
#include "util/field.hpp"

namespace bda::workflow {

struct ProductPaths {
  std::string map_view;   ///< 2-D composite reflectivity (BDF)
  std::string volume_3d;  ///< full 3-D reflectivity (BDF)
};

/// Compute both Fig 1 product fields (column-max composite + 3-D
/// reflectivity volume) from a forecast state.  Shared by the file writer
/// below and the in-memory serving tier (serve::Publisher).
serve::ProductFrame product_frame(const scale::Grid& grid,
                                  const scale::State& s);

/// Write both products for a forecast state; returns the paths written.
/// The file timestamps are T_fcst by definition.  Files land atomically
/// (temp + rename), so a concurrent reader — the serving tier, the ops
/// watcher — never observes a truncated product.
ProductPaths write_products(const std::string& out_dir,
                            const scale::Grid& grid, const scale::State& s,
                            double valid_time_s);

/// Identify contiguous 3-D rain cores (>= threshold dBZ, 6-connectivity) in
/// a reflectivity field: Fig 8's "precise 3-D structures of each rain
/// core".  Returns per-core voxel counts, largest first.
std::vector<std::size_t> rain_cores(const RField3D& dbz, real threshold);

/// Per-level area [cells] exceeding each of the 10..50 dBZ shells of Fig 8.
std::vector<std::vector<std::size_t>> dbz_shell_profile(
    const RField3D& dbz, const std::vector<real>& thresholds);

}  // namespace bda::workflow
