// The functional BDA cycle: an observing-system simulation experiment
// (OSSE) twin of the operational workflow.
//
// A high-resolution nature run plays the real atmosphere.  Every 30 seconds
// (Fig 2):
//   - the radar simulator completes a volume scan of the nature run (T_obs),
//   - the scan is (optionally) serialized and moved through JIT-DT,
//   - observations are regridded to the analysis grid (Table 2),
//   - the LETKF assimilates them into the ensemble            <1-1>,
//   - the ensemble integrates 30 s to the next analysis time  <1-2>,
// and on demand the ensemble mean + randomly chosen members launch the
// 30-minute product forecast                                   <2>.
// This is the engine behind the Fig 6/Fig 7 benches, the integration tests
// and the examples.
#pragma once

#include <memory>
#include <vector>

#include "hpc/sharded_engine.hpp"
#include "jitdt/transfer.hpp"
#include "letkf/letkf.hpp"
#include "pawr/datafile.hpp"
#include "pawr/forward.hpp"
#include "pawr/obsgen.hpp"
#include "scale/ensemble.hpp"
#include "scale/model.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace bda::workflow {

struct BdaSystemConfig {
  double cycle_s = 30.0;            ///< refresh interval (the paper's 30 s)
  int n_members = 32;               ///< ensemble size (paper: 1000)
  scale::ModelConfig model;         ///< shared by nature run and ensemble
  letkf::LetkfConfig letkf;
  pawr::ScanConfig scan;
  pawr::RadarSimConfig radar;
  /// Additional radar sites (dual/multi MP-PAWR coverage, the paper's Expo
  /// 2025 deployment and ref [42]'s network OSSE).  Each scans the same
  /// geometry; their observations join the primary radar's each cycle.
  std::vector<pawr::RadarSimConfig> extra_radars;
  pawr::ObsGenConfig obsgen;
  scale::PerturbationSpec perturb;  ///< initial ensemble spread
  /// Drive multiplicative inflation adaptively from innovation statistics
  /// (Desroziers); complements the Table 2 RTPP relaxation.
  bool adaptive_inflation = false;
  /// One-way nesting (Fig 3): a coarse outer-domain model, itself forced by
  /// the synthetic mesoscale driver, is advanced on its own refresh cadence
  /// and interpolated onto the inner grid as the lateral boundary target
  /// for nature and ensemble (Davies rim).
  bool use_outer_domain = false;
  real outer_dx = 1500.0f;          ///< outer grid spacing (paper: 1.5 km)
  double outer_refresh_s = 10800.0; ///< outer forecast cadence (paper: 3 h)
  idx davies_width = 4;
  real davies_tau = 20.0f;
  bool transfer_scans = false;      ///< push scans through JIT-DT each cycle
  jitdt::JitDtConfig jitdt;
  std::uint64_t seed = 20210729;    ///< the July 29, 2021 event, of course
};

struct CycleResult {
  double t_obs = 0;                   ///< scan completion time
  std::size_t n_obs = 0;              ///< regridded observations offered
  letkf::AnalysisStats analysis;
  jitdt::TransferResult transfer;     ///< valid if transfer_scans
  double nature_max_dbz = 0;          ///< storm intensity in the truth
};

class BdaSystem {
 public:
  BdaSystem(const scale::Grid& grid, const scale::Sounding& sounding,
            BdaSystemConfig cfg);

  /// Integrate the nature run alone (ensemble untouched) — storm spin-up
  /// before cycling starts.
  void spinup_nature(double seconds);

  /// Integrate nature AND ensemble together (free spin-up before the first
  /// analysis, as the operational system does between outer-domain
  /// refreshes): the ensemble develops flow-dependent spread — without it
  /// the LETKF has no covariance to create rain from.
  void spinup(double seconds);

  /// Trigger convection in the nature run (and, with `in_ensemble`, a
  /// weaker/displaced version in every member so the ensemble has rain to
  /// correct rather than to invent).
  void trigger_storm(real x, real y, real amplitude, bool in_ensemble,
                     real displace = 4000.0f);

  /// Perturb the ensemble with the configured spec.
  void perturb_ensemble();

  /// One full 30-s cycle: advance nature, observe, assimilate, advance
  /// ensemble to the new analysis time.  Composes the staged API below in
  /// serial order; PipelinedDriver composes the same stages with real
  /// concurrency and produces bitwise-identical analyses.
  CycleResult cycle();

  // --- Staged cycle API (Fig 2 decomposition) -----------------------------
  //
  // RNG discipline: all random draws of a cycle (radar sampling noise, one
  // draw per site) happen in advance_and_observe(), on the calling thread.
  // regrid_observations() is const and pure with respect to the system
  // state, and advance_ensemble() is rng-free — which is what lets the
  // driver overlap the JIT-DT/regrid work with the <1-2> ensemble advance
  // without perturbing the random stream or the results.

  /// Scans of one cycle plus the partially filled result record.
  struct ObservedScans {
    CycleResult partial;                  ///< t_obs (and transfer) filled
    pawr::VolumeScan scan;                ///< primary site's volume scan
    std::vector<pawr::VolumeScan> extra;  ///< one per extra radar site
  };

  /// Stage T_obs: refresh the nested boundary if due, advance nature to
  /// the new observation time, and complete all volume scans.
  ObservedScans advance_and_observe();

  /// Optional JIT-DT stage: move the primary scan's bytes through the
  /// fail-safe channel (no-op unless cfg.transfer_scans), filling
  /// partial.transfer and replacing the scan with the delivered copy.
  /// Rng-free and const on the system — safe to overlap with
  /// advance_ensemble().
  void transfer_scan(ObservedScans& scans) const;

  /// Regrid all scans to analysis-grid observations (Table 2: 500 m).
  /// Const and thread-safe against advance_ensemble(): touches only the
  /// grid and configuration.
  letkf::ObsVector regrid_observations(const ObservedScans& scans) const;

  /// <1-2>: ensemble background at the new observation time.
  void advance_ensemble();

  /// <1-1>: LETKF analysis (plus adaptive inflation and truth
  /// diagnostics); completes the cycle record started by
  /// advance_and_observe().
  CycleResult finish_analysis(CycleResult partial,
                              const letkf::ObsVector& obs);

  /// Run the cycle sharded over px x py simulated ranks (threads-as-ranks
  /// over hpc::CommWorld): the <1-2> advance becomes member blocks, the
  /// <1-1> LETKF becomes domain tiles, and ensemble state moves between the
  /// two layouts through the in-memory shuffle — no file round-trip.  The
  /// staged API is unchanged, so PipelinedDriver drives a sharded system
  /// exactly as a serial one, and the analyses stay bitwise identical to
  /// serial (the ShardedEngine determinism contract, docs/SHARDING.md).
  /// Call once, after construction; throws if the grid is not divisible by
  /// (px, py).
  void enable_sharding(int px, int py);
  bool sharded() const { return sharded_ != nullptr; }
  hpc::ShardedEngine* sharded_engine() { return sharded_.get(); }

  /// Attach a metrics sink (may be null): per-stage timers
  /// ("cycle.nature", "cycle.observe", "cycle.jitdt", "cycle.regrid",
  /// "cycle.ensemble", "cycle.letkf", "cycle.total") and counters
  /// ("cycle.cycles", "cycle.obs") are recorded through it, and the sink
  /// is forwarded to the LETKF for its weight-kernel counters
  /// ("letkf.eig_batches", "letkf.weight_cache_hit"/"_miss",
  /// "letkf.eig_fail" — docs/LETKF_KERNEL.md).
  void set_metrics(util::Metrics* metrics) {
    metrics_ = metrics;
    letkf_.set_metrics(metrics);
    if (sharded_) sharded_->set_metrics(metrics);
  }

  /// Observe the nature run now (without assimilating) — for verification.
  pawr::VolumeScan observe_nature();

  /// 2-km-height reflectivity map of a state (the paper's Fig 6 view).
  RField2D reflectivity_map(const scale::State& s, real height_m = 2000.0f) const;

  scale::Model& nature() { return nature_; }
  scale::Ensemble& ensemble() { return ens_; }
  const scale::Grid& grid() const { return grid_; }
  const scale::Sounding& sounding() const { return sounding_; }
  const BdaSystemConfig& config() const { return cfg_; }
  double time() const { return time_; }
  Rng& rng() { return rng_; }

 private:
  scale::Grid grid_;
  BdaSystemConfig cfg_;
  scale::Sounding sounding_;
  Rng rng_;
  scale::Model nature_;
  scale::Ensemble ens_;
  pawr::RadarSimulator radar_;
  std::vector<pawr::RadarSimulator> extra_radars_;
  letkf::Letkf letkf_;
  letkf::AdaptiveInflation adaptive_infl_;
  letkf::ObsOperator obsop_;
  double time_ = 0.0;
  util::Metrics* metrics_ = nullptr;  ///< optional stage-timing sink
  std::unique_ptr<hpc::ShardedEngine> sharded_;  ///< set by enable_sharding

  // One-way nesting chain (only when cfg.use_outer_domain).
  void refresh_outer_boundary();
  std::unique_ptr<scale::Grid> outer_grid_;
  std::unique_ptr<scale::Model> outer_model_;
  std::unique_ptr<scale::SyntheticMesoscaleDriver> meso_driver_;
  std::unique_ptr<scale::State> inner_bc_;
  std::unique_ptr<scale::StateDriver> bc_driver_;
  double last_outer_refresh_ = -1.0e30;
};

/// Run a forecast from one initial state for `lead_s` seconds and return the
/// reflectivity map every `out_every_s` (first entry = initial time).  Used
/// by the product forecast <2> and the Fig 7 skill curves.  `metrics` (may
/// be null) receives the "forecast.product" stage timer and the
/// "forecast.maps" counter; it is safe to share one sink across concurrent
/// forecasts.
std::vector<RField2D> run_forecast_maps(const scale::Grid& grid,
                                        const scale::Sounding& sounding,
                                        const scale::ModelConfig& cfg,
                                        const scale::State& init,
                                        double lead_s, double out_every_s,
                                        real height_m = 2000.0f,
                                        util::Metrics* metrics = nullptr);

}  // namespace bda::workflow
