// Checkpoint / restart.
//
// The month-long deployment survived node failures and scheduled
// maintenance because the cycling state could be rebuilt (the gray periods
// of Fig 5 end with the system resuming).  A checkpoint here is the full
// prognostic state of every ensemble member plus the nature/cycle time,
// written through the BDF container with CRC protection; restart restores
// an Ensemble bit-for-bit (modulo the float fields themselves, which are
// exact).
#pragma once

#include <string>

#include "scale/ensemble.hpp"
#include "scale/state.hpp"

namespace bda::workflow {

/// Serialize one model state (all prognostic fields) to a BDF file.
void save_state(const std::string& path, const scale::State& s);

/// Restore a state saved with save_state into an existing (shape-matching)
/// State.  Throws std::runtime_error on shape mismatch or corruption.
void load_state(const std::string& path, scale::State& s);

/// Checkpoint a full ensemble (one file per member + a manifest carrying
/// the cycle time and member count) into `dir`.
void save_ensemble(const std::string& dir, const scale::Ensemble& ens);

/// Restore member states + time into an ensemble of matching size/shape.
void load_ensemble(const std::string& dir, scale::Ensemble& ens);

}  // namespace bda::workflow
