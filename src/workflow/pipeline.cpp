#include "workflow/pipeline.hpp"

#include <future>
#include <utility>

#include "serve/publisher.hpp"
#include "workflow/products.hpp"

namespace bda::workflow {

PipelinedDriver::PipelinedDriver(BdaSystem& sys, PipelineConfig cfg,
                                 util::Metrics* metrics)
    : sys_(sys), cfg_(cfg), metrics_(metrics),
      t0_(std::chrono::steady_clock::now()) {
  if (cfg_.n_groups < 1) cfg_.n_groups = 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    groups_.resize(static_cast<std::size_t>(cfg_.n_groups));
  }
  threads_.reserve(static_cast<std::size_t>(cfg_.n_groups));
  for (int g = 0; g < cfg_.n_groups; ++g)
    threads_.emplace_back([this, g] { worker(g); });
}

PipelinedDriver::~PipelinedDriver() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void PipelinedDriver::worker(int g) {
  const auto gi = static_cast<std::size_t>(g);
  for (;;) {
    std::unique_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || groups_[gi].job != nullptr; });
      if (groups_[gi].job == nullptr) return;  // shutdown, nothing pending
      job = std::move(groups_[gi].job);
    }

    // <2>: the 30-minute product forecast from the analysis mean, plus the
    // injected wall sleep standing in for the Fugaku runtime.
    util::Metrics::ScopedTimer timer(metrics_, "pipeline.forecast");
    const auto maps = run_forecast_maps(
        sys_.grid(), sys_.sounding(), sys_.config().model, job->init,
        cfg_.forecast_lead_s, cfg_.forecast_out_every_s,
        cfg_.forecast_height_m, metrics_);
    if (job->sleep_s > 0)
      std::this_thread::sleep_for(std::chrono::duration<double>(job->sleep_s));
    timer.stop();

    const double t_done = now_s();
    ProductRecord rec;
    rec.cycle = job->cycle;
    rec.group = g;
    rec.t_obs_s = job->t_obs_s;
    rec.t_admit_s = job->t_admit_s;
    rec.t_done_s = t_done;
    rec.tts_s = t_done - job->t_obs_s;
    rec.n_maps = maps.size();
    if (metrics_) metrics_->observe("pipeline.tts", rec.tts_s);

    {
      std::lock_guard<std::mutex> lock(mu_);
      products_.push_back(rec);
      groups_[gi].busy = false;
      groups_[gi].last_free_s = t_done;
    }
    idle_cv_.notify_all();
  }
}

void PipelinedDriver::submit_product(std::size_t cycle, double t_obs_s) {
  // Rotating-group admission, wall-clock flavor of RotatingGroupPool with a
  // zero wait budget: take the free group idle the longest; if all groups
  // are busy the forecast is dropped (a fresher analysis supersedes it).
  double sleep_s = cfg_.forecast_sleep_s;
  if (cfg_.sleep_for_cycle) sleep_s = cfg_.sleep_for_cycle(cycle);

  int best = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      if (groups_[g].busy) continue;
      if (best < 0 ||
          groups_[g].last_free_s < groups_[static_cast<std::size_t>(best)]
                                       .last_free_s)
        best = static_cast<int>(g);
    }
    if (best < 0) {
      ++dropped_;
      if (metrics_) metrics_->count("pipeline.dropped");
      return;
    }
    auto& grp = groups_[static_cast<std::size_t>(best)];
    grp.busy = true;
    grp.job = std::make_unique<Job>(cycle, t_obs_s, now_s(), sleep_s,
                                    sys_.ensemble().mean());
    ++launched_;
    if (metrics_) metrics_->count("pipeline.launched");
  }
  work_cv_.notify_all();
}

std::vector<CycleResult> PipelinedDriver::run(std::size_t n_cycles) {
  std::vector<CycleResult> results;
  results.reserve(n_cycles);

  for (std::size_t c = 0; c < n_cycles; ++c) {
    util::Metrics::ScopedTimer cycle_timer(metrics_, "pipeline.cycle");

    // T_obs on the main thread (all of the cycle's random draws).
    auto scans = sys_.advance_and_observe();
    const double t_obs_wall = now_s();

    // Overlap: JIT-DT transfer + regrid run concurrently with the <1-2>
    // ensemble advance.  Both sides are rng-free and touch disjoint state
    // (see the staged-API contract in cycle.hpp), so the analysis is
    // bitwise identical to the serial composition.
    auto obs_future = std::async(std::launch::async, [this, &scans] {
      sys_.transfer_scan(scans);
      return sys_.regrid_observations(scans);
    });
    sys_.advance_ensemble();
    const letkf::ObsVector obs = obs_future.get();

    // <1-1> LETKF, then hand the analysis mean to a rotating group.
    results.push_back(sys_.finish_analysis(std::move(scans.partial), obs));
    if (cfg_.product_every > 0 &&
        c % static_cast<std::size_t>(cfg_.product_every) == 0)
      submit_product(c, t_obs_wall);
    // Serving tier: hand the analysis-mean snapshot to the publisher.  The
    // lambda owns its copies; the frame is built on the publisher's worker
    // thread, and submit() never blocks — a wedged publisher costs this
    // cycle nothing (the watchdog restarts it, publisher.hpp).
    if (cfg_.publisher != nullptr && cfg_.publish_every > 0 &&
        c % static_cast<std::size_t>(cfg_.publish_every) == 0) {
      cfg_.publisher->submit(
          c, [grid = sys_.grid(), snap = sys_.ensemble().mean()] {
            return product_frame(grid, snap);
          });
    }
    if (cfg_.cycle_sleep_s > 0)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(cfg_.cycle_sleep_s));
  }
  return results;
}

void PipelinedDriver::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] {
    for (const auto& g : groups_)
      if (g.busy) return false;
    return true;
  });
}

std::vector<ProductRecord> PipelinedDriver::products() const {
  std::lock_guard<std::mutex> lock(mu_);
  return products_;
}

std::size_t PipelinedDriver::launched() const {
  std::lock_guard<std::mutex> lock(mu_);
  return launched_;
}

std::size_t PipelinedDriver::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace bda::workflow
