// Sharded cycle engine: members and LETKF domain blocks as simulated ranks.
//
// The paper's part <1> runs the 30-second cycle over thousands of nodes in
// two layouts at once: the <1-2> ensemble advance is *member-sharded* (each
// node group integrates a block of members, the ORNL ensemble-block layout)
// while the <1-1> LETKF is *domain-sharded* (each rank analyzes a tile of
// the 500-m grid, needing every member's state there).  Between the two
// steps the operational system redistributes the whole ensemble "with RAM
// copy and node-to-node network communications" instead of files — the
// paper's headline I/O change.  ShardedEngine reproduces that structure on
// hpc::CommWorld threads-as-ranks: rank r advances member block r, then the
// in-memory shuffle repartitions state member->domain, each rank analyzes
// its TileLayout window, halos are refreshed by message-passing
// exchange_halo, and the backward shuffle returns analyzed tiles (interior
// plus exchanged halo) to the member owners.
//
// Determinism contract (docs/SHARDING.md): a sharded cycle is bitwise
// identical to the serial cycle at every rank layout.
//  - Advance: engine structs are scratch-only, so per-rank replicas step a
//    member exactly as the shared serial engines do; the clock is committed
//    once after all blocks finish.
//  - H(x) and prepare(): every rank assembles the identical H(x) byte table
//    (blocks concatenated in rank order) and replicates the QC/statistics
//    pass, so all ranks agree on the kept-obs set and on early returns.
//  - Analysis: Letkf::analyze_window is window-decomposition-invariant (per
//    -column weight cache, canonical obs ordering, integer tallies), and
//    exchange_halo reproduces the serial periodic halo fill bitwise (proven
//    by tests/hpc/test_domain_decomp.cpp).
//  - RNG: the engine draws no random numbers; all draws stay on the staged
//    API's calling thread (workflow/cycle.hpp discipline).
//
// Metrics (docs/SHARDING.md schema): per-rank thread-CPU timers
// "shard.advance" / "shard.analysis" and their per-cycle max-over-ranks
// "shard.advance_max" / "shard.analysis_max" (the node-exclusive TTS
// projection on an oversubscribed host), wall timer "shard.halo", and
// counter "shard.shuffle_bytes" (member<->domain bytes crossing ranks).
#pragma once

#include <memory>
#include <vector>

#include "hpc/comm.hpp"
#include "hpc/domain_decomp.hpp"
#include "letkf/letkf.hpp"
#include "letkf/obs.hpp"
#include "letkf/obsop.hpp"
#include "scale/ensemble.hpp"
#include "scale/grid.hpp"
#include "util/metrics.hpp"

namespace bda::hpc {

struct ShardConfig {
  int px = 1;  ///< domain tiles in x (ranks = px * py)
  int py = 1;  ///< domain tiles in y
};

class ShardedEngine {
 public:
  /// Borrows everything; the referents must outlive the engine.  Throws
  /// std::invalid_argument if the grid is not divisible by (px, py).
  ShardedEngine(scale::Ensemble& ens, const letkf::Letkf& letkf,
                const letkf::ObsOperator& op, const scale::Grid& grid,
                ShardConfig cfg);

  int ranks() const { return cfg_.px * cfg_.py; }
  const ShardConfig& config() const { return cfg_; }
  void set_metrics(util::Metrics* metrics) { metrics_ = metrics; }

  /// <1-2>: every rank advances its member block; the ensemble clock is
  /// committed once afterwards.  Bitwise-equal to Ensemble::advance.
  void advance_ensemble(real duration);

  /// <1-1> plus both shuffles: member->domain redistribution, windowed
  /// LETKF, halo exchange, domain->member return.  Bitwise-equal to
  /// Letkf::analyze on the same ensemble and observations.
  letkf::AnalysisStats analyze(const letkf::ObsVector& obs_in);

  /// Mailbox high-water mark (see Comm::send capacity contract).
  std::size_t peak_mailbox_depth() { return world_.peak_mailbox_depth(); }

 private:
  /// Contiguous member block of one rank: [m0, m1), empty if k < ranks.
  struct MemberBlock {
    int m0 = 0, m1 = 0;
  };
  MemberBlock block_of(int rank) const;
  int owner_of(int member) const;

  /// Rank-local analysis scratch, built lazily on first analyze(): a tile
  /// grid and one tile State per member (reused across cycles).
  struct RankScratch {
    std::unique_ptr<scale::Grid> tile_grid;
    std::vector<std::unique_ptr<scale::State>> tiles;
  };

  scale::Ensemble& ens_;
  const letkf::Letkf& letkf_;
  const letkf::ObsOperator& op_;
  const scale::Grid& grid_;
  ShardConfig cfg_;
  CommWorld world_;
  std::vector<std::unique_ptr<scale::ShardEngines>> engines_;  ///< per rank
  std::vector<RankScratch> scratch_;                           ///< per rank
  util::Metrics* metrics_ = nullptr;
};

}  // namespace bda::hpc
