#include "hpc/scheduler.hpp"

#include <algorithm>

namespace bda::hpc {

ForecastScheduler::ForecastScheduler(SchedulerConfig cfg) : cfg_(cfg) {}

std::vector<ForecastJob> ForecastScheduler::simulate(
    std::size_t n_cycles, const std::vector<double>* runtimes) {
  std::vector<double> busy_until(static_cast<std::size_t>(cfg_.n_groups),
                                 0.0);
  std::vector<ForecastJob> jobs;
  jobs.reserve(n_cycles);
  peak_nodes_ = 0;

  for (std::size_t c = 0; c < n_cycles; ++c) {
    const double t = double(c) * cfg_.interval_s;
    const double rt =
        (runtimes && c < runtimes->size()) ? (*runtimes)[c] : cfg_.runtime_s;
    ForecastJob job;
    job.t_init = t;
    // Pick the group that frees up earliest.
    int best = 0;
    for (int g = 1; g < cfg_.n_groups; ++g)
      if (busy_until[static_cast<std::size_t>(g)] <
          busy_until[static_cast<std::size_t>(best)])
        best = g;
    if (busy_until[static_cast<std::size_t>(best)] > t) {
      // No group free at the admission instant: the cycle's product forecast
      // is skipped (appears as a gap in Fig 5, not a delay — the next cycle
      // brings fresher data anyway).
      job.dropped = true;
      jobs.push_back(job);
      continue;
    }
    job.group = best;
    job.t_start = t;
    job.t_done = t + rt;
    busy_until[static_cast<std::size_t>(best)] = job.t_done;
    jobs.push_back(job);

    // Node accounting: count groups busy at this instant.
    int busy = 0;
    for (int g = 0; g < cfg_.n_groups; ++g)
      if (busy_until[static_cast<std::size_t>(g)] > t) ++busy;
    peak_nodes_ = std::max(peak_nodes_, busy * nodes_per_group());
  }
  return jobs;
}

}  // namespace bda::hpc
