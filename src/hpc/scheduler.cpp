#include "hpc/scheduler.hpp"

#include <algorithm>

namespace bda::hpc {

RotatingGroupPool::RotatingGroupPool(int n_groups, double max_wait_s)
    : busy_until_(static_cast<std::size_t>(n_groups), 0.0),
      max_wait_s_(max_wait_s) {}

int RotatingGroupPool::busy_at(double t) const {
  int busy = 0;
  for (double until : busy_until_)
    if (until > t) ++busy;
  return busy;
}

GroupAdmission RotatingGroupPool::admit(double t_ready, double runtime_s) {
  GroupAdmission adm;
  adm.busy_before = busy_at(t_ready);
  // Occupancy is recorded before the admission decision: an attempt that
  // finds every group busy is exactly the full-partition-saturation
  // instant, and it must register in the peak even when the job is dropped.
  peak_busy_ = std::max(peak_busy_, adm.busy_before);

  // The group that frees up earliest takes the newest forecast.
  std::size_t best = 0;
  for (std::size_t g = 1; g < busy_until_.size(); ++g)
    if (busy_until_[g] < busy_until_[best]) best = g;

  const double t_start = std::max(t_ready, busy_until_[best]);
  if (t_start - t_ready > max_wait_s_) {
    // No group frees up within the wait budget: the job is skipped (a gap
    // in Fig 5, not a delay — the next cycle brings fresher data anyway).
    return adm;
  }
  adm.admitted = true;
  adm.group = static_cast<int>(best);
  adm.t_start = t_start;
  adm.t_done = t_start + runtime_s;
  busy_until_[best] = adm.t_done;
  peak_busy_ = std::max(peak_busy_, busy_at(t_start));
  return adm;
}

void RotatingGroupPool::reset() {
  std::fill(busy_until_.begin(), busy_until_.end(), 0.0);
  peak_busy_ = 0;
}

ForecastScheduler::ForecastScheduler(SchedulerConfig cfg) : cfg_(cfg) {}

std::vector<ForecastJob> ForecastScheduler::simulate(
    std::size_t n_cycles, const std::vector<double>* runtimes) {
  // Admission is instantaneous-or-skipped here (wait budget 0): a cycle
  // whose product forecast finds no free group appears as a gap in Fig 5.
  RotatingGroupPool pool(cfg_.n_groups, 0.0);
  std::vector<ForecastJob> jobs;
  jobs.reserve(n_cycles);

  for (std::size_t c = 0; c < n_cycles; ++c) {
    const double t = double(c) * cfg_.interval_s;
    const double rt =
        (runtimes && c < runtimes->size()) ? (*runtimes)[c] : cfg_.runtime_s;
    const GroupAdmission adm = pool.admit(t, rt);
    ForecastJob job;
    job.t_init = t;
    if (!adm.admitted) {
      job.dropped = true;
      job.groups_busy = adm.busy_before;  // == n_groups: saturated
    } else {
      job.group = adm.group;
      job.t_start = adm.t_start;
      job.t_done = adm.t_done;
      job.groups_busy = adm.busy_before + 1;
    }
    jobs.push_back(job);
  }
  peak_nodes_ = pool.peak_busy() * nodes_per_group();
  return jobs;
}

}  // namespace bda::hpc
