// Message-passing substrate (MPI-style, thread-backed).
//
// The operational SCALE-LETKF is one MPI executable over 426,624 cores; the
// paper's I/O innovation replaced SCALE<->LETKF file exchange with "MPI data
// transfer with RAM copy and node-to-node network communications".  This
// module provides the same programming model at laptop scale: a CommWorld
// spawns N ranks as threads, each holding a Comm endpoint with tagged
// point-to-point send/recv and the collectives the workflow uses.  Message
// delivery is by value (buffers copied), matching MPI semantics.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "util/annotations.hpp"

namespace bda::hpc {

using Buffer = std::vector<std::uint8_t>;

class CommWorld;

/// Per-rank endpoint.  Valid only inside CommWorld::run.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Tagged send (copies the buffer into the destination mailbox).
  ///
  /// Capacity contract: mailboxes are UNBOUNDED, so send() enqueues and
  /// returns without ever blocking on the receiver — MPI_Bsend semantics
  /// with an infinite buffer, not a rendezvous.  Callers are allowed to
  /// post all their sends before any recv (exchange_halo and the sharded
  /// shuffle do exactly that); with bounded mailboxes that pattern would
  /// deadlock.  Anything that adds backpressure here must first convert
  /// those call sites to posted/nonblocking receives.  The cost of the
  /// contract is memory: CommWorld::peak_mailbox_depth() exposes the
  /// high-water mark so tests and benches can see how deep the queues
  /// actually get.
  void send(int dest, int tag, const Buffer& data);
  /// Blocking tagged receive from a specific source.
  Buffer recv(int source, int tag);

  /// Collectives over all ranks.
  void barrier();
  double allreduce_sum(double value);
  /// Gather per-rank buffers at root; non-roots get an empty vector.
  std::vector<Buffer> gather(int root, const Buffer& mine);

 private:
  friend class CommWorld;
  Comm(CommWorld* world, int rank) : world_(world), rank_(rank) {}
  CommWorld* world_;
  int rank_;
};

/// Owns the mailboxes and runs a function on every rank.
class CommWorld {
 public:
  explicit CommWorld(int n_ranks);

  int size() const { return n_ranks_; }

  /// Run `fn(comm)` on every rank concurrently; returns when all finish.
  /// Exceptions thrown by any rank are rethrown (first one wins).
  void run(const std::function<void(Comm&)>& fn);

  /// High-water mark of messages queued in any single mailbox since
  /// construction (the observable side of the unbounded-capacity contract
  /// on Comm::send).  Takes each mailbox lock briefly; meant for tests and
  /// end-of-run reporting, not the hot path.
  std::size_t peak_mailbox_depth();

 private:
  friend class Comm;
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv BDA_CV_OF(mu);  ///< queue-nonempty predicate
    // Keyed by (source, tag); FIFO per key.
    std::map<std::pair<int, int>, std::vector<Buffer>> queues
        BDA_GUARDED_BY(mu);
    std::size_t depth BDA_GUARDED_BY(mu) = 0;       ///< messages queued now
    std::size_t peak_depth BDA_GUARDED_BY(mu) = 0;  ///< high-water mark
  };
  void deliver(int dest, int source, int tag, const Buffer& data);
  Buffer take(int self, int source, int tag);

  int n_ranks_;
  std::vector<Mailbox> boxes_;

  // Barrier / reduction state: generation-counted so back-to-back
  // collectives cannot confuse late wakers (all guarded by coll_mu_).
  std::mutex coll_mu_;
  std::condition_variable coll_cv_ BDA_CV_OF(coll_mu_);
  int coll_count_ BDA_GUARDED_BY(coll_mu_) = 0;
  std::uint64_t coll_generation_ BDA_GUARDED_BY(coll_mu_) = 0;
  double reduce_acc_ BDA_GUARDED_BY(coll_mu_) = 0.0;
  double reduce_result_ BDA_GUARDED_BY(coll_mu_) = 0.0;
};

}  // namespace bda::hpc
