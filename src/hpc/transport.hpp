// SCALE <-> LETKF ensemble-state transports.
//
// Conventional NWP moves data between the model and the assimilation code
// through files ("the weather model and data assimilation codes are usually
// developed independently, and the data transfer ... [is] made by writing
// and reading files", Sec. 4).  At a 30-second refresh that file I/O
// dominates, so the paper replaced it with direct parallel exchange
// ("replacing the original file I/O with parallel I/O using the MPI data
// transfer with RAM copy and node-to-node network communications without
// using files").  Both paths are implemented here behind one interface so
// the ablation bench (bench_ablation_io) measures the gap on identical
// payloads.
#pragma once

#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/annotations.hpp"
#include "util/binary_io.hpp"

namespace bda::hpc {

struct TransportStats {
  double seconds = 0;       ///< wall time of the last operation
  std::size_t bytes = 0;    ///< payload moved
};

class EnsembleTransport {
 public:
  virtual ~EnsembleTransport() = default;
  /// Hand one member's fields from the producer (SCALE) side.
  virtual TransportStats put(int member,
                             const std::vector<FieldRecord>& fields) = 0;
  /// Take one member's fields on the consumer (LETKF) side (FIFO per
  /// member).  Throws if nothing was put.
  virtual std::vector<FieldRecord> take(int member, TransportStats* stats) = 0;
  virtual const char* name() const = 0;
};

/// Legacy path: every member is serialized to a file in `staging_dir` and
/// re-read (and re-parsed) by the consumer.
class FileTransport final : public EnsembleTransport {
 public:
  explicit FileTransport(std::string staging_dir);
  TransportStats put(int member,
                     const std::vector<FieldRecord>& fields) override;
  std::vector<FieldRecord> take(int member, TransportStats* stats) override;
  const char* name() const override { return "file"; }

 private:
  std::string dir_;
};

/// Paper path: RAM copy, no file system involvement and no serialization —
/// the field buffers are copied once into the staging queue and handed out
/// by move, exactly the "MPI data transfer with RAM copy" data volume.
///
/// put() and take() run on different threads in the pipelined cycle (the
/// SCALE producer side and the LETKF consumer side), so the staging queues
/// are mutex-guarded.  take() still throws rather than blocks when nothing
/// is staged: arrival ordering is the workflow's job, not the transport's.
class MemoryTransport final : public EnsembleTransport {
 public:
  TransportStats put(int member,
                     const std::vector<FieldRecord>& fields) override;
  std::vector<FieldRecord> take(int member, TransportStats* stats) override;
  const char* name() const override { return "memory"; }

 private:
  std::mutex mu_;
  std::vector<std::deque<std::vector<FieldRecord>>> slots_ BDA_GUARDED_BY(mu_);
};

}  // namespace bda::hpc
