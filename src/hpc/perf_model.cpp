#include "hpc/perf_model.hpp"

#include <chrono>
#include <vector>

#include "letkf/letkf_core.hpp"
#include "scale/dynamics.hpp"
#include "scale/grid.hpp"
#include "scale/model.hpp"
#include "util/binary_io.hpp"
#include "util/rng.hpp"

namespace bda::hpc {

namespace {
double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Relative LETKF point cost: p k^2 (Y^T R^-1 Y) + alpha k^3 (eigensolve and
/// weight products).  alpha from operation counting of tred2+tql2+3 gemms.
double letkf_flop_units(std::size_t k, double p) {
  constexpr double alpha = 15.0;
  const double kd = double(k);
  return p * kd * kd + alpha * kd * kd * kd;
}
}  // namespace

HostCalibration calibrate_host() {
  HostCalibration cal;

  // --- model kernel: small periodic domain, a few RK3 steps.
  {
    scale::Grid grid(24, 24, 16, 500.0f, 12000.0f);
    scale::ModelConfig cfg;
    cfg.dt = 0.4f;
    cfg.enable_rad = false;  // time the dynamical core + moist physics
    scale::Model model(grid, scale::convective_sounding(), cfg);
    scale::add_thermal_bubble(model.state(), grid, 6000.0f, 6000.0f, 1500.0f,
                              2000.0f, 1000.0f, 2.0f);
    model.step();  // warm-up
    const int steps = 5;
    const double t0 = now_s();
    for (int s = 0; s < steps; ++s) model.step();
    const double dt = now_s() - t0;
    cal.model_cells_per_s =
        double(grid.nx() * grid.ny() * grid.nz()) * steps / dt;
  }

  // --- LETKF kernel: weight solves at (k0, p0).
  {
    const std::size_t k0 = 32, p0 = 64;
    cal.letkf_k0 = k0;
    cal.letkf_p0 = p0;
    Rng rng(42);
    std::vector<float> Y(p0 * k0), d(p0), rinv(p0, 1.0f), W(k0 * k0);
    for (auto& v : Y) v = float(rng.normal());
    for (auto& v : d) v = float(rng.normal());
    letkf::LetkfWorkspace<float> ws(k0);
    bool ok = letkf::letkf_weights<float>(k0, p0, Y.data(), d.data(),
                                          rinv.data(), 0.95f, 1.0f, ws,
                                          W.data());  // warm-up
    const int solves = 50;
    const double t0 = now_s();
    for (int s = 0; s < solves; ++s)
      ok = letkf::letkf_weights<float>(k0, p0, Y.data(), d.data(),
                                       rinv.data(), 0.95f, 1.0f, ws,
                                       W.data()) &&
           ok;
    // A non-converging solve would time the failure path, not the kernel;
    // report "no calibration" rather than a bogus rate.
    cal.letkf_points_per_s = ok ? solves / (now_s() - t0) : 0.0;
  }

  // --- serialization throughput (the RAM-copy transport path).
  {
    Field3D<float> f(32, 32, 32, 0);
    for (idx i = 0; i < 32; ++i)
      for (idx j = 0; j < 32; ++j)
        for (idx k = 0; k < 32; ++k) f(i, j, k) = float(i + j + k);
    std::vector<FieldRecord> recs;
    recs.push_back({"calib", std::move(f)});
    const double t0 = now_s();
    std::size_t bytes = 0;
    for (int it = 0; it < 20; ++it) {
      auto buf = encode_bdf(recs);
      bytes += buf.size();
      auto back = decode_bdf(buf);
      bytes += buf.size();
    }
    cal.serialize_bytes_per_s = double(bytes) / (now_s() - t0);
  }
  return cal;
}

HostCalibration reference_calibration() {
  // Representative of calibrate_host() on a 2020s x86 core running this
  // repository's kernels (full-physics model step; k=32, p=64 LETKF solve).
  HostCalibration cal;
  cal.model_cells_per_s = 6.0e5;
  cal.letkf_points_per_s = 7.0e3;
  cal.letkf_k0 = 32;
  cal.letkf_p0 = 64;
  cal.serialize_bytes_per_s = 2.0e9;
  return cal;
}

double BdaCostModel::t_letkf(std::size_t points, std::size_t k,
                             double mean_obs, int nodes) const {
  const double unit0 = letkf_flop_units(cal_.letkf_k0, double(cal_.letkf_p0));
  const double unit = letkf_flop_units(k, mean_obs);
  const double t_point_host = (unit / unit0) / cal_.letkf_points_per_s;
  const double rate =
      spec_.node_speedup * double(nodes) * spec_.parallel_eff_letkf;
  return double(points) * t_point_host / rate;
}

double BdaCostModel::t_forecast(std::size_t cells, int members, long steps,
                                int nodes) const {
  // model_complexity: ratio of the operational model's per-cell work (full
  // SCALE physics, terrain metrics, wider stencils) to this reproduction's.
  const double host_rate = cal_.model_cells_per_s / spec_.model_complexity;
  const double rate = host_rate * spec_.node_speedup * double(nodes) *
                      spec_.parallel_eff_model;
  return double(cells) * double(members) * double(steps) / rate;
}

ShardProjection BdaCostModel::project_shards(const ShardMeasure& m,
                                             int nodes) const {
  ShardProjection out;
  out.nodes = nodes;
  // Serial-equivalent work: the measured per-shard max times the shard
  // count (the host ranks split the same total work the paper's partition
  // splits); model_complexity lifts the advance to operational physics.
  const double advance_work = m.advance_cpu_s * double(m.ranks);
  const double analysis_work = m.analysis_cpu_s * double(m.ranks);
  out.t_advance_s = advance_work * spec_.model_complexity /
                    (spec_.node_speedup * double(nodes) *
                     spec_.parallel_eff_model);
  out.t_analysis_s = analysis_work / (spec_.node_speedup * double(nodes) *
                                      spec_.parallel_eff_letkf);
  // The shuffle is all-to-all but each byte crosses a node injection link
  // once in each direction; with `nodes` links moving concurrently the
  // wall time is per-node bytes over per-node bandwidth.
  out.t_shuffle_s =
      (m.shuffle_bytes / double(nodes)) / spec_.network_bw_bytes_per_s;
  out.t_total_s = out.t_advance_s + out.t_analysis_s + out.t_shuffle_s;
  return out;
}

double BdaCostModel::t_transfer(double bytes, double eff_bw_bytes_per_s,
                                double overhead_s) {
  return overhead_s + bytes / eff_bw_bytes_per_s;
}

double BdaCostModel::t_file(double bytes, double disk_bw_bytes_per_s,
                            double overhead_s) {
  return overhead_s + bytes / disk_bw_bytes_per_s;
}

}  // namespace bda::hpc
