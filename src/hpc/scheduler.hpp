// Pipelined node allocation for the 30-minute forecasts (part <2>).
//
// A new 30-minute, 11-member product forecast must start every 30 seconds,
// but each takes ~2 minutes of wall clock — so several must be in flight at
// once on the 880-node forecast partition.  The paper cites "an efficient
// node allocation to initialize the expensive part <2> 30-minute SCALE
// forecasts every 30 seconds" [32, 34]; the scheme modeled here is rotating
// groups: the partition is split into `n_groups` groups that take turns
// admitting the newest forecast, giving one completed product per interval
// as long as  n_groups * interval >= runtime  (with the default 4 x 30 s =
// 120 s = the ~2-minute runtime, exactly the operational balance).
//
// The admission policy itself lives in RotatingGroupPool and is shared by
// every consumer — ForecastScheduler::simulate here, the Fig 5 discrete-
// event twin (workflow::OperationSimulator) and, in wall-clock form, the
// real-thread workflow::PipelinedDriver — so drop/queue semantics cannot
// drift between the model and the implementation (a drift of exactly that
// kind is how the peak-node accounting bug below went unnoticed).
#pragma once

#include <cstddef>
#include <vector>

namespace bda::hpc {

/// Outcome of one admission attempt against the rotating groups.
struct GroupAdmission {
  bool admitted = false;
  int group = -1;        ///< group that runs the job (-1 when dropped)
  double t_start = 0;    ///< when the job actually starts (>= t_ready)
  double t_done = 0;     ///< t_start + runtime
  /// Groups busy at the instant the job asked for a slot (before this
  /// admission).  On a drop this equals n_groups: the partition is
  /// saturated — which is why occupancy must be sampled on the dropped
  /// branch too, not only after successful assignments.
  int busy_before = 0;
};

/// The rotating-group admission policy in virtual time.
///
/// A job arriving at `t_ready` goes to the group that frees up earliest.
/// If that group is still busy, the job may queue up to `max_wait_s`
/// (ForecastScheduler uses 0: admission is instantaneous or skipped;
/// OperationSimulator allows a short wait before a fresher analysis
/// supersedes the cycle).  Beyond the budget the job is dropped — a gap in
/// Fig 5, not a delay.
class RotatingGroupPool {
 public:
  explicit RotatingGroupPool(int n_groups, double max_wait_s = 0.0);

  /// Attempt to place one job of `runtime_s` arriving at `t_ready`.
  /// Occupancy (busy_before, peak) is recorded whether or not the job is
  /// admitted.
  GroupAdmission admit(double t_ready, double runtime_s);

  /// Groups whose current job is still running at time `t`.
  int busy_at(double t) const;

  /// Highest simultaneous group occupancy seen by any admission attempt —
  /// including dropped ones, where occupancy is by definition n_groups.
  int peak_busy() const { return peak_busy_; }

  int n_groups() const { return static_cast<int>(busy_until_.size()); }
  double busy_until(int g) const {
    return busy_until_[static_cast<std::size_t>(g)];
  }

  /// Forget all jobs and the occupancy peak.
  void reset();

 private:
  std::vector<double> busy_until_;
  double max_wait_s_ = 0.0;
  int peak_busy_ = 0;
};

struct SchedulerConfig {
  int total_nodes = 880;     ///< part <2> partition size
  int n_groups = 4;          ///< rotating groups
  double interval_s = 30.0;  ///< forecast initialization cadence
  double runtime_s = 120.0;  ///< wall time of one 30-min 11-member forecast
};

struct ForecastJob {
  double t_init = 0;      ///< analysis time it starts from
  double t_start = 0;     ///< when a group became available
  double t_done = 0;      ///< completion (product file written)
  int group = -1;         ///< which node group ran it
  bool dropped = false;   ///< no group free at admission time
  /// Groups busy at the admission instant, counting this job if admitted.
  /// A dropped job records n_groups: full-partition saturation.
  int groups_busy = 0;
};

/// Simulate `n_cycles` admissions (one per interval); returns one JobRecord
/// per admission in time order.
class ForecastScheduler {
 public:
  explicit ForecastScheduler(SchedulerConfig cfg = {});

  /// Reset and simulate from t = 0.  `runtime_of(cycle)` lets the caller
  /// vary runtimes (e.g. with rain area); pass nullptr for the constant
  /// cfg.runtime_s.
  std::vector<ForecastJob> simulate(
      std::size_t n_cycles, const std::vector<double>* runtimes = nullptr);

  int nodes_per_group() const { return cfg_.total_nodes / cfg_.n_groups; }
  const SchedulerConfig& config() const { return cfg_; }

  /// Peak simultaneous node usage of the last simulate() call.  Sampled on
  /// every admission attempt, dropped ones included (a drop means every
  /// group is busy, i.e. the full partition is in use).
  int peak_nodes_used() const { return peak_nodes_; }

 private:
  SchedulerConfig cfg_;
  int peak_nodes_ = 0;
};

}  // namespace bda::hpc
