// Pipelined node allocation for the 30-minute forecasts (part <2>).
//
// A new 30-minute, 11-member product forecast must start every 30 seconds,
// but each takes ~2 minutes of wall clock — so several must be in flight at
// once on the 880-node forecast partition.  The paper cites "an efficient
// node allocation to initialize the expensive part <2> 30-minute SCALE
// forecasts every 30 seconds" [32, 34]; the scheme modeled here is rotating
// groups: the partition is split into `n_groups` groups that take turns
// admitting the newest forecast, giving one completed product per interval
// as long as  n_groups * interval >= runtime  (with the default 4 x 30 s =
// 120 s = the ~2-minute runtime, exactly the operational balance).
#pragma once

#include <cstddef>
#include <vector>

namespace bda::hpc {

struct SchedulerConfig {
  int total_nodes = 880;     ///< part <2> partition size
  int n_groups = 4;          ///< rotating groups
  double interval_s = 30.0;  ///< forecast initialization cadence
  double runtime_s = 120.0;  ///< wall time of one 30-min 11-member forecast
};

struct ForecastJob {
  double t_init = 0;      ///< analysis time it starts from
  double t_start = 0;     ///< when a group became available
  double t_done = 0;      ///< completion (product file written)
  int group = -1;         ///< which node group ran it
  bool dropped = false;   ///< no group free at admission time
};

/// Simulate `n_cycles` admissions (one per interval); returns one JobRecord
/// per admission in time order.
class ForecastScheduler {
 public:
  explicit ForecastScheduler(SchedulerConfig cfg = {});

  /// Reset and simulate from t = 0.  `runtime_of(cycle)` lets the caller
  /// vary runtimes (e.g. with rain area); pass nullptr for the constant
  /// cfg.runtime_s.
  std::vector<ForecastJob> simulate(
      std::size_t n_cycles, const std::vector<double>* runtimes = nullptr);

  int nodes_per_group() const { return cfg_.total_nodes / cfg_.n_groups; }
  const SchedulerConfig& config() const { return cfg_; }

  /// Peak simultaneous node usage of the last simulate() call.
  int peak_nodes_used() const { return peak_nodes_; }

 private:
  SchedulerConfig cfg_;
  int peak_nodes_ = 0;
};

}  // namespace bda::hpc
