#include "hpc/sharded_engine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "util/binary_io.hpp"

namespace bda::hpc {

namespace {

// Tag map for the stages of one analyze() run.  All point-to-point keys are
// (source, tag), so tags only need to be unique per source within a run;
// the bases below keep every stage's tag space disjoint anyway.
constexpr int kTagHx = 1;         ///< all-to-all H(x) blocks (one per src)
constexpr int kTagFwd = 10000;    ///< member->domain state, + m*16 + field
constexpr int kTagBwd = 20000;    ///< domain->member state, + m*16 + field
constexpr int kHaloBase = 40000;  ///< exchange_halo tag_base, + m*16 + field

constexpr int kFieldsPerState = 5 + scale::kNumTracers;

RField3D& state_field(scale::State& s, int f) {
  switch (f) {
    case 0: return s.dens;
    case 1: return s.momx;
    case 2: return s.momy;
    case 3: return s.momz;
    case 4: return s.rhot;
    default: return s.rhoq[static_cast<std::size_t>(f - 5)];
  }
}

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ShardedEngine::ShardedEngine(scale::Ensemble& ens, const letkf::Letkf& letkf,
                             const letkf::ObsOperator& op,
                             const scale::Grid& grid, ShardConfig cfg)
    : ens_(ens), letkf_(letkf), op_(op), grid_(grid), cfg_(cfg),
      world_(cfg.px * cfg.py) {
  // Fail fast on an indivisible decomposition (TileLayout would throw the
  // same from inside a rank thread, much later).
  TileLayout probe(0, cfg_.px, cfg_.py, grid_.nx(), grid_.ny());
  (void)probe;
  engines_.resize(static_cast<std::size_t>(ranks()));
  scratch_.resize(static_cast<std::size_t>(ranks()));
}

ShardedEngine::MemberBlock ShardedEngine::block_of(int rank) const {
  const int k = ens_.size(), r = ranks();
  const int base = k / r, rem = k % r;
  const int m0 = rank * base + std::min(rank, rem);
  return {m0, m0 + base + (rank < rem ? 1 : 0)};
}

int ShardedEngine::owner_of(int member) const {
  for (int r = 0; r < ranks(); ++r) {
    const MemberBlock b = block_of(r);
    if (member >= b.m0 && member < b.m1) return r;
  }
  throw std::logic_error("ShardedEngine: member outside every block");
}

void ShardedEngine::advance_ensemble(real duration) {
  const std::size_t n_ranks = static_cast<std::size_t>(ranks());
  std::vector<double> cpu(n_ranks, 0.0);
  world_.run([&](Comm& comm) {
    const int r = comm.rank();
    auto& slot = engines_[static_cast<std::size_t>(r)];
    if (!slot) slot = ens_.make_shard_engines();
    const MemberBlock b = block_of(r);
    const double c0 = util::thread_cpu_seconds();
    if (b.m1 > b.m0) ens_.advance_block(duration, b.m0, b.m1, *slot);
    cpu[static_cast<std::size_t>(r)] = util::thread_cpu_seconds() - c0;
  });
  // Exactly one clock commit, on the staged-API calling thread.
  ens_.commit_advance(duration);
  if (metrics_) {
    double mx = 0;
    for (double c : cpu) {
      metrics_->observe("shard.advance", c);
      mx = std::max(mx, c);
    }
    metrics_->observe("shard.advance_max", mx);
  }
}

letkf::AnalysisStats ShardedEngine::analyze(const letkf::ObsVector& obs_in) {
  const std::size_t k = static_cast<std::size_t>(ens_.size());
  letkf::AnalysisStats stats;
  stats.n_obs_in = obs_in.size();
  if (k < 2 || obs_in.empty()) return stats;

  const idx h = scale::Grid::kHalo;
  const std::size_t n_all = obs_in.size();
  const int n_ranks = ranks();
  const std::size_t nr = static_cast<std::size_t>(n_ranks);

  // Per-rank result slots: each rank writes only its own index, the calling
  // thread folds them in rank order after the join (which provides the
  // happens-before edge — no locking needed).
  std::vector<letkf::WindowTally> tallies(nr);
  std::vector<double> analysis_cpu(nr, 0.0), halo_wall(nr, 0.0);
  std::vector<std::size_t> moved_bytes(nr, 0);
  letkf::AnalysisStats prep_stats;  // written by rank 0 only
  bool no_obs_kept = false;         // written by rank 0 only

  world_.run([&](Comm& comm) {
    const int r = comm.rank();
    const std::size_t rs = static_cast<std::size_t>(r);
    const TileLayout layout(r, cfg_.px, cfg_.py, grid_.nx(), grid_.ny());
    const MemberBlock blk = block_of(r);
    std::size_t bytes = 0;
    double cpu = 0;

    // ---- Stage 1: member-side H(x) for this rank's block.
    double c0 = util::thread_cpu_seconds();
    Buffer hx_mine;
    for (int m = blk.m0; m < blk.m1; ++m) {
      const std::vector<real> hm =
          letkf::Letkf::member_hx(ens_.member(m), obs_in, op_);
      io::append_raw(hx_mine, hm.data(), hm.size());
    }
    cpu += util::thread_cpu_seconds() - c0;

    // ---- Stage 2: all-to-all H(x).  Every rank assembles the identical
    // hx[n*k + m] table from blocks received in rank order, so the QC pass
    // below is replicated bit-for-bit.
    for (int d = 0; d < n_ranks; ++d) {
      comm.send(d, kTagHx, hx_mine);
      if (d != r) bytes += hx_mine.size();
    }
    std::vector<real> hx(n_all * k);
    for (int src = 0; src < n_ranks; ++src) {
      const Buffer b = comm.recv(src, kTagHx);
      const MemberBlock sb = block_of(src);
      std::size_t pos = 0;
      std::vector<real> hm(n_all);
      for (int m = sb.m0; m < sb.m1; ++m) {
        io::take_raw(b, pos, hm.data(), n_all, "shard hx");
        for (std::size_t n = 0; n < n_all; ++n)
          hx[n * k + static_cast<std::size_t>(m)] = hm[n];
      }
    }

    // ---- Stage 3: replicated QC + obs-space statistics.
    c0 = util::thread_cpu_seconds();
    const letkf::PreparedObs prep = letkf_.prepare(obs_in, hx, k);
    cpu += util::thread_cpu_seconds() - c0;
    if (r == 0) prep_stats = prep.stats;
    if (prep.obs.empty()) {
      // Consistent on every rank (identical hx bytes): all skip together.
      if (r == 0) no_obs_kept = true;
      analysis_cpu[rs] = cpu;
      moved_bytes[rs] = bytes;
      return;
    }

    // ---- Stage 4: forward shuffle, member-sharded -> domain-sharded.
    // Owners scatter each member's tile interiors to the domain ranks.
    for (int m = blk.m0; m < blk.m1; ++m) {
      for (int d = 0; d < n_ranks; ++d) {
        const TileLayout dl(d, cfg_.px, cfg_.py, grid_.nx(), grid_.ny());
        for (int f = 0; f < kFieldsPerState; ++f) {
          Buffer buf = pack_range(state_field(ens_.member(m), f), dl.x0,
                                  dl.x0 + dl.nx, dl.y0, dl.y0 + dl.ny);
          if (d != r) bytes += buf.size();
          comm.send(d, kTagFwd + m * 16 + f, buf);
        }
      }
    }
    RankScratch& scratch = scratch_[rs];
    if (!scratch.tile_grid) {
      scratch.tile_grid = std::make_unique<scale::Grid>(
          scale::Grid::with_faces(layout.nx, layout.ny, grid_.dx(),
                                  grid_.faces()));
      for (std::size_t m = 0; m < k; ++m)
        scratch.tiles.push_back(
            std::make_unique<scale::State>(*scratch.tile_grid));
    }
    for (int m = 0; m < static_cast<int>(k); ++m) {
      const int src = owner_of(m);
      scale::State& tile = *scratch.tiles[static_cast<std::size_t>(m)];
      for (int f = 0; f < kFieldsPerState; ++f)
        unpack_range(comm.recv(src, kTagFwd + m * 16 + f),
                     state_field(tile, f), 0, layout.nx, 0, layout.ny);
    }

    // ---- Stage 5: windowed LETKF over this rank's tile.
    c0 = util::thread_cpu_seconds();
    letkf::EnsembleSlab slab;
    slab.x0 = layout.x0;
    slab.y0 = layout.y0;
    for (std::size_t m = 0; m < k; ++m)
      slab.members.push_back(scratch.tiles[m].get());
    tallies[rs] =
        letkf_.analyze_window(prep, slab, layout.x0, layout.x0 + layout.nx,
                              layout.y0, layout.y0 + layout.ny);
    cpu += util::thread_cpu_seconds() - c0;

    // ---- Stage 6: message-passing halo refresh of the analyzed tiles —
    // the distributed replacement for the serial fill_halos_periodic.
    const double w0 = wall_seconds();
    for (std::size_t m = 0; m < k; ++m)
      for (int f = 0; f < kFieldsPerState; ++f)
        exchange_halo(comm, layout, state_field(*scratch.tiles[m], f),
                      kHaloBase + static_cast<int>(m) * 16 + f);
    halo_wall[rs] = wall_seconds() - w0;

    // ---- Stage 7: backward shuffle, domain-sharded -> member-sharded.
    // Tiles travel with their exchanged halos; the owner writes interior
    // and halo alike.  Overlapping writes (a tile's halo over a neighbour
    // tile's interior, received sequentially by the single owner thread)
    // carry identical bytes by the halo-exchange equivalence, so the
    // reassembled member equals the serial post-analysis state bitwise.
    for (int m = 0; m < static_cast<int>(k); ++m) {
      const int dst = owner_of(m);
      scale::State& tile = *scratch.tiles[static_cast<std::size_t>(m)];
      for (int f = 0; f < kFieldsPerState; ++f) {
        Buffer buf = pack_range(state_field(tile, f), -h, layout.nx + h, -h,
                                layout.ny + h);
        if (dst != r) bytes += buf.size();
        comm.send(dst, kTagBwd + m * 16 + f, buf);
      }
    }
    for (int m = blk.m0; m < blk.m1; ++m) {
      for (int d = 0; d < n_ranks; ++d) {
        const TileLayout dl(d, cfg_.px, cfg_.py, grid_.nx(), grid_.ny());
        for (int f = 0; f < kFieldsPerState; ++f)
          unpack_range(comm.recv(d, kTagBwd + m * 16 + f),
                       state_field(ens_.member(m), f), dl.x0 - h,
                       dl.x0 + dl.nx + h, dl.y0 - h, dl.y0 + dl.ny + h);
      }
    }

    analysis_cpu[rs] = cpu;
    moved_bytes[rs] = bytes;
  });

  // ---- Fold per-rank results in rank order (all integers: exact).
  stats = prep_stats;
  if (no_obs_kept) return stats;
  letkf::WindowTally total;
  std::size_t shuffle_bytes = 0;
  for (std::size_t r = 0; r < nr; ++r) {
    total.grid_updated += tallies[r].grid_updated;
    total.local_obs += tallies[r].local_obs;
    total.eig_fail += tallies[r].eig_fail;
    total.cache_hits += tallies[r].cache_hits;
    total.weight_solves += tallies[r].weight_solves;
    total.eig_batches += tallies[r].eig_batches;
    shuffle_bytes += moved_bytes[r];
  }
  stats.n_grid_updated = total.grid_updated;
  stats.n_eig_fail = total.eig_fail;
  stats.n_weight_reuse = total.cache_hits;
  stats.n_weight_solved = total.weight_solves;
  stats.n_eig_batches = total.eig_batches;
  if (total.grid_updated)
    stats.mean_local_obs =
        double(total.local_obs) / double(total.grid_updated);

  if (metrics_) {
    // Same kernel counters the serial Letkf::analyze records — the shard
    // totals match them exactly (per-column cache, integer sums).
    metrics_->count("letkf.eig_batches", total.eig_batches);
    metrics_->count("letkf.weight_cache_hit", total.cache_hits);
    metrics_->count("letkf.weight_cache_miss", total.weight_solves);
    metrics_->count("letkf.eig_fail", total.eig_fail);
    metrics_->count("shard.shuffle_bytes", shuffle_bytes);
    double mx_cpu = 0;
    for (std::size_t r = 0; r < nr; ++r) {
      metrics_->observe("shard.analysis", analysis_cpu[r]);
      metrics_->observe("shard.halo", halo_wall[r]);
      mx_cpu = std::max(mx_cpu, analysis_cpu[r]);
    }
    metrics_->observe("shard.analysis_max", mx_cpu);
  }
  return stats;
}

}  // namespace bda::hpc
