// Fugaku performance model, calibrated from this host.
//
// The paper's headline numbers were measured on 11,580 exclusive Fugaku
// nodes; this reproduction runs on a workstation, so paper-scale timings are
// *projected*: kernel throughputs (model grid-cell updates per second, LETKF
// grid-point solves per second, serialization bandwidth) are measured on the
// host with the real kernels in this repository, then scaled by an explicit
// node-speedup factor and node count.  All scaling assumptions are plain
// struct fields printed by every bench that uses them, and EXPERIMENTS.md
// records the resulting paper-vs-projected comparison.  What the projection
// preserves is the *shape* of Fig 5: the component breakdown, the dependence
// of compute time on rain area (more rain -> more observations -> more
// LETKF work), and the scheduling behaviour.
#pragma once

#include <cstddef>

namespace bda::hpc {

/// Host-measured kernel throughputs (single core).
struct HostCalibration {
  double model_cells_per_s = 0;   ///< grid-cell updates / s (one RK3 step)
  double letkf_points_per_s = 0;  ///< LETKF point solves / s at (k0, p0)
  std::size_t letkf_k0 = 0;       ///< ensemble size of the calibration solve
  std::size_t letkf_p0 = 0;       ///< local obs count of the calibration
  double serialize_bytes_per_s = 0;  ///< encode+decode throughput
};

/// Run the real kernels briefly and measure.  Deterministic work content;
/// timing obviously varies with the host.
HostCalibration calibrate_host();

/// Scaling assumptions: host core -> Fugaku partition.
struct FugakuSpec {
  /// One A64FX node (48 cores) vs one host core, achieved throughput.
  /// Assumes rough per-core parity between an A64FX core and a host core on
  /// these memory-bound kernels.
  double node_speedup = 48.0;
  double parallel_eff_model = 0.85;  ///< weak-scaling efficiency, model
  double parallel_eff_letkf = 0.70;  ///< includes obs redistribution
  /// Ratio of the operational model's per-cell work (full SCALE physics,
  /// terrain metrics, wider halos) to this reproduction's lighter kernels;
  /// divides the measured host cell rate before projection.  Chosen so the
  /// projected <2> forecast lands at the paper's ~2 minutes; all other
  /// component projections follow from the same constant.
  double model_complexity = 13.0;
  int nodes_analysis = 8008;   ///< part <1> partition
  int nodes_forecast = 880;    ///< part <2> partition
  int nodes_outer = 2002;      ///< outer-domain partition
  /// Per-node injection bandwidth for the member<->domain shuffle (Tofu
  /// interconnect D, one of six 6.8 GB/s links sustained per node).
  double network_bw_bytes_per_s = 6.8e9;
};

/// One measured sharded-cycle data point (bench_shard_scaling): per-cycle
/// per-shard costs on the host, threads-as-ranks.  CPU-time fields are the
/// max over ranks (node-exclusive TTS on an oversubscribed host).
struct ShardMeasure {
  int ranks = 1;
  double advance_cpu_s = 0;   ///< <1-2> member-block advance, max over ranks
  double analysis_cpu_s = 0;  ///< H(x) + prepare + windowed LETKF, max
  double shuffle_bytes = 0;   ///< member<->domain bytes crossing ranks
};

/// The same cycle projected onto a Fugaku partition of `nodes` shards.
struct ShardProjection {
  int nodes = 0;
  double t_advance_s = 0;   ///< <1-2>
  double t_analysis_s = 0;  ///< <1-1>
  double t_shuffle_s = 0;   ///< in-memory member<->domain redistribution
  double t_total_s = 0;
};

/// Component times for the paper's workflow, all in seconds.
class BdaCostModel {
 public:
  BdaCostModel(HostCalibration cal, FugakuSpec spec)
      : cal_(cal), spec_(spec) {}

  /// LETKF analysis <1-1>: `points` analysis grid points with `mean_obs`
  /// local observations each, ensemble size k, on `nodes`.
  double t_letkf(std::size_t points, std::size_t k, double mean_obs,
                 int nodes) const;

  /// Ensemble forecast: `cells` grid cells, `members`, `steps` RK3 steps,
  /// on `nodes` (used for <1-2>, <2> and the outer domain).
  double t_forecast(std::size_t cells, int members, long steps,
                    int nodes) const;

  /// Network transfer with protocol overhead (JIT-DT over SINET):
  /// t = overhead + bytes / effective_bandwidth.
  static double t_transfer(double bytes, double eff_bw_bytes_per_s,
                           double overhead_s);

  /// File write of `bytes` at `disk_bw` (MP-PAWR file creation, product
  /// file output on the exclusive disk volume).
  static double t_file(double bytes, double disk_bw_bytes_per_s,
                       double overhead_s);

  /// Project one measured sharded cycle to a partition of `nodes` shards:
  /// the serial-equivalent work (max-per-rank cost x ranks) is spread over
  /// nodes at node_speedup with the per-component efficiencies, and the
  /// shuffle bytes cross each node's injection link once.  The paper-scale
  /// question this answers: does the in-memory redistribution stay cheap
  /// relative to <1-1>/<1-2> at 11,580 nodes?
  ShardProjection project_shards(const ShardMeasure& m, int nodes) const;

  const HostCalibration& calibration() const { return cal_; }
  const FugakuSpec& spec() const { return spec_; }

 private:
  double node_rate(double host_rate, int nodes, double eff) const {
    return host_rate * spec_.node_speedup * double(nodes) * eff;
  }
  HostCalibration cal_;
  FugakuSpec spec_;
};

/// Convenience: a fixed calibration representative of a modern x86 core, so
/// benches can run the projection reproducibly without waiting for the
/// measurement pass (Fig 5 uses measured-when-available, fixed otherwise).
HostCalibration reference_calibration();

}  // namespace bda::hpc
