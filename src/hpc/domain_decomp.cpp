#include "hpc/domain_decomp.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "util/binary_io.hpp"

namespace bda::hpc {

TileLayout::TileLayout(int rank_, int px_, int py_, idx global_nx,
                       idx global_ny)
    : rank(rank_), px(px_), py(py_) {
  if (px <= 0 || py <= 0 || rank < 0 || rank >= px * py)
    throw std::invalid_argument("TileLayout: bad process grid");
  if (global_nx % px != 0 || global_ny % py != 0)
    throw std::invalid_argument(
        "TileLayout: domain not divisible by process grid");
  cx = rank % px;
  cy = rank / px;
  nx = global_nx / px;
  ny = global_ny / py;
  x0 = idx(cx) * nx;
  y0 = idx(cy) * ny;
}

int TileLayout::rank_of(int cx, int cy, int px, int py) {
  const int wx = (cx % px + px) % px;
  const int wy = (cy % py + py) % py;
  return wy * px + wx;
}

int TileLayout::neighbor(int dx, int dy) const {
  return rank_of(cx + dx, cy + dy, px, py);
}

Buffer pack_range(const RField3D& f, idx i_lo, idx i_hi, idx j_lo, idx j_hi) {
  const std::size_t nz = static_cast<std::size_t>(f.nz());
  Buffer buf;
  buf.reserve(static_cast<std::size_t>(i_hi - i_lo) *
              static_cast<std::size_t>(j_hi - j_lo) * nz * sizeof(real));
  for (idx i = i_lo; i < i_hi; ++i)
    for (idx j = j_lo; j < j_hi; ++j) {
      const auto col = f.column(i, j);
      io::append_raw(buf, col.data(), nz);
    }
  return buf;
}

void unpack_range(const Buffer& buf, RField3D& f, idx i_lo, idx i_hi,
                  idx j_lo, idx j_hi) {
  const std::size_t nz = static_cast<std::size_t>(f.nz());
  std::size_t pos = 0;
  if (buf.size() != static_cast<std::size_t>(i_hi - i_lo) *
                        static_cast<std::size_t>(j_hi - j_lo) * nz *
                        sizeof(real))
    throw std::runtime_error("unpack_range: strip size mismatch");
  for (idx i = i_lo; i < i_hi; ++i)
    for (idx j = j_lo; j < j_hi; ++j) {
      auto col = f.column(i, j);
      std::memcpy(col.data(), buf.data() + pos, nz * sizeof(real));
      pos += nz * sizeof(real);
    }
}

void exchange_halo(Comm& comm, const TileLayout& layout, RField3D& tile,
                   int tag_base) {
  const idx h = tile.halo();
  const idx nx = tile.nx(), ny = tile.ny();
  if (nx != layout.nx || ny != layout.ny)
    throw std::invalid_argument(
        "exchange_halo: tile extent does not match layout");
  // With h > nx (or ny) the strip a neighbour needs would extend past the
  // nearest rank: pack_range(tile, nx - h, nx, ...) would start at a
  // negative interior index and read out of range.  The self-neighbour
  // px*py == 1 case hits the same read, so it is validated identically.
  if (h > nx || h > ny)
    throw std::invalid_argument("exchange_halo: halo wider than tile");
  const int left = layout.neighbor(-1, 0);
  const int right = layout.neighbor(+1, 0);
  const int down = layout.neighbor(0, -1);
  const int up = layout.neighbor(0, +1);
  const int t0 = tag_base * 8;

  // Phase 1: x-direction (interior j only).  A rank's left edge goes to
  // the left neighbour's right halo and vice versa.
  comm.send(left, t0 + 0, pack_range(tile, 0, h, 0, ny));
  comm.send(right, t0 + 1, pack_range(tile, nx - h, nx, 0, ny));
  unpack_range(comm.recv(right, t0 + 0), tile, nx, nx + h, 0, ny);
  unpack_range(comm.recv(left, t0 + 1), tile, -h, 0, 0, ny);

  // Phase 2: y-direction including the freshly filled x halos, which
  // propagates the diagonal corners in the standard two-phase pattern.
  comm.send(down, t0 + 2, pack_range(tile, -h, nx + h, 0, h));
  comm.send(up, t0 + 3, pack_range(tile, -h, nx + h, ny - h, ny));
  unpack_range(comm.recv(up, t0 + 2), tile, -h, nx + h, ny, ny + h);
  unpack_range(comm.recv(down, t0 + 3), tile, -h, nx + h, -h, 0);
}

RField3D extract_tile(const RField3D& global, const TileLayout& layout,
                      idx halo) {
  RField3D tile(layout.nx, layout.ny, global.nz(), halo);
  for (idx i = 0; i < layout.nx; ++i)
    for (idx j = 0; j < layout.ny; ++j)
      for (idx k = 0; k < global.nz(); ++k)
        tile(i, j, k) = global(layout.x0 + i, layout.y0 + j, k);
  return tile;
}

void insert_tile(const RField3D& tile, const TileLayout& layout,
                 RField3D& global) {
  for (idx i = 0; i < layout.nx; ++i)
    for (idx j = 0; j < layout.ny; ++j)
      for (idx k = 0; k < global.nz(); ++k)
        global(layout.x0 + i, layout.y0 + j, k) = tile(i, j, k);
}

}  // namespace bda::hpc
