#include "hpc/transport.hpp"

#include <filesystem>
#include <stdexcept>

namespace bda::hpc {

namespace {
double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
std::string member_path(const std::string& dir, int member) {
  return dir + "/member_" + std::to_string(member) + ".bdf";
}
}  // namespace

FileTransport::FileTransport(std::string staging_dir)
    : dir_(std::move(staging_dir)) {
  std::filesystem::create_directories(dir_);
}

TransportStats FileTransport::put(int member,
                                  const std::vector<FieldRecord>& fields) {
  const double t0 = now_s();
  const std::string path = member_path(dir_, member);
  write_bdf(path, fields);
  TransportStats st;
  st.seconds = now_s() - t0;
  st.bytes = std::filesystem::file_size(path);
  return st;
}

std::vector<FieldRecord> FileTransport::take(int member,
                                             TransportStats* stats) {
  const double t0 = now_s();
  const std::string path = member_path(dir_, member);
  if (!std::filesystem::exists(path))
    throw std::runtime_error("FileTransport: nothing staged for member " +
                             std::to_string(member));
  auto recs = read_bdf(path);
  std::filesystem::remove(path);
  if (stats) {
    stats->seconds = now_s() - t0;
    stats->bytes = 0;
    for (const auto& r : recs)
      stats->bytes += r.data.interior_size() * sizeof(float);
  }
  return recs;
}

TransportStats MemoryTransport::put(int member,
                                    const std::vector<FieldRecord>& fields) {
  const double t0 = now_s();
  if (member < 0) throw std::out_of_range("MemoryTransport: member < 0");
  TransportStats st;
  for (const auto& r : fields)
    st.bytes += r.data.interior_size() * sizeof(float);
  // One copy into the staging queue — the RAM-copy half of the exchange.
  // Copy outside the lock; only the queue splice is serialized.
  auto staged = fields;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (static_cast<std::size_t>(member) >= slots_.size())
      slots_.resize(static_cast<std::size_t>(member) + 1);
    slots_[static_cast<std::size_t>(member)].push_back(std::move(staged));
  }
  st.seconds = now_s() - t0;
  return st;
}

std::vector<FieldRecord> MemoryTransport::take(int member,
                                               TransportStats* stats) {
  const double t0 = now_s();
  std::vector<FieldRecord> recs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (member < 0 || static_cast<std::size_t>(member) >= slots_.size() ||
        slots_[static_cast<std::size_t>(member)].empty())
      throw std::runtime_error("MemoryTransport: nothing staged for member " +
                               std::to_string(member));
    recs = std::move(slots_[static_cast<std::size_t>(member)].front());
    slots_[static_cast<std::size_t>(member)].pop_front();
  }
  if (stats) {
    stats->seconds = now_s() - t0;
    stats->bytes = 0;
    for (const auto& r : recs)
      stats->bytes += r.data.interior_size() * sizeof(float);
  }
  return recs;
}

}  // namespace bda::hpc
