// Horizontal domain decomposition with message-passing halo exchange.
//
// The operational SCALE-LETKF distributes the 256x256 horizontal grid over
// thousands of MPI ranks; every dynamics step exchanges halo columns with
// the four neighbours.  This module provides the same decomposition over
// the thread-backed Comm: a PX x PY process grid, local tile extents, and
// a halo exchange for Field3D tiles that is verified (in tests) to
// reproduce the serial periodic halo fill exactly.
#pragma once

#include "hpc/comm.hpp"
#include "util/field.hpp"

namespace bda::hpc {

/// Layout of one rank's tile in a PX x PY periodic process grid over a
/// global nx x ny domain (nx % px == 0, ny % py == 0 required).
struct TileLayout {
  TileLayout(int rank, int px, int py, idx global_nx, idx global_ny);

  int rank, px, py;
  int cx, cy;            ///< this rank's process-grid coordinates
  idx nx, ny;            ///< local tile extent
  idx x0, y0;            ///< global offset of local (0, 0)

  int neighbor(int dx, int dy) const;  ///< rank at (cx+dx, cy+dy), periodic
  static int rank_of(int cx, int cy, int px, int py);
};

/// Exchange the horizontal halos of a local tile with the four neighbours
/// (including the diagonal corners, handled by the standard two-phase
/// x-then-y exchange).  Blocking; all ranks must call collectively.
/// `tag_base` separates concurrent exchanges of different fields.
///
/// Requirements (validated, std::invalid_argument otherwise): the tile's
/// interior extent must match `layout` and the halo must fit inside the
/// interior (halo <= nx and halo <= ny) — a wider halo would need strips
/// from beyond the nearest neighbour, which the four-neighbour pattern
/// cannot supply.  All four sends are posted before any recv; that is safe
/// only under Comm::send's unbounded-mailbox capacity contract (comm.hpp),
/// and it is what makes the px*py == 1 self-neighbour case (every send
/// loops back to the caller's own mailbox) deadlock-free.
void exchange_halo(Comm& comm, const TileLayout& layout, RField3D& tile,
                   int tag_base = 0);

/// Serialize / restore a rectangular (i, j) index range of a field (all k
/// levels, columns in (i, j) row-major order).  Range indices may dip into
/// the halo (valid field indices required).  Shared by exchange_halo and
/// the sharded member<->domain shuffle (hpc::ShardedEngine).
Buffer pack_range(const RField3D& f, idx i_lo, idx i_hi, idx j_lo, idx j_hi);
void unpack_range(const Buffer& buf, RField3D& f, idx i_lo, idx i_hi,
                  idx j_lo, idx j_hi);

/// Scatter a global field into per-rank tiles (returns this rank's tile,
/// halo uninitialized) and gather tiles back into a global field.  Utility
/// for tests and for staging global analysis fields.
RField3D extract_tile(const RField3D& global, const TileLayout& layout,
                      idx halo);
void insert_tile(const RField3D& tile, const TileLayout& layout,
                 RField3D& global);

}  // namespace bda::hpc
