#include "hpc/comm.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <thread>

namespace bda::hpc {

CommWorld::CommWorld(int n_ranks)
    : n_ranks_(n_ranks), boxes_(static_cast<std::size_t>(n_ranks)) {
  if (n_ranks <= 0) throw std::invalid_argument("CommWorld: n_ranks <= 0");
}

void CommWorld::run(const std::function<void(Comm&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_ranks_));
  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < n_ranks_; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(this, r);
      try {
        fn(comm);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void CommWorld::deliver(int dest, int source, int tag, const Buffer& data) {
  auto& box = boxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queues[{source, tag}].push_back(data);
    ++box.depth;
    box.peak_depth = std::max(box.peak_depth, box.depth);
  }
  box.cv.notify_all();
}

std::size_t CommWorld::peak_mailbox_depth() {
  std::size_t peak = 0;
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box.mu);
    peak = std::max(peak, box.peak_depth);
  }
  return peak;
}

Buffer CommWorld::take(int self, int source, int tag) {
  auto& box = boxes_[static_cast<std::size_t>(self)];
  std::unique_lock<std::mutex> lock(box.mu);
  const auto key = std::make_pair(source, tag);
  box.cv.wait(lock, [&] {
    const auto it = box.queues.find(key);
    return it != box.queues.end() && !it->second.empty();
  });
  auto& q = box.queues[key];
  Buffer out = std::move(q.front());
  q.erase(q.begin());
  --box.depth;
  return out;
}

int Comm::size() const { return world_->size(); }

void Comm::send(int dest, int tag, const Buffer& data) {
  if (dest < 0 || dest >= world_->size())
    throw std::out_of_range("Comm::send: bad destination rank");
  world_->deliver(dest, rank_, tag, data);
}

Buffer Comm::recv(int source, int tag) {
  if (source < 0 || source >= world_->size())
    throw std::out_of_range("Comm::recv: bad source rank");
  return world_->take(rank_, source, tag);
}

void Comm::barrier() {
  std::unique_lock<std::mutex> lock(world_->coll_mu_);
  const std::uint64_t gen = world_->coll_generation_;
  if (++world_->coll_count_ == world_->size()) {
    world_->coll_count_ = 0;
    ++world_->coll_generation_;
    world_->coll_cv_.notify_all();
  } else {
    world_->coll_cv_.wait(lock,
                          [&] { return world_->coll_generation_ != gen; });
  }
}

double Comm::allreduce_sum(double value) {
  std::unique_lock<std::mutex> lock(world_->coll_mu_);
  const std::uint64_t gen = world_->coll_generation_;
  world_->reduce_acc_ += value;
  if (++world_->coll_count_ == world_->size()) {
    world_->reduce_result_ = world_->reduce_acc_;
    world_->reduce_acc_ = 0.0;
    world_->coll_count_ = 0;
    ++world_->coll_generation_;
    world_->coll_cv_.notify_all();
  } else {
    world_->coll_cv_.wait(lock,
                          [&] { return world_->coll_generation_ != gen; });
  }
  return world_->reduce_result_;
}

std::vector<Buffer> Comm::gather(int root, const Buffer& mine) {
  constexpr int kGatherTag = -4242;
  if (rank_ == root) {
    std::vector<Buffer> out(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(rank_)] = mine;
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      out[static_cast<std::size_t>(r)] = recv(r, kGatherTag);
    }
    return out;
  }
  send(root, kGatherTag, mine);
  return {};
}

}  // namespace bda::hpc
