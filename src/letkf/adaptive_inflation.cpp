#include "letkf/adaptive_inflation.hpp"
// bda-style: double-ok — once-per-cycle Desroziers innovation statistics,
// deliberately double precision (not a member-loop hot path).

#include <algorithm>

namespace bda::letkf {

AdaptiveInflation::AdaptiveInflation(real rho_init, real smoothing,
                                     real rho_min, real rho_max)
    : rho_(rho_init), smoothing_(smoothing), rho_min_(rho_min),
      rho_max_(rho_max) {}

double AdaptiveInflation::estimate(const InnovationMoments& m) {
  if (m.n_obs == 0 || m.mean_ens_var <= 1e-12) return 1.0;
  return (m.mean_innov2 - m.mean_obs_var) / m.mean_ens_var;
}

double AdaptiveInflation::estimate_floored(const InnovationMoments& m) const {
  return std::max(double(rho_min_), estimate(m));
}

void AdaptiveInflation::update(const InnovationMoments& m) {
  // Floor the instantaneous estimate before blending: a negative Desroziers
  // ratio (innovations far below the error budget, e.g. one degenerate
  // cycle) must not enter the temporal smoothing as if it were a usable
  // inflation — previously only the final clamp rescued the stored rho,
  // after the bogus value had already polluted the blend.
  const double inst = estimate_floored(m);
  const double blended =
      double(rho_) * (1.0 - double(smoothing_)) + inst * double(smoothing_);
  rho_ = std::clamp(real(blended), rho_min_, rho_max_);
}

}  // namespace bda::letkf
