#include "letkf/obsop.hpp"

#include <algorithm>
#include <cmath>

namespace bda::letkf {

ObsOperator::ObsOperator(const scale::Grid& grid, real radar_x, real radar_y,
                         real radar_z, scale::MicroParams micro)
    : grid_(grid), rx_(radar_x), ry_(radar_y), rz_(radar_z), micro_(micro) {}

void ObsOperator::locate(real x, real y, real z, idx& i, idx& j,
                         idx& k) const {
  i = std::clamp<idx>(static_cast<idx>(x / grid_.dx()), 0, grid_.nx() - 1);
  j = std::clamp<idx>(static_cast<idx>(y / grid_.dx()), 0, grid_.ny() - 1);
  // Vertical: linear scan is fine (nz <= 60, called per obs per member);
  // levels are monotone so a binary search would also work.
  k = grid_.nz() - 1;
  for (idx kk = 0; kk < grid_.nz(); ++kk)
    if (z < grid_.zf(kk + 1)) {
      k = kk;
      break;
    }
}

real ObsOperator::apply(const scale::State& state,
                        const Observation& ob) const {
  idx i, j, k;
  locate(ob.x, ob.y, ob.z, i, j, k);
  if (ob.type == ObsType::kReflectivity)
    return scale::cell_reflectivity_dbz(state, i, j, k);

  // Doppler velocity: radial unit vector from the originating radar to the
  // observation (multi-radar obs carry their own site).
  const real ox = ob.own_origin ? ob.rx : rx_;
  const real oy = ob.own_origin ? ob.ry : ry_;
  const real oz = ob.own_origin ? ob.rz : rz_;
  real ex = ob.x - ox, ey = ob.y - oy, ez = ob.z - oz;
  const real norm = std::sqrt(ex * ex + ey * ey + ez * ez);
  if (norm < real(1)) return 0;  // directly over the radar: undefined
  ex /= norm;
  ey /= norm;
  ez /= norm;
  const real vt = scale::cell_fall_speed(state, micro_, i, j, k);
  return ex * state.u(i, j, k) + ey * state.v(i, j, k) +
         ez * (state.w(i, j, k) - vt);
}

}  // namespace bda::letkf
