// Symmetric eigensolvers for the LETKF.
//
// The LETKF computes, at every analysis grid point, the eigendecomposition
// of the k x k ensemble-space matrix (k - 1)I + Y^T R^-1 Y — with k = 1000
// members that is 256 x 256 x 60 decompositions of 1000 x 1000 matrices per
// 30-second cycle.  The paper replaced the standard LAPACK solver with KeDV
// (Kudo & Imamura 2019), a cache-efficient batched tridiagonalization for
// many-core CPUs.  Since no LAPACK is assumed here, both paths are
// implemented from scratch:
//   * sym_eigen       — classic Householder tridiagonalization (tred2) +
//                       implicit-shift QL (tql2), one matrix at a time,
//                       allocating its own workspace: the "standard solver"
//                       baseline.
//   * BatchedSymEigen — the KeDV stand-in: `solve_batch` takes B same-size
//                       problems in one contiguous block and runs the
//                       Householder reduction step-interleaved across a
//                       tile of matrices with preallocated scratch, so the
//                       tile stays cache-resident through the O(n^3) panel
//                       updates.  `solve` is the serial reference path.
// Both are templated on the scalar for the precision ablation.
//
// Determinism contract: tred2 is factored into per-step functions and every
// entry point (sym_eigen, BatchedSymEigen::solve, ::solve_batch) calls the
// SAME function instantiations in the same per-matrix order, so the batched
// results are bitwise-identical to the serial ones — interleaving only
// reorders work *across* independent matrices, never within one.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace bda::letkf {

namespace detail {

/// sqrt(a^2 + b^2) without intermediate overflow/underflow: |a| only a
/// little above 1.8e19 makes a*a overflow in single precision, and
/// subnormal inputs squared flush to zero.  Scaling by the larger magnitude
/// keeps the squared term in [1/2, 1], the classic BLAS snrm2 trick.
template <typename T>
T hypot2(T a, T b) {
  const T aa = std::abs(a);
  const T ab = std::abs(b);
  const T hi = aa > ab ? aa : ab;
  if (hi == T(0)) return T(0);
  const T lo = aa > ab ? ab : aa;
  const T r = lo / hi;
  return hi * std::sqrt(T(1) + r * r);
}

/// tred2 prologue: seed the working diagonal from the last matrix row.
template <typename T>
void tred2_init(std::size_t n, const T* v, T* d) {
  for (std::size_t j = 0; j < n; ++j) d[j] = v[(n - 1) * n + j];
}

/// One Householder reduction step of tred2 (row i, counting down from
/// n - 1 to 1).  d and e are the per-matrix scratch carried across steps;
/// the step touches only this matrix's data, which is what makes the
/// batched step-interleaving in BatchedSymEigen bitwise-neutral.
template <typename T>
void tred2_step(std::size_t n, std::size_t i, T* v, T* d, T* e) {
  const std::size_t l = i - 1;
  T h = T(0), scale = T(0);
  if (l > 0) {
    for (std::size_t k = 0; k <= l; ++k) scale += std::abs(d[k]);
    if (scale == T(0)) {
      e[i] = d[l];
      for (std::size_t j = 0; j <= l; ++j) {
        d[j] = v[l * n + j];
        v[i * n + j] = T(0);
        v[j * n + i] = T(0);
      }
    } else {
      for (std::size_t k = 0; k <= l; ++k) {
        d[k] /= scale;
        h += d[k] * d[k];
      }
      T f = d[l];
      T g = (f > T(0)) ? -std::sqrt(h) : std::sqrt(h);
      e[i] = scale * g;
      h -= f * g;
      d[l] = f - g;
      for (std::size_t j = 0; j <= l; ++j) e[j] = T(0);

      for (std::size_t j = 0; j <= l; ++j) {
        f = d[j];
        v[j * n + i] = f;
        g = e[j] + v[j * n + j] * f;
        for (std::size_t k = j + 1; k <= l; ++k) {
          g += v[k * n + j] * d[k];
          e[k] += v[k * n + j] * f;
        }
        e[j] = g;
      }
      f = T(0);
      for (std::size_t j = 0; j <= l; ++j) {
        e[j] /= h;
        f += e[j] * d[j];
      }
      const T hh = f / (h + h);
      for (std::size_t j = 0; j <= l; ++j) e[j] -= hh * d[j];
      for (std::size_t j = 0; j <= l; ++j) {
        f = d[j];
        g = e[j];
        for (std::size_t k = j; k <= l; ++k)
          v[k * n + j] -= (f * e[k] + g * d[k]);
        d[j] = v[l * n + j];
        v[i * n + j] = T(0);
      }
    }
  } else {
    e[i] = d[l];
    d[l] = v[l * n + l];
    v[i * n + l] = T(0);
    v[l * n + i] = T(0);
  }
  d[i] = h;
}

/// tred2 epilogue: accumulate the orthogonal transform into v and finalize
/// d (diagonal of T) and e (subdiagonal, e[0] = 0).
template <typename T>
void tred2_finish(std::size_t n, T* v, T* d, T* e) {
  for (std::size_t i = 0; i < n - 1; ++i) {
    v[(n - 1) * n + i] = v[i * n + i];
    v[i * n + i] = T(1);
    const std::size_t l = i + 1;
    const T h = d[l];
    if (h != T(0)) {
      for (std::size_t k = 0; k <= i; ++k) d[k] = v[k * n + l] / h;
      for (std::size_t j = 0; j <= i; ++j) {
        T g = T(0);
        for (std::size_t k = 0; k <= i; ++k) g += v[k * n + l] * v[k * n + j];
        for (std::size_t k = 0; k <= i; ++k) v[k * n + j] -= g * d[k];
      }
    }
    for (std::size_t k = 0; k <= i; ++k) v[k * n + l] = T(0);
  }
  for (std::size_t j = 0; j < n; ++j) {
    d[j] = v[(n - 1) * n + j];
    v[(n - 1) * n + j] = T(0);
  }
  v[(n - 1) * n + (n - 1)] = T(1);
  e[0] = T(0);
}

/// Householder reduction of a real symmetric matrix to tridiagonal form,
/// accumulating the orthogonal transform.  On input v holds A (row-major,
/// n x n, symmetric); on output v holds the accumulated orthogonal matrix Q
/// with A = Q T Q^T, d the diagonal of T and e the subdiagonal (e[0] = 0).
/// This is the EISPACK tred2 algorithm, split into init/step/finish so the
/// batched solver can interleave the same steps across matrices.
template <typename T>
void tred2(std::size_t n, T* v, T* d, T* e) {
  tred2_init(n, v, d);
  for (std::size_t i = n - 1; i > 0; --i) tred2_step(n, i, v, d, e);
  tred2_finish(n, v, d, e);
}

/// Implicit-shift QL iteration on the tridiagonal (d, e), rotating the
/// accumulated transform in v so its columns become the eigenvectors of the
/// original matrix.  EISPACK tql2.  Returns false if an eigenvalue fails to
/// converge within `max_iters` sweeps (effectively never for SPD LETKF
/// matrices at the default; lowering the cap is the deterministic
/// fault-injection knob for the non-convergence path).
template <typename T>
bool tql2(std::size_t n, T* v, T* d, T* e, int max_iters = 50) {
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = T(0);

  T f = T(0), tst1 = T(0);
  const T eps = std::numeric_limits<T>::epsilon();
  for (std::size_t l = 0; l < n; ++l) {
    tst1 = std::max(tst1, std::abs(d[l]) + std::abs(e[l]));
    std::size_t m = l;
    while (m < n && std::abs(e[m]) > eps * tst1) ++m;

    if (m > l) {
      int iter = 0;
      do {
        if (++iter > max_iters) return false;
        // Form the Wilkinson shift.
        T g = d[l];
        T p = (d[l + 1] - g) / (T(2) * e[l]);
        T r = hypot2(p, T(1));
        if (p < T(0)) r = -r;
        d[l] = e[l] / (p + r);
        d[l + 1] = e[l] * (p + r);
        const T dl1 = d[l + 1];
        T h = g - d[l];
        for (std::size_t i = l + 2; i < n; ++i) d[i] -= h;
        f += h;

        // Implicit QL sweep.
        p = d[m];
        T c = T(1), c2 = c, c3 = c;
        const T el1 = e[l + 1];
        T s = T(0), s2 = T(0);
        for (long li = long(m) - 1; li >= long(l); --li) {
          const std::size_t i = static_cast<std::size_t>(li);
          c3 = c2;
          c2 = c;
          s2 = s;
          g = c * e[i];
          h = c * p;
          r = hypot2(p, e[i]);
          e[i + 1] = s * r;
          s = e[i] / r;
          c = p / r;
          p = c * d[i] - s * g;
          d[i + 1] = h + s * (c * g + s * d[i]);
          for (std::size_t k = 0; k < n; ++k) {
            h = v[k * n + i + 1];
            v[k * n + i + 1] = s * v[k * n + i] + c * h;
            v[k * n + i] = c * v[k * n + i] - s * h;
          }
        }
        p = -s * s2 * c3 * el1 * e[l] / dl1;
        e[l] = s * p;
        d[l] = c * p;
      } while (std::abs(e[l]) > eps * tst1);
    }
    d[l] += f;
    e[l] = T(0);
  }

  // Sort eigenvalues (ascending) and eigenvectors.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    std::size_t k = i;
    T p = d[i];
    for (std::size_t j = i + 1; j < n; ++j)
      if (d[j] < p) {
        k = j;
        p = d[j];
      }
    if (k != i) {
      d[k] = d[i];
      d[i] = p;
      for (std::size_t j = 0; j < n; ++j) std::swap(v[j * n + i], v[j * n + k]);
    }
  }
  return true;
}

}  // namespace detail

/// Standard one-shot solver ("LAPACK-style" baseline): a is the symmetric
/// input (row-major, n x n) and is overwritten with the eigenvectors (column
/// j of the output = eigenvector of w[j]); w receives ascending eigenvalues.
/// Allocates its own scratch each call, as a per-gridpoint LAPACK call
/// would.  Returns false on (effectively impossible) non-convergence.
template <typename T>
[[nodiscard]] bool sym_eigen(std::size_t n, T* a, T* w) {
  if (n == 0) return true;
  if (n == 1) {
    // Trivial case, handled up front: the QL sweep below is a no-op for
    // n = 1, but making that explicit lets the compiler (and its
    // -Warray-bounds analysis, when it constant-folds a unit-size call)
    // see that no e[l + 1] access ever happens.
    w[0] = a[0];
    a[0] = T(1);
    return true;
  }
  std::vector<T> e(n);
  detail::tred2(n, a, w, e.data());
  return detail::tql2(n, a, w, e.data());
}

/// Default number of matrices whose Householder steps `solve_batch`
/// interleaves: at the paper-relevant small k (float, k <= 128) a tile of 8
/// matrices plus scratch fits mid-level cache, so the reduction sweeps the
/// tile instead of re-streaming one matrix per call.
inline constexpr std::size_t kEigenBatchTile = 8;

/// KeDV-style batched solver: preallocated workspace reused across a batch
/// of same-size problems, with the Householder reduction step-interleaved
/// across a tile of matrices — the cache-blocking property KeDV exploits on
/// the A64FX.  The numerics per matrix are exactly the serial
/// tred2/tql2 pair (same function instantiations, same order), so
/// `solve_batch` output is bitwise-identical to calling `solve` per matrix.
template <typename T>
class BatchedSymEigen {
 public:
  explicit BatchedSymEigen(std::size_t n, std::size_t tile = kEigenBatchTile)
      : n_(n), tile_(tile == 0 ? 1 : tile), e_(n * (tile == 0 ? 1 : tile)) {}

  std::size_t size() const { return n_; }
  std::size_t tile() const { return tile_; }

  /// Cap on implicit-QL sweeps per eigenvalue (default 50, as tql2).
  /// Lowering it far below ~30 is a deterministic fault-injection knob:
  /// real SPD LETKF matrices then report non-convergence, exercising the
  /// failure accounting downstream.
  void set_max_ql_iterations(int iters) { max_ql_iters_ = iters; }
  int max_ql_iterations() const { return max_ql_iters_; }

  /// Serial reference path: solve one problem (a overwritten with
  /// eigenvectors, w gets ascending eigenvalues).
  [[nodiscard]] bool solve(T* a, T* w) {
    std::uint8_t ok = 1;
    solve_batch(1, a, w, &ok);
    return ok != 0;
  }

  /// Solve `batch` independent n x n problems stored contiguously
  /// (a: batch * n * n scalars, w: batch * n).  Householder steps run
  /// interleaved across tiles of `tile()` matrices; the QL iteration stays
  /// per-matrix (its sweep count is data-dependent).  Returns the number of
  /// problems that failed to converge; when `ok` is non-null, ok[b] is 1/0
  /// per problem.  Failed problems leave a/w unspecified — callers must
  /// check.
  std::size_t solve_batch(std::size_t batch, T* a, T* w,
                          std::uint8_t* ok = nullptr) {
    std::size_t fails = 0;
    if (n_ == 0) {
      for (std::size_t b = 0; ok && b < batch; ++b) ok[b] = 1;
      return 0;
    }
    const std::size_t nn = n_ * n_;
    for (std::size_t base = 0; base < batch; base += tile_) {
      const std::size_t nb = std::min(tile_, batch - base);
      if (n_ == 1) {
        // Trivial size, handled up front (the same guard sym_eigen has):
        // no QL sweep ever touches e[l + 1] for n = 1.
        for (std::size_t b = 0; b < nb; ++b) {
          w[base + b] = a[base + b];
          a[base + b] = T(1);
          if (ok) ok[base + b] = 1;
        }
        continue;
      }
      for (std::size_t b = 0; b < nb; ++b)
        detail::tred2_init(n_, a + (base + b) * nn, w + (base + b) * n_);
      // The cache-blocked panel updates: step i runs for every matrix of
      // the tile before i - 1 starts, keeping the tile resident instead of
      // streaming each matrix end to end.
      for (std::size_t i = n_ - 1; i > 0; --i)
        for (std::size_t b = 0; b < nb; ++b)
          detail::tred2_step(n_, i, a + (base + b) * nn, w + (base + b) * n_,
                             e_.data() + b * n_);
      for (std::size_t b = 0; b < nb; ++b)
        detail::tred2_finish(n_, a + (base + b) * nn, w + (base + b) * n_,
                             e_.data() + b * n_);
      for (std::size_t b = 0; b < nb; ++b) {
        const bool conv =
            detail::tql2(n_, a + (base + b) * nn, w + (base + b) * n_,
                         e_.data() + b * n_, max_ql_iters_);
        if (!conv) ++fails;
        if (ok) ok[base + b] = conv ? std::uint8_t(1) : std::uint8_t(0);
      }
    }
    return fails;
  }

 private:
  std::size_t n_, tile_;
  std::vector<T> e_;  ///< tile() subdiagonal scratch rows, reused per tile
  int max_ql_iters_ = 50;
};

}  // namespace bda::letkf
