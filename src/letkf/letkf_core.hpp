// Ensemble-space LETKF solver (Hunt, Kostelich & Szunyogh 2007).
//
// Everything here operates in the k-dimensional ensemble space of one
// analysis grid point; the driver (letkf.hpp) gathers local observations
// and applies the resulting weight matrix to every state variable at that
// point.  Templated on the scalar type: the paper's production
// configuration runs this in single precision.
//
// Given the local observation-space ensemble perturbations Y (p x k),
// innovations d (p), and localized inverse observation variances rinv (p):
//   A     = (k-1) I / rho + Y^T diag(rinv) Y        (ensemble-space precision)
//   A     = Q diag(lambda) Q^T                      (symmetric eigensolve)
//   Pa    = Q diag(1/lambda) Q^T
//   wbar  = Pa Y^T diag(rinv) d                     (mean update weights)
//   Wp    = Q diag(sqrt((k-1)/lambda)) Q^T          (perturbation weights)
//   Wp   <- alpha I + (1 - alpha) Wp                (RTPP relaxation,
//                                                    Table 2: alpha = 0.95)
//   W[:,m] = wbar + Wp[:,m]
// so the analysis member m is  x_m^a = xbar^b + X'b W[:,m].
//
// The solve is staged (Gram build -> eigensolve -> weight assembly) so the
// column-batched driver (column_solver.hpp) can run the eigensolves of many
// levels through one BatchedSymEigen::solve_batch call; `letkf_weights`
// composes the same stages serially and is the bitwise reference path.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "letkf/eigen.hpp"

namespace bda::letkf {

/// Reusable per-thread scratch for letkf_weights; sized for `k` members.
template <typename T>
struct LetkfWorkspace {
  explicit LetkfWorkspace(std::size_t k)
      : a(k * k), q(k * k), pa(k * k), cd(k), wbar(k), tmp(k), eig(k) {}
  std::vector<T> a, q, pa, cd, wbar, tmp;
  std::vector<T> yr;  ///< p x k scaled-perturbation scratch (grown on use)
  BatchedSymEigen<T> eig;
};

/// Build the ensemble-space precision matrix
///   A = (k-1)/rho I + Y^T diag(rinv) Y
/// (row-major k x k, into A) with the scaled perturbations
/// Yr = diag(rinv) Y formed once in `yr` and the Gram product tiled over
/// output columns, so each p x tile slab of Y stays cache-resident across
/// the full i sweep instead of being re-streamed per entry.  Determinism:
/// Yr[n,i] = Y[n,i] * rinv[n] rounds exactly like the naive triple product
/// (left-associated), and each entry keeps a single accumulator over
/// ascending n, so the blocked build equals the naive loop bitwise.
/// `yr` is left holding diag(rinv) Y for reuse by
/// letkf_innovation_projection.
template <typename T>
void letkf_build_gram(std::size_t k, std::size_t p, const T* Y, const T* rinv,
                      T rho, std::vector<T>& yr, T* A) {
  yr.resize(p * k);
  for (std::size_t n = 0; n < p; ++n)
    for (std::size_t i = 0; i < k; ++i) yr[n * k + i] = Y[n * k + i] * rinv[n];
  constexpr std::size_t kColTile = 48;
  for (std::size_t jb = 0; jb < k; jb += kColTile) {
    const std::size_t je = std::min(k, jb + kColTile);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = std::max(i, jb); j < je; ++j) {
        T s = (i == j) ? T(k - 1) / rho : T(0);
        for (std::size_t n = 0; n < p; ++n) s += yr[n * k + i] * Y[n * k + j];
        A[i * k + j] = s;
        A[j * k + i] = s;
      }
    }
  }
}

/// cd = Y^T diag(rinv) d, using the prebuilt yr = diag(rinv) Y from
/// letkf_build_gram (bitwise-equal to forming Y^T rinv d directly, since
/// the products associate identically).
template <typename T>
void letkf_innovation_projection(std::size_t k, std::size_t p,
                                 const std::vector<T>& yr, const T* d, T* cd) {
  for (std::size_t i = 0; i < k; ++i) {
    T s = T(0);
    for (std::size_t n = 0; n < p; ++n) s += yr[n * k + i] * d[n];
    cd[i] = s;
  }
}

/// Assemble the weight matrix W from a solved eigendecomposition of A
/// (evec: k x k eigenvectors, eval: ascending eigenvalues — floored in
/// place against round-off) and the projected innovations cd.
template <typename T>
void letkf_weights_from_eigen(std::size_t k, const T* evec, T* eval,
                              const T* cd, T rtpp_alpha, LetkfWorkspace<T>& ws,
                              T* W) {
  // The eigenpair buffers must never alias the wbar/pa scratch written
  // below.  By the solver convention the eigenvectors live in ws.a and the
  // eigenvalues in ws.tmp — NOT in wbar (a stale comment once claimed wbar
  // doubled as the eigenvalue array; it never may, wbar is recomputed here
  // and pa is live scratch).
  assert(static_cast<const void*>(evec) !=
         static_cast<const void*>(ws.wbar.data()));
  assert(static_cast<const void*>(evec) !=
         static_cast<const void*>(ws.pa.data()));
  assert(static_cast<const void*>(eval) !=
         static_cast<const void*>(ws.wbar.data()));
  assert(static_cast<const void*>(eval) !=
         static_cast<const void*>(ws.pa.data()));

  // Guard: A is SPD by construction; clamp tiny eigenvalues against
  // single-precision round-off.
  const T floor_ev = T(1e-6) * T(k - 1);
  for (std::size_t i = 0; i < k; ++i)
    if (eval[i] < floor_ev) eval[i] = floor_ev;

  // wbar = Q diag(1/lambda) Q^T cd.
  for (std::size_t j = 0; j < k; ++j) {
    T s = T(0);
    for (std::size_t i = 0; i < k; ++i) s += evec[i * k + j] * cd[i];
    ws.pa[j] = s / eval[j];  // pa[0..k) temporarily holds Q^T cd / lambda
  }
  for (std::size_t i = 0; i < k; ++i) {
    T s = T(0);
    for (std::size_t j = 0; j < k; ++j) s += evec[i * k + j] * ws.pa[j];
    ws.wbar[i] = s;
  }

  // W = alpha I + (1-alpha) Q diag(sqrt((k-1)/lambda)) Q^T, then add wbar
  // to every column.  ws.q holds Q scaled by sqrt((k-1)/lambda) per column.
  const T one_m_alpha = T(1) - rtpp_alpha;
  for (std::size_t j = 0; j < k; ++j) {
    const T sc = std::sqrt(T(k - 1) / eval[j]);
    for (std::size_t i = 0; i < k; ++i)
      ws.q[i * k + j] = evec[i * k + j] * sc;
  }
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t m = 0; m < k; ++m) {
      T s = T(0);
      for (std::size_t j = 0; j < k; ++j)
        s += ws.q[i * k + j] * evec[m * k + j];
      T wp = one_m_alpha * s;
      if (i == m) wp += rtpp_alpha;
      W[i * k + m] = wp + ws.wbar[i];
    }
}

/// Compute the k x k LETKF weight matrix W (column m = weights of member m,
/// mean update included).  Y is row-major p x k; rinv holds the
/// localization-weighted inverse observation variances.  rho is the
/// multiplicative covariance inflation (1 = none; the paper relies on RTPP
/// instead).  Returns false only on eigensolver non-convergence — callers
/// must count that, not swallow it (AnalysisStats::n_eig_fail).
template <typename T>
[[nodiscard]] bool letkf_weights(std::size_t k, std::size_t p, const T* Y, const T* d,
                   const T* rinv, T rtpp_alpha, T rho,
                   LetkfWorkspace<T>& ws, T* W) {
  letkf_build_gram(k, p, Y, rinv, rho, ws.yr, ws.a.data());

  // Eigendecomposition (a is overwritten with eigenvectors; ws.tmp receives
  // the eigenvalues — wbar/pa stay free for letkf_weights_from_eigen).
  std::vector<T>& evec = ws.a;
  std::vector<T>& eval = ws.tmp;
  if (!ws.eig.solve(evec.data(), eval.data())) return false;

  letkf_innovation_projection(k, p, ws.yr, d, ws.cd.data());
  letkf_weights_from_eigen(k, evec.data(), eval.data(), ws.cd.data(),
                           rtpp_alpha, ws, W);
  return true;
}

}  // namespace bda::letkf
