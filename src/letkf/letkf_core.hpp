// Ensemble-space LETKF solver (Hunt, Kostelich & Szunyogh 2007).
//
// Everything here operates in the k-dimensional ensemble space of one
// analysis grid point; the driver (letkf.hpp) gathers local observations
// and applies the resulting weight matrix to every state variable at that
// point.  Templated on the scalar type: the paper's production
// configuration runs this in single precision.
//
// Given the local observation-space ensemble perturbations Y (p x k),
// innovations d (p), and localized inverse observation variances rinv (p):
//   A     = (k-1) I / rho + Y^T diag(rinv) Y        (ensemble-space precision)
//   A     = Q diag(lambda) Q^T                      (symmetric eigensolve)
//   Pa    = Q diag(1/lambda) Q^T
//   wbar  = Pa Y^T diag(rinv) d                     (mean update weights)
//   Wp    = Q diag(sqrt((k-1)/lambda)) Q^T          (perturbation weights)
//   Wp   <- alpha I + (1 - alpha) Wp                (RTPP relaxation,
//                                                    Table 2: alpha = 0.95)
//   W[:,m] = wbar + Wp[:,m]
// so the analysis member m is  x_m^a = xbar^b + X'b W[:,m].
#pragma once

#include <cstddef>
#include <vector>

#include "letkf/eigen.hpp"

namespace bda::letkf {

/// Reusable per-thread scratch for letkf_weights; sized for `k` members.
template <typename T>
struct LetkfWorkspace {
  explicit LetkfWorkspace(std::size_t k)
      : a(k * k), q(k * k), pa(k * k), cd(k), wbar(k), tmp(k), eig(k) {}
  std::vector<T> a, q, pa, cd, wbar, tmp;
  BatchedSymEigen<T> eig;
};

/// Compute the k x k LETKF weight matrix W (column m = weights of member m,
/// mean update included).  Y is row-major p x k; rinv holds the
/// localization-weighted inverse observation variances.  rho is the
/// multiplicative covariance inflation (1 = none; the paper relies on RTPP
/// instead).  Returns false only on eigensolver non-convergence.
template <typename T>
bool letkf_weights(std::size_t k, std::size_t p, const T* Y, const T* d,
                   const T* rinv, T rtpp_alpha, T rho,
                   LetkfWorkspace<T>& ws, T* W) {
  // A = (k-1)/rho I + Y^T diag(rinv) Y  (build upper triangle, mirror).
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = i; j < k; ++j) {
      T s = (i == j) ? T(k - 1) / rho : T(0);
      for (std::size_t n = 0; n < p; ++n)
        s += Y[n * k + i] * rinv[n] * Y[n * k + j];
      ws.a[i * k + j] = s;
      ws.a[j * k + i] = s;
    }

  // Eigendecomposition (a is overwritten with eigenvectors; wbar reused as
  // the eigenvalue array until it is recomputed below).
  std::vector<T>& evec = ws.a;
  std::vector<T>& eval = ws.tmp;
  if (!ws.eig.solve(evec.data(), eval.data())) return false;

  // Guard: A is SPD by construction; clamp tiny eigenvalues against
  // single-precision round-off.
  const T floor_ev = T(1e-6) * T(k - 1);
  for (std::size_t i = 0; i < k; ++i)
    if (eval[i] < floor_ev) eval[i] = floor_ev;

  // cd = Y^T diag(rinv) d.
  for (std::size_t i = 0; i < k; ++i) {
    T s = T(0);
    for (std::size_t n = 0; n < p; ++n) s += Y[n * k + i] * rinv[n] * d[n];
    ws.cd[i] = s;
  }

  // wbar = Q diag(1/lambda) Q^T cd.
  for (std::size_t j = 0; j < k; ++j) {
    T s = T(0);
    for (std::size_t i = 0; i < k; ++i) s += evec[i * k + j] * ws.cd[i];
    ws.pa[j] = s / eval[j];  // pa[0..k) temporarily holds Q^T cd / lambda
  }
  for (std::size_t i = 0; i < k; ++i) {
    T s = T(0);
    for (std::size_t j = 0; j < k; ++j) s += evec[i * k + j] * ws.pa[j];
    ws.wbar[i] = s;
  }

  // W = alpha I + (1-alpha) Q diag(sqrt((k-1)/lambda)) Q^T, then add wbar
  // to every column.  ws.q holds Q scaled by sqrt((k-1)/lambda) per column.
  const T one_m_alpha = T(1) - rtpp_alpha;
  for (std::size_t j = 0; j < k; ++j) {
    const T sc = std::sqrt(T(k - 1) / eval[j]);
    for (std::size_t i = 0; i < k; ++i)
      ws.q[i * k + j] = evec[i * k + j] * sc;
  }
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t m = 0; m < k; ++m) {
      T s = T(0);
      for (std::size_t j = 0; j < k; ++j)
        s += ws.q[i * k + j] * evec[m * k + j];
      T wp = one_m_alpha * s;
      if (i == m) wp += rtpp_alpha;
      W[i * k + m] = wp + ws.wbar[i];
    }
  return true;
}

}  // namespace bda::letkf
