// Observation types assimilated by the LETKF.
//
// The BDA system assimilates the MP-PAWR's two directly observed
// quantities — radar reflectivity and Doppler (radial) velocity — already
// regridded to the 500-m analysis grid (Table 2: "Regridded observation
// resolution: 500 m").  Positions are in the model's local Cartesian
// coordinates [m].
#pragma once

#include <vector>

#include "util/types.hpp"

namespace bda::letkf {

enum class ObsType { kReflectivity, kDopplerVelocity };

struct Observation {
  ObsType type = ObsType::kReflectivity;
  real x = 0, y = 0, z = 0;  ///< position [m]
  real value = 0;            ///< dBZ or m/s
  real error = 1;            ///< observation error standard deviation

  /// Radar site the sample came from.  Doppler velocity is a *radial*
  /// quantity, so with more than one radar (the paper's Expo 2025 dual
  /// MP-PAWR deployment and the Kyushu network OSSE of ref [42]) each
  /// observation must carry its own beam origin.  When `own_origin` is
  /// false the ObsOperator's default site is used.
  real rx = 0, ry = 0, rz = 0;
  bool own_origin = false;
};

using ObsVector = std::vector<Observation>;

}  // namespace bda::letkf
