// Observation (forward) operators H(x).
//
// Maps a model state to the observed quantities at an observation location:
//   * reflectivity  — the Stoelinga-style dBZ diagnostic from the
//     precipitating hydrometeors at the enclosing grid cell (observations
//     are pre-regridded to the analysis grid, so nearest-cell is exact);
//   * Doppler velocity — the projection of (u, v, w - v_t) on the unit
//     vector from the radar to the observation point, v_t the
//     mass-weighted hydrometeor fall speed.
// This is the "direct" radar assimilation of the paper (Table 1, bottom
// row), as opposed to the indirect RH / latent-heating proxies of the
// operational systems above it.
#pragma once

#include "letkf/obs.hpp"
#include "scale/grid.hpp"
#include "scale/microphysics.hpp"
#include "scale/state.hpp"

namespace bda::letkf {

class ObsOperator {
 public:
  /// `radar_x/y/z`: radar position in model coordinates [m].
  ObsOperator(const scale::Grid& grid, real radar_x, real radar_y,
              real radar_z, scale::MicroParams micro = {});

  /// Evaluate H(state) for one observation.
  real apply(const scale::State& state, const Observation& ob) const;

  /// Locate the grid cell enclosing a position (clamped to the domain).
  void locate(real x, real y, real z, idx& i, idx& j, idx& k) const;

  real radar_x() const { return rx_; }
  real radar_y() const { return ry_; }
  real radar_z() const { return rz_; }

 private:
  const scale::Grid& grid_;
  real rx_, ry_, rz_;
  scale::MicroParams micro_;
};

}  // namespace bda::letkf
