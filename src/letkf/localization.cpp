#include "letkf/localization.hpp"

#include <algorithm>
#include <cmath>

namespace bda::letkf {

real gaspari_cohn(real r) {
  if (r < 0) r = -r;
  if (r >= real(2)) return 0;
  const real r2 = r * r;
  const real r3 = r2 * r;
  if (r <= real(1)) {
    return -real(0.25) * r3 * r2 + real(0.5) * r2 * r2 +
           real(0.625) * r3 - real(5.0 / 3.0) * r2 + real(1);
  }
  const real outer = real(1.0 / 12.0) * r3 * r2 - real(0.5) * r2 * r2 +
                     real(0.625) * r3 + real(5.0 / 3.0) * r2 - real(5) * r +
                     real(4) - real(2.0 / 3.0) / r;
  // The outer quintic underflows to ~-5e-7 near r = 2 in single precision;
  // a negative localization weight would flip an observation's sign.
  return std::max(outer, real(0));
}

ObsIndex::ObsIndex(const ObsVector& obs, real cell)
    : cell_(std::max(cell, real(1))), n_obs_(obs.size()), obs_(&obs) {
  if (obs.empty()) {
    nbx_ = nby_ = 1;
    buckets_.resize(1);
    return;
  }
  real xmin = obs[0].x, xmax = obs[0].x, ymin = obs[0].y, ymax = obs[0].y;
  for (const auto& o : obs) {
    xmin = std::min(xmin, o.x);
    xmax = std::max(xmax, o.x);
    ymin = std::min(ymin, o.y);
    ymax = std::max(ymax, o.y);
  }
  x0_ = xmin;
  y0_ = ymin;
  nbx_ = static_cast<long>((xmax - xmin) / cell_) + 1;
  nby_ = static_cast<long>((ymax - ymin) / cell_) + 1;
  buckets_.resize(static_cast<std::size_t>(nbx_ * nby_));
  for (std::size_t n = 0; n < obs.size(); ++n) {
    const long bi = static_cast<long>((obs[n].x - x0_) / cell_);
    const long bj = static_cast<long>((obs[n].y - y0_) / cell_);
    buckets_[bucket_of(bi, bj)].push_back(n);
  }
}

std::size_t ObsIndex::bucket_of(long bi, long bj) const {
  bi = std::clamp<long>(bi, 0, nbx_ - 1);
  bj = std::clamp<long>(bj, 0, nby_ - 1);
  return static_cast<std::size_t>(bi * nby_ + bj);
}

void ObsIndex::query(real x, real y, real radius,
                     std::vector<std::size_t>& out) const {
  if (!obs_ || obs_->empty()) return;
  const real r2 = radius * radius;
  const long bi0 = static_cast<long>((x - radius - x0_) / cell_);
  const long bi1 = static_cast<long>((x + radius - x0_) / cell_);
  const long bj0 = static_cast<long>((y - radius - y0_) / cell_);
  const long bj1 = static_cast<long>((y + radius - y0_) / cell_);
  for (long bi = std::max<long>(bi0, 0); bi <= std::min<long>(bi1, nbx_ - 1);
       ++bi)
    for (long bj = std::max<long>(bj0, 0);
         bj <= std::min<long>(bj1, nby_ - 1); ++bj)
      for (std::size_t n : buckets_[static_cast<std::size_t>(bi * nby_ + bj)]) {
        const auto& o = (*obs_)[n];
        const real dx = o.x - x, dy = o.y - y;
        if (dx * dx + dy * dy <= r2) out.push_back(n);
      }
}

}  // namespace bda::letkf
