// Adaptive covariance inflation from innovation statistics.
//
// The paper relies on RTPP (Table 2), but multiplicative inflation tuned
// from innovation consistency is the standard alternative the sensitivity
// campaign would have evaluated.  Following Desroziers et al. (2005) /
// Miyoshi (2011): for unbiased, consistent statistics
//     E[d^T d] = tr(H Pb H^T) + tr(R),
// so the background covariance should be inflated by
//     alpha = (mean(d^2) - mean(R)) / mean(HPbH)
// whenever observed innovations are larger than the ensemble + obs error
// budget explains.  The estimate is noisy per cycle, so it is smoothed
// in time with a relaxation factor, and clamped to a sane range.
#pragma once

#include <cstddef>

#include "util/types.hpp"

namespace bda::letkf {

/// Per-analysis observation-space moments needed by the estimator.
struct InnovationMoments {
  double mean_innov2 = 0;  ///< mean d^2 over assimilated obs
  double mean_obs_var = 0; ///< mean R (obs error variance)
  double mean_ens_var = 0; ///< mean ensemble variance of H(x) (HPbH^T diag)
  std::size_t n_obs = 0;
};

class AdaptiveInflation {
 public:
  /// `smoothing` in (0, 1]: weight of the newest estimate; `rho_min/max`
  /// clamp the applied inflation.
  explicit AdaptiveInflation(real rho_init = 1.0f, real smoothing = 0.3f,
                             real rho_min = 0.9f, real rho_max = 3.0f);

  /// Raw instantaneous Desroziers estimate from one analysis (1.0 when the
  /// sample is empty or degenerate).  Contract: this is the *unclamped*
  /// variance ratio — when innovations run far below the error budget it
  /// is legitimately negative and unusable as an inflation factor.  Use
  /// estimate_floored() (as update() does) for a value safe to apply.
  static double estimate(const InnovationMoments& m);

  /// estimate() floored at the configured rho_min: the smallest inflation
  /// this filter would ever apply.  Flooring *before* the temporal blend
  /// keeps one garbage cycle (negative ratio) from dragging the smoothed
  /// rho to the floor through the back door.
  double estimate_floored(const InnovationMoments& m) const;

  /// Fold one analysis's moments into the smoothed inflation.
  void update(const InnovationMoments& m);

  /// Inflation to use for the next analysis (feeds LetkfConfig::infl_rho).
  real rho() const { return rho_; }

 private:
  real rho_;
  real smoothing_, rho_min_, rho_max_;
};

}  // namespace bda::letkf
