// Covariance localization and spatial observation search.
//
// The LETKF localizes in observation space (R-localization): each local
// observation's error variance is inflated by the inverse of the
// Gaspari-Cohn weight of its distance from the analysis point, which tapers
// its influence smoothly to zero at 2 x the localization scale.  Table 2:
// horizontal and vertical localization scales are both 2 km.
//
// ObsIndex buckets observations on a horizontal grid so the per-gridpoint
// search is O(local density), not O(total obs) — with ~10^6 obs per 30-s
// scan this is what keeps the LETKF loop linear in grid points.
#pragma once

#include <cstddef>
#include <vector>

#include "letkf/obs.hpp"

namespace bda::letkf {

/// Gaspari-Cohn (1999) 5th-order piecewise rational compactly supported
/// correlation function.  `r` is distance / localization scale; support
/// ends at r = 2.
real gaspari_cohn(real r);

/// Horizontal bucket index over observations.
class ObsIndex {
 public:
  /// Build over `obs` with bucket edge `cell` [m] (use the localization
  /// cutoff radius for near-constant-time queries).
  ObsIndex(const ObsVector& obs, real cell);

  /// Collect indices of observations with horizontal distance <= radius
  /// from (x, y).  Appends to `out` (caller clears).
  void query(real x, real y, real radius,
             std::vector<std::size_t>& out) const;

  std::size_t size() const { return n_obs_; }

 private:
  std::size_t bucket_of(long bi, long bj) const;

  real cell_;
  real x0_ = 0, y0_ = 0;
  long nbx_ = 0, nby_ = 0;
  std::size_t n_obs_ = 0;
  const ObsVector* obs_ = nullptr;
  std::vector<std::vector<std::size_t>> buckets_;
};

}  // namespace bda::letkf
