#include "letkf/letkf.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "letkf/column_solver.hpp"
#include "letkf/letkf_core.hpp"

namespace bda::letkf {

Letkf::Letkf(const scale::Grid& grid, LetkfConfig cfg)
    : grid_(grid), cfg_(cfg) {}

AnalysisStats Letkf::analyze(scale::Ensemble& ens, const ObsVector& obs_in,
                             const ObsOperator& op) const {
  const std::size_t k = static_cast<std::size_t>(ens.size());
  AnalysisStats stats;
  stats.n_obs_in = obs_in.size();
  if (k < 2 || obs_in.empty()) return stats;

  // ---- H(x) for every (obs, member): hx[n*k + m].  The ensemble-mean
  // equivalent and innovation follow; gross-error QC drops outliers.
  const std::size_t n_all = obs_in.size();
  std::vector<real> hx(n_all * k);
#pragma omp parallel for
  for (std::size_t n = 0; n < n_all; ++n)
    for (std::size_t m = 0; m < k; ++m)
      hx[n * k + m] = op.apply(ens.member(static_cast<int>(m)), obs_in[n]);

  ObsVector obs;
  obs.reserve(n_all);
  std::vector<real> ymean;  // mean H(x) per kept obs
  std::vector<std::size_t> keep;
  double sum_abs_inno = 0.0;
  for (std::size_t n = 0; n < n_all; ++n) {
    real mean = 0;
    for (std::size_t m = 0; m < k; ++m) mean += hx[n * k + m];
    mean /= real(k);
    const real inno = obs_in[n].value - mean;
    const real thresh = obs_in[n].type == ObsType::kReflectivity
                            ? cfg_.gross_refl
                            : cfg_.gross_dopp;
    const bool clear_air_report =
        obs_in[n].type == ObsType::kReflectivity &&
        obs_in[n].value < cfg_.clear_air_below;
    if (!clear_air_report && std::abs(inno) > thresh) {
      ++stats.n_obs_qc;
      continue;
    }
    keep.push_back(n);
    obs.push_back(obs_in[n]);
    ymean.push_back(mean);
    sum_abs_inno += double(std::abs(inno));
  }
  if (obs.empty()) return stats;
  stats.mean_abs_innovation = sum_abs_inno / double(obs.size());

  // Compact observation-space perturbations for kept obs: yp[n*k + m].
  const std::size_t n_obs = obs.size();
  std::vector<real> yp(n_obs * k);
  for (std::size_t n = 0; n < n_obs; ++n) {
    const std::size_t src = keep[n];
    for (std::size_t m = 0; m < k; ++m)
      yp[n * k + m] = hx[src * k + m] - ymean[n];
  }

  // Innovation-consistency moments (Desroziers): feed AdaptiveInflation.
  {
    double d2 = 0, rr = 0, hh = 0;
    for (std::size_t n = 0; n < n_obs; ++n) {
      const double d = double(obs[n].value) - double(ymean[n]);
      d2 += d * d;
      rr += double(obs[n].error) * double(obs[n].error);
      double var = 0;
      for (std::size_t m = 0; m < k; ++m)
        var += double(yp[n * k + m]) * double(yp[n * k + m]);
      hh += var / double(k - 1);
    }
    stats.moments.n_obs = n_obs;
    stats.moments.mean_innov2 = d2 / double(n_obs);
    stats.moments.mean_obs_var = rr / double(n_obs);
    stats.moments.mean_ens_var = hh / double(n_obs);
  }

  const real cutoff_h = 2 * cfg_.hloc;
  const real cutoff_v = 2 * cfg_.vloc;
  ObsIndex index(obs, cutoff_h);

  const idx nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();

  // All reduction accumulators are integers on purpose: integer addition
  // is exact in any order, so the dynamic schedule cannot perturb the
  // stats (tools/bda_analyze nondet-fp-reduction would flag a double).
  std::size_t grid_updated = 0;
  std::size_t local_obs_count = 0;
  std::size_t eig_fail_levels = 0;
  std::size_t cache_hits = 0, weight_solves = 0, eig_batches = 0;

#pragma omp parallel reduction(+ : grid_updated, local_obs_count,           \
                                   eig_fail_levels, cache_hits,             \
                                   weight_solves, eig_batches)
  {
    // One column solver per thread: the weight cache + batched eigensolver
    // workspace are reused across every column the thread analyzes.
    ColumnWeightSolver<real> solver(k, static_cast<std::size_t>(nz),
                                    cfg_.rtpp_alpha, cfg_.infl_rho,
                                    cfg_.eig_max_iters);
    std::vector<std::size_t> cand;
    std::vector<real> y_loc, d_loc, rinv_loc;
    std::vector<std::size_t> ids;
    std::vector<std::pair<real, std::size_t>> ranked;
    std::vector<real> xb(k);
    struct LevelPlan {
      idx kk;
      std::size_t slot;
      std::size_t p;
    };
    std::vector<LevelPlan> plan;

#pragma omp for collapse(2) schedule(dynamic, 4)
    for (idx i = 0; i < nx; ++i)
      for (idx j = 0; j < ny; ++j) {
        cand.clear();
        index.query(grid_.xc(i), grid_.yc(j), cutoff_h, cand);
        if (cand.empty()) continue;

        // Pass 1 over the column: rank each level's local obs, dedupe
        // identical signatures, stage the distinct weight solves.
        solver.begin_column();
        plan.clear();
        for (idx kk = 0; kk < nz; ++kk) {
          const real zc = grid_.zc(kk);
          if (zc < cfg_.z_min || zc > cfg_.z_max) continue;

          // Rank candidate obs by localization distance; keep the nearest
          // max_obs_per_grid (Table 2).
          ranked.clear();
          for (std::size_t c : cand) {
            const auto& o = obs[c];
            const real dz = o.z - zc;
            if (std::abs(dz) > cutoff_v) continue;
            const real dx = o.x - grid_.xc(i);
            const real dy = o.y - grid_.yc(j);
            const real rh = std::sqrt(dx * dx + dy * dy) / cfg_.hloc;
            const real rv = std::abs(dz) / cfg_.vloc;
            const real w = gaspari_cohn(rh) * gaspari_cohn(rv);
            if (w < real(1e-4)) continue;
            // Smaller combined normalized distance = higher priority.
            ranked.emplace_back(rh * rh + rv * rv, c);
          }
          if (ranked.empty()) continue;
          const std::size_t cap =
              static_cast<std::size_t>(cfg_.max_obs_per_grid);
          if (ranked.size() > cap) {
            std::nth_element(ranked.begin(), ranked.begin() + cap,
                             ranked.end());
            ranked.resize(cap);
          }
          // Canonical (distance, index) order: nth_element leaves an
          // unspecified permutation, which would make identical selections
          // look different to the weight cache and tie the summation order
          // to the library's partitioning.
          std::sort(ranked.begin(), ranked.end());

          const std::size_t p = ranked.size();
          ids.resize(p);
          rinv_loc.resize(p);
          for (std::size_t n = 0; n < p; ++n) {
            const std::size_t c = ranked[n].second;
            const auto& o = obs[c];
            const real dx = o.x - grid_.xc(i);
            const real dy = o.y - grid_.yc(j);
            const real rh = std::sqrt(dx * dx + dy * dy) / cfg_.hloc;
            const real rv = std::abs(o.z - zc) / cfg_.vloc;
            const real w = gaspari_cohn(rh) * gaspari_cohn(rv);
            ids[n] = c;
            rinv_loc[n] = w / (o.error * o.error);
          }

          std::size_t slot = solver.lookup(p, ids.data(), rinv_loc.data());
          if (slot == ColumnWeightSolver<real>::npos) {
            // Cache miss: gather the observation-space perturbations and
            // innovations only now (hits skip this entirely).
            y_loc.resize(p * k);
            d_loc.resize(p);
            for (std::size_t n = 0; n < p; ++n) {
              const std::size_t c = ranked[n].second;
              d_loc[n] = obs[c].value - ymean[c];
              std::copy_n(&yp[c * k], k, &y_loc[n * k]);
            }
            slot = solver.insert(p, ids.data(), rinv_loc.data(),
                                 y_loc.data(), d_loc.data());
          }
          plan.push_back({kk, slot, p});
        }
        if (plan.empty()) continue;

        // One batched eigensolve for every distinct signature of the
        // column (KeDV-style), then weight assembly per unique slot.
        solver.solve();

        // Pass 2: apply each level's (possibly shared) weight matrix.
        for (const auto& lv : plan) {
          if (!solver.converged(lv.slot)) {
            // Non-convergence leaves the gridpoint un-analyzed; count it
            // (it used to be silently swallowed).
            ++eig_fail_levels;
            continue;
          }
          const real* W = solver.weights(lv.slot);
          const idx kk = lv.kk;
          ++grid_updated;
          local_obs_count += lv.p;

          // Apply W to every state variable at (i, j, kk).
          auto update = [&](auto&& get, auto&& set) {
            real mean = 0;
            for (std::size_t m = 0; m < k; ++m) {
              xb[m] = get(static_cast<int>(m));
              mean += xb[m];
            }
            mean /= real(k);
            for (std::size_t m = 0; m < k; ++m) xb[m] -= mean;
            for (std::size_t m = 0; m < k; ++m) {
              real s = mean;
              for (std::size_t l = 0; l < k; ++l) s += xb[l] * W[l * k + m];
              set(static_cast<int>(m), s);
            }
          };

          update([&](int m) { return ens.member(m).rhot(i, j, kk); },
                 [&](int m, real v) { ens.member(m).rhot(i, j, kk) = v; });
          update([&](int m) { return ens.member(m).dens(i, j, kk); },
                 [&](int m, real v) {
                   ens.member(m).dens(i, j, kk) = std::max(v, real(1e-3));
                 });
          for (int t = 0; t < scale::kNumTracers; ++t)
            update(
                [&](int m) { return ens.member(m).rhoq[t](i, j, kk); },
                [&](int m, real v) {
                  ens.member(m).rhoq[t](i, j, kk) = std::max(v, real(0));
                });
          if (cfg_.update_momentum) {
            update([&](int m) { return ens.member(m).momx(i, j, kk); },
                   [&](int m, real v) { ens.member(m).momx(i, j, kk) = v; });
            update([&](int m) { return ens.member(m).momy(i, j, kk); },
                   [&](int m, real v) { ens.member(m).momy(i, j, kk) = v; });
            update([&](int m) { return ens.member(m).momz(i, j, kk); },
                   [&](int m, real v) { ens.member(m).momz(i, j, kk) = v; });
          }
        }
      }

    // Per-thread kernel accounting, folded by the OpenMP reduction.
    cache_hits += solver.cache_hits();
    weight_solves += solver.cache_misses();
    eig_batches += solver.batches();
  }

  stats.n_grid_updated = grid_updated;
  stats.n_eig_fail = eig_fail_levels;
  stats.n_weight_reuse = cache_hits;
  stats.n_weight_solved = weight_solves;
  stats.n_eig_batches = eig_batches;
  if (grid_updated)
    stats.mean_local_obs = double(local_obs_count) / double(grid_updated);
  if (metrics_) {
    metrics_->count("letkf.eig_batches", eig_batches);
    metrics_->count("letkf.weight_cache_hit", cache_hits);
    metrics_->count("letkf.weight_cache_miss", weight_solves);
    metrics_->count("letkf.eig_fail", eig_fail_levels);
  }

  // Refresh halos after the point-wise updates.
  for (int m = 0; m < ens.size(); ++m) ens.member(m).fill_halos_periodic();
  return stats;
}

}  // namespace bda::letkf
