#include "letkf/letkf.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "letkf/column_solver.hpp"
#include "letkf/letkf_core.hpp"

namespace bda::letkf {

Letkf::Letkf(const scale::Grid& grid, LetkfConfig cfg)
    : grid_(grid), cfg_(cfg) {}

std::vector<real> Letkf::member_hx(const scale::State& member,
                                   const ObsVector& obs_in,
                                   const ObsOperator& op) {
  std::vector<real> hx(obs_in.size());
  for (std::size_t n = 0; n < obs_in.size(); ++n)
    hx[n] = op.apply(member, obs_in[n]);
  return hx;
}

PreparedObs Letkf::prepare(const ObsVector& obs_in,
                           const std::vector<real>& hx,
                           std::size_t k) const {
  PreparedObs prep;
  prep.stats.n_obs_in = obs_in.size();
  const std::size_t n_all = obs_in.size();

  // Ensemble-mean H(x) and innovation per obs; gross-error QC drops
  // outliers (clear-air reflectivity reports are exempt).
  prep.obs.reserve(n_all);
  std::vector<std::size_t> keep;
  double sum_abs_inno = 0.0;
  for (std::size_t n = 0; n < n_all; ++n) {
    real mean = 0;
    for (std::size_t m = 0; m < k; ++m) mean += hx[n * k + m];
    mean /= real(k);
    const real inno = obs_in[n].value - mean;
    const real thresh = obs_in[n].type == ObsType::kReflectivity
                            ? cfg_.gross_refl
                            : cfg_.gross_dopp;
    const bool clear_air_report =
        obs_in[n].type == ObsType::kReflectivity &&
        obs_in[n].value < cfg_.clear_air_below;
    if (!clear_air_report && std::abs(inno) > thresh) {
      ++prep.stats.n_obs_qc;
      continue;
    }
    keep.push_back(n);
    prep.obs.push_back(obs_in[n]);
    prep.ymean.push_back(mean);
    sum_abs_inno += double(std::abs(inno));
  }
  if (prep.obs.empty()) return prep;
  prep.stats.mean_abs_innovation = sum_abs_inno / double(prep.obs.size());

  // Compact observation-space perturbations for kept obs: yp[n*k + m].
  const std::size_t n_obs = prep.obs.size();
  prep.yp.resize(n_obs * k);
  for (std::size_t n = 0; n < n_obs; ++n) {
    const std::size_t src = keep[n];
    for (std::size_t m = 0; m < k; ++m)
      prep.yp[n * k + m] = hx[src * k + m] - prep.ymean[n];
  }

  // Innovation-consistency moments (Desroziers): feed AdaptiveInflation.
  {
    double d2 = 0, rr = 0, hh = 0;
    for (std::size_t n = 0; n < n_obs; ++n) {
      const double d = double(prep.obs[n].value) - double(prep.ymean[n]);
      d2 += d * d;
      rr += double(prep.obs[n].error) * double(prep.obs[n].error);
      double var = 0;
      for (std::size_t m = 0; m < k; ++m)
        var += double(prep.yp[n * k + m]) * double(prep.yp[n * k + m]);
      hh += var / double(k - 1);
    }
    prep.stats.moments.n_obs = n_obs;
    prep.stats.moments.mean_innov2 = d2 / double(n_obs);
    prep.stats.moments.mean_obs_var = rr / double(n_obs);
    prep.stats.moments.mean_ens_var = hh / double(n_obs);
  }
  return prep;
}

WindowTally Letkf::analyze_window(const PreparedObs& prep,
                                  const EnsembleSlab& slab, idx i_lo,
                                  idx i_hi, idx j_lo, idx j_hi) const {
  const std::size_t k = slab.members.size();
  const ObsVector& obs = prep.obs;
  const std::vector<real>& ymean = prep.ymean;
  const std::vector<real>& yp = prep.yp;
  WindowTally tally;
  if (k < 2 || obs.empty()) return tally;

  const real cutoff_h = 2 * cfg_.hloc;
  const real cutoff_v = 2 * cfg_.vloc;
  ObsIndex index(obs, cutoff_h);

  const idx nz = grid_.nz();

  // All reduction accumulators are integers on purpose: integer addition
  // is exact in any order, so neither the dynamic schedule nor the window
  // decomposition can perturb the stats (tools/bda_analyze
  // nondet-fp-reduction would flag a double).
  std::size_t grid_updated = 0;
  std::size_t local_obs_count = 0;
  std::size_t eig_fail_levels = 0;
  std::size_t cache_hits = 0, weight_solves = 0, eig_batches = 0;

#pragma omp parallel reduction(+ : grid_updated, local_obs_count,           \
                                   eig_fail_levels, cache_hits,             \
                                   weight_solves, eig_batches)
  {
    // One column solver per thread: the weight cache + batched eigensolver
    // workspace are reused across every column the thread analyzes.  The
    // cache resets per column (begin_column), so its hits/misses depend
    // only on the column — not on which window or thread analyzed it.
    ColumnWeightSolver<real> solver(k, static_cast<std::size_t>(nz),
                                    cfg_.rtpp_alpha, cfg_.infl_rho,
                                    cfg_.eig_max_iters);
    std::vector<std::size_t> cand;
    std::vector<real> y_loc, d_loc, rinv_loc;
    std::vector<std::size_t> ids;
    std::vector<std::pair<real, std::size_t>> ranked;
    std::vector<real> xb(k);
    struct LevelPlan {
      idx kk;
      std::size_t slot;
      std::size_t p;
    };
    std::vector<LevelPlan> plan;

#pragma omp for collapse(2) schedule(dynamic, 4)
    for (idx i = i_lo; i < i_hi; ++i)
      for (idx j = j_lo; j < j_hi; ++j) {
        cand.clear();
        index.query(grid_.xc(i), grid_.yc(j), cutoff_h, cand);
        if (cand.empty()) continue;

        // Pass 1 over the column: rank each level's local obs, dedupe
        // identical signatures, stage the distinct weight solves.
        solver.begin_column();
        plan.clear();
        for (idx kk = 0; kk < nz; ++kk) {
          const real zc = grid_.zc(kk);
          if (zc < cfg_.z_min || zc > cfg_.z_max) continue;

          // Rank candidate obs by localization distance; keep the nearest
          // max_obs_per_grid (Table 2).
          ranked.clear();
          for (std::size_t c : cand) {
            const auto& o = obs[c];
            const real dz = o.z - zc;
            if (std::abs(dz) > cutoff_v) continue;
            const real dx = o.x - grid_.xc(i);
            const real dy = o.y - grid_.yc(j);
            const real rh = std::sqrt(dx * dx + dy * dy) / cfg_.hloc;
            const real rv = std::abs(dz) / cfg_.vloc;
            const real w = gaspari_cohn(rh) * gaspari_cohn(rv);
            if (w < real(1e-4)) continue;
            // Smaller combined normalized distance = higher priority.
            ranked.emplace_back(rh * rh + rv * rv, c);
          }
          if (ranked.empty()) continue;
          const std::size_t cap =
              static_cast<std::size_t>(cfg_.max_obs_per_grid);
          if (ranked.size() > cap) {
            std::nth_element(ranked.begin(), ranked.begin() + cap,
                             ranked.end());
            ranked.resize(cap);
          }
          // Canonical (distance, index) order: nth_element leaves an
          // unspecified permutation, which would make identical selections
          // look different to the weight cache and tie the summation order
          // to the library's partitioning.
          std::sort(ranked.begin(), ranked.end());

          const std::size_t p = ranked.size();
          ids.resize(p);
          rinv_loc.resize(p);
          for (std::size_t n = 0; n < p; ++n) {
            const std::size_t c = ranked[n].second;
            const auto& o = obs[c];
            const real dx = o.x - grid_.xc(i);
            const real dy = o.y - grid_.yc(j);
            const real rh = std::sqrt(dx * dx + dy * dy) / cfg_.hloc;
            const real rv = std::abs(o.z - zc) / cfg_.vloc;
            const real w = gaspari_cohn(rh) * gaspari_cohn(rv);
            ids[n] = c;
            rinv_loc[n] = w / (o.error * o.error);
          }

          std::size_t slot = solver.lookup(p, ids.data(), rinv_loc.data());
          if (slot == ColumnWeightSolver<real>::npos) {
            // Cache miss: gather the observation-space perturbations and
            // innovations only now (hits skip this entirely).
            y_loc.resize(p * k);
            d_loc.resize(p);
            for (std::size_t n = 0; n < p; ++n) {
              const std::size_t c = ranked[n].second;
              d_loc[n] = obs[c].value - ymean[c];
              std::copy_n(&yp[c * k], k, &y_loc[n * k]);
            }
            slot = solver.insert(p, ids.data(), rinv_loc.data(),
                                 y_loc.data(), d_loc.data());
          }
          plan.push_back({kk, slot, p});
        }
        if (plan.empty()) continue;

        // One batched eigensolve for every distinct signature of the
        // column (KeDV-style), then weight assembly per unique slot.
        solver.solve();

        // Pass 2: apply each level's (possibly shared) weight matrix to
        // the member fields at local column (i - x0, j - y0).
        const idx li = i - slab.x0;
        const idx lj = j - slab.y0;
        for (const auto& lv : plan) {
          if (!solver.converged(lv.slot)) {
            // Non-convergence leaves the gridpoint un-analyzed; count it
            // (it used to be silently swallowed).
            ++eig_fail_levels;
            continue;
          }
          const real* W = solver.weights(lv.slot);
          const idx kk = lv.kk;
          ++grid_updated;
          local_obs_count += lv.p;

          // Apply W to every state variable at (i, j, kk).
          auto update = [&](auto&& get, auto&& set) {
            real mean = 0;
            for (std::size_t m = 0; m < k; ++m) {
              xb[m] = get(m);
              mean += xb[m];
            }
            mean /= real(k);
            for (std::size_t m = 0; m < k; ++m) xb[m] -= mean;
            for (std::size_t m = 0; m < k; ++m) {
              real s = mean;
              for (std::size_t l = 0; l < k; ++l) s += xb[l] * W[l * k + m];
              set(m, s);
            }
          };

          update([&](std::size_t m) { return slab.members[m]->rhot(li, lj, kk); },
                 [&](std::size_t m, real v) {
                   slab.members[m]->rhot(li, lj, kk) = v;
                 });
          update([&](std::size_t m) { return slab.members[m]->dens(li, lj, kk); },
                 [&](std::size_t m, real v) {
                   slab.members[m]->dens(li, lj, kk) = std::max(v, real(1e-3));
                 });
          for (int t = 0; t < scale::kNumTracers; ++t)
            update(
                [&](std::size_t m) {
                  return slab.members[m]->rhoq[t](li, lj, kk);
                },
                [&](std::size_t m, real v) {
                  slab.members[m]->rhoq[t](li, lj, kk) = std::max(v, real(0));
                });
          if (cfg_.update_momentum) {
            update([&](std::size_t m) {
                     return slab.members[m]->momx(li, lj, kk);
                   },
                   [&](std::size_t m, real v) {
                     slab.members[m]->momx(li, lj, kk) = v;
                   });
            update([&](std::size_t m) {
                     return slab.members[m]->momy(li, lj, kk);
                   },
                   [&](std::size_t m, real v) {
                     slab.members[m]->momy(li, lj, kk) = v;
                   });
            update([&](std::size_t m) {
                     return slab.members[m]->momz(li, lj, kk);
                   },
                   [&](std::size_t m, real v) {
                     slab.members[m]->momz(li, lj, kk) = v;
                   });
          }
        }
      }

    // Per-thread kernel accounting, folded by the OpenMP reduction.
    cache_hits += solver.cache_hits();
    weight_solves += solver.cache_misses();
    eig_batches += solver.batches();
  }

  tally.grid_updated = grid_updated;
  tally.local_obs = local_obs_count;
  tally.eig_fail = eig_fail_levels;
  tally.cache_hits = cache_hits;
  tally.weight_solves = weight_solves;
  tally.eig_batches = eig_batches;
  return tally;
}

AnalysisStats Letkf::analyze(scale::Ensemble& ens, const ObsVector& obs_in,
                             const ObsOperator& op) const {
  const std::size_t k = static_cast<std::size_t>(ens.size());
  AnalysisStats stats;
  stats.n_obs_in = obs_in.size();
  if (k < 2 || obs_in.empty()) return stats;

  // ---- H(x) for every (obs, member): hx[n*k + m].
  const std::size_t n_all = obs_in.size();
  std::vector<real> hx(n_all * k);
#pragma omp parallel for
  for (std::size_t m = 0; m < k; ++m) {
    const std::vector<real> h =
        member_hx(ens.member(static_cast<int>(m)), obs_in, op);
    for (std::size_t n = 0; n < n_all; ++n) hx[n * k + m] = h[n];
  }

  // ---- QC + obs-space statistics.
  const PreparedObs prep = prepare(obs_in, hx, k);
  stats = prep.stats;
  if (prep.obs.empty()) return stats;

  // ---- Local analyses over the full domain as a single window.
  EnsembleSlab slab;
  for (int m = 0; m < ens.size(); ++m) slab.members.push_back(&ens.member(m));
  const WindowTally t =
      analyze_window(prep, slab, 0, grid_.nx(), 0, grid_.ny());

  stats.n_grid_updated = t.grid_updated;
  stats.n_eig_fail = t.eig_fail;
  stats.n_weight_reuse = t.cache_hits;
  stats.n_weight_solved = t.weight_solves;
  stats.n_eig_batches = t.eig_batches;
  if (t.grid_updated)
    stats.mean_local_obs = double(t.local_obs) / double(t.grid_updated);
  if (metrics_) {
    metrics_->count("letkf.eig_batches", t.eig_batches);
    metrics_->count("letkf.weight_cache_hit", t.cache_hits);
    metrics_->count("letkf.weight_cache_miss", t.weight_solves);
    metrics_->count("letkf.eig_fail", t.eig_fail);
  }

  // Refresh halos after the point-wise updates.
  for (int m = 0; m < ens.size(); ++m) ens.member(m).fill_halos_periodic();
  return stats;
}

}  // namespace bda::letkf
