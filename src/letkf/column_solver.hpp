// Per-column batched LETKF weight solver with exact weight reuse.
//
// The analysis loop visits one vertical column (i, j) at a time, and
// adjacent levels of a column usually rank the same local observations —
// often with bit-identical localization weights (e.g. a single-elevation
// obs layer seen from vertically symmetric levels, or any quantized
// vertical-localization scheme).  Recomputing the O(k^3) weight solve per
// level is then pure waste.  This solver:
//
//   1. deduplicates levels by an exact signature — the ranked local-obs
//      index list plus the bit pattern of the localized inverse variances
//      (Y rows and innovations are functions of the obs index, so the pair
//      fully determines the solve inputs);
//   2. builds the Gram matrix + projected innovations once per unique
//      signature (letkf_build_gram / letkf_innovation_projection);
//   3. runs all unique eigendecompositions of the column through ONE
//      BatchedSymEigen::solve_batch call (the KeDV-style batch), then
//      assembles each unique weight matrix.
//
// Exactness contract: a cache hit requires byte equality of the signature,
// and the batched eigensolve is bitwise-identical to the serial path
// (eigen.hpp), so every level's weights equal a per-level letkf_weights
// call bit for bit.  Non-convergence is reported per slot and counted —
// never swallowed.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "letkf/letkf_core.hpp"

namespace bda::letkf {

namespace detail {

/// FNV-1a over raw bytes; chained across the id and rinv arrays.
inline std::uint64_t fnv1a_bytes(const void* data, std::size_t bytes,
                                 std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace detail

template <typename T>
class ColumnWeightSolver {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// `k` ensemble members, at most `max_levels` levels per column; rtpp /
  /// rho as letkf_weights.  `max_ql_iters` caps the QL iteration (the
  /// deterministic non-convergence fault knob, default matches tql2).
  ColumnWeightSolver(std::size_t k, std::size_t max_levels, T rtpp_alpha,
                     T rho, int max_ql_iters = 50)
      : k_(k), max_levels_(max_levels), rtpp_(rtpp_alpha), rho_(rho), ws_(k),
        a_(max_levels * k * k), eval_(max_levels * k), cd_(max_levels * k),
        wmat_(max_levels * k * k), ok_(max_levels, std::uint8_t(0)),
        sig_ids_(max_levels), sig_rinv_(max_levels), sig_hash_(max_levels) {
    ws_.eig.set_max_ql_iterations(max_ql_iters);
  }

  /// Start a new column: drops the weight cache (signatures are only
  /// comparable within one column's candidate set) but keeps capacity and
  /// the lifetime counters.
  void begin_column() {
    n_unique_ = 0;
    n_levels_ = 0;
    solved_ = false;
  }

  /// Probe the cache for a level's signature.  On a hit, registers the
  /// level against the existing slot and returns it — the caller can then
  /// skip gathering Y and d entirely.  Returns npos on a miss.
  std::size_t lookup(std::size_t p, const std::size_t* ids, const T* rinv) {
    assert(!solved_ && p > 0 && n_levels_ < max_levels_);
    const std::uint64_t h = signature_hash(p, ids, rinv);
    for (std::size_t u = 0; u < n_unique_; ++u) {
      if (sig_hash_[u] != h || sig_ids_[u].size() != p) continue;
      if (std::memcmp(sig_ids_[u].data(), ids, p * sizeof(std::size_t)) != 0)
        continue;
      if (std::memcmp(sig_rinv_[u].data(), rinv, p * sizeof(T)) != 0)
        continue;
      ++hits_;
      ++n_levels_;
      return u;
    }
    return npos;
  }

  /// Register a level whose signature missed the cache: stores the
  /// signature and stages the Gram matrix and projected innovations for
  /// the batched solve.  Y is row-major p x k, d length p (as
  /// letkf_weights).  Returns the new slot.
  std::size_t insert(std::size_t p, const std::size_t* ids, const T* rinv,
                     const T* Y, const T* d) {
    assert(!solved_ && p > 0 && n_unique_ < max_levels_);
    const std::size_t u = n_unique_++;
    ++n_levels_;
    ++misses_;
    sig_hash_[u] = signature_hash(p, ids, rinv);
    sig_ids_[u].assign(ids, ids + p);
    sig_rinv_[u].assign(rinv, rinv + p);
    letkf_build_gram(k_, p, Y, rinv, rho_, ws_.yr, a_.data() + u * k_ * k_);
    letkf_innovation_projection(k_, p, ws_.yr, d, cd_.data() + u * k_);
    ok_[u] = 0;
    return u;
  }

  /// Convenience wrapper: lookup, then insert on miss (Y/d are read only
  /// on the miss path).
  std::size_t add_level(std::size_t p, const std::size_t* ids, const T* rinv,
                        const T* Y, const T* d) {
    const std::size_t u = lookup(p, ids, rinv);
    return u != npos ? u : insert(p, ids, rinv, Y, d);
  }

  /// Batched eigensolve of every unique slot (one solve_batch call) and
  /// weight assembly for the converged ones.  Failed slots stay
  /// !converged() and are counted in eig_failures().
  void solve() {
    assert(!solved_);
    solved_ = true;
    if (n_unique_ == 0) return;
    ++batches_;
    fails_ += ws_.eig.solve_batch(n_unique_, a_.data(), eval_.data(),
                                  ok_.data());
    for (std::size_t u = 0; u < n_unique_; ++u) {
      if (!ok_[u]) continue;
      letkf_weights_from_eigen(k_, a_.data() + u * k_ * k_,
                               eval_.data() + u * k_, cd_.data() + u * k_,
                               rtpp_, ws_, wmat_.data() + u * k_ * k_);
    }
  }

  /// Did slot's eigensolve converge?  (Valid after solve().)
  [[nodiscard]] bool converged(std::size_t slot) const {
    assert(solved_ && slot < n_unique_);
    return ok_[slot] != 0;
  }

  /// k x k weight matrix of a converged slot (valid after solve()).
  const T* weights(std::size_t slot) const {
    assert(solved_ && slot < n_unique_ && ok_[slot] != 0);
    return wmat_.data() + slot * k_ * k_;
  }

  std::size_t members() const { return k_; }
  std::size_t n_levels() const { return n_levels_; }   ///< this column
  std::size_t n_unique() const { return n_unique_; }   ///< this column

  // Lifetime counters (across every column this solver has seen) — the
  // driver aggregates them into AnalysisStats / util::Metrics.
  std::size_t cache_hits() const { return hits_; }
  std::size_t cache_misses() const { return misses_; }
  std::size_t batches() const { return batches_; }
  std::size_t eig_failures() const { return fails_; }

 private:
  static std::uint64_t signature_hash(std::size_t p, const std::size_t* ids,
                                      const T* rinv) {
    std::uint64_t h = 1469598103934665603ull;
    h = detail::fnv1a_bytes(ids, p * sizeof(std::size_t), h);
    h = detail::fnv1a_bytes(rinv, p * sizeof(T), h);
    return h;
  }

  std::size_t k_, max_levels_;
  T rtpp_, rho_;
  LetkfWorkspace<T> ws_;
  std::vector<T> a_;     ///< staged Gram matrices -> eigenvectors, per slot
  std::vector<T> eval_;  ///< eigenvalues per slot
  std::vector<T> cd_;    ///< projected innovations per slot
  std::vector<T> wmat_;  ///< assembled weight matrices per slot
  std::vector<std::uint8_t> ok_;
  std::vector<std::vector<std::size_t>> sig_ids_;
  std::vector<std::vector<T>> sig_rinv_;
  std::vector<std::uint64_t> sig_hash_;
  std::size_t n_unique_ = 0, n_levels_ = 0;
  std::size_t hits_ = 0, misses_ = 0, batches_ = 0, fails_ = 0;
  bool solved_ = false;
};

}  // namespace bda::letkf
