// LETKF driver: local analyses over the full model grid.
//
// Implements the paper's <1-1> step with the Table 2 configuration:
// 1000-member LETKF (configurable), R-localization with Gaspari-Cohn
// (2 km horizontal / 2 km vertical), at most 1000 observations per grid
// point (nearest first), gross-error QC (10 dBZ / 15 m/s), RTPP covariance
// relaxation (0.95), and an analysis height range of 0.5-11 km.  Grid
// points are independent — the loop is OpenMP-parallel, mirroring the
// distributed-memory decomposition of the operational code.
#pragma once

#include <cstddef>

#include "letkf/adaptive_inflation.hpp"
#include "letkf/localization.hpp"
#include "letkf/obs.hpp"
#include "letkf/obsop.hpp"
#include "scale/ensemble.hpp"
#include "scale/grid.hpp"
#include "util/metrics.hpp"

namespace bda::letkf {

struct LetkfConfig {
  real hloc = 2000.0f;          ///< horizontal localization scale [m]
  real vloc = 2000.0f;          ///< vertical localization scale [m]
  int max_obs_per_grid = 1000;  ///< Table 2 cap
  real rtpp_alpha = 0.95f;      ///< relaxation-to-prior-perturbation
  real infl_rho = 1.0f;         ///< multiplicative inflation (1 = off)
  real gross_refl = 10.0f;      ///< QC |innovation| threshold [dBZ]
  real gross_dopp = 15.0f;      ///< QC |innovation| threshold [m/s]
  /// Reflectivity obs below this value are "no rain" reports; they are
  /// exempt from the gross-error check (their innovation against a
  /// spuriously raining background is legitimately huge — that is the
  /// signal, not an outlier).
  real clear_air_below = 5.0f;
  real z_min = 500.0f;          ///< analysis height range (Table 2)
  real z_max = 11000.0f;
  bool update_momentum = true;  ///< assimilate into winds as well
  /// Cap on implicit-QL sweeps per eigenvalue in the weight solve.  The
  /// default (50) never fails on the SPD LETKF matrices; lowering it is a
  /// deterministic fault-injection knob for the non-convergence accounting
  /// (AnalysisStats::n_eig_fail), mirroring jitdt's stall_after_bytes.
  int eig_max_iters = 50;
};

/// Bookkeeping of one analysis (used by benches and the workflow monitor).
struct AnalysisStats {
  std::size_t n_obs_in = 0;        ///< observations offered
  std::size_t n_obs_qc = 0;        ///< rejected by gross-error check
  std::size_t n_grid_updated = 0;  ///< grid points with >= 1 local obs
  /// Gridpoint-levels left un-analyzed because the weight eigensolve did
  /// not converge.  Always zero in practice (SPD matrices), but a non-zero
  /// value must be visible, not silently swallowed.
  std::size_t n_eig_fail = 0;
  std::size_t n_weight_reuse = 0;   ///< levels served by the column weight cache
  std::size_t n_weight_solved = 0;  ///< distinct weight solves (cache misses)
  std::size_t n_eig_batches = 0;    ///< batched eigensolver invocations
  double mean_local_obs = 0.0;     ///< average local obs per updated point
  double mean_abs_innovation = 0.0;
  /// Observation-space moments of the assimilated (post-QC) set, for
  /// innovation-consistency diagnostics and AdaptiveInflation.
  InnovationMoments moments;
};

class Letkf {
 public:
  Letkf(const scale::Grid& grid, LetkfConfig cfg = {});

  /// Assimilate `obs` into the ensemble in place.  `op` supplies H.
  AnalysisStats analyze(scale::Ensemble& ens, const ObsVector& obs,
                        const ObsOperator& op) const;

  const LetkfConfig& config() const { return cfg_; }

  /// Override the multiplicative inflation for subsequent analyses (the
  /// hook AdaptiveInflation drives between cycles).
  void set_inflation(real rho) { cfg_.infl_rho = rho; }

  /// Attach a metrics sink (may be null).  analyze() then records the
  /// kernel counters "letkf.eig_batches", "letkf.weight_cache_hit",
  /// "letkf.weight_cache_miss" and "letkf.eig_fail" per call
  /// (docs/LETKF_KERNEL.md).
  void set_metrics(util::Metrics* metrics) { metrics_ = metrics; }

 private:
  const scale::Grid& grid_;
  LetkfConfig cfg_;
  util::Metrics* metrics_ = nullptr;
};

}  // namespace bda::letkf
