// LETKF driver: local analyses over the full model grid.
//
// Implements the paper's <1-1> step with the Table 2 configuration:
// 1000-member LETKF (configurable), R-localization with Gaspari-Cohn
// (2 km horizontal / 2 km vertical), at most 1000 observations per grid
// point (nearest first), gross-error QC (10 dBZ / 15 m/s), RTPP covariance
// relaxation (0.95), and an analysis height range of 0.5-11 km.  Grid
// points are independent — the loop is OpenMP-parallel, mirroring the
// distributed-memory decomposition of the operational code.
#pragma once

#include <cstddef>
#include <vector>

#include "letkf/adaptive_inflation.hpp"
#include "letkf/localization.hpp"
#include "letkf/obs.hpp"
#include "letkf/obsop.hpp"
#include "scale/ensemble.hpp"
#include "scale/grid.hpp"
#include "util/metrics.hpp"

namespace bda::letkf {

struct LetkfConfig {
  real hloc = 2000.0f;          ///< horizontal localization scale [m]
  real vloc = 2000.0f;          ///< vertical localization scale [m]
  int max_obs_per_grid = 1000;  ///< Table 2 cap
  real rtpp_alpha = 0.95f;      ///< relaxation-to-prior-perturbation
  real infl_rho = 1.0f;         ///< multiplicative inflation (1 = off)
  real gross_refl = 10.0f;      ///< QC |innovation| threshold [dBZ]
  real gross_dopp = 15.0f;      ///< QC |innovation| threshold [m/s]
  /// Reflectivity obs below this value are "no rain" reports; they are
  /// exempt from the gross-error check (their innovation against a
  /// spuriously raining background is legitimately huge — that is the
  /// signal, not an outlier).
  real clear_air_below = 5.0f;
  real z_min = 500.0f;          ///< analysis height range (Table 2)
  real z_max = 11000.0f;
  bool update_momentum = true;  ///< assimilate into winds as well
  /// Cap on implicit-QL sweeps per eigenvalue in the weight solve.  The
  /// default (50) never fails on the SPD LETKF matrices; lowering it is a
  /// deterministic fault-injection knob for the non-convergence accounting
  /// (AnalysisStats::n_eig_fail), mirroring jitdt's stall_after_bytes.
  int eig_max_iters = 50;
};

/// Bookkeeping of one analysis (used by benches and the workflow monitor).
struct AnalysisStats {
  std::size_t n_obs_in = 0;        ///< observations offered
  std::size_t n_obs_qc = 0;        ///< rejected by gross-error check
  std::size_t n_grid_updated = 0;  ///< grid points with >= 1 local obs
  /// Gridpoint-levels left un-analyzed because the weight eigensolve did
  /// not converge.  Always zero in practice (SPD matrices), but a non-zero
  /// value must be visible, not silently swallowed.
  std::size_t n_eig_fail = 0;
  std::size_t n_weight_reuse = 0;   ///< levels served by the column weight cache
  std::size_t n_weight_solved = 0;  ///< distinct weight solves (cache misses)
  std::size_t n_eig_batches = 0;    ///< batched eigensolver invocations
  double mean_local_obs = 0.0;     ///< average local obs per updated point
  double mean_abs_innovation = 0.0;
  /// Observation-space moments of the assimilated (post-QC) set, for
  /// innovation-consistency diagnostics and AdaptiveInflation.
  InnovationMoments moments;
};

/// Observation-space preparation (gross-error QC, mean H(x), perturbations,
/// Desroziers moments) computed once from the full H(x) table.  The sharded
/// engine replicates prepare() on every domain rank from identical hx
/// bytes, which keeps control flow (the empty-obs early return) and the
/// kept-obs set bitwise consistent across ranks without broadcasting any
/// derived state.
struct PreparedObs {
  ObsVector obs;            ///< post-QC observations
  std::vector<real> ymean;  ///< mean H(x) per kept obs
  std::vector<real> yp;     ///< obs-space perturbations, yp[n*k + m]
  AnalysisStats stats;      ///< n_obs_in / n_obs_qc / innovation / moments
};

/// A block of ensemble members viewed over one horizontal window: entry m
/// is member m's state — the full domain, or a tile whose interior origin
/// sits at global column (x0, y0).  analyze_window() reads/writes member
/// fields at local (i - x0, j - y0) while localizing against global grid
/// coordinates.
struct EnsembleSlab {
  idx x0 = 0, y0 = 0;
  std::vector<scale::State*> members;
};

/// Integer tallies from one window analysis.  All integers on purpose:
/// integer addition is exact in any order, so summing per-shard tallies
/// reproduces the serial totals bitwise no matter how the domain is cut.
struct WindowTally {
  std::size_t grid_updated = 0;
  std::size_t local_obs = 0;
  std::size_t eig_fail = 0;
  std::size_t cache_hits = 0;
  std::size_t weight_solves = 0;
  std::size_t eig_batches = 0;
};

class Letkf {
 public:
  Letkf(const scale::Grid& grid, LetkfConfig cfg = {});

  /// Assimilate `obs` into the ensemble in place.  `op` supplies H.
  /// Composed from the three stages below over the full domain.
  AnalysisStats analyze(scale::Ensemble& ens, const ObsVector& obs,
                        const ObsOperator& op) const;

  /// H(x) of one member against every offered observation (pre-QC).
  /// analyze() evaluates this for all members locally; the sharded engine
  /// computes it member-side, exchanges the raw bytes, and assembles the k
  /// vectors in member order — reproducing analyze()'s H(x) table bitwise.
  static std::vector<real> member_hx(const scale::State& member,
                                     const ObsVector& obs_in,
                                     const ObsOperator& op);

  /// Stage 2: QC + obs-space statistics from the full H(x) table
  /// (hx[n*k + m], k ensemble members).  Deterministic function of its
  /// arguments and the config.
  PreparedObs prepare(const ObsVector& obs_in, const std::vector<real>& hx,
                      std::size_t k) const;

  /// Stage 3: local analyses over global columns [i_lo,i_hi) x [j_lo,j_hi).
  /// Updates the slab members in place (interiors only — the caller owns
  /// halo refresh).  The per-column weight cache and the canonical
  /// (distance, index) obs ordering make the result independent of how the
  /// domain is windowed, so shard boundaries cannot perturb the analysis.
  WindowTally analyze_window(const PreparedObs& prep,
                             const EnsembleSlab& slab, idx i_lo, idx i_hi,
                             idx j_lo, idx j_hi) const;

  const LetkfConfig& config() const { return cfg_; }

  /// Override the multiplicative inflation for subsequent analyses (the
  /// hook AdaptiveInflation drives between cycles).
  void set_inflation(real rho) { cfg_.infl_rho = rho; }

  /// Attach a metrics sink (may be null).  analyze() then records the
  /// kernel counters "letkf.eig_batches", "letkf.weight_cache_hit",
  /// "letkf.weight_cache_miss" and "letkf.eig_fail" per call
  /// (docs/LETKF_KERNEL.md).
  void set_metrics(util::Metrics* metrics) { metrics_ = metrics; }

 private:
  const scale::Grid& grid_;
  LetkfConfig cfg_;
  util::Metrics* metrics_ = nullptr;
};

}  // namespace bda::letkf
