// JIT-DT: Just-In-Time Data Transfer (Ishikawa 2020; paper Sec. 5).
//
// In production JIT-DT watches the radar server for each newly completed
// ~100 MB scan file and ships it immediately over SINET (400 Gbps
// backbone) directly into the SCALE-LETKF processes on Fugaku — measured at
// ~3 seconds per scan, dominated by session/protocol overhead rather than
// line rate.  "For a fail-safe workflow in case of abnormal delays or
// troubles, data transfer activities are monitored, and JIT-DT is restarted
// automatically when necessary."
//
// This implementation moves real bytes (chunked, CRC-checked, resumable)
// while accounting elapsed time on a virtual clock from a parameterized
// channel model, so both the data path and the fail-safe logic (stall
// detection -> restart -> resume from last acknowledged chunk) are
// exercised deterministically in tests.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace bda::jitdt {

struct JitDtConfig {
  std::size_t chunk_bytes = 4u << 20;    ///< transfer granularity
  double bandwidth_bytes_per_s = 250e6;  ///< effective end-to-end rate
  double latency_s = 0.002;              ///< per-chunk acknowledgement RTT
  double session_overhead_s = 2.0;       ///< connect + metadata handshake
  double stall_timeout_s = 5.0;          ///< watchdog threshold
  /// Restart budget: up to this many restarts are performed; the stall
  /// after the budget is exhausted declares failure.
  int max_restarts = 3;
};

struct TransferResult {
  bool success = false;
  double elapsed_s = 0;    ///< virtual-clock transfer time
  /// Watchdog-triggered restarts actually performed (<= max_restarts; the
  /// final give-up is not a restart and is not counted).
  int restarts = 0;
  /// Payload delivered: the full size on success, the acknowledged prefix
  /// (== out.size()) on failure.
  std::size_t bytes = 0;
  bool crc_ok = false;     ///< end-to-end integrity check
};

/// Fault injection: probability that any given chunk stalls (a stalled
/// chunk costs the watchdog timeout and forces a session restart).
struct FaultModel {
  double stall_probability = 0.0;
  Rng* rng = nullptr;  ///< required when stall_probability > 0
  /// Deterministically stall the first N chunk attempts (then fall back to
  /// the probabilistic model).  Lets tests pin the restart-budget
  /// semantics exactly.
  int force_first_stalls = 0;
  /// Deterministically stall every attempt once at least this many bytes
  /// have been acknowledged — a channel that dies mid-transfer.  Combined
  /// with max_restarts it pins the truncate-to-acked-prefix failure
  /// contract.  Disabled by default.
  std::size_t stall_after_bytes = SIZE_MAX;
};

class JitDtLink {
 public:
  explicit JitDtLink(JitDtConfig cfg = {}, FaultModel faults = {});

  /// Move `data` through the channel into `out`.  Bytes are really copied
  /// chunk by chunk; elapsed time comes from the channel model.  On
  /// failure `out` holds only the acknowledged prefix (the resume point),
  /// never a full-size buffer with an uninitialized tail.
  [[nodiscard]] TransferResult transfer(const std::vector<std::uint8_t>& data,
                          std::vector<std::uint8_t>& out);

  /// Closed-form fault-free transfer time for planning (Fig 5 projection).
  double estimate_time(std::size_t bytes) const;

  const JitDtConfig& config() const { return cfg_; }

 private:
  JitDtConfig cfg_;
  FaultModel faults_;
};

}  // namespace bda::jitdt
