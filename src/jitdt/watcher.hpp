// Directory watcher: the front end of JIT-DT.
//
// "JIT-DT monitors the new data file creation and transfers it immediately"
// — the radar server writes a scan file; the watcher notices it and hands
// the path to a callback (the transfer stage).  Polling-based for
// portability; a file is reported once, after its size has been stable for
// one poll interval (the radar writes scans atomically via rename in
// production, but stability-checking also covers plain writes).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace bda::jitdt {

class DirectoryWatcher {
 public:
  using Callback = std::function<void(const std::string& path)>;

  /// Watch `dir` for files with `extension` (e.g. ".pwr"), polling every
  /// `poll_interval_s`.
  DirectoryWatcher(std::string dir, std::string extension,
                   double poll_interval_s = 0.05);
  ~DirectoryWatcher();
  DirectoryWatcher(const DirectoryWatcher&) = delete;
  DirectoryWatcher& operator=(const DirectoryWatcher&) = delete;

  /// Start the watch thread; each new stable file fires `cb` exactly once.
  void start(Callback cb);
  void stop();

  /// One synchronous poll (for deterministic tests): returns newly stable
  /// files and marks them seen.
  std::vector<std::string> poll_once();

 private:
  std::string dir_, ext_;
  double interval_s_;
  std::set<std::string> seen_;
  std::map<std::string, std::uintmax_t> pending_;  // path -> last size
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace bda::jitdt
