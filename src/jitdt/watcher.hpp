// Directory watcher: the front end of JIT-DT.
//
// "JIT-DT monitors the new data file creation and transfers it immediately"
// — the radar server writes a scan file; the watcher notices it and hands
// the path to a callback (the transfer stage).  Polling-based for
// portability; a file is reported once, after its size has been stable for
// one poll interval (the radar writes scans atomically via rename in
// production, but stability-checking also covers plain writes).
//
// Thread model: start() spawns one background poll thread; stop() (and the
// destructor) signal it through `state_cv_` and join, so shutdown is prompt
// rather than waiting out a sleep.  The seen/pending bookkeeping is shared
// between that thread and callers of poll_once(), so it is guarded by `mu_`.
// The callback itself runs outside the lock — it is free to call back into
// the watcher (except stop(), which would self-join).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/annotations.hpp"

namespace bda::jitdt {

class DirectoryWatcher {
 public:
  using Callback = std::function<void(const std::string& path)>;

  /// Watch `dir` for files with `extension` (e.g. ".pwr"), polling every
  /// `poll_interval_s`.
  DirectoryWatcher(std::string dir, std::string extension,
                   double poll_interval_s = 0.05);
  ~DirectoryWatcher();
  DirectoryWatcher(const DirectoryWatcher&) = delete;
  DirectoryWatcher& operator=(const DirectoryWatcher&) = delete;

  /// Start the watch thread; each new stable file fires `cb` exactly once.
  /// Restarting an already-running watcher stops it first.
  void start(Callback cb);
  /// Stop and join the watch thread.  Safe to call repeatedly, from any
  /// thread except the watch thread itself, and concurrently with start().
  void stop();

  /// True while the watch thread is running.
  bool running() const;

  /// One synchronous poll (for deterministic tests): returns newly stable
  /// files and marks them seen.  Safe to call while the watch thread runs;
  /// a file is still reported exactly once across both paths.
  std::vector<std::string> poll_once();

 private:
  std::vector<std::string> scan_locked() BDA_REQUIRES(mu_);

  const std::string dir_, ext_;
  const double interval_s_;

  mutable std::mutex mu_;
  std::condition_variable state_cv_ BDA_CV_OF(mu_);  // signalled by stop()
  std::set<std::string> seen_ BDA_GUARDED_BY(mu_);
  std::map<std::string, std::uintmax_t> pending_ BDA_GUARDED_BY(mu_);
  bool running_ BDA_GUARDED_BY(mu_) = false;     // poll loop should continue
  std::thread thread_ BDA_GUARDED_BY(mu_);       // joined under start/stop
};

}  // namespace bda::jitdt
