#include "jitdt/watcher.hpp"

#include <chrono>
#include <filesystem>
#include <utility>

namespace bda::jitdt {

namespace fs = std::filesystem;

DirectoryWatcher::DirectoryWatcher(std::string dir, std::string extension,
                                   double poll_interval_s)
    : dir_(std::move(dir)), ext_(std::move(extension)),
      interval_s_(poll_interval_s) {}

DirectoryWatcher::~DirectoryWatcher() { stop(); }

std::vector<std::string> DirectoryWatcher::scan_locked() {
  std::vector<std::string> ready;
  if (!fs::exists(dir_)) return ready;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string path = entry.path().string();
    if (entry.path().extension() != ext_) continue;
    if (seen_.count(path)) continue;
    const auto size = entry.file_size();
    const auto it = pending_.find(path);
    if (it == pending_.end()) {
      pending_[path] = size;  // first sighting: wait for stability
      continue;
    }
    if (it->second == size) {
      seen_.insert(path);
      pending_.erase(it);
      ready.push_back(path);
    } else {
      it->second = size;  // still growing
    }
  }
  return ready;
}

std::vector<std::string> DirectoryWatcher::poll_once() {
  std::lock_guard<std::mutex> lock(mu_);
  return scan_locked();
}

bool DirectoryWatcher::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void DirectoryWatcher::start(Callback cb) {
  stop();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = true;
  thread_ = std::thread([this, cb = std::move(cb)] {
    std::unique_lock<std::mutex> lock(mu_);
    while (running_) {
      // Scan under the lock, fire callbacks outside it so a slow transfer
      // stage never blocks poll_once() callers or stop().
      auto ready = scan_locked();
      lock.unlock();
      for (const auto& path : ready) cb(path);
      lock.lock();
      if (!running_) break;
      state_cv_.wait_for(lock,
                         std::chrono::duration<double>(interval_s_),
                         [&]() BDA_REQUIRES(mu_) { return !running_; });
    }
  });
}

void DirectoryWatcher::stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
    // The join must happen outside the lock (the poll thread takes mu_), so
    // hand the handle off while still holding it.
    to_join = std::move(thread_);
  }
  state_cv_.notify_all();
  if (to_join.joinable()) to_join.join();
}

}  // namespace bda::jitdt
