#include "jitdt/watcher.hpp"

#include <chrono>
#include <filesystem>

namespace bda::jitdt {

namespace fs = std::filesystem;

DirectoryWatcher::DirectoryWatcher(std::string dir, std::string extension,
                                   double poll_interval_s)
    : dir_(std::move(dir)), ext_(std::move(extension)),
      interval_s_(poll_interval_s) {}

DirectoryWatcher::~DirectoryWatcher() { stop(); }

std::vector<std::string> DirectoryWatcher::poll_once() {
  std::vector<std::string> ready;
  if (!fs::exists(dir_)) return ready;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string path = entry.path().string();
    if (entry.path().extension() != ext_) continue;
    if (seen_.count(path)) continue;
    const auto size = entry.file_size();
    const auto it = pending_.find(path);
    if (it == pending_.end()) {
      pending_[path] = size;  // first sighting: wait for stability
      continue;
    }
    if (it->second == size) {
      seen_.insert(path);
      pending_.erase(it);
      ready.push_back(path);
    } else {
      it->second = size;  // still growing
    }
  }
  return ready;
}

void DirectoryWatcher::start(Callback cb) {
  stop();
  running_ = true;
  thread_ = std::thread([this, cb = std::move(cb)] {
    while (running_) {
      for (const auto& path : poll_once()) cb(path);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(interval_s_));
    }
  });
}

void DirectoryWatcher::stop() {
  running_ = false;
  if (thread_.joinable()) thread_.join();
}

}  // namespace bda::jitdt
