#include "jitdt/transfer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/binary_io.hpp"
#include "util/logging.hpp"

namespace bda::jitdt {

JitDtLink::JitDtLink(JitDtConfig cfg, FaultModel faults)
    : cfg_(cfg), faults_(faults) {}

double JitDtLink::estimate_time(std::size_t bytes) const {
  const double n_chunks = std::ceil(double(bytes) / double(cfg_.chunk_bytes));
  return cfg_.session_overhead_s +
         double(bytes) / cfg_.bandwidth_bytes_per_s +
         n_chunks * cfg_.latency_s;
}

TransferResult JitDtLink::transfer(const std::vector<std::uint8_t>& data,
                                   std::vector<std::uint8_t>& out) {
  TransferResult res;
  res.bytes = data.size();
  const std::uint32_t crc_src = crc32(data.data(), data.size());

  out.clear();
  out.resize(data.size());

  double clock = cfg_.session_overhead_s;
  std::size_t acked = 0;  // bytes safely delivered (resume point)
  int restarts = 0;
  int forced_stalls = faults_.force_first_stalls;

  while (acked < data.size()) {
    const std::size_t n = std::min(cfg_.chunk_bytes, data.size() - acked);
    bool stall = false;
    if (forced_stalls > 0) {
      --forced_stalls;
      stall = true;
    } else if (acked >= faults_.stall_after_bytes) {
      stall = true;  // the channel died mid-transfer
    } else if (faults_.stall_probability > 0.0 && faults_.rng) {
      stall = faults_.rng->uniform() < faults_.stall_probability;
    }
    if (stall) {
      // Watchdog: no progress for stall_timeout_s.  With restart budget
      // left, restart the session and resume from the last acknowledged
      // chunk; otherwise declare failure — after exactly cfg_.max_restarts
      // restarts have been spent (the documented semantics; `restarts`
      // counts restarts actually performed, never the final give-up).
      clock += cfg_.stall_timeout_s;
      if (restarts >= cfg_.max_restarts) {
        // Failure delivers only what was acknowledged: truncate `out` to
        // the resumable prefix instead of handing back a full-size buffer
        // whose tail was never copied.
        out.resize(acked);
        res.success = false;
        res.elapsed_s = clock;
        res.restarts = restarts;
        res.bytes = acked;
        res.crc_ok = false;
        log_error("JIT-DT: transfer failed at byte ", acked, " after ",
                  restarts, " restarts");
        return res;
      }
      ++restarts;
      log_warn("JIT-DT: stall detected at byte ", acked, ", restart #",
               restarts);
      clock += cfg_.session_overhead_s;  // reconnect
      continue;
    }
    std::memcpy(out.data() + acked, data.data() + acked, n);
    acked += n;
    clock += double(n) / cfg_.bandwidth_bytes_per_s + cfg_.latency_s;
  }

  res.success = true;
  res.elapsed_s = clock;
  res.restarts = restarts;
  res.crc_ok = crc32(out.data(), out.size()) == crc_src;
  return res;
}

}  // namespace bda::jitdt
