# Sanitizer wiring for the BDA tree.
#
# BDA_SANITIZE is a semicolon list drawn from {address, undefined, thread}.
# "address;undefined" (ASan+UBSan) and "thread" (TSan) are the two supported
# operating points; ASan and TSan are mutually exclusive by construction of
# the runtimes.  Every target in the tree (library, tests, benches, examples)
# is compiled and linked with the chosen sanitizers so interleavings in the
# 30-s cycle path (comm ranks, JIT-DT watcher, OpenMP regions) are actually
# instrumented, not just the test bodies.
#
# The active configuration also exports:
#   BDA_SANITIZER_LABEL  - ctest label attached to every test ("asan-ubsan",
#                          "tsan", or "release"), so `ctest -L tsan` selects
#                          the instrumented suite in the matching build tree.
#   BDA_SANITIZER_ENV    - environment injected into every registered test
#                          (suppression files + strict failure modes).
#
# Default sanitizer options are additionally baked into the binaries via
# __tsan_default_options()/__ubsan_default_options() (see
# bda_sanitizer_defaults.cpp.in), so running a test binary by hand picks up
# the OpenMP-aware suppressions without exporting anything.

set(BDA_SANITIZE "" CACHE STRING
    "Semicolon list of sanitizers: address;undefined and/or thread")

set(BDA_SANITIZER_LABEL "release")
set(BDA_SANITIZER_ENV "")
set(BDA_SANITIZE_FLAGS "")

if(BDA_SANITIZE)
  if(("address" IN_LIST BDA_SANITIZE OR "undefined" IN_LIST BDA_SANITIZE)
     AND "thread" IN_LIST BDA_SANITIZE)
    message(FATAL_ERROR
        "BDA_SANITIZE: 'thread' cannot be combined with 'address'/'undefined'")
  endif()

  foreach(san IN LISTS BDA_SANITIZE)
    if(NOT san MATCHES "^(address|undefined|thread)$")
      message(FATAL_ERROR "BDA_SANITIZE: unknown sanitizer '${san}'")
    endif()
    list(APPEND BDA_SANITIZE_FLAGS "-fsanitize=${san}")
  endforeach()

  # Keep frames honest in reports and make UBSan findings fatal instead of
  # printed-and-forgotten.
  list(APPEND BDA_SANITIZE_FLAGS -fno-omit-frame-pointer -g)
  if("undefined" IN_LIST BDA_SANITIZE)
    list(APPEND BDA_SANITIZE_FLAGS -fno-sanitize-recover=undefined)
  endif()

  add_compile_options(${BDA_SANITIZE_FLAGS})
  add_link_options(${BDA_SANITIZE_FLAGS})

  if("thread" IN_LIST BDA_SANITIZE)
    set(BDA_SANITIZER_LABEL "tsan")
    set(BDA_SANITIZER_ENV
        "TSAN_OPTIONS=suppressions=${CMAKE_SOURCE_DIR}/tools/sanitizers/tsan.supp:history_size=7:second_deadlock_stack=1")
  else()
    set(BDA_SANITIZER_LABEL "asan-ubsan")
    set(BDA_SANITIZER_ENV
        "UBSAN_OPTIONS=print_stacktrace=1:suppressions=${CMAKE_SOURCE_DIR}/tools/sanitizers/ubsan.supp"
        "ASAN_OPTIONS=strict_string_checks=1:detect_stack_use_after_return=1")
  endif()

  # Bake default options (suppression paths above all) into every binary so
  # direct `./build-tsan/tests/test_hpc` runs match `ctest` behaviour.
  configure_file(
    ${CMAKE_SOURCE_DIR}/tools/sanitizers/bda_sanitizer_defaults.cpp.in
    ${CMAKE_BINARY_DIR}/generated/bda_sanitizer_defaults.cpp @ONLY)
  set(BDA_SANITIZER_DEFAULTS_TU
      ${CMAKE_BINARY_DIR}/generated/bda_sanitizer_defaults.cpp)

  message(STATUS "BDA sanitizers: ${BDA_SANITIZE} (label ${BDA_SANITIZER_LABEL})")
endif()
