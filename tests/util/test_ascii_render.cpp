#include <gtest/gtest.h>

#include "util/ascii_render.hpp"

namespace bda {
namespace {

TEST(AsciiRender, DbzClassesMapToExpectedGlyphs) {
  RField2D f(6, 1, 0);
  f(0, 0) = 5;    // ' '
  f(1, 0) = 15;   // '.'
  f(2, 0) = 25;   // ':'
  f(3, 0) = 35;   // 'o'
  f(4, 0) = 45;   // 'O'
  f(5, 0) = 55;   // '@'
  EXPECT_EQ(render_dbz(f), " .:oO@\n");
}

TEST(AsciiRender, NorthIsUp) {
  RField2D f(1, 2, 0);
  f(0, 0) = 0;   // south: blank
  f(0, 1) = 55;  // north: '@'
  EXPECT_EQ(render_dbz(f), "@\n \n");
}

TEST(AsciiRender, LinearRampClampsOutOfRange) {
  RField2D f(3, 1, 0);
  f(0, 0) = -100;  // below lo -> first glyph (space)
  f(1, 0) = 0.5f;
  f(2, 0) = 100;   // above hi -> last glyph ('@')
  const auto s = render_field(f, 0.0f, 1.0f);
  EXPECT_EQ(s.front(), ' ');
  EXPECT_EQ(s[2], '@');
}

TEST(AsciiRender, SliceExtractsLevel) {
  RField3D f(2, 2, 3, 0);
  f(1, 0, 2) = 7.0f;
  const auto s = slice_k(f, 2);
  EXPECT_EQ(s(1, 0), 7.0f);
  EXPECT_EQ(s(0, 0), 0.0f);
}

TEST(AsciiRender, ColumnMaxTakesMaximumOverRange) {
  RField3D f(1, 1, 4, 0);
  f(0, 0, 0) = 1;
  f(0, 0, 1) = 9;
  f(0, 0, 2) = 3;
  f(0, 0, 3) = 99;
  EXPECT_EQ(column_max(f, 0, 3)(0, 0), 9.0f);  // level 3 excluded
  EXPECT_EQ(column_max(f, 0, 4)(0, 0), 99.0f);
}

}  // namespace
}  // namespace bda
