#include <gtest/gtest.h>

#include "util/config.hpp"

namespace bda {
namespace {

TEST(Config, ParsesSectionsAndKeys) {
  const auto cfg = Config::parse(
      "[letkf]\n"
      "members = 1000\n"
      "hloc = 2000.0\n"
      "[scale]\n"
      "dt = 0.4\n");
  EXPECT_EQ(cfg.require("letkf.members"), "1000");
  EXPECT_EQ(cfg.require_long("letkf.members"), 1000);
  EXPECT_DOUBLE_EQ(cfg.require_double("letkf.hloc"), 2000.0);
  EXPECT_DOUBLE_EQ(cfg.require_double("scale.dt"), 0.4);
  EXPECT_EQ(cfg.size(), 3u);
}

TEST(Config, KeysWithoutSectionAreBare) {
  const auto cfg = Config::parse("alpha = 0.95\n");
  EXPECT_DOUBLE_EQ(cfg.require_double("alpha"), 0.95);
}

TEST(Config, CommentsAndBlankLinesIgnored) {
  const auto cfg = Config::parse(
      "# full-line comment\n"
      "\n"
      "a = 1  # trailing comment\n"
      "; semicolon comment\n"
      "b = 2\n");
  EXPECT_EQ(cfg.require_long("a"), 1);
  EXPECT_EQ(cfg.require_long("b"), 2);
}

TEST(Config, WhitespaceTrimmed) {
  const auto cfg = Config::parse("  key   =   value with spaces   \n");
  EXPECT_EQ(cfg.require("key"), "value with spaces");
}

TEST(Config, GetOrFallsBack) {
  const auto cfg = Config::parse("x = 3\n");
  EXPECT_EQ(cfg.get_or("x", 0L), 3);
  EXPECT_EQ(cfg.get_or("missing", 7L), 7);
  EXPECT_DOUBLE_EQ(cfg.get_or("missing", 2.5), 2.5);
  EXPECT_EQ(cfg.get_or("missing", std::string("d")), "d");
}

TEST(Config, BooleanForms) {
  const auto cfg = Config::parse(
      "a = true\nb = off\nc = Yes\nd = 0\n");
  EXPECT_TRUE(cfg.get_or("a", false));
  EXPECT_FALSE(cfg.get_or("b", true));
  EXPECT_TRUE(cfg.get_or("c", false));
  EXPECT_FALSE(cfg.get_or("d", true));
  EXPECT_TRUE(cfg.get_or("missing", true));
}

TEST(Config, MalformedLineThrowsWithLineNumber) {
  try {
    Config::parse("good = 1\nbad line without equals\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Config, UnterminatedSectionThrows) {
  EXPECT_THROW(Config::parse("[oops\n"), std::runtime_error);
}

TEST(Config, EmptyKeyThrows) {
  EXPECT_THROW(Config::parse(" = value\n"), std::runtime_error);
}

TEST(Config, RequireMissingThrows) {
  const auto cfg = Config::parse("x = 1\n");
  EXPECT_THROW(cfg.require("y"), std::runtime_error);
}

TEST(Config, BadBooleanThrows) {
  const auto cfg = Config::parse("x = maybe\n");
  EXPECT_THROW(cfg.get_or("x", true), std::runtime_error);
}

TEST(Config, SetOverridesAndHas) {
  auto cfg = Config::parse("x = 1\n");
  EXPECT_TRUE(cfg.has("x"));
  EXPECT_FALSE(cfg.has("y"));
  cfg.set("x", "2");
  cfg.set("y", "3");
  EXPECT_EQ(cfg.require_long("x"), 2);
  EXPECT_EQ(cfg.require_long("y"), 3);
}

TEST(Config, LoadMissingFileThrows) {
  EXPECT_THROW(Config::load("/nonexistent/path/cfg.ini"), std::runtime_error);
}

}  // namespace
}  // namespace bda
