#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace bda {
namespace {

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats s;
  const double xs[] = {1.0, 2.0, 4.0, 8.0, 16.0};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 6.2);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  EXPECT_DOUBLE_EQ(s.sum(), 31.0);
  // Sample variance of {1,2,4,8,16}.
  double m = 6.2, v = 0;
  for (double x : xs) v += (x - m) * (x - m);
  v /= 4.0;
  EXPECT_NEAR(s.variance(), v, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(v), 1e-12);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSinglePass) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10 + i * 0.1;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsNoop) {
  RunningStats a, empty;
  a.add(3.0);
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 4.0);
}

TEST(Percentile, OrderStatistics) {
  std::vector<double> v = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Percentile, InterpolatesBetweenSamples) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 97), 9.7);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Percentile, SingleSampleIsEveryPercentile) {
  // n = 1 used to be the sharp edge: any p > 0 computed an interpolation
  // index past the only element.
  const std::vector<double> one = {7.5};
  for (double p : {0.0, 50.0, 97.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(percentile(one, p), 7.5) << "p = " << p;
}

TEST(Percentile, OutOfRangePIsClamped) {
  std::vector<double> v = {1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, 150.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, -25.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({2.0}, 1000.0), 2.0);
}

TEST(FractionBelow, CountsInclusive) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(fraction_below(v, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(fraction_below(v, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(fraction_below(v, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_below({}, 1.0), 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamped to bin 0
  h.add(50.0);  // clamped to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, RenderContainsEveryBin) {
  Histogram h(0.0, 3.0, 3);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string out = h.render(10);
  // Three lines, peak bin has the longest bar.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("##########"), std::string::npos);
}

}  // namespace
}  // namespace bda
