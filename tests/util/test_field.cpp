#include <gtest/gtest.h>

#include "util/field.hpp"

namespace bda {
namespace {

TEST(Field3D, StoresAndRetrievesByIndex) {
  Field3D<float> f(4, 5, 6, 1);
  f(0, 0, 0) = 1.5f;
  f(3, 4, 5) = -2.0f;
  f(-1, -1, 0) = 7.0f;  // halo
  f(4, 5, 3) = 8.0f;    // halo
  EXPECT_EQ(f(0, 0, 0), 1.5f);
  EXPECT_EQ(f(3, 4, 5), -2.0f);
  EXPECT_EQ(f(-1, -1, 0), 7.0f);
  EXPECT_EQ(f(4, 5, 3), 8.0f);
}

TEST(Field3D, DistinctCellsDoNotAlias) {
  Field3D<int> f(3, 3, 3, 1);
  int v = 0;
  for (idx i = -1; i < 4; ++i)
    for (idx j = -1; j < 4; ++j)
      for (idx k = 0; k < 3; ++k) f(i, j, k) = v++;
  v = 0;
  for (idx i = -1; i < 4; ++i)
    for (idx j = -1; j < 4; ++j)
      for (idx k = 0; k < 3; ++k) EXPECT_EQ(f(i, j, k), v++);
}

TEST(Field3D, ColumnIsContiguousAndMatchesIndexing) {
  Field3D<float> f(3, 3, 8, 2);
  for (idx k = 0; k < 8; ++k) f(1, 2, k) = float(10 + k);
  auto col = f.column(1, 2);
  ASSERT_EQ(col.size(), 8u);
  for (idx k = 0; k < 8; ++k) EXPECT_EQ(col[k], float(10 + k));
  // Contiguity: adjacent k differ by one element.
  EXPECT_EQ(&col[1], &col[0] + 1);
}

TEST(Field3D, SizeAccountsForHalo) {
  Field3D<float> f(4, 4, 4, 2);
  EXPECT_EQ(f.size(), std::size_t(8 * 8 * 4));
  EXPECT_EQ(f.interior_size(), std::size_t(64));
}

TEST(Field3D, PeriodicHaloWrapsBothDirections) {
  Field3D<float> f(4, 3, 2, 2);
  for (idx i = 0; i < 4; ++i)
    for (idx j = 0; j < 3; ++j)
      for (idx k = 0; k < 2; ++k) f(i, j, k) = float(100 * i + 10 * j + k);
  f.fill_halo_periodic();
  EXPECT_EQ(f(-1, 0, 0), f(3, 0, 0));
  EXPECT_EQ(f(-2, 1, 1), f(2, 1, 1));
  EXPECT_EQ(f(4, 2, 0), f(0, 2, 0));
  EXPECT_EQ(f(5, 0, 1), f(1, 0, 1));
  EXPECT_EQ(f(0, -1, 0), f(0, 2, 0));
  EXPECT_EQ(f(2, 4, 1), f(2, 1, 1));
  // Corner: both wrap.
  EXPECT_EQ(f(-1, -1, 0), f(3, 2, 0));
}

TEST(Field3D, ClampHaloCopiesNearestInterior) {
  Field3D<float> f(3, 3, 2, 2);
  for (idx i = 0; i < 3; ++i)
    for (idx j = 0; j < 3; ++j)
      for (idx k = 0; k < 2; ++k) f(i, j, k) = float(10 * i + j);
  f.fill_halo_clamp();
  EXPECT_EQ(f(-1, 1, 0), f(0, 1, 0));
  EXPECT_EQ(f(-2, 1, 0), f(0, 1, 0));
  EXPECT_EQ(f(4, 1, 1), f(2, 1, 1));
  EXPECT_EQ(f(1, -2, 0), f(1, 0, 0));
  EXPECT_EQ(f(-2, 4, 0), f(0, 2, 0));
}

TEST(Field3D, InteriorReductionsIgnoreHalo) {
  Field3D<float> f(2, 2, 2, 1);
  f.fill(100.0f);  // fills halo too
  for (idx i = 0; i < 2; ++i)
    for (idx j = 0; j < 2; ++j)
      for (idx k = 0; k < 2; ++k) f(i, j, k) = 1.0f;
  f(1, 1, 1) = 5.0f;
  f(0, 0, 0) = -3.0f;
  EXPECT_DOUBLE_EQ(f.interior_sum(), 6.0 * 1.0 + 5.0 - 3.0);
  EXPECT_EQ(f.interior_max(), 5.0f);
  EXPECT_EQ(f.interior_min(), -3.0f);
}

TEST(Field3D, CopyFromRequiresSameShapeAndCopies) {
  Field3D<float> a(3, 3, 3, 1), b(3, 3, 3, 1);
  b(1, 1, 1) = 42.0f;
  a.copy_from(b);
  EXPECT_EQ(a(1, 1, 1), 42.0f);
  EXPECT_TRUE(a.same_shape(b));
  Field3D<float> c(3, 3, 4, 1);
  EXPECT_FALSE(a.same_shape(c));
}

TEST(Field2D, IndexingAndHalo) {
  Field2D<float> f(3, 4, 1);
  f(0, 0) = 1.0f;
  f(2, 3) = 2.0f;
  f(-1, -1) = 3.0f;
  EXPECT_EQ(f(0, 0), 1.0f);
  EXPECT_EQ(f(2, 3), 2.0f);
  EXPECT_EQ(f(-1, -1), 3.0f);
  EXPECT_EQ(f.size(), std::size_t(5 * 6));
}

TEST(Field2D, InteriorSumAndMax) {
  Field2D<float> f(2, 2, 0);
  f(0, 0) = 1;
  f(0, 1) = 2;
  f(1, 0) = 3;
  f(1, 1) = 4;
  EXPECT_DOUBLE_EQ(f.interior_sum(), 10.0);
  EXPECT_EQ(f.interior_max(), 4.0f);
}

}  // namespace
}  // namespace bda
