#include <gtest/gtest.h>

#include "util/codec.hpp"
#include "util/rng.hpp"

namespace bda {
namespace {

TEST(Rle, RoundtripSparseBuffer) {
  // Clear-air-like buffer: long runs with occasional echoes.
  std::vector<std::uint8_t> in(10000, 0x14);
  for (std::size_t i = 3000; i < 3050; ++i) in[i] = std::uint8_t(i & 0xFF);
  const auto enc = encode_rle(in);
  EXPECT_LT(enc.size(), in.size() / 10);  // compresses hard
  EXPECT_EQ(decode_rle(enc), in);
}

TEST(Rle, RoundtripRandomBuffer) {
  Rng rng(1);
  std::vector<std::uint8_t> in(5000);
  for (auto& b : in) b = std::uint8_t(rng.uniform_int(256));
  const auto enc = encode_rle(in);
  EXPECT_EQ(decode_rle(enc), in);
  // Random data barely inflates (escape bytes only).
  EXPECT_LT(enc.size(), in.size() + in.size() / 16);
}

TEST(Rle, EmptyInput) {
  EXPECT_TRUE(encode_rle({}).empty());
  EXPECT_TRUE(decode_rle({}).empty());
}

TEST(Rle, EscapeByteItselfSurvives) {
  std::vector<std::uint8_t> in = {0xAB, 0x01, 0xAB, 0xAB, 0x02};
  EXPECT_EQ(decode_rle(encode_rle(in)), in);
}

TEST(Rle, VeryLongRunSplitAcrossChunks) {
  std::vector<std::uint8_t> in(200000, 0x77);  // > 65535 run length
  EXPECT_EQ(decode_rle(encode_rle(in)), in);
}

TEST(Rle, TruncatedEscapeRejected) {
  std::vector<std::uint8_t> bad = {0xAB, 0x05};
  EXPECT_THROW(decode_rle(bad), std::runtime_error);
}

TEST(Rle, ZeroRunRejected) {
  std::vector<std::uint8_t> bad = {0xAB, 0x00, 0x00, 0x42};
  EXPECT_THROW(decode_rle(bad), std::runtime_error);
}

TEST(Rle, ShortRunsStayLiteral) {
  std::vector<std::uint8_t> in = {1, 1, 1, 2, 3};  // run of 3 < min run 4
  const auto enc = encode_rle(in);
  EXPECT_EQ(enc, in);  // untouched
}

}  // namespace
}  // namespace bda
