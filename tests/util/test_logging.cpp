#include <gtest/gtest.h>

#include <vector>

#include "util/logging.hpp"

namespace bda {
namespace {

struct SinkCapture {
  std::vector<std::pair<LogLevel, std::string>> events;
  Logger::Sink install() {
    return Logger::global().set_sink(
        [this](LogLevel lvl, const std::string& msg) {
          events.emplace_back(lvl, msg);
        });
  }
};

TEST(Logging, SinkReceivesFormattedMessage) {
  SinkCapture cap;
  auto prev = cap.install();
  Logger::global().set_level(LogLevel::kDebug);
  log_info("cycle ", 42, " took ", 1.5, "s");
  Logger::global().set_sink(std::move(prev));
  ASSERT_EQ(cap.events.size(), 1u);
  EXPECT_EQ(cap.events[0].first, LogLevel::kInfo);
  EXPECT_EQ(cap.events[0].second, "cycle 42 took 1.5s");
}

TEST(Logging, LevelFiltersBelowThreshold) {
  SinkCapture cap;
  auto prev = cap.install();
  Logger::global().set_level(LogLevel::kWarn);
  log_debug("hidden");
  log_info("hidden too");
  log_warn("visible");
  log_error("also visible");
  Logger::global().set_sink(std::move(prev));
  Logger::global().set_level(LogLevel::kInfo);
  ASSERT_EQ(cap.events.size(), 2u);
  EXPECT_EQ(cap.events[0].second, "visible");
  EXPECT_EQ(cap.events[1].first, LogLevel::kError);
}

}  // namespace
}  // namespace bda
