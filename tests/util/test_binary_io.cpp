#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/binary_io.hpp"

namespace bda {
namespace {

Field3D<float> make_field(idx nx, idx ny, idx nz, float scale) {
  Field3D<float> f(nx, ny, nz, 0);
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j)
      for (idx k = 0; k < nz; ++k)
        f(i, j, k) = scale * float(i * 100 + j * 10 + k);
  return f;
}

TEST(BinaryIo, EncodeDecodeRoundtripPreservesData) {
  std::vector<FieldRecord> recs;
  recs.push_back({"qr", make_field(4, 5, 6, 1.0f)});
  recs.push_back({"reflectivity", make_field(3, 3, 2, -0.5f)});
  const auto buf = encode_bdf(recs);
  const auto back = decode_bdf(buf);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name, "qr");
  EXPECT_EQ(back[1].name, "reflectivity");
  for (idx i = 0; i < 4; ++i)
    for (idx j = 0; j < 5; ++j)
      for (idx k = 0; k < 6; ++k)
        EXPECT_EQ(back[0].data(i, j, k), recs[0].data(i, j, k));
}

TEST(BinaryIo, HaloIsNotSerialized) {
  Field3D<float> f(2, 2, 2, 2);
  f.fill(99.0f);
  f(0, 0, 0) = 1.0f;
  std::vector<FieldRecord> recs;
  recs.push_back({"x", std::move(f)});
  const auto back = decode_bdf(encode_bdf(recs));
  EXPECT_EQ(back[0].data.halo(), 0);
  EXPECT_EQ(back[0].data(0, 0, 0), 1.0f);
  EXPECT_EQ(back[0].data(1, 1, 1), 99.0f);
}

TEST(BinaryIo, CorruptedByteDetected) {
  std::vector<FieldRecord> recs;
  recs.push_back({"a", make_field(3, 3, 3, 1.0f)});
  auto buf = encode_bdf(recs);
  buf[buf.size() / 2] ^= 0xFF;
  EXPECT_THROW(decode_bdf(buf), std::runtime_error);
}

TEST(BinaryIo, TruncationDetected) {
  std::vector<FieldRecord> recs;
  recs.push_back({"a", make_field(3, 3, 3, 1.0f)});
  auto buf = encode_bdf(recs);
  buf.resize(buf.size() - 8);
  EXPECT_THROW(decode_bdf(buf), std::runtime_error);
}

TEST(BinaryIo, BadMagicDetected) {
  std::vector<FieldRecord> recs;
  recs.push_back({"a", make_field(2, 2, 2, 1.0f)});
  auto buf = encode_bdf(recs);
  buf[0] = 'X';
  EXPECT_THROW(decode_bdf(buf), std::runtime_error);
}

TEST(BinaryIo, FileRoundtrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "bda_test_io.bdf").string();
  std::vector<FieldRecord> recs;
  recs.push_back({"field", make_field(5, 4, 3, 2.0f)});
  write_bdf(path, recs);
  const auto back = read_bdf(path);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].data(4, 3, 2), recs[0].data(4, 3, 2));
  std::filesystem::remove(path);
}

TEST(BinaryIo, ReadMissingFileThrows) {
  EXPECT_THROW(read_bdf("/nonexistent/file.bdf"), std::runtime_error);
}

TEST(Crc32, KnownVectorAndSensitivity) {
  // "123456789" -> 0xCBF43926 is the canonical CRC-32 check value.
  const std::uint8_t s[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
  // Single-bit change flips the CRC.
  std::uint8_t a[4] = {1, 2, 3, 4};
  std::uint8_t b[4] = {1, 2, 3, 5};
  EXPECT_NE(crc32(a, 4), crc32(b, 4));
  // Empty input is well-defined.
  EXPECT_EQ(crc32(a, 0), 0u);
}

}  // namespace
}  // namespace bda
