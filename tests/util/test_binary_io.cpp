#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "util/binary_io.hpp"

namespace bda {
namespace {

Field3D<float> make_field(idx nx, idx ny, idx nz, float scale) {
  Field3D<float> f(nx, ny, nz, 0);
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j)
      for (idx k = 0; k < nz; ++k)
        f(i, j, k) = scale * float(i * 100 + j * 10 + k);
  return f;
}

TEST(BinaryIo, EncodeDecodeRoundtripPreservesData) {
  std::vector<FieldRecord> recs;
  recs.push_back({"qr", make_field(4, 5, 6, 1.0f)});
  recs.push_back({"reflectivity", make_field(3, 3, 2, -0.5f)});
  const auto buf = encode_bdf(recs);
  const auto back = decode_bdf(buf);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name, "qr");
  EXPECT_EQ(back[1].name, "reflectivity");
  for (idx i = 0; i < 4; ++i)
    for (idx j = 0; j < 5; ++j)
      for (idx k = 0; k < 6; ++k)
        EXPECT_EQ(back[0].data(i, j, k), recs[0].data(i, j, k));
}

TEST(BinaryIo, HaloIsNotSerialized) {
  Field3D<float> f(2, 2, 2, 2);
  f.fill(99.0f);
  f(0, 0, 0) = 1.0f;
  std::vector<FieldRecord> recs;
  recs.push_back({"x", std::move(f)});
  const auto back = decode_bdf(encode_bdf(recs));
  EXPECT_EQ(back[0].data.halo(), 0);
  EXPECT_EQ(back[0].data(0, 0, 0), 1.0f);
  EXPECT_EQ(back[0].data(1, 1, 1), 99.0f);
}

TEST(BinaryIo, CorruptedByteDetected) {
  std::vector<FieldRecord> recs;
  recs.push_back({"a", make_field(3, 3, 3, 1.0f)});
  auto buf = encode_bdf(recs);
  buf[buf.size() / 2] ^= 0xFF;
  EXPECT_THROW(decode_bdf(buf), std::runtime_error);
}

TEST(BinaryIo, TruncationDetected) {
  std::vector<FieldRecord> recs;
  recs.push_back({"a", make_field(3, 3, 3, 1.0f)});
  auto buf = encode_bdf(recs);
  buf.resize(buf.size() - 8);
  EXPECT_THROW(decode_bdf(buf), std::runtime_error);
}

TEST(BinaryIo, BadMagicDetected) {
  std::vector<FieldRecord> recs;
  recs.push_back({"a", make_field(2, 2, 2, 1.0f)});
  auto buf = encode_bdf(recs);
  buf[0] = 'X';
  EXPECT_THROW(decode_bdf(buf), std::runtime_error);
}

TEST(BinaryIo, FileRoundtrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "bda_test_io.bdf").string();
  std::vector<FieldRecord> recs;
  recs.push_back({"field", make_field(5, 4, 3, 2.0f)});
  write_bdf(path, recs);
  const auto back = read_bdf(path);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].data(4, 3, 2), recs[0].data(4, 3, 2));
  std::filesystem::remove(path);
}

TEST(BinaryIo, ReadMissingFileThrows) {
  EXPECT_THROW(read_bdf("/nonexistent/file.bdf"), std::runtime_error);
}

// Regression: write_bdf used to rewrite the product file in place, so a
// concurrent reader (the serving tier, the ops watcher polling T_fcst)
// could open a truncated file mid-write and fail the CRC.  With the
// temp+rename publication every read observes a complete file — this test
// hammers exactly that window and fails on the pre-fix in-place writer.
TEST(BinaryIo, ConcurrentReaderNeverSeesTornProductFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "bda_torn_read.bdf").string();
  // Big enough that an in-place rewrite has a wide torn window.
  auto recs_for = [](float scale) {
    std::vector<FieldRecord> recs;
    recs.push_back({"dbz", make_field(24, 24, 16, scale)});
    return recs;
  };
  write_bdf(path, recs_for(1.0f));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r)
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          const auto back = read_bdf(path);
          EXPECT_EQ(back.size(), 1u);
          reads.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::runtime_error&) {
          // CRC mismatch / truncation: the torn read the fix removes.
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });

  for (int w = 0; w < 60; ++w) write_bdf(path, recs_for(float(w + 2)));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u) << "reader observed a torn product file";
  EXPECT_GT(reads.load(), 0u);
  std::filesystem::remove(path);
}

TEST(BinaryIo, AtomicWriteLeavesNoTempFilesBehind) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "bda_atomic_write_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "out.bin").string();

  io::write_file_atomic(path, {1, 2, 3, 4}, "test");
  io::write_file_atomic(path, {5, 6, 7, 8}, "test");  // overwrite is atomic
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(e.path().string(), path);  // no .tmp.* droppings
  }
  EXPECT_EQ(entries, 1u);

  // Failure path: target directory vanishes -> throws, no silent no-op.
  fs::remove_all(dir);
  EXPECT_THROW(io::write_file_atomic(path, {9}, "test"), std::runtime_error);
}

TEST(Crc32, KnownVectorAndSensitivity) {
  // "123456789" -> 0xCBF43926 is the canonical CRC-32 check value.
  const std::uint8_t s[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
  // Single-bit change flips the CRC.
  std::uint8_t a[4] = {1, 2, 3, 4};
  std::uint8_t b[4] = {1, 2, 3, 5};
  EXPECT_NE(crc32(a, 4), crc32(b, 4));
  // Empty input is well-defined.
  EXPECT_EQ(crc32(a, 0), 0u);
}

}  // namespace
}  // namespace bda
