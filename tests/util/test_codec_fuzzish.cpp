// Randomized round-trip and malformed-input tests for the two byte-level
// serializers (RLE codec and the BDF container) plus the bda::io punning
// helpers.  Deterministic seeds, so failures reproduce; the real value is
// under the asan-ubsan preset, where every decode of a truncated or corrupt
// buffer is checked for out-of-bounds reads and UB rather than just for the
// right exception.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "util/binary_io.hpp"
#include "util/codec.hpp"

namespace bda {
namespace {

using Bytes = std::vector<std::uint8_t>;

std::uint32_t float_bits(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof u);
  return u;
}

// Random payload shaped like scan data: mostly long runs (clear air) with
// noisy patches, and the RLE escape byte 0xAB salted in.
Bytes random_payload(std::mt19937& rng, std::size_t max_len) {
  std::uniform_int_distribution<std::size_t> len_d(0, max_len);
  std::uniform_int_distribution<int> byte_d(0, 255);
  std::uniform_int_distribution<int> mode_d(0, 2);
  Bytes out;
  const std::size_t target = len_d(rng);
  while (out.size() < target) {
    switch (mode_d(rng)) {
      case 0: {  // run of one value (often the escape byte)
        std::uniform_int_distribution<std::size_t> run_d(1, 300);
        const std::uint8_t v =
            (byte_d(rng) < 64) ? std::uint8_t(0xAB) : std::uint8_t(byte_d(rng));
        out.insert(out.end(), run_d(rng), v);
        break;
      }
      case 1: {  // noise patch
        std::uniform_int_distribution<std::size_t> n_d(1, 40);
        for (std::size_t n = n_d(rng); n > 0; --n)
          out.push_back(std::uint8_t(byte_d(rng)));
        break;
      }
      default:  // single literal
        out.push_back(std::uint8_t(byte_d(rng)));
    }
  }
  out.resize(target);
  return out;
}

TEST(CodecFuzzish, RleRandomRoundtrip) {
  std::mt19937 rng(20260806u);
  for (int iter = 0; iter < 60; ++iter) {
    const Bytes in = random_payload(rng, 4096);
    const Bytes enc = encode_rle(in);
    EXPECT_EQ(decode_rle(enc), in) << "iter " << iter;
  }
}

TEST(CodecFuzzish, RleDegenerateInputs) {
  EXPECT_TRUE(encode_rle({}).empty());
  EXPECT_TRUE(decode_rle({}).empty());
  EXPECT_EQ(decode_rle(encode_rle({0x42})), Bytes{0x42});
  // A buffer of nothing but escape bytes stresses the escape-escaping path.
  const Bytes all_escape(1000, 0xAB);
  EXPECT_EQ(decode_rle(encode_rle(all_escape)), all_escape);
  // A run longer than the 16-bit run counter must split and still round-trip.
  const Bytes long_run(70000, 7);
  EXPECT_EQ(decode_rle(encode_rle(long_run)), long_run);
}

TEST(CodecFuzzish, RleTruncatedEncodingThrowsOrDecodesPrefix) {
  // Decoding is strictly left-to-right, so chopping the encoded stream at
  // any point must either throw (cut inside an escape sequence) or yield a
  // prefix of the original payload — never garbage, never a crash.
  std::mt19937 rng(99u);
  const Bytes in = random_payload(rng, 600);
  const Bytes enc = encode_rle(in);
  for (std::size_t cut = 0; cut < enc.size(); ++cut) {
    Bytes chopped(enc.begin(), enc.begin() + long(cut));
    try {
      const Bytes out = decode_rle(chopped);
      ASSERT_LE(out.size(), in.size()) << "cut " << cut;
      EXPECT_TRUE(std::equal(out.begin(), out.end(), in.begin()))
          << "cut " << cut;
    } catch (const std::runtime_error&) {
      // acceptable: truncated escape sequence
    }
  }
}

TEST(CodecFuzzish, RleDecodeRandomGarbageNeverCrashes) {
  std::mt19937 rng(7u);
  std::uniform_int_distribution<int> byte_d(0, 255);
  std::uniform_int_distribution<std::size_t> len_d(0, 512);
  for (int iter = 0; iter < 200; ++iter) {
    Bytes junk(len_d(rng));
    for (auto& b : junk) b = std::uint8_t(byte_d(rng));
    try {
      (void)decode_rle(junk);  // any outcome but UB/crash is fine
    } catch (const std::runtime_error&) {
    }
  }
}

Field3D<float> random_field(std::mt19937& rng) {
  std::uniform_int_distribution<idx> dim_d(1, 8);
  const idx nx = dim_d(rng), ny = dim_d(rng), nz = dim_d(rng);
  Field3D<float> f(nx, ny, nz, 0);
  std::uniform_real_distribution<float> val_d(-1e6f, 1e6f);
  std::uniform_int_distribution<int> special_d(0, 19);
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j)
      for (idx k = 0; k < nz; ++k) {
        switch (special_d(rng)) {
          case 0: f(i, j, k) = std::numeric_limits<float>::quiet_NaN(); break;
          case 1: f(i, j, k) = std::numeric_limits<float>::infinity(); break;
          case 2: f(i, j, k) = -std::numeric_limits<float>::infinity(); break;
          case 3: f(i, j, k) = -0.0f; break;
          case 4: f(i, j, k) = std::numeric_limits<float>::denorm_min(); break;
          default: f(i, j, k) = val_d(rng);
        }
      }
  return f;
}

TEST(CodecFuzzish, BdfRandomFieldsRoundtripBitExact) {
  std::mt19937 rng(31337u);
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<FieldRecord> recs;
    std::uniform_int_distribution<int> nrec_d(0, 3);
    const int nrec = nrec_d(rng);
    for (int r = 0; r < nrec; ++r) {
      std::string name;
      if (r != 0) {
        name = "f";
        name += std::to_string(r);
      }
      recs.push_back({std::move(name), random_field(rng)});
    }
    const auto back = decode_bdf(encode_bdf(recs));
    ASSERT_EQ(back.size(), recs.size()) << "iter " << iter;
    for (std::size_t r = 0; r < recs.size(); ++r) {
      EXPECT_EQ(back[r].name, recs[r].name);
      const auto& a = recs[r].data;
      const auto& b = back[r].data;
      ASSERT_EQ(b.nx(), a.nx());
      ASSERT_EQ(b.ny(), a.ny());
      ASSERT_EQ(b.nz(), a.nz());
      // Bitwise comparison: NaN payloads and signed zeros must survive.
      for (idx i = 0; i < a.nx(); ++i)
        for (idx j = 0; j < a.ny(); ++j)
          for (idx k = 0; k < a.nz(); ++k)
            EXPECT_EQ(float_bits(b(i, j, k)), float_bits(a(i, j, k)));
    }
  }
}

TEST(CodecFuzzish, BdfThroughRleTransferPathRoundtrips) {
  // The actual JIT-DT wire path: BDF-encode, RLE-compress, transfer,
  // RLE-decompress, BDF-decode.
  std::mt19937 rng(4242u);
  std::vector<FieldRecord> recs;
  recs.push_back({"reflectivity", random_field(rng)});
  recs.push_back({"doppler", random_field(rng)});
  const auto wire = encode_rle(encode_bdf(recs));
  const auto back = decode_bdf(decode_rle(wire));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name, "reflectivity");
  EXPECT_EQ(back[1].name, "doppler");
}

TEST(CodecFuzzish, BdfEveryTruncationThrows) {
  // The trailing CRC covers the whole stream, so *every* proper prefix must
  // be rejected — sweep them all and let ASan check the rejection paths.
  std::mt19937 rng(555u);
  std::vector<FieldRecord> recs;
  recs.push_back({"q", random_field(rng)});
  const auto buf = encode_bdf(recs);
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    Bytes chopped(buf.begin(), buf.begin() + long(cut));
    EXPECT_THROW(decode_bdf(chopped), std::runtime_error) << "cut " << cut;
  }
}

TEST(CodecFuzzish, BdfRandomBitflipsDetected) {
  std::mt19937 rng(808u);
  std::vector<FieldRecord> recs;
  recs.push_back({"x", random_field(rng)});
  const auto buf = encode_bdf(recs);
  std::uniform_int_distribution<std::size_t> pos_d(0, buf.size() - 1);
  std::uniform_int_distribution<int> bit_d(0, 7);
  for (int iter = 0; iter < 100; ++iter) {
    Bytes corrupt = buf;
    corrupt[pos_d(rng)] ^= std::uint8_t(1u << bit_d(rng));
    EXPECT_THROW(decode_bdf(corrupt), std::runtime_error) << "iter " << iter;
  }
}

TEST(CodecFuzzish, BdfZeroRecordsAndZeroDimensions) {
  // Zero records is valid and round-trips to empty.
  EXPECT_TRUE(decode_bdf(encode_bdf({})).empty());
  // A zero dimension can only come from a forged stream (Field3D will not
  // construct one); craft it with a valid CRC and check it is rejected.
  Bytes forged = {'B', 'D', 'F', '1'};
  io::put_scalar<std::uint32_t>(forged, 1);  // one record
  io::put_scalar<std::uint32_t>(forged, 0);  // empty name
  io::put_scalar<std::uint32_t>(forged, 0);  // nx = 0
  io::put_scalar<std::uint32_t>(forged, 1);  // ny
  io::put_scalar<std::uint32_t>(forged, 1);  // nz
  io::put_scalar<std::uint32_t>(forged, crc32(forged.data(), forged.size()));
  EXPECT_THROW(decode_bdf(forged), std::runtime_error);
}

TEST(CodecFuzzish, IoHelpersRoundtripAndRejectTruncation) {
  Bytes buf;
  io::put_scalar<std::uint32_t>(buf, 0xDEADBEEFu);
  io::put_scalar<float>(buf, std::numeric_limits<float>::quiet_NaN());
  io::put_scalar<double>(buf, -std::numeric_limits<double>::infinity());
  const float payload[3] = {1.5f, -0.0f, 3e38f};
  io::append_raw(buf, payload, 3);

  std::size_t pos = 0;
  EXPECT_EQ(io::take_scalar<std::uint32_t>(buf, pos), 0xDEADBEEFu);
  EXPECT_TRUE(std::isnan(io::take_scalar<float>(buf, pos)));
  EXPECT_EQ(io::take_scalar<double>(buf, pos),
            -std::numeric_limits<double>::infinity());
  float out[3] = {};
  io::take_raw(buf, pos, out, 3);
  EXPECT_EQ(float_bits(out[1]), float_bits(-0.0f));
  EXPECT_EQ(pos, buf.size());

  // One element past the end, in every flavour, must throw — not read.
  EXPECT_THROW(io::take_scalar<std::uint8_t>(buf, pos), std::runtime_error);
  std::size_t near_end = buf.size() - 2;
  EXPECT_THROW(io::take_scalar<std::uint32_t>(buf, near_end),
               std::runtime_error);
  float sink[4];
  std::size_t raw_pos = buf.size() - sizeof(float);
  EXPECT_THROW(io::take_raw(buf, raw_pos, sink, 4), std::runtime_error);
}

}  // namespace
}  // namespace bda
