#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/metrics.hpp"

namespace bda::util {
namespace {

TEST(Metrics, CountersAccumulate) {
  Metrics m;
  EXPECT_EQ(m.counter("x"), 0u);
  m.count("x");
  m.count("x", 4);
  m.count("y", 2);
  EXPECT_EQ(m.counter("x"), 5u);
  EXPECT_EQ(m.counter("y"), 2u);
  EXPECT_EQ(m.counter_names(), (std::vector<std::string>{"x", "y"}));
}

TEST(Metrics, ObserveAndPercentiles) {
  Metrics m;
  for (int i = 1; i <= 100; ++i) m.observe("t", double(i));
  EXPECT_EQ(m.samples("t"), 100u);
  EXPECT_DOUBLE_EQ(m.total("t"), 5050.0);
  EXPECT_NEAR(m.percentile("t", 50.0), 50.5, 0.6);
  EXPECT_NEAR(m.percentile("t", 97.0), 97.0, 1.1);
  EXPECT_DOUBLE_EQ(m.percentile("t", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(m.percentile("t", 100.0), 100.0);
  // Unknown series are empty, not errors.
  EXPECT_EQ(m.samples("missing"), 0u);
  EXPECT_DOUBLE_EQ(m.percentile("missing", 50.0), 0.0);
}

TEST(Metrics, TimerStatsSummary) {
  Metrics m;
  m.observe("stage", 1.0);
  m.observe("stage", 3.0);
  m.observe("stage", 2.0);
  const TimerStats s = m.timer_stats("stage");
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.total_s, 6.0);
  EXPECT_DOUBLE_EQ(s.mean_s, 2.0);
  EXPECT_DOUBLE_EQ(s.min_s, 1.0);
  EXPECT_DOUBLE_EQ(s.max_s, 3.0);
  EXPECT_DOUBLE_EQ(s.p50_s, 2.0);
}

TEST(Metrics, ScopedTimerRecordsElapsed) {
  Metrics m;
  {
    Metrics::ScopedTimer t(&m, "scope");
  }
  ASSERT_EQ(m.samples("scope"), 1u);
  EXPECT_GE(m.total("scope"), 0.0);
}

TEST(Metrics, ScopedTimerNullSinkIsNoop) {
  Metrics::ScopedTimer t(nullptr, "nothing");
  EXPECT_DOUBLE_EQ(t.stop(), 0.0);  // no crash, nothing recorded
}

TEST(Metrics, ScopedTimerStopIsIdempotent) {
  Metrics m;
  Metrics::ScopedTimer t(&m, "once");
  t.stop();
  EXPECT_DOUBLE_EQ(t.stop(), 0.0);
  EXPECT_EQ(m.samples("once"), 1u);
}

TEST(Metrics, JsonExportIsDeterministicAndStructured) {
  Metrics m;
  m.count("b", 2);
  m.count("a", 1);
  m.observe("z", 0.5);
  const std::string json = m.to_json();
  EXPECT_EQ(json, m.to_json());  // deterministic
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("\"p97_s\""), std::string::npos);
  // Sorted keys: "a" appears before "b".
  EXPECT_LT(json.find("\"a\""), json.find("\"b\""));
}

TEST(Metrics, ResetClearsEverything) {
  Metrics m;
  m.count("c");
  m.observe("t", 1.0);
  m.reset();
  EXPECT_EQ(m.counter("c"), 0u);
  EXPECT_EQ(m.samples("t"), 0u);
  EXPECT_TRUE(m.counter_names().empty());
  EXPECT_TRUE(m.timer_names().empty());
}

TEST(Metrics, TimerStatsDefinedAtSmallSampleCounts) {
  // The p97/p99 columns of every bench table must be well defined from the
  // very first cycle — empty and single-sample series are the regression
  // cases for the percentile index fix.
  Metrics m;
  const TimerStats empty = m.timer_stats("never");
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.p50_s, 0.0);
  EXPECT_DOUBLE_EQ(empty.p97_s, 0.0);
  EXPECT_DOUBLE_EQ(empty.p99_s, 0.0);
  EXPECT_DOUBLE_EQ(m.percentile("never", 99.0), 0.0);

  m.observe("one", 2.5);
  const TimerStats one = m.timer_stats("one");
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.min_s, 2.5);
  EXPECT_DOUBLE_EQ(one.max_s, 2.5);
  EXPECT_DOUBLE_EQ(one.p50_s, 2.5);
  EXPECT_DOUBLE_EQ(one.p97_s, 2.5);
  EXPECT_DOUBLE_EQ(one.p99_s, 2.5);
  EXPECT_DOUBLE_EQ(m.percentile("one", 99.0), 2.5);

  m.observe("two", 1.0);
  m.observe("two", 3.0);
  const TimerStats two = m.timer_stats("two");
  EXPECT_DOUBLE_EQ(two.p50_s, 2.0);
  EXPECT_DOUBLE_EQ(two.p99_s, 1.0 + 0.99 * 2.0);
  EXPECT_LE(two.p99_s, two.max_s);
}

// Minimal JSON structural validator: tracks strings (with escapes) and
// bracket balance.  Returns false on any raw control character, unbalanced
// bracket, or text outside a recognized token — enough to catch the
// unescaped-key export bug, which produced a stray quote mid-document.
bool json_is_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (i + 1 >= s.size()) return false;
        const char e = s[i + 1];
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
            e != 'n' && e != 'r' && e != 't' && e != 'u')
          return false;
        i += (e == 'u') ? 5 : 1;
        continue;
      }
      if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        // Metrics JSON has no boolean/null literals: outside strings the
        // only letters are a number's exponent marker.  Anything else is
        // string content that leaked past a broken quote.
        if ((c >= 'a' && c <= 'z' && c != 'e') ||
            (c >= 'A' && c <= 'Z' && c != 'E'))
          return false;
        break;
    }
  }
  return !in_string && stack.empty();
}

TEST(Metrics, JsonExportEscapesHostileKeys) {
  // Metric names are caller-chosen (bench labels interpolate paths, tile
  // keys, error strings) — names with quotes, backslashes or control
  // characters used to render the whole export unparseable.
  Metrics m;
  m.count("say \"hi\"");
  m.count("back\\slash");
  m.count("tab\tand\nnewline");
  m.count(std::string("nul\0byte", 8));
  m.observe("windows\\path\\\"quoted\"", 1.5);

  const std::string json = m.to_json();
  EXPECT_TRUE(json_is_well_formed(json)) << json;
  // Quotes and backslashes arrive escaped, not raw.
  EXPECT_NE(json.find("say \\\"hi\\\""), std::string::npos);
  EXPECT_NE(json.find("back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("tab\\tand\\nnewline"), std::string::npos);
  EXPECT_NE(json.find("\\u0000"), std::string::npos);
  // Sanity: the validator itself rejects the pre-fix output shape.
  EXPECT_FALSE(json_is_well_formed("{\"a \"b\": 1}"));
  EXPECT_FALSE(json_is_well_formed("{\"a\": 1"));
}

TEST(Metrics, JsonExportBenignKeysUnchanged) {
  Metrics m;
  m.count("serve.hit", 3);
  m.observe("serve.request", 0.001);
  const std::string json = m.to_json();
  EXPECT_TRUE(json_is_well_formed(json));
  EXPECT_NE(json.find("\"serve.hit\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"serve.request\""), std::string::npos);
}

TEST(Metrics, ConcurrentRecordingIsExact) {
  // One shared sink hammered from several threads — the cycle thread, the
  // regrid overlap task and the forecast workers all write concurrently in
  // the pipelined driver.  Counts must be exact, not approximate.
  Metrics m;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&m] {
      for (int i = 0; i < kIters; ++i) {
        m.count("shared");
        m.observe("samples", 1.0);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(m.counter("shared"), std::uint64_t(kThreads) * kIters);
  EXPECT_EQ(m.samples("samples"), std::size_t(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(m.total("samples"), double(kThreads) * kIters);
}

}  // namespace
}  // namespace bda::util
