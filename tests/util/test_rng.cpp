#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace bda {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMomentsCloseToStandard) {
  Rng rng(9);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, NormalScaledMeanStddev) {
  Rng rng(10);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, UniformIntWithinBound) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit in 1000 draws
}

TEST(Rng, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(12);
  // The paper picks 10 random analysis members out of 1000 each cycle.
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.sample_without_replacement(1000, 10);
    ASSERT_EQ(sample.size(), 10u);
    std::set<std::size_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), 10u);
    for (auto s : sample) EXPECT_LT(s, 1000u);
  }
}

TEST(Rng, SampleMoreThanPopulationReturnsAll) {
  Rng rng(13);
  const auto sample = rng.sample_without_replacement(5, 10);
  EXPECT_EQ(sample.size(), 5u);
  std::set<std::size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(Rng, SplitStreamsAreIndependentButDeterministic) {
  Rng a(99), b(99);
  Rng sa = a.split(), sb = b.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(sa.next_u64(), sb.next_u64());
  // The split stream is not the parent stream.
  Rng c(99);
  Rng sc = c.split();
  bool differs = false;
  for (int i = 0; i < 32; ++i)
    if (sc.next_u64() != c.next_u64()) differs = true;
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace bda
