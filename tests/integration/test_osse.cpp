// End-to-end OSSE (twin experiment) over the full stack: nature run ->
// radar simulator -> (JIT-DT) -> regridded obs -> LETKF -> cycled ensemble.
// This is the integration contract behind the Fig 6/7 benches, at a size
// that runs in seconds.
#include <gtest/gtest.h>

#include <cmath>

#include "verify/persistence.hpp"
#include "verify/scores.hpp"
#include "workflow/cycle.hpp"

namespace bda::workflow {
namespace {

using scale::Grid;

BdaSystemConfig osse_config() {
  BdaSystemConfig cfg;
  cfg.cycle_s = 30.0;
  cfg.n_members = 8;
  cfg.model.dt = 0.6f;
  cfg.model.physics_every = 10;
  cfg.model.enable_rad = false;

  cfg.scan.range_max = 9000.0f;
  cfg.scan.gate_length = 500.0f;
  cfg.scan.n_azimuth = 48;
  cfg.scan.n_elevation = 16;

  cfg.radar.radar_x = 5000.0f;
  cfg.radar.radar_y = 5000.0f;
  cfg.radar.radar_z = 50.0f;
  cfg.radar.block_az_from = cfg.radar.block_az_to = 0.0f;

  cfg.obsgen.clear_air = true;
  cfg.obsgen.clear_air_thin = 4;

  cfg.letkf.hloc = 1500.0f;
  cfg.letkf.vloc = 1500.0f;
  cfg.letkf.rtpp_alpha = 0.7f;
  cfg.letkf.z_min = 0.0f;
  cfg.letkf.z_max = 9000.0f;
  cfg.letkf.max_obs_per_grid = 64;

  cfg.perturb.theta_amp = 0.4f;
  cfg.perturb.qv_frac = 0.04f;
  cfg.perturb.wind_amp = 0.6f;
  cfg.perturb.zmax = 6000.0f;
  return cfg;
}

Grid osse_grid() {
  return Grid::stretched(20, 20, 12, 500.0f, 10000.0f, 200.0f, 1.1f);
}

double ensemble_mean_qr_rmse(BdaSystem& sys) {
  const auto mean = sys.ensemble().mean();
  return verify::rmse3(mean.rhoq[scale::QR], sys.nature().state().rhoq[scale::QR]);
}

TEST(Osse, CyclingAssimilationBeatsFreeRun) {
  Grid g = osse_grid();
  auto cfg = osse_config();

  // DA system: nature gets a storm; the ensemble gets weaker, displaced
  // storms and random perturbations.
  BdaSystem da(g, scale::convective_sounding(), cfg);
  da.perturb_ensemble();
  da.trigger_storm(6000.0f, 6000.0f, 3.5f, /*in_ensemble=*/true, 1500.0f);
  da.spinup(420.0);  // nature AND ensemble develop convection + spread

  // Free-running twin with identical construction/seed but no analysis.
  BdaSystem free(g, scale::convective_sounding(), osse_config());
  free.perturb_ensemble();
  free.trigger_storm(6000.0f, 6000.0f, 3.5f, true, 1500.0f);
  free.spinup(420.0);

  letkf::AnalysisStats last{};
  double nature_dbz = -100;
  for (int c = 0; c < 5; ++c) {
    const auto res = da.cycle();
    last = res.analysis;
    nature_dbz = std::max(nature_dbz, res.nature_max_dbz);
    // Free twin: nature + ensemble advance, no assimilation.
    free.nature().advance(30.0f);
    free.ensemble().advance(30.0f);
  }

  EXPECT_GT(nature_dbz, 15.0) << "nature run must actually rain";
  EXPECT_GT(last.n_obs_in, 50u);        // radar saw the storm
  EXPECT_GT(last.n_grid_updated, 20u);  // analyses happened

  const double rmse_da = ensemble_mean_qr_rmse(da);
  const double rmse_free = ensemble_mean_qr_rmse(free);
  EXPECT_LT(rmse_da, rmse_free)
      << "assimilation must pull the ensemble toward the truth";
}

TEST(Osse, EnsembleSpreadSurvivesCycling) {
  Grid g = osse_grid();
  BdaSystem sys(g, scale::convective_sounding(), osse_config());
  sys.perturb_ensemble();
  sys.trigger_storm(6000.0f, 6000.0f, 3.0f, true, 2000.0f);
  sys.spinup_nature(120.0);
  for (int c = 0; c < 3; ++c) sys.cycle();

  // Spread of theta at a mid-level point across members.
  double mean = 0;
  const int k = sys.ensemble().size();
  for (int m = 0; m < k; ++m)
    mean += double(sys.ensemble().member(m).theta(10, 10, 3));
  mean /= k;
  double var = 0;
  for (int m = 0; m < k; ++m) {
    const double d = double(sys.ensemble().member(m).theta(10, 10, 3)) - mean;
    var += d * d;
  }
  var /= (k - 1);
  EXPECT_GT(var, 1e-8) << "RTPP must prevent ensemble collapse";
  for (int m = 0; m < k; ++m)
    EXPECT_FALSE(sys.ensemble().member(m).has_nonfinite());
}

TEST(Osse, TransferredScanIdenticalToDirect) {
  Grid g = osse_grid();
  auto cfg = osse_config();
  cfg.transfer_scans = true;  // route scans through JIT-DT
  BdaSystem sys(g, scale::convective_sounding(), cfg);
  sys.perturb_ensemble();
  sys.trigger_storm(6000.0f, 6000.0f, 3.0f, true, 2000.0f);
  sys.spinup_nature(120.0);
  const auto res = sys.cycle();
  EXPECT_TRUE(res.transfer.success);
  EXPECT_TRUE(res.transfer.crc_ok);
  EXPECT_GT(res.transfer.bytes, 1000u);
  EXPECT_GT(res.n_obs, 0u);
}

TEST(Osse, ForecastMapsHaveExpectedCadence) {
  Grid g = osse_grid();
  auto cfg = osse_config();
  BdaSystem sys(g, scale::convective_sounding(), cfg);
  sys.trigger_storm(6000.0f, 6000.0f, 3.0f, false);
  sys.spinup_nature(300.0);
  // 5-minute forecast with 1-minute output from the nature state.
  const auto maps = run_forecast_maps(g, scale::convective_sounding(),
                                      cfg.model, sys.nature().state(),
                                      300.0, 60.0);
  ASSERT_EQ(maps.size(), 6u);  // t=0 + 5 outputs
  // Initial map matches the system's own view of the nature state.
  const auto direct = sys.reflectivity_map(sys.nature().state());
  EXPECT_NEAR(maps[0](10, 10), direct(10, 10), 1e-3f);
}

TEST(Osse, NestedOuterDomainDrivesInnerBoundary) {
  // Fig 3: the coarse outer domain (forced by the synthetic mesoscale
  // driver) supplies the inner lateral boundary on its own refresh cadence.
  Grid g = osse_grid();
  auto cfg = osse_config();
  cfg.use_outer_domain = true;
  cfg.outer_dx = 1500.0f;
  cfg.outer_refresh_s = 60.0;  // scaled 3-h cadence: refresh every 2 cycles
  BdaSystem sys(g, scale::convective_sounding(), cfg);
  sys.perturb_ensemble();
  sys.trigger_storm(6000.0f, 6000.0f, 3.5f, true, 1500.0f);
  sys.spinup(240.0);
  for (int c = 0; c < 4; ++c) {
    const auto res = sys.cycle();
    EXPECT_FALSE(sys.nature().state().has_nonfinite()) << "cycle " << c;
    (void)res;
  }
  for (int m = 0; m < sys.ensemble().size(); ++m)
    EXPECT_FALSE(sys.ensemble().member(m).has_nonfinite());
  // The mesoscale driver carries a mean wind; after boundary forcing the
  // inner-domain rim must have picked up inflow (non-zero momentum).
  real rim_momentum = 0;
  for (idx j = 0; j < g.ny(); ++j)
    rim_momentum = std::max(rim_momentum,
                            std::abs(sys.nature().state().momx(0, j, 2)));
  EXPECT_GT(rim_momentum, 0.1f);
}

TEST(Osse, AdaptiveInflationCyclesStably) {
  Grid g = osse_grid();
  auto cfg = osse_config();
  cfg.adaptive_inflation = true;
  BdaSystem sys(g, scale::convective_sounding(), cfg);
  sys.perturb_ensemble();
  sys.trigger_storm(6000.0f, 6000.0f, 3.5f, true, 1500.0f);
  sys.spinup(360.0);
  for (int c = 0; c < 3; ++c) {
    const auto res = sys.cycle();
    // Moments populated for the estimator.
    EXPECT_GT(res.analysis.moments.n_obs, 0u);
    EXPECT_GT(res.analysis.moments.mean_obs_var, 0.0);
  }
  for (int m = 0; m < sys.ensemble().size(); ++m)
    EXPECT_FALSE(sys.ensemble().member(m).has_nonfinite());
}

TEST(Osse, DualRadarCoverageAddsObservations) {
  // The paper's Expo 2025 direction: a second MP-PAWR site joins the
  // network; the cycle must assimilate both radars' observations, each
  // with its own Doppler beam geometry.
  Grid g = osse_grid();
  auto single = osse_config();
  auto dual = osse_config();
  pawr::RadarSimConfig second = dual.radar;
  second.radar_x = 2500.0f;
  second.radar_y = 7500.0f;
  second.block_az_from = second.block_az_to = 0.0f;
  dual.extra_radars.push_back(second);

  BdaSystem sys1(g, scale::convective_sounding(), single);
  sys1.perturb_ensemble();
  sys1.trigger_storm(6000.0f, 6000.0f, 3.5f, true, 1500.0f);
  sys1.spinup(420.0);
  BdaSystem sys2(g, scale::convective_sounding(), dual);
  sys2.perturb_ensemble();
  sys2.trigger_storm(6000.0f, 6000.0f, 3.5f, true, 1500.0f);
  sys2.spinup(420.0);

  const auto r1 = sys1.cycle();
  const auto r2 = sys2.cycle();
  EXPECT_GT(r2.n_obs, r1.n_obs + r1.n_obs / 4)
      << "second site must add substantial coverage";
  EXPECT_GT(r2.analysis.n_grid_updated, 0u);
  for (int m = 0; m < sys2.ensemble().size(); ++m)
    EXPECT_FALSE(sys2.ensemble().member(m).has_nonfinite());
}

TEST(Osse, NatureStormProducesObservableReflectivity) {
  Grid g = osse_grid();
  BdaSystem sys(g, scale::convective_sounding(), osse_config());
  sys.trigger_storm(6000.0f, 6000.0f, 3.5f, false);
  sys.spinup_nature(480.0);
  const auto scan = sys.observe_nature();
  float zmax = -100;
  for (std::size_t n = 0; n < scan.n_samples(); ++n)
    if (scan.flag[n] == pawr::kValid)
      zmax = std::max(zmax, scan.reflectivity[n]);
  EXPECT_GT(zmax, 20.0f);
}

}  // namespace
}  // namespace bda::workflow
