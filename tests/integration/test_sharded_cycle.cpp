// Sharded-cycle determinism contract (docs/SHARDING.md).
//
// A cycle run through hpc::ShardedEngine — member-sharded <1-2> advance,
// in-memory member->domain shuffle, domain-sharded <1-1> LETKF, halo
// exchange, domain->member return — must be BITWISE identical to the serial
// cycle() at every rank layout.  This is the integration gate for the whole
// sharded path: any nondeterministic reduction, mis-tagged message, wrong
// shuffle range or clock drift shows up as a byte mismatch here.  Runs under
// every sanitizer preset; the tsan build is the race gate for the shuffle.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "util/metrics.hpp"
#include "workflow/pipeline.hpp"

namespace bda::workflow {
namespace {

using scale::Grid;

// 12x12 divides by every tested layout (1x1, 2x1, 2x2, 4x2).
Grid sharded_grid() {
  return Grid::stretched(12, 12, 8, 500.0f, 8000.0f, 250.0f, 1.12f);
}

BdaSystemConfig sharded_config(int members) {
  BdaSystemConfig cfg;
  cfg.cycle_s = 6.0;  // scaled-down refresh: 10 model steps per cycle
  cfg.n_members = members;
  cfg.model.dt = 0.6f;
  cfg.model.physics_every = 10;
  cfg.model.enable_rad = false;

  cfg.scan.range_max = 7000.0f;
  cfg.scan.gate_length = 500.0f;
  cfg.scan.n_azimuth = 24;
  cfg.scan.n_elevation = 8;

  cfg.radar.radar_x = 3000.0f;
  cfg.radar.radar_y = 3000.0f;
  cfg.radar.radar_z = 50.0f;
  cfg.radar.block_az_from = cfg.radar.block_az_to = 0.0f;

  cfg.obsgen.clear_air = true;
  cfg.obsgen.clear_air_thin = 8;

  cfg.letkf.hloc = 1500.0f;
  cfg.letkf.vloc = 1500.0f;
  cfg.letkf.rtpp_alpha = 0.7f;
  cfg.letkf.z_min = 0.0f;
  cfg.letkf.z_max = 8000.0f;
  cfg.letkf.max_obs_per_grid = 32;

  cfg.perturb.theta_amp = 0.4f;
  cfg.perturb.qv_frac = 0.04f;
  cfg.perturb.wind_amp = 0.6f;
  cfg.perturb.zmax = 6000.0f;
  return cfg;
}

std::unique_ptr<BdaSystem> build_system(const Grid& g,
                                        const BdaSystemConfig& cfg) {
  auto sys = std::make_unique<BdaSystem>(g, scale::convective_sounding(), cfg);
  sys->perturb_ensemble();
  sys->trigger_storm(3000.0f, 3000.0f, 3.5f, /*in_ensemble=*/true, 1200.0f);
  sys->spinup(60.0);
  return sys;
}

void expect_bitwise_equal(const scale::State& a, const scale::State& b,
                          int member) {
  auto eq = [&](std::span<const real> x, std::span<const real> y,
                const char* what) {
    ASSERT_EQ(x.size(), y.size()) << what;
    EXPECT_EQ(std::memcmp(x.data(), y.data(), x.size() * sizeof(real)), 0)
        << "member " << member << " " << what;
  };
  eq(a.dens.raw(), b.dens.raw(), "dens");
  eq(a.momx.raw(), b.momx.raw(), "momx");
  eq(a.momy.raw(), b.momy.raw(), "momy");
  eq(a.momz.raw(), b.momz.raw(), "momz");
  eq(a.rhot.raw(), b.rhot.raw(), "rhot");
  for (int t = 0; t < scale::kNumTracers; ++t)
    eq(a.rhoq[t].raw(), b.rhoq[t].raw(), scale::tracer_name(t));
}

void expect_stats_equal(const letkf::AnalysisStats& a,
                        const letkf::AnalysisStats& b, int cycle) {
  EXPECT_EQ(a.n_obs_in, b.n_obs_in) << "cycle " << cycle;
  EXPECT_EQ(a.n_obs_qc, b.n_obs_qc) << "cycle " << cycle;
  EXPECT_EQ(a.n_grid_updated, b.n_grid_updated) << "cycle " << cycle;
  EXPECT_EQ(a.n_eig_fail, b.n_eig_fail) << "cycle " << cycle;
  EXPECT_EQ(a.n_weight_solved, b.n_weight_solved) << "cycle " << cycle;
  EXPECT_EQ(a.mean_local_obs, b.mean_local_obs) << "cycle " << cycle;
  EXPECT_EQ(a.mean_abs_innovation, b.mean_abs_innovation)
      << "cycle " << cycle;
}

// The contract itself: serial vs sharded at 1, 2 and 8 ranks (1x1 pins the
// degenerate self-neighbor layout, 2x1 the minimal genuine decomposition,
// 4x2 a two-dimensional one with corner traffic).
class ShardedCycleBitwise
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ShardedCycleBitwise, MatchesSerialCycle) {
  const auto [px, py] = GetParam();
  const Grid g = sharded_grid();
  const auto cfg = sharded_config(4);

  auto serial = build_system(g, cfg);
  auto sharded = build_system(g, cfg);
  sharded->enable_sharding(px, py);
  ASSERT_TRUE(sharded->sharded());

  for (int c = 0; c < 2; ++c) {
    const CycleResult rs = serial->cycle();
    const CycleResult rh = sharded->cycle();
    EXPECT_EQ(rs.n_obs, rh.n_obs) << "cycle " << c;
    expect_stats_equal(rs.analysis, rh.analysis, c);
    EXPECT_EQ(serial->time(), sharded->time()) << "cycle " << c;
    for (int m = 0; m < cfg.n_members; ++m)
      expect_bitwise_equal(serial->ensemble().member(m),
                           sharded->ensemble().member(m), m);
  }
  // Nothing may be left sitting in a mailbox after a clean cycle.
  EXPECT_GT(sharded->sharded_engine()->peak_mailbox_depth(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    RankLayouts, ShardedCycleBitwise,
    ::testing::Values(std::make_pair(1, 1), std::make_pair(2, 1),
                      std::make_pair(2, 2), std::make_pair(4, 2)));

// More members than ranks and members not divisible by ranks: block_of must
// split 5 members over 4 ranks as 2+1+1+1 without losing anyone.
TEST(ShardedCycle, UnevenMemberBlocksStayBitwise) {
  const Grid g = sharded_grid();
  const auto cfg = sharded_config(5);

  auto serial = build_system(g, cfg);
  auto sharded = build_system(g, cfg);
  sharded->enable_sharding(2, 2);

  const CycleResult rs = serial->cycle();
  const CycleResult rh = sharded->cycle();
  expect_stats_equal(rs.analysis, rh.analysis, 0);
  for (int m = 0; m < cfg.n_members; ++m)
    expect_bitwise_equal(serial->ensemble().member(m),
                         sharded->ensemble().member(m), m);
}

// Fewer members than ranks: some ranks own an empty block yet must still
// participate in every collective and drain every message.
TEST(ShardedCycle, EmptyMemberBlocksStayBitwise) {
  const Grid g = sharded_grid();
  const auto cfg = sharded_config(3);

  auto serial = build_system(g, cfg);
  auto sharded = build_system(g, cfg);
  sharded->enable_sharding(4, 2);  // 8 ranks, 3 members

  const CycleResult rs = serial->cycle();
  const CycleResult rh = sharded->cycle();
  expect_stats_equal(rs.analysis, rh.analysis, 0);
  for (int m = 0; m < cfg.n_members; ++m)
    expect_bitwise_equal(serial->ensemble().member(m),
                         sharded->ensemble().member(m), m);
}

TEST(ShardedCycle, IndivisibleGridRejected) {
  const Grid g = sharded_grid();  // 12x12
  auto sys = build_system(g, sharded_config(2));
  EXPECT_THROW(sys->enable_sharding(5, 1), std::invalid_argument);
  EXPECT_THROW(sys->enable_sharding(1, 7), std::invalid_argument);
}

// The staged API is unchanged by sharding, so PipelinedDriver must drive a
// sharded system exactly as a serial one — pipelining and sharding compose
// without costing a bit.
TEST(ShardedCycle, PipelinedDriverOverShardedSystemStaysBitwise) {
  const Grid g = sharded_grid();
  const auto cfg = sharded_config(4);
  constexpr std::size_t kCycles = 3;

  auto serial = build_system(g, cfg);
  std::vector<CycleResult> serial_results;
  for (std::size_t c = 0; c < kCycles; ++c)
    serial_results.push_back(serial->cycle());

  auto sharded = build_system(g, cfg);
  sharded->enable_sharding(2, 2);
  util::Metrics metrics;
  sharded->set_metrics(&metrics);
  PipelineConfig pcfg;
  pcfg.n_groups = 2;
  pcfg.product_every = 2;
  pcfg.forecast_lead_s = 2.0 * cfg.cycle_s;
  pcfg.forecast_out_every_s = cfg.cycle_s;
  PipelinedDriver driver(*sharded, pcfg, &metrics);
  const auto piped = driver.run(kCycles);
  driver.drain();

  ASSERT_EQ(piped.size(), kCycles);
  for (std::size_t c = 0; c < kCycles; ++c)
    expect_stats_equal(serial_results[c].analysis, piped[c].analysis,
                       int(c));
  for (int m = 0; m < cfg.n_members; ++m)
    expect_bitwise_equal(serial->ensemble().member(m),
                         sharded->ensemble().member(m), m);
  // The sharded metrics schema is live: per-rank advance timers plus the
  // max-over-ranks TTS series, one sample per cycle.
  EXPECT_EQ(metrics.samples("shard.advance_max"), kCycles);
  EXPECT_EQ(metrics.samples("shard.analysis_max"), kCycles);
  EXPECT_GT(metrics.counter("shard.shuffle_bytes"), 0u);
}

}  // namespace
}  // namespace bda::workflow
