#include <gtest/gtest.h>

#include <cmath>

#include "scale/boundary.hpp"

namespace bda::scale {
namespace {

Grid bgrid() { return Grid(12, 12, 8, 500.0f, 8000.0f); }

TEST(Davies, RimRelaxesInteriorUntouched) {
  Grid g = bgrid();
  const auto ref = ReferenceState::build(g, stable_sounding());
  State s(g), bc(g);
  s.init_from_reference(g, ref);
  bc.init_from_reference(g, ref);
  // Boundary target carries a 10 m/s wind; state starts calm.
  for (idx i = 0; i < 12; ++i)
    for (idx j = 0; j < 12; ++j)
      for (idx k = 0; k < 8; ++k) bc.momx(i, j, k) = ref.dens[k] * 10.0f;
  apply_davies(s, bc, 3, 1.0f, 2.0f);
  // Outermost cell moved toward bc; deep interior unchanged.
  EXPECT_GT(s.momx(0, 6, 2), 0.5f);
  EXPECT_EQ(s.momx(6, 6, 2), 0.0f);
  // Monotone ramp: cells closer to the edge relax harder.
  EXPECT_GT(s.momx(0, 6, 2), s.momx(1, 6, 2));
  EXPECT_GT(s.momx(1, 6, 2), s.momx(2, 6, 2));
  EXPECT_EQ(s.momx(3, 6, 2), 0.0f);  // beyond the rim width
}

TEST(Davies, LongRelaxationConvergesToBoundary) {
  Grid g = bgrid();
  const auto ref = ReferenceState::build(g, stable_sounding());
  State s(g), bc(g);
  s.init_from_reference(g, ref);
  bc.init_from_reference(g, ref);
  for (idx k = 0; k < 8; ++k) bc.rhot(0, 6, k) += 5.0f;
  for (int n = 0; n < 400; ++n) apply_davies(s, bc, 3, 1.0f, 2.0f);
  EXPECT_NEAR(s.rhot(0, 6, 2), bc.rhot(0, 6, 2), 0.01f);
}

TEST(Davies, AlphaClampedForSmallTau) {
  Grid g = bgrid();
  const auto ref = ReferenceState::build(g, stable_sounding());
  State s(g), bc(g);
  s.init_from_reference(g, ref);
  bc.init_from_reference(g, ref);
  bc.momy(0, 0, 0) = 8.0f;
  // dt >> tau: the blend must not overshoot past the boundary value.
  apply_davies(s, bc, 2, 100.0f, 1.0f);
  EXPECT_LE(s.momy(0, 0, 0), 8.0f + 1e-4f);
  EXPECT_NEAR(s.momy(0, 0, 0), 8.0f, 1e-3f);
}

TEST(SteadyDriver, ProvidesReferenceWithMeanWind) {
  Grid g = bgrid();
  const auto ref = ReferenceState::build(g, stable_sounding());
  SteadyDriver drv(g, ref, 5.0f, -3.0f);
  State bc(g);
  drv.fill(0.0, bc);
  EXPECT_NEAR(bc.momx(6, 6, 2) / ref.dens[2], 5.0f, 1e-4f);
  EXPECT_NEAR(bc.momy(6, 6, 2) / ref.dens[2], -3.0f, 1e-4f);
  // Time-invariant.
  State bc2(g);
  drv.fill(7200.0, bc2);
  EXPECT_EQ(bc.momx(3, 3, 1), bc2.momx(3, 3, 1));
}

TEST(MesoscaleDriver, PiecewiseConstantBetweenRefreshes) {
  Grid g = bgrid();
  const auto ref = ReferenceState::build(g, convective_sounding());
  SyntheticMesoscaleDriver drv(g, ref, 6.0f, 2.0f, 10800.0);
  State a(g), b(g), c(g);
  drv.fill(1000.0, a);
  drv.fill(9000.0, b);       // same 3-h window
  drv.fill(12000.0, c);      // next window
  EXPECT_EQ(a.momx(6, 6, 2), b.momx(6, 6, 2));
  EXPECT_NE(a.momx(6, 6, 2), c.momx(6, 6, 2));
}

TEST(MesoscaleDriver, MoistureSurgeStaysLowLevel) {
  Grid g = bgrid();
  const auto ref = ReferenceState::build(g, convective_sounding());
  SyntheticMesoscaleDriver drv(g, ref, 6.0f, 2.0f);
  State bc(g);
  // t = 10900 quantizes to the 10800-s refresh, where the 8-h moisture
  // surge is at sin(3*pi/4) != 0.
  drv.fill(10900.0, bc);
  // qv perturbed near the surface, untouched aloft (zc > 2 km).
  idx khigh = -1;
  for (idx k = 0; k < 8; ++k)
    if (g.zc(k) > 2500.0f) {
      khigh = k;
      break;
    }
  ASSERT_GE(khigh, 0);
  EXPECT_NE(bc.rhoq[QV](6, 6, 0), ref.dens[0] * ref.qv[0]);
  EXPECT_FLOAT_EQ(bc.rhoq[QV](6, 6, khigh),
                  ref.dens[khigh] * ref.qv[khigh]);
}

TEST(Nesting, ConstantFieldPreserved) {
  Grid coarse(12, 12, 8, 1500.0f, 8000.0f);
  Grid fine(12, 12, 8, 500.0f, 8000.0f);
  const auto refc = ReferenceState::build(coarse, stable_sounding());
  State sc(coarse), sf(fine);
  sc.init_from_reference(coarse, refc);
  nest_interpolate(sc, coarse, sf, fine);
  for (idx k = 0; k < 8; ++k) {
    EXPECT_NEAR(sf.dens(0, 0, k), refc.dens[k], 1e-4f);
    EXPECT_NEAR(sf.dens(11, 11, k), refc.dens[k], 1e-4f);
    EXPECT_NEAR(sf.rhot(6, 6, k), refc.dens[k] * refc.theta[k], 1e-2f);
  }
}

TEST(Nesting, LinearGradientReproduced) {
  Grid coarse(12, 12, 4, 1500.0f, 4000.0f);
  Grid fine(12, 12, 4, 500.0f, 4000.0f);
  State sc(coarse), sf(fine);
  sc.dens.fill(1.0f);
  sf.dens.fill(1.0f);
  // Linear in x: momx = x-coordinate (in km).
  for (idx i = 0; i < 12; ++i)
    for (idx j = 0; j < 12; ++j)
      for (idx k = 0; k < 4; ++k)
        sc.momx(i, j, k) = coarse.xc(i) / 1000.0f;
  nest_interpolate(sc, coarse, sf, fine);
  // Fine point at model x (centered offset applied) should match the ramp.
  const real x_off = 0.5f * (coarse.extent_x() - fine.extent_x());
  for (idx i = 2; i < 10; ++i) {
    const real expect = (x_off + fine.xc(i)) / 1000.0f;
    EXPECT_NEAR(sf.momx(i, 5, 2), expect, 0.02f) << "i=" << i;
  }
}

TEST(Nesting, FineDomainIsCenteredSubset) {
  // Values outside the fine footprint never enter: sample max.
  Grid coarse(9, 9, 2, 1500.0f, 2000.0f);
  Grid fine(9, 9, 2, 500.0f, 2000.0f);
  State sc(coarse), sf(fine);
  sc.dens.fill(1.0f);
  // Mark the coarse center cell only.
  sc.rhot(4, 4, 0) = 100.0f;
  nest_interpolate(sc, coarse, sf, fine);
  // The fine domain (4.5 km) sits centered in the 13.5-km coarse domain,
  // i.e. entirely within coarse cells 3..5; the hot cell (4) dominates the
  // fine center.
  EXPECT_GT(sf.rhot(4, 4, 0), 50.0f);
}

}  // namespace
}  // namespace bda::scale
