#include <gtest/gtest.h>

#include <cmath>

#include "scale/ensemble.hpp"

namespace bda::scale {
namespace {

Grid egrid() { return Grid(12, 12, 8, 500.0f, 8000.0f); }

ModelConfig light_config() {
  ModelConfig cfg;
  cfg.dt = 0.5f;
  cfg.enable_turb = cfg.enable_pbl = cfg.enable_sfc = cfg.enable_rad = false;
  return cfg;
}

TEST(SmoothNoise, HasUnitScaleAndSpatialCorrelation) {
  Rng rng(5);
  const auto f = smooth_noise(32, 32, 4, rng);
  double sum = 0, sum2 = 0;
  for (idx i = 0; i < 32; ++i)
    for (idx j = 0; j < 32; ++j) {
      sum += double(f(i, j));
      sum2 += double(f(i, j)) * double(f(i, j));
    }
  const double mean = sum / 1024.0;
  const double var = sum2 / 1024.0 - mean * mean;
  EXPECT_LT(std::abs(mean), 0.5);
  EXPECT_GT(var, 0.1);
  EXPECT_LT(var, 2.0);
  // Neighboring cells correlate (coarsen=4 smoothing).
  double corr = 0, norm = 0;
  for (idx i = 0; i + 1 < 32; ++i)
    for (idx j = 0; j < 32; ++j) {
      corr += (double(f(i, j)) - mean) * (double(f(i + 1, j)) - mean);
      norm += (double(f(i, j)) - mean) * (double(f(i, j)) - mean);
    }
  EXPECT_GT(corr / norm, 0.5);
}

TEST(Ensemble, MembersStartIdentical) {
  Grid g = egrid();
  Ensemble ens(g, convective_sounding(), light_config(), 4);
  EXPECT_EQ(ens.size(), 4);
  for (int m = 1; m < 4; ++m)
    EXPECT_EQ(ens.member(0).rhot(5, 5, 3), ens.member(m).rhot(5, 5, 3));
}

TEST(Ensemble, PerturbationCreatesSpreadBelowZmax) {
  Grid g = egrid();
  Ensemble ens(g, convective_sounding(), light_config(), 8);
  Rng rng(11);
  PerturbationSpec spec;
  spec.theta_amp = 0.5f;
  spec.zmax = 3000.0f;
  ens.perturb(spec, rng);
  // Spread at low level.
  double spread_low = 0, spread_high = 0;
  idx khigh = -1;
  for (idx k = 0; k < 8; ++k)
    if (g.zc(k) > 3500.0f) {
      khigh = k;
      break;
    }
  ASSERT_GE(khigh, 0);
  for (int m = 1; m < 8; ++m) {
    spread_low += double(std::abs(ens.member(m).theta(5, 5, 0) -
                                  ens.member(0).theta(5, 5, 0)));
    spread_high += double(std::abs(ens.member(m).theta(5, 5, khigh) -
                                   ens.member(0).theta(5, 5, khigh)));
  }
  EXPECT_GT(spread_low, 0.05);
  EXPECT_EQ(spread_high, 0.0);
}

TEST(Ensemble, MeanOfIdenticalMembersIsMember) {
  Grid g = egrid();
  Ensemble ens(g, convective_sounding(), light_config(), 3);
  const State mean = ens.mean();
  EXPECT_NEAR(mean.rhot(4, 4, 2), ens.member(0).rhot(4, 4, 2), 1e-3f);
  EXPECT_NEAR(mean.dens(4, 4, 2), ens.member(0).dens(4, 4, 2), 1e-6f);
}

TEST(Ensemble, MeanAveragesPerturbations) {
  Grid g = egrid();
  Ensemble ens(g, convective_sounding(), light_config(), 2);
  ens.member(0).rhot(4, 4, 2) += 2.0f;
  ens.member(1).rhot(4, 4, 2) -= 2.0f;
  const State mean = ens.mean();
  Ensemble fresh(g, convective_sounding(), light_config(), 1);
  EXPECT_NEAR(mean.rhot(4, 4, 2), fresh.member(0).rhot(4, 4, 2), 1e-3f);
}

TEST(Ensemble, AdvanceKeepsMembersFiniteAndDistinct) {
  Grid g = egrid();
  Ensemble ens(g, convective_sounding(), light_config(), 4);
  Rng rng(13);
  ens.perturb({}, rng);
  ens.advance(5.0f);
  EXPECT_DOUBLE_EQ(ens.time(), 5.0);
  for (int m = 0; m < 4; ++m)
    EXPECT_FALSE(ens.member(m).has_nonfinite());
  bool distinct = false;
  for (int m = 1; m < 4; ++m)
    if (ens.member(m).rhot(6, 6, 1) != ens.member(0).rhot(6, 6, 1))
      distinct = true;
  EXPECT_TRUE(distinct);
}

TEST(Ensemble, PrecipTrackedPerMember) {
  Grid g = egrid();
  Ensemble ens(g, convective_sounding(), light_config(), 2);
  // Put rain aloft in member 1 only.
  ens.member(1).rhoq[QR](5, 5, 5) = ens.member(1).dens(5, 5, 5) * 5e-3f;
  ens.advance(30.0f);
  EXPECT_EQ(ens.precip(0).interior_max(), 0.0f);
  // Member 1's rain is falling (it may not reach the ground in 30 s, but
  // the field moved down).
  EXPECT_LT(ens.member(1).q(QR, 5, 5, 5), 5e-3f);
}

}  // namespace
}  // namespace bda::scale
