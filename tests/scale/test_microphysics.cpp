#include <gtest/gtest.h>

#include <cmath>

#include "scale/microphysics.hpp"
#include "scale/reference.hpp"

namespace bda::scale {
namespace {

Grid mp_grid() { return Grid(4, 4, 12, 500.0f, 9000.0f); }

State saturated_state(const Grid& g, real rh_factor, real t_offset = 0.0f) {
  Sounding snd = convective_sounding();
  snd.theta_surface += t_offset;
  const auto ref = ReferenceState::build(g, snd);
  State s(g);
  s.init_from_reference(g, ref);
  for (idx i = 0; i < s.nx; ++i)
    for (idx j = 0; j < s.ny; ++j)
      for (idx k = 0; k < s.nz; ++k) {
        // Scale vapor toward/above saturation.
        const real qs =
            qsat_liquid(s.temperature(i, j, k), s.pressure(i, j, k));
        const real target = rh_factor * qs;
        const real dq = s.dens(i, j, k) * target - s.rhoq[QV](i, j, k);
        s.rhoq[QV](i, j, k) += dq;
        s.dens(i, j, k) += dq;
      }
  return s;
}

TEST(Microphysics, SupersaturationCondensesAndWarms) {
  Grid g = mp_grid();
  State s = saturated_state(g, 1.10f);
  const real th0 = s.theta(1, 1, 2);
  Microphysics mp(g);
  mp.step(s, 1.0f);
  EXPECT_GT(s.q(QC, 1, 1, 2), 1e-5f);        // cloud formed
  EXPECT_GT(s.theta(1, 1, 2), th0);          // latent heating
  // Post-adjustment vapor is ~saturated.  The residual is not Newton error:
  // the adjustment holds pressure fixed, but latent heating raises rho*theta
  // and hence the EOS pressure, shifting qsat by a few percent — the known
  // approximation of constant-pressure saturation adjustment.
  const real qs = qsat_liquid(s.temperature(1, 1, 2), s.pressure(1, 1, 2));
  EXPECT_NEAR(s.q(QV, 1, 1, 2) / qs, 1.0f, 0.06f);
}

TEST(Microphysics, SubsaturationNoCloudNoChange) {
  Grid g = mp_grid();
  State s = saturated_state(g, 0.5f);
  Microphysics mp(g);
  mp.step(s, 1.0f);
  EXPECT_EQ(s.q(QC, 2, 2, 3), 0.0f);
  EXPECT_EQ(s.q(QR, 2, 2, 3), 0.0f);
}

TEST(Microphysics, CloudEvaporatesInSubsaturatedAir) {
  Grid g = mp_grid();
  State s = saturated_state(g, 0.6f);
  // Inject cloud into dry air.
  s.rhoq[QC](1, 1, 2) = s.dens(1, 1, 2) * 1e-3f;
  const real th0 = s.theta(1, 1, 2);
  Microphysics mp(g);
  mp.step(s, 1.0f);
  EXPECT_LT(s.q(QC, 1, 1, 2), 1e-3f);  // some evaporated
  EXPECT_LT(s.theta(1, 1, 2), th0);    // evaporative cooling
}

TEST(Microphysics, PhaseChangesConserveWaterAndMass) {
  Grid g = mp_grid();
  State s = saturated_state(g, 1.15f);
  s.rhoq[QC](1, 1, 3) += s.dens(1, 1, 3) * 2e-3f;
  s.rhoq[QR](2, 2, 2) += s.dens(2, 2, 2) * 1e-3f;
  Microphysics mp(g);
  const double w0 = s.total_water();
  const double m0 = s.total_mass();
  // Phase changes only (sedimentation tested separately): use a state
  // snapshot, then run full step and re-add sedimented mass via precip.
  mp.step(s, 1.0f);
  const double precip_mass = [&] {
    // accumulated precip is kg/m2 == mm; convert back to column kg/m3*cells
    double total = 0;
    for (idx i = 0; i < 4; ++i)
      for (idx j = 0; j < 4; ++j)
        total += double(mp.accumulated_precip()(i, j));
    return total;
  }();
  // Total water in the air + what left through the surface, in consistent
  // units: precip is kg/m2; dividing by dz(0) would convert, but since
  // sedimentation subtracts flux*dt/dz from the lowest cell, the column
  // integral sum(rhoq * dz) is what is conserved.  Check with dz weights:
  (void)w0;
  (void)m0;
  (void)precip_mass;
  double col0 = 0, col1 = 0;
  // Rebuild a fresh state and compare dz-weighted water before/after.
  State s2 = saturated_state(g, 1.15f);
  s2.rhoq[QC](1, 1, 3) += s2.dens(1, 1, 3) * 2e-3f;
  s2.rhoq[QR](2, 2, 2) += s2.dens(2, 2, 2) * 1e-3f;
  for (idx i = 0; i < 4; ++i)
    for (idx j = 0; j < 4; ++j)
      for (idx k = 0; k < 12; ++k)
        for (int t = 0; t < kNumTracers; ++t)
          col0 += double(s2.rhoq[t](i, j, k)) * double(g.dz(k));
  Microphysics mp2(g);
  mp2.step(s2, 1.0f);
  for (idx i = 0; i < 4; ++i)
    for (idx j = 0; j < 4; ++j)
      for (idx k = 0; k < 12; ++k)
        for (int t = 0; t < kNumTracers; ++t)
          col1 += double(s2.rhoq[t](i, j, k)) * double(g.dz(k));
  double precip2 = 0;
  for (idx i = 0; i < 4; ++i)
    for (idx j = 0; j < 4; ++j)
      precip2 += double(mp2.accumulated_precip()(i, j));
  EXPECT_NEAR(col0, col1 + precip2, 1e-3 * col0);
}

TEST(Microphysics, AutoconversionNeedsThreshold) {
  Grid g = mp_grid();
  MicroParams p;
  p.ice_enabled = false;
  // Below threshold: no rain.
  State s = saturated_state(g, 0.99f);
  s.rhoq[QC](1, 1, 2) = s.dens(1, 1, 2) * (p.qc_auto_threshold * 0.5f);
  Microphysics mp(g, p);
  mp.step(s, 1.0f);
  EXPECT_LT(s.q(QR, 1, 1, 2), 1e-8f);
  // Above threshold: rain appears.
  State s2 = saturated_state(g, 0.99f);
  s2.rhoq[QC](1, 1, 2) = s2.dens(1, 1, 2) * (p.qc_auto_threshold * 5.0f);
  Microphysics mp2(g, p);
  mp2.step(s2, 10.0f);
  EXPECT_GT(s2.q(QR, 1, 1, 2), 1e-7f);
}

TEST(Microphysics, ColdCloudFreezesToIce) {
  Grid g(4, 4, 20, 500.0f, 14000.0f);
  State s = saturated_state(g, 0.9f);
  // Find a level colder than -40 C.
  idx kcold = -1;
  for (idx k = 0; k < 20; ++k)
    if (s.temperature(1, 1, k) < 230.0f) {
      kcold = k;
      break;
    }
  ASSERT_GE(kcold, 0);
  s.rhoq[QC](1, 1, kcold) = s.dens(1, 1, kcold) * 1e-3f;
  Microphysics mp(g);
  mp.step(s, 1.0f);
  EXPECT_LT(s.q(QC, 1, 1, kcold), 1e-6f);
  EXPECT_GT(s.q(QI, 1, 1, kcold), 0.5e-3f);
}

TEST(Microphysics, SnowMeltsAboveFreezing) {
  Grid g = mp_grid();
  State s = saturated_state(g, 0.9f, 5.0f);
  ASSERT_GT(s.temperature(1, 1, 0), 280.0f);
  s.rhoq[QS](1, 1, 0) = s.dens(1, 1, 0) * 1e-3f;
  Microphysics mp(g);
  const real th0 = s.theta(1, 1, 0);
  mp.step(s, 60.0f);
  EXPECT_LT(s.q(QS, 1, 1, 0), 1e-3f);
  EXPECT_GT(s.q(QR, 1, 1, 0), 1e-5f);
  EXPECT_LT(s.theta(1, 1, 0), th0);  // melting cools
}

TEST(Microphysics, IceDisabledKeepsColdPhaseEmpty) {
  Grid g(4, 4, 20, 500.0f, 14000.0f);
  MicroParams p;
  p.ice_enabled = false;
  State s = saturated_state(g, 1.2f);
  Microphysics mp(g, p);
  for (int n = 0; n < 10; ++n) mp.step(s, 5.0f);
  EXPECT_EQ(s.rhoq[QI].interior_max(), 0.0f);
  EXPECT_EQ(s.rhoq[QS].interior_max(), 0.0f);
  EXPECT_EQ(s.rhoq[QG].interior_max(), 0.0f);
}

TEST(Sedimentation, RainFallsAndReachesSurface) {
  Grid g = mp_grid();
  State s = saturated_state(g, 0.2f);  // dry: suppress phase changes
  const idx ktop = 8;
  s.rhoq[QR](2, 2, ktop) = s.dens(2, 2, ktop) * 3e-3f;
  MicroParams p;
  Microphysics mp(g, p);
  // Many short steps; rain at ~6-7 m/s should cross ~6 km in ~15 min.
  for (int n = 0; n < 90; ++n) mp.sediment_only(s, 10.0f);
  EXPECT_GT(mp.accumulated_precip()(2, 2), 0.05f);
  EXPECT_LT(s.q(QR, 2, 2, ktop), 3e-4f);  // source level emptied
}

TEST(Sedimentation, NoHydrometeorsNoPrecip) {
  Grid g = mp_grid();
  State s = saturated_state(g, 0.2f);
  Microphysics mp(g);
  mp.step(s, 30.0f);
  EXPECT_EQ(mp.accumulated_precip().interior_max(), 0.0f);
}

TEST(Reflectivity, MonotoneInRainContent) {
  Grid g = mp_grid();
  State s = saturated_state(g, 0.5f);
  s.rhoq[QR](1, 1, 1) = s.dens(1, 1, 1) * 1e-4f;
  const real z1 = cell_reflectivity_dbz(s, 1, 1, 1);
  s.rhoq[QR](1, 1, 1) = s.dens(1, 1, 1) * 1e-3f;
  const real z2 = cell_reflectivity_dbz(s, 1, 1, 1);
  s.rhoq[QR](1, 1, 1) = s.dens(1, 1, 1) * 5e-3f;
  const real z3 = cell_reflectivity_dbz(s, 1, 1, 1);
  EXPECT_LT(z1, z2);
  EXPECT_LT(z2, z3);
  // Heavy rain (5 g/kg) lands in the hazardous 40+ dBZ class of Fig 6.
  EXPECT_GT(z3, 40.0f);
}

TEST(Reflectivity, ClearAirIsFloor) {
  Grid g = mp_grid();
  State s = saturated_state(g, 0.5f);
  EXPECT_LE(cell_reflectivity_dbz(s, 0, 0, 0), -19.0f);
}

TEST(FallSpeed, ZeroWithoutHydrometeorsAndMassWeighted) {
  Grid g = mp_grid();
  State s = saturated_state(g, 0.5f);
  MicroParams p;
  EXPECT_EQ(cell_fall_speed(s, p, 0, 0, 0), 0.0f);
  s.rhoq[QR](0, 0, 0) = s.dens(0, 0, 0) * 2e-3f;
  const real vr = cell_fall_speed(s, p, 0, 0, 0);
  EXPECT_GT(vr, 2.0f);
  EXPECT_LE(vr, p.vt_max);  // cap binds for heavy rain
  // Adding slow snow reduces the mass-weighted speed.
  s.rhoq[QS](0, 0, 0) = s.dens(0, 0, 0) * 2e-3f;
  EXPECT_LT(cell_fall_speed(s, p, 0, 0, 0), vr);
}

}  // namespace
}  // namespace bda::scale
