#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "scale/kernels.hpp"
#include "util/rng.hpp"

namespace bda::scale {
namespace {

TEST(Upwind3, ReproducesConstantField) {
  EXPECT_FLOAT_EQ(upwind3(3.0f, 3.0f, 3.0f, 3.0f, 1.0f), 3.0f);
  EXPECT_FLOAT_EQ(upwind3(3.0f, 3.0f, 3.0f, 3.0f, -1.0f), 3.0f);
}

TEST(Upwind3, ExactForLinearField) {
  // Values at cells -1, 0, 1, 2 of a linear ramp q = a + b*i; the face
  // between 0 and 1 is at i = 0.5.
  const float a = 2.0f, b = 0.5f;
  const float qm1 = a - b, q0 = a, qp1 = a + b, qp2 = a + 2 * b;
  EXPECT_NEAR(upwind3(qm1, q0, qp1, qp2, 1.0f), a + 0.5f * b, 1e-6f);
  EXPECT_NEAR(upwind3(qm1, q0, qp1, qp2, -1.0f), a + 0.5f * b, 1e-6f);
}

TEST(Upwind3, BiasFollowsVelocitySign) {
  // For a field with curvature, positive velocity weights the upwind
  // (left) side.
  const float qm1 = 0, q0 = 0, qp1 = 1, qp2 = 4;  // convex
  const float plus = upwind3(qm1, q0, qp1, qp2, 1.0f);
  const float minus = upwind3(qm1, q0, qp1, qp2, -1.0f);
  EXPECT_NE(plus, minus);
}

TEST(Upwind1, PicksUpwindCell) {
  EXPECT_FLOAT_EQ(upwind1(1.0f, 2.0f, 3.0f), 1.0f);
  EXPECT_FLOAT_EQ(upwind1(1.0f, 2.0f, -3.0f), 2.0f);
  EXPECT_FLOAT_EQ(upwind1(1.0f, 2.0f, 0.0f), 1.0f);  // ties go upwind-left
}

template <typename T>
void check_tridiag(std::size_t n, Rng& rng) {
  std::vector<T> a(n), b(n), c(n), d(n), c2(n), d2(n);
  std::vector<T> x_true(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = T(rng.uniform(-0.4, 0.4));
    c[i] = T(rng.uniform(-0.4, 0.4));
    b[i] = T(2.0 + rng.uniform(0.0, 1.0));  // diagonally dominant
    x_true[i] = T(rng.uniform(-5.0, 5.0));
  }
  // Build d = A x_true.
  for (std::size_t i = 0; i < n; ++i) {
    T s = b[i] * x_true[i];
    if (i > 0) s += a[i] * x_true[i - 1];
    if (i + 1 < n) s += c[i] * x_true[i + 1];
    d[i] = s;
  }
  c2 = c;
  d2 = d;
  solve_tridiagonal<T>(a, b, c2, d2);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(double(d2[i]), double(x_true[i]), 1e-4)
        << "n=" << n << " i=" << i;
}

TEST(Tridiagonal, SolvesRandomDominantSystems) {
  Rng rng(321);
  for (std::size_t n : {1u, 2u, 3u, 10u, 60u, 200u}) check_tridiag<float>(n, rng);
}

TEST(Tridiagonal, DoublePrecisionTighter) {
  Rng rng(322);
  std::vector<double> a(60), b(60), c(60), d(60), x(60);
  for (std::size_t i = 0; i < 60; ++i) {
    a[i] = rng.uniform(-0.45, 0.45);
    c[i] = rng.uniform(-0.45, 0.45);
    b[i] = 2.0;
    x[i] = rng.uniform(-1, 1);
  }
  for (std::size_t i = 0; i < 60; ++i) {
    d[i] = b[i] * x[i];
    if (i > 0) d[i] += a[i] * x[i - 1];
    if (i + 1 < 60) d[i] += c[i] * x[i + 1];
  }
  solve_tridiagonal<double>(a, b, c, d);
  for (std::size_t i = 0; i < 60; ++i) EXPECT_NEAR(d[i], x[i], 1e-12);
}

TEST(Symv, MatchesManualProduct) {
  const std::size_t n = 4;
  std::array<float, 16> a{};
  std::array<float, 4> x{1, 2, 3, 4}, y{};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a[i * n + j] = float(i == j ? 2.0 : 0.5);
  symv<float>(n, a.data(), x.data(), y.data());
  // y_i = 2 x_i + 0.5 (sum - x_i) = 1.5 x_i + 5
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_FLOAT_EQ(y[i], 1.5f * x[i] + 5.0f);
}

TEST(Gemm, SmallKnownProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const float a[4] = {1, 2, 3, 4};
  const float b[4] = {5, 6, 7, 8};
  float c[4];
  gemm<float>(2, 2, 2, a, b, c);
  EXPECT_FLOAT_EQ(c[0], 19);
  EXPECT_FLOAT_EQ(c[1], 22);
  EXPECT_FLOAT_EQ(c[2], 43);
  EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(Gemm, RectangularShapes) {
  // (1x3) * (3x2)
  const float a[3] = {1, 2, 3};
  const float b[6] = {1, 0, 0, 1, 1, 1};
  float c[2];
  gemm<float>(1, 3, 2, a, b, c);
  EXPECT_FLOAT_EQ(c[0], 1 * 1 + 2 * 0 + 3 * 1);
  EXPECT_FLOAT_EQ(c[1], 1 * 0 + 2 * 1 + 3 * 1);
}

}  // namespace
}  // namespace bda::scale
