#include <gtest/gtest.h>

#include "scale/grid.hpp"

namespace bda::scale {
namespace {

TEST(Grid, UniformLevelsPartitionColumn) {
  Grid g(8, 8, 10, 500.0f, 10000.0f);
  EXPECT_FLOAT_EQ(g.zf(0), 0.0f);
  EXPECT_FLOAT_EQ(g.zf(10), 10000.0f);
  for (idx k = 0; k < 10; ++k) {
    EXPECT_FLOAT_EQ(g.dz(k), 1000.0f);
    EXPECT_FLOAT_EQ(g.zc(k), g.zf(k) + 500.0f);
  }
}

TEST(Grid, StretchedLevelsReachTopExactly) {
  Grid g = Grid::stretched(8, 8, 60, 500.0f, 16400.0f, 80.0f, 1.032f);
  EXPECT_NEAR(g.zf(60), 16400.0f, 0.5f);
  EXPECT_FLOAT_EQ(g.zf(0), 0.0f);
}

TEST(Grid, StretchedThicknessIsMonotone) {
  Grid g = Grid::stretched(4, 4, 30, 500.0f, 15000.0f, 100.0f, 1.05f);
  for (idx k = 1; k < 30; ++k) EXPECT_GT(g.dz(k), g.dz(k - 1));
}

TEST(Grid, StretchFactorOneIsUniform) {
  Grid g = Grid::stretched(4, 4, 10, 500.0f, 10000.0f, 77.0f, 1.0f);
  for (idx k = 0; k < 10; ++k) EXPECT_NEAR(g.dz(k), 1000.0f, 1e-2f);
}

TEST(Grid, FaceCenterConsistency) {
  Grid g = Grid::stretched(4, 4, 20, 500.0f, 12000.0f, 90.0f, 1.06f);
  for (idx k = 0; k < 20; ++k) {
    EXPECT_NEAR(g.zc(k), 0.5f * (g.zf(k) + g.zf(k + 1)), 1e-3f);
    EXPECT_NEAR(g.dz(k), g.zf(k + 1) - g.zf(k), 1e-3f);
  }
  for (idx k = 1; k < 20; ++k)
    EXPECT_NEAR(g.dzf(k), g.zc(k) - g.zc(k - 1), 1e-3f);
}

TEST(Grid, HorizontalCoordinates) {
  Grid g(16, 8, 4, 500.0f, 4000.0f);
  EXPECT_FLOAT_EQ(g.xc(0), 250.0f);
  EXPECT_FLOAT_EQ(g.xc(15), 7750.0f);
  EXPECT_FLOAT_EQ(g.extent_x(), 8000.0f);
  EXPECT_FLOAT_EQ(g.extent_y(), 4000.0f);
}

TEST(Grid, PaperInnerMatchesTable3) {
  // Table 3: 128 km x 128 km, 500-m spacing (256 x 256), 60 levels, 16.4-km
  // top, 30-s / 0.4-s -> geometry only here.
  Grid g = Grid::paper_inner();
  EXPECT_EQ(g.nx(), 256);
  EXPECT_EQ(g.ny(), 256);
  EXPECT_EQ(g.nz(), 60);
  EXPECT_FLOAT_EQ(g.dx(), 500.0f);
  EXPECT_NEAR(g.ztop(), 16400.0f, 1.0f);
  EXPECT_FLOAT_EQ(g.extent_x(), 128000.0f);
}

TEST(Grid, PaperOuterIsCoarser) {
  Grid o = Grid::paper_outer();
  Grid i = Grid::paper_inner();
  EXPECT_FLOAT_EQ(o.dx(), 1500.0f);
  EXPECT_GT(o.extent_x(), i.extent_x());
  EXPECT_EQ(o.nz(), i.nz());  // shared column for nesting
}

}  // namespace
}  // namespace bda::scale
