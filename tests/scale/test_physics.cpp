#include <gtest/gtest.h>

#include <cmath>

#include "scale/boundary_layer.hpp"
#include "scale/radiation.hpp"
#include "scale/surface.hpp"
#include "scale/turbulence.hpp"

namespace bda::scale {
namespace {

Grid phys_grid() { return Grid(8, 8, 12, 500.0f, 9000.0f); }

State base_state(const Grid& g, const Sounding& snd) {
  const auto ref = ReferenceState::build(g, snd);
  State s(g);
  s.init_from_reference(g, ref);
  s.fill_halos_periodic();
  return s;
}

// ---------- Smagorinsky turbulence ----------

TEST(Turbulence, NoMotionNoViscosity) {
  Grid g = phys_grid();
  State s = base_state(g, stable_sounding());
  Turbulence turb(g);
  turb.step(s, 2.0f);
  EXPECT_EQ(turb.k_m().interior_max(), 0.0f);
}

TEST(Turbulence, ShearGeneratesViscosity) {
  Grid g = phys_grid();
  State s = base_state(g, stable_sounding());
  // Strong horizontal shear in u.
  for (idx i = -Grid::kHalo; i < s.nx + Grid::kHalo; ++i)
    for (idx j = -Grid::kHalo; j < s.ny + Grid::kHalo; ++j)
      for (idx k = 0; k < s.nz; ++k)
        s.momx(i, j, k) = s.dens(i, j, k) * 10.0f *
                          std::sin(2.0f * real(M_PI) * real((j % s.ny + s.ny) % s.ny) / 8.0f);
  Turbulence turb(g);
  turb.step(s, 2.0f);
  EXPECT_GT(turb.k_m().interior_max(), 1.0f);
}

TEST(Turbulence, DiffusionSmoothsScalarExtremum) {
  Grid g = phys_grid();
  State s = base_state(g, stable_sounding());
  // Shear so K > 0, plus a theta spike.
  for (idx i = -Grid::kHalo; i < s.nx + Grid::kHalo; ++i)
    for (idx j = -Grid::kHalo; j < s.ny + Grid::kHalo; ++j)
      for (idx k = 0; k < s.nz; ++k)
        s.momx(i, j, k) =
            s.dens(i, j, k) * 8.0f * real((j % 2 == 0) ? 1 : -1);
  const real spike = 5.0f;
  s.rhot(4, 4, 5) += s.dens(4, 4, 5) * spike;
  const real th0 = s.theta(4, 4, 5);
  s.fill_halos_periodic();
  Turbulence turb(g);
  for (int n = 0; n < 5; ++n) turb.step(s, 2.0f);
  EXPECT_LT(s.theta(4, 4, 5), th0);             // peak decayed
  EXPECT_GT(s.theta(4, 4, 5), th0 - spike);     // but not overshooting
}

TEST(Turbulence, ViscosityCapHolds) {
  Grid g = phys_grid();
  State s = base_state(g, stable_sounding());
  TurbParams p;
  p.k_max = 50.0f;
  for (idx i = -Grid::kHalo; i < s.nx + Grid::kHalo; ++i)
    for (idx j = -Grid::kHalo; j < s.ny + Grid::kHalo; ++j)
      for (idx k = 0; k < s.nz; ++k)
        s.momx(i, j, k) = s.dens(i, j, k) * 50.0f *
                          real((i % 2 == 0) ? 1 : -1);
  Turbulence turb(g, p);
  turb.step(s, 1.0f);
  EXPECT_LE(turb.k_m().interior_max(), 50.0f);
}

// ---------- TKE boundary layer ----------

TEST(BoundaryLayer, TkeStartsAtFloor) {
  Grid g = phys_grid();
  BoundaryLayer pbl(g);
  EXPECT_FLOAT_EQ(pbl.tke()(3, 3, 3), PblParams().tke_min);
}

TEST(BoundaryLayer, ShearProducesTke) {
  Grid g = phys_grid();
  State s = base_state(g, stable_sounding());
  // Strong vertical shear (0.05 /s) so shear production dominates the
  // stable sounding's buoyancy destruction.
  for (idx i = -Grid::kHalo; i < s.nx + Grid::kHalo; ++i)
    for (idx j = -Grid::kHalo; j < s.ny + Grid::kHalo; ++j)
      for (idx k = 0; k < s.nz; ++k)
        s.momx(i, j, k) = s.dens(i, j, k) * (2.0f + 0.05f * g.zc(k));
  BoundaryLayer pbl(g);
  for (int n = 0; n < 10; ++n) pbl.step(s, 5.0f);
  EXPECT_GT(pbl.tke()(4, 4, 3), 2.0f * PblParams().tke_min);
}

TEST(BoundaryLayer, StableStratificationSuppressesTke) {
  Grid g = phys_grid();
  // Strongly stable sounding, no shear: buoyancy destroys TKE.
  Sounding snd = stable_sounding();
  snd.theta_lapse_pbl = 0.02f;
  snd.theta_lapse_free = 0.02f;
  State s = base_state(g, snd);
  BoundaryLayer pbl(g);
  pbl.tke().fill(0.5f);  // seed turbulence
  for (int n = 0; n < 20; ++n) pbl.step(s, 5.0f);
  EXPECT_LT(pbl.tke()(4, 4, 4), 0.5f);
}

TEST(BoundaryLayer, MixingErodesSurfaceGradient) {
  Grid g = phys_grid();
  State s = base_state(g, stable_sounding());
  // Superadiabatic near-surface layer (hot bottom cell).
  s.rhot(4, 4, 0) += s.dens(4, 4, 0) * 3.0f;
  BoundaryLayer pbl(g);
  pbl.tke().fill(1.0f);  // vigorous turbulence
  const real grad0 = s.theta(4, 4, 0) - s.theta(4, 4, 1);
  for (int n = 0; n < 10; ++n) pbl.step(s, 10.0f);
  const real grad1 = s.theta(4, 4, 0) - s.theta(4, 4, 1);
  EXPECT_LT(grad1, grad0);
}

// ---------- Beljaars surface fluxes ----------

TEST(Surface, StabilityFactorsBehave) {
  // Neutral = 1; stable < 1; unstable > 1; monotone.
  EXPECT_NEAR(Surface::stability_factor_momentum(0.0f), 1.0f, 1e-5f);
  EXPECT_NEAR(Surface::stability_factor_heat(0.0f), 1.0f, 1e-5f);
  EXPECT_LT(Surface::stability_factor_momentum(0.5f), 0.5f);
  EXPECT_GT(Surface::stability_factor_momentum(-0.5f), 1.0f);
  EXPECT_LT(Surface::stability_factor_heat(1.0f),
            Surface::stability_factor_heat(0.1f));
  EXPECT_GT(Surface::stability_factor_heat(-1.0f),
            Surface::stability_factor_heat(-0.1f));
  // Floors prevent total decoupling.
  EXPECT_GT(Surface::stability_factor_momentum(100.0f), 0.0f);
}

TEST(Surface, WarmSurfaceHeatsAndMoistensLowestLayer) {
  Grid g = phys_grid();
  State s = base_state(g, stable_sounding());
  // Wind so the bulk fluxes act.
  for (idx i = -Grid::kHalo; i < s.nx + Grid::kHalo; ++i)
    for (idx j = -Grid::kHalo; j < s.ny + Grid::kHalo; ++j)
      s.momx(i, j, 0) = s.dens(i, j, 0) * 5.0f;
  SurfaceParams sp;
  sp.t_surface = 310.0f;  // much warmer than the air
  sp.wetness = 1.0f;
  Surface sfc(g, sp);
  const real th0 = s.theta(4, 4, 0);
  const real qv0 = s.q(QV, 4, 4, 0);
  sfc.step(s, 60.0f);
  EXPECT_GT(s.theta(4, 4, 0), th0);
  EXPECT_GT(s.q(QV, 4, 4, 0), qv0);
}

TEST(Surface, DragDeceleratesWind) {
  Grid g = phys_grid();
  State s = base_state(g, stable_sounding());
  for (idx i = -Grid::kHalo; i < s.nx + Grid::kHalo; ++i)
    for (idx j = -Grid::kHalo; j < s.ny + Grid::kHalo; ++j)
      s.momx(i, j, 0) = s.dens(i, j, 0) * 10.0f;
  Surface sfc(g, {});
  const real u0 = std::abs(s.momx(4, 4, 0));
  sfc.step(s, 60.0f);
  EXPECT_LT(std::abs(s.momx(4, 4, 0)), u0);
  EXPECT_GT(s.momx(4, 4, 0), 0.0f);  // implicit drag cannot reverse flow
}

TEST(Surface, FeedsTkeProduction) {
  Grid g = phys_grid();
  State s = base_state(g, stable_sounding());
  for (idx i = -Grid::kHalo; i < s.nx + Grid::kHalo; ++i)
    for (idx j = -Grid::kHalo; j < s.ny + Grid::kHalo; ++j)
      s.momx(i, j, 0) = s.dens(i, j, 0) * 8.0f;
  BoundaryLayer pbl(g);
  Surface sfc(g, {});
  const real e0 = pbl.tke()(4, 4, 0);
  sfc.step(s, 10.0f, &pbl);
  EXPECT_GT(pbl.tke()(4, 4, 0), e0);
}

// ---------- Radiation ----------

TEST(Radiation, ClearSkyCoolsTroposphere) {
  Grid g = phys_grid();
  State s = base_state(g, stable_sounding());
  Radiation rad(g);
  const real th0 = s.theta(4, 4, 3);
  rad.step(s, 3600.0f);  // one hour
  const real dth = s.theta(4, 4, 3) - th0;
  EXPECT_LT(dth, 0.0f);
  EXPECT_GT(dth, -0.2f);  // ~1.5 K/day => ~0.06 K/h
}

TEST(Radiation, CloudTopGetsExtraCooling) {
  Grid g = phys_grid();
  State s = base_state(g, stable_sounding());
  s.rhoq[QC](4, 4, 6) = s.dens(4, 4, 6) * 5e-4f;  // cloud at level 6
  Radiation rad(g);
  State clear = base_state(g, stable_sounding());
  rad.step(s, 3600.0f);
  Radiation rad2(g);
  rad2.step(clear, 3600.0f);
  const real dth_cloud = s.theta(4, 4, 6) - 0;  // compare cooling amounts
  const real dth_clear = clear.theta(4, 4, 6) - 0;
  EXPECT_LT(dth_cloud, dth_clear);  // cloudy column cooled more at cloud top
}

}  // namespace
}  // namespace bda::scale
