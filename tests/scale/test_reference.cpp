#include <gtest/gtest.h>

#include <cmath>

#include "scale/reference.hpp"

namespace bda::scale {
namespace {

using C = Constants<real>;

TEST(Sounding, ThetaIncreasesWithHeight) {
  for (const Sounding& s : {stable_sounding(), convective_sounding()}) {
    real prev = s.theta(0.0f);
    for (real z = 500.0f; z <= 16000.0f; z += 500.0f) {
      const real th = s.theta(z);
      EXPECT_GE(th, prev - 1e-3f) << "z=" << z;
      prev = th;
    }
  }
}

TEST(Sounding, ConvectiveHasMoistWellMixedBoundaryLayer) {
  const Sounding s = convective_sounding();
  // Well-mixed: theta nearly constant in the PBL.
  EXPECT_NEAR(s.theta(0.0f), s.theta(1000.0f), 0.1f);
  // Moist near the surface, drier aloft.
  EXPECT_GT(s.rh(100.0f), 0.8f);
  EXPECT_LT(s.rh(9000.0f), s.rh(100.0f));
}

TEST(Sounding, StratosphereIsStronglyStable) {
  const Sounding s = convective_sounding();
  const real below = s.theta(11500.0f) - s.theta(11000.0f);
  const real above = s.theta(14500.0f) - s.theta(14000.0f);
  EXPECT_GT(above, 2.0f * below);
}

TEST(SaturationVapor, KnownValuesAndMonotonicity) {
  // es(0 C) ~ 611 Pa; es(20 C) ~ 2339 Pa; es(-20 C over ice) ~ 103 Pa.
  EXPECT_NEAR(esat_liquid(273.15f), 611.0f, 5.0f);
  EXPECT_NEAR(esat_liquid(293.15f), 2339.0f, 40.0f);
  EXPECT_NEAR(esat_ice(253.15f), 103.0f, 5.0f);
  for (real t = 230.0f; t < 310.0f; t += 5.0f)
    EXPECT_GT(esat_liquid(t + 5.0f), esat_liquid(t));
}

TEST(SaturationVapor, IceBelowLiquidBelowFreezing) {
  for (real t = 230.0f; t < 273.0f; t += 5.0f)
    EXPECT_LT(esat_ice(t), esat_liquid(t));
}

TEST(SaturationVapor, QsatDecreasesWithPressure) {
  EXPECT_GT(qsat_liquid(290.0f, 80000.0f), qsat_liquid(290.0f, 100000.0f));
}

TEST(ReferenceState, SurfacePressureHonored) {
  Grid g(4, 4, 40, 500.0f, 16000.0f);
  const auto ref = ReferenceState::build(g, stable_sounding(), 100000.0f);
  // Lowest level sits at zc(0) = 200 m; p there should be a bit below ps.
  EXPECT_LT(ref.pres[0], 100000.0f);
  EXPECT_GT(ref.pres[0], 95000.0f);
}

TEST(ReferenceState, PressureAndDensityDecreaseUpward) {
  Grid g = Grid::stretched(4, 4, 60, 500.0f, 16400.0f, 80.0f, 1.032f);
  const auto ref = ReferenceState::build(g, convective_sounding());
  for (idx k = 1; k < 60; ++k) {
    EXPECT_LT(ref.pres[k], ref.pres[k - 1]);
    EXPECT_LT(ref.dens[k], ref.dens[k - 1]);
  }
  // Scale height sanity: pressure at ~16 km is 8-12% of surface.
  EXPECT_LT(ref.pres[59], 0.15f * ref.pres[0]);
  EXPECT_GT(ref.pres[59], 0.05f * ref.pres[0]);
}

TEST(ReferenceState, HydrostaticBalanceDiscretely) {
  Grid g(4, 4, 50, 500.0f, 15000.0f);
  const auto ref = ReferenceState::build(g, stable_sounding());
  // dp/dz ~ -rho g between adjacent levels (to a few per mille).
  for (idx k = 1; k < 50; ++k) {
    const real dpdz = (ref.pres[k] - ref.pres[k - 1]) / g.dzf(k);
    const real rho_face = 0.5f * (ref.dens[k] + ref.dens[k - 1]);
    EXPECT_NEAR(dpdz, -rho_face * C::grav, 0.012f * rho_face * C::grav)
        << "k=" << k;
  }
}

TEST(ReferenceState, IdealGasConsistency) {
  Grid g(4, 4, 30, 500.0f, 12000.0f);
  const auto ref = ReferenceState::build(g, convective_sounding());
  for (idx k = 0; k < 30; ++k) {
    const real tem = ref.theta[k] *
                     std::pow(ref.pres[k] / C::pres00, C::kappa);
    const real rho_expected =
        ref.pres[k] / (C::rdry * tem * (1.0f + 0.608f * ref.qv[k]));
    EXPECT_NEAR(ref.dens[k], rho_expected, 1e-3f * rho_expected);
  }
}

TEST(ReferenceState, MoistureFollowsSoundingRh) {
  Grid g(4, 4, 30, 500.0f, 12000.0f);
  const Sounding s = convective_sounding();
  const auto ref = ReferenceState::build(g, s);
  // qv should be close to rh * qsat at each level.
  for (idx k = 0; k < 30; k += 5) {
    const real tem = ref.theta[k] *
                     std::pow(ref.pres[k] / C::pres00, C::kappa);
    const real qs = qsat_liquid(tem, ref.pres[k]);
    EXPECT_NEAR(ref.qv[k], s.rh(g.zc(k)) * qs, 0.05f * qs) << "k=" << k;
  }
}

}  // namespace
}  // namespace bda::scale
