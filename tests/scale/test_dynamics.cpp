#include <gtest/gtest.h>

#include <cmath>

#include "scale/dynamics.hpp"
#include "scale/model.hpp"

namespace bda::scale {
namespace {

Grid test_grid() {
  return Grid::stretched(16, 16, 16, 500.0f, 12000.0f, 150.0f, 1.08f);
}

DynParams dyn_only() {
  DynParams p;
  p.lateral_bc = LateralBc::kPeriodic;
  return p;
}

real max_abs_momz(const State& s) {
  real m = 0;
  for (idx i = 0; i < s.nx; ++i)
    for (idx j = 0; j < s.ny; ++j)
      for (idx k = 0; k <= s.nz; ++k)
        m = std::max(m, std::abs(s.momz(i, j, k)));
  return m;
}

TEST(Dynamics, RestingReferenceStaysExactlyAtRest) {
  Grid g = test_grid();
  const auto ref = ReferenceState::build(g, stable_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  Dynamics dyn(g, ref, dyn_only());
  for (int n = 0; n < 20; ++n) dyn.step(s, 0.5f);
  EXPECT_EQ(max_abs_momz(s), 0.0f);
  real umax = 0;
  for (idx i = 0; i < s.nx; ++i)
    for (idx j = 0; j < s.ny; ++j)
      for (idx k = 0; k < s.nz; ++k)
        umax = std::max(umax, std::abs(s.momx(i, j, k)));
  EXPECT_EQ(umax, 0.0f);
}

// On the stretched grid the conserved quantity is the volume integral, i.e.
// the dz-weighted sum (horizontal cells are uniform).
double weighted_sum(const RField3D& f, const Grid& g) {
  double s = 0;
  for (idx i = 0; i < f.nx(); ++i)
    for (idx j = 0; j < f.ny(); ++j)
      for (idx k = 0; k < f.nz(); ++k)
        s += double(f(i, j, k)) * double(g.dz(k));
  return s;
}

TEST(Dynamics, MassExactlyConservedPeriodic) {
  Grid g = test_grid();
  const auto ref = ReferenceState::build(g, stable_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  add_thermal_bubble(s, g, 4000, 4000, 1500, 1500, 800, 2.0f);
  Dynamics dyn(g, ref, dyn_only());
  const double m0 = weighted_sum(s.dens, g);
  for (int n = 0; n < 40; ++n) dyn.step(s, 0.5f);
  const double m1 = weighted_sum(s.dens, g);
  EXPECT_NEAR(m1 / m0, 1.0, 5e-6);  // float round-off only
}

TEST(Dynamics, TracerMassConservedPeriodic) {
  Grid g = test_grid();
  const auto ref = ReferenceState::build(g, convective_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  add_thermal_bubble(s, g, 4000, 4000, 1500, 1500, 800, 2.0f);
  Dynamics dyn(g, ref, dyn_only());
  const double w0 = weighted_sum(s.rhoq[QV], g);
  for (int n = 0; n < 40; ++n) dyn.step(s, 0.5f);
  EXPECT_NEAR(weighted_sum(s.rhoq[QV], g) / w0, 1.0, 2e-5);
}

TEST(Dynamics, WarmBubbleRises) {
  Grid g = test_grid();
  const auto ref = ReferenceState::build(g, stable_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  add_thermal_bubble(s, g, 4000, 4000, 1000, 1200, 600, 2.0f);
  Dynamics dyn(g, ref, dyn_only());
  for (int n = 0; n < 120; ++n) dyn.step(s, 0.5f);
  // Updraft develops above the bubble center.
  real wmax = 0;
  for (idx k = 1; k < s.nz; ++k)
    wmax = std::max(wmax, s.momz(8, 8, k));
  EXPECT_GT(wmax, 0.1f);
  EXPECT_FALSE(s.has_nonfinite());
}

TEST(Dynamics, ColdBubbleSinks) {
  Grid g = test_grid();
  const auto ref = ReferenceState::build(g, stable_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  add_thermal_bubble(s, g, 4000, 4000, 2500, 1200, 600, -2.0f);
  Dynamics dyn(g, ref, dyn_only());
  for (int n = 0; n < 120; ++n) dyn.step(s, 0.5f);
  real wmin = 0;
  for (idx k = 1; k < s.nz; ++k) wmin = std::min(wmin, s.momz(8, 8, k));
  EXPECT_LT(wmin, -0.1f);
}

TEST(Dynamics, UniformWindAdvectsBubblePeriodically) {
  Grid g = test_grid();
  const auto ref = ReferenceState::build(g, stable_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  // Passive tracer blob + uniform 10 m/s zonal wind.
  for (idx i = 6; i < 10; ++i)
    for (idx j = 6; j < 10; ++j)
      for (idx k = 2; k < 6; ++k) s.rhoq[QR](i, j, k) = 1e-3f;
  for (idx i = -Grid::kHalo; i < s.nx + Grid::kHalo; ++i)
    for (idx j = -Grid::kHalo; j < s.ny + Grid::kHalo; ++j)
      for (idx k = 0; k < s.nz; ++k)
        s.momx(i, j, k) = s.dens(i, j, k) * 10.0f;
  Dynamics dyn(g, ref, dyn_only());
  // Advect one full domain length: 16 cells * 500 m / 10 m/s = 800 s.
  // (Use 160 steps of 0.5 s = 80 s = 1.6 cells for cost; check the blob
  // center-of-mass moved by ~1.6 cells.)
  auto center_x = [&] {
    double sum = 0, wsum = 0;
    for (idx i = 0; i < s.nx; ++i)
      for (idx j = 0; j < s.ny; ++j)
        for (idx k = 0; k < s.nz; ++k) {
          sum += double(s.rhoq[QR](i, j, k)) * double(i);
          wsum += double(s.rhoq[QR](i, j, k));
        }
    return sum / wsum;
  };
  const double x0 = center_x();
  for (int n = 0; n < 160; ++n) dyn.step(s, 0.5f);
  const double x1 = center_x();
  EXPECT_NEAR(x1 - x0, 1.6, 0.25);
  EXPECT_FALSE(s.has_nonfinite());
}

TEST(Dynamics, StableAtPaperTimeStepRatio) {
  // Table 3: dt = 0.4 s at dx = 500 m with ~80-m lowest layers; the HEVI
  // core must integrate a disturbed state stably.
  Grid g = Grid::stretched(12, 12, 24, 500.0f, 16400.0f, 80.0f, 1.06f);
  const auto ref = ReferenceState::build(g, convective_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  add_thermal_bubble(s, g, 3000, 3000, 1200, 1500, 900, 3.0f);
  Dynamics dyn(g, ref, dyn_only());
  for (int n = 0; n < 250; ++n) dyn.step(s, 0.4f);  // 100 s
  EXPECT_FALSE(s.has_nonfinite());
  // Vertical acoustic CFL was > 1 (cs*dt/dz ~ 340*0.4/80 = 1.7): an explicit
  // scheme would have blown up; reaching here is the HEVI point.
  EXPECT_LT(std::abs(s.theta(6, 6, 12) - ref.theta[12]), 20.0f);
}

TEST(Dynamics, VerticalImplicitMatchesTendencyContract) {
  // With zero tendencies and the reference state, the implicit solve must
  // return the state unchanged (x = 0 fixed point).
  Grid g = test_grid();
  const auto ref = ReferenceState::build(g, stable_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  s.fill_halos_periodic();
  Dynamics dyn(g, ref, dyn_only());
  Tendencies tend(g);
  State out(g);
  dyn.compute_tendencies(s, tend, 0.5f);  // also fills derived fields
  // Zero out tendencies to isolate the solver.
  tend.dens.fill(0);
  tend.rhot.fill(0);
  tend.momx.fill(0);
  tend.momy.fill(0);
  tend.momz.fill(0);
  for (auto& q : tend.rhoq) q.fill(0);
  dyn.vertical_implicit(s, s, tend, 0.5f, out);
  for (idx k = 0; k <= s.nz; ++k) EXPECT_EQ(out.momz(8, 8, k), 0.0f);
  for (idx k = 0; k < s.nz; ++k) {
    EXPECT_FLOAT_EQ(out.dens(8, 8, k), s.dens(8, 8, k));
    EXPECT_FLOAT_EQ(out.rhot(8, 8, k), s.rhot(8, 8, k));
  }
}

TEST(Dynamics, RungeKutta3MoreAccurateThanEuler) {
  // Advect a blob with RK1 vs RK3 at the same dt; RK3 with upwind-3 should
  // lose less peak amplitude.
  Grid g = test_grid();
  const auto ref = ReferenceState::build(g, stable_sounding());
  auto run = [&](int stages) {
    State s(g);
    s.init_from_reference(g, ref);
    for (idx i = 6; i < 10; ++i)
      for (idx j = 6; j < 10; ++j)
        for (idx k = 2; k < 6; ++k) s.rhoq[QR](i, j, k) = 1e-3f;
    for (idx i = -Grid::kHalo; i < s.nx + Grid::kHalo; ++i)
      for (idx j = -Grid::kHalo; j < s.ny + Grid::kHalo; ++j)
        for (idx k = 0; k < s.nz; ++k)
          s.momx(i, j, k) = s.dens(i, j, k) * 10.0f;
    DynParams p = dyn_only();
    p.rk_stages = stages;
    Dynamics dyn(g, ref, p);
    for (int n = 0; n < 100; ++n) dyn.step(s, 0.5f);
    return s.rhoq[QR].interior_max();
  };
  const real peak_rk3 = run(3);
  const real peak_rk1 = run(1);
  EXPECT_GE(peak_rk3, peak_rk1 * 0.99f);
  EXPECT_GT(peak_rk3, 2e-4f);  // blob survived
}

TEST(Dynamics, SpongeDampsTopLevels) {
  Grid g = test_grid();
  const auto ref = ReferenceState::build(g, stable_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  // Kick w near the top, inside the sponge.
  const idx ktop = s.nz - 2;
  s.momz(8, 8, ktop) = 1.0f;
  s.fill_halos_periodic();
  DynParams p = dyn_only();
  p.sponge_depth = 4000.0f;
  p.sponge_tau = 30.0f;
  Dynamics dyn(g, ref, p);
  const real w0 = std::abs(s.momz(8, 8, ktop));
  for (int n = 0; n < 60; ++n) dyn.step(s, 0.5f);
  EXPECT_LT(max_abs_momz(s), w0);  // energy removed, not amplified
  EXPECT_FALSE(s.has_nonfinite());
}

TEST(ThermalBubble, PerturbsThetaLocally) {
  Grid g = test_grid();
  const auto ref = ReferenceState::build(g, stable_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  add_thermal_bubble(s, g, 4000, 4000, 1000, 1000, 500, 2.0f);
  // The cell nearest the bubble center gets the exact Gaussian amplitude.
  idx ic = 7, jc = 7;  // xc(7)=3750 close to 4000
  // Find the level whose center is nearest z0 = 1000 m.
  idx kc = 0;
  for (idx k = 1; k < g.nz(); ++k)
    if (std::abs(g.zc(k) - 1000.0f) < std::abs(g.zc(kc) - 1000.0f)) kc = k;
  const real dxr = (g.xc(ic) - 4000.0f) / 1000.0f;
  const real dyr = (g.yc(jc) - 4000.0f) / 1000.0f;
  const real dzr = (g.zc(kc) - 1000.0f) / 500.0f;
  const real expected =
      2.0f * std::exp(-(dxr * dxr + dyr * dyr + dzr * dzr));
  const real dth_center = s.theta(ic, jc, kc) - ref.theta[kc];
  EXPECT_NEAR(dth_center, expected, 0.02f);
  EXPECT_GT(dth_center, 0.3f);
  EXPECT_FLOAT_EQ(s.theta(15, 15, 10), ref.theta[10]);
}

TEST(MoistureAnomaly, AddsVaporMassConsistently) {
  Grid g = test_grid();
  const auto ref = ReferenceState::build(g, convective_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  const double qv0 = s.rhoq[QV].interior_sum();
  const double m0 = s.total_mass();
  const real th_before = s.theta(8, 8, 2);
  add_moisture_anomaly(s, g, 4000, 4000, 800, 1500, 600, 0.003f);
  EXPECT_GT(s.rhoq[QV].interior_sum(), qv0);
  // Total mass grew by exactly the added vapor.
  EXPECT_NEAR(s.total_mass() - m0, s.rhoq[QV].interior_sum() - qv0, 1e-2);
  // Theta unchanged where perturbed.
  EXPECT_NEAR(s.theta(8, 8, 2), th_before, 0.01f);
}

}  // namespace
}  // namespace bda::scale
