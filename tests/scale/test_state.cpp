#include <gtest/gtest.h>

#include <cmath>

#include "scale/state.hpp"

namespace bda::scale {
namespace {

using C = Constants<real>;

Grid small_grid() { return Grid(6, 5, 8, 500.0f, 8000.0f); }

TEST(State, InitFromReferenceIsHorizontallyUniform) {
  Grid g = small_grid();
  const auto ref = ReferenceState::build(g, stable_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  for (idx k = 0; k < 8; ++k) {
    EXPECT_FLOAT_EQ(s.dens(0, 0, k), s.dens(5, 4, k));
    EXPECT_FLOAT_EQ(s.rhot(2, 3, k), ref.dens[k] * ref.theta[k]);
    EXPECT_FLOAT_EQ(s.rhoq[QV](1, 1, k), ref.dens[k] * ref.qv[k]);
    EXPECT_FLOAT_EQ(s.rhoq[QC](1, 1, k), 0.0f);
  }
}

TEST(State, ThetaAndTracerDiagnostics) {
  Grid g = small_grid();
  State s(g);
  s.dens(1, 1, 1) = 1.0f;
  s.rhot(1, 1, 1) = 300.0f;
  s.rhoq[QR](1, 1, 1) = 0.002f;
  EXPECT_FLOAT_EQ(s.theta(1, 1, 1), 300.0f);
  EXPECT_FLOAT_EQ(s.q(QR, 1, 1, 1), 0.002f);
}

TEST(State, PressureMatchesEquationOfState) {
  Grid g = small_grid();
  State s(g);
  s.dens(0, 0, 0) = 1.2f;
  s.rhot(0, 0, 0) = 1.2f * 290.0f;
  const real expected =
      C::pres00 *
      std::pow(C::rdry * 1.2f * 290.0f / C::pres00, C::cp / C::cv);
  EXPECT_NEAR(s.pressure(0, 0, 0), expected, 1.0f);
  // Temperature from p and rho.
  EXPECT_NEAR(s.temperature(0, 0, 0),
              s.pressure(0, 0, 0) / (C::rdry * 1.2f), 0.01f);
}

TEST(State, VelocityDiagnosticsAverageFaces) {
  Grid g = small_grid();
  State s(g);
  for (auto* f : {&s.dens}) f->fill(1.0f);
  s.momx(1, 2, 3) = 2.0f;   // face between cells 1 and 2
  s.momx(2, 2, 3) = 4.0f;   // face between cells 2 and 3
  EXPECT_FLOAT_EQ(s.u(2, 2, 3), 3.0f);
  s.momy(2, 1, 3) = 1.0f;
  s.momy(2, 2, 3) = 3.0f;
  EXPECT_FLOAT_EQ(s.v(2, 2, 3), 2.0f);
  s.momz(2, 2, 3) = 6.0f;
  s.momz(2, 2, 4) = 2.0f;
  EXPECT_FLOAT_EQ(s.w(2, 2, 3), 4.0f);
}

TEST(State, TotalsAndWater) {
  Grid g = small_grid();
  State s(g);
  s.dens.fill(0);
  s.dens(0, 0, 0) = 2.0f;
  s.rhoq[QV](0, 0, 0) = 0.5f;
  s.rhoq[QG](1, 1, 1) = 0.25f;
  EXPECT_DOUBLE_EQ(s.total_mass(), 2.0);
  EXPECT_DOUBLE_EQ(s.total_water(), 0.75);
}

TEST(State, NonfiniteDetection) {
  Grid g = small_grid();
  State s(g);
  EXPECT_FALSE(s.has_nonfinite());
  s.rhot(3, 3, 3) = std::numeric_limits<real>::quiet_NaN();
  EXPECT_TRUE(s.has_nonfinite());
  s.rhot(3, 3, 3) = 0.0f;
  s.momz(1, 1, 8) = std::numeric_limits<real>::infinity();
  EXPECT_TRUE(s.has_nonfinite());
}

TEST(State, AxpbyCombinesAllFields) {
  Grid g = small_grid();
  State a(g), b(g);
  a.dens.fill(1.0f);
  b.dens.fill(3.0f);
  a.rhoq[QS].fill(2.0f);
  b.rhoq[QS].fill(4.0f);
  a.momz.fill(1.0f);
  b.momz.fill(-1.0f);
  a.axpby(0.5f, 0.5f, b);
  EXPECT_FLOAT_EQ(a.dens(2, 2, 2), 2.0f);
  EXPECT_FLOAT_EQ(a.rhoq[QS](1, 1, 1), 3.0f);
  EXPECT_FLOAT_EQ(a.momz(1, 1, 4), 0.0f);
}

TEST(State, TracerNamesAligned) {
  EXPECT_STREQ(tracer_name(QV), "qv");
  EXPECT_STREQ(tracer_name(QG), "qg");
  EXPECT_STREQ(tracer_name(-1), "??");
  EXPECT_STREQ(tracer_name(kNumTracers), "??");
}

TEST(State, MomzHasExtraLevel) {
  Grid g = small_grid();
  State s(g);
  EXPECT_EQ(s.momz.nz(), 9);  // nz + 1 faces
  EXPECT_EQ(s.dens.nz(), 8);
}

}  // namespace
}  // namespace bda::scale
