// Parameterized stability/conservation sweeps of the dynamical core:
// the properties of test_dynamics.cpp must hold across time steps, vertical
// stretching factors and grid shapes, not just at the defaults.
#include <gtest/gtest.h>

#include <cmath>

#include "scale/dynamics.hpp"

namespace bda::scale {
namespace {

struct SweepCase {
  real dt;
  real stretch;
  idx nz;
  const char* label;
};

void PrintTo(const SweepCase& c, std::ostream* os) { *os << c.label; }

class DynamicsSweep : public ::testing::TestWithParam<SweepCase> {};

double weighted_mass(const State& s, const Grid& g) {
  double m = 0;
  for (idx i = 0; i < s.nx; ++i)
    for (idx j = 0; j < s.ny; ++j)
      for (idx k = 0; k < s.nz; ++k)
        m += double(s.dens(i, j, k)) * double(g.dz(k));
  return m;
}

TEST_P(DynamicsSweep, BubbleRunStaysFiniteAndConservesMass) {
  const auto& p = GetParam();
  Grid g = Grid::stretched(12, 12, p.nz, 500.0f, 12000.0f, 120.0f,
                           p.stretch);
  const auto ref = ReferenceState::build(g, convective_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  add_thermal_bubble(s, g, 3000, 3000, 1200, 1200, 700, 2.5f);
  DynParams dp;
  dp.lateral_bc = LateralBc::kPeriodic;
  Dynamics dyn(g, ref, dp);

  const double m0 = weighted_mass(s, g);
  const int steps = static_cast<int>(60.0f / p.dt);
  for (int n = 0; n < steps; ++n) dyn.step(s, p.dt);

  EXPECT_FALSE(s.has_nonfinite()) << p.label;
  EXPECT_NEAR(weighted_mass(s, g) / m0, 1.0, 5e-6) << p.label;
  // The bubble must actually do something: vertical motion developed.
  real wmax = 0;
  for (idx k = 1; k < g.nz(); ++k)
    wmax = std::max(wmax, std::abs(s.momz(6, 6, k)));
  EXPECT_GT(wmax, 0.01f) << p.label;
}

TEST_P(DynamicsSweep, RestingStateStaysAtRest) {
  const auto& p = GetParam();
  Grid g = Grid::stretched(8, 8, p.nz, 500.0f, 12000.0f, 120.0f, p.stretch);
  const auto ref = ReferenceState::build(g, stable_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  DynParams dp;
  dp.lateral_bc = LateralBc::kPeriodic;
  Dynamics dyn(g, ref, dp);
  for (int n = 0; n < 10; ++n) dyn.step(s, p.dt);
  for (idx k = 0; k <= g.nz(); ++k)
    ASSERT_EQ(s.momz(4, 4, k), 0.0f) << p.label << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DynamicsSweep,
    ::testing::Values(
        SweepCase{0.4f, 1.032f, 20, "paper_dt_mild_stretch"},
        SweepCase{0.4f, 1.10f, 16, "paper_dt_strong_stretch"},
        SweepCase{0.8f, 1.05f, 12, "long_dt"},
        SweepCase{0.25f, 1.00f, 16, "short_dt_uniform"},
        SweepCase{0.5f, 1.15f, 24, "deep_column"}));

class LateralBcSweep : public ::testing::TestWithParam<LateralBc> {};

TEST_P(LateralBcSweep, DisturbedRunStable) {
  Grid g = Grid::stretched(12, 12, 14, 500.0f, 11000.0f, 150.0f, 1.08f);
  const auto ref = ReferenceState::build(g, convective_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  add_thermal_bubble(s, g, 3000, 3000, 1200, 1500, 800, 3.0f);
  DynParams dp;
  dp.lateral_bc = GetParam();
  Dynamics dyn(g, ref, dp);
  for (int n = 0; n < 150; ++n) dyn.step(s, 0.5f);
  EXPECT_FALSE(s.has_nonfinite());
}

INSTANTIATE_TEST_SUITE_P(Bcs, LateralBcSweep,
                         ::testing::Values(LateralBc::kPeriodic,
                                           LateralBc::kClamp));

}  // namespace
}  // namespace bda::scale
