#include <gtest/gtest.h>

#include "scale/diagnostics.hpp"

namespace bda::scale {
namespace {

using C = Constants<real>;

TEST(MoistLapse, SmallerThanDryRate) {
  // Latent heating makes a saturated parcel cool slower than g/cp.
  const real dry = C::grav / C::cp;
  for (real t : {270.0f, 285.0f, 300.0f}) {
    const real moist = moist_lapse_rate(t, 90000.0f);
    EXPECT_LT(moist, dry) << "T=" << t;
    EXPECT_GT(moist, 0.003f);  // within physical bounds [K/m]
  }
}

TEST(MoistLapse, ApproachesDryRateWhenCold) {
  // Cold air holds little vapor -> moist rate tends to the dry rate.
  const real dry = C::grav / C::cp;
  const real cold = moist_lapse_rate(230.0f, 40000.0f);
  const real warm = moist_lapse_rate(300.0f, 95000.0f);
  EXPECT_GT(cold, 0.95f * dry);
  EXPECT_LT(warm, 0.6f * dry);
}

TEST(ParcelDiagnostics, ConvectiveSoundingHasCape) {
  Grid g = Grid::stretched(4, 4, 40, 500.0f, 16000.0f, 100.0f, 1.05f);
  const auto ref = ReferenceState::build(g, convective_sounding());
  const auto diag = parcel_diagnostics(g, ref);
  // The nature-run environment must support deep convection.
  EXPECT_GT(diag.cape, 200.0f) << "conditionally unstable by design";
  EXPECT_GT(diag.lcl, 100.0f);
  EXPECT_LT(diag.lcl, 3000.0f);
  EXPECT_GE(diag.lfc, diag.lcl);
  EXPECT_GT(diag.el, diag.lfc);  // deep positive area
}

TEST(ParcelDiagnostics, StableSoundingHasNoCape) {
  Grid g = Grid::stretched(4, 4, 40, 500.0f, 16000.0f, 100.0f, 1.05f);
  const auto ref = ReferenceState::build(g, stable_sounding());
  const auto diag = parcel_diagnostics(g, ref);
  EXPECT_FLOAT_EQ(diag.cape, 0.0f);
}

TEST(ParcelDiagnostics, StateColumnMatchesReferenceColumn) {
  // A state initialized from the reference must yield (nearly) the same
  // diagnostics as the reference itself.
  Grid g = Grid::stretched(4, 4, 30, 500.0f, 14000.0f, 120.0f, 1.06f);
  const auto ref = ReferenceState::build(g, convective_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  const auto from_ref = parcel_diagnostics(g, ref);
  const auto from_state = parcel_diagnostics(g, s, 2, 2);
  // The state's EOS pressure differs slightly from the marched reference
  // pressure; allow a modest relative tolerance.
  EXPECT_NEAR(from_state.cape, from_ref.cape,
              0.2f * std::max(from_ref.cape, 50.0f));
  EXPECT_NEAR(from_state.lcl, from_ref.lcl, 600.0f);
}

TEST(ParcelDiagnostics, MoisteningTheBoundaryLayerRaisesCape) {
  Grid g = Grid::stretched(4, 4, 40, 500.0f, 16000.0f, 100.0f, 1.05f);
  Sounding moist = convective_sounding();
  Sounding drier = convective_sounding();
  drier.rh_surface = 0.6f;
  const auto cape_moist =
      parcel_diagnostics(g, ReferenceState::build(g, moist)).cape;
  const auto cape_dry =
      parcel_diagnostics(g, ReferenceState::build(g, drier)).cape;
  EXPECT_GT(cape_moist, cape_dry);
}

}  // namespace
}  // namespace bda::scale
