#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "jitdt/watcher.hpp"

namespace bda::jitdt {
namespace {

namespace fs = std::filesystem;

class WatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test *and* per process: ctest runs each test as its own
    // process, possibly in parallel, and the watcher reports every file in
    // its directory — a shared path would let concurrent tests pollute each
    // other's counts.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            ("bda_watch_" + std::string(info->name()) + "_" +
             std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write_file(const std::string& name, std::size_t bytes) {
    std::ofstream f(dir_ + "/" + name, std::ios::binary);
    std::vector<char> data(bytes, 'x');
    f.write(data.data(), static_cast<std::streamsize>(bytes));
  }

  std::string dir_;
};

TEST_F(WatcherTest, NewFileReportedAfterStability) {
  DirectoryWatcher w(dir_, ".pwr");
  write_file("scan1.pwr", 1024);
  // First poll: file sighted, held pending (stability check).
  EXPECT_TRUE(w.poll_once().empty());
  // Second poll: size unchanged -> reported.
  const auto ready = w.poll_once();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_NE(ready[0].find("scan1.pwr"), std::string::npos);
}

TEST_F(WatcherTest, FileReportedExactlyOnce) {
  DirectoryWatcher w(dir_, ".pwr");
  write_file("scan1.pwr", 100);
  w.poll_once();
  EXPECT_EQ(w.poll_once().size(), 1u);
  EXPECT_TRUE(w.poll_once().empty());
  EXPECT_TRUE(w.poll_once().empty());
}

TEST_F(WatcherTest, GrowingFileWaitsUntilStable) {
  DirectoryWatcher w(dir_, ".pwr");
  write_file("scan1.pwr", 100);
  w.poll_once();            // pending at size 100
  write_file("scan1.pwr", 500);  // still being written
  EXPECT_TRUE(w.poll_once().empty());  // size changed: not ready
  EXPECT_EQ(w.poll_once().size(), 1u); // stable at 500 now
}

TEST_F(WatcherTest, ExtensionFiltered) {
  DirectoryWatcher w(dir_, ".pwr");
  write_file("notes.txt", 10);
  write_file("scan.pwr", 10);
  w.poll_once();
  const auto ready = w.poll_once();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_NE(ready[0].find("scan.pwr"), std::string::npos);
}

TEST_F(WatcherTest, MultipleFilesAllReported) {
  DirectoryWatcher w(dir_, ".pwr");
  write_file("a.pwr", 10);
  write_file("b.pwr", 20);
  write_file("c.pwr", 30);
  w.poll_once();
  EXPECT_EQ(w.poll_once().size(), 3u);
}

TEST_F(WatcherTest, MissingDirectoryIsEmptyNotError) {
  DirectoryWatcher w(dir_ + "/does_not_exist", ".pwr");
  EXPECT_TRUE(w.poll_once().empty());
}

TEST_F(WatcherTest, BackgroundThreadInvokesCallback) {
  DirectoryWatcher w(dir_, ".pwr", 0.01);
  std::atomic<int> count{0};
  w.start([&](const std::string&) { count.fetch_add(1); });
  write_file("scan9.pwr", 64);
  // Wait up to 2 s for the two-poll stability window.
  for (int n = 0; n < 200 && count.load() == 0; ++n)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  w.stop();
  EXPECT_EQ(count.load(), 1);
}

// --- Shutdown / restart stress: the JIT-DT watchdog restarts the transfer
// chain on stalls, so the watcher must survive rapid start/stop cycles and
// concurrent poll_once() calls.  Run under TSan these give the watcher's
// locking real interleavings to trip over.

TEST_F(WatcherTest, StopIsPromptEvenWithLongInterval) {
  // A 1-hour poll interval: stop() must interrupt the sleep, not serve it.
  DirectoryWatcher w(dir_, ".pwr", 3600.0);
  w.start([](const std::string&) {});
  EXPECT_TRUE(w.running());
  const auto t0 = std::chrono::steady_clock::now();
  w.stop();
  const auto dt = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(w.running());
  EXPECT_LT(std::chrono::duration<double>(dt).count(), 5.0);
}

TEST_F(WatcherTest, RepeatedStartStopNeverLosesOrDuplicatesFiles) {
  DirectoryWatcher w(dir_, ".pwr", 0.001);
  std::atomic<int> count{0};
  for (int cycle = 0; cycle < 20; ++cycle) {
    w.start([&](const std::string&) { count.fetch_add(1); });
    if (cycle % 4 == 0)
      write_file("scan" + std::to_string(cycle) + ".pwr", 32);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    w.stop();
    EXPECT_FALSE(w.running());
  }
  // Drain synchronously: everything written must be reported exactly once
  // across all the start/stop epochs and this final poll.
  for (int n = 0; n < 50 && count.load() < 5; ++n) {
    for (const auto& p : w.poll_once()) {
      (void)p;
      count.fetch_add(1);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(count.load(), 5);
  EXPECT_TRUE(w.poll_once().empty());
}

TEST_F(WatcherTest, ConcurrentPollersReportEachFileOnce) {
  DirectoryWatcher w(dir_, ".pwr", 0.0);
  constexpr int kFiles = 24;
  for (int n = 0; n < kFiles; ++n)
    write_file("scan" + std::to_string(n) + ".pwr", 16 + n);
  std::atomic<int> reported{0};
  std::vector<std::thread> pollers;
  for (int t = 0; t < 4; ++t)
    pollers.emplace_back([&] {
      for (int iter = 0; iter < 200 && reported.load() < kFiles; ++iter)
        reported.fetch_add(static_cast<int>(w.poll_once().size()));
    });
  for (auto& t : pollers) t.join();
  EXPECT_EQ(reported.load(), kFiles);
}

TEST_F(WatcherTest, BackgroundThreadAndForegroundPollShareState) {
  DirectoryWatcher w(dir_, ".pwr", 0.001);
  std::atomic<int> background{0};
  w.start([&](const std::string&) { background.fetch_add(1); });
  int foreground = 0;
  for (int n = 0; n < 40; ++n) {
    if (n % 8 == 0) write_file("scan" + std::to_string(n) + ".pwr", 8);
    foreground += static_cast<int>(w.poll_once().size());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Drain the rest from either path — keep foreground-polling too, so the
  // test doesn't depend on the background thread winning CPU time under a
  // loaded sanitizer run.
  for (int n = 0; n < 400 && background.load() + foreground < 5; ++n) {
    foreground += static_cast<int>(w.poll_once().size());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  w.stop();
  EXPECT_EQ(background.load() + foreground, 5);
}

TEST_F(WatcherTest, DestructorStopsRunningWatcher) {
  auto w = std::make_unique<DirectoryWatcher>(dir_, ".pwr", 0.001);
  w->start([](const std::string&) {});
  EXPECT_TRUE(w->running());
  w.reset();  // must join the poll thread, not leak or crash
}

}  // namespace
}  // namespace bda::jitdt
