#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "jitdt/watcher.hpp"

namespace bda::jitdt {
namespace {

namespace fs = std::filesystem;

class WatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "bda_watch_test").string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write_file(const std::string& name, std::size_t bytes) {
    std::ofstream f(dir_ + "/" + name, std::ios::binary);
    std::vector<char> data(bytes, 'x');
    f.write(data.data(), static_cast<std::streamsize>(bytes));
  }

  std::string dir_;
};

TEST_F(WatcherTest, NewFileReportedAfterStability) {
  DirectoryWatcher w(dir_, ".pwr");
  write_file("scan1.pwr", 1024);
  // First poll: file sighted, held pending (stability check).
  EXPECT_TRUE(w.poll_once().empty());
  // Second poll: size unchanged -> reported.
  const auto ready = w.poll_once();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_NE(ready[0].find("scan1.pwr"), std::string::npos);
}

TEST_F(WatcherTest, FileReportedExactlyOnce) {
  DirectoryWatcher w(dir_, ".pwr");
  write_file("scan1.pwr", 100);
  w.poll_once();
  EXPECT_EQ(w.poll_once().size(), 1u);
  EXPECT_TRUE(w.poll_once().empty());
  EXPECT_TRUE(w.poll_once().empty());
}

TEST_F(WatcherTest, GrowingFileWaitsUntilStable) {
  DirectoryWatcher w(dir_, ".pwr");
  write_file("scan1.pwr", 100);
  w.poll_once();            // pending at size 100
  write_file("scan1.pwr", 500);  // still being written
  EXPECT_TRUE(w.poll_once().empty());  // size changed: not ready
  EXPECT_EQ(w.poll_once().size(), 1u); // stable at 500 now
}

TEST_F(WatcherTest, ExtensionFiltered) {
  DirectoryWatcher w(dir_, ".pwr");
  write_file("notes.txt", 10);
  write_file("scan.pwr", 10);
  w.poll_once();
  const auto ready = w.poll_once();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_NE(ready[0].find("scan.pwr"), std::string::npos);
}

TEST_F(WatcherTest, MultipleFilesAllReported) {
  DirectoryWatcher w(dir_, ".pwr");
  write_file("a.pwr", 10);
  write_file("b.pwr", 20);
  write_file("c.pwr", 30);
  w.poll_once();
  EXPECT_EQ(w.poll_once().size(), 3u);
}

TEST_F(WatcherTest, MissingDirectoryIsEmptyNotError) {
  DirectoryWatcher w(dir_ + "/does_not_exist", ".pwr");
  EXPECT_TRUE(w.poll_once().empty());
}

TEST_F(WatcherTest, BackgroundThreadInvokesCallback) {
  DirectoryWatcher w(dir_, ".pwr", 0.01);
  std::atomic<int> count{0};
  w.start([&](const std::string&) { count.fetch_add(1); });
  write_file("scan9.pwr", 64);
  // Wait up to 2 s for the two-poll stability window.
  for (int n = 0; n < 200 && count.load() == 0; ++n)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  w.stop();
  EXPECT_EQ(count.load(), 1);
}

}  // namespace
}  // namespace bda::jitdt
