#include <gtest/gtest.h>

#include <algorithm>

#include "jitdt/transfer.hpp"
#include "util/codec.hpp"
#include "util/logging.hpp"

namespace bda::jitdt {
namespace {

std::vector<std::uint8_t> payload(std::size_t n) {
  std::vector<std::uint8_t> data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = std::uint8_t((i * 31 + 7) & 0xFF);
  return data;
}

TEST(JitDt, FaultFreeTransferIsByteIdentical) {
  JitDtLink link;
  const auto data = payload(10u << 20);
  std::vector<std::uint8_t> out;
  const auto res = link.transfer(data, out);
  EXPECT_TRUE(res.success);
  EXPECT_TRUE(res.crc_ok);
  EXPECT_EQ(res.restarts, 0);
  EXPECT_EQ(out, data);
  EXPECT_EQ(res.bytes, data.size());
}

TEST(JitDt, ElapsedMatchesEstimateWithoutFaults) {
  JitDtConfig cfg;
  cfg.chunk_bytes = 1u << 20;
  cfg.bandwidth_bytes_per_s = 100e6;
  cfg.latency_s = 0.01;
  cfg.session_overhead_s = 1.0;
  JitDtLink link(cfg);
  const auto data = payload(5u << 20);
  std::vector<std::uint8_t> out;
  const auto res = link.transfer(data, out);
  EXPECT_NEAR(res.elapsed_s, link.estimate_time(data.size()), 1e-9);
}

TEST(JitDt, PaperScanTakesAboutThreeSeconds) {
  // ~100 MB over the configured effective channel lands near the paper's
  // "~100MB data in ~3 seconds".
  JitDtLink link;  // defaults model the measured SINET path
  const double t = link.estimate_time(100u << 20);
  EXPECT_GT(t, 1.5);
  EXPECT_LT(t, 5.0);
}

TEST(JitDt, EstimateMonotoneInSize) {
  JitDtLink link;
  EXPECT_LT(link.estimate_time(1u << 20), link.estimate_time(50u << 20));
  EXPECT_GT(link.estimate_time(0), 0.0);  // session overhead remains
}

TEST(JitDt, StallsTriggerRestartsButDeliver) {
  Rng rng(123);
  JitDtConfig cfg;
  cfg.chunk_bytes = 256u << 10;
  cfg.max_restarts = 1000;
  FaultModel faults;
  faults.stall_probability = 0.05;
  faults.rng = &rng;
  // Quiet the expected stall warnings.
  auto prev = Logger::global().set_sink([](LogLevel, const std::string&) {});
  JitDtLink link(cfg, faults);
  const auto data = payload(8u << 20);  // 32 chunks
  std::vector<std::uint8_t> out;
  const auto res = link.transfer(data, out);
  Logger::global().set_sink(std::move(prev));
  EXPECT_TRUE(res.success);
  EXPECT_TRUE(res.crc_ok);
  EXPECT_GT(res.restarts, 0);
  EXPECT_EQ(out, data);
  // Each restart costs watchdog timeout + reconnect.
  EXPECT_GT(res.elapsed_s,
            link.estimate_time(data.size()) +
                res.restarts * cfg.stall_timeout_s * 0.99);
}

TEST(JitDt, GivesUpAfterMaxRestarts) {
  Rng rng(7);
  JitDtConfig cfg;
  cfg.chunk_bytes = 64u << 10;
  cfg.max_restarts = 2;
  FaultModel faults;
  faults.stall_probability = 1.0;  // every chunk stalls
  faults.rng = &rng;
  auto prev = Logger::global().set_sink([](LogLevel, const std::string&) {});
  JitDtLink link(cfg, faults);
  const auto data = payload(1u << 20);
  std::vector<std::uint8_t> out;
  const auto res = link.transfer(data, out);
  Logger::global().set_sink(std::move(prev));
  EXPECT_FALSE(res.success);
  // The documented semantics: `restarts` counts restarts actually
  // performed — exactly the budget; the final give-up is not a restart.
  EXPECT_EQ(res.restarts, cfg.max_restarts);
  EXPECT_FALSE(res.crc_ok);
  // Nothing ever got through (every attempt stalled), and the elapsed time
  // is exactly the initial connect + (budget + 1) watchdog timeouts +
  // budget reconnects — no phantom reconnect after the final stall.
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(res.bytes, 0u);
  EXPECT_DOUBLE_EQ(res.elapsed_s,
                   cfg.session_overhead_s * (1 + cfg.max_restarts) +
                       cfg.stall_timeout_s * (cfg.max_restarts + 1));
}

// Regression: on failure `out` used to stay at full payload size with only
// the acknowledged prefix actually copied — downstream code reading
// out.size() bytes would consume an uninitialized tail.  A failed transfer
// must deliver exactly the acked prefix, byte-identical to the source.
TEST(JitDt, PartialProgressThenFailureKeepsDeliveredChunks) {
  // Two chunks make it through, then the channel dies for good: the result
  // holds exactly those two chunks (the resume point), byte-identical to
  // the source — not a full-size buffer with an uninitialized tail.
  JitDtConfig cfg;
  cfg.chunk_bytes = 64u << 10;
  cfg.max_restarts = 2;
  FaultModel faults;
  faults.stall_after_bytes = 2 * cfg.chunk_bytes;
  auto prev = Logger::global().set_sink([](LogLevel, const std::string&) {});
  JitDtLink link(cfg, faults);
  const auto data = payload(8 * cfg.chunk_bytes);
  std::vector<std::uint8_t> out;
  const auto res = link.transfer(data, out);
  Logger::global().set_sink(std::move(prev));
  ASSERT_FALSE(res.success);
  EXPECT_EQ(res.restarts, cfg.max_restarts);
  EXPECT_EQ(res.bytes, 2 * cfg.chunk_bytes);
  ASSERT_EQ(out.size(), 2 * cfg.chunk_bytes);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin()));
}

TEST(JitDt, ZeroRestartBudgetFailsOnFirstStall) {
  JitDtConfig cfg;
  cfg.chunk_bytes = 64u << 10;
  cfg.max_restarts = 0;
  FaultModel faults;
  faults.force_first_stalls = 1;
  auto prev = Logger::global().set_sink([](LogLevel, const std::string&) {});
  JitDtLink link(cfg, faults);
  const auto data = payload(256u << 10);
  std::vector<std::uint8_t> out;
  const auto res = link.transfer(data, out);
  Logger::global().set_sink(std::move(prev));
  EXPECT_FALSE(res.success);
  EXPECT_EQ(res.restarts, 0);  // no restart was ever performed
  EXPECT_TRUE(out.empty());
  EXPECT_DOUBLE_EQ(res.elapsed_s,
                   cfg.session_overhead_s + cfg.stall_timeout_s);
}

TEST(JitDt, StallBudgetExactlyExhaustedStillDelivers) {
  // Exactly max_restarts forced stalls: the budget covers them all and the
  // payload arrives complete — the off-by-one would have failed this.
  JitDtConfig cfg;
  cfg.chunk_bytes = 64u << 10;
  cfg.max_restarts = 3;
  FaultModel faults;
  faults.force_first_stalls = 3;
  auto prev = Logger::global().set_sink([](LogLevel, const std::string&) {});
  JitDtLink link(cfg, faults);
  const auto data = payload(512u << 10);
  std::vector<std::uint8_t> out;
  const auto res = link.transfer(data, out);
  Logger::global().set_sink(std::move(prev));
  EXPECT_TRUE(res.success);
  EXPECT_TRUE(res.crc_ok);
  EXPECT_EQ(res.restarts, 3);
  EXPECT_EQ(out, data);
}

TEST(JitDt, EmptyPayloadSucceedsImmediately) {
  JitDtLink link;
  std::vector<std::uint8_t> out;
  const auto res = link.transfer({}, out);
  EXPECT_TRUE(res.success);
  EXPECT_TRUE(res.crc_ok);
  EXPECT_TRUE(out.empty());
  EXPECT_DOUBLE_EQ(res.elapsed_s, link.config().session_overhead_s);
}

TEST(JitDt, CompressedScanTransfersFasterAndRoundtrips) {
  // Operational JIT-DT compresses scans before the wire; clear-air-heavy
  // scans shrink dramatically, cutting transfer time proportionally.
  std::vector<std::uint8_t> scan_like(4u << 20, 0x10);  // mostly floor
  for (std::size_t i = 0; i < scan_like.size(); i += 997)
    scan_like[i] = std::uint8_t(i & 0xFF);  // sparse echoes
  const auto compressed = encode_rle(scan_like);
  ASSERT_LT(compressed.size(), scan_like.size() / 20);

  JitDtLink link;
  std::vector<std::uint8_t> wire;
  const auto res = link.transfer(compressed, wire);
  ASSERT_TRUE(res.success && res.crc_ok);
  EXPECT_LT(link.estimate_time(compressed.size()),
            link.estimate_time(scan_like.size()));
  EXPECT_EQ(decode_rle(wire), scan_like);
}

TEST(JitDt, SingleByteDelivered) {
  JitDtLink link;
  std::vector<std::uint8_t> out;
  const auto res = link.transfer({0xAB}, out);
  EXPECT_TRUE(res.success);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0xAB);
}

}  // namespace
}  // namespace bda::jitdt
