// Tile cutting + delta-encoding contract tests (the serving wire format).
//
// The load-bearing property is defensive decoding: a delta applied to the
// wrong base — wrong cycle, wrong samples, or no base at all — must be a
// detected error, never a silently wrong image on a phone screen.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "serve/tile.hpp"

namespace bda::serve {
namespace {

Field3D<float> make_field(idx nx, idx ny, idx nz, float scale) {
  Field3D<float> f(nx, ny, nz, 0);
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j)
      for (idx k = 0; k < nz; ++k)
        f(i, j, k) = scale * float(i * 1000 + j * 10 + k) - 20.0f;
  return f;
}

TEST(Tile, CutTilesCoversEveryColumnExactlyOnce) {
  const Field3D<float> f = make_field(20, 13, 4, 0.5f);  // 13: edge tiles
  const TileGridConfig cfg;                              // 8x8
  const auto tiles = cut_tiles(f, cfg);
  const idx tiles_x = tile_count(f.nx(), cfg.tile_nx);
  const idx tiles_y = tile_count(f.ny(), cfg.tile_ny);
  EXPECT_EQ(tiles_x, 3);
  EXPECT_EQ(tiles_y, 2);
  ASSERT_EQ(tiles.size(), std::size_t(tiles_x * tiles_y));
  std::size_t total = 0;
  for (const auto& t : tiles) total += t.size();
  EXPECT_EQ(total, std::size_t(f.nx() * f.ny() * f.nz()));

  // Spot-check layout: tile (tx, ty) sample 0 is column (tx*8, ty*8) level 0.
  // Tiles are tx-major then ty, samples i-major then j then k.
  const std::size_t flat_10 = 1 * std::size_t(tiles_y) + 0;  // tx=1, ty=0
  EXPECT_EQ(tiles[flat_10][0], f(8, 0, 0));
  EXPECT_EQ(tiles[flat_10][1], f(8, 0, 1));
  // Last tile is the clipped corner: 4 x 5 columns.
  const auto& corner = tiles.back();
  EXPECT_EQ(corner.size(), std::size_t(4 * 5 * f.nz()));
  EXPECT_EQ(corner[0], f(16, 8, 0));
}

TEST(Tile, KeyframeRoundtrip) {
  const std::vector<float> samples = {1.0f, -2.5f, 0.0f, 0.0f, 0.0f, 3.25f};
  const TileKey key{ProductKind::kMapView, 2, 3};
  const EncodedTile t =
      encode_tile(key, 7, 3, 2, 1, samples, nullptr, kNoBaseCycle,
                  /*force_keyframe=*/false);
  EXPECT_TRUE(t.is_keyframe());
  EXPECT_EQ(t.cycle, 7u);
  EXPECT_TRUE(t.key == key);
  EXPECT_EQ(t.sample_count(), samples.size());
  EXPECT_EQ(decode_tile(t, nullptr, kNoBaseCycle), samples);
}

TEST(Tile, DeltaRoundtripAndCompression) {
  // Consecutive cycles differ in a handful of cells: the XOR stream is
  // mostly zero runs, so the delta must beat the keyframe.
  std::vector<float> base(8 * 8 * 10);
  for (std::size_t n = 0; n < base.size(); ++n)
    base[n] = float(n % 37) * 0.75f - 10.0f;
  std::vector<float> cur = base;
  cur[5] += 4.0f;
  cur[123] = 55.0f;

  const TileKey key{ProductKind::kVolume3D, 0, 0};
  const EncodedTile delta =
      encode_tile(key, 11, 8, 8, 10, cur, &base, 10, false);
  ASSERT_FALSE(delta.is_keyframe());
  EXPECT_EQ(delta.base_cycle, 10);

  const EncodedTile keyframe =
      encode_tile(key, 11, 8, 8, 10, cur, nullptr, kNoBaseCycle, false);
  EXPECT_LT(delta.bytes.size(), keyframe.bytes.size());

  EXPECT_EQ(decode_tile(delta, &base, 10), cur);
  EXPECT_EQ(decode_tile(keyframe, nullptr, kNoBaseCycle), cur);
}

TEST(Tile, ForceKeyframeSkipsDelta) {
  std::vector<float> base(64, 1.0f);
  std::vector<float> cur = base;
  cur[0] = 2.0f;
  const EncodedTile t = encode_tile({ProductKind::kMapView, 0, 0}, 3, 8, 8, 1,
                                    cur, &base, 2, /*force_keyframe=*/true);
  EXPECT_TRUE(t.is_keyframe());
}

TEST(Tile, IncompressibleTileFallsBackToKeyframe) {
  // A base that shares nothing with the current tile: the XOR stream is as
  // incompressible as the raw stream, so the encoder must keep the
  // keyframe (delta only wins when strictly smaller).
  std::vector<float> base(64), cur(64);
  for (std::size_t n = 0; n < 64; ++n) {
    base[n] = float(n) * 1.618f;
    cur[n] = float(63 - n) * -2.718f;
  }
  const EncodedTile t = encode_tile({ProductKind::kMapView, 0, 0}, 3, 8, 8, 1,
                                    cur, &base, 2, false);
  EXPECT_TRUE(t.is_keyframe());
  EXPECT_EQ(decode_tile(t, nullptr, kNoBaseCycle), cur);
}

TEST(Tile, WrongBaseCycleIsDetected) {
  std::vector<float> base(64, 5.0f);
  std::vector<float> cur = base;
  cur[7] = 9.0f;
  const EncodedTile delta = encode_tile({ProductKind::kMapView, 0, 0}, 21, 8,
                                        8, 1, cur, &base, 20, false);
  ASSERT_FALSE(delta.is_keyframe());
  // Right samples, wrong claimed cycle: the base-cycle check fires.
  EXPECT_THROW(decode_tile(delta, &base, 19), std::runtime_error);
}

TEST(Tile, WrongBaseSamplesAreDetectedByCrc) {
  std::vector<float> base(64, 5.0f);
  std::vector<float> cur = base;
  cur[7] = 9.0f;
  const EncodedTile delta = encode_tile({ProductKind::kMapView, 0, 0}, 21, 8,
                                        8, 1, cur, &base, 20, false);
  ASSERT_FALSE(delta.is_keyframe());
  // Right cycle number, wrong base payload: XOR yields garbage, the CRC
  // catches it — never a silently wrong tile.
  std::vector<float> wrong_base(64, 6.0f);
  EXPECT_THROW(decode_tile(delta, &wrong_base, 20), std::runtime_error);
}

TEST(Tile, DeltaWithoutBaseThrows) {
  std::vector<float> base(64, 5.0f);
  std::vector<float> cur = base;
  cur[7] = 9.0f;
  const EncodedTile delta = encode_tile({ProductKind::kMapView, 0, 0}, 21, 8,
                                        8, 1, cur, &base, 20, false);
  ASSERT_FALSE(delta.is_keyframe());
  EXPECT_THROW(decode_tile(delta, nullptr, 20), std::runtime_error);
}

TEST(Tile, CorruptPayloadIsDetected) {
  std::vector<float> cur(64, 3.0f);
  EncodedTile t = encode_tile({ProductKind::kMapView, 0, 0}, 1, 8, 8, 1, cur,
                              nullptr, kNoBaseCycle, false);
  ASSERT_FALSE(t.bytes.empty());
  t.bytes[t.bytes.size() / 2] ^= 0x5A;
  EXPECT_THROW(decode_tile(t, nullptr, kNoBaseCycle), std::runtime_error);
}

TEST(Tile, EncodeRejectsDimensionMismatch) {
  std::vector<float> cur(63, 0.0f);  // 8*8*1 - 1
  EXPECT_THROW(encode_tile({ProductKind::kMapView, 0, 0}, 1, 8, 8, 1, cur,
                           nullptr, kNoBaseCycle, false),
               std::runtime_error);
}

TEST(Tile, KeyOrderingIsDeterministic) {
  const TileKey a{ProductKind::kMapView, 1, 2};
  const TileKey b{ProductKind::kMapView, 1, 3};
  const TileKey c{ProductKind::kVolume3D, 0, 0};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);  // kind dominates
  EXPECT_FALSE(a < a);
  EXPECT_TRUE(a == a);
}

}  // namespace
}  // namespace bda::serve
