// Publisher contract tests: the off-cycle publish path, supersede-on-busy,
// the watchdog/auto-restart idiom, and the keyframe guarantee that keeps
// the latest cycle decodable from cached tiles alone.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/publisher.hpp"
#include "serve/tile_server.hpp"
#include "util/metrics.hpp"

namespace bda::serve {
namespace {

// Small dense products whose values are a pure function of the cycle, with
// most of the field static so deltas compress (only a moving "cell"
// changes between cycles).
ProductFrame make_frame(std::uint64_t cycle, idx n = 16, idx nz = 4) {
  ProductFrame f;
  f.volume = Field3D<float>(n, n, nz, 0);
  f.volume.fill(-20.0f);
  const idx ci = idx(cycle) % n;
  for (idx k = 0; k < nz; ++k) f.volume(ci, ci, k) = 40.0f + float(k);
  f.map_view = Field3D<float>(n, n, 1, 0);
  f.map_view.fill(-20.0f);
  f.map_view(ci, ci, 0) = 40.0f + float(nz - 1);
  return f;
}

Publisher::FrameSource frame_source(std::uint64_t cycle) {
  return [cycle] { return make_frame(cycle); };
}

void wait_until(const std::function<bool()>& pred, double timeout_s = 10.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (!pred() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(pred()) << "condition not reached within " << timeout_s << " s";
}

// Decode `tile` using only what the epoch itself retains: walk the delta
// chain back to a keyframe, then replay forward.  This is exactly what a
// client holding one cache snapshot can do.
std::vector<float> decode_from_epoch(const ProductCache::Epoch& epoch,
                                     const TileKey& key,
                                     const EncodedTile& tile) {
  std::vector<const EncodedTile*> chain{&tile};
  while (!chain.back()->is_keyframe()) {
    const CycleProducts* bp =
        epoch.find_cycle(std::uint64_t(chain.back()->base_cycle));
    if (bp == nullptr)
      throw std::runtime_error("delta base retired before its dependents");
    const EncodedTile* bt = bp->find(key);
    if (bt == nullptr) throw std::runtime_error("delta base tile missing");
    chain.push_back(bt);
  }
  std::vector<float> samples = decode_tile(*chain.back(), nullptr,
                                           kNoBaseCycle);
  for (auto it = chain.rbegin() + 1; it != chain.rend(); ++it)
    samples = decode_tile(**it, &samples, (*it)->base_cycle);
  return samples;
}

TEST(Publisher, PublishesSubmittedCyclesIntoCache) {
  ProductCache cache(4);
  util::Metrics metrics;
  Publisher pub(&cache, {}, &metrics);

  for (std::uint64_t c = 0; c < 3; ++c) {
    pub.submit(c, frame_source(c));
    ASSERT_TRUE(pub.drain());
  }
  EXPECT_EQ(pub.published(), 3u);
  EXPECT_EQ(pub.restarts(), 0);

  const auto epoch = cache.snapshot();
  EXPECT_EQ(epoch->latest_cycle(), 2u);
  EXPECT_EQ(epoch->cycles.size(), 3u);
  EXPECT_EQ(metrics.counter("serve.publish.count"), 3u);
  EXPECT_EQ(metrics.samples("serve.publish"), 3u);

  // Every published tile decodes from the epoch alone, and the decoded
  // samples match the source frame.
  for (const auto& [cycle, prod] : epoch->cycles)
    for (const auto& [key, tile] : prod->tiles) {
      EXPECT_EQ(tile.cycle, cycle);
      const auto samples = decode_from_epoch(*epoch, key, tile);
      ASSERT_EQ(samples.size(), tile.sample_count());
      const ProductFrame frame = make_frame(cycle);
      const Field3D<float>& field = key.kind == ProductKind::kMapView
                                        ? frame.map_view
                                        : frame.volume;
      // Sample 0 of tile (tx, ty) is column (tx*8, ty*8) level 0.
      EXPECT_EQ(samples[0], field(key.tx * 8, key.ty * 8, 0));
    }
}

TEST(Publisher, SecondCycleShipsDeltas) {
  ProductCache cache(4);
  Publisher pub(&cache, {});
  pub.submit(0, frame_source(0));
  ASSERT_TRUE(pub.drain());
  pub.submit(1, frame_source(1));
  ASSERT_TRUE(pub.drain());

  const auto epoch = cache.snapshot();
  const CycleProducts* first = epoch->find_cycle(0);
  const CycleProducts* second = epoch->find_cycle(1);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  // A fresh worker's first publication is all keyframes…
  EXPECT_EQ(first->delta_tiles, 0u);
  EXPECT_GT(first->keyframe_tiles, 0u);
  // …and the mostly-static frame makes the next one mostly deltas, which
  // ship far fewer bytes than the keyframes did.
  EXPECT_GT(second->delta_tiles, second->keyframe_tiles);
  EXPECT_LT(second->delta_bytes + second->keyframe_bytes,
            first->keyframe_bytes / 2);
}

TEST(Publisher, KeyframeCadenceKeepsLatestCycleDecodableFromCacheAlone) {
  // keyframe_every is clamped to the retention window, so for ANY cycle
  // count a client holding only the current epoch can decode the latest
  // cycle by walking deltas back to a keyframe inside the window.
  ProductCache cache(3);
  PublisherConfig cfg;
  cfg.keyframe_every = 100;  // will clamp to 3
  Publisher pub(&cache, cfg);
  for (std::uint64_t c = 0; c < 17; ++c) {
    pub.submit(c, frame_source(c));
    ASSERT_TRUE(pub.drain());
  }
  const auto epoch = cache.snapshot();
  const CycleProducts* latest = epoch->latest();
  ASSERT_NE(latest, nullptr);

  for (const auto& [key, tile] : latest->tiles) {
    std::vector<float> samples;
    ASSERT_NO_THROW(samples = decode_from_epoch(*epoch, key, tile));
    EXPECT_EQ(samples.size(), tile.sample_count());
  }
}

TEST(Publisher, NewerSubmissionSupersedesQueuedOlderOne) {
  ProductCache cache(4);
  // Wedge the worker in its FIRST frame build so later submissions pile up
  // behind it in the single pending slot.
  auto gate = std::make_shared<std::atomic<bool>>(false);
  auto entered = std::make_shared<std::atomic<bool>>(false);
  Publisher pub(&cache, {});
  pub.submit(0, [gate, entered] {
    entered->store(true);
    while (!gate->load()) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
    return make_frame(0);
  });
  // Only once the worker is demonstrably inside cycle 0's frame build does
  // queueing 1..4 exercise the supersede path: each newer submit replaces
  // the one still waiting in the slot.
  wait_until([&] { return entered->load(); });
  for (std::uint64_t c = 1; c <= 4; ++c) pub.submit(c, frame_source(c));
  gate->store(true);
  ASSERT_TRUE(pub.drain());

  EXPECT_EQ(pub.superseded(), 3u);  // 1, 2, 3 never ran
  EXPECT_EQ(pub.published(), 2u);   // 0 and 4
  const auto epoch = cache.snapshot();
  EXPECT_EQ(epoch->latest_cycle(), 4u);
  EXPECT_NE(epoch->find_cycle(0), nullptr);
  EXPECT_EQ(epoch->find_cycle(2), nullptr);
}

TEST(Publisher, WatchdogRestartsWedgedWorkerAndDiscardsItsResult) {
  ProductCache cache(4);
  util::Metrics metrics;

  // The first publication wedges in the publish hook (post-encode,
  // pre-commit) until released; every later one passes straight through.
  struct Wedge {
    std::mutex m;
    std::condition_variable cv;
    bool release = false;
    std::atomic<int> calls{0};
  };
  auto wedge = std::make_shared<Wedge>();

  PublisherConfig cfg;
  cfg.stall_timeout_s = 0.05;
  cfg.watchdog_poll_s = 0.005;
  cfg.max_restarts = 2;
  cfg.publish_hook = [wedge](std::uint64_t) {
    if (wedge->calls.fetch_add(1) == 0) {
      std::unique_lock<std::mutex> lk(wedge->m);
      wedge->cv.wait(lk, [&] { return wedge->release; });
    }
  };

  {
    Publisher pub(&cache, cfg, &metrics);
    pub.submit(0, frame_source(0));
    // The watchdog abandons the wedged worker and spawns a replacement.
    wait_until([&] { return pub.restarts() == 1; });

    // The replacement publishes the next cycle normally — publication
    // survived the wedge without human intervention.
    pub.submit(1, frame_source(1));
    ASSERT_TRUE(pub.drain());
    EXPECT_EQ(cache.snapshot()->latest_cycle(), 1u);
    EXPECT_EQ(pub.published(), 1u);

    // Release the wedged worker: it must discover its generation is stale
    // and discard — cycle 0 never reaches the cache after cycle 1.
    {
      std::lock_guard<std::mutex> lk(wedge->m);
      wedge->release = true;
    }
    wedge->cv.notify_all();
    wait_until([&] { return pub.stale_discards() == 1; });
    EXPECT_EQ(cache.snapshot()->find_cycle(0), nullptr);
    EXPECT_EQ(cache.snapshot()->latest_cycle(), 1u);
    EXPECT_EQ(pub.restarts(), 1);
  }  // destructor joins the released worker and the replacement

  EXPECT_EQ(metrics.counter("serve.publish.restarts"), 1u);
  EXPECT_EQ(metrics.counter("serve.publish.stale_discard"), 1u);
}

TEST(Publisher, RestartBudgetExhaustionStopsRestarting) {
  ProductCache cache(4);
  // Every publication wedges forever: the watchdog burns its whole budget,
  // then gives the component up (the fail-safe never spins unbounded).
  auto release = std::make_shared<std::atomic<bool>>(false);
  PublisherConfig cfg;
  cfg.stall_timeout_s = 0.03;
  cfg.watchdog_poll_s = 0.005;
  cfg.max_restarts = 2;
  cfg.publish_hook = [release](std::uint64_t) {
    while (!release->load()) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
  };
  {
    Publisher pub(&cache, cfg);
    pub.submit(0, frame_source(0));
    wait_until([&] { return pub.restarts() == 1; });
    pub.submit(1, frame_source(1));  // wedges the replacement too
    wait_until([&] { return pub.restarts() == 2; });
    pub.submit(2, frame_source(2));  // wedges the last replacement
    // Budget exhausted: no further restart, and drain times out instead of
    // hanging forever.
    EXPECT_FALSE(pub.drain(0.3));
    EXPECT_EQ(pub.restarts(), 2);
    EXPECT_EQ(pub.published(), 0u);
    release->store(true);  // let the wedged workers exit before join
  }
  SUCCEED();
}

TEST(Publisher, BrokenFrameSourceIsContainedAndChainRestartsOnKeyframe) {
  ProductCache cache(4);
  util::Metrics metrics;
  Publisher pub(&cache, {}, &metrics);
  pub.submit(0, frame_source(0));
  ASSERT_TRUE(pub.drain());
  // A throwing frame builder must not kill the worker or the cache…
  pub.submit(1, []() -> ProductFrame {
    throw std::runtime_error("forecast state unavailable");
  });
  ASSERT_TRUE(pub.drain());
  EXPECT_EQ(metrics.counter("serve.publish.error"), 1u);
  EXPECT_EQ(cache.snapshot()->latest_cycle(), 0u);
  // …and the delta chain restarts from a keyframe (the base was dropped).
  pub.submit(2, frame_source(2));
  ASSERT_TRUE(pub.drain());
  const CycleProducts* after = cache.snapshot()->find_cycle(2);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->delta_tiles, 0u);
  EXPECT_GT(after->keyframe_tiles, 0u);
}

TEST(Publisher, ServesConsistentTilesWhilePublishing) {
  // End-to-end serve-side stress: readers hammer the TileServer while the
  // publisher streams cycles; every hit must decode (tsan + asan workout).
  ProductCache cache(4);
  Publisher pub(&cache, {});
  TileServer server(&cache);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> decoded{0};
  for (int r = 0; r < 3; ++r)
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto resp =
            server.get({TileKey{ProductKind::kMapView, 0, 0}, kLatestCycle});
        if (!resp.hit()) continue;
        if (resp.tile->is_keyframe()) {
          decode_tile(*resp.tile, nullptr, kNoBaseCycle);
          decoded.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });

  for (std::uint64_t c = 0; c < 40; ++c) {
    pub.submit(c, frame_source(c));
    ASSERT_TRUE(pub.drain());
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(pub.published(), 40u);
  EXPECT_GT(decoded.load(), 0u);
}

}  // namespace
}  // namespace bda::serve
