// TileServer contract tests: response statuses, the staleness contract,
// hit/miss accounting, and metrics flushing.
#include <gtest/gtest.h>

#include <memory>

#include "serve/tile_server.hpp"
#include "util/metrics.hpp"

namespace bda::serve {
namespace {

const TileKey kKey{ProductKind::kMapView, 0, 0};

std::shared_ptr<const CycleProducts> make_cycle(std::uint64_t cycle) {
  auto p = std::make_shared<CycleProducts>();
  p->cycle = cycle;
  EncodedTile t;
  t.key = kKey;
  t.cycle = cycle;
  t.nx = 1;
  t.ny = 1;
  t.nz = 1;
  t.bytes = {std::uint8_t(cycle & 0xFF)};
  p->tiles.emplace(t.key, t);
  return p;
}

TEST(TileServer, EmptyCacheMisses) {
  ProductCache cache(2);
  TileServer server(&cache);
  const auto resp = server.get({kKey, kLatestCycle});
  EXPECT_EQ(resp.status, ServeStatus::kEmpty);
  EXPECT_FALSE(resp.hit());
  EXPECT_EQ(resp.tile, nullptr);
  EXPECT_EQ(server.requests(), 1u);
  EXPECT_EQ(server.misses(), 1u);
}

TEST(TileServer, LatestRequestServesCacheHead) {
  ProductCache cache(3);
  ASSERT_TRUE(cache.publish(make_cycle(4)));
  ASSERT_TRUE(cache.publish(make_cycle(5)));
  TileServer server(&cache);
  const auto resp = server.get({kKey, kLatestCycle});
  ASSERT_TRUE(resp.hit());
  EXPECT_EQ(resp.served_cycle, 5u);
  EXPECT_EQ(resp.latest_cycle, 5u);
  // kLatest is never stale by construction.
  EXPECT_EQ(resp.staleness_cycles(), 0u);
  ASSERT_NE(resp.tile, nullptr);
  EXPECT_EQ(resp.tile->cycle, 5u);
}

TEST(TileServer, PinnedCycleHitReportsStaleness) {
  ProductCache cache(3);
  ASSERT_TRUE(cache.publish(make_cycle(4)));
  ASSERT_TRUE(cache.publish(make_cycle(5)));
  ASSERT_TRUE(cache.publish(make_cycle(6)));
  TileServer server(&cache);
  const auto resp = server.get({kKey, 4});
  ASSERT_TRUE(resp.hit());
  EXPECT_EQ(resp.served_cycle, 4u);
  EXPECT_EQ(resp.latest_cycle, 6u);
  EXPECT_EQ(resp.staleness_cycles(), 2u);
  // A hit can never be staler than the retention window: anything older
  // has been evicted and answers kStaleCycle instead.
  EXPECT_LT(resp.staleness_cycles(), cache.retention_cycles());
}

TEST(TileServer, RetiredCycleIsStaleMissNotSilentlyOld) {
  ProductCache cache(2);
  for (std::uint64_t c = 1; c <= 5; ++c)
    ASSERT_TRUE(cache.publish(make_cycle(c)));
  TileServer server(&cache);
  const auto resp = server.get({kKey, 1});  // evicted long ago
  EXPECT_EQ(resp.status, ServeStatus::kStaleCycle);
  EXPECT_FALSE(resp.hit());
  EXPECT_EQ(resp.tile, nullptr);
  EXPECT_EQ(resp.latest_cycle, 5u);
}

TEST(TileServer, UnknownTileKeyMisses) {
  ProductCache cache(2);
  ASSERT_TRUE(cache.publish(make_cycle(1)));
  TileServer server(&cache);
  const auto resp = server.get({TileKey{ProductKind::kVolume3D, 9, 9}, 1});
  EXPECT_EQ(resp.status, ServeStatus::kUnknownTile);
  EXPECT_EQ(resp.tile, nullptr);
}

TEST(TileServer, ResponsePinKeepsTileAlivePastEviction) {
  ProductCache cache(2);
  ASSERT_TRUE(cache.publish(make_cycle(1)));
  TileServer server(&cache);
  const auto resp = server.get({kKey, 1});
  ASSERT_TRUE(resp.hit());
  // Evict cycle 1 while the response is still held.
  for (std::uint64_t c = 2; c <= 6; ++c)
    ASSERT_TRUE(cache.publish(make_cycle(c)));
  // The borrowed tile pointer is still valid through the epoch pin.
  EXPECT_EQ(resp.tile->cycle, 1u);
  EXPECT_EQ(resp.tile->bytes.size(), 1u);
}

TEST(TileServer, CountersAndMetricsFlush) {
  ProductCache cache(2);
  ASSERT_TRUE(cache.publish(make_cycle(3)));
  util::Metrics metrics;
  TileServer server(&cache, &metrics, /*sample_every=*/1);

  EXPECT_TRUE(server.get({kKey, kLatestCycle}).hit());           // hit
  EXPECT_TRUE(server.get({kKey, 3}).hit());                      // hit
  server.get({kKey, 2});                                         // stale
  server.get({TileKey{ProductKind::kVolume3D, 1, 1}, 3});        // unknown

  EXPECT_EQ(server.requests(), 4u);
  EXPECT_EQ(server.hits(), 2u);
  EXPECT_EQ(server.misses(), 2u);

  server.flush_metrics();
  EXPECT_EQ(metrics.counter("serve.requests"), 4u);
  EXPECT_EQ(metrics.counter("serve.hit"), 2u);
  EXPECT_EQ(metrics.counter("serve.miss.stale"), 1u);
  EXPECT_EQ(metrics.counter("serve.miss.unknown"), 1u);
  EXPECT_EQ(metrics.counter("serve.miss.empty"), 0u);
  // Latency was sampled on every request here.
  EXPECT_EQ(metrics.samples("serve.request"), 4u);

  // Flush is a delta, not a re-count: flushing again adds nothing.
  server.flush_metrics();
  EXPECT_EQ(metrics.counter("serve.requests"), 4u);
  EXPECT_EQ(metrics.counter("serve.hit"), 2u);

  // …and the next request after a flush lands in the next delta.
  EXPECT_TRUE(server.get({kKey, kLatestCycle}).hit());
  server.flush_metrics();
  EXPECT_EQ(metrics.counter("serve.requests"), 5u);
  EXPECT_EQ(metrics.counter("serve.hit"), 3u);
}

TEST(TileServer, LatencySamplingHonorsSampleEvery) {
  ProductCache cache(2);
  ASSERT_TRUE(cache.publish(make_cycle(1)));
  util::Metrics metrics;
  TileServer server(&cache, &metrics, /*sample_every=*/8);
  for (int n = 0; n < 64; ++n) server.get({kKey, kLatestCycle});
  EXPECT_EQ(metrics.samples("serve.request"), 8u);
}

}  // namespace
}  // namespace bda::serve
