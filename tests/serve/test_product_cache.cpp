// ProductCache contract tests: atomic epoch swap, bounded retention,
// monotonic-cycle publication, and snapshot pinning under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "serve/product_cache.hpp"

namespace bda::serve {
namespace {

std::shared_ptr<const CycleProducts> make_cycle(std::uint64_t cycle) {
  auto p = std::make_shared<CycleProducts>();
  p->cycle = cycle;
  EncodedTile t;
  t.key = TileKey{ProductKind::kMapView, 0, 0};
  t.cycle = cycle;
  t.nx = 1;
  t.ny = 1;
  t.nz = 1;
  t.bytes = {std::uint8_t(cycle & 0xFF)};
  p->tiles.emplace(t.key, t);
  return p;
}

TEST(ProductCache, EmptyCacheHasEmptyEpoch) {
  ProductCache cache(3);
  const auto epoch = cache.snapshot();
  ASSERT_NE(epoch, nullptr);
  EXPECT_TRUE(epoch->empty());
  EXPECT_EQ(epoch->latest(), nullptr);
  EXPECT_EQ(epoch->find_cycle(0), nullptr);
}

TEST(ProductCache, PublishAdvancesLatest) {
  ProductCache cache(3);
  ASSERT_TRUE(cache.publish(make_cycle(5)));
  ASSERT_TRUE(cache.publish(make_cycle(6)));
  const auto epoch = cache.snapshot();
  EXPECT_EQ(epoch->latest_cycle(), 6u);
  ASSERT_NE(epoch->latest(), nullptr);
  EXPECT_EQ(epoch->latest()->cycle, 6u);
  EXPECT_NE(epoch->find_cycle(5), nullptr);
}

TEST(ProductCache, RetentionEvictsExactlyOutsideWindow) {
  ProductCache cache(3);
  for (std::uint64_t c = 0; c < 7; ++c)
    ASSERT_TRUE(cache.publish(make_cycle(c)));
  const auto epoch = cache.snapshot();
  // Window is exactly the newest 3 cycles: 4, 5, 6 — nothing more, nothing
  // less.
  EXPECT_EQ(epoch->cycles.size(), 3u);
  for (std::uint64_t c = 0; c < 4; ++c)
    EXPECT_EQ(epoch->find_cycle(c), nullptr) << "cycle " << c << " retained";
  for (std::uint64_t c = 4; c < 7; ++c)
    EXPECT_NE(epoch->find_cycle(c), nullptr) << "cycle " << c << " evicted";
}

TEST(ProductCache, ZeroRetentionClampsToOne) {
  ProductCache cache(0);
  EXPECT_EQ(cache.retention_cycles(), 1u);
  ASSERT_TRUE(cache.publish(make_cycle(1)));
  ASSERT_TRUE(cache.publish(make_cycle(2)));
  EXPECT_EQ(cache.snapshot()->cycles.size(), 1u);
}

TEST(ProductCache, StalePublishIsRejected) {
  ProductCache cache(3);
  ASSERT_TRUE(cache.publish(make_cycle(10)));
  // Not strictly newer: both an older and an equal cycle bounce.
  EXPECT_FALSE(cache.publish(make_cycle(9)));
  EXPECT_FALSE(cache.publish(make_cycle(10)));
  EXPECT_EQ(cache.rejected_stale(), 2u);
  const auto epoch = cache.snapshot();
  EXPECT_EQ(epoch->latest_cycle(), 10u);
  EXPECT_EQ(epoch->cycles.size(), 1u);
}

TEST(ProductCache, SnapshotPinsRetiredCycles) {
  ProductCache cache(2);
  ASSERT_TRUE(cache.publish(make_cycle(1)));
  const auto old_epoch = cache.snapshot();
  // Publish far past the retention window: cycle 1 retires from the cache…
  for (std::uint64_t c = 2; c < 8; ++c)
    ASSERT_TRUE(cache.publish(make_cycle(c)));
  EXPECT_EQ(cache.snapshot()->find_cycle(1), nullptr);
  // …but the in-flight reader's snapshot still resolves it, unchanged.
  const CycleProducts* pinned = old_epoch->find_cycle(1);
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->cycle, 1u);
  EXPECT_EQ(pinned->tiles.size(), 1u);
}

// The tsan race workout: a publisher thread swapping epochs as fast as it
// can while reader threads snapshot and walk whatever cycle they see.
TEST(ProductCache, StressConcurrentPublishAndSnapshot) {
  ProductCache cache(4);
  constexpr std::uint64_t kCycles = 400;
  constexpr int kReaders = 4;
  constexpr int kReadsEach = 2000;
  // Seed one cycle before the readers start so no snapshot is ever empty —
  // every reader iteration exercises the full walk, regardless of how the
  // scheduler interleaves readers with the publish loop.
  ASSERT_TRUE(cache.publish(make_cycle(1)));

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r)
    readers.emplace_back([&] {
      std::uint64_t last_seen = 0;
      for (int n = 0; n < kReadsEach; ++n) {
        const auto epoch = cache.snapshot();
        ASSERT_FALSE(epoch->empty());
        // Monotonic reads: the head never goes backwards.
        EXPECT_GE(epoch->latest_cycle(), last_seen);
        last_seen = epoch->latest_cycle();
        // Every cycle in the window is internally consistent.
        for (const auto& [c, prod] : epoch->cycles) {
          EXPECT_EQ(prod->cycle, c);
          EXPECT_EQ(prod->tiles.size(), 1u);
        }
        EXPECT_LE(epoch->cycles.size(), cache.retention_cycles());
      }
    });

  for (std::uint64_t c = 2; c <= kCycles; ++c)
    ASSERT_TRUE(cache.publish(make_cycle(c)));
  for (auto& t : readers) t.join();

  EXPECT_EQ(cache.snapshot()->latest_cycle(), kCycles);
}

}  // namespace
}  // namespace bda::serve
