#include <gtest/gtest.h>

#include <cmath>

#include "pawr/scan.hpp"

namespace bda::pawr {
namespace {

TEST(ScanConfig, SampleCountConsistent) {
  ScanConfig c;
  c.range_max = 10000.0f;
  c.gate_length = 500.0f;
  c.n_azimuth = 8;
  c.n_elevation = 4;
  EXPECT_EQ(c.n_gate(), 20);
  EXPECT_EQ(c.n_samples(), std::size_t(4 * 8 * 20));
}

TEST(ScanConfig, PaperScaleIsAbout100MB) {
  // The paper moves ~100 MB per 30-s scan through JIT-DT.
  const ScanConfig c = ScanConfig::paper_scale();
  VolumeScan vs(c);
  const double mb = double(vs.payload_bytes()) / 1.0e6;
  EXPECT_GT(mb, 80.0);
  EXPECT_LT(mb, 120.0);
  EXPECT_DOUBLE_EQ(c.period_s, 30.0);
  EXPECT_FLOAT_EQ(c.range_max, 60000.0f);
}

TEST(VolumeScan, InitializedToClearAirAndValid) {
  ScanConfig c;
  c.n_azimuth = 4;
  c.n_elevation = 2;
  c.range_max = 2000.0f;
  c.gate_length = 500.0f;
  VolumeScan vs(c);
  for (std::size_t n = 0; n < vs.n_samples(); ++n) {
    EXPECT_FLOAT_EQ(vs.reflectivity[n], -20.0f);
    EXPECT_FLOAT_EQ(vs.doppler[n], 0.0f);
    EXPECT_EQ(vs.flag[n], kValid);
  }
}

TEST(VolumeScan, IndexIsBijective) {
  ScanConfig c;
  c.n_azimuth = 5;
  c.n_elevation = 3;
  c.range_max = 3500.0f;
  c.gate_length = 500.0f;
  VolumeScan vs(c);
  std::vector<bool> hit(vs.n_samples(), false);
  for (int e = 0; e < c.n_elevation; ++e)
    for (int a = 0; a < c.n_azimuth; ++a)
      for (int g = 0; g < c.n_gate(); ++g) {
        const auto n = vs.index(e, a, g);
        ASSERT_LT(n, hit.size());
        EXPECT_FALSE(hit[n]);
        hit[n] = true;
      }
}

TEST(VolumeScan, SamplePositionsFollowBeamGeometry) {
  ScanConfig c;
  c.n_azimuth = 4;       // 0, 90, 180, 270 degrees
  c.n_elevation = 10;
  c.elev_max_deg = 90.0f;
  c.range_max = 10000.0f;
  c.gate_length = 1000.0f;
  VolumeScan vs(c);
  real dx, dy, dz;
  // Azimuth 0 = north (+y), elevation 0 = horizontal.
  vs.sample_position(0, 0, 4, dx, dy, dz);
  EXPECT_NEAR(dx, 0.0f, 1.0f);
  EXPECT_NEAR(dy, 4500.0f, 1.0f);
  EXPECT_NEAR(dz, 0.0f, 1.0f);
  // Azimuth index 1 = east (+x).
  vs.sample_position(0, 1, 4, dx, dy, dz);
  EXPECT_NEAR(dx, 4500.0f, 1.0f);
  EXPECT_NEAR(dy, 0.0f, 1.0f);
  // Range increases with gate index.
  real dx2, dy2, dz2;
  vs.sample_position(0, 1, 8, dx2, dy2, dz2);
  EXPECT_GT(dx2, dx);
  // Higher elevation tilts the beam up.
  vs.sample_position(5, 1, 4, dx2, dy2, dz2);
  EXPECT_GT(dz2, 100.0f);
  const real r = std::sqrt(dx2 * dx2 + dy2 * dy2 + dz2 * dz2);
  EXPECT_NEAR(r, 4500.0f, 1.0f);  // slant range preserved
}

TEST(VolumeScan, PayloadBytesMatchesArrays) {
  ScanConfig c;
  c.n_azimuth = 3;
  c.n_elevation = 2;
  c.range_max = 1500.0f;
  c.gate_length = 500.0f;
  VolumeScan vs(c);
  EXPECT_EQ(vs.payload_bytes(),
            vs.reflectivity.size() * 4 + vs.doppler.size() * 4 +
                vs.flag.size());
}

}  // namespace
}  // namespace bda::pawr
