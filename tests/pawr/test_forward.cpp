#include <gtest/gtest.h>

#include <cmath>

#include "pawr/forward.hpp"
#include "scale/reference.hpp"

namespace bda::pawr {
namespace {

using scale::Grid;
using scale::State;

Grid fgrid() { return Grid(20, 20, 10, 500.0f, 10000.0f); }

ScanConfig small_scan() {
  ScanConfig c;
  c.range_max = 8000.0f;
  c.gate_length = 500.0f;
  c.n_azimuth = 36;
  c.n_elevation = 12;
  return c;
}

State storm_state(const Grid& g) {
  const auto ref =
      scale::ReferenceState::build(g, scale::convective_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  // Rain column near (7 km, 5 km), levels 2-5.
  for (idx k = 2; k <= 5; ++k)
    s.rhoq[scale::QR](14, 10, k) = s.dens(14, 10, k) * 4e-3f;
  return s;
}

RadarSimConfig center_radar() {
  RadarSimConfig rc;
  rc.radar_x = 5000.0f;
  rc.radar_y = 5000.0f;
  rc.radar_z = 50.0f;
  rc.noise_refl = 0.0f;  // deterministic for value checks
  rc.noise_dopp = 0.0f;
  rc.block_az_from = 0.0f;  // no blockage by default
  rc.block_az_to = 0.0f;
  return rc;
}

TEST(RadarSimulator, SeesTheStorm) {
  Grid g = fgrid();
  State s = storm_state(g);
  RadarSimulator sim(g, small_scan(), center_radar());
  Rng rng(1);
  const VolumeScan vs = sim.observe(s, 123.0, rng);
  EXPECT_DOUBLE_EQ(vs.t_obs, 123.0);
  float zmax = -100;
  for (std::size_t n = 0; n < vs.n_samples(); ++n)
    if (vs.flag[n] == kValid) zmax = std::max(zmax, vs.reflectivity[n]);
  EXPECT_GT(zmax, 35.0f);  // the 4 g/kg rain column
}

TEST(RadarSimulator, ClearAirWhenNoHydrometeors) {
  Grid g = fgrid();
  const auto ref =
      scale::ReferenceState::build(g, scale::stable_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  RadarSimulator sim(g, small_scan(), center_radar());
  Rng rng(2);
  const VolumeScan vs = sim.observe(s, 0.0, rng);
  for (std::size_t n = 0; n < vs.n_samples(); ++n) {
    if (vs.flag[n] == kValid) {
      EXPECT_LE(vs.reflectivity[n], -19.0f);
    }
  }
}

TEST(RadarSimulator, OutOfDomainFlagged) {
  Grid g = fgrid();
  State s = storm_state(g);
  ScanConfig sc = small_scan();
  sc.range_max = 30000.0f;  // beams exit the 10-km domain
  RadarSimulator sim(g, sc, center_radar());
  Rng rng(3);
  const VolumeScan vs = sim.observe(s, 0.0, rng);
  std::size_t out = 0;
  for (auto f : vs.flag)
    if (f == kOutOfDomain) ++out;
  EXPECT_GT(out, vs.n_samples() / 4);
}

TEST(RadarSimulator, BlockedSectorFlagged) {
  Grid g = fgrid();
  State s = storm_state(g);
  RadarSimConfig rc = center_radar();
  rc.block_az_from = 90.0f;
  rc.block_az_to = 120.0f;
  RadarSimulator sim(g, small_scan(), rc);
  Rng rng(4);
  const VolumeScan vs = sim.observe(s, 0.0, rng);
  // Azimuth samples in [90, 120) deg: indices 9, 10, 11 of 36.  Samples
  // that leave the domain are flagged out-of-domain first (the blockage
  // applies to beams that would otherwise be measured), so check the
  // blocked flag on in-domain gates and never on an unblocked azimuth.
  std::size_t blocked = 0;
  for (int e = 0; e < vs.cfg.n_elevation; ++e)
    for (int gte = 0; gte < vs.cfg.n_gate(); ++gte) {
      const auto f9 = vs.flag[vs.index(e, 9, gte)];
      EXPECT_TRUE(f9 == kBeamBlocked || f9 == kOutOfDomain);
      if (f9 == kBeamBlocked) ++blocked;
      EXPECT_NE(vs.flag[vs.index(e, 20, gte)], kBeamBlocked);
    }
  EXPECT_GT(blocked, 20u);
}

TEST(RadarSimulator, LowGatesClutterFlagged) {
  Grid g = fgrid();
  State s = storm_state(g);
  RadarSimConfig rc = center_radar();
  rc.clutter_height = 300.0f;
  RadarSimulator sim(g, small_scan(), rc);
  Rng rng(5);
  const VolumeScan vs = sim.observe(s, 0.0, rng);
  // Elevation 0 beams stay below 300 m for the whole 8-km range.
  for (int a = 0; a < vs.cfg.n_azimuth; ++a)
    EXPECT_EQ(vs.flag[vs.index(0, a, 5)], kClutter);
}

TEST(RadarSimulator, DopplerSignConsistentWithWind) {
  Grid g = fgrid();
  const auto ref =
      scale::ReferenceState::build(g, scale::stable_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  for (idx i = -Grid::kHalo; i < s.nx + Grid::kHalo; ++i)
    for (idx j = -Grid::kHalo; j < s.ny + Grid::kHalo; ++j)
      for (idx k = 0; k < s.nz; ++k)
        s.momx(i, j, k) = s.dens(i, j, k) * 12.0f;  // eastward
  RadarSimulator sim(g, small_scan(), center_radar());
  Rng rng(6);
  const VolumeScan vs = sim.observe(s, 0.0, rng);
  // East-pointing azimuth (index 9 of 36 = 90 deg), low elevation,
  // mid-range: positive radial velocity (away from the radar).
  const auto n_east = vs.index(1, 9, 6);
  ASSERT_EQ(vs.flag[n_east], kValid);
  EXPECT_GT(vs.doppler[n_east], 8.0f);
  // West-pointing azimuth (27): negative.
  const auto n_west = vs.index(1, 27, 6);
  ASSERT_EQ(vs.flag[n_west], kValid);
  EXPECT_LT(vs.doppler[n_west], -8.0f);
}

TEST(RadarSimulator, XBandAttenuationWeakensFarEcho) {
  // Two rain columns along the same beam: with attenuation on, the far one
  // is observed weaker than with attenuation off, and the near one is
  // (almost) untouched.
  Grid g = fgrid();
  const auto ref =
      scale::ReferenceState::build(g, scale::convective_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  // Radar at (5000, 5000); heavy rain at cells along +x: near (12, 10) and
  // far (18, 10).  Full-depth columns so no beam elevation can pass under
  // the near rain on its way to the far cell.
  for (idx k = 0; k < g.nz(); ++k) {
    s.rhoq[scale::QR](12, 10, k) = s.dens(12, 10, k) * 6e-3f;
    s.rhoq[scale::QR](18, 10, k) = s.dens(18, 10, k) * 6e-3f;
  }
  RadarSimConfig off = center_radar();
  RadarSimConfig on = center_radar();
  on.attenuation = true;
  ScanConfig sc = small_scan();
  sc.range_max = 5000.0f;
  sc.gate_length = 250.0f;
  Rng r1(1), r2(1);
  const VolumeScan vs_off = RadarSimulator(g, sc, off).observe(s, 0, r1);
  const VolumeScan vs_on = RadarSimulator(g, sc, on).observe(s, 0, r2);

  // Find the maximum observed dBZ in the near and far column ranges along
  // the eastward azimuth (index 9 of 36).
  auto max_in_range = [&](const VolumeScan& vs, real r_lo, real r_hi) {
    float m = -100;
    for (int e = 0; e < sc.n_elevation; ++e)
      for (int gte = 0; gte < sc.n_gate(); ++gte) {
        const real r = (real(gte) + 0.5f) * sc.gate_length;
        if (r < r_lo || r > r_hi) continue;
        const auto n = vs.index(e, 9, gte);
        if (vs.flag[n] == kValid) m = std::max(m, vs.reflectivity[n]);
      }
    return m;
  };
  const float near_off = max_in_range(vs_off, 1000, 2000);
  const float near_on = max_in_range(vs_on, 1000, 2000);
  const float far_off = max_in_range(vs_off, 4000, 4800);
  const float far_on = max_in_range(vs_on, 4000, 4800);
  EXPECT_NEAR(near_on, near_off, 1.0f);       // little path in front of it
  EXPECT_LT(far_on, far_off - 1.0f);          // shadowed by the near cell
}

TEST(RadarSimulator, NoiseIsReproducibleWithSeed) {
  Grid g = fgrid();
  State s = storm_state(g);
  RadarSimConfig rc = center_radar();
  rc.noise_refl = 1.0f;
  RadarSimulator sim(g, small_scan(), rc);
  Rng rng1(42), rng2(42);
  const VolumeScan a = sim.observe(s, 0.0, rng1);
  const VolumeScan b = sim.observe(s, 0.0, rng2);
  for (std::size_t n = 0; n < a.n_samples(); ++n)
    EXPECT_EQ(a.reflectivity[n], b.reflectivity[n]);
}

}  // namespace
}  // namespace bda::pawr
