#include <gtest/gtest.h>

#include <filesystem>

#include "pawr/datafile.hpp"
#include "util/rng.hpp"

namespace bda::pawr {
namespace {

VolumeScan sample_scan() {
  ScanConfig c;
  c.range_max = 4000.0f;
  c.gate_length = 500.0f;
  c.n_azimuth = 12;
  c.n_elevation = 6;
  VolumeScan vs(c);
  vs.t_obs = 1627586850.0;  // 19:27:30 UTC, July 29, 2021
  Rng rng(3);
  for (std::size_t n = 0; n < vs.n_samples(); ++n) {
    vs.reflectivity[n] = float(rng.uniform(-20, 60));
    vs.doppler[n] = float(rng.uniform(-30, 30));
    vs.flag[n] = std::uint8_t(rng.uniform_int(4));
  }
  return vs;
}

TEST(ScanFile, EncodeDecodeRoundtrip) {
  const VolumeScan vs = sample_scan();
  const auto buf = encode_scan(vs);
  const VolumeScan back = decode_scan(buf);
  EXPECT_DOUBLE_EQ(back.t_obs, vs.t_obs);
  EXPECT_EQ(back.cfg.n_azimuth, vs.cfg.n_azimuth);
  EXPECT_EQ(back.cfg.n_elevation, vs.cfg.n_elevation);
  EXPECT_FLOAT_EQ(back.cfg.gate_length, vs.cfg.gate_length);
  ASSERT_EQ(back.n_samples(), vs.n_samples());
  for (std::size_t n = 0; n < vs.n_samples(); ++n) {
    EXPECT_EQ(back.reflectivity[n], vs.reflectivity[n]);
    EXPECT_EQ(back.doppler[n], vs.doppler[n]);
    EXPECT_EQ(back.flag[n], vs.flag[n]);
  }
}

TEST(ScanFile, CorruptionRejected) {
  auto buf = encode_scan(sample_scan());
  buf[buf.size() / 3] ^= 0x40;
  EXPECT_THROW(decode_scan(buf), std::runtime_error);
}

TEST(ScanFile, TruncationRejected) {
  auto buf = encode_scan(sample_scan());
  buf.resize(buf.size() / 2);
  EXPECT_THROW(decode_scan(buf), std::runtime_error);
}

TEST(ScanFile, BadMagicRejected) {
  auto buf = encode_scan(sample_scan());
  buf[1] = 'X';
  EXPECT_THROW(decode_scan(buf), std::runtime_error);
}

TEST(ScanFile, FileRoundtrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "bda_scan_test.pwr").string();
  const VolumeScan vs = sample_scan();
  write_scan(path, vs);
  const VolumeScan back = read_scan(path);
  EXPECT_EQ(back.n_samples(), vs.n_samples());
  EXPECT_EQ(back.reflectivity[7], vs.reflectivity[7]);
  std::filesystem::remove(path);
}

TEST(ScanFile, MissingFileThrows) {
  EXPECT_THROW(read_scan("/no/such/scan.pwr"), std::runtime_error);
}

TEST(ScanFile, SizeIsHeaderPlusPayloadPlusCrc) {
  const VolumeScan vs = sample_scan();
  const auto buf = encode_scan(vs);
  // magic 4 + t_obs 8 + range 4 + gate 4 + naz 4 + nel 4 + elevmax 4 +
  // period 8 = 40 header bytes, + payload + 4 CRC.
  EXPECT_EQ(buf.size(), 40 + vs.payload_bytes() + 4);
}

}  // namespace
}  // namespace bda::pawr
