#include <gtest/gtest.h>

#include <cmath>

#include "pawr/forward.hpp"
#include "pawr/obsgen.hpp"
#include "scale/reference.hpp"

namespace bda::pawr {
namespace {

using scale::Grid;
using scale::State;

Grid ggrid() { return Grid(20, 20, 10, 500.0f, 10000.0f); }

ScanConfig dense_scan() {
  ScanConfig c;
  c.range_max = 9000.0f;
  c.gate_length = 250.0f;
  c.n_azimuth = 72;
  c.n_elevation = 24;
  return c;
}

TEST(ObsGen, RainColumnProducesReflectivityAndDopplerObs) {
  Grid g = ggrid();
  const auto ref =
      scale::ReferenceState::build(g, scale::convective_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  for (idx k = 2; k <= 5; ++k)
    s.rhoq[scale::QR](14, 10, k) = s.dens(14, 10, k) * 4e-3f;

  RadarSimConfig rc;
  rc.radar_x = 5000.0f;
  rc.radar_y = 5000.0f;
  rc.noise_refl = 0.5f;
  rc.noise_dopp = 0.2f;
  rc.block_az_from = rc.block_az_to = 0.0f;
  RadarSimulator sim(g, dense_scan(), rc);
  Rng rng(9);
  const VolumeScan vs = sim.observe(s, 0.0, rng);

  ObsGenConfig oc;
  oc.clear_air = false;
  const auto obs = regrid_scan(vs, g, rc.radar_x, rc.radar_y, rc.radar_z, oc);
  ASSERT_FALSE(obs.empty());

  // Table 2 errors attached.
  std::size_t n_refl = 0, n_dopp = 0;
  bool found_rain_cell = false;
  for (const auto& o : obs) {
    if (o.type == letkf::ObsType::kReflectivity) {
      ++n_refl;
      EXPECT_FLOAT_EQ(o.error, 5.0f);
      // Rain obs should sit near the column (x ~ 7250, y ~ 5250).
      if (std::abs(o.x - 7250.0f) < 600.0f &&
          std::abs(o.y - 5250.0f) < 600.0f && o.value > 30.0f)
        found_rain_cell = true;
    } else {
      ++n_dopp;
      EXPECT_FLOAT_EQ(o.error, 3.0f);
    }
  }
  EXPECT_GT(n_refl, 0u);
  EXPECT_GT(n_dopp, 0u);
  EXPECT_TRUE(found_rain_cell);
}

TEST(ObsGen, ClearAirObsAreThinned) {
  Grid g = ggrid();
  const auto ref = scale::ReferenceState::build(g, scale::stable_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  RadarSimConfig rc;
  rc.radar_x = 5000.0f;
  rc.radar_y = 5000.0f;
  rc.noise_refl = 0.0f;
  rc.noise_dopp = 0.0f;
  rc.block_az_from = rc.block_az_to = 0.0f;
  RadarSimulator sim(g, dense_scan(), rc);
  Rng rng(10);
  const VolumeScan vs = sim.observe(s, 0.0, rng);

  ObsGenConfig with, without;
  with.clear_air = true;
  with.clear_air_thin = 4;
  without.clear_air = false;
  const auto obs_with =
      regrid_scan(vs, g, rc.radar_x, rc.radar_y, rc.radar_z, with);
  const auto obs_without =
      regrid_scan(vs, g, rc.radar_x, rc.radar_y, rc.radar_z, without);
  EXPECT_TRUE(obs_without.empty());  // no rain anywhere
  EXPECT_FALSE(obs_with.empty());
  // Thinning: clear-air obs only on the i%4==0, j%4==0 checkerboard.
  for (const auto& o : obs_with) {
    const idx i = static_cast<idx>(o.x / g.dx());
    const idx j = static_cast<idx>(o.y / g.dx());
    EXPECT_EQ(i % 4, 0) << o.x;
    EXPECT_EQ(j % 4, 0) << o.y;
  }
}

TEST(ObsGen, HeightRangeFilterApplies) {
  Grid g = ggrid();
  const auto ref =
      scale::ReferenceState::build(g, scale::convective_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  for (idx k = 0; k < 10; ++k)
    s.rhoq[scale::QR](14, 10, k) = s.dens(14, 10, k) * 4e-3f;
  RadarSimConfig rc;
  rc.radar_x = 5000.0f;
  rc.radar_y = 5000.0f;
  rc.block_az_from = rc.block_az_to = 0.0f;
  RadarSimulator sim(g, dense_scan(), rc);
  Rng rng(11);
  const VolumeScan vs = sim.observe(s, 0.0, rng);
  ObsGenConfig oc;
  oc.z_min = 1000.0f;
  oc.z_max = 5000.0f;
  oc.clear_air = false;
  const auto obs = regrid_scan(vs, g, rc.radar_x, rc.radar_y, rc.radar_z, oc);
  for (const auto& o : obs) {
    EXPECT_GE(o.z, 900.0f);
    EXPECT_LE(o.z, 5100.0f);
  }
}

TEST(ObsGen, InvalidSamplesExcluded) {
  Grid g = ggrid();
  ScanConfig sc = dense_scan();
  VolumeScan vs(sc);
  vs.reflectivity.assign(vs.n_samples(), 50.0f);  // all heavy rain...
  vs.flag.assign(vs.n_samples(), kBeamBlocked);   // ...but all blocked
  const auto obs = regrid_scan(vs, g, 5000.0f, 5000.0f, 50.0f, {});
  EXPECT_TRUE(obs.empty());
}

TEST(ObsGen, CoverageCountsFlags) {
  ScanConfig sc;
  sc.range_max = 1000.0f;
  sc.gate_length = 500.0f;
  sc.n_azimuth = 2;
  sc.n_elevation = 1;
  VolumeScan vs(sc);  // 4 samples
  vs.flag[0] = kValid;
  vs.flag[1] = kOutOfDomain;
  vs.flag[2] = kBeamBlocked;
  vs.flag[3] = kClutter;
  const auto cov = scan_coverage(vs);
  EXPECT_EQ(cov.valid, 1u);
  EXPECT_EQ(cov.out_of_domain, 1u);
  EXPECT_EQ(cov.blocked, 1u);
  EXPECT_EQ(cov.clutter, 1u);
}

}  // namespace
}  // namespace bda::pawr
