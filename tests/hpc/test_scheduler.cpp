#include <gtest/gtest.h>

#include "hpc/scheduler.hpp"

namespace bda::hpc {
namespace {

TEST(ForecastScheduler, PaperConfigurationNeverDrops) {
  // 4 groups x 30-s stagger covers the 120-s runtime exactly: one product
  // forecast per 30 s, as in the operational deployment.
  ForecastScheduler sched({880, 4, 30.0, 120.0});
  const auto jobs = sched.simulate(200);
  for (const auto& j : jobs) EXPECT_FALSE(j.dropped);
  // Completion exactly runtime after each admission.
  for (std::size_t c = 0; c < jobs.size(); ++c) {
    EXPECT_DOUBLE_EQ(jobs[c].t_init, 30.0 * double(c));
    EXPECT_DOUBLE_EQ(jobs[c].t_done - jobs[c].t_start, 120.0);
  }
}

TEST(ForecastScheduler, GroupsRotateRoundRobin) {
  ForecastScheduler sched({880, 4, 30.0, 120.0});
  const auto jobs = sched.simulate(12);
  for (std::size_t c = 4; c < jobs.size(); ++c)
    EXPECT_EQ(jobs[c].group, jobs[c - 4].group);
}

TEST(ForecastScheduler, UndersizedPoolDrops) {
  // 2 groups cannot sustain a 120-s runtime every 30 s: half the cycles
  // find no free group.
  ForecastScheduler sched({880, 2, 30.0, 120.0});
  const auto jobs = sched.simulate(100);
  std::size_t dropped = 0;
  for (const auto& j : jobs)
    if (j.dropped) ++dropped;
  EXPECT_GT(dropped, 40u);
  EXPECT_LT(dropped, 60u);
}

TEST(ForecastScheduler, ShortRuntimeLeavesGroupsIdle) {
  ForecastScheduler sched({880, 4, 30.0, 25.0});
  const auto jobs = sched.simulate(50);
  for (const auto& j : jobs) EXPECT_FALSE(j.dropped);
  // Only one group ever busy at a time.
  EXPECT_LE(sched.peak_nodes_used(), sched.nodes_per_group());
}

TEST(ForecastScheduler, PeakNodesBoundedByPool) {
  ForecastScheduler sched({880, 4, 30.0, 119.0});
  sched.simulate(100);
  EXPECT_LE(sched.peak_nodes_used(), 880);
  EXPECT_EQ(sched.nodes_per_group(), 220);
}

TEST(ForecastScheduler, VariableRuntimesHandled) {
  // Rain-dependent runtimes: some cycles run long; the scheduler absorbs
  // moderate excursions without dropping everything.
  ForecastScheduler sched({880, 4, 30.0, 110.0});
  std::vector<double> runtimes(60, 110.0);
  for (std::size_t c = 20; c < 24; ++c) runtimes[c] = 125.0;  // heavy rain
  const auto jobs = sched.simulate(60, &runtimes);
  std::size_t dropped = 0;
  for (const auto& j : jobs)
    if (j.dropped) ++dropped;
  EXPECT_LE(dropped, 4u);
}

TEST(ForecastScheduler, DroppedJobsHaveNoGroup) {
  ForecastScheduler sched({880, 1, 30.0, 120.0});
  const auto jobs = sched.simulate(10);
  for (const auto& j : jobs)
    if (j.dropped) {
      EXPECT_EQ(j.group, -1);
      EXPECT_DOUBLE_EQ(j.t_done, 0.0);
    }
}

}  // namespace
}  // namespace bda::hpc
