#include <gtest/gtest.h>

#include "hpc/scheduler.hpp"

namespace bda::hpc {
namespace {

TEST(ForecastScheduler, PaperConfigurationNeverDrops) {
  // 4 groups x 30-s stagger covers the 120-s runtime exactly: one product
  // forecast per 30 s, as in the operational deployment.
  ForecastScheduler sched({880, 4, 30.0, 120.0});
  const auto jobs = sched.simulate(200);
  for (const auto& j : jobs) EXPECT_FALSE(j.dropped);
  // Completion exactly runtime after each admission.
  for (std::size_t c = 0; c < jobs.size(); ++c) {
    EXPECT_DOUBLE_EQ(jobs[c].t_init, 30.0 * double(c));
    EXPECT_DOUBLE_EQ(jobs[c].t_done - jobs[c].t_start, 120.0);
  }
}

TEST(ForecastScheduler, GroupsRotateRoundRobin) {
  ForecastScheduler sched({880, 4, 30.0, 120.0});
  const auto jobs = sched.simulate(12);
  for (std::size_t c = 4; c < jobs.size(); ++c)
    EXPECT_EQ(jobs[c].group, jobs[c - 4].group);
}

TEST(ForecastScheduler, UndersizedPoolDrops) {
  // 2 groups cannot sustain a 120-s runtime every 30 s: half the cycles
  // find no free group.
  ForecastScheduler sched({880, 2, 30.0, 120.0});
  const auto jobs = sched.simulate(100);
  std::size_t dropped = 0;
  for (const auto& j : jobs)
    if (j.dropped) ++dropped;
  EXPECT_GT(dropped, 40u);
  EXPECT_LT(dropped, 60u);
}

TEST(ForecastScheduler, ShortRuntimeLeavesGroupsIdle) {
  ForecastScheduler sched({880, 4, 30.0, 25.0});
  const auto jobs = sched.simulate(50);
  for (const auto& j : jobs) EXPECT_FALSE(j.dropped);
  // Only one group ever busy at a time.
  EXPECT_LE(sched.peak_nodes_used(), sched.nodes_per_group());
}

TEST(ForecastScheduler, PeakNodesBoundedByPool) {
  ForecastScheduler sched({880, 4, 30.0, 119.0});
  sched.simulate(100);
  EXPECT_LE(sched.peak_nodes_used(), 880);
  EXPECT_EQ(sched.nodes_per_group(), 220);
}

TEST(ForecastScheduler, VariableRuntimesHandled) {
  // Rain-dependent runtimes: some cycles run long; the scheduler absorbs
  // moderate excursions without dropping everything.
  ForecastScheduler sched({880, 4, 30.0, 110.0});
  std::vector<double> runtimes(60, 110.0);
  for (std::size_t c = 20; c < 24; ++c) runtimes[c] = 125.0;  // heavy rain
  const auto jobs = sched.simulate(60, &runtimes);
  std::size_t dropped = 0;
  for (const auto& j : jobs)
    if (j.dropped) ++dropped;
  EXPECT_LE(dropped, 4u);
}

TEST(ForecastScheduler, DroppedJobsHaveNoGroup) {
  ForecastScheduler sched({880, 1, 30.0, 120.0});
  const auto jobs = sched.simulate(10);
  for (const auto& j : jobs)
    if (j.dropped) {
      EXPECT_EQ(j.group, -1);
      EXPECT_DOUBLE_EQ(j.t_done, 0.0);
    }
}

// Regression for the peak-node accounting bug: occupancy used to be sampled
// only after successful assignments, skipping the `dropped` branch — the
// one branch where the partition is by definition saturated.  A drop must
// register full-partition occupancy, both in the per-job record and in
// peak_nodes_used().
TEST(ForecastScheduler, DropRecordsFullPartitionOccupancy) {
  SchedulerConfig cfg{880, 4, 30.0, 1000.0};  // every group sticks for ages
  ForecastScheduler sched(cfg);
  const auto jobs = sched.simulate(10);
  bool saw_drop = false;
  for (const auto& j : jobs) {
    if (j.dropped) {
      saw_drop = true;
      EXPECT_EQ(j.groups_busy, cfg.n_groups);  // saturation, observed
    } else {
      EXPECT_GE(j.groups_busy, 1);
      EXPECT_LE(j.groups_busy, cfg.n_groups);
    }
  }
  ASSERT_TRUE(saw_drop);
  EXPECT_EQ(sched.peak_nodes_used(), cfg.total_nodes);
}

TEST(ForecastScheduler, SingleGroupDropPeaksAtOneGroup) {
  // With one group and a long runtime, every cycle after the first drops;
  // the peak is exactly one group's nodes — never zero (the pre-fix
  // behavior when the only admission happened at zero occupancy).
  ForecastScheduler sched({880, 1, 30.0, 10000.0});
  const auto jobs = sched.simulate(5);
  EXPECT_FALSE(jobs[0].dropped);
  EXPECT_EQ(jobs[0].groups_busy, 1);
  for (std::size_t c = 1; c < jobs.size(); ++c) {
    EXPECT_TRUE(jobs[c].dropped);
    EXPECT_EQ(jobs[c].groups_busy, 1);  // the single group == saturation
  }
  EXPECT_EQ(sched.peak_nodes_used(), 880);
}

// --- RotatingGroupPool: the one shared admission policy -------------------

TEST(RotatingGroupPool, AdmitsToEarliestFreeGroup) {
  RotatingGroupPool pool(3);
  const auto a = pool.admit(0.0, 100.0);
  const auto b = pool.admit(10.0, 50.0);
  const auto c = pool.admit(20.0, 50.0);
  EXPECT_TRUE(a.admitted && b.admitted && c.admitted);
  EXPECT_NE(a.group, b.group);
  EXPECT_NE(b.group, c.group);
  EXPECT_NE(a.group, c.group);
  // Group b frees at 60, c at 70, a at 100: next job takes b's group.
  const auto d = pool.admit(65.0, 10.0);
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(d.group, b.group);
  EXPECT_DOUBLE_EQ(d.t_start, 65.0);
}

TEST(RotatingGroupPool, ZeroWaitDropsWhenSaturated) {
  RotatingGroupPool pool(2, 0.0);
  EXPECT_TRUE(pool.admit(0.0, 100.0).admitted);
  EXPECT_TRUE(pool.admit(0.0, 100.0).admitted);
  const auto adm = pool.admit(1.0, 100.0);
  EXPECT_FALSE(adm.admitted);
  EXPECT_EQ(adm.group, -1);
  EXPECT_EQ(adm.busy_before, 2);  // saturation observed on the drop path
  EXPECT_EQ(pool.peak_busy(), 2);
}

TEST(RotatingGroupPool, WaitBudgetQueuesInsteadOfDropping) {
  RotatingGroupPool pool(1, 15.0);
  EXPECT_TRUE(pool.admit(0.0, 100.0).admitted);
  // Frees at 100: a job ready at 90 queues 10 s (within budget)...
  const auto q = pool.admit(90.0, 10.0);
  EXPECT_TRUE(q.admitted);
  EXPECT_DOUBLE_EQ(q.t_start, 100.0);
  EXPECT_DOUBLE_EQ(q.t_done, 110.0);
  // ...but one ready at 94 (16 s before the next free instant) is dropped.
  EXPECT_FALSE(pool.admit(94.0, 10.0).admitted);
}

TEST(RotatingGroupPool, ResetForgetsOccupancy) {
  RotatingGroupPool pool(2);
  pool.admit(0.0, 50.0);
  pool.admit(0.0, 50.0);
  EXPECT_EQ(pool.peak_busy(), 2);
  pool.reset();
  EXPECT_EQ(pool.peak_busy(), 0);
  EXPECT_EQ(pool.busy_at(10.0), 0);
  EXPECT_TRUE(pool.admit(0.0, 1.0).admitted);
}

// Satellite of the dedup fix: ForecastScheduler::simulate must agree with
// the shared policy call for call — same groups, same start/done times,
// same drops.  (Before the refactor the rotating-group logic lived twice,
// here and in OperationSimulator, and could drift.)
TEST(RotatingGroupPool, SchedulerAgreesWithSharedPolicy) {
  SchedulerConfig cfg{880, 3, 30.0, 100.0};
  std::vector<double> runtimes;
  for (int c = 0; c < 40; ++c)
    runtimes.push_back(80.0 + 13.0 * double(c % 5));

  ForecastScheduler sched(cfg);
  const auto jobs = sched.simulate(runtimes.size(), &runtimes);

  RotatingGroupPool pool(cfg.n_groups, 0.0);
  for (std::size_t c = 0; c < runtimes.size(); ++c) {
    const auto adm = pool.admit(double(c) * cfg.interval_s, runtimes[c]);
    EXPECT_EQ(jobs[c].dropped, !adm.admitted) << "cycle " << c;
    if (adm.admitted) {
      EXPECT_EQ(jobs[c].group, adm.group);
      EXPECT_DOUBLE_EQ(jobs[c].t_start, adm.t_start);
      EXPECT_DOUBLE_EQ(jobs[c].t_done, adm.t_done);
    }
  }
  EXPECT_EQ(sched.peak_nodes_used(),
            pool.peak_busy() * sched.nodes_per_group());
}

}  // namespace
}  // namespace bda::hpc
