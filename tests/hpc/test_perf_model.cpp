#include <gtest/gtest.h>

#include "hpc/perf_model.hpp"

namespace bda::hpc {
namespace {

BdaCostModel reference_model() {
  return BdaCostModel(reference_calibration(), FugakuSpec{});
}

TEST(CostModel, ForecastScalesLinearlyInWork) {
  const auto m = reference_model();
  const double t1 = m.t_forecast(1000000, 10, 100, 1000);
  EXPECT_NEAR(m.t_forecast(2000000, 10, 100, 1000), 2 * t1, 1e-9);
  EXPECT_NEAR(m.t_forecast(1000000, 20, 100, 1000), 2 * t1, 1e-9);
  EXPECT_NEAR(m.t_forecast(1000000, 10, 200, 1000), 2 * t1, 1e-9);
  EXPECT_NEAR(m.t_forecast(1000000, 10, 100, 2000), 0.5 * t1, 1e-9);
}

TEST(CostModel, LetkfGrowsWithEnsembleAndObs) {
  const auto m = reference_model();
  const double base = m.t_letkf(100000, 100, 100, 1000);
  EXPECT_GT(m.t_letkf(100000, 200, 100, 1000), 2 * base);  // k^2..k^3
  EXPECT_GT(m.t_letkf(100000, 100, 400, 1000), base);      // more obs
  EXPECT_NEAR(m.t_letkf(200000, 100, 100, 1000), 2 * base, 1e-9);
}

TEST(CostModel, TransferOverheadPlusBandwidth) {
  EXPECT_DOUBLE_EQ(BdaCostModel::t_transfer(1e9, 1e9, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(BdaCostModel::t_transfer(0.0, 1e9, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(BdaCostModel::t_file(4e9, 2e9, 0.5), 2.5);
}

TEST(CostModel, PaperScaleProjectionInRightRegime) {
  // With the documented scaling defaults, the projected component times
  // must land in the paper's regime: <1-1> LETKF ~ O(10 s) on 8008 nodes,
  // <2> 30-min 11-member forecast ~ O(2 min) on 880 nodes, and the <1-2>
  // cycle forecast must fit within the 30-s interval.
  const auto m = reference_model();
  const std::size_t cells = 256ull * 256ull * 60ull;
  const double t_letkf = m.t_letkf(cells / 2, 1000, 600, 8008);
  const double t_fcst30min = m.t_forecast(cells, 11, 4500, 880);
  const double t_fcst30s = m.t_forecast(cells, 1000, 75, 8008);
  EXPECT_GT(t_letkf, 1.0);
  EXPECT_LT(t_letkf, 60.0);
  EXPECT_GT(t_fcst30min, 45.0);
  EXPECT_LT(t_fcst30min, 300.0);
  EXPECT_LT(t_fcst30s, 30.0) << "cycle forecast must fit in the interval";
}

TEST(Calibration, ReferenceValuesPositive) {
  const auto cal = reference_calibration();
  EXPECT_GT(cal.model_cells_per_s, 0.0);
  EXPECT_GT(cal.letkf_points_per_s, 0.0);
  EXPECT_GT(cal.serialize_bytes_per_s, 0.0);
  EXPECT_GT(cal.letkf_k0, 0u);
}

TEST(Calibration, HostMeasurementRunsAndIsSane) {
  // This actually measures the kernels (sub-second by construction).
  const auto cal = calibrate_host();
  EXPECT_GT(cal.model_cells_per_s, 1e4);
  EXPECT_LT(cal.model_cells_per_s, 1e10);
  EXPECT_GT(cal.letkf_points_per_s, 10.0);
  EXPECT_GT(cal.serialize_bytes_per_s, 1e6);
}

}  // namespace
}  // namespace bda::hpc
