#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "hpc/comm.hpp"

namespace bda::hpc {
namespace {

Buffer make_buffer(std::initializer_list<std::uint8_t> bytes) {
  return Buffer(bytes);
}

TEST(Comm, PointToPointDelivers) {
  CommWorld world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, make_buffer({1, 2, 3}));
    } else {
      const Buffer b = comm.recv(0, 7);
      ASSERT_EQ(b.size(), 3u);
      EXPECT_EQ(b[0], 1);
      EXPECT_EQ(b[2], 3);
    }
  });
}

TEST(Comm, TagsKeepMessagesSeparate) {
  CommWorld world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, make_buffer({10}));
      comm.send(1, 2, make_buffer({20}));
    } else {
      // Receive in the opposite order of sending.
      const Buffer b2 = comm.recv(0, 2);
      const Buffer b1 = comm.recv(0, 1);
      EXPECT_EQ(b2[0], 20);
      EXPECT_EQ(b1[0], 10);
    }
  });
}

TEST(Comm, FifoPerSourceAndTag) {
  CommWorld world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (std::uint8_t n = 0; n < 10; ++n) comm.send(1, 0, {n});
    } else {
      for (std::uint8_t n = 0; n < 10; ++n) {
        const Buffer b = comm.recv(0, 0);
        EXPECT_EQ(b[0], n);
      }
    }
  });
}

TEST(Comm, RingPassesTokenAround) {
  const int n = 5;
  CommWorld world(n);
  world.run([n](Comm& comm) {
    const int next = (comm.rank() + 1) % n;
    const int prev = (comm.rank() + n - 1) % n;
    if (comm.rank() == 0) {
      comm.send(next, 0, make_buffer({1}));
      const Buffer b = comm.recv(prev, 0);
      EXPECT_EQ(b[0], std::uint8_t(n));
    } else {
      Buffer b = comm.recv(prev, 0);
      b[0] += 1;
      comm.send(next, 0, b);
    }
  });
}

TEST(Comm, AllreduceSumsAcrossRanks) {
  CommWorld world(6);
  world.run([](Comm& comm) {
    const double total = comm.allreduce_sum(double(comm.rank() + 1));
    EXPECT_DOUBLE_EQ(total, 21.0);  // 1+..+6
  });
}

TEST(Comm, ConsecutiveAllreducesIndependent) {
  CommWorld world(3);
  world.run([](Comm& comm) {
    EXPECT_DOUBLE_EQ(comm.allreduce_sum(1.0), 3.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_sum(double(comm.rank())), 3.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_sum(10.0), 30.0);
  });
}

TEST(Comm, BarrierSynchronizes) {
  CommWorld world(4);
  std::atomic<int> before{0}, after{0};
  world.run([&](Comm& comm) {
    before.fetch_add(1);
    comm.barrier();
    // All ranks passed the pre-barrier increment.
    EXPECT_EQ(before.load(), 4);
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), 4);
}

TEST(Comm, GatherCollectsAtRoot) {
  CommWorld world(4);
  world.run([](Comm& comm) {
    Buffer mine = {std::uint8_t(100 + comm.rank())};
    const auto all = comm.gather(2, mine);
    if (comm.rank() == 2) {
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        ASSERT_EQ(all[r].size(), 1u);
        EXPECT_EQ(all[r][0], std::uint8_t(100 + r));
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Comm, InvalidRankThrows) {
  CommWorld world(2);
  EXPECT_THROW(world.run([](Comm& comm) {
                 if (comm.rank() == 0) comm.send(5, 0, {1});
                 // rank 1 exits immediately
               }),
               std::out_of_range);
}

TEST(CommWorld, ZeroRanksRejected) {
  EXPECT_THROW(CommWorld(0), std::invalid_argument);
}

TEST(Comm, ExceptionInRankPropagates) {
  CommWorld world(3);
  EXPECT_THROW(world.run([](Comm& comm) {
                 if (comm.rank() == 1)
                   throw std::runtime_error("rank 1 failed");
               }),
               std::runtime_error);
}

// --- Collective stress: hammer the generation-counted barrier/allreduce
// machinery with many back-to-back rounds and mixed point-to-point traffic.
// Under TSan this is the test that exercises real interleavings in the
// coll_mu_/coll_cv_ handoff; the assertions catch generation mixups (a rank
// reading a stale reduce_result_ or slipping past the wrong barrier epoch).

TEST(Comm, BarrierStressManyRounds) {
  constexpr int kRanks = 6;
  constexpr int kRounds = 200;
  CommWorld world(kRanks);
  std::atomic<int> phase_sum{0};
  world.run([&](Comm& comm) {
    for (int round = 0; round < kRounds; ++round) {
      phase_sum.fetch_add(1);
      comm.barrier();
      // Every rank incremented before anyone proceeds past this epoch.
      EXPECT_GE(phase_sum.load(), (round + 1) * kRanks);
      comm.barrier();
    }
  });
  EXPECT_EQ(phase_sum.load(), kRounds * kRanks);
}

TEST(Comm, AllreduceStressBackToBackRounds) {
  constexpr int kRanks = 5;
  constexpr int kRounds = 300;
  CommWorld world(kRanks);
  world.run([](Comm& comm) {
    for (int round = 0; round < kRounds; ++round) {
      // Round-dependent contribution so a stale result from round r-1 can
      // never equal the expected value for round r.
      const double mine = double(comm.rank() + 1) + double(round) * 100.0;
      const double expect =
          double(kRanks * (kRanks + 1)) / 2.0 + double(round) * 100.0 * kRanks;
      ASSERT_DOUBLE_EQ(comm.allreduce_sum(mine), expect);
    }
  });
}

TEST(Comm, MixedCollectivesAndPointToPointStress) {
  // The 30-s cycle interleaves halo exchange (send/recv) with ensemble-mean
  // reductions (allreduce) — reproduce that mix at small scale.
  constexpr int kRanks = 4;
  constexpr int kRounds = 100;
  CommWorld world(kRanks);
  world.run([](Comm& comm) {
    const int next = (comm.rank() + 1) % kRanks;
    const int prev = (comm.rank() + kRanks - 1) % kRanks;
    for (int round = 0; round < kRounds; ++round) {
      comm.send(next, round, {std::uint8_t(comm.rank()),
                              std::uint8_t(round % 251)});
      const Buffer got = comm.recv(prev, round);
      ASSERT_EQ(got.size(), 2u);
      EXPECT_EQ(got[0], std::uint8_t(prev));
      EXPECT_EQ(got[1], std::uint8_t(round % 251));
      const double sum = comm.allreduce_sum(double(got[0]));
      EXPECT_DOUBLE_EQ(sum, 0.0 + 1.0 + 2.0 + 3.0);
      comm.barrier();
    }
  });
}

TEST(Comm, GatherStressRepeatedRotatingRoot) {
  constexpr int kRanks = 4;
  constexpr int kRounds = 50;
  CommWorld world(kRanks);
  world.run([](Comm& comm) {
    for (int round = 0; round < kRounds; ++round) {
      const int root = round % kRanks;
      Buffer mine = {std::uint8_t(comm.rank()), std::uint8_t(round % 251)};
      const auto all = comm.gather(root, mine);
      if (comm.rank() == root) {
        ASSERT_EQ(all.size(), std::size_t(kRanks));
        for (int r = 0; r < kRanks; ++r) {
          ASSERT_EQ(all[r].size(), 2u);
          EXPECT_EQ(all[r][0], std::uint8_t(r));
          EXPECT_EQ(all[r][1], std::uint8_t(round % 251));
        }
      } else {
        EXPECT_TRUE(all.empty());
      }
    }
  });
}

TEST(Comm, PeakMailboxDepthTracksQueuedSends) {
  // The all-sends-before-recvs pattern exchange_halo and the sharded
  // shuffle rely on is only deadlock-free because send() never blocks (the
  // capacity contract documented in comm.hpp).  The high-water mark makes
  // the queueing observable: post k sends before any recv and the peak must
  // reach k.
  constexpr int kRanks = 2;
  constexpr int kMsgs = 16;
  CommWorld world(kRanks);
  EXPECT_EQ(world.peak_mailbox_depth(), 0u);
  world.run([](Comm& comm) {
    const int peer = 1 - comm.rank();
    for (int t = 0; t < kMsgs; ++t)
      comm.send(peer, t, {std::uint8_t(t), std::uint8_t(comm.rank())});
    comm.barrier();  // both mailboxes now hold all kMsgs messages
    for (int t = 0; t < kMsgs; ++t) {
      const Buffer got = comm.recv(peer, t);
      ASSERT_EQ(got.size(), 2u);
      EXPECT_EQ(got[0], std::uint8_t(t));
      EXPECT_EQ(got[1], std::uint8_t(peer));
    }
  });
  EXPECT_GE(world.peak_mailbox_depth(), std::size_t(kMsgs));
}

}  // namespace
}  // namespace bda::hpc
