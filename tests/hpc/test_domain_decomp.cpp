#include <gtest/gtest.h>

#include "hpc/domain_decomp.hpp"

namespace bda::hpc {
namespace {

RField3D make_global(idx nx, idx ny, idx nz) {
  RField3D g(nx, ny, nz, 2);
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j)
      for (idx k = 0; k < nz; ++k)
        g(i, j, k) = real(i * 10000 + j * 100 + k);
  return g;
}

TEST(TileLayout, PartitionsDomain) {
  TileLayout t(3, 2, 2, 16, 12);  // rank 3 of a 2x2 grid
  EXPECT_EQ(t.cx, 1);
  EXPECT_EQ(t.cy, 1);
  EXPECT_EQ(t.nx, 8);
  EXPECT_EQ(t.ny, 6);
  EXPECT_EQ(t.x0, 8);
  EXPECT_EQ(t.y0, 6);
}

TEST(TileLayout, NeighborsArePeriodic) {
  TileLayout t(0, 2, 2, 8, 8);  // rank 0 at (0, 0)
  EXPECT_EQ(t.neighbor(1, 0), 1);
  EXPECT_EQ(t.neighbor(-1, 0), 1);  // wraps
  EXPECT_EQ(t.neighbor(0, 1), 2);
  EXPECT_EQ(t.neighbor(0, -1), 2);  // wraps
  EXPECT_EQ(t.neighbor(1, 1), 3);
}

TEST(TileLayout, IndivisibleDomainRejected) {
  EXPECT_THROW(TileLayout(0, 3, 1, 16, 8), std::invalid_argument);
  EXPECT_THROW(TileLayout(5, 2, 2, 8, 8), std::invalid_argument);
}

TEST(TileOps, ExtractInsertRoundtrip) {
  const auto global = make_global(8, 8, 3);
  RField3D rebuilt(8, 8, 3, 2);
  for (int r = 0; r < 4; ++r) {
    TileLayout layout(r, 2, 2, 8, 8);
    const auto tile = extract_tile(global, layout, 2);
    insert_tile(tile, layout, rebuilt);
  }
  for (idx i = 0; i < 8; ++i)
    for (idx j = 0; j < 8; ++j)
      for (idx k = 0; k < 3; ++k)
        EXPECT_EQ(rebuilt(i, j, k), global(i, j, k));
}

class ExchangeGrid
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ExchangeGrid, MatchesSerialPeriodicHalo) {
  const auto [px, py] = GetParam();
  const idx nx = 8, ny = 8, nz = 3;
  auto global = make_global(nx, ny, nz);
  // Reference: the serial periodic halo fill.
  auto reference = global;
  reference.fill_halo_periodic();

  CommWorld world(px * py);
  world.run([&](Comm& comm) {
    TileLayout layout(comm.rank(), px, py, nx, ny);
    RField3D tile = extract_tile(global, layout, 2);
    exchange_halo(comm, layout, tile);
    // Every halo cell must equal the serial periodic reference at the
    // corresponding global index.
    for (idx i = -2; i < layout.nx + 2; ++i)
      for (idx j = -2; j < layout.ny + 2; ++j)
        for (idx k = 0; k < nz; ++k) {
          // Global index of this tile cell, wrapped periodically.
          idx gi = layout.x0 + i, gj = layout.y0 + j;
          gi = (gi % nx + nx) % nx;
          gj = (gj % ny + ny) % ny;
          ASSERT_EQ(tile(i, j, k), reference(gi, gj, k))
              << "rank " << comm.rank() << " (" << i << "," << j << ","
              << k << ")";
        }
  });
}

INSTANTIATE_TEST_SUITE_P(
    ProcessGrids, ExchangeGrid,
    ::testing::Values(std::make_pair(1, 1), std::make_pair(2, 1),
                      std::make_pair(1, 2), std::make_pair(2, 2),
                      std::make_pair(4, 2)));

TEST(Exchange, DistinctFieldsViaTagBase) {
  // Two fields exchanged back to back must not cross-contaminate.
  const idx nx = 4, ny = 4, nz = 2;
  auto ga = make_global(nx, ny, nz);
  RField3D gb(nx, ny, nz, 2);
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j)
      for (idx k = 0; k < nz; ++k) gb(i, j, k) = -ga(i, j, k);
  auto ra = ga, rb = gb;
  ra.fill_halo_periodic();
  rb.fill_halo_periodic();

  CommWorld world(4);
  world.run([&](Comm& comm) {
    TileLayout layout(comm.rank(), 2, 2, nx, ny);
    auto ta = extract_tile(ga, layout, 2);
    auto tb = extract_tile(gb, layout, 2);
    exchange_halo(comm, layout, ta, /*tag_base=*/0);
    exchange_halo(comm, layout, tb, /*tag_base=*/1);
    EXPECT_EQ(ta(-1, 0, 0), ra((layout.x0 + nx - 1) % nx, layout.y0, 0));
    EXPECT_EQ(tb(-1, 0, 0), rb((layout.x0 + nx - 1) % nx, layout.y0, 0));
  });
}

}  // namespace
}  // namespace bda::hpc
