#include <gtest/gtest.h>

#include <stdexcept>

#include "hpc/domain_decomp.hpp"

namespace bda::hpc {
namespace {

RField3D make_global(idx nx, idx ny, idx nz) {
  RField3D g(nx, ny, nz, 2);
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j)
      for (idx k = 0; k < nz; ++k)
        g(i, j, k) = real(i * 10000 + j * 100 + k);
  return g;
}

TEST(TileLayout, PartitionsDomain) {
  TileLayout t(3, 2, 2, 16, 12);  // rank 3 of a 2x2 grid
  EXPECT_EQ(t.cx, 1);
  EXPECT_EQ(t.cy, 1);
  EXPECT_EQ(t.nx, 8);
  EXPECT_EQ(t.ny, 6);
  EXPECT_EQ(t.x0, 8);
  EXPECT_EQ(t.y0, 6);
}

TEST(TileLayout, NeighborsArePeriodic) {
  TileLayout t(0, 2, 2, 8, 8);  // rank 0 at (0, 0)
  EXPECT_EQ(t.neighbor(1, 0), 1);
  EXPECT_EQ(t.neighbor(-1, 0), 1);  // wraps
  EXPECT_EQ(t.neighbor(0, 1), 2);
  EXPECT_EQ(t.neighbor(0, -1), 2);  // wraps
  EXPECT_EQ(t.neighbor(1, 1), 3);
}

TEST(TileLayout, IndivisibleDomainRejected) {
  EXPECT_THROW(TileLayout(0, 3, 1, 16, 8), std::invalid_argument);
  EXPECT_THROW(TileLayout(5, 2, 2, 8, 8), std::invalid_argument);
}

TEST(TileOps, ExtractInsertRoundtrip) {
  const auto global = make_global(8, 8, 3);
  RField3D rebuilt(8, 8, 3, 2);
  for (int r = 0; r < 4; ++r) {
    TileLayout layout(r, 2, 2, 8, 8);
    const auto tile = extract_tile(global, layout, 2);
    insert_tile(tile, layout, rebuilt);
  }
  for (idx i = 0; i < 8; ++i)
    for (idx j = 0; j < 8; ++j)
      for (idx k = 0; k < 3; ++k)
        EXPECT_EQ(rebuilt(i, j, k), global(i, j, k));
}

class ExchangeGrid
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ExchangeGrid, MatchesSerialPeriodicHalo) {
  const auto [px, py] = GetParam();
  const idx nx = 8, ny = 8, nz = 3;
  auto global = make_global(nx, ny, nz);
  // Reference: the serial periodic halo fill.
  auto reference = global;
  reference.fill_halo_periodic();

  CommWorld world(px * py);
  world.run([&](Comm& comm) {
    TileLayout layout(comm.rank(), px, py, nx, ny);
    RField3D tile = extract_tile(global, layout, 2);
    exchange_halo(comm, layout, tile);
    // Every halo cell must equal the serial periodic reference at the
    // corresponding global index.
    for (idx i = -2; i < layout.nx + 2; ++i)
      for (idx j = -2; j < layout.ny + 2; ++j)
        for (idx k = 0; k < nz; ++k) {
          // Global index of this tile cell, wrapped periodically.
          idx gi = layout.x0 + i, gj = layout.y0 + j;
          gi = (gi % nx + nx) % nx;
          gj = (gj % ny + ny) % ny;
          ASSERT_EQ(tile(i, j, k), reference(gi, gj, k))
              << "rank " << comm.rank() << " (" << i << "," << j << ","
              << k << ")";
        }
  });
}

INSTANTIATE_TEST_SUITE_P(
    ProcessGrids, ExchangeGrid,
    ::testing::Values(std::make_pair(1, 1), std::make_pair(2, 1),
                      std::make_pair(1, 2), std::make_pair(2, 2),
                      std::make_pair(4, 2)));

TEST(Exchange, DistinctFieldsViaTagBase) {
  // Two fields exchanged back to back must not cross-contaminate.
  const idx nx = 4, ny = 4, nz = 2;
  auto ga = make_global(nx, ny, nz);
  RField3D gb(nx, ny, nz, 2);
  for (idx i = 0; i < nx; ++i)
    for (idx j = 0; j < ny; ++j)
      for (idx k = 0; k < nz; ++k) gb(i, j, k) = -ga(i, j, k);
  auto ra = ga, rb = gb;
  ra.fill_halo_periodic();
  rb.fill_halo_periodic();

  CommWorld world(4);
  world.run([&](Comm& comm) {
    TileLayout layout(comm.rank(), 2, 2, nx, ny);
    auto ta = extract_tile(ga, layout, 2);
    auto tb = extract_tile(gb, layout, 2);
    exchange_halo(comm, layout, ta, /*tag_base=*/0);
    exchange_halo(comm, layout, tb, /*tag_base=*/1);
    EXPECT_EQ(ta(-1, 0, 0), ra((layout.x0 + nx - 1) % nx, layout.y0, 0));
    EXPECT_EQ(tb(-1, 0, 0), rb((layout.x0 + nx - 1) % nx, layout.y0, 0));
  });
}

// --- exchange_halo argument validation --------------------------------------
// Before validation the pack start was nx - h; with a halo wider than the
// tile that is negative and the pack loop read out of the allocation.

TEST(Exchange, RejectsHaloWiderThanTile) {
  // 2x1: each tile is 2 cells wide in x but carries a 3-wide halo.
  CommWorld world(2);
  world.run([](Comm& comm) {
    TileLayout layout(comm.rank(), 2, 1, 4, 4);
    RField3D tile(layout.nx, layout.ny, 2, 3);
    EXPECT_THROW(exchange_halo(comm, layout, tile), std::invalid_argument);
  });
}

TEST(Exchange, RejectsHaloWiderThanTileSelfNeighbor) {
  // px*py == 1: every neighbour is the rank itself, so the overflow needed
  // no communication at all to be reachable — the pack range is the only
  // guard.
  CommWorld world(1);
  world.run([](Comm& comm) {
    TileLayout layout(0, 1, 1, 2, 2);
    RField3D tile(2, 2, 2, 3);  // halo 3 > nx = ny = 2
    EXPECT_THROW(exchange_halo(comm, layout, tile), std::invalid_argument);
  });
}

TEST(Exchange, RejectsTileExtentLayoutMismatch) {
  CommWorld world(1);
  world.run([](Comm& comm) {
    TileLayout layout(0, 1, 1, 8, 8);
    RField3D tile(4, 8, 2, 2);  // nx disagrees with the layout's tile
    EXPECT_THROW(exchange_halo(comm, layout, tile), std::invalid_argument);
  });
}

TEST(Exchange, HaloAsWideAsTileIsTheValidBoundary) {
  // h == nx is the edge of the valid range: the pack start lands exactly at
  // 0 and the exchange must still reproduce the serial periodic fill.
  const idx n = 4, nz = 2;
  RField3D reference(n, n, nz, n);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < n; ++j)
      for (idx k = 0; k < nz; ++k)
        reference(i, j, k) = real(i * 100 + j * 10 + k);
  RField3D tile = reference;
  reference.fill_halo_periodic();

  CommWorld world(1);
  world.run([&](Comm& comm) {
    TileLayout layout(0, 1, 1, n, n);
    exchange_halo(comm, layout, tile);
  });
  for (idx i = -n; i < 2 * n; ++i)
    for (idx j = -n; j < 2 * n; ++j)
      for (idx k = 0; k < nz; ++k)
        ASSERT_EQ(tile(i, j, k), reference(i, j, k))
            << "(" << i << "," << j << "," << k << ")";
}

// --- sustained concurrent exchange (satellite of the capacity contract) -----
// Eight ranks exchange two fields with distinct tag_base for many
// iterations.  Values evolve per iteration, so a message matched to the
// wrong field, the wrong iteration, or the wrong neighbour shows up as a
// value mismatch; under TSan this is also the race gate for the
// mailbox-depth accounting.  The sends of iteration t+1 overlap the recvs
// of iteration t across ranks — exactly the queueing the unbounded-mailbox
// contract (comm.hpp) promises to absorb.
TEST(Exchange, StressTwoFieldsEightRanksManyIterations) {
  constexpr int px = 4, py = 2;
  const idx nx = 8, ny = 8, nz = 2;
  constexpr int kIters = 100;
  constexpr idx h = 2;

  CommWorld world(px * py);
  world.run([&](Comm& comm) {
    TileLayout layout(comm.rank(), px, py, nx, ny);
    RField3D ta(layout.nx, layout.ny, nz, h);
    RField3D tb(layout.nx, layout.ny, nz, h);
    auto value = [&](int iter, idx gi, idx gj, idx k) {
      return real(iter * 100000 + gi * 1000 + gj * 10 + k);
    };
    for (int iter = 0; iter < kIters; ++iter) {
      for (idx i = 0; i < layout.nx; ++i)
        for (idx j = 0; j < layout.ny; ++j)
          for (idx k = 0; k < nz; ++k) {
            const real v = value(iter, layout.x0 + i, layout.y0 + j, k);
            ta(i, j, k) = v;
            tb(i, j, k) = -v;
          }
      exchange_halo(comm, layout, ta, /*tag_base=*/0);
      exchange_halo(comm, layout, tb, /*tag_base=*/1);
      for (idx i = -h; i < layout.nx + h; ++i)
        for (idx j = -h; j < layout.ny + h; ++j)
          for (idx k = 0; k < nz; ++k) {
            idx gi = layout.x0 + i, gj = layout.y0 + j;
            gi = (gi % nx + nx) % nx;
            gj = (gj % ny + ny) % ny;
            const real v = value(iter, gi, gj, k);
            ASSERT_EQ(ta(i, j, k), v)
                << "field a, iter " << iter << ", rank " << comm.rank();
            ASSERT_EQ(tb(i, j, k), -v)
                << "field b, iter " << iter << ", rank " << comm.rank();
          }
    }
  });
  // The exchange posts all four sends before the first recv, so the queues
  // must actually have been exercised.
  EXPECT_GT(world.peak_mailbox_depth(), 0u);
}

}  // namespace
}  // namespace bda::hpc
