#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "hpc/transport.hpp"

namespace bda::hpc {
namespace {

std::vector<FieldRecord> member_fields(int member) {
  Field3D<float> f(6, 6, 4, 0);
  for (idx i = 0; i < 6; ++i)
    for (idx j = 0; j < 6; ++j)
      for (idx k = 0; k < 4; ++k)
        f(i, j, k) = float(member * 1000 + i * 100 + j * 10 + k);
  std::vector<FieldRecord> recs;
  recs.push_back({"rhot", std::move(f)});
  return recs;
}

class TransportCase
    : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<EnsembleTransport> make() {
    if (std::string(GetParam()) == "file") {
      // Per-process path: parallel ctest runs each test as its own process,
      // and concurrent tests must not share a transport spool directory.
      dir_ = (std::filesystem::temp_directory_path() /
              ("bda_transport_test_" + std::to_string(::getpid())))
                 .string();
      return std::make_unique<FileTransport>(dir_);
    }
    return std::make_unique<MemoryTransport>();
  }
  void TearDown() override {
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }
  std::string dir_;
};

TEST_P(TransportCase, PutTakeRoundtrip) {
  auto tp = make();
  const auto sent = member_fields(3);
  const auto st = tp->put(3, sent);
  EXPECT_GT(st.bytes, 0u);
  TransportStats take_st;
  const auto got = tp->take(3, &take_st);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].name, "rhot");
  EXPECT_EQ(got[0].data(5, 5, 3), sent[0].data(5, 5, 3));
  EXPECT_GT(take_st.bytes, 0u);
}

TEST_P(TransportCase, MembersAreIndependent) {
  auto tp = make();
  tp->put(0, member_fields(0));
  tp->put(7, member_fields(7));
  const auto got7 = tp->take(7, nullptr);
  const auto got0 = tp->take(0, nullptr);
  EXPECT_EQ(got7[0].data(0, 0, 0), 7000.0f);
  EXPECT_EQ(got0[0].data(0, 0, 0), 0.0f);
}

TEST_P(TransportCase, TakeWithoutPutThrows) {
  auto tp = make();
  EXPECT_THROW(tp->take(4, nullptr), std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(Transports, TransportCase,
                         ::testing::Values("file", "memory"));

TEST(MemoryTransport, FifoPerMember) {
  MemoryTransport tp;
  auto a = member_fields(1);
  auto b = member_fields(1);
  b[0].data(0, 0, 0) = -99.0f;
  tp.put(1, a);
  tp.put(1, b);
  EXPECT_EQ(tp.take(1, nullptr)[0].data(0, 0, 0), 1000.0f);
  EXPECT_EQ(tp.take(1, nullptr)[0].data(0, 0, 0), -99.0f);
}

TEST(FileTransport, FileIsConsumedOnTake) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "bda_ft_consume").string();
  FileTransport tp(dir);
  tp.put(2, member_fields(2));
  tp.take(2, nullptr);
  EXPECT_THROW(tp.take(2, nullptr), std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(Transports, NamesDistinguishPaths) {
  MemoryTransport mem;
  const auto dir =
      (std::filesystem::temp_directory_path() / "bda_ft_name").string();
  FileTransport file(dir);
  EXPECT_STREQ(mem.name(), "memory");
  EXPECT_STREQ(file.name(), "file");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bda::hpc
