#include <gtest/gtest.h>

#include <filesystem>

#include "util/rng.hpp"
#include "workflow/checkpoint.hpp"

namespace bda::workflow {
namespace {

namespace fs = std::filesystem;
using scale::Grid;

Grid cgrid() { return Grid(8, 8, 6, 500.0f, 6000.0f); }

scale::ModelConfig light() {
  scale::ModelConfig cfg;
  cfg.dt = 0.5f;
  cfg.enable_turb = cfg.enable_pbl = cfg.enable_sfc = cfg.enable_rad = false;
  return cfg;
}

TEST(Checkpoint, StateRoundtripIsExact) {
  Grid g = cgrid();
  const auto ref =
      scale::ReferenceState::build(g, scale::convective_sounding());
  scale::State s(g);
  s.init_from_reference(g, ref);
  Rng rng(5);
  for (idx i = 0; i < 8; ++i)
    for (idx j = 0; j < 8; ++j)
      for (idx k = 0; k < 6; ++k) {
        s.momx(i, j, k) = real(rng.normal());
        s.momz(i, j, k) = real(rng.normal());
        s.rhoq[scale::QR](i, j, k) = real(rng.uniform(0, 1e-3));
      }
  const auto path =
      (fs::temp_directory_path() / "bda_ckpt_state.bdf").string();
  save_state(path, s);

  scale::State back(g);
  load_state(path, back);
  for (idx i = 0; i < 8; ++i)
    for (idx j = 0; j < 8; ++j)
      for (idx k = 0; k < 6; ++k) {
        EXPECT_EQ(back.dens(i, j, k), s.dens(i, j, k));
        EXPECT_EQ(back.momx(i, j, k), s.momx(i, j, k));
        EXPECT_EQ(back.momz(i, j, k), s.momz(i, j, k));
        EXPECT_EQ(back.rhot(i, j, k), s.rhot(i, j, k));
        EXPECT_EQ(back.rhoq[scale::QR](i, j, k), s.rhoq[scale::QR](i, j, k));
      }
  // Top momz face level too (nz + 1 levels).
  EXPECT_EQ(back.momz(3, 3, 6), s.momz(3, 3, 6));
  fs::remove(path);
}

TEST(Checkpoint, ShapeMismatchRejected) {
  Grid g = cgrid();
  scale::State s(g);
  const auto path =
      (fs::temp_directory_path() / "bda_ckpt_mismatch.bdf").string();
  save_state(path, s);
  Grid other(8, 8, 5, 500.0f, 5000.0f);
  scale::State wrong(other);
  EXPECT_THROW(load_state(path, wrong), std::runtime_error);
  fs::remove(path);
}

TEST(Checkpoint, EnsembleRoundtripRestoresMembersAndTime) {
  Grid g = cgrid();
  scale::Ensemble ens(g, scale::convective_sounding(), light(), 3);
  Rng rng(6);
  ens.perturb({}, rng);
  ens.advance(2.0f);
  const real probe = ens.member(2).rhot(4, 4, 2);
  const auto dir = (fs::temp_directory_path() / "bda_ckpt_ens").string();
  fs::remove_all(dir);
  save_ensemble(dir, ens);

  scale::Ensemble fresh(g, scale::convective_sounding(), light(), 3);
  EXPECT_NE(fresh.member(2).rhot(4, 4, 2), probe);
  load_ensemble(dir, fresh);
  EXPECT_EQ(fresh.member(2).rhot(4, 4, 2), probe);
  EXPECT_DOUBLE_EQ(fresh.time(), ens.time());
  fs::remove_all(dir);
}

TEST(Checkpoint, EnsembleSizeMismatchRejected) {
  Grid g = cgrid();
  scale::Ensemble ens(g, scale::convective_sounding(), light(), 3);
  const auto dir = (fs::temp_directory_path() / "bda_ckpt_size").string();
  fs::remove_all(dir);
  save_ensemble(dir, ens);
  scale::Ensemble bigger(g, scale::convective_sounding(), light(), 5);
  EXPECT_THROW(load_ensemble(dir, bigger), std::runtime_error);
  fs::remove_all(dir);
}

TEST(Checkpoint, MissingManifestRejected) {
  Grid g = cgrid();
  scale::Ensemble ens(g, scale::convective_sounding(), light(), 2);
  EXPECT_THROW(load_ensemble("/nonexistent/ckpt", ens), std::runtime_error);
}

TEST(Checkpoint, RestartContinuesIntegration) {
  // The operational pattern: checkpoint, lose the process, restore,
  // continue — the restored run must stay finite and advance time.
  Grid g = cgrid();
  scale::Ensemble ens(g, scale::convective_sounding(), light(), 2);
  Rng rng(7);
  ens.perturb({}, rng);
  ens.advance(3.0f);
  const auto dir = (fs::temp_directory_path() / "bda_ckpt_restart").string();
  fs::remove_all(dir);
  save_ensemble(dir, ens);

  scale::Ensemble resumed(g, scale::convective_sounding(), light(), 2);
  load_ensemble(dir, resumed);
  resumed.advance(3.0f);
  EXPECT_DOUBLE_EQ(resumed.time(), 6.0);
  EXPECT_FALSE(resumed.member(0).has_nonfinite());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace bda::workflow
