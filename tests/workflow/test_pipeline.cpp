// PipelinedDriver contract tests.
//
// Two properties carry the tentpole:
//   1. Determinism — overlapping JIT-DT/regrid with the ensemble advance and
//      running product forecasts on worker threads must not change a single
//      bit of the assimilation (the staged-API RNG discipline, cycle.hpp).
//   2. Concurrency accounting — with the rotating-group admission policy,
//      launches + drops account for every cycle exactly, groups never
//      overlap, and the pipeline beats the serial sum of stage times.
// The stress tests run under every sanitizer preset; the tsan build is the
// race gate (all cross-thread state in the driver is BDA_GUARDED_BY).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <span>
#include <vector>

#include "util/metrics.hpp"
#include "workflow/pipeline.hpp"

namespace bda::workflow {
namespace {

using scale::Grid;

BdaSystemConfig small_config(int members) {
  BdaSystemConfig cfg;
  cfg.cycle_s = 6.0;  // scaled-down refresh: 10 model steps per cycle
  cfg.n_members = members;
  cfg.model.dt = 0.6f;
  cfg.model.physics_every = 10;
  cfg.model.enable_rad = false;

  cfg.scan.range_max = 8000.0f;
  cfg.scan.gate_length = 500.0f;
  cfg.scan.n_azimuth = 24;
  cfg.scan.n_elevation = 8;

  cfg.radar.radar_x = 4000.0f;
  cfg.radar.radar_y = 4000.0f;
  cfg.radar.radar_z = 50.0f;
  cfg.radar.block_az_from = cfg.radar.block_az_to = 0.0f;

  cfg.obsgen.clear_air = true;
  cfg.obsgen.clear_air_thin = 8;

  cfg.letkf.hloc = 1500.0f;
  cfg.letkf.vloc = 1500.0f;
  cfg.letkf.rtpp_alpha = 0.7f;
  cfg.letkf.z_min = 0.0f;
  cfg.letkf.z_max = 8000.0f;
  cfg.letkf.max_obs_per_grid = 32;

  cfg.perturb.theta_amp = 0.4f;
  cfg.perturb.qv_frac = 0.04f;
  cfg.perturb.wind_amp = 0.6f;
  cfg.perturb.zmax = 6000.0f;
  return cfg;
}

Grid small_grid() {
  return Grid::stretched(14, 14, 8, 500.0f, 8000.0f, 250.0f, 1.12f);
}

// Deliberately minimal configuration for the concurrency/accounting tests:
// the schedule shape is what matters there, not assimilation skill, and the
// cycle must stay cheap even under TSan's instrumentation.
BdaSystemConfig tiny_config(int members) {
  BdaSystemConfig cfg = small_config(members);
  cfg.cycle_s = 3.0;  // 5 model steps per advance
  cfg.scan.range_max = 6000.0f;
  cfg.scan.n_azimuth = 16;
  cfg.scan.n_elevation = 6;
  cfg.radar.radar_x = 2500.0f;
  cfg.radar.radar_y = 2500.0f;
  cfg.obsgen.clear_air_thin = 16;
  cfg.letkf.max_obs_per_grid = 16;
  return cfg;
}

Grid tiny_grid() {
  return Grid::stretched(10, 10, 6, 500.0f, 6000.0f, 300.0f, 1.2f);
}

void expect_bitwise_equal(const scale::State& a, const scale::State& b) {
  auto eq = [](std::span<const real> x, std::span<const real> y,
               const char* what) {
    ASSERT_EQ(x.size(), y.size()) << what;
    EXPECT_EQ(std::memcmp(x.data(), y.data(), x.size() * sizeof(real)), 0)
        << what;
  };
  eq(a.dens.raw(), b.dens.raw(), "dens");
  eq(a.momx.raw(), b.momx.raw(), "momx");
  eq(a.momy.raw(), b.momy.raw(), "momy");
  eq(a.momz.raw(), b.momz.raw(), "momz");
  eq(a.rhot.raw(), b.rhot.raw(), "rhot");
  for (int t = 0; t < scale::kNumTracers; ++t)
    eq(a.rhoq[t].raw(), b.rhoq[t].raw(), scale::tracer_name(t));
}

// The driver must reproduce serial BdaSystem::cycle() bit for bit: same
// analyses, same ensemble, same rng stream — while product forecasts run on
// worker threads and the transfer/regrid overlaps the ensemble advance.
TEST(PipelinedDriver, BitwiseIdenticalToSerialCycle) {
  Grid g = small_grid();
  auto cfg = small_config(4);
  cfg.transfer_scans = true;  // exercise the JIT-DT overlap path too

  auto build = [&] {
    auto sys = std::make_unique<BdaSystem>(g, scale::convective_sounding(),
                                           cfg);
    sys->perturb_ensemble();
    sys->trigger_storm(4000.0f, 4000.0f, 3.5f, /*in_ensemble=*/true,
                       1200.0f);
    sys->spinup(60.0);
    return sys;
  };

  auto serial = build();
  auto piped = build();

  constexpr std::size_t kCycles = 4;
  std::vector<CycleResult> want;
  for (std::size_t c = 0; c < kCycles; ++c) want.push_back(serial->cycle());

  PipelineConfig pcfg;
  pcfg.n_groups = 2;
  pcfg.product_every = 1;      // workers active during the comparison
  pcfg.forecast_lead_s = 0.0;  // initial map only: forecasts stay cheap
  std::vector<CycleResult> got;
  {
    PipelinedDriver driver(*piped, pcfg);
    got = driver.run(kCycles);
    driver.drain();
    EXPECT_EQ(driver.launched() + driver.dropped(), kCycles);
    EXPECT_EQ(driver.products().size(), driver.launched());
  }

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t c = 0; c < kCycles; ++c) {
    EXPECT_EQ(got[c].n_obs, want[c].n_obs) << "cycle " << c;
    EXPECT_EQ(got[c].analysis.n_obs_qc, want[c].analysis.n_obs_qc);
    EXPECT_EQ(got[c].analysis.n_grid_updated, want[c].analysis.n_grid_updated);
    EXPECT_EQ(got[c].analysis.mean_abs_innovation,
              want[c].analysis.mean_abs_innovation);
    EXPECT_EQ(got[c].nature_max_dbz, want[c].nature_max_dbz);
    EXPECT_EQ(got[c].transfer.success, want[c].transfer.success);
    EXPECT_EQ(got[c].transfer.bytes, want[c].transfer.bytes);
  }
  for (int m = 0; m < serial->ensemble().size(); ++m)
    expect_bitwise_equal(serial->ensemble().member(m),
                         piped->ensemble().member(m));
  expect_bitwise_equal(serial->nature().state(), piped->nature().state());
  // Both systems consumed the same number of random draws.
  EXPECT_EQ(serial->rng().uniform(), piped->rng().uniform());
}

// >= 50 concurrent cycles with injected slow forecasts: every cycle is
// accounted for exactly (launched + dropped), no group ever runs two
// forecasts at once, and the pipelined wall clock beats half the serial sum
// of stage times.  Labeled into the tsan suite like every test; this one is
// the designated race workout for the driver.
TEST(PipelinedDriver, StressConcurrentCyclesAccountingExact) {
  Grid g = tiny_grid();
  auto cfg = tiny_config(3);
  BdaSystem sys(g, scale::convective_sounding(), cfg);
  sys.perturb_ensemble();

  // Calibrate the injected runtimes to this host/build: measure the mean
  // wall cost of one cycle first, then make a normal product forecast
  // 3 cycles long (sustained by the 4-group rotation, the paper's 120 s
  // vs 4 x 30 s balance) and the "heavy rain" burst 10 cycles long
  // (guaranteed saturation) — so the schedule shape survives sanitizer
  // slowdowns instead of being tuned to one build type.
  util::Metrics warm;
  {
    PipelineConfig wcfg;
    wcfg.n_groups = 1;
    wcfg.product_every = 0;
    PipelinedDriver warmup(sys, wcfg, &warm);
    warmup.run(5);
  }
  const double cyc_s =
      std::max(warm.timer_stats("pipeline.cycle").mean_s, 0.02);
  const double normal_s = 3.0 * cyc_s;
  const double heavy_s = 10.0 * cyc_s;

  util::Metrics metrics;
  sys.set_metrics(&metrics);

  // Cycles 20..23 are heavy-rain forecasts: all four groups go busy at
  // once for far longer than any cadence, so the following cycles MUST
  // drop — and every drop must be counted, never silently miscounted or
  // run on a busy group.
  PipelineConfig pcfg;
  pcfg.n_groups = 4;
  pcfg.product_every = 1;
  pcfg.forecast_lead_s = 0.0;  // injected sleep stands in for the runtime
  pcfg.sleep_for_cycle = [=](std::size_t c) {
    return (c >= 20 && c < 24) ? heavy_s : normal_s;
  };

  constexpr std::size_t kCycles = 50;
  const auto wall_t0 = std::chrono::steady_clock::now();
  PipelinedDriver driver(sys, pcfg, &metrics);
  const auto results = driver.run(kCycles);
  driver.drain();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_t0)
          .count();

  ASSERT_EQ(results.size(), kCycles);

  // Exact accounting: every cycle either launched or dropped, and every
  // launch produced exactly one record.  Counters agree with the totals.
  EXPECT_EQ(driver.launched() + driver.dropped(), kCycles);
  const auto products = driver.products();
  EXPECT_EQ(products.size(), driver.launched());
  EXPECT_EQ(metrics.counter("pipeline.launched"), driver.launched());
  EXPECT_EQ(metrics.counter("pipeline.dropped"), driver.dropped());
  EXPECT_EQ(metrics.samples("pipeline.tts"), products.size());
  // The heavy-rain burst saturates the rotation: some cycles must drop,
  // but never the majority.
  EXPECT_GT(driver.dropped(), 0u);
  EXPECT_GT(driver.launched(), kCycles / 2);

  // Per-group serialization: a group's next admission never precedes its
  // previous completion (no two forecasts ever shared a group).
  std::map<int, std::vector<const ProductRecord*>> by_group;
  for (const auto& p : products) {
    EXPECT_GE(p.group, 0);
    EXPECT_LT(p.group, pcfg.n_groups);
    EXPECT_GE(p.tts_s, normal_s * 0.99);  // at least the injected runtime
    EXPECT_GE(p.t_done_s, p.t_admit_s);
    EXPECT_GE(p.t_admit_s, p.t_obs_s);
    by_group[p.group].push_back(&p);
  }
  for (auto& [group, recs] : by_group) {
    std::sort(recs.begin(), recs.end(),
              [](const ProductRecord* a, const ProductRecord* b) {
                return a->t_admit_s < b->t_admit_s;
              });
    for (std::size_t i = 1; i < recs.size(); ++i)
      EXPECT_GE(recs[i]->t_admit_s, recs[i - 1]->t_done_s - 1e-6)
          << "group " << group << " overlapped";
  }

  // The acceptance bar: pipelined wall clock beats half the serial sum of
  // the measured stage times (cycles + every launched forecast).
  const double serial_sum = metrics.total("pipeline.cycle") +
                            metrics.total("pipeline.forecast");
  EXPECT_LT(wall, 0.5 * serial_sum)
      << "wall=" << wall << " serial_sum=" << serial_sum;
}

// A rotation sized for the runtime (paper: 4 x 30 s >= 120 s) sustains one
// product per cycle with zero drops.
TEST(PipelinedDriver, SustainedRotationNeverDrops) {
  Grid g = tiny_grid();
  auto cfg = tiny_config(3);
  BdaSystem sys(g, scale::convective_sounding(), cfg);
  sys.perturb_ensemble();

  PipelineConfig pcfg;
  pcfg.n_groups = 4;
  pcfg.product_every = 1;
  pcfg.forecast_lead_s = 0.0;
  pcfg.cycle_sleep_s = 0.08;
  pcfg.forecast_sleep_s = 0.24;  // 3 x cadence < n_groups x cadence

  PipelinedDriver driver(sys, pcfg);
  driver.run(20);
  driver.drain();
  EXPECT_EQ(driver.dropped(), 0u);
  EXPECT_EQ(driver.launched(), 20u);
  EXPECT_EQ(driver.products().size(), 20u);
}

// product_every = 0 disables the forecast path entirely.
TEST(PipelinedDriver, NoProductsWhenDisabled) {
  Grid g = tiny_grid();
  auto cfg = tiny_config(3);
  BdaSystem sys(g, scale::convective_sounding(), cfg);
  sys.perturb_ensemble();

  PipelineConfig pcfg;
  pcfg.n_groups = 2;
  pcfg.product_every = 0;
  PipelinedDriver driver(sys, pcfg);
  const auto results = driver.run(3);
  driver.drain();
  EXPECT_EQ(results.size(), 3u);
  EXPECT_EQ(driver.launched(), 0u);
  EXPECT_EQ(driver.dropped(), 0u);
  EXPECT_TRUE(driver.products().empty());
}

// Destroying the driver with forecasts still in flight joins them cleanly
// (no leaks, no races, no lost records before the join).
TEST(PipelinedDriver, DestructorJoinsInFlightForecasts) {
  Grid g = tiny_grid();
  auto cfg = tiny_config(3);
  BdaSystem sys(g, scale::convective_sounding(), cfg);
  sys.perturb_ensemble();

  PipelineConfig pcfg;
  pcfg.n_groups = 2;
  pcfg.product_every = 1;
  pcfg.forecast_lead_s = 0.0;
  pcfg.forecast_sleep_s = 0.2;
  {
    PipelinedDriver driver(sys, pcfg);
    driver.run(2);  // no drain: forecasts still sleeping at destruction
  }
  SUCCEED();
}

}  // namespace
}  // namespace bda::workflow
