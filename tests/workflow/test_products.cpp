#include <gtest/gtest.h>

#include <filesystem>
#include <limits>

#include "scale/reference.hpp"
#include "util/binary_io.hpp"
#include "workflow/products.hpp"

namespace bda::workflow {
namespace {

namespace fs = std::filesystem;
using scale::Grid;
using scale::State;

TEST(Products, WritesMapViewAndVolume) {
  Grid g(8, 8, 6, 500.0f, 6000.0f);
  const auto ref = scale::ReferenceState::build(g, scale::stable_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  s.rhoq[scale::QR](3, 4, 2) = s.dens(3, 4, 2) * 3e-3f;

  const std::string dir =
      (fs::temp_directory_path() / "bda_products_test").string();
  fs::remove_all(dir);
  const auto paths = write_products(dir, g, s, 1800.0);
  ASSERT_TRUE(fs::exists(paths.map_view));
  ASSERT_TRUE(fs::exists(paths.volume_3d));

  // Map view holds the column-max reflectivity with the rain cell visible.
  const auto map = read_bdf(paths.map_view);
  ASSERT_EQ(map.size(), 1u);
  EXPECT_EQ(map[0].name, "composite_dbz");
  EXPECT_GT(map[0].data(3, 4, 0), 30.0f);
  EXPECT_LT(map[0].data(0, 0, 0), 0.0f);

  const auto vol = read_bdf(paths.volume_3d);
  ASSERT_EQ(vol.size(), 1u);
  EXPECT_EQ(vol[0].data.nz(), 6);
  EXPECT_GT(vol[0].data(3, 4, 2), 30.0f);
  fs::remove_all(dir);
}

RField3D dbz_volume(idx n, real background = -20.0f) {
  RField3D f(n, n, n, 0);
  f.fill(background);
  return f;
}

TEST(RainCores, CountsSeparateCores) {
  auto dbz = dbz_volume(10);
  // Core A: 2x2x2 block; core B: single voxel, far away.
  for (idx i = 1; i <= 2; ++i)
    for (idx j = 1; j <= 2; ++j)
      for (idx k = 1; k <= 2; ++k) dbz(i, j, k) = 45.0f;
  dbz(8, 8, 8) = 50.0f;
  const auto cores = rain_cores(dbz, 40.0f);
  ASSERT_EQ(cores.size(), 2u);
  EXPECT_EQ(cores[0], 8u);  // sorted largest first
  EXPECT_EQ(cores[1], 1u);
}

TEST(RainCores, DiagonalNeighborsAreSeparate) {
  auto dbz = dbz_volume(6);
  dbz(1, 1, 1) = 45.0f;
  dbz(2, 2, 2) = 45.0f;  // diagonal: not 6-connected
  EXPECT_EQ(rain_cores(dbz, 40.0f).size(), 2u);
  dbz(2, 1, 1) = 45.0f;
  dbz(2, 2, 1) = 45.0f;  // bridge them
  EXPECT_EQ(rain_cores(dbz, 40.0f).size(), 1u);
}

TEST(RainCores, ThresholdSelectsIntensity) {
  auto dbz = dbz_volume(6);
  dbz(1, 1, 1) = 35.0f;
  dbz(4, 4, 4) = 55.0f;
  EXPECT_EQ(rain_cores(dbz, 30.0f).size(), 2u);
  EXPECT_EQ(rain_cores(dbz, 50.0f).size(), 1u);
  EXPECT_TRUE(rain_cores(dbz, 60.0f).empty());
}

// Regression: core membership must be the positive comparison
// `dbz >= threshold`.  The pre-fix negated form (`dbz < threshold` -> skip)
// silently swept NaN voxels into cores — missing radar data labeled as
// rain, and an all-NaN volume as one giant core.
TEST(RainCores, NanVoxelsAreNeverCoreMembers) {
  const real nan = std::numeric_limits<real>::quiet_NaN();
  auto dbz = dbz_volume(6);
  dbz.fill(nan);
  EXPECT_TRUE(rain_cores(dbz, 40.0f).empty()) << "all-NaN volume made cores";

  // A NaN voxel adjacent to a real core neither joins it nor bridges two.
  dbz.fill(-20.0f);
  dbz(1, 1, 1) = 45.0f;
  dbz(2, 1, 1) = nan;
  dbz(3, 1, 1) = 45.0f;
  const auto cores = rain_cores(dbz, 40.0f);
  ASSERT_EQ(cores.size(), 2u);
  EXPECT_EQ(cores[0], 1u);
  EXPECT_EQ(cores[1], 1u);
}

// Regression: the flood fill must survive its worst case — every voxel
// above threshold, one core spanning the whole grid (an explicit worklist;
// call recursion would overflow the stack here).
TEST(RainCores, FullGridIsOneCoreCoveringEveryVoxel) {
  const idx n = 64;  // 262144 voxels in a single 6-connected component
  RField3D dbz(n, n, n, 0);
  dbz.fill(50.0f);
  const auto cores = rain_cores(dbz, 40.0f);
  ASSERT_EQ(cores.size(), 1u);
  EXPECT_EQ(cores[0], std::size_t(n) * n * n);
}

TEST(RainCores, SingleVoxelGrid) {
  RField3D dbz(1, 1, 1, 0);
  dbz(0, 0, 0) = 45.0f;
  const auto one = rain_cores(dbz, 40.0f);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 1u);
  dbz(0, 0, 0) = 35.0f;
  EXPECT_TRUE(rain_cores(dbz, 40.0f).empty());
}

// The documented boundary is inclusive: exactly-threshold voxels belong to
// the core (`>=`, not `>`).
TEST(RainCores, ThresholdBoundaryIsInclusive) {
  auto dbz = dbz_volume(4);
  dbz(1, 1, 1) = 40.0f;  // exactly at threshold
  dbz(2, 1, 1) = 39.999f;
  const auto cores = rain_cores(dbz, 40.0f);
  ASSERT_EQ(cores.size(), 1u);
  EXPECT_EQ(cores[0], 1u);
}

TEST(DbzShells, ProfileCountsPerLevelAndThreshold) {
  auto dbz = dbz_volume(4);
  // Level 1: two cells at 25 dBZ; level 2: one cell at 45 dBZ.
  dbz(0, 0, 1) = 25.0f;
  dbz(1, 1, 1) = 25.0f;
  dbz(2, 2, 2) = 45.0f;
  const auto prof = dbz_shell_profile(dbz, {10.0f, 20.0f, 30.0f, 40.0f});
  ASSERT_EQ(prof.size(), 4u);
  EXPECT_EQ(prof[0][1], 2u);  // >= 10 dBZ at level 1
  EXPECT_EQ(prof[1][1], 2u);  // >= 20
  EXPECT_EQ(prof[2][1], 0u);  // >= 30
  EXPECT_EQ(prof[0][2], 1u);
  EXPECT_EQ(prof[3][2], 1u);  // the 45-dBZ cell
  EXPECT_EQ(prof[3][0], 0u);
}

}  // namespace
}  // namespace bda::workflow
