// Serving-tier integration contract (ROADMAP: the serving tier must be
// bitwise-transparent to the cycle).
//
// Two properties carry this file:
//   1. Transparency — enabling the publisher changes NOTHING about the
//      assimilation: same analyses, same ensemble bits, same rng stream,
//      and the published products are exactly what write_products would
//      have written for the same analysis mean.
//   2. Fail-safety — a wedged publisher mid-cycle never delays the next
//      cycle's admission: the cycle loop's wall clock is indistinguishable
//      from running without a publisher, while the watchdog restarts the
//      worker in the background.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "serve/publisher.hpp"
#include "serve/tile_server.hpp"
#include "util/metrics.hpp"
#include "workflow/pipeline.hpp"
#include "workflow/products.hpp"

namespace bda::workflow {
namespace {

using scale::Grid;

BdaSystemConfig serve_test_config(int members) {
  BdaSystemConfig cfg;
  cfg.cycle_s = 3.0;
  cfg.n_members = members;
  cfg.model.dt = 0.6f;
  cfg.model.physics_every = 10;
  cfg.model.enable_rad = false;

  cfg.scan.range_max = 6000.0f;
  cfg.scan.gate_length = 500.0f;
  cfg.scan.n_azimuth = 16;
  cfg.scan.n_elevation = 6;

  cfg.radar.radar_x = 2500.0f;
  cfg.radar.radar_y = 2500.0f;
  cfg.radar.radar_z = 50.0f;
  cfg.radar.block_az_from = cfg.radar.block_az_to = 0.0f;

  cfg.obsgen.clear_air = true;
  cfg.obsgen.clear_air_thin = 16;

  cfg.letkf.hloc = 1500.0f;
  cfg.letkf.vloc = 1500.0f;
  cfg.letkf.rtpp_alpha = 0.7f;
  cfg.letkf.z_min = 0.0f;
  cfg.letkf.z_max = 8000.0f;
  cfg.letkf.max_obs_per_grid = 16;

  cfg.perturb.theta_amp = 0.4f;
  cfg.perturb.qv_frac = 0.04f;
  cfg.perturb.wind_amp = 0.6f;
  cfg.perturb.zmax = 6000.0f;
  return cfg;
}

Grid serve_test_grid() {
  return Grid::stretched(10, 10, 6, 500.0f, 6000.0f, 300.0f, 1.2f);
}

void expect_bitwise_equal(const scale::State& a, const scale::State& b) {
  auto eq = [](std::span<const real> x, std::span<const real> y,
               const char* what) {
    ASSERT_EQ(x.size(), y.size()) << what;
    EXPECT_EQ(std::memcmp(x.data(), y.data(), x.size() * sizeof(real)), 0)
        << what;
  };
  eq(a.dens.raw(), b.dens.raw(), "dens");
  eq(a.momx.raw(), b.momx.raw(), "momx");
  eq(a.momy.raw(), b.momy.raw(), "momy");
  eq(a.momz.raw(), b.momz.raw(), "momz");
  eq(a.rhot.raw(), b.rhot.raw(), "rhot");
  for (int t = 0; t < scale::kNumTracers; ++t)
    eq(a.rhoq[t].raw(), b.rhoq[t].raw(), scale::tracer_name(t));
}

// Enabling the serving tier must not change a single bit of the cycle —
// the publisher only reads snapshots, draws no randomness, and runs on its
// own thread.
TEST(PipelineServe, PublisherIsBitwiseTransparentToTheCycle) {
  Grid g = serve_test_grid();
  auto cfg = serve_test_config(3);

  auto build = [&] {
    auto sys = std::make_unique<BdaSystem>(g, scale::convective_sounding(),
                                           cfg);
    sys->perturb_ensemble();
    sys->trigger_storm(2500.0f, 2500.0f, 3.5f, /*in_ensemble=*/true,
                       1200.0f);
    return sys;
  };

  auto plain = build();
  auto served = build();
  constexpr std::size_t kCycles = 4;

  PipelineConfig pcfg;
  pcfg.n_groups = 2;
  pcfg.product_every = 0;  // isolate the serving path
  pcfg.forecast_lead_s = 0.0;

  std::vector<CycleResult> want;
  {
    PipelinedDriver driver(*plain, pcfg);
    want = driver.run(kCycles);
    driver.drain();
  }

  serve::ProductCache cache(8);
  serve::PublisherConfig pubcfg;
  pubcfg.keyframe_every = 1;  // all keyframes: decode needs no chain here
  serve::Publisher publisher(&cache, pubcfg);
  PipelineConfig scfg = pcfg;
  scfg.publisher = &publisher;
  scfg.publish_every = 1;
  std::vector<CycleResult> got;
  {
    PipelinedDriver driver(*served, scfg);
    got = driver.run(kCycles);
    driver.drain();
  }
  ASSERT_TRUE(publisher.drain());
  // A fast cycle may supersede a queued publication; the final cycle can
  // never be superseded, so the cache head is deterministic.
  EXPECT_GE(publisher.published(), 1u);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t c = 0; c < kCycles; ++c) {
    EXPECT_EQ(got[c].n_obs, want[c].n_obs) << "cycle " << c;
    EXPECT_EQ(got[c].analysis.n_obs_qc, want[c].analysis.n_obs_qc);
    EXPECT_EQ(got[c].analysis.n_grid_updated,
              want[c].analysis.n_grid_updated);
    EXPECT_EQ(got[c].analysis.mean_abs_innovation,
              want[c].analysis.mean_abs_innovation);
  }
  for (int m = 0; m < plain->ensemble().size(); ++m)
    expect_bitwise_equal(plain->ensemble().member(m),
                         served->ensemble().member(m));
  expect_bitwise_equal(plain->nature().state(), served->nature().state());
  EXPECT_EQ(plain->rng().uniform(), served->rng().uniform());

  // The published products are byte-identical to what the product writer
  // computes from the same analysis mean: serving is a pure view.
  const auto epoch = cache.snapshot();
  EXPECT_EQ(epoch->latest_cycle(), kCycles - 1);
  const serve::CycleProducts* latest = epoch->latest();
  ASSERT_NE(latest, nullptr);
  const serve::ProductFrame expect_frame =
      product_frame(g, served->ensemble().mean());
  const auto expect_tiles = serve::cut_tiles(expect_frame.map_view, {});
  const serve::EncodedTile* t00 =
      latest->find({serve::ProductKind::kMapView, 0, 0});
  ASSERT_NE(t00, nullptr);
  ASSERT_TRUE(t00->is_keyframe());  // keyframe_every = 1
  const std::vector<float> samples =
      serve::decode_tile(*t00, nullptr, serve::kNoBaseCycle);
  ASSERT_EQ(samples.size(), expect_tiles[0].size());
  EXPECT_EQ(std::memcmp(samples.data(), expect_tiles[0].data(),
                        samples.size() * sizeof(float)),
            0);
}

// A publisher wedged mid-cycle must cost the cycle loop nothing: submit()
// is O(1), the watchdog handles the restart in the background, and the
// next cycle's products publish normally.
TEST(PipelineServe, WedgedPublisherNeverDelaysNextCycleAdmission) {
  Grid g = serve_test_grid();
  auto cfg = serve_test_config(3);
  BdaSystem sys(g, scale::convective_sounding(), cfg);
  sys.perturb_ensemble();

  // Baseline: cycles with no publisher at all.
  PipelineConfig pcfg;
  pcfg.n_groups = 2;
  pcfg.product_every = 0;
  pcfg.forecast_lead_s = 0.0;
  constexpr std::size_t kCycles = 6;
  util::Metrics base_metrics;
  sys.set_metrics(&base_metrics);
  {
    PipelinedDriver driver(sys, pcfg, &base_metrics);
    driver.run(kCycles);
    driver.drain();
  }
  const double base_mean =
      base_metrics.timer_stats("pipeline.cycle").mean_s;

  // Wedge the FIRST publication for far longer than the whole run.
  serve::ProductCache cache(4);
  util::Metrics metrics;
  auto release = std::make_shared<std::atomic<bool>>(false);
  auto calls = std::make_shared<std::atomic<int>>(0);
  serve::PublisherConfig scfg;
  scfg.stall_timeout_s = 0.05;
  scfg.watchdog_poll_s = 0.005;
  scfg.publish_hook = [release, calls](std::uint64_t) {
    if (calls->fetch_add(1) == 0)
      while (!release->load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  serve::Publisher publisher(&cache, scfg, &metrics);

  PipelineConfig wcfg = pcfg;
  wcfg.publisher = &publisher;
  wcfg.publish_every = 1;
  sys.set_metrics(&metrics);
  const auto t0 = std::chrono::steady_clock::now();
  {
    PipelinedDriver driver(sys, wcfg, &metrics);
    driver.run(kCycles);
    driver.drain();
  }
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

  // The wedge holds until we release it, so the watchdog is guaranteed to
  // fire eventually; insist it did before letting the worker go.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (publisher.restarts() < 1 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  release->store(true);  // unwedge before the publisher is destroyed

  // Admission unaffected: the whole wedged run costs about the same per
  // cycle as the publisher-free baseline (generous 3x margin for noise;
  // the wedge itself would have added >= stall_timeout per cycle).
  const double mean = metrics.timer_stats("pipeline.cycle").mean_s;
  EXPECT_LT(mean, 3.0 * base_mean + 0.02)
      << "wedged publisher leaked into the cycle path (baseline "
      << base_mean << " s, wedged " << mean << " s, wall " << wall << ")";

  // The watchdog restarted the worker and later cycles published.
  ASSERT_TRUE(publisher.drain());
  EXPECT_GE(publisher.restarts(), 1);
  EXPECT_GT(publisher.published(), 0u);
  EXPECT_EQ(cache.snapshot()->latest_cycle(), kCycles - 1);
  EXPECT_GE(metrics.counter("serve.publish.restarts"), 1u);
}

}  // namespace
}  // namespace bda::workflow
