#include <gtest/gtest.h>

#include <cmath>

#include "workflow/operations.hpp"

namespace bda::workflow {
namespace {

OperationSimulator make_sim(OperationConfig cfg = {}) {
  return OperationSimulator(cfg, hpc::reference_calibration());
}

TEST(Operations, ProducesOneRecordPerCycle) {
  auto sim = make_sim();
  Rng rng(1);
  const auto recs = sim.run(500, rng);
  EXPECT_EQ(recs.size(), 500u);
  for (std::size_t c = 0; c < recs.size(); ++c)
    EXPECT_DOUBLE_EQ(recs[c].t_obs, 30.0 * double(c));
}

TEST(Operations, MostCyclesUnderThreeMinutes) {
  // The paper's headline: ~97% of 75,248 forecasts within 3 minutes.
  auto sim = make_sim();
  Rng rng(2);
  const auto recs = sim.run(5000, rng);
  const auto sum = OperationSimulator::summarize(recs);
  EXPECT_GT(sum.frac_under_3min, 0.90);
  EXPECT_GT(sum.forecasts_produced, 3500u);  // rest: outages + rare skips
  EXPECT_LT(sum.mean_tts, 180.0);
}

TEST(Operations, ComponentBreakdownMatchesPaperRegime) {
  auto sim = make_sim();
  Rng rng(3);
  const auto recs = sim.run(2000, rng);
  const auto sum = OperationSimulator::summarize(recs);
  // JIT-DT ~3 s; LETKF O(10 s); 30-min forecast ~2 min (Sec. 7).
  EXPECT_GT(sum.mean_jitdt, 1.0);
  EXPECT_LT(sum.mean_jitdt, 6.0);
  EXPECT_GT(sum.mean_letkf, 1.0);
  EXPECT_LT(sum.mean_letkf, 40.0);
  EXPECT_GT(sum.mean_fcst, 60.0);
  EXPECT_LT(sum.mean_fcst, 200.0);
}

TEST(Operations, CycleForecastFitsInterval) {
  auto sim = make_sim();
  Rng rng(4);
  const auto recs = sim.run(1000, rng);
  for (const auto& r : recs) {
    if (r.produced) {
      EXPECT_LT(r.t_cycle_fcst, 30.0);
    }
  }
}

TEST(Operations, OutagesCreateGaps) {
  OperationConfig cfg;
  cfg.outages.mtbf_s = 3600.0;          // aggressive failure injection
  cfg.outages.mean_duration_s = 1800.0;
  auto sim = make_sim(cfg);
  Rng rng(5);
  const auto recs = sim.run(4000, rng);
  std::size_t gaps = 0;
  for (const auto& r : recs)
    if (!r.produced) ++gaps;
  EXPECT_GT(gaps, 100u);
  const auto sum = OperationSimulator::summarize(recs);
  EXPECT_EQ(sum.forecasts_produced + gaps, 4000u);
}

TEST(Operations, NoOutagesAlmostNoGaps) {
  // Without failure injection the only gaps come from occasional slow
  // cycles saturating the forecast scheduler — a small fraction.
  OperationConfig cfg;
  cfg.outages.mtbf_s = 1e12;
  auto sim = make_sim(cfg);
  Rng rng(6);
  const auto recs = sim.run(2000, rng);
  std::size_t gaps = 0;
  for (const auto& r : recs)
    if (!r.produced) ++gaps;
  // A 3% slow-cycle rate can shadow neighbours (a 1.35x job blocks its
  // group into the next turn), so allow up to ~10%.
  EXPECT_LT(gaps, 200u);
}

TEST(Operations, NoOutagesNoSlowCyclesNoGaps) {
  OperationConfig cfg;
  cfg.outages.mtbf_s = 1e12;
  cfg.slow_cycle_prob = 0.0;
  cfg.jitter_frac = 0.0;
  auto sim = make_sim(cfg);
  Rng rng(6);
  const auto recs = sim.run(1000, rng);
  for (const auto& r : recs) EXPECT_TRUE(r.produced);
}

TEST(Operations, RainAreaModulatesLetkfTime) {
  // "The more the rain area, the more the computation" (Sec. 7): the
  // correlation between rain area and LETKF time must be positive.
  auto sim = make_sim();
  Rng rng(7);
  const auto recs = sim.run(4000, rng);
  double mx = 0, my = 0, n = 0;
  for (const auto& r : recs)
    if (r.produced) {
      mx += r.rain_area_1mm;
      my += r.t_letkf;
      ++n;
    }
  mx /= n;
  my /= n;
  double cov = 0, vx = 0, vy = 0;
  for (const auto& r : recs)
    if (r.produced) {
      cov += (r.rain_area_1mm - mx) * (r.t_letkf - my);
      vx += (r.rain_area_1mm - mx) * (r.rain_area_1mm - mx);
      vy += (r.t_letkf - my) * (r.t_letkf - my);
    }
  const double corr = cov / std::sqrt(vx * vy);
  EXPECT_GT(corr, 0.5);
}

TEST(Operations, HeavyRainAreaIsFractionOfLight) {
  auto sim = make_sim();
  Rng rng(8);
  const auto recs = sim.run(500, rng);
  for (const auto& r : recs) {
    EXPECT_GT(r.rain_area_1mm, 0.0);
    EXPECT_LT(r.rain_area_20mm, r.rain_area_1mm);
  }
}

TEST(Operations, SummaryPercentilesOrdered) {
  auto sim = make_sim();
  Rng rng(9);
  const auto sum = OperationSimulator::summarize(sim.run(2000, rng));
  EXPECT_LE(sum.p50_tts, sum.p97_tts);
  EXPECT_LE(sum.p97_tts, sum.max_tts);
  EXPECT_GT(sum.p50_tts, 0.0);
  EXPECT_DOUBLE_EQ(sum.produced_seconds,
                   30.0 * double(sum.forecasts_produced));
}

TEST(Operations, DeterministicForFixedSeed) {
  auto sim = make_sim();
  Rng rng1(77), rng2(77);
  const auto a = sim.run(300, rng1);
  const auto b = sim.run(300, rng2);
  for (std::size_t c = 0; c < 300; ++c) {
    EXPECT_EQ(a[c].produced, b[c].produced);
    EXPECT_DOUBLE_EQ(a[c].tts, b[c].tts);
  }
}

}  // namespace
}  // namespace bda::workflow
