#include <gtest/gtest.h>

#include "verify/nowcast.hpp"
#include "verify/scores.hpp"

namespace bda::verify {
namespace {

RField2D blob(idx cx, idx cy, idx n = 32, real amp = 40.0f) {
  RField2D f(n, n, 0);
  f.fill(-20.0f);
  for (idx i = cx - 2; i <= cx + 2; ++i)
    for (idx j = cy - 2; j <= cy + 2; ++j)
      if (i >= 0 && i < n && j >= 0 && j < n) f(i, j) = amp;
  return f;
}

TEST(Nowcast, RecoversKnownTranslation) {
  // Blob moves +3 cells in x, +1 in y over 60 s.
  const auto t0 = blob(10, 16);
  const auto t1 = blob(13, 17);
  const auto mv = estimate_motion(t0, t1, {}, 60.0);
  ASSERT_TRUE(mv.valid);
  EXPECT_NEAR(double(mv.u) * 60.0, 3.0, 0.01);
  EXPECT_NEAR(double(mv.v) * 60.0, 1.0, 0.01);
}

TEST(Nowcast, StationaryEchoGivesZeroMotion) {
  const auto t0 = blob(16, 16);
  const auto mv = estimate_motion(t0, t0, {}, 30.0);
  ASSERT_TRUE(mv.valid);
  EXPECT_EQ(mv.u, 0.0f);
  EXPECT_EQ(mv.v, 0.0f);
}

TEST(Nowcast, NoEchoNoVector) {
  RField2D empty(32, 32, 0);
  empty.fill(-20.0f);
  const auto mv = estimate_motion(empty, empty, {}, 30.0);
  EXPECT_FALSE(mv.valid);
}

TEST(Nowcast, BlockBelowSignalThresholdSkipped) {
  NowcastConfig cfg;
  cfg.min_signal = 30.0f;
  const auto weak = blob(16, 16, 32, 20.0f);  // below threshold
  const auto mv = estimate_motion(weak, weak, cfg, 30.0);
  EXPECT_FALSE(mv.valid);
}

TEST(Nowcast, AdvectionBeatsPersistenceForMovingStorm) {
  // The reason nowcasts exist: for steadily translating echoes they win.
  const auto t0 = blob(8, 16);
  const auto t1 = blob(10, 16);                   // +2 cells / 30 s
  const auto truth_at_lead = blob(18, 16);        // +10 cells at 150 s
  const auto mv = estimate_motion(t0, t1, {}, 30.0);
  const auto nc = advect_nowcast(t1, mv, 120.0);  // 4 more cells...
  // t1 at 30 s; verify at 150 s = 120 s lead from t1: +8 cells -> 18. OK.
  const double ts_now =
      contingency(nc, truth_at_lead, 30.0f).threat_score();
  const double ts_per =
      contingency(t1, truth_at_lead, 30.0f).threat_score();
  EXPECT_GT(ts_now, 0.9);
  EXPECT_EQ(ts_per, 0.0);  // blob fully displaced from the frozen image
}

TEST(Nowcast, InvalidMotionFallsBackToPersistence) {
  const auto t1 = blob(16, 16);
  MotionVector none;  // invalid
  const auto nc = advect_nowcast(t1, none, 600.0);
  for (idx i = 1; i < 31; ++i)
    for (idx j = 1; j < 31; ++j) EXPECT_NEAR(nc(i, j), t1(i, j), 1e-4f);
}

TEST(Nowcast, AdvectedInflowCarriesFill) {
  const auto t1 = blob(16, 16);
  MotionVector mv;
  mv.u = 0.5f;  // cells/s: huge drift
  mv.v = 0.0f;
  mv.valid = true;
  const auto nc = advect_nowcast(t1, mv, 60.0, -20.0f);
  EXPECT_EQ(nc(0, 16), -20.0f);  // upstream edge is "no rain"
}

}  // namespace
}  // namespace bda::verify
