#include <gtest/gtest.h>

#include "verify/persistence.hpp"
#include "verify/scores.hpp"

namespace bda::verify {
namespace {

RField2D blob_field(idx cx, idx cy, idx n = 16) {
  RField2D f(n, n, 0);
  f.fill(-20.0f);
  for (idx i = cx - 1; i <= cx + 1; ++i)
    for (idx j = cy - 1; j <= cy + 1; ++j) f(i, j) = 40.0f;
  return f;
}

TEST(Persistence, PerfectAtLeadZero) {
  // Fig 7: the persistence curve starts at threat score 1 by construction.
  const auto obs0 = blob_field(8, 8);
  PersistenceForecast p(obs0);
  const auto c = contingency(p.at(0.0), obs0, 30.0f);
  EXPECT_DOUBLE_EQ(c.threat_score(), 1.0);
}

TEST(Persistence, DoesNotEvolve) {
  const auto obs0 = blob_field(8, 8);
  PersistenceForecast p(obs0);
  const auto& f1 = p.at(60.0);
  const auto& f2 = p.at(1800.0);
  for (idx i = 0; i < 16; ++i)
    for (idx j = 0; j < 16; ++j) EXPECT_EQ(f1(i, j), f2(i, j));
}

TEST(Persistence, SkillDecaysAgainstMovingStorm) {
  const auto obs0 = blob_field(4, 8);
  PersistenceForecast p(obs0);
  // Storm moves 2 cells east every "10 minutes".
  const auto obs1 = blob_field(6, 8);
  const auto obs2 = blob_field(10, 8);
  const double ts0 = contingency(p.at(0), obs0, 30.0f).threat_score();
  const double ts1 = contingency(p.at(600), obs1, 30.0f).threat_score();
  const double ts2 = contingency(p.at(1800), obs2, 30.0f).threat_score();
  EXPECT_DOUBLE_EQ(ts0, 1.0);
  EXPECT_GT(ts1, ts2);
  EXPECT_EQ(ts2, 0.0);  // fully displaced
}

TEST(Persistence, AdvectedVariantTracksSteeringWind) {
  const auto obs0 = blob_field(4, 8);
  PersistenceForecast p(obs0);
  // Advection at 10 m/s east with dx = 500 m moves 2 cells in 100 s.
  const auto adv = p.advected(100.0, 10.0f, 0.0f, 500.0f);
  const auto obs_moved = blob_field(6, 8);
  const double ts_adv = contingency(adv, obs_moved, 30.0f).threat_score();
  const double ts_static =
      contingency(p.at(100.0), obs_moved, 30.0f).threat_score();
  EXPECT_GT(ts_adv, ts_static);
  EXPECT_GT(ts_adv, 0.9);
}

TEST(Persistence, AdvectionFillsUpstreamWithNoRain) {
  const auto obs0 = blob_field(8, 8);
  PersistenceForecast p(obs0);
  const auto adv = p.advected(1000.0, 10.0f, 0.0f, 500.0f, -20.0f);
  // Everything advected out of the west edge: upstream cells carry fill.
  EXPECT_EQ(adv(0, 8), -20.0f);
  EXPECT_EQ(adv(1, 8), -20.0f);
}

TEST(Persistence, ZeroWindAdvectionIsIdentityInterior) {
  const auto obs0 = blob_field(8, 8);
  PersistenceForecast p(obs0);
  const auto adv = p.advected(600.0, 0.0f, 0.0f, 500.0f);
  for (idx i = 1; i < 15; ++i)
    for (idx j = 1; j < 15; ++j) EXPECT_NEAR(adv(i, j), obs0(i, j), 1e-4f);
}

}  // namespace
}  // namespace bda::verify
