#include <gtest/gtest.h>

#include "verify/scores.hpp"

namespace bda::verify {
namespace {

RField2D field_with(std::initializer_list<std::pair<int, int>> rainy,
                    idx n = 8) {
  RField2D f(n, n, 0);
  f.fill(0.0f);
  for (auto [i, j] : rainy) f(i, j) = 40.0f;
  return f;
}

TEST(Contingency, PerfectForecastScoresOne) {
  const auto obs = field_with({{1, 1}, {2, 2}, {3, 3}});
  const auto c = contingency(obs, obs, 30.0f);
  EXPECT_DOUBLE_EQ(c.threat_score(), 1.0);
  EXPECT_DOUBLE_EQ(c.pod(), 1.0);
  EXPECT_DOUBLE_EQ(c.far(), 0.0);
  EXPECT_DOUBLE_EQ(c.bias(), 1.0);
}

TEST(Contingency, DisjointRainScoresZero) {
  const auto fcst = field_with({{0, 0}, {0, 1}});
  const auto obs = field_with({{7, 7}, {6, 7}});
  const auto c = contingency(fcst, obs, 30.0f);
  EXPECT_DOUBLE_EQ(c.threat_score(), 0.0);
  EXPECT_DOUBLE_EQ(c.pod(), 0.0);
  EXPECT_DOUBLE_EQ(c.far(), 1.0);
}

TEST(Contingency, NoEventAnywhereIsPerfectAgreement) {
  const auto empty = field_with({});
  const auto c = contingency(empty, empty, 30.0f);
  EXPECT_DOUBLE_EQ(c.threat_score(), 1.0);
  EXPECT_EQ(c.correct_negatives, 64u);
}

TEST(Contingency, PartialOverlapCounts) {
  // fcst: (1,1),(1,2); obs: (1,2),(1,3) -> 1 hit, 1 miss, 1 false alarm.
  const auto fcst = field_with({{1, 1}, {1, 2}});
  const auto obs = field_with({{1, 2}, {1, 3}});
  const auto c = contingency(fcst, obs, 30.0f);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.false_alarms, 1u);
  EXPECT_DOUBLE_EQ(c.threat_score(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.pod(), 0.5);
  EXPECT_DOUBLE_EQ(c.far(), 0.5);
  EXPECT_DOUBLE_EQ(c.bias(), 1.0);
}

TEST(Contingency, ThresholdIsInclusive) {
  RField2D f(2, 1, 0);
  f(0, 0) = 30.0f;  // exactly at threshold: counts as event
  f(1, 0) = 29.9f;
  const auto c = contingency(f, f, 30.0f);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.correct_negatives, 1u);
}

TEST(Contingency, MaskExcludesNoDataRegions) {
  // Paper Fig 6b: hatched no-data areas are excluded from verification.
  const auto fcst = field_with({{0, 0}});
  const auto obs = field_with({{7, 7}});
  Field2D<std::uint8_t> mask(8, 8, 0);
  for (idx i = 0; i < 8; ++i)
    for (idx j = 0; j < 8; ++j) mask(i, j) = 1;
  mask(0, 0) = 0;  // forecast's false alarm is out of observed coverage
  const auto c = contingency(fcst, obs, 30.0f, &mask);
  EXPECT_EQ(c.false_alarms, 0u);
  EXPECT_EQ(c.misses, 1u);
}

TEST(Contingency, BiasDetectsOverforecasting) {
  const auto fcst = field_with({{1, 1}, {1, 2}, {2, 1}, {2, 2}});
  const auto obs = field_with({{1, 1}});
  const auto c = contingency(fcst, obs, 30.0f);
  EXPECT_DOUBLE_EQ(c.bias(), 4.0);
}

TEST(ExceedArea, CountsCells) {
  const auto f = field_with({{0, 0}, {1, 1}, {2, 2}});
  EXPECT_EQ(exceed_area(f, 30.0f), 3u);
  EXPECT_EQ(exceed_area(f, 50.0f), 0u);
}

TEST(Rmse, ZeroForIdenticalQuadraticOtherwise) {
  RField2D a(4, 4, 0), b(4, 4, 0);
  a.fill(1.0f);
  b.fill(1.0f);
  EXPECT_DOUBLE_EQ(rmse(a, b), 0.0);
  b.fill(3.0f);
  EXPECT_DOUBLE_EQ(rmse(a, b), 2.0);
}

TEST(Rmse3, AveragesOverVolume) {
  RField3D a(2, 2, 2, 0), b(2, 2, 2, 0);
  b(0, 0, 0) = 4.0f;  // single deviation of 4 over 8 cells
  EXPECT_NEAR(rmse3(a, b), std::sqrt(16.0 / 8.0), 1e-12);
}

}  // namespace
}  // namespace bda::verify
