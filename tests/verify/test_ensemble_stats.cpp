#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "verify/ensemble_stats.hpp"

namespace bda::verify {
namespace {

TEST(RankOfTruth, CountsMembersBelow) {
  std::vector<real> m = {1.0f, 3.0f, 5.0f, 7.0f};
  EXPECT_EQ(rank_of_truth(m, 0.0f), 0u);   // truth below all
  EXPECT_EQ(rank_of_truth(m, 2.0f), 1u);
  EXPECT_EQ(rank_of_truth(m, 6.0f), 3u);
  EXPECT_EQ(rank_of_truth(m, 10.0f), 4u);  // truth above all
}

TEST(RankHistogram, CalibratedEnsembleIsUniform) {
  // Truth drawn from the same distribution as the members: ranks uniform.
  Rng rng(1);
  const std::size_t k = 9;
  RankHistogram hist(k);
  std::vector<real> members(k);
  for (int s = 0; s < 20000; ++s) {
    for (auto& m : members) m = real(rng.normal());
    hist.add(members, real(rng.normal()));
  }
  EXPECT_EQ(hist.samples(), 20000u);
  // Outliers near the uniform expectation.
  EXPECT_NEAR(hist.outlier_ratio(), 1.0, 0.12);
  // Chi-square below a generous bound for k dof (critical ~ 21.7 at 1%).
  EXPECT_LT(hist.chi_square(), 30.0);
}

TEST(RankHistogram, UnderdispersiveEnsembleIsUShaped) {
  // Members have half the truth's spread: truth falls outside often.
  Rng rng(2);
  const std::size_t k = 9;
  RankHistogram hist(k);
  std::vector<real> members(k);
  for (int s = 0; s < 5000; ++s) {
    for (auto& m : members) m = real(0.4 * rng.normal());
    hist.add(members, real(rng.normal()));
  }
  EXPECT_GT(hist.outlier_ratio(), 2.0);
  EXPECT_GT(hist.chi_square(), 100.0);
}

TEST(SpreadSkill, ConsistentEnsembleNearOne) {
  Rng rng(3);
  const std::size_t k = 20;
  SpreadSkill ss;
  std::vector<real> members(k);
  for (int s = 0; s < 20000; ++s) {
    for (auto& m : members) m = real(rng.normal(2.0, 1.5));
    ss.add(members, real(rng.normal(2.0, 1.5)));
  }
  // Expected ratio sqrt(1 + 1/k) ~ 1.025.
  EXPECT_NEAR(ss.consistency_ratio(), std::sqrt(1.0 + 1.0 / k), 0.05);
  EXPECT_NEAR(ss.mean_spread(), 1.5 * 1.5, 0.08);
}

TEST(SpreadSkill, OverconfidentEnsembleAboveOne) {
  Rng rng(4);
  SpreadSkill ss;
  std::vector<real> members(16);
  for (int s = 0; s < 5000; ++s) {
    for (auto& m : members) m = real(0.3 * rng.normal());
    ss.add(members, real(rng.normal()));  // error >> spread
  }
  EXPECT_GT(ss.consistency_ratio(), 2.0);
}

TEST(SpreadSkill, TooFewMembersIgnored) {
  SpreadSkill ss;
  std::vector<real> one = {1.0f};
  ss.add(one, 0.0f);
  EXPECT_EQ(ss.samples(), 0u);
}

TEST(InnovationStats, NormalizedMoments) {
  InnovationStats st;
  // Innovations exactly +-2 with obs error 2 -> z = +-1: mean 0, sd 1.
  for (int s = 0; s < 100; ++s) {
    st.add(2.0, 2.0);
    st.add(-2.0, 2.0);
  }
  EXPECT_EQ(st.count, 200u);
  EXPECT_NEAR(st.mean(), 0.0, 1e-12);
  EXPECT_NEAR(st.stddev(), 1.0, 1e-9);
}

TEST(InnovationStats, BiasDetected) {
  InnovationStats st;
  for (int s = 0; s < 50; ++s) st.add(3.0, 1.0);
  EXPECT_NEAR(st.mean(), 3.0, 1e-12);
  EXPECT_NEAR(st.stddev(), 0.0, 1e-9);
}

}  // namespace
}  // namespace bda::verify
