#include <gtest/gtest.h>

#include "verify/scores.hpp"

namespace bda::verify {
namespace {

RField2D blob(idx cx, idx cy, idx n = 24) {
  RField2D f(n, n, 0);
  f.fill(-20.0f);
  for (idx i = cx - 1; i <= cx + 1; ++i)
    for (idx j = cy - 1; j <= cy + 1; ++j)
      if (i >= 0 && i < n && j >= 0 && j < n) f(i, j) = 40.0f;
  return f;
}

TEST(Fss, PerfectForecastIsOne) {
  const auto f = blob(12, 12);
  for (idx n : {0, 1, 3, 6})
    EXPECT_DOUBLE_EQ(fractions_skill_score(f, f, 30.0f, n), 1.0);
}

TEST(Fss, EventAbsentEverywhereIsOne) {
  RField2D empty(24, 24, 0);
  empty.fill(-20.0f);
  EXPECT_DOUBLE_EQ(fractions_skill_score(empty, empty, 30.0f, 2), 1.0);
}

TEST(Fss, GrowsWithNeighborhoodForDisplacedFeature) {
  // The canonical FSS property: a displaced storm that scores zero
  // point-wise gains skill as the neighborhood widens past the
  // displacement.
  const auto fcst = blob(9, 12);
  const auto obs = blob(14, 12);  // displaced 5 cells
  const double fss0 = fractions_skill_score(fcst, obs, 30.0f, 0);
  const double fss3 = fractions_skill_score(fcst, obs, 30.0f, 3);
  const double fss8 = fractions_skill_score(fcst, obs, 30.0f, 8);
  EXPECT_NEAR(fss0, 0.0, 1e-12);  // disjoint at grid scale
  EXPECT_GT(fss3, fss0);
  EXPECT_GT(fss8, fss3);
  EXPECT_GT(fss8, 0.5);
}

TEST(Fss, PointScoreMatchesContingencyIntuition) {
  // At neighborhood 0 with identical overlap fractions, FSS and threat
  // score rank forecasts the same way.
  const auto obs = blob(12, 12);
  const auto near_fcst = blob(13, 12);
  const auto far_fcst = blob(20, 12);
  EXPECT_GT(fractions_skill_score(near_fcst, obs, 30.0f, 0),
            fractions_skill_score(far_fcst, obs, 30.0f, 0));
}

TEST(Fss, BoundedZeroToOne) {
  const auto fcst = blob(4, 4);
  const auto obs = blob(20, 20);
  for (idx n : {0, 2, 5}) {
    const double fss = fractions_skill_score(fcst, obs, 30.0f, n);
    EXPECT_GE(fss, 0.0);
    EXPECT_LE(fss, 1.0);
  }
}

}  // namespace
}  // namespace bda::verify
