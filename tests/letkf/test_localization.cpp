#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "letkf/localization.hpp"
#include "util/rng.hpp"

namespace bda::letkf {
namespace {

TEST(GaspariCohn, UnityAtZero) {
  EXPECT_NEAR(gaspari_cohn(0.0f), 1.0f, 1e-6f);
}

TEST(GaspariCohn, CompactSupportEndsAtTwo) {
  EXPECT_EQ(gaspari_cohn(2.0f), 0.0f);
  EXPECT_EQ(gaspari_cohn(5.0f), 0.0f);
  EXPECT_GT(gaspari_cohn(1.99f), 0.0f);
}

TEST(GaspariCohn, MonotoneDecay) {
  real prev = gaspari_cohn(0.0f);
  for (real r = 0.05f; r <= 2.0f; r += 0.05f) {
    const real g = gaspari_cohn(r);
    EXPECT_LE(g, prev + 1e-6f) << "r=" << r;
    EXPECT_GE(g, 0.0f);
    prev = g;
  }
}

TEST(GaspariCohn, SymmetricInR) {
  EXPECT_FLOAT_EQ(gaspari_cohn(0.7f), gaspari_cohn(-0.7f));
}

TEST(GaspariCohn, MatchesPublishedMidpoints) {
  // GC(1) = 1 - 1/4 + 1/2 + 5/8 - 5/3 + ... evaluate both branches agree.
  const real left = gaspari_cohn(0.999999f);
  const real right = gaspari_cohn(1.000001f);
  EXPECT_NEAR(left, right, 1e-4f);
  // Half width: GC(0.5) ~ 0.68 (known value of the quintic).
  EXPECT_NEAR(gaspari_cohn(0.5f), 0.685f, 0.01f);
}

TEST(GaspariCohn, ResemblesGaussianCore) {
  // GC with support 2c approximates a Gaussian of sigma = c*sqrt(3/10),
  // i.e. GC(r) ~ exp(-r^2 * 5/3); loose shape check.
  for (real r : {0.3f, 0.6f, 1.0f}) {
    const real gc = gaspari_cohn(r);
    const real gauss = std::exp(-r * r * 5.0f / 3.0f);
    EXPECT_NEAR(gc, gauss, 0.05f) << "r=" << r;
  }
}

ObsVector random_obs(std::size_t n, real extent, Rng& rng) {
  ObsVector obs(n);
  for (auto& o : obs) {
    o.x = real(rng.uniform(0, extent));
    o.y = real(rng.uniform(0, extent));
    o.z = real(rng.uniform(0, 10000));
    o.value = real(rng.normal());
    o.error = 1.0f;
  }
  return obs;
}

TEST(ObsIndex, QueryMatchesBruteForce) {
  Rng rng(17);
  const auto obs = random_obs(500, 50000.0f, rng);
  ObsIndex index(obs, 4000.0f);
  std::vector<std::size_t> got;
  for (int trial = 0; trial < 20; ++trial) {
    const real x = real(rng.uniform(0, 50000));
    const real y = real(rng.uniform(0, 50000));
    const real radius = real(rng.uniform(500, 8000));
    got.clear();
    index.query(x, y, radius, got);
    std::vector<std::size_t> expect;
    for (std::size_t n = 0; n < obs.size(); ++n) {
      const real dx = obs[n].x - x, dy = obs[n].y - y;
      if (dx * dx + dy * dy <= radius * radius) expect.push_back(n);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect) << "trial " << trial;
  }
}

TEST(ObsIndex, EmptyObsYieldsNothing) {
  ObsVector obs;
  ObsIndex index(obs, 1000.0f);
  std::vector<std::size_t> out;
  index.query(0, 0, 5000.0f, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(index.size(), 0u);
}

TEST(ObsIndex, QueryOutsideCloudFindsNothing) {
  Rng rng(18);
  const auto obs = random_obs(100, 10000.0f, rng);
  ObsIndex index(obs, 2000.0f);
  std::vector<std::size_t> out;
  index.query(1.0e6f, 1.0e6f, 3000.0f, out);
  EXPECT_TRUE(out.empty());
}

TEST(ObsIndex, RadiusIsInclusiveBoundary) {
  ObsVector obs;
  obs.push_back({ObsType::kReflectivity, 1000.0f, 0.0f, 0.0f, 1.0f, 1.0f});
  ObsIndex index(obs, 500.0f);
  std::vector<std::size_t> out;
  index.query(0, 0, 1000.0f, out);
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  index.query(0, 0, 999.0f, out);
  EXPECT_TRUE(out.empty());
}

TEST(ObsIndex, SingleObservationFound) {
  ObsVector obs;
  obs.push_back({ObsType::kDopplerVelocity, 5.0f, 7.0f, 100.0f, 3.0f, 1.0f});
  ObsIndex index(obs, 1000.0f);
  std::vector<std::size_t> out;
  index.query(0, 0, 100.0f, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
}

}  // namespace
}  // namespace bda::letkf
